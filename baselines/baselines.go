// Package baselines exposes the reimplemented comparator compressors of the
// paper's evaluation (SZ3, QoZ, ZFP, SPERR) next to CliZ itself, so
// downstream users can reproduce the comparisons on their own data.
// All compressors speak the same interface: float32 grid in, self-describing
// blob out, strict absolute error bound (ZFP's bound is the fixed-accuracy
// tolerance semantics of the original).
package baselines

import (
	"cliz"
	"cliz/internal/codec"
	"cliz/internal/dataset"
	"cliz/internal/mask"

	// Register all compressors.
	_ "cliz/internal/qoz"
	_ "cliz/internal/sperr"
	_ "cliz/internal/sz3"
	_ "cliz/internal/zfp"
)

// Names lists the available compressors ("CliZ", "QoZ", "SPERR", "SZ3",
// "ZFP").
func Names() []string { return codec.Names() }

// Compress encodes the dataset with the named compressor under the error
// bound. Baselines ignore the mask/periodicity metadata (they are
// general-purpose); CliZ auto-tunes with the paper's defaults.
func Compress(name string, ds *cliz.Dataset, eb cliz.ErrorBound) ([]byte, error) {
	c, err := codec.Get(name)
	if err != nil {
		return nil, err
	}
	ids, abs, err := convert(ds, eb)
	if err != nil {
		return nil, err
	}
	return c.Compress(ids, abs)
}

// Decompress decodes a blob produced by the named compressor.
func Decompress(name string, blob []byte) ([]float32, []int, error) {
	c, err := codec.Get(name)
	if err != nil {
		return nil, nil, err
	}
	return c.Decompress(blob)
}

func convert(ds *cliz.Dataset, eb cliz.ErrorBound) (*dataset.Dataset, float64, error) {
	ids := &dataset.Dataset{
		Name:      ds.Name,
		Data:      ds.Data,
		Dims:      ds.Dims,
		Lead:      dataset.LeadKind(ds.Lead),
		Periodic:  ds.Periodic,
		FillValue: ds.FillValue,
	}
	if ds.MaskRegions != nil && len(ds.Dims) >= 2 {
		nLat := ds.Dims[len(ds.Dims)-2]
		nLon := ds.Dims[len(ds.Dims)-1]
		ids.Mask = mask.New(nLat, nLon, ds.MaskRegions)
	}
	if err := ids.Validate(); err != nil {
		return nil, 0, err
	}
	var abs float64
	switch {
	case eb.Abs > 0 && eb.Rel == 0:
		abs = eb.Abs
	case eb.Rel > 0 && eb.Abs == 0:
		abs = ids.AbsErrorBound(eb.Rel)
	default:
		return nil, 0, errBound
	}
	return ids, abs, nil
}

var errBound = errInvalidBound{}

type errInvalidBound struct{}

func (errInvalidBound) Error() string {
	return "baselines: exactly one of Rel/Abs must be positive"
}
