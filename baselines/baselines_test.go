package baselines_test

import (
	"math"
	"strings"
	"testing"

	"cliz"
	"cliz/baselines"
)

func smallField() *cliz.Dataset {
	n := 32 * 48
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) / 17))
	}
	return &cliz.Dataset{Name: "b", Data: data, Dims: []int{32, 48}}
}

func TestAllBaselinesRoundTrip(t *testing.T) {
	ds := smallField()
	for _, name := range baselines.Names() {
		blob, err := baselines.Compress(name, ds, cliz.Abs(0.01))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		recon, dims, err := baselines.Decompress(name, blob)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(dims) != 2 || dims[0] != 32 || dims[1] != 48 {
			t.Fatalf("%s: dims %v", name, dims)
		}
		if got := cliz.MaxAbsErr(ds.Data, recon, nil); got > 0.01 {
			t.Fatalf("%s: bound violated: %g", name, got)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	ds := smallField()
	if _, err := baselines.Compress("NOPE", ds, cliz.Abs(0.1)); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, err := baselines.Compress("SZ3", ds, cliz.ErrorBound{}); err == nil {
		t.Fatal("empty bound accepted")
	}
	if _, err := baselines.Compress("SZ3", ds, cliz.ErrorBound{Rel: 1, Abs: 1}); err == nil {
		t.Fatal("double bound accepted")
	}
	if _, _, err := baselines.Decompress("SZ3", []byte("junk")); err == nil {
		t.Fatal("junk blob accepted")
	}
	bad := smallField()
	bad.Dims = []int{7}
	if _, err := baselines.Compress("SZ3", bad, cliz.Abs(0.1)); err == nil {
		t.Fatal("inconsistent dataset accepted")
	}
}

func TestMaskedDatasetThroughBaselines(t *testing.T) {
	ds := smallField()
	regions := make([]int32, 32*48)
	for i := range regions {
		if i%4 != 0 {
			regions[i] = 1
		}
	}
	ds.MaskRegions = regions
	ds.FillValue = 9.96921e36
	for i := range ds.Data {
		if regions[i] == 0 {
			ds.Data[i] = ds.FillValue
		}
	}
	// CliZ honours the mask; general-purpose baselines must still bound
	// every point (fills become exact literals / outliers).
	for _, name := range []string{"CliZ", "SZ3", "SPERR"} {
		blob, err := baselines.Compress(name, ds, cliz.Rel(1e-2))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, _, err := baselines.Decompress(name, blob); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

// TestNonFiniteRoundTripOrError pins the non-finite contract across every
// registered compressor: a NaN or Inf at a valid grid point must either
// survive the round trip (NaN stays NaN, Inf stays exactly Inf, finite
// neighbours stay within the bound) or be rejected with a clear error at
// compress time. Silently zeroing or perturbing such points is a bound
// violation with no signal — the failure mode this test exists to catch.
func TestNonFiniteRoundTripOrError(t *testing.T) {
	const eb = 0.01
	nanIdx, posIdx, negIdx := 100, 200, 300
	for _, name := range baselines.Names() {
		t.Run(name, func(t *testing.T) {
			ds := smallField()
			ds.Data[nanIdx] = float32(math.NaN())
			ds.Data[posIdx] = float32(math.Inf(1))
			ds.Data[negIdx] = float32(math.Inf(-1))
			blob, err := baselines.Compress(name, ds, cliz.Abs(eb))
			if err != nil {
				// A clean rejection is an acceptable contract — but it must
				// name the problem, not fail somewhere random.
				if !strings.Contains(err.Error(), "non-finite") {
					t.Fatalf("rejection does not explain the non-finite input: %v", err)
				}
				return
			}
			recon, _, err := baselines.Decompress(name, blob)
			if err != nil {
				t.Fatalf("compressed non-finite data but failed to decompress: %v", err)
			}
			for i, want := range ds.Data {
				got := recon[i]
				switch {
				case math.IsNaN(float64(want)):
					if !math.IsNaN(float64(got)) {
						t.Fatalf("NaN at %d decoded to %g", i, got)
					}
				case math.IsInf(float64(want), 0):
					if got != want {
						t.Fatalf("Inf at %d decoded to %g", i, got)
					}
				default:
					if diff := math.Abs(float64(got) - float64(want)); !(diff <= eb) {
						t.Fatalf("finite point %d: |%g-%g| = %g > %g", i, got, want, diff, eb)
					}
				}
			}
		})
	}
}
