package cliz_test

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (DESIGN.md per-experiment index E01–E11), plus per-codec
// compression/decompression throughput micro-benchmarks.
//
// The experiment benchmarks regenerate the corresponding table on synthetic
// datasets at a laptop scale (override with -bench-scale). Each benchmark
// reports the table rows through b.Log at -v; the cmd/clizbench binary
// prints them in full.

import (
	"flag"
	"io"
	"testing"

	"cliz/internal/codec"
	"cliz/internal/core"
	"cliz/internal/datagen"
	"cliz/internal/dataset"
	"cliz/internal/entropy"
	"cliz/internal/experiments"
	"cliz/internal/lossless"

	_ "cliz/internal/qoz"
	_ "cliz/internal/sperr"
	_ "cliz/internal/sz3"
	_ "cliz/internal/zfp"
)

var (
	flateCodec = lossless.Flate{Level: 6}
	lzssCodec  = lossless.LZSS{}
)

var benchScale = flag.Float64("bench-scale", 0.10,
	"dataset scale for experiment benchmarks (1.0 = paper dimensions)")

func benchEnv() experiments.Env {
	return experiments.Env{Scale: *benchScale, Log: io.Discard}
}

// runExperiment executes one experiment per iteration and reports the
// resulting tables.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	env := benchEnv()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, env)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, tb := range tables {
				b.Logf("%s: %s (%d rows)", tb.ID, tb.Title, len(tb.Rows))
			}
		}
	}
}

func BenchmarkFig10RateDistortion(b *testing.B)      { runExperiment(b, "E01") }
func BenchmarkFig11TuningCost(b *testing.B)          { runExperiment(b, "E02") }
func BenchmarkFig12TableIVSamplingLoss(b *testing.B) { runExperiment(b, "E03") }
func BenchmarkTableVAblationSSH(b *testing.B)        { runExperiment(b, "E04") }
func BenchmarkTableVIAblationHurricane(b *testing.B) { runExperiment(b, "E05") }
func BenchmarkFig13GlobusTransfer(b *testing.B)      { runExperiment(b, "E06") }
func BenchmarkFig7PermFuseBitrates(b *testing.B)     { runExperiment(b, "E07") }
func BenchmarkFig8PeriodDetection(b *testing.B)      { runExperiment(b, "E08") }
func BenchmarkFig14Visual(b *testing.B)              { runExperiment(b, "E09") }
func BenchmarkFigPropertyDemos(b *testing.B)         { runExperiment(b, "E10") }
func BenchmarkTableIIIDatasets(b *testing.B)         { runExperiment(b, "E11") }

// --- Codec throughput micro-benchmarks (compression speed comparison of
// §VII: CliZ must be in the same ballpark as SZ3/ZFP and faster than
// SPERR). ---

func benchDataset(b *testing.B, name string) *dataset.Dataset {
	b.Helper()
	ds, err := datagen.ByName(name, *benchScale)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func benchmarkCompress(b *testing.B, codecName, dsName string, rel float64) {
	ds := benchDataset(b, dsName)
	c, err := codec.Get(codecName)
	if err != nil {
		b.Fatal(err)
	}
	eb := ds.AbsErrorBound(rel)
	// Warm CliZ's tuning cache outside the timed region (the paper's
	// offline stage is amortized across a model's fields).
	blob, err := c.Compress(ds, eb)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(ds.Points() * 4))
	b.ReportMetric(float64(ds.Points()*4)/float64(len(blob)), "ratio")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(ds, eb); err != nil {
			b.Fatal(err)
		}
	}
}

func benchmarkDecompress(b *testing.B, codecName, dsName string, rel float64) {
	ds := benchDataset(b, dsName)
	c, err := codec.Get(codecName)
	if err != nil {
		b.Fatal(err)
	}
	blob, err := c.Compress(ds, ds.AbsErrorBound(rel))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(ds.Points() * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Decompress(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressCliZSSH(b *testing.B)     { benchmarkCompress(b, "CliZ", "SSH", 1e-2) }
func BenchmarkCompressSZ3SSH(b *testing.B)      { benchmarkCompress(b, "SZ3", "SSH", 1e-2) }
func BenchmarkCompressQoZSSH(b *testing.B)      { benchmarkCompress(b, "QoZ", "SSH", 1e-2) }
func BenchmarkCompressZFPSSH(b *testing.B)      { benchmarkCompress(b, "ZFP", "SSH", 1e-2) }
func BenchmarkCompressSPERRSSH(b *testing.B)    { benchmarkCompress(b, "SPERR", "SSH", 1e-2) }
func BenchmarkCompressCliZCESMT(b *testing.B)   { benchmarkCompress(b, "CliZ", "CESM-T", 1e-3) }
func BenchmarkCompressSZ3CESMT(b *testing.B)    { benchmarkCompress(b, "SZ3", "CESM-T", 1e-3) }
func BenchmarkDecompressCliZSSH(b *testing.B)   { benchmarkDecompress(b, "CliZ", "SSH", 1e-2) }
func BenchmarkDecompressSZ3SSH(b *testing.B)    { benchmarkDecompress(b, "SZ3", "SSH", 1e-2) }
func BenchmarkDecompressZFPSSH(b *testing.B)    { benchmarkDecompress(b, "ZFP", "SSH", 1e-2) }
func BenchmarkDecompressSPERRSSH(b *testing.B)  { benchmarkDecompress(b, "SPERR", "SSH", 1e-2) }
func BenchmarkDecompressCliZCESMT(b *testing.B) { benchmarkDecompress(b, "CliZ", "CESM-T", 1e-3) }

// --- Ablation micro-benchmarks for the design choices DESIGN.md calls out. ---

// BenchmarkAblationEntropyCoders compares the pipeline's symbol-coding
// stage: canonical Huffman (the paper's choice) vs static rANS.
func BenchmarkAblationEntropyCoders(b *testing.B) {
	ds := benchDataset(b, "CESM-T")
	eb := ds.AbsErrorBound(1e-3)
	for _, kind := range []entropy.Kind{entropy.Huffman, entropy.RANS} {
		b.Run(kind.String(), func(b *testing.B) {
			ids := ds
			p := core.Default(ids)
			opt := core.Options{Entropy: kind}
			blob, err := core.Compress(ids, eb, p, opt)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(ids.Points() * 4))
			b.ReportMetric(float64(ids.Points()*4)/float64(len(blob)), "ratio")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compress(ids, eb, p, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLosslessBackends compares the lossless stages available
// for the pipeline's final step (DESIGN.md substitution: flate vs from-
// scratch LZSS standing in for Zstd).
func BenchmarkAblationLosslessBackends(b *testing.B) {
	ds := benchDataset(b, "CESM-T")
	for _, backend := range []string{"flate", "lzss", "raw"} {
		b.Run(backend, func(b *testing.B) {
			benchLossless(b, ds, backend)
		})
	}
}

func benchLossless(b *testing.B, ds *dataset.Dataset, backend string) {
	c, err := codec.Get("SZ3")
	if err != nil {
		b.Fatal(err)
	}
	// The SZ3 path uses flate internally; this benchmark measures the
	// end-to-end impact indirectly by compressing the blob again with each
	// backend — a proxy for swapping the stage.
	blob, err := c.Compress(ds, ds.AbsErrorBound(1e-3))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recompress(b, backend, blob)
	}
}

func recompress(b *testing.B, backend string, blob []byte) {
	b.Helper()
	var out []byte
	switch backend {
	case "flate":
		out = flateCodec.Compress(blob)
	case "lzss":
		out = lzssCodec.Compress(blob)
	case "raw":
		out = append([]byte(nil), blob...)
	default:
		b.Fatalf("unknown backend %s", backend)
	}
	_ = out
}
