// Package cliz is an error-bounded lossy compressor optimized for climate
// datasets, reproducing "CliZ: Optimizing Lossy Compression for Climate
// Datasets with Adaptive Fine-tuned Data Prediction" (IPDPS 2024).
//
// CliZ builds on the SZ3 prediction/quantization/encoding framework and
// exploits four properties of climate data: the mask-map marking invalid
// regions, the diverse smoothness of different dimensions (addressed by
// dimension permutation and fusion), temporal periodicity (addressed by
// periodic component extraction), and topography-correlated quantization-bin
// statistics (addressed by bin classification with multi-Huffman encoding).
//
// The workflow mirrors the paper's offline/online split: AutoTune runs once
// per climate model on one representative field and returns a Pipeline; the
// pipeline then compresses every field of that model online:
//
//	ds := &cliz.Dataset{Name: "SSH", Data: data, Dims: []int{1032, 384, 320},
//		Lead: cliz.LeadTime, Periodic: true, MaskRegions: regions,
//		FillValue: 9.96921e36}
//	pipe, _, err := cliz.AutoTune(ds, cliz.Rel(1e-2), nil)
//	blob, info, err := cliz.Compress(ds, cliz.Rel(1e-2), &pipe)
//	recon, dims, err := cliz.Decompress(blob)
//
// For one-shot use, Compress accepts a nil pipeline and picks the default.
package cliz

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"cliz/internal/core"
	"cliz/internal/dataset"
	"cliz/internal/entropy"
	"cliz/internal/estimate"
	"cliz/internal/mask"
	"cliz/internal/trace"
)

// LeadKind describes the physical meaning of a dataset's leading dimension.
type LeadKind int

const (
	// LeadNone marks a purely horizontal 2D field.
	LeadNone LeadKind = iota
	// LeadTime marks time as the leading dimension (periodicity may apply).
	LeadTime
	// LeadHeight marks vertical layers as the leading dimension.
	LeadHeight
)

// Dataset describes one climate field. The trailing two dimensions are the
// horizontal (lat, lon) grid; optional leading dimensions are time and/or
// height (e.g. [time, height, lat, lon] for a 4D land-model field).
type Dataset struct {
	// Name labels the field (e.g. "SSH").
	Name string
	// Data is the row-major float32 grid.
	Data []float32
	// Dims are the grid extents.
	Dims []int
	// Lead describes the first dimension.
	Lead LeadKind
	// Periodic marks fields whose metadata flags the time axis as periodic.
	Periodic bool
	// MaskRegions is the optional horizontal mask map (length lat·lon):
	// 0 marks invalid cells, non-zero values label regions, exactly as in
	// CESM files. Nil means every point is valid.
	MaskRegions []int32
	// FillValue is the sentinel stored at invalid points.
	FillValue float32
}

func (d *Dataset) internal() (*dataset.Dataset, error) {
	if d == nil {
		return nil, errors.New("cliz: nil dataset")
	}
	ds := &dataset.Dataset{
		Name:      d.Name,
		Data:      d.Data,
		Dims:      d.Dims,
		Lead:      dataset.LeadKind(d.Lead),
		Periodic:  d.Periodic,
		FillValue: d.FillValue,
	}
	if d.MaskRegions != nil {
		if len(d.Dims) < 2 {
			return nil, errors.New("cliz: mask requires at least 2 dims")
		}
		nLat := d.Dims[len(d.Dims)-2]
		nLon := d.Dims[len(d.Dims)-1]
		if len(d.MaskRegions) != nLat*nLon {
			return nil, fmt.Errorf("cliz: mask length %d != %d·%d",
				len(d.MaskRegions), nLat, nLon)
		}
		ds.Mask = mask.New(nLat, nLon, d.MaskRegions)
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// ErrorBound specifies the error budget: exactly one of Rel and Abs must be
// positive. Rel is a fraction of the valid value range (the convention used
// throughout the paper's evaluation); Abs is an absolute bound.
type ErrorBound struct {
	Rel float64
	Abs float64
}

// Rel returns a relative (value-range) error bound.
func Rel(v float64) ErrorBound { return ErrorBound{Rel: v} }

// Abs returns an absolute error bound.
func Abs(v float64) ErrorBound { return ErrorBound{Abs: v} }

func (e ErrorBound) resolve(ds *dataset.Dataset) (float64, error) {
	switch {
	case e.Abs > 0 && e.Rel == 0:
		if math.IsInf(e.Abs, 0) || math.IsNaN(e.Abs) {
			return 0, fmt.Errorf("cliz: non-finite absolute error bound %g", e.Abs)
		}
		return e.Abs, nil
	case e.Rel > 0 && e.Abs == 0:
		lo, hi := ds.ValueRange()
		if hi-lo <= 0 {
			// A constant field has no value range to scale against; the old
			// behavior silently substituted a range of 1, turning "0.1% of
			// the range" into an arbitrary absolute budget.
			return 0, fmt.Errorf("cliz: relative bound %g on a field with zero value range [%g, %g]; use Abs for constant fields", e.Rel, lo, hi)
		}
		abs := ds.AbsErrorBound(e.Rel)
		if math.IsInf(abs, 0) || math.IsNaN(abs) {
			// An infinite value range (±Inf at a valid point) would resolve
			// to an unbounded budget and silently destroy the data.
			return 0, fmt.Errorf("cliz: relative bound %g resolves to non-finite absolute bound (non-finite values at valid points?)", e.Rel)
		}
		return abs, nil
	}
	return 0, fmt.Errorf("cliz: exactly one of Rel/Abs must be positive (got %+v)", e)
}

// Pipeline is a fully specified compression configuration — the output of
// the offline auto-tuning stage. The zero value is invalid; obtain pipelines
// from AutoTune or DefaultPipeline.
type Pipeline struct {
	p core.Pipeline
}

// String renders the pipeline in the paper's table notation.
func (p Pipeline) String() string { return p.p.String() }

// DefaultPipeline returns the untuned baseline pipeline for a dataset.
func DefaultPipeline(ds *Dataset) (Pipeline, error) {
	ids, err := ds.internal()
	if err != nil {
		return Pipeline{}, err
	}
	return Pipeline{p: core.Default(ids)}, nil
}

// TuneOptions control AutoTune. The zero value (or nil) uses the paper's
// defaults: 1% sampling and the full pipeline search space.
type TuneOptions struct {
	// SamplingRate is the fraction of data used for pipeline testing
	// (paper §VI-A); 0 selects 1%.
	SamplingRate float64
	// MaxPipelines caps the candidate count (0 = 512).
	MaxPipelines int
	// DisablePeriod / DisableClassify shrink the search space.
	DisablePeriod   bool
	DisableClassify bool
	// FixedPeriod overrides FFT-based period detection.
	FixedPeriod int
	// EstimateFirst runs the fast feature-based estimator before the
	// candidate search: when its confidence reaches MinConfidence the
	// estimated pipeline is returned directly (TuneReport.Mode "estimate")
	// and the search is skipped; otherwise the full search runs as usual.
	EstimateFirst bool
	// MinConfidence is the EstimateFirst acceptance threshold;
	// 0 selects MinEstimateConfidence.
	MinConfidence float64
	// Trace, when non-nil, records the tuner's coarse stages (period
	// detection, sampling, search, refinement) into the collector.
	Trace *Trace
	// Context, when non-nil, is polled at candidate boundaries: a canceled
	// or expired context aborts the tune with an error wrapping ctx.Err().
	// The tuner runs hundreds of candidate compressions, so this is the
	// knob that bounds a server-side tune's tail latency.
	Context context.Context
}

// TuneReport summarizes an AutoTune run.
type TuneReport struct {
	// Period is the detected period along the time axis (0 = none).
	Period int
	// PipelinesTested is the number of candidates evaluated (0 when the
	// estimator answered).
	PipelinesTested int
	// EstimatedRatio is the winner's compression ratio on the sample (or
	// the estimator's full-data prediction in estimate mode).
	EstimatedRatio float64
	// Mode says how the pipeline was decided: "search" for the full
	// candidate search, "estimate" when EstimateFirst accepted the fast
	// estimate and the search was skipped.
	Mode string
	// Confidence is the estimator's confidence (estimate mode only).
	Confidence float64
}

// AutoTune runs the offline stage on a representative field and returns the
// best pipeline for its climate model. Fields of the same model can reuse
// the pipeline (paper §IV).
func AutoTune(ds *Dataset, eb ErrorBound, opt *TuneOptions) (Pipeline, *TuneReport, error) {
	ids, err := ds.internal()
	if err != nil {
		return Pipeline{}, nil, err
	}
	abs, err := eb.resolve(ids)
	if err != nil {
		return Pipeline{}, nil, err
	}
	var tc core.TuneConfig
	var copt core.Options
	if opt != nil {
		tc = core.TuneConfig{
			SamplingRate:    opt.SamplingRate,
			MaxPipelines:    opt.MaxPipelines,
			DisablePeriod:   opt.DisablePeriod,
			DisableClassify: opt.DisableClassify,
			FixedPeriod:     opt.FixedPeriod,
		}
		copt.Trace = opt.Trace.collector()
		if opt.Context != nil {
			copt.Interrupt = opt.Context.Err
		}
	}
	if opt != nil && opt.EstimateFirst {
		minConf := opt.MinConfidence
		if minConf == 0 {
			minConf = MinEstimateConfidence
		}
		res, err := estimate.Estimate(ids, abs, estimate.Config{Tune: tc, Interrupt: copt.Interrupt})
		// A failed estimate is not a failed tune — the search below answers.
		if err == nil && res.Confidence >= minConf {
			return Pipeline{p: res.Pipeline}, &TuneReport{
				Period:         res.Pipeline.Period,
				EstimatedRatio: res.Ratio,
				Mode:           "estimate",
				Confidence:     res.Confidence,
			}, nil
		}
	}
	best, rep, err := core.AutoTune(ids, abs, tc, copt)
	if err != nil {
		return Pipeline{}, nil, err
	}
	return Pipeline{p: best}, &TuneReport{
		Period:          rep.Period,
		PipelinesTested: len(rep.Candidates),
		EstimatedRatio:  rep.BestRatio,
		Mode:            "search",
	}, nil
}

// StageInfo is one per-stage record of a traced compression or
// decompression run: wall time, byte counts, item counts and stage-specific
// numeric annotations (quantization-bin histogram entropy, Huffman table
// bytes, ...). Nested work is path-qualified, e.g. "template/predict" or
// "chunk[3]/entropy".
type StageInfo struct {
	Name     string
	Duration time.Duration
	InBytes  int64
	OutBytes int64
	Items    int64
	Notes    map[string]float64
}

// Trace collects per-stage records across one or more compression runs.
// Attach it with WithTrace; it is safe for concurrent use (the chunked
// compressor records from many goroutines). The zero value is ready to use.
type Trace struct {
	rec trace.Recorder
}

// Stages returns the collected records in arrival order.
func (t *Trace) Stages() []StageInfo { return stageInfos(t.rec.Stages()) }

// Aggregate merges records by base stage name (summing nested template/,
// residual/ and chunk[i]/ work), ordered by descending duration.
func (t *Trace) Aggregate() []StageInfo { return stageInfos(t.rec.Aggregate()) }

// Reset clears the trace for reuse.
func (t *Trace) Reset() { t.rec.Reset() }

// String renders the records as an aligned, human-readable stage table.
func (t *Trace) String() string { return t.rec.Table() }

func (t *Trace) collector() trace.Collector {
	if t == nil {
		return nil
	}
	return &t.rec
}

func stageInfos(stages []trace.Stage) []StageInfo {
	out := make([]StageInfo, len(stages))
	for i, s := range stages {
		out[i] = StageInfo{
			Name:     s.Name,
			Duration: s.Duration,
			InBytes:  s.InBytes,
			OutBytes: s.OutBytes,
			Items:    s.Items,
		}
		if len(s.Extra) > 0 {
			out[i].Notes = make(map[string]float64, len(s.Extra))
			for _, kv := range s.Extra {
				out[i].Notes[kv.Key] = kv.Value
			}
		}
	}
	return out
}

// Option customizes a Compress, CompressChunked or Decompress call.
type Option func(*config)

// CompressOption is the historical name of Option, kept as an alias because
// the decode path now accepts the same options.
type CompressOption = Option

type config struct {
	trace        *Trace
	workers      int
	boundEvery   int
	entropy      EntropyKind
	materialized bool
	keyframe     int
	ctx          context.Context
}

// interrupt maps the config's context (if any) onto the core's polling
// hook: ctx.Err is nil until the context is canceled or its deadline fires.
func (c *config) interrupt() func() error {
	if c.ctx == nil {
		return nil
	}
	return c.ctx.Err
}

// WithContext threads a context through the call: compression, decompression
// and tuning poll ctx at stage, chunk and tuner-candidate boundaries and
// abort with an error wrapping ctx.Err() once it is canceled or past its
// deadline. The polling granularity is a pipeline stage, not a point, so
// cancellation latency is one stage of work. This is the per-request
// cancellation clizd relies on; without the option nothing is ever polled.
func WithContext(ctx context.Context) Option {
	return func(c *config) { c.ctx = ctx }
}

// WithTrace attaches a stage collector: the run records per-stage wall
// times and byte counts into t, and the returned CompressInfo carries the
// records in its Stages field. Without this option the instrumentation
// hooks are allocation-free no-ops.
func WithTrace(t *Trace) Option {
	return func(c *config) { c.trace = t }
}

// WithWorkers bounds intra-blob parallelism: sectioned prediction (or
// reconstruction on decode), sharded entropy coding and parallel
// transposition all run on up to n goroutines. n <= 1 (the default) keeps
// everything on the calling goroutine. The encoded blob is deterministic for
// a fixed n; decode output never depends on n at all, because the section
// partition is read back from the blob header. Chunked containers combine
// this with chunk-level concurrency (the chunk workers argument), so the
// two multiply — keep the product near GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// EntropyKind selects the entropy-coding stage used for new blobs. Blocks
// are self-describing, so the decode side never needs (and ignores) this.
type EntropyKind = entropy.Kind

const (
	// EntropyHuffman is the paper's canonical Huffman coder (the default).
	EntropyHuffman = entropy.Huffman
	// EntropyRANS is the single-state static rANS coder.
	EntropyRANS = entropy.RANS
	// EntropyRANSInterleaved is N-way interleaved static rANS: the same
	// size class as EntropyRANS with a faster (multi-state) decode loop.
	EntropyRANSInterleaved = entropy.RANSInterleaved
)

// WithEntropy selects the entropy stage for Compress / CompressChunked.
// The zero value keeps the default (Huffman). Decoding is unaffected:
// every reader decodes every kind.
func WithEntropy(k EntropyKind) Option {
	return func(c *config) { c.entropy = k }
}

// WithKeyframeInterval sets the keyframe spacing of a NewStreamWriter:
// every k-th appended frame is coded independently of its predecessors, so
// StreamReader.Seek replays at most k-1 delta frames. k = 1 makes every
// frame a keyframe (maximum seek speed, no temporal compression). Other
// entry points ignore the option. The default is 16.
func WithKeyframeInterval(k int) Option {
	return func(c *config) { c.keyframe = k }
}

// WithMaterializedPermute forces the legacy copy-based permute/unpermute
// stages instead of the fused stride traversal, on whichever side the
// option is passed to. Output is bit-identical either way (the fusion is a
// pure traversal optimization); the switch exists for differential testing
// and as an escape hatch.
func WithMaterializedPermute() Option {
	return func(c *config) { c.materialized = true }
}

// WithBoundCheck enables decode-time bound self-verification: after the
// reconstruction is built, the prediction traversal is replayed read-only
// over it and every n-th point is checked to regenerate exactly from its
// recorded quantization bin (n = 1 checks every point). Combined with the
// v3 checksums this upgrades "the bitstream decoded" to "the decode
// satisfies the header's error bound". A mismatch fails the decode with an
// error; the sampled replay costs roughly a second reconstruction pass at
// n = 1 and amortizes away for larger n.
func WithBoundCheck(n int) Option {
	return func(c *config) {
		if n < 1 {
			n = 1
		}
		c.boundEvery = n
	}
}

// CompressInfo reports what a compression achieved.
type CompressInfo struct {
	// CompressedBytes is the blob size.
	CompressedBytes int
	// Ratio is original bytes / compressed bytes.
	Ratio float64
	// BitRate is compressed bits per data point.
	BitRate float64
	// Pipeline is the configuration used, in table notation.
	Pipeline string
	// Stages holds the per-stage records when a Trace was attached with
	// WithTrace (nil otherwise).
	Stages []StageInfo
}

// prepare is the shared front half of Compress and CompressChunked:
// validate the dataset, resolve the error bound, and resolve the pipeline.
// A nil pipe selects the default; a non-nil pipeline that was not produced
// by AutoTune, DefaultPipeline or a prior decode (i.e. the zero value) is
// rejected instead of being silently swapped for the default.
func prepare(ds *Dataset, eb ErrorBound, pipe *Pipeline) (*dataset.Dataset, float64, core.Pipeline, error) {
	ids, err := ds.internal()
	if err != nil {
		return nil, 0, core.Pipeline{}, err
	}
	abs, err := eb.resolve(ids)
	if err != nil {
		return nil, 0, core.Pipeline{}, err
	}
	if pipe == nil {
		return ids, abs, core.Default(ids), nil
	}
	if pipe.p.Perm == nil {
		return nil, 0, core.Pipeline{}, errors.New(
			"cliz: zero-value Pipeline; use AutoTune or DefaultPipeline, or pass nil for the default")
	}
	return ids, abs, pipe.p, nil
}

// newCompressInfo builds the CompressInfo shared by both compress entry
// points.
func newCompressInfo(ids *dataset.Dataset, blob []byte, p core.Pipeline, cfg *config) *CompressInfo {
	points := ids.Points()
	info := &CompressInfo{
		CompressedBytes: len(blob),
		Ratio:           float64(points*4) / float64(len(blob)),
		BitRate:         float64(len(blob)) * 8 / float64(points),
		Pipeline:        p.String(),
	}
	if cfg.trace != nil {
		info.Stages = cfg.trace.Stages()
	}
	return info
}

// Compress encodes the dataset under the error bound with the given
// pipeline (nil selects the default pipeline). The returned blob is
// self-contained: Decompress needs nothing else.
func Compress(ds *Dataset, eb ErrorBound, pipe *Pipeline, opts ...Option) ([]byte, *CompressInfo, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	ids, abs, p, err := prepare(ds, eb, pipe)
	if err != nil {
		return nil, nil, err
	}
	blob, err := core.Compress(ids, abs, p, core.Options{
		Trace:               cfg.trace.collector(),
		Workers:             cfg.workers,
		Entropy:             cfg.entropy,
		MaterializedPermute: cfg.materialized,
		Interrupt:           cfg.interrupt(),
	})
	if err != nil {
		return nil, nil, err
	}
	return blob, newCompressInfo(ids, blob, p, &cfg), nil
}

// Decompress reconstructs the data and its dims from a CliZ blob — either a
// regular blob from Compress or a chunked container from CompressChunked
// (chunks decode concurrently). WithWorkers bounds intra-blob decode
// parallelism; the output is identical for every worker count.
func Decompress(blob []byte, opts ...Option) ([]float32, []int, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	opt := core.DecompressOptions{
		Workers:             cfg.workers,
		Trace:               cfg.trace.collector(),
		BoundCheckEvery:     cfg.boundEvery,
		MaterializedPermute: cfg.materialized,
		Interrupt:           cfg.interrupt(),
	}
	if core.IsChunked(blob) {
		return core.DecompressChunkedOpts(blob, cfg.workers, opt)
	}
	return core.DecompressWithOptions(blob, opt)
}

// DecompressTraced is Decompress with an attached stage collector recording
// per-stage decode timings and byte counts (t may be nil).
func DecompressTraced(blob []byte, t *Trace) ([]float32, []int, error) {
	return Decompress(blob, WithTrace(t))
}

// SectionCheck is the verification result for one blob section. Path names
// the section qualified by its position in the blob tree ("header", "bins",
// "template/literals", "chunk[2]/mask", ...).
type SectionCheck struct {
	Path  string
	Bytes int
	// OK is false when the section's checksum mismatches or its framing is
	// corrupt.
	OK bool
	// Checksummed reports whether a CRC-32C actually covered this section
	// (false inside v1/v2 blobs, which carry no checksums and are only
	// walked structurally).
	Checksummed bool
	// Detail explains a failure (empty when OK).
	Detail string
}

// ChunkDamage describes one undecodable chunk of a chunked container.
type ChunkDamage struct {
	// Index is the chunk's position in the container.
	Index int
	// LeadStart/LeadLen locate the damaged region along dims[0]; in the
	// partial-decode output that region is filled with quiet NaN.
	LeadStart int
	LeadLen   int
	// Detail is the decode failure.
	Detail string
}

// VerifyReport is the outcome of verifying a blob's integrity.
type VerifyReport struct {
	// Kind is "unit", "periodic" or "chunked".
	Kind string
	// Version is the blob format version (v3 blobs carry checksums).
	Version int
	// Checksummed reports whether every part of the blob carries CRC-32C
	// integrity checksums.
	Checksummed bool
	// Sections lists every section checked, in blob order.
	Sections []SectionCheck
	// BoundChecked counts the points re-verified against the error bound
	// when WithBoundCheck was enabled on DecompressVerified.
	BoundChecked int64
	// DamagedChunks lists the chunks DecompressPartial could not decode.
	DamagedChunks []ChunkDamage
}

// OK reports whether every section verified and every chunk decoded.
func (r *VerifyReport) OK() bool {
	for _, s := range r.Sections {
		if !s.OK {
			return false
		}
	}
	return len(r.DamagedChunks) == 0
}

// Damaged returns the paths of all failed sections and damaged chunks.
func (r *VerifyReport) Damaged() []string {
	var out []string
	for _, s := range r.Sections {
		if !s.OK {
			out = append(out, s.Path)
		}
	}
	for _, c := range r.DamagedChunks {
		out = append(out, fmt.Sprintf("chunk[%d]", c.Index))
	}
	return out
}

func publicReport(rep *core.VerifyReport) *VerifyReport {
	out := &VerifyReport{
		Kind:         rep.Kind,
		Version:      rep.Version,
		Checksummed:  rep.Checksummed,
		BoundChecked: rep.BoundChecked,
	}
	for _, s := range rep.Sections {
		out.Sections = append(out.Sections, SectionCheck(s))
	}
	for _, c := range rep.DamagedChunks {
		out.DamagedChunks = append(out.DamagedChunks, ChunkDamage{
			Index:     c.Index,
			LeadStart: c.LeadStart,
			LeadLen:   c.LeadLen,
			Detail:    c.Err.Error(),
		})
	}
	return out
}

// Verify checks a blob's integrity without decoding payloads: v3 blobs have
// the header checksum and every per-section CRC-32C recomputed, v1/v2 blobs
// are walked structurally. Damage is attributed to named sections; hostile
// input never panics and cannot trigger volume-sized allocations.
func Verify(blob []byte) *VerifyReport {
	return publicReport(core.Verify(blob))
}

// DecompressVerified verifies every checksum before decoding and returns the
// verification report alongside the data. With WithBoundCheck the decode
// additionally re-verifies sampled points against the error bound. On
// damage, the error is non-nil and the report names the failed sections.
func DecompressVerified(blob []byte, opts ...Option) ([]float32, []int, *VerifyReport, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	data, dims, rep, err := core.DecompressVerified(blob, core.DecompressOptions{
		Workers:         cfg.workers,
		Trace:           cfg.trace.collector(),
		BoundCheckEvery: cfg.boundEvery,
		Interrupt:       cfg.interrupt(),
	})
	return data, dims, publicReport(rep), err
}

// DecompressPartial decodes as much of a chunked container as possible:
// intact chunks land in the output, undecodable chunks are reported in the
// VerifyReport's DamagedChunks and their regions filled with quiet NaN so
// they cannot be mistaken for data. Non-chunked blobs behave like
// DecompressVerified. The error is non-nil only when nothing was decodable.
func DecompressPartial(blob []byte, opts ...Option) ([]float32, []int, *VerifyReport, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	data, dims, rep, err := core.DecompressPartial(blob, core.DecompressOptions{
		Workers:         cfg.workers,
		Trace:           cfg.trace.collector(),
		BoundCheckEvery: cfg.boundEvery,
		Interrupt:       cfg.interrupt(),
	})
	return data, dims, publicReport(rep), err
}

// compile-time checks that the internal enums line up with the public ones.
var (
	_ = [1]struct{}{}[int(LeadNone)-int(dataset.LeadNone)]
	_ = [1]struct{}{}[int(LeadTime)-int(dataset.LeadTime)]
	_ = [1]struct{}{}[int(LeadHeight)-int(dataset.LeadHeight)]
)
