package cliz_test

import (
	"math"
	"math/rand"
	"testing"

	"cliz"
	"cliz/baselines"
)

// makeTestDataset builds a small masked, periodic field through the public
// API only.
func makeTestDataset() *cliz.Dataset {
	rng := rand.New(rand.NewSource(42))
	nT, nLat, nLon := 48, 24, 32
	const fill = 9.96921e36
	regions := make([]int32, nLat*nLon)
	for i := range regions {
		if (i/nLon+i%nLon)%5 != 0 {
			regions[i] = 1
		}
	}
	data := make([]float32, nT*nLat*nLon)
	plane := nLat * nLon
	for t := 0; t < nT; t++ {
		season := 2 * math.Pi * float64(t) / 12
		for p := 0; p < plane; p++ {
			idx := t*plane + p
			if regions[p] == 0 {
				data[idx] = fill
				continue
			}
			data[idx] = float32(20*math.Sin(season+float64(p)/40) +
				5*math.Cos(float64(p)/17) + 0.1*rng.NormFloat64())
		}
	}
	return &cliz.Dataset{
		Name: "api-test", Data: data, Dims: []int{nT, nLat, nLon},
		Lead: cliz.LeadTime, Periodic: true,
		MaskRegions: regions, FillValue: fill,
	}
}

func TestPublicRoundTrip(t *testing.T) {
	ds := makeTestDataset()
	blob, info, err := cliz.Compress(ds, cliz.Rel(1e-2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Ratio <= 1 {
		t.Fatalf("ratio %v", info.Ratio)
	}
	recon, dims, err := cliz.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 3 || dims[0] != ds.Dims[0] {
		t.Fatalf("dims %v", dims)
	}
	valid, err := cliz.ValidityOf(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Relative bound of 1e-2 over the valid range.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range ds.Data {
		if !valid[i] {
			continue
		}
		lo = math.Min(lo, float64(v))
		hi = math.Max(hi, float64(v))
	}
	eb := 0.01 * (hi - lo)
	if got := cliz.MaxAbsErr(ds.Data, recon, valid); got > eb*(1+1e-9) {
		t.Fatalf("bound violated: %g > %g", got, eb)
	}
}

func TestAutoTuneAndReuse(t *testing.T) {
	ds := makeTestDataset()
	pipe, report, err := cliz.AutoTune(ds, cliz.Rel(1e-2), &cliz.TuneOptions{SamplingRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if report.Period != 12 {
		t.Fatalf("period %d", report.Period)
	}
	if report.PipelinesTested < 96 {
		t.Fatalf("only %d pipelines tested", report.PipelinesTested)
	}
	// The tuned pipeline must compress another field of the same model.
	other := makeTestDataset()
	other.Name = "api-test-2"
	for i := range other.Data {
		if other.MaskRegions[(i)%(24*32)] != 0 && other.Data[i] < 1e30 {
			other.Data[i] += 1
		}
	}
	blob, info, err := cliz.Compress(other, cliz.Rel(1e-2), &pipe)
	if err != nil {
		t.Fatal(err)
	}
	if info.Pipeline != pipe.String() {
		t.Fatalf("info pipeline %q != %q", info.Pipeline, pipe.String())
	}
	if _, _, err := cliz.Decompress(blob); err != nil {
		t.Fatal(err)
	}
}

func TestAbsVsRelBounds(t *testing.T) {
	ds := makeTestDataset()
	if _, _, err := cliz.Compress(ds, cliz.ErrorBound{}, nil); err == nil {
		t.Fatal("empty bound accepted")
	}
	if _, _, err := cliz.Compress(ds, cliz.ErrorBound{Rel: 0.1, Abs: 0.1}, nil); err == nil {
		t.Fatal("double bound accepted")
	}
	blob, _, err := cliz.Compress(ds, cliz.Abs(0.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := cliz.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	valid, _ := cliz.ValidityOf(ds)
	if got := cliz.MaxAbsErr(ds.Data, recon, valid); got > 0.5*(1+1e-9) {
		t.Fatalf("abs bound violated: %g", got)
	}
}

func TestDatasetValidation(t *testing.T) {
	if _, _, err := cliz.Compress(nil, cliz.Rel(0.1), nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
	bad := &cliz.Dataset{Name: "bad", Data: make([]float32, 10), Dims: []int{3, 3}}
	if _, _, err := cliz.Compress(bad, cliz.Rel(0.1), nil); err == nil {
		t.Fatal("inconsistent dims accepted")
	}
	badMask := makeTestDataset()
	badMask.MaskRegions = badMask.MaskRegions[:5]
	if _, _, err := cliz.Compress(badMask, cliz.Rel(0.1), nil); err == nil {
		t.Fatal("short mask accepted")
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, _, err := cliz.Decompress([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := cliz.Decompress(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestBaselinesPackage(t *testing.T) {
	names := baselines.Names()
	want := map[string]bool{"CliZ": true, "SZ3": true, "QoZ": true, "ZFP": true, "SPERR": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing codecs: %v (have %v)", want, names)
	}
	ds := makeTestDataset()
	for _, n := range names {
		blob, err := baselines.Compress(n, ds, cliz.Rel(1e-2))
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		recon, dims, err := baselines.Decompress(n, blob)
		if err != nil {
			t.Fatalf("%s decode: %v", n, err)
		}
		if len(recon) != len(ds.Data) || len(dims) != 3 {
			t.Fatalf("%s: shape mismatch", n)
		}
	}
	if _, err := baselines.Compress("NOPE", ds, cliz.Rel(0.1)); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, err := baselines.Compress("SZ3", ds, cliz.ErrorBound{}); err == nil {
		t.Fatal("empty bound accepted")
	}
}

func TestMetricsHelpers(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	if got := cliz.PSNR(a, a, nil); !math.IsInf(got, 1) {
		t.Fatalf("self PSNR %v", got)
	}
	if got := cliz.MaxAbsErr(a, []float32{1, 2, 3, 5}, nil); got != 1 {
		t.Fatalf("MaxAbsErr %v", got)
	}
	if got := cliz.SSIM(a, a, []int{2, 2}, 2, nil); math.Abs(got-1) > 1e-9 {
		t.Fatalf("SSIM %v", got)
	}
}

func TestDefaultPipeline(t *testing.T) {
	ds := makeTestDataset()
	pipe, err := cliz.DefaultPipeline(ds)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.String() == "" {
		t.Fatal("empty pipeline string")
	}
	if _, _, err := cliz.Compress(ds, cliz.Rel(1e-2), &pipe); err != nil {
		t.Fatal(err)
	}
}

func TestPublicChunkedCompression(t *testing.T) {
	ds := makeTestDataset()
	pipe, _, err := cliz.AutoTune(ds, cliz.Rel(1e-2), &cliz.TuneOptions{SamplingRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	blob, info, err := cliz.CompressChunked(ds, cliz.Rel(1e-2), &pipe, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Ratio <= 1 || info.CompressedBytes != len(blob) {
		t.Fatalf("info %+v", info)
	}
	// The regular Decompress must recognise the container.
	recon, dims, err := cliz.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if dims[0] != ds.Dims[0] || len(recon) != len(ds.Data) {
		t.Fatalf("shape %v / %d", dims, len(recon))
	}
	valid, _ := cliz.ValidityOf(ds)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range ds.Data {
		if !valid[i] {
			continue
		}
		lo = math.Min(lo, float64(v))
		hi = math.Max(hi, float64(v))
	}
	if got := cliz.MaxAbsErr(ds.Data, recon, valid); got > 0.01*(hi-lo)*(1+1e-9) {
		t.Fatalf("chunked bound violated: %g", got)
	}
	// Default pipeline + bad inputs.
	if _, _, err := cliz.CompressChunked(ds, cliz.Rel(1e-2), nil, 2, 1); err != nil {
		t.Fatalf("nil pipeline: %v", err)
	}
	if _, _, err := cliz.CompressChunked(nil, cliz.Rel(1e-2), nil, 2, 1); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, _, err := cliz.CompressChunked(ds, cliz.ErrorBound{}, nil, 2, 1); err == nil {
		t.Fatal("empty bound accepted")
	}
}

func TestPublicAssess(t *testing.T) {
	ds := makeTestDataset()
	blob, _, err := cliz.Compress(ds, cliz.Rel(1e-2), nil)
	if err != nil {
		t.Fatal(err)
	}
	recon, dims, err := cliz.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	valid, _ := cliz.ValidityOf(ds)
	r := cliz.Assess(ds.Data, recon, dims, valid)
	if r.Points == 0 || r.PSNR < 20 || r.SSIM < 0.8 {
		t.Fatalf("report %+v", r)
	}
	if r.String() == "" {
		t.Fatal("empty report rendering")
	}
}

func TestAutoTuneInvalidInputs(t *testing.T) {
	if _, _, err := cliz.AutoTune(nil, cliz.Rel(0.1), nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
	ds := makeTestDataset()
	if _, _, err := cliz.AutoTune(ds, cliz.ErrorBound{}, nil); err == nil {
		t.Fatal("empty bound accepted")
	}
	bad := makeTestDataset()
	bad.Dims = []int{1}
	if _, _, err := cliz.AutoTune(bad, cliz.Rel(0.1), nil); err == nil {
		t.Fatal("inconsistent dataset accepted")
	}
	if _, err := cliz.DefaultPipeline(nil); err == nil {
		t.Fatal("nil dataset pipeline accepted")
	}
}
