package cliz_test

import (
	"math"
	"math/rand"
	"testing"

	"cliz"
	"cliz/baselines"
)

// makeTestDataset builds a small masked, periodic field through the public
// API only.
func makeTestDataset() *cliz.Dataset {
	rng := rand.New(rand.NewSource(42))
	nT, nLat, nLon := 48, 24, 32
	const fill = 9.96921e36
	regions := make([]int32, nLat*nLon)
	for i := range regions {
		if (i/nLon+i%nLon)%5 != 0 {
			regions[i] = 1
		}
	}
	data := make([]float32, nT*nLat*nLon)
	plane := nLat * nLon
	for t := 0; t < nT; t++ {
		season := 2 * math.Pi * float64(t) / 12
		for p := 0; p < plane; p++ {
			idx := t*plane + p
			if regions[p] == 0 {
				data[idx] = fill
				continue
			}
			data[idx] = float32(20*math.Sin(season+float64(p)/40) +
				5*math.Cos(float64(p)/17) + 0.1*rng.NormFloat64())
		}
	}
	return &cliz.Dataset{
		Name: "api-test", Data: data, Dims: []int{nT, nLat, nLon},
		Lead: cliz.LeadTime, Periodic: true,
		MaskRegions: regions, FillValue: fill,
	}
}

func TestPublicRoundTrip(t *testing.T) {
	ds := makeTestDataset()
	blob, info, err := cliz.Compress(ds, cliz.Rel(1e-2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Ratio <= 1 {
		t.Fatalf("ratio %v", info.Ratio)
	}
	recon, dims, err := cliz.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(dims) != 3 || dims[0] != ds.Dims[0] {
		t.Fatalf("dims %v", dims)
	}
	valid, err := cliz.ValidityOf(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Relative bound of 1e-2 over the valid range.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range ds.Data {
		if !valid[i] {
			continue
		}
		lo = math.Min(lo, float64(v))
		hi = math.Max(hi, float64(v))
	}
	eb := 0.01 * (hi - lo)
	if got := cliz.MaxAbsErr(ds.Data, recon, valid); got > eb*(1+1e-9) {
		t.Fatalf("bound violated: %g > %g", got, eb)
	}
}

func TestAutoTuneAndReuse(t *testing.T) {
	ds := makeTestDataset()
	pipe, report, err := cliz.AutoTune(ds, cliz.Rel(1e-2), &cliz.TuneOptions{SamplingRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if report.Period != 12 {
		t.Fatalf("period %d", report.Period)
	}
	if report.PipelinesTested < 96 {
		t.Fatalf("only %d pipelines tested", report.PipelinesTested)
	}
	// The tuned pipeline must compress another field of the same model.
	other := makeTestDataset()
	other.Name = "api-test-2"
	for i := range other.Data {
		if other.MaskRegions[(i)%(24*32)] != 0 && other.Data[i] < 1e30 {
			other.Data[i] += 1
		}
	}
	blob, info, err := cliz.Compress(other, cliz.Rel(1e-2), &pipe)
	if err != nil {
		t.Fatal(err)
	}
	if info.Pipeline != pipe.String() {
		t.Fatalf("info pipeline %q != %q", info.Pipeline, pipe.String())
	}
	if _, _, err := cliz.Decompress(blob); err != nil {
		t.Fatal(err)
	}
}

func TestAbsVsRelBounds(t *testing.T) {
	ds := makeTestDataset()
	if _, _, err := cliz.Compress(ds, cliz.ErrorBound{}, nil); err == nil {
		t.Fatal("empty bound accepted")
	}
	if _, _, err := cliz.Compress(ds, cliz.ErrorBound{Rel: 0.1, Abs: 0.1}, nil); err == nil {
		t.Fatal("double bound accepted")
	}
	blob, _, err := cliz.Compress(ds, cliz.Abs(0.5), nil)
	if err != nil {
		t.Fatal(err)
	}
	recon, _, err := cliz.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	valid, _ := cliz.ValidityOf(ds)
	if got := cliz.MaxAbsErr(ds.Data, recon, valid); got > 0.5*(1+1e-9) {
		t.Fatalf("abs bound violated: %g", got)
	}
}

func TestDatasetValidation(t *testing.T) {
	if _, _, err := cliz.Compress(nil, cliz.Rel(0.1), nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
	bad := &cliz.Dataset{Name: "bad", Data: make([]float32, 10), Dims: []int{3, 3}}
	if _, _, err := cliz.Compress(bad, cliz.Rel(0.1), nil); err == nil {
		t.Fatal("inconsistent dims accepted")
	}
	badMask := makeTestDataset()
	badMask.MaskRegions = badMask.MaskRegions[:5]
	if _, _, err := cliz.Compress(badMask, cliz.Rel(0.1), nil); err == nil {
		t.Fatal("short mask accepted")
	}
}

func TestDecompressGarbage(t *testing.T) {
	if _, _, err := cliz.Decompress([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, _, err := cliz.Decompress(nil); err == nil {
		t.Fatal("nil accepted")
	}
}

func TestBaselinesPackage(t *testing.T) {
	names := baselines.Names()
	want := map[string]bool{"CliZ": true, "SZ3": true, "QoZ": true, "ZFP": true, "SPERR": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing codecs: %v (have %v)", want, names)
	}
	ds := makeTestDataset()
	for _, n := range names {
		blob, err := baselines.Compress(n, ds, cliz.Rel(1e-2))
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		recon, dims, err := baselines.Decompress(n, blob)
		if err != nil {
			t.Fatalf("%s decode: %v", n, err)
		}
		if len(recon) != len(ds.Data) || len(dims) != 3 {
			t.Fatalf("%s: shape mismatch", n)
		}
	}
	if _, err := baselines.Compress("NOPE", ds, cliz.Rel(0.1)); err == nil {
		t.Fatal("unknown codec accepted")
	}
	if _, err := baselines.Compress("SZ3", ds, cliz.ErrorBound{}); err == nil {
		t.Fatal("empty bound accepted")
	}
}

func TestMetricsHelpers(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	if got := cliz.PSNR(a, a, nil); !math.IsInf(got, 1) {
		t.Fatalf("self PSNR %v", got)
	}
	if got := cliz.MaxAbsErr(a, []float32{1, 2, 3, 5}, nil); got != 1 {
		t.Fatalf("MaxAbsErr %v", got)
	}
	if got := cliz.SSIM(a, a, []int{2, 2}, 2, nil); math.Abs(got-1) > 1e-9 {
		t.Fatalf("SSIM %v", got)
	}
}

func TestDefaultPipeline(t *testing.T) {
	ds := makeTestDataset()
	pipe, err := cliz.DefaultPipeline(ds)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.String() == "" {
		t.Fatal("empty pipeline string")
	}
	if _, _, err := cliz.Compress(ds, cliz.Rel(1e-2), &pipe); err != nil {
		t.Fatal(err)
	}
}

func TestPublicChunkedCompression(t *testing.T) {
	ds := makeTestDataset()
	pipe, _, err := cliz.AutoTune(ds, cliz.Rel(1e-2), &cliz.TuneOptions{SamplingRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	blob, info, err := cliz.CompressChunked(ds, cliz.Rel(1e-2), &pipe, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if info.Ratio <= 1 || info.CompressedBytes != len(blob) {
		t.Fatalf("info %+v", info)
	}
	// The regular Decompress must recognise the container.
	recon, dims, err := cliz.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	if dims[0] != ds.Dims[0] || len(recon) != len(ds.Data) {
		t.Fatalf("shape %v / %d", dims, len(recon))
	}
	valid, _ := cliz.ValidityOf(ds)
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range ds.Data {
		if !valid[i] {
			continue
		}
		lo = math.Min(lo, float64(v))
		hi = math.Max(hi, float64(v))
	}
	if got := cliz.MaxAbsErr(ds.Data, recon, valid); got > 0.01*(hi-lo)*(1+1e-9) {
		t.Fatalf("chunked bound violated: %g", got)
	}
	// Default pipeline + bad inputs.
	if _, _, err := cliz.CompressChunked(ds, cliz.Rel(1e-2), nil, 2, 1); err != nil {
		t.Fatalf("nil pipeline: %v", err)
	}
	if _, _, err := cliz.CompressChunked(nil, cliz.Rel(1e-2), nil, 2, 1); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, _, err := cliz.CompressChunked(ds, cliz.ErrorBound{}, nil, 2, 1); err == nil {
		t.Fatal("empty bound accepted")
	}
}

func TestPublicAssess(t *testing.T) {
	ds := makeTestDataset()
	blob, _, err := cliz.Compress(ds, cliz.Rel(1e-2), nil)
	if err != nil {
		t.Fatal(err)
	}
	recon, dims, err := cliz.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	valid, _ := cliz.ValidityOf(ds)
	r := cliz.Assess(ds.Data, recon, dims, valid)
	if r.Points == 0 || r.PSNR < 20 || r.SSIM < 0.8 {
		t.Fatalf("report %+v", r)
	}
	if r.String() == "" {
		t.Fatal("empty report rendering")
	}
}

func TestAutoTuneInvalidInputs(t *testing.T) {
	if _, _, err := cliz.AutoTune(nil, cliz.Rel(0.1), nil); err == nil {
		t.Fatal("nil dataset accepted")
	}
	ds := makeTestDataset()
	if _, _, err := cliz.AutoTune(ds, cliz.ErrorBound{}, nil); err == nil {
		t.Fatal("empty bound accepted")
	}
	bad := makeTestDataset()
	bad.Dims = []int{1}
	if _, _, err := cliz.AutoTune(bad, cliz.Rel(0.1), nil); err == nil {
		t.Fatal("inconsistent dataset accepted")
	}
	if _, err := cliz.DefaultPipeline(nil); err == nil {
		t.Fatal("nil dataset pipeline accepted")
	}
}

// TestErrorBoundEdgeCases drives the public API through degenerate inputs:
// every case must either satisfy the error bound at all valid points or
// return a clean error — never panic, and never hand back a silently
// bound-violating reconstruction.
func TestErrorBoundEdgeCases(t *testing.T) {
	nan := float32(math.NaN())
	inf := float32(math.Inf(1))
	seq := func(n int) []float32 {
		d := make([]float32, n)
		for i := range d {
			d[i] = float32(i%7) + 0.5
		}
		return d
	}
	cases := []struct {
		name    string
		ds      *cliz.Dataset
		eb      cliz.ErrorBound
		wantErr bool
	}{
		{
			// Rel on a constant field: the value range is zero, so "1% of
			// the range" has no meaning. This used to silently substitute a
			// range of 1; it is now a clean error directing callers to Abs.
			name:    "rel-constant-field",
			ds:      &cliz.Dataset{Name: "const", Data: make([]float32, 256), Dims: []int{16, 16}},
			eb:      cliz.Rel(1e-2),
			wantErr: true,
		},
		{
			// Rel when every point is masked out: the valid range is empty —
			// same zero-range error as the constant field.
			name: "rel-all-masked",
			ds: &cliz.Dataset{Name: "masked", Data: []float32{9e35, 9e35, 9e35, 9e35},
				Dims: []int{2, 2}, MaskRegions: []int32{0, 0, 0, 0}, FillValue: 9e35},
			eb:      cliz.Rel(1e-2),
			wantErr: true,
		},
		{name: "abs-zero", ds: &cliz.Dataset{Name: "z", Data: seq(16), Dims: []int{4, 4}}, eb: cliz.Abs(0), wantErr: true},
		{name: "abs-negative", ds: &cliz.Dataset{Name: "neg", Data: seq(16), Dims: []int{4, 4}}, eb: cliz.Abs(-1), wantErr: true},
		{name: "abs-inf", ds: &cliz.Dataset{Name: "ai", Data: seq(16), Dims: []int{4, 4}}, eb: cliz.Abs(math.Inf(1)), wantErr: true},
		{name: "both-set", ds: &cliz.Dataset{Name: "b", Data: seq(16), Dims: []int{4, 4}}, eb: cliz.ErrorBound{Rel: 1e-2, Abs: 0.1}, wantErr: true},
		{name: "neither-set", ds: &cliz.Dataset{Name: "n", Data: seq(16), Dims: []int{4, 4}}, eb: cliz.ErrorBound{}, wantErr: true},
		{
			// NaN at a valid point: preserved bit-exactly via the literal
			// path; finite neighbours stay within the absolute bound.
			name: "abs-nan-point",
			ds:   &cliz.Dataset{Name: "nan", Data: []float32{1, 2, nan, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, Dims: []int{4, 4}},
			eb:   cliz.Abs(0.1),
		},
		{
			name: "abs-inf-point",
			ds:   &cliz.Dataset{Name: "inf", Data: []float32{1, 2, inf, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, Dims: []int{4, 4}},
			eb:   cliz.Abs(0.1),
		},
		{
			// Rel with ±Inf at a valid point resolves to an infinite
			// absolute budget — that must be a clean error, not a silent
			// data-destroying success.
			name:    "rel-inf-point",
			ds:      &cliz.Dataset{Name: "relinf", Data: []float32{1, 2, inf, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, Dims: []int{4, 4}},
			eb:      cliz.Rel(1e-2),
			wantErr: true,
		},
		{name: "one-element", ds: &cliz.Dataset{Name: "one", Data: []float32{3.25}, Dims: []int{1}}, eb: cliz.Abs(0.1)},
		{name: "one-by-n", ds: &cliz.Dataset{Name: "row", Data: seq(5), Dims: []int{1, 5}}, eb: cliz.Abs(0.1)},
		{name: "n-by-one", ds: &cliz.Dataset{Name: "col", Data: seq(5), Dims: []int{5, 1}}, eb: cliz.Abs(0.1)},
		{name: "all-ones-4d", ds: &cliz.Dataset{Name: "pt", Data: seq(1), Dims: []int{1, 1, 1, 1}}, eb: cliz.Abs(0.1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			blob, _, err := cliz.Compress(tc.ds, tc.eb, nil)
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected a clean error, got success")
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			recon, dims, err := cliz.Decompress(blob)
			if err != nil {
				t.Fatalf("decompress: %v", err)
			}
			if len(dims) != len(tc.ds.Dims) || len(recon) != len(tc.ds.Data) {
				t.Fatalf("shape %v / %d points", dims, len(recon))
			}
			valid, _ := cliz.ValidityOf(tc.ds)
			// Bound the reconstruction error at every valid point. A
			// non-finite original must come back bit-identical; the error
			// budget only applies between finite values.
			eb := tc.eb.Abs
			if eb == 0 {
				eb = 1 // Rel on constant/empty range clamps the range to 1
			}
			for i, v := range tc.ds.Data {
				if valid != nil && !valid[i] {
					continue
				}
				if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
					if math.Float32bits(recon[i]) != math.Float32bits(v) {
						t.Fatalf("point %d: non-finite %g not preserved (got %g)", i, v, recon[i])
					}
					continue
				}
				if d := math.Abs(float64(recon[i]) - float64(v)); d > eb*(1+1e-5) {
					t.Fatalf("point %d: |%g-%g| = %g > eb %g", i, recon[i], v, d, eb)
				}
			}
		})
	}
}

// TestPublicTrace exercises the WithTrace option end to end: stage records
// must land both in the Trace and in CompressInfo.Stages, aggregate sanely,
// and the traced decompressor must mirror them.
func TestPublicTrace(t *testing.T) {
	ds := makeTestDataset()
	var tr cliz.Trace
	blob, info, err := cliz.Compress(ds, cliz.Rel(1e-2), nil, cliz.WithTrace(&tr))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Stages) == 0 || len(tr.Stages()) != len(info.Stages) {
		t.Fatalf("CompressInfo carries %d stages, trace %d", len(info.Stages), len(tr.Stages()))
	}
	names := map[string]bool{}
	var total cliz.StageInfo
	for _, s := range tr.Aggregate() {
		names[s.Name] = true
		if s.Name == "total" {
			total = s
		}
	}
	for _, want := range []string{"predict", "entropy", "lossless", "total"} {
		if !names[want] {
			t.Fatalf("aggregate missing %q: %v", want, names)
		}
	}
	if total.OutBytes != int64(len(blob)) {
		t.Fatalf("total.OutBytes %d != blob %d", total.OutBytes, len(blob))
	}
	if tr.String() == "" {
		t.Fatal("empty table rendering")
	}
	tr.Reset()
	if len(tr.Stages()) != 0 {
		t.Fatal("Reset did not clear records")
	}
	if _, _, err := cliz.DecompressTraced(blob, &tr); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range tr.Aggregate() {
		if s.Name == "reconstruct" {
			found = true
		}
	}
	if !found {
		t.Fatalf("decode trace missing reconstruct stage:\n%s", tr.String())
	}
}
