package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Check mode: compare a freshly generated perf report against the committed
// baseline and fail when the fused-permutation contract erodes:
//
//	clizbench -perf -out /tmp/bench
//	clizbench -check -out /tmp/bench -baseline BENCH_PR.json
//
// The gate has two teeth. First, the permute/unpermute stages must stay
// (essentially) absent from the compress pipeline — the fused index
// traversal made them disappear, and any code path that quietly
// rematerializes transposes shows up here as stage share. Second, the
// entropy-decode share must not regress materially against the baseline.

// permuteShareLimit is the ceiling on the combined permute+unpermute share
// of compress stage time. Non-fusable pipelines (physically non-adjacent
// fused axes) legitimately fall back to materialized transposes, so the
// limit is a small nonzero fraction rather than zero.
const permuteShareLimit = 0.02

// entropyDecodeSlack is how many share points the entropy-decode stage may
// grow over the baseline before -check calls it a regression (absorbs
// run-to-run scheduler noise on small -scale runs).
const entropyDecodeSlack = 0.05

// checkField is the per-field verdict in BENCH_CHECK.json.
type checkField struct {
	Field                string   `json:"field"`
	PermuteShare         float64  `json:"compress_permute_share"`
	EntropyDecodeShare   float64  `json:"entropy_decode_share"`
	BaselineEntropyShare float64  `json:"baseline_entropy_decode_share,omitempty"`
	Failures             []string `json:"failures,omitempty"`
}

// checkReport is the BENCH_CHECK.json document.
type checkReport struct {
	Schema   string       `json:"schema"`
	Baseline string       `json:"baseline"`
	Fields   []checkField `json:"fields"`
	// Estimate echoes the graded estimator section (when present) so the
	// check artifact is self-contained.
	Estimate *estimateReport `json:"estimate,omitempty"`
	// Stream echoes the graded temporal-streaming section (when present).
	Stream   *streamReport `json:"stream,omitempty"`
	Failures []string      `json:"failures,omitempty"`
}

// stageShare sums the share of the named stages in a stage list.
func stageShare(stages []perfStage, names ...string) float64 {
	var total float64
	for _, s := range stages {
		for _, n := range names {
			if s.Name == n {
				total += s.Share
			}
		}
	}
	return total
}

// compareStageShares is the pure core of -check: it grades every field of
// cur against base (matched by field name; missing baseline fields skip the
// delta checks) and returns the per-field verdicts plus the flat failure
// list. It never reads the filesystem, so tests can feed it synthetic
// reports directly.
func compareStageShares(cur, base *perfReport) ([]checkField, []string) {
	baseByName := map[string]*perfField{}
	if base != nil {
		for i := range base.Fields {
			baseByName[base.Fields[i].Field] = &base.Fields[i]
		}
	}
	var fields []checkField
	var failures []string
	for i := range cur.Fields {
		f := &cur.Fields[i]
		cf := checkField{
			Field:              f.Field,
			PermuteShare:       stageShare(f.CompressStages, "permute", "unpermute"),
			EntropyDecodeShare: stageShare(f.DecodeStages, "entropy-decode"),
		}
		if cf.PermuteShare > permuteShareLimit {
			cf.Failures = append(cf.Failures, fmt.Sprintf(
				"compress permute+unpermute share %.1f%% exceeds %.1f%% — materialized transposes are back on the hot path",
				100*cf.PermuteShare, 100*permuteShareLimit))
		}
		if bf := baseByName[f.Field]; bf != nil {
			cf.BaselineEntropyShare = stageShare(bf.DecodeStages, "entropy-decode")
			if cf.EntropyDecodeShare > cf.BaselineEntropyShare+entropyDecodeSlack {
				cf.Failures = append(cf.Failures, fmt.Sprintf(
					"entropy-decode share %.1f%% regressed over baseline %.1f%% (+%.1f pts allowed)",
					100*cf.EntropyDecodeShare, 100*cf.BaselineEntropyShare, 100*entropyDecodeSlack))
			}
		}
		for _, msg := range cf.Failures {
			failures = append(failures, f.Field+": "+msg)
		}
		fields = append(fields, cf)
	}
	return fields, failures
}

func loadPerfReport(path string) (*perfReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r perfReport
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if !strings.HasPrefix(r.Schema, "cliz-bench-pr/") {
		return nil, fmt.Errorf("%s: unexpected schema %q", path, r.Schema)
	}
	return &r, nil
}

// runCheck loads the current report (from outDir, as written by -perf) and
// the committed baseline, writes BENCH_CHECK.json next to the current
// report, and errors if any gate failed.
func runCheck(baselinePath, outDir string, log io.Writer) error {
	curPath := "BENCH_PR.json"
	if outDir != "" {
		curPath = filepath.Join(outDir, curPath)
	}
	cur, err := loadPerfReport(curPath)
	if err != nil {
		return fmt.Errorf("current report: %w", err)
	}
	var base *perfReport
	if baselinePath != "" {
		base, err = loadPerfReport(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline report: %w", err)
		}
	}
	fields, failures := compareStageShares(cur, base)
	// The estimator-accuracy gates apply whenever the current report carries
	// an estimate section (clizbench -estimate [-check]); a perf-only report
	// is not required to have one.
	var estFailures []string
	if cur.Estimate != nil {
		estFailures = checkEstimate(cur.Estimate)
		failures = append(failures, estFailures...)
	}
	// Same deal for the temporal-streaming gates (clizbench -stream [-check]).
	if cur.Stream != nil {
		failures = append(failures, checkStream(cur.Stream)...)
	}
	out := checkReport{
		Schema:   "cliz-bench-check/1",
		Baseline: baselinePath,
		Fields:   fields,
		Estimate: cur.Estimate,
		Stream:   cur.Stream,
		Failures: failures,
	}
	checkPath := "BENCH_CHECK.json"
	if outDir != "" {
		checkPath = filepath.Join(outDir, checkPath)
	}
	buf, err := json.MarshalIndent(&out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(checkPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	if log != nil {
		for _, f := range fields {
			fmt.Fprintf(log, "check %-12s permute %5.2f%%  entropy-decode %5.2f%% (baseline %5.2f%%)\n",
				f.Field, 100*f.PermuteShare, 100*f.EntropyDecodeShare, 100*f.BaselineEntropyShare)
		}
		fmt.Fprintf(log, "wrote %s\n", checkPath)
	}
	if len(failures) > 0 {
		return fmt.Errorf("stage-share check failed:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
