package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func report(fields ...perfField) *perfReport {
	return &perfReport{Schema: "cliz-bench-pr/4", Fields: fields}
}

func field(name string, compress, decode []perfStage) perfField {
	return perfField{Field: name, CompressStages: compress, DecodeStages: decode}
}

func TestCompareStageSharesClean(t *testing.T) {
	cur := report(field("SSH",
		[]perfStage{{Name: "predict", Share: 0.6}, {Name: "entropy", Share: 0.3}, {Name: "lossless", Share: 0.1}},
		[]perfStage{{Name: "reconstruct", Share: 0.7}, {Name: "entropy-decode", Share: 0.3}},
	))
	base := report(field("SSH",
		nil,
		[]perfStage{{Name: "reconstruct", Share: 0.6}, {Name: "entropy-decode", Share: 0.4}},
	))
	fields, failures := compareStageShares(cur, base)
	if len(failures) != 0 {
		t.Fatalf("unexpected failures: %v", failures)
	}
	if len(fields) != 1 || fields[0].PermuteShare != 0 {
		t.Fatalf("bad field verdicts: %+v", fields)
	}
	if fields[0].EntropyDecodeShare != 0.3 || fields[0].BaselineEntropyShare != 0.4 {
		t.Fatalf("entropy shares not extracted: %+v", fields[0])
	}
}

func TestCompareStageSharesPermuteRegression(t *testing.T) {
	cur := report(field("Hurricane-T",
		[]perfStage{
			{Name: "predict", Share: 0.5},
			{Name: "permute", Share: 0.08},
			{Name: "unpermute", Share: 0.05},
			{Name: "entropy", Share: 0.37},
		},
		nil,
	))
	fields, failures := compareStageShares(cur, nil)
	if len(failures) != 1 || !strings.Contains(failures[0], "permute+unpermute") {
		t.Fatalf("expected one permute failure, got %v", failures)
	}
	if got := fields[0].PermuteShare; got < 0.129 || got > 0.131 {
		t.Fatalf("permute share %v, want 0.13", got)
	}
}

func TestCompareStageSharesPermuteUnderLimit(t *testing.T) {
	// The fallback path (non-fusable layouts) may leave a sliver of permute
	// time; below the limit it must pass.
	cur := report(field("SSH",
		[]perfStage{{Name: "predict", Share: 0.99}, {Name: "permute", Share: 0.01}},
		nil,
	))
	if _, failures := compareStageShares(cur, nil); len(failures) != 0 {
		t.Fatalf("sub-limit permute share flagged: %v", failures)
	}
}

func TestCompareStageSharesEntropyDecodeRegression(t *testing.T) {
	cur := report(field("CESM-T",
		nil,
		[]perfStage{{Name: "entropy-decode", Share: 0.50}},
	))
	base := report(field("CESM-T",
		nil,
		[]perfStage{{Name: "entropy-decode", Share: 0.30}},
	))
	_, failures := compareStageShares(cur, base)
	if len(failures) != 1 || !strings.Contains(failures[0], "entropy-decode") {
		t.Fatalf("expected entropy-decode regression, got %v", failures)
	}
	// Within slack: no failure.
	cur.Fields[0].DecodeStages[0].Share = 0.33
	if _, failures := compareStageShares(cur, base); len(failures) != 0 {
		t.Fatalf("within-slack delta flagged: %v", failures)
	}
}

func TestCompareStageSharesUnknownBaselineField(t *testing.T) {
	// A field with no baseline counterpart only gets the absolute gates.
	cur := report(field("NewField",
		[]perfStage{{Name: "predict", Share: 1}},
		[]perfStage{{Name: "entropy-decode", Share: 0.9}},
	))
	base := report(field("SSH", nil, []perfStage{{Name: "entropy-decode", Share: 0.1}}))
	if _, failures := compareStageShares(cur, base); len(failures) != 0 {
		t.Fatalf("unmatched field failed delta gates: %v", failures)
	}
}

// TestCommittedBaselinePermuteShare grades the committed BENCH_PR.json with
// the -check gate: the fused-permutation work removed materialized
// transposes from the compress hot path, and the committed baseline must
// keep proving it. If this fails after regenerating BENCH_PR.json, the
// fused path stopped covering the tuned pipelines.
func TestCommittedBaselinePermuteShare(t *testing.T) {
	base, err := loadPerfReport(filepath.Join("..", "..", "BENCH_PR.json"))
	if err != nil {
		t.Fatalf("committed baseline unreadable: %v", err)
	}
	if len(base.Fields) == 0 {
		t.Fatal("committed baseline has no fields")
	}
	_, failures := compareStageShares(base, nil)
	for _, f := range failures {
		t.Errorf("committed baseline violates the stage gate: %s", f)
	}
}

func TestCheckStreamGates(t *testing.T) {
	if fails := checkStream(nil); len(fails) != 1 || !strings.Contains(fails[0], "no stream section") {
		t.Fatalf("nil section: %v", fails)
	}
	if fails := checkStream(&streamReport{}); len(fails) != 1 || !strings.Contains(fails[0], "no fields") {
		t.Fatalf("empty section: %v", fails)
	}
	good := &streamReport{Fields: []streamField{
		{Field: "ADVECT-SSH", DeltaFrames: 20, DeltaVsIndependent: 1.6},
		{Field: "DRIFT-T", DeltaFrames: 12, DeltaVsIndependent: 1.1},
	}}
	if fails := checkStream(good); len(fails) != 0 {
		t.Fatalf("good section failed: %v", fails)
	}
	weak := &streamReport{Fields: []streamField{
		{Field: "ADVECT-SSH", DeltaFrames: 20, DeltaVsIndependent: 1.2},
	}}
	if fails := checkStream(weak); len(fails) != 1 || !strings.Contains(fails[0], "below 1.3") {
		t.Fatalf("weak advantage not caught: %v", fails)
	}
	dead := &streamReport{Fields: []streamField{
		{Field: "ADVECT-SSH", DeltaFrames: 0, DeltaVsIndependent: 0},
	}}
	fails := checkStream(dead)
	if len(fails) != 2 || !strings.Contains(fails[0], "zero delta frames") {
		t.Fatalf("dead delta path not caught: %v", fails)
	}
}
