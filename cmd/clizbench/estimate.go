package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"cliz/internal/core"
	"cliz/internal/datagen"
	"cliz/internal/estimate"
)

// Estimate-accuracy mode: run the fast estimator and the full tuner over the
// datagen scenario suite, compress the full field with the tuned pipeline,
// and grade the estimator on ratio error, pipeline agreement, and latency:
//
//	clizbench -estimate -out results/          # adds an "estimate" section to BENCH_PR.json
//	clizbench -estimate -check -out results/   # ...and enforce the accuracy gates
//
// The section merges into an existing BENCH_PR.json (as written by -perf) so
// one artifact carries both the perf and the estimator baselines.

// Estimate gates (ISSUE 8 acceptance criteria).
const (
	// estimateMaxAvgErrPct is the ceiling on the average
	// |estimated − tuned| / tuned ratio error across the scenario suite.
	estimateMaxAvgErrPct = 15.0
	// estimateMaxLatencyMillis is the ceiling on per-field estimator wall
	// time at bench scale.
	estimateMaxLatencyMillis = 50.0
	// estimateMinAgreement is the floor on the structural pipeline
	// agreement rate (period/classify/fitting/perm/fusion all match).
	estimateMinAgreement = 0.5
)

// estimateField is the per-scenario record in the estimate section.
type estimateField struct {
	Field  string `json:"field"`
	Dims   []int  `json:"dims"`
	Points int    `json:"points"`

	TunedPipeline string  `json:"tuned_pipeline"`
	TunedRatio    float64 `json:"tuned_ratio"` // measured on the full field

	EstimatedPipeline string  `json:"estimated_pipeline"`
	EstimatedRatio    float64 `json:"estimated_ratio"`
	Confidence        float64 `json:"confidence"`
	Fallback          bool    `json:"fallback"` // confidence below DefaultMinConfidence

	RatioErrorPct float64 `json:"ratio_error_pct"`
	// Agreement: the structural knobs (period, classify, fitting, perm,
	// fusion) all match the tuned pipeline. KnobsMatched counts how many of
	// the 6 decided knobs (those five plus level-alpha) agreed.
	Agreement    bool `json:"agreement"`
	KnobsMatched int  `json:"knobs_matched"`

	EstimateMillis float64 `json:"estimate_ms"`
	TuneMillis     float64 `json:"tune_ms"`

	// Notes is the estimator's decision trail (one line per heuristic call
	// and confidence penalty) — the transparency artifact reviewers read
	// when the estimate disagrees with the tuner.
	Notes []string `json:"notes"`
}

// estimateReport is the "estimate" section of BENCH_PR.json.
type estimateReport struct {
	RelErrorBound     float64         `json:"rel_error_bound"`
	AvgRatioErrorPct  float64         `json:"avg_ratio_error_pct"`
	AgreementRate     float64         `json:"agreement_rate"`
	MaxEstimateMillis float64         `json:"max_estimate_ms"`
	FallbackCount     int             `json:"fallback_count"`
	Fields            []estimateField `json:"fields"`
}

// knobsMatched counts agreeing decided knobs between the estimated and tuned
// pipelines; the bool is the structural agreement (everything but the
// level-alpha ladder position).
func knobsMatched(est, tuned core.Pipeline) (int, bool) {
	n := 0
	permEq := len(est.Perm) == len(tuned.Perm)
	if permEq {
		for i := range est.Perm {
			if est.Perm[i] != tuned.Perm[i] {
				permEq = false
				break
			}
		}
	}
	if permEq {
		n++
	}
	fuseEq := est.Fusion.String() == tuned.Fusion.String()
	if fuseEq {
		n++
	}
	fitEq := est.Fitting == tuned.Fitting
	if fitEq {
		n++
	}
	clsEq := est.Classify == tuned.Classify
	if clsEq {
		n++
	}
	perEq := est.Period == tuned.Period
	if perEq {
		n++
	}
	alphaEq := est.LevelAlpha == tuned.LevelAlpha
	if alphaEq {
		n++
	}
	return n, permEq && fuseEq && fitEq && clsEq && perEq
}

// runEstimate grades the estimator over every datagen scenario and merges
// the section into BENCH_PR.json (creating a minimal report if -perf has not
// run in this outDir).
func runEstimate(scale float64, outDir string, log io.Writer) error {
	if scale <= 0 {
		scale = 0.25
	}
	const rel = 1e-2
	sec := estimateReport{RelErrorBound: rel}
	var errSum float64
	agreed := 0
	for _, name := range datagen.Names() {
		ds, err := datagen.ByName(name, scale)
		if err != nil {
			return err
		}
		eb := ds.AbsErrorBound(rel)

		// Latency is the best of two runs: the estimator's probe plan is
		// deterministic, so both runs do identical work, and the minimum
		// rejects scheduler and GC spikes that would otherwise flake the
		// latency gate on a loaded single-core runner.
		t0 := time.Now()
		res, err := estimate.Estimate(ds, eb, estimate.Config{})
		if err != nil {
			return fmt.Errorf("%s: estimate: %w", name, err)
		}
		estMillis := float64(time.Since(t0)) / float64(time.Millisecond)
		t0 = time.Now()
		if _, err := estimate.Estimate(ds, eb, estimate.Config{}); err != nil {
			return fmt.Errorf("%s: estimate: %w", name, err)
		}
		if again := float64(time.Since(t0)) / float64(time.Millisecond); again < estMillis {
			estMillis = again
		}

		t0 = time.Now()
		tuned, _, err := core.AutoTune(ds, eb, core.TuneConfig{}, core.Options{})
		if err != nil {
			return fmt.Errorf("%s: tune: %w", name, err)
		}
		tuneMillis := float64(time.Since(t0)) / float64(time.Millisecond)
		blob, err := core.Compress(ds, eb, tuned, core.Options{})
		if err != nil {
			return fmt.Errorf("%s: compress: %w", name, err)
		}
		tunedRatio := float64(ds.Points()*4) / float64(len(blob))

		matched, agree := knobsMatched(res.Pipeline, tuned)
		f := estimateField{
			Field:             name,
			Dims:              ds.Dims,
			Points:            ds.Points(),
			TunedPipeline:     tuned.String(),
			TunedRatio:        tunedRatio,
			EstimatedPipeline: res.Pipeline.String(),
			EstimatedRatio:    res.Ratio,
			Confidence:        res.Confidence,
			Fallback:          res.Confidence < estimate.DefaultMinConfidence,
			RatioErrorPct:     100 * absf(res.Ratio-tunedRatio) / tunedRatio,
			Agreement:         agree,
			KnobsMatched:      matched,
			EstimateMillis:    estMillis,
			TuneMillis:        tuneMillis,
			Notes:             res.Notes,
		}
		sec.Fields = append(sec.Fields, f)
		errSum += f.RatioErrorPct
		if agree {
			agreed++
		}
		if f.Fallback {
			sec.FallbackCount++
		}
		if f.EstimateMillis > sec.MaxEstimateMillis {
			sec.MaxEstimateMillis = f.EstimateMillis
		}
		if log != nil {
			fmt.Fprintf(log, "estimate %-12s ratio %8.2f (tuned %8.2f, err %5.1f%%)  conf %.2f  agree %v (%d/6)  %6.1fms (tune %7.1fms)\n",
				name, f.EstimatedRatio, f.TunedRatio, f.RatioErrorPct, f.Confidence, f.Agreement, f.KnobsMatched, f.EstimateMillis, f.TuneMillis)
			if !f.Agreement {
				fmt.Fprintf(log, "estimate %-12s   est:   %s\n", name, f.EstimatedPipeline)
				fmt.Fprintf(log, "estimate %-12s   tuned: %s\n", name, f.TunedPipeline)
			}
			if os.Getenv("CLIZBENCH_ESTIMATE_NOTES") != "" {
				for _, n := range res.Notes {
					fmt.Fprintf(log, "estimate %-12s   note: %s\n", name, n)
				}
			}
		}
	}
	if n := len(sec.Fields); n > 0 {
		sec.AvgRatioErrorPct = errSum / float64(n)
		sec.AgreementRate = float64(agreed) / float64(n)
	}

	path := "BENCH_PR.json"
	if outDir != "" {
		path = filepath.Join(outDir, path)
	}
	report, err := loadPerfReport(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		report = &perfReport{
			Schema:     "cliz-bench-pr/5",
			GoVersion:  runtime.Version(),
			NumCPU:     runtime.NumCPU(),
			Scale:      scale,
			UnixMillis: time.Now().UnixMilli(),
		}
	}
	report.Estimate = &sec
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	if log != nil {
		fmt.Fprintf(log, "estimate suite: avg ratio error %.1f%%  agreement %.0f%%  max latency %.1fms  fallbacks %d\n",
			sec.AvgRatioErrorPct, 100*sec.AgreementRate, sec.MaxEstimateMillis, sec.FallbackCount)
		fmt.Fprintf(log, "wrote %s\n", path)
	}
	return nil
}

// checkEstimate grades an estimate section against the acceptance gates; it
// is pure so tests can feed synthetic sections.
func checkEstimate(sec *estimateReport) []string {
	var failures []string
	if sec == nil {
		return []string{"estimate: BENCH_PR.json has no estimate section — run clizbench -estimate first"}
	}
	if len(sec.Fields) == 0 {
		return []string{"estimate: section has no fields"}
	}
	if sec.AvgRatioErrorPct > estimateMaxAvgErrPct {
		failures = append(failures, fmt.Sprintf(
			"estimate: avg ratio error %.1f%% exceeds %.0f%%", sec.AvgRatioErrorPct, estimateMaxAvgErrPct))
	}
	if sec.MaxEstimateMillis > estimateMaxLatencyMillis {
		failures = append(failures, fmt.Sprintf(
			"estimate: max estimator latency %.1fms exceeds %.0fms", sec.MaxEstimateMillis, estimateMaxLatencyMillis))
	}
	if sec.AgreementRate < estimateMinAgreement {
		failures = append(failures, fmt.Sprintf(
			"estimate: pipeline agreement rate %.0f%% below %.0f%%", 100*sec.AgreementRate, 100*estimateMinAgreement))
	}
	return failures
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
