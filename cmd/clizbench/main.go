// Command clizbench regenerates the paper's tables and figures
// (DESIGN.md's per-experiment index E01–E11).
//
//	clizbench -list                   # show available experiments
//	clizbench -run E01 -scale 0.25    # one experiment
//	clizbench -all -out results/      # everything, with CSVs and artifacts
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cliz/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clizbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clizbench", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list experiments")
		id       = fs.String("run", "", "experiment id to run (e.g. E01)")
		all      = fs.Bool("all", false, "run every experiment")
		scale    = fs.Float64("scale", 0, "dataset scale (1.0 = paper dimensions; default 0.25)")
		out      = fs.String("out", "", "directory for CSVs and artifacts (optional)")
		quiet    = fs.Bool("quiet", false, "suppress progress logging")
		perf     = fs.Bool("perf", false, "run the perf-regression suite and write BENCH_PR.json")
		reps     = fs.Int("perf-reps", 3, "repetitions per field in -perf mode (median is reported)")
		workers  = fs.Int("workers", 0, "intra-blob workers for the -perf parallel pass (0 = NumCPU)")
		check    = fs.Bool("check", false, "grade the -out BENCH_PR.json against -baseline and write BENCH_CHECK.json")
		baseline = fs.String("baseline", "BENCH_PR.json", "committed baseline report for -check (\"\" skips the delta gates)")
		est      = fs.Bool("estimate", false, "run the estimator-accuracy suite and merge an estimate section into BENCH_PR.json")
		strm     = fs.Bool("stream", false, "run the temporal-streaming suite and merge a stream section into BENCH_PR.json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *perf || *check || *est || *strm {
		var log io.Writer
		if !*quiet {
			log = os.Stderr
		}
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				return err
			}
		}
		if *perf {
			if err := runPerf(*scale, *reps, *workers, *out, log); err != nil {
				return err
			}
		}
		if *est {
			if err := runEstimate(*scale, *out, log); err != nil {
				return err
			}
		}
		if *strm {
			if err := runStream(*scale, *out, log); err != nil {
				return err
			}
		}
		if *check {
			return runCheck(*baseline, *out, log)
		}
		return nil
	}
	if *list {
		for _, e := range experiments.List() {
			fmt.Printf("%s  %s\n", e[0], e[1])
		}
		return nil
	}
	env := experiments.DefaultEnv()
	if *scale > 0 {
		env.Scale = *scale
	}
	if *out != "" {
		env.OutDir = *out
		if err := os.MkdirAll(*out, 0o755); err != nil {
			return err
		}
	}
	if !*quiet {
		env.Log = os.Stderr
	}
	var tables []experiments.Table
	var err error
	switch {
	case *all:
		tables, err = experiments.RunAll(env)
	case *id != "":
		tables, err = experiments.Run(*id, env)
	default:
		return fmt.Errorf("one of -list, -run <id>, -all is required")
	}
	if err != nil {
		return err
	}
	for i := range tables {
		tables[i].Render(os.Stdout)
		if *out != "" {
			name := fmt.Sprintf("%s_%02d_%s.csv", tables[i].ID, i,
				sanitize(tables[i].Title))
			f, err := os.Create(filepath.Join(*out, name))
			if err != nil {
				return err
			}
			tables[i].CSV(f)
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '_':
			b.WriteByte('_')
		}
		if b.Len() >= 48 {
			break
		}
	}
	return b.String()
}
