package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"cliz/internal/core"
	"cliz/internal/datagen"
	"cliz/internal/trace"
)

// Perf-regression mode: compress and decompress a fixed set of synthetic
// fields, record throughput / ratio / per-stage shares, and emit the result
// as machine-readable JSON (BENCH_PR.json) for cross-PR comparison:
//
//	clizbench -perf -out results/
//
// Numbers are medians over -perf-reps runs so a single scheduler hiccup
// does not move the regression baseline.

// perfStage is one aggregated pipeline stage in the report.
type perfStage struct {
	Name     string  `json:"name"`
	Millis   float64 `json:"ms"`
	Share    float64 `json:"share"`               // fraction of summed stage time
	OutBytes int64   `json:"out_bytes,omitempty"` // section payload, if any
}

// perfField is the full record for one benchmark field.
type perfField struct {
	Field           string  `json:"field"`
	Dims            []int   `json:"dims"`
	Points          int     `json:"points"`
	RelErrorBound   float64 `json:"rel_error_bound"`
	AbsErrorBound   float64 `json:"abs_error_bound"`
	Pipeline        string  `json:"pipeline"`
	CompressedBytes int     `json:"compressed_bytes"`
	Ratio           float64 `json:"ratio"`
	BitsPerPoint    float64 `json:"bits_per_point"`
	CompressMBps    float64 `json:"compress_mb_per_s"`
	DecompressMBps  float64 `json:"decompress_mb_per_s"`
	// Integrity* quantify the v3 checksum cost: directory+CRC bytes in the
	// blob (size overhead) and the decode throughput when every checksum is
	// re-verified up front (DecompressVerified vs plain Decompress).
	IntegrityBytes         int     `json:"integrity_bytes"`
	IntegrityOverheadPct   float64 `json:"integrity_overhead_pct"`
	VerifiedDecompressMBps float64 `json:"verified_decompress_mb_per_s"`
	// VerifyOverheadPct is clamped at 0: verification strictly adds work,
	// so a negative measurement is scheduler noise, not a speedup. When the
	// raw delta came out negative, the clamp is flagged via
	// VerifyOverheadNoise so readers know the figure is noise-limited.
	VerifyOverheadPct   float64 `json:"verify_overhead_pct"`
	VerifyOverheadNoise bool    `json:"verify_overhead_noise,omitempty"`
	// Par* mirror the serial numbers with intra-blob parallelism enabled
	// (Workers = the -workers flag, default NumCPU). The parallel blob is a
	// v2 encoding whose ratio should match the serial one within ~1%.
	ParWorkers         int     `json:"par_workers,omitempty"`
	ParCompressedBytes int     `json:"par_compressed_bytes,omitempty"`
	ParRatio           float64 `json:"par_ratio,omitempty"`
	ParCompressMBps    float64 `json:"par_compress_mb_per_s,omitempty"`
	ParDecompressMBps  float64 `json:"par_decompress_mb_per_s,omitempty"`
	CompressSpeedup    float64 `json:"compress_speedup,omitempty"`
	DecompressSpeedup  float64 `json:"decompress_speedup,omitempty"`

	CompressStages []perfStage `json:"compress_stages"`
	DecodeStages   []perfStage `json:"decode_stages"`
}

// perfReport is the BENCH_PR.json document.
type perfReport struct {
	Schema     string      `json:"schema"`
	GoVersion  string      `json:"go_version"`
	NumCPU     int         `json:"num_cpu"`
	Scale      float64     `json:"scale"`
	Reps       int         `json:"reps"`
	UnixMillis int64       `json:"unix_millis"`
	Fields     []perfField `json:"fields"`
	// Estimate is the estimator-accuracy section written by -estimate mode
	// (see estimate.go). -perf rewrites the document without it, so run
	// -estimate after (or together with) -perf; -check grades the section
	// when present.
	Estimate *estimateReport `json:"estimate,omitempty"`
	// Stream is the temporal-streaming section written by -stream mode (see
	// stream.go); same merge semantics as Estimate.
	Stream *streamReport `json:"stream,omitempty"`
}

// perfFields is the standard corpus: an ocean field with a region mask and
// periodicity (SSH-like) and two atmosphere fields (Hurricane-like, CESM-T).
var perfFields = []string{"SSH", "Hurricane-T", "CESM-T"}

func runPerf(scale float64, reps, workers int, outDir string, log io.Writer) error {
	if scale <= 0 {
		scale = 0.25
	}
	if reps < 1 {
		reps = 3
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	const rel = 1e-2
	report := perfReport{
		Schema:     "cliz-bench-pr/5",
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Scale:      scale,
		Reps:       reps,
		UnixMillis: time.Now().UnixMilli(),
	}
	for _, name := range perfFields {
		ds, err := datagen.ByName(name, scale)
		if err != nil {
			return err
		}
		eb := ds.AbsErrorBound(rel)
		best, _, err := core.AutoTune(ds, eb, core.TuneConfig{}, core.Options{})
		if err != nil {
			return fmt.Errorf("%s: tune: %w", name, err)
		}
		mb := float64(ds.Points()) * 4 / (1 << 20)

		var blob []byte
		var cTimes, dTimes []time.Duration
		var cRec, dRec trace.Recorder
		for r := 0; r < reps; r++ {
			cRec.Reset()
			t0 := time.Now()
			blob, err = core.Compress(ds, eb, best, core.Options{Trace: &cRec})
			cTimes = append(cTimes, time.Since(t0))
			if err != nil {
				return fmt.Errorf("%s: compress: %w", name, err)
			}
			dRec.Reset()
			t0 = time.Now()
			if _, _, err = core.DecompressTraced(blob, &dRec); err != nil {
				return fmt.Errorf("%s: decompress: %w", name, err)
			}
			dTimes = append(dTimes, time.Since(t0))
		}
		var vTimes []time.Duration
		for r := 0; r < reps; r++ {
			t0 := time.Now()
			if _, _, _, err = core.DecompressVerified(blob, core.DecompressOptions{}); err != nil {
				return fmt.Errorf("%s: verified decompress: %w", name, err)
			}
			vTimes = append(vTimes, time.Since(t0))
		}
		info, err := core.Inspect(blob)
		if err != nil {
			return fmt.Errorf("%s: inspect: %w", name, err)
		}
		f := perfField{
			Field:           name,
			Dims:            ds.Dims,
			Points:          ds.Points(),
			RelErrorBound:   rel,
			AbsErrorBound:   eb,
			Pipeline:        best.String(),
			CompressedBytes: len(blob),
			Ratio:           float64(ds.Points()*4) / float64(len(blob)),
			BitsPerPoint:    float64(len(blob)) * 8 / float64(ds.Points()),
			CompressMBps:    mb / median(cTimes).Seconds(),
			DecompressMBps:  mb / median(dTimes).Seconds(),

			IntegrityBytes:         info.IntegrityTotal(),
			IntegrityOverheadPct:   100 * float64(info.IntegrityTotal()) / float64(len(blob)),
			VerifiedDecompressMBps: mb / median(vTimes).Seconds(),

			CompressStages: perfStages(cRec.Aggregate()),
			DecodeStages:   perfStages(dRec.Aggregate()),
		}
		f.VerifyOverheadPct = 100 * (median(vTimes).Seconds()/median(dTimes).Seconds() - 1)
		if f.VerifyOverheadPct < 0 {
			f.VerifyOverheadPct = 0
			f.VerifyOverheadNoise = true
		}

		// Parallel pass: same pipeline, intra-blob workers enabled on both
		// sides. Skipped when the budget is one worker (nothing to compare).
		if workers > 1 {
			var pBlob []byte
			var pcTimes, pdTimes []time.Duration
			for r := 0; r < reps; r++ {
				t0 := time.Now()
				pBlob, err = core.Compress(ds, eb, best, core.Options{Workers: workers})
				pcTimes = append(pcTimes, time.Since(t0))
				if err != nil {
					return fmt.Errorf("%s: parallel compress: %w", name, err)
				}
				t0 = time.Now()
				if _, _, err = core.DecompressWithOptions(pBlob,
					core.DecompressOptions{Workers: workers}); err != nil {
					return fmt.Errorf("%s: parallel decompress: %w", name, err)
				}
				pdTimes = append(pdTimes, time.Since(t0))
			}
			f.ParWorkers = workers
			f.ParCompressedBytes = len(pBlob)
			f.ParRatio = float64(ds.Points()*4) / float64(len(pBlob))
			f.ParCompressMBps = mb / median(pcTimes).Seconds()
			f.ParDecompressMBps = mb / median(pdTimes).Seconds()
			f.CompressSpeedup = f.ParCompressMBps / f.CompressMBps
			f.DecompressSpeedup = f.ParDecompressMBps / f.DecompressMBps
		}
		report.Fields = append(report.Fields, f)
		if log != nil {
			fmt.Fprintf(log, "perf %-12s ratio %7.2f  compress %7.1f MB/s  decompress %7.1f MB/s\n",
				name, f.Ratio, f.CompressMBps, f.DecompressMBps)
			fmt.Fprintf(log, "perf %-12s   integrity %d bytes (%.3f%% size)  verified decompress %7.1f MB/s (+%.1f%% time)\n",
				name, f.IntegrityBytes, f.IntegrityOverheadPct,
				f.VerifiedDecompressMBps, f.VerifyOverheadPct)
			if f.ParWorkers > 1 {
				fmt.Fprintf(log, "perf %-12s   par(w=%d) ratio %7.2f  compress %7.1f MB/s (%.2fx)  decompress %7.1f MB/s (%.2fx)\n",
					name, f.ParWorkers, f.ParRatio,
					f.ParCompressMBps, f.CompressSpeedup,
					f.ParDecompressMBps, f.DecompressSpeedup)
			}
		}
	}
	path := "BENCH_PR.json"
	if outDir != "" {
		path = filepath.Join(outDir, path)
	}
	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	if log != nil {
		fmt.Fprintf(log, "wrote %s\n", path)
	}
	return nil
}

// perfStages converts aggregated trace records (from the last rep — shares
// are stable across reps) into report rows, skipping the totals.
func perfStages(agg []trace.Stage) []perfStage {
	var sum time.Duration
	for _, s := range agg {
		if s.Name != "total" {
			sum += s.Duration
		}
	}
	out := make([]perfStage, 0, len(agg))
	for _, s := range agg {
		if s.Name == "total" {
			continue
		}
		ps := perfStage{
			Name:     s.Name,
			Millis:   float64(s.Duration) / float64(time.Millisecond),
			OutBytes: s.OutBytes,
		}
		if sum > 0 {
			ps.Share = float64(s.Duration) / float64(sum)
		}
		out = append(out, ps)
	}
	return out
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
