package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"cliz/internal/core"
	"cliz/internal/datagen"
	"cliz/internal/dataset"
	"cliz/internal/stream"
)

// Stream mode: run the temporal-streaming codec over the datagen temporal
// scenarios and record how much delta-coding a frame against the previous
// reconstruction wins over compressing the same frame independently at the
// same bound:
//
//	clizbench -stream -out results/          # adds a "stream" section to BENCH_PR.json
//	clizbench -stream -check -out results/   # ...and enforce the delta-advantage gate
//
// Like -estimate, the section merges into an existing BENCH_PR.json so one
// artifact carries perf, estimator and streaming baselines.

// streamMinDeltaAdvantage is the acceptance floor (ISSUE 9): on the
// advecting-field scenario, delta-coded frames must compress at least this
// factor better than independently compressed frames at the same bound.
const streamMinDeltaAdvantage = 1.3

// streamField is the per-scenario record in the stream section.
type streamField struct {
	Field    string `json:"field"`
	Dims     []int  `json:"dims"`
	Frames   int    `json:"frames"`
	Interval int    `json:"interval"`

	KeyFrames   int `json:"key_frames"`
	DeltaFrames int `json:"delta_frames"`
	IntraFrames int `json:"intra_frames"`

	// StreamBytes is the whole container; StreamRatio is raw/stream.
	StreamBytes int     `json:"stream_bytes"`
	StreamRatio float64 `json:"stream_ratio"`

	// DeltaBytes sums the delta frames' payloads; IndependentBytes is the
	// same frames compressed independently (default pipeline, same bound).
	// DeltaVsIndependent = IndependentBytes / DeltaBytes — the temporal win.
	DeltaBytes         int     `json:"delta_bytes"`
	IndependentBytes   int     `json:"independent_bytes"`
	DeltaVsIndependent float64 `json:"delta_vs_independent"`

	AppendMBps float64 `json:"append_mb_per_s"`
	DecodeMBps float64 `json:"decode_mb_per_s"`
}

// streamReport is the "stream" section of BENCH_PR.json.
type streamReport struct {
	RelErrorBound float64       `json:"rel_error_bound"`
	Fields        []streamField `json:"fields"`
}

// runStream benchmarks the streaming codec over the temporal scenario suite
// and merges the section into BENCH_PR.json (creating a minimal report if
// -perf has not run in this outDir). Every decoded frame is verified against
// the bound — a drift here fails the run, not just the gate.
func runStream(scale float64, outDir string, log io.Writer) error {
	if scale <= 0 {
		scale = 0.25
	}
	const rel = 1e-3
	sec := streamReport{RelErrorBound: rel}
	for _, spec := range datagen.TemporalScenario(scale) {
		f, err := benchStream(spec, rel)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		sec.Fields = append(sec.Fields, *f)
		if log != nil {
			fmt.Fprintf(log, "stream %-12s %d×%v  key/delta/intra %d/%d/%d  ratio %6.2f  delta-vs-indep %5.2f×  append %6.1f MB/s  decode %6.1f MB/s\n",
				f.Field, f.Frames, f.Dims, f.KeyFrames, f.DeltaFrames, f.IntraFrames,
				f.StreamRatio, f.DeltaVsIndependent, f.AppendMBps, f.DecodeMBps)
		}
	}

	path := "BENCH_PR.json"
	if outDir != "" {
		path = filepath.Join(outDir, path)
	}
	report, err := loadPerfReport(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		report = &perfReport{
			Schema:     "cliz-bench-pr/5",
			GoVersion:  runtime.Version(),
			NumCPU:     runtime.NumCPU(),
			Scale:      scale,
			UnixMillis: time.Now().UnixMilli(),
		}
	}
	report.Stream = &sec
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	if log != nil {
		fmt.Fprintf(log, "wrote %s\n", path)
	}
	return nil
}

// benchStream runs one temporal scenario through the stream writer and
// reader, compresses every delta-coded frame independently for comparison,
// and verifies each decoded frame stays in bound.
func benchStream(spec datagen.TemporalSpec, rel float64) (*streamField, error) {
	ts, err := datagen.Temporal(spec)
	if err != nil {
		return nil, err
	}
	eb, err := temporalAbsBound(ts, rel)
	if err != nil {
		return nil, err
	}
	cfg := stream.Config{
		Name: ts.Name,
		Dims: ts.Dims,
		Mask: ts.Mask,
		Fill: ts.Fill,
		EB:   eb,
	}

	var buf bytes.Buffer
	t0 := time.Now()
	w, err := stream.NewWriter(&buf, cfg)
	if err != nil {
		return nil, err
	}
	infos := make([]stream.FrameInfo, 0, len(ts.Frames))
	for _, frame := range ts.Frames {
		info, err := w.Append(frame)
		if err != nil {
			return nil, err
		}
		infos = append(infos, info)
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	appendMillis := float64(time.Since(t0)) / float64(time.Millisecond)

	vol := 1
	for _, d := range ts.Dims {
		vol *= d
	}
	rawBytes := float64(len(ts.Frames) * vol * 4)
	f := &streamField{
		Field:       ts.Name,
		Dims:        ts.Dims,
		Frames:      len(ts.Frames),
		Interval:    stream.DefaultKeyframeInterval,
		StreamBytes: buf.Len(),
		StreamRatio: rawBytes / float64(buf.Len()),
		AppendMBps:  rawBytes / 1e6 / (appendMillis / 1e3),
	}

	// Independent baseline: compress each delta-coded frame on its own with
	// the default intra pipeline at the same bound — the cost of not having
	// the previous reconstruction.
	for i, info := range infos {
		switch info.Kind {
		case stream.KindKey:
			f.KeyFrames++
		case stream.KindIntra:
			f.IntraFrames++
		case stream.KindDelta:
			f.DeltaFrames++
			f.DeltaBytes += info.PayloadBytes
			ds := &dataset.Dataset{
				Name:      ts.Name,
				Data:      ts.Frames[i],
				Dims:      ts.Dims,
				Mask:      ts.Mask,
				FillValue: ts.Fill,
			}
			pipe := core.Default(ds)
			blob, err := core.Compress(ds, eb, pipe, core.Options{})
			if err != nil {
				return nil, fmt.Errorf("independent frame %d: %w", i, err)
			}
			f.IndependentBytes += len(blob)
		}
	}
	if f.DeltaBytes > 0 {
		f.DeltaVsIndependent = float64(f.IndependentBytes) / float64(f.DeltaBytes)
	}

	// Decode throughput, verifying the no-drift contract on every frame.
	r, err := stream.Parse(buf.Bytes(), core.DecompressOptions{})
	if err != nil {
		return nil, err
	}
	var valid []bool
	if ts.Mask != nil {
		if valid, err = ts.Mask.Broadcast(ts.Dims); err != nil {
			return nil, err
		}
	}
	t0 = time.Now()
	for t := 0; t < r.Frames(); t++ {
		recon, err := r.ReadFrame()
		if err != nil {
			return nil, fmt.Errorf("decode frame %d: %w", t, err)
		}
		if worst := streamFrameErr(ts.Frames[t], recon, valid); worst > eb*(1+1e-9) {
			return nil, fmt.Errorf("frame %d drifted out of bound: err %g > eb %g", t, worst, eb)
		}
	}
	decodeMillis := float64(time.Since(t0)) / float64(time.Millisecond)
	f.DecodeMBps = rawBytes / 1e6 / (decodeMillis / 1e3)
	return f, nil
}

// temporalAbsBound resolves the benchmark's relative bound against the first
// frame's valid-point value range (the same resolution rule the public
// WithRelErrorBound path uses).
func temporalAbsBound(ts *datagen.TemporalStream, rel float64) (float64, error) {
	var valid []bool
	if ts.Mask != nil {
		var err error
		if valid, err = ts.Mask.Broadcast(ts.Dims); err != nil {
			return 0, err
		}
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range ts.Frames[0] {
		if valid != nil && !valid[i] {
			continue
		}
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi <= lo {
		return 0, fmt.Errorf("first frame has no value range (lo %g, hi %g)", lo, hi)
	}
	return rel * (hi - lo), nil
}

// streamFrameErr returns the worst absolute reconstruction error over the
// frame's valid points (masked points must carry fill exactly and are
// checked by the conformance suite, not here).
func streamFrameErr(orig, recon []float32, valid []bool) float64 {
	worst := 0.0
	for i := range orig {
		if valid != nil && !valid[i] {
			continue
		}
		d := math.Abs(float64(recon[i]) - float64(orig[i]))
		if d > worst {
			worst = d
		}
	}
	return worst
}

// checkStream grades a stream section against the delta-advantage gate; it
// is pure so tests can feed synthetic sections. The gate applies to the
// best-case scenario: at least one field must show the temporal win, and
// every field must actually exercise delta coding.
func checkStream(sec *streamReport) []string {
	if sec == nil {
		return []string{"stream: BENCH_PR.json has no stream section — run clizbench -stream first"}
	}
	if len(sec.Fields) == 0 {
		return []string{"stream: section has no fields"}
	}
	var failures []string
	best := 0.0
	for _, f := range sec.Fields {
		if f.DeltaFrames == 0 {
			failures = append(failures, fmt.Sprintf(
				"stream: %s coded zero delta frames — temporal prediction never engaged", f.Field))
		}
		if f.DeltaVsIndependent > best {
			best = f.DeltaVsIndependent
		}
	}
	if best < streamMinDeltaAdvantage {
		failures = append(failures, fmt.Sprintf(
			"stream: best delta-vs-independent advantage %.2f× below %.1f×", best, streamMinDeltaAdvantage))
	}
	return failures
}
