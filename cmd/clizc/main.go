// Command clizc compresses and decompresses raw float32 climate grids with
// CliZ or any of the reimplemented baseline compressors.
//
// Compress:
//
//	clizc -compress -in field.f32 -dims 1032x384x320 -rel 1e-2 \
//	      -codec CliZ -lead time -periodic -mask-fill 1e30 -out field.clz
//
// Decompress (the blob is self-describing):
//
//	clizc -decompress -in field.clz -out recon.f32
//
// Verify a round trip against the original:
//
//	clizc -decompress -in field.clz -orig field.f32 -dims 1032x384x320
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"cliz/internal/codec"
	"cliz/internal/core"
	"cliz/internal/dataset"
	"cliz/internal/mask"
	"cliz/internal/netcdf"
	"cliz/internal/quality"
	"cliz/internal/stats"
	"cliz/internal/trace"

	_ "cliz/internal/qoz"
	_ "cliz/internal/sperr"
	_ "cliz/internal/sz3"
	_ "cliz/internal/zfp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "clizc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("clizc", flag.ContinueOnError)
	var (
		doCompress   = fs.Bool("compress", false, "compress -in (raw little-endian float32) to -out")
		doDecompress = fs.Bool("decompress", false, "decompress -in to -out (raw float32)")
		in           = fs.String("in", "", "input file")
		out          = fs.String("out", "", "output file (optional for -decompress with -orig)")
		dimsFlag     = fs.String("dims", "", "grid extents, e.g. 1032x384x320 (trailing two are lat,lon)")
		codecName    = fs.String("codec", "CliZ", fmt.Sprintf("compressor: one of %v", codec.Names()))
		rel          = fs.Float64("rel", 0, "relative error bound (fraction of value range)")
		abs          = fs.Float64("abs", 0, "absolute error bound")
		lead         = fs.String("lead", "none", "leading dimension meaning: none|time|height")
		periodic     = fs.Bool("periodic", false, "mark the time dimension as periodic")
		maskFill     = fs.Float64("mask-fill", 0, "derive a mask: |value| >= threshold is invalid")
		orig         = fs.String("orig", "", "original raw file for verification after -decompress")
		ncVar        = fs.String("nc-var", "", "read this variable from a NetCDF classic -in file (dims come from the file)")
		ncMask       = fs.String("nc-mask", "", "NetCDF variable holding the region mask (0 = invalid)")
		chunks       = fs.Int("chunks", 0, "CliZ only: split along dim 0 into this many chunks compressed in parallel")
		workers      = fs.Int("workers", 0, "worker goroutines for -chunks (0 = all cores)")
		verbose      = fs.Bool("v", false, "CliZ only: print a per-stage timing/byte table to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *doCompress == *doDecompress:
		return fmt.Errorf("exactly one of -compress / -decompress is required")
	case *in == "":
		return fmt.Errorf("-in is required")
	}

	if *doCompress {
		var (
			data []float32
			dims []int
			ds   *dataset.Dataset
			err  error
		)
		if *ncVar != "" {
			ds, err = loadNetCDF(*in, *ncVar, *ncMask)
			if err != nil {
				return err
			}
			data, dims = ds.Data, ds.Dims
		} else {
			dims, err = parseDims(*dimsFlag)
			if err != nil {
				return err
			}
			data, err = readFloats(*in)
			if err != nil {
				return err
			}
			ds = &dataset.Dataset{Name: *in, Data: data, Dims: dims}
		}
		switch strings.ToLower(*lead) {
		case "time":
			ds.Lead = dataset.LeadTime
		case "height":
			ds.Lead = dataset.LeadHeight
		case "none", "":
		default:
			return fmt.Errorf("unknown -lead %q", *lead)
		}
		ds.Periodic = *periodic
		if *maskFill > 0 {
			if len(dims) < 2 {
				return fmt.Errorf("-mask-fill needs at least 2 dims")
			}
			nLat, nLon := dims[len(dims)-2], dims[len(dims)-1]
			ds.Mask = mask.FromFillValue(data[:nLat*nLon], nLat, nLon, *maskFill)
			ds.FillValue = firstFill(data, ds.Mask)
		}
		if err := ds.Validate(); err != nil {
			return err
		}
		var eb float64
		switch {
		case *abs > 0 && *rel == 0:
			eb = *abs
		case *rel > 0 && *abs == 0:
			eb = ds.AbsErrorBound(*rel)
		default:
			return fmt.Errorf("exactly one of -rel / -abs must be positive")
		}
		c, err := codec.Get(*codecName)
		if err != nil {
			return err
		}
		if *verbose && *codecName != "CliZ" {
			return fmt.Errorf("-v requires -codec CliZ")
		}
		var rec trace.Recorder
		var opt core.Options
		if *verbose {
			opt.Trace = &rec
		}
		var blob []byte
		if *chunks > 1 {
			if *codecName != "CliZ" {
				return fmt.Errorf("-chunks requires -codec CliZ")
			}
			best, _, err := core.AutoTune(ds, eb, core.TuneConfig{}, opt)
			if err != nil {
				return err
			}
			blob, err = core.CompressChunked(ds, eb, best, opt, *chunks, *workers)
			if err != nil {
				return err
			}
		} else if *verbose {
			best, _, err := core.AutoTune(ds, eb, core.TuneConfig{}, opt)
			if err != nil {
				return err
			}
			blob, err = core.Compress(ds, eb, best, opt)
			if err != nil {
				return err
			}
		} else {
			blob, err = c.Compress(ds, eb)
			if err != nil {
				return err
			}
		}
		if *verbose {
			fmt.Fprintf(os.Stderr, "compress stages:\n%s", trace.Table(rec.Aggregate()))
		}
		if *out == "" {
			*out = *in + ".clz"
		}
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: %d -> %d bytes (ratio %.2f, %.3f bits/point) with %s\n",
			*out, len(data)*4, len(blob),
			stats.Ratio(len(data), len(blob)),
			stats.BitRate(len(blob), len(data)), c.Name())
		return nil
	}

	// Decompress: probe every codec (blobs are self-describing).
	blob, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	var data []float32
	var dims []int
	var used string
	var rec trace.Recorder
	var tc trace.Collector
	if *verbose {
		tc = &rec
	}
	if core.IsChunked(blob) {
		data, dims, err = core.DecompressChunkedTraced(blob, *workers, tc)
		if err != nil {
			return err
		}
		used = "CliZ (chunked)"
	} else if d, dm, derr := core.DecompressTraced(blob, tc); derr == nil {
		data, dims, used = d, dm, "CliZ"
	} else if core.IsUnit(blob) {
		// The magic says CliZ; no other codec can recognise it. Surface the
		// real failure (v3 blobs attribute it to a named section) instead of
		// the generic no-codec message.
		return fmt.Errorf("damaged CliZ blob (clizinspect -verify locates the damage): %w", derr)
	} else {
		rec.Reset()
	}
	for _, name := range codec.Names() {
		if used != "" {
			break
		}
		c, _ := codec.Get(name)
		if d, dm, derr := c.Decompress(blob); derr == nil {
			data, dims, used = d, dm, name
			break
		}
	}
	if used == "" {
		return fmt.Errorf("no registered codec recognises %s", *in)
	}
	if *verbose && rec.Stages() != nil {
		fmt.Fprintf(os.Stderr, "decode stages:\n%s", trace.Table(rec.Aggregate()))
	}
	fmt.Printf("%s: decoded %v (%d points) with %s\n", *in, dims, len(data), used)
	if *out != "" {
		if err := writeFloats(*out, data); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *orig != "" {
		ref, err := readFloats(*orig)
		if err != nil {
			return err
		}
		if len(ref) != len(data) {
			return fmt.Errorf("original has %d points, reconstruction %d", len(ref), len(data))
		}
		// Full Z-checker-style assessment; huge sentinels are treated as
		// masked so fill values do not drown the statistics.
		valid := make([]bool, len(ref))
		anyMasked := false
		for i, v := range ref {
			valid[i] = math.Abs(float64(v)) < 1e30 && !math.IsNaN(float64(v))
			if !valid[i] {
				anyMasked = true
			}
		}
		if !anyMasked {
			valid = nil
		}
		fmt.Print(quality.Assess(ref, data, dims, valid))
	}
	return nil
}

func parseDims(s string) ([]int, error) {
	if s == "" {
		return nil, fmt.Errorf("-dims is required for -compress")
	}
	parts := strings.Split(strings.ToLower(s), "x")
	dims := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad dims %q", s)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func readFloats(path string) ([]float32, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw)%4 != 0 {
		return nil, fmt.Errorf("%s: size %d is not a float32 array", path, len(raw))
	}
	out := make([]float32, len(raw)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out, nil
}

func writeFloats(path string, data []float32) error {
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	return os.WriteFile(path, raw, 0o644)
}

// loadNetCDF reads a variable (and optionally a mask variable) from a
// NetCDF classic file into a dataset.
func loadNetCDF(path, varName, maskVar string) (*dataset.Dataset, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	f, err := netcdf.Parse(raw)
	if err != nil {
		return nil, err
	}
	data, dims, err := f.ReadFloat32(varName)
	if err != nil {
		return nil, err
	}
	ds := &dataset.Dataset{Name: path + ":" + varName, Data: data, Dims: dims}
	v, _ := f.FindVar(varName)
	if fill, ok := v.FillValue(); ok {
		ds.FillValue = float32(fill)
	}
	if maskVar != "" {
		if len(dims) < 2 {
			return nil, fmt.Errorf("mask needs at least 2 dims")
		}
		mv, mdims, err := f.ReadFloat32(maskVar)
		if err != nil {
			return nil, err
		}
		nLat, nLon := dims[len(dims)-2], dims[len(dims)-1]
		if len(mdims) != 2 || mdims[0] != nLat || mdims[1] != nLon {
			return nil, fmt.Errorf("mask variable %s dims %v do not match grid %dx%d",
				maskVar, mdims, nLat, nLon)
		}
		regions := make([]int32, len(mv))
		for i, x := range mv {
			regions[i] = int32(x)
		}
		ds.Mask = mask.New(nLat, nLon, regions)
	}
	return ds, nil
}

func firstFill(data []float32, m *mask.Map) float32 {
	for i, r := range m.Regions {
		if r == 0 {
			return data[i]
		}
	}
	return 0
}
