// Command clizconform runs the seeded conformance harness: it generates
// random-but-reproducible dataset × pipeline × option cases, checks every
// invariant of the CliZ contract on each (error bound, fill exactness,
// decode determinism, worker independence, blob integrity, trace
// accounting, ratio sanity, differential SZ3/QoZ oracles), shrinks failures
// to minimal reproducers and writes replayable artifacts.
//
// Sweep:    clizconform -seed 42 -cases 200 -out conform-out
// Replay:   clizconform -replay conform-out/conform-repro-42-17.json
//
// The sweep is fully deterministic: the same seed (with the same -cases and
// -max-points) generates the same cases and the same verdicts. The exit
// code is 0 when every case passes or is cleanly rejected, 1 when any
// invariant fails, 2 on usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cliz/internal/conform"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "master seed; the whole sweep is a pure function of it")
		cases     = flag.Int("cases", 100, "number of cases to generate and run")
		maxPoints = flag.Int("max-points", 1<<15, "cap on each case's grid volume")
		baselines = flag.Bool("baselines", true, "run the differential SZ3/QoZ oracles")
		shrink    = flag.Bool("shrink", true, "minimize failing cases before reporting")
		outDir    = flag.String("out", "", "directory for replayable failure artifacts")
		replay    = flag.String("replay", "", "replay one artifact instead of sweeping")
		budget    = flag.Duration("budget", 0, "stop the sweep after this wall time (0 = none)")
		jsonOut   = flag.Bool("json", false, "print the result as JSON")
		verbose   = flag.Bool("v", false, "log every case")
	)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	if *replay != "" {
		os.Exit(runReplay(*replay, *baselines, *jsonOut))
	}

	cfg := conform.Config{
		Seed:      *seed,
		Cases:     *cases,
		MaxPoints: *maxPoints,
		Baselines: *baselines,
		Shrink:    *shrink,
		OutDir:    *outDir,
		Budget:    *budget,
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	start := time.Now()
	res, err := conform.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		fmt.Printf("%s in %v\n", res.Summary(), time.Since(start).Round(time.Millisecond))
		for _, f := range res.Failures {
			fmt.Printf("\ncase %d: %s\n", f.Index, f.Case.String())
			for _, fl := range f.Failures {
				fmt.Printf("  %s\n", fl)
			}
			if f.Shrunk != nil {
				fmt.Printf("  shrunk to %d points: %s\n", f.Shrunk.Points(), f.Shrunk.String())
				for _, fl := range f.ShrunkFailures {
					fmt.Printf("    %s\n", fl)
				}
			}
			if f.ArtifactPath != "" {
				fmt.Printf("  artifact: %s  (replay with: clizconform -replay %s)\n",
					f.ArtifactPath, f.ArtifactPath)
			}
		}
	}
	if !res.OK() {
		os.Exit(1)
	}
}

func runReplay(path string, baselines, jsonOut bool) int {
	art, err := conform.LoadArtifact(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	rep := conform.Replay(art, conform.RunOptions{Baselines: baselines})
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	} else {
		if art.Lint != nil {
			fmt.Printf("lint contract at capture: %s (%s)\n",
				art.Lint.Version, strings.Join(art.Lint.Analyzers, ", "))
		}
		printVerdict("original", &art.Case, rep.Original)
		if rep.Shrunk != nil {
			printVerdict("shrunk", art.Shrunk, rep.Shrunk)
		}
	}
	if rep.StillFails() {
		return 1
	}
	fmt.Println("artifact no longer reproduces — the bug appears fixed")
	return 0
}

func printVerdict(kind string, c *conform.Case, v *conform.Verdict) {
	fmt.Printf("%s case (%d points): %s\n", kind, c.Points(), c.String())
	fmt.Printf("  outcome: %s\n", v.Outcome)
	if v.RejectReason != "" {
		fmt.Printf("  reason: %s\n", v.RejectReason)
	}
	for _, f := range v.Failures {
		fmt.Printf("  %s\n", f)
	}
}
