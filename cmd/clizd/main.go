// Command clizd serves the CliZ compressor over HTTP: a bounded worker
// pool running the library's goroutine-safe pipeline, with per-request
// deadlines, admission control (429 + Retry-After under saturation), an
// LRU cache of auto-tuned pipelines, and Prometheus-style /metrics.
//
// Start it and compress a raw float32 field:
//
//	clizd -addr :8080 &
//	curl -sf --data-binary @field.f32 \
//	    'localhost:8080/v1/compress?dims=26x180x360&rel=1e-3&lead=time' \
//	    -o field.clz
//	curl -sf --data-binary @field.clz localhost:8080/v1/decompress -o recon.f32
//
// Endpoints: POST /v1/compress, /v1/decompress, /v1/verify, /v1/tune,
// /v1/plan; GET /metrics, /healthz. See internal/service for the wire
// protocol.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cliz/internal/service"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "max concurrent codec requests (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 0, "max queued requests beyond the workers (0 = 2×workers)")
		maxBody  = flag.Int64("max-body", 0, "request body cap in bytes (0 = 1 GiB)")
		cache    = flag.Int("cache", 0, "tuned-pipeline LRU capacity (0 = 64)")
		timeout  = flag.Duration("timeout", 0, "per-request codec deadline (0 = 2m)")
		drainFor = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	)
	flag.Parse()

	srv, err := service.NewServer(service.Config{
		Workers:        *workers,
		Queue:          *queue,
		MaxBodyBytes:   *maxBody,
		CacheSize:      *cache,
		RequestTimeout: *timeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	hs := &http.Server{
		Addr:    *addr,
		Handler: srv,
		// Slow-loris guard: a client must deliver its headers promptly;
		// body time is governed by the per-request codec deadline.
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("clizd listening on %s", *addr)

	select {
	case err := <-errc:
		log.Fatalf("clizd: %v", err)
	case <-ctx.Done():
	}
	log.Printf("clizd draining (up to %s)", *drainFor)
	dctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("clizd shutdown: %v", err)
	}
}
