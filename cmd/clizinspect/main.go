// Command clizinspect prints the internal structure of a CliZ blob —
// header, pipeline, per-section byte budget, nested template/residual blobs
// and parallel chunks — without decompressing the payload.
//
//	clizinspect field.clz
//
// With -decode the blob is additionally decompressed under a stage
// collector and a per-stage timing table (aggregated across chunks and
// template/residual sub-blobs) is printed.
//
//	clizinspect -decode field.clz
package main

import (
	"flag"
	"fmt"
	"os"

	"cliz/internal/core"
	"cliz/internal/trace"
)

func main() {
	fs := flag.NewFlagSet("clizinspect", flag.ContinueOnError)
	decode := fs.Bool("decode", false, "decompress the blob and print a decode stage table")
	workers := fs.Int("workers", 0, "decode workers for chunked blobs (0 = all cores)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: clizinspect [-decode] <file.clz>")
		os.Exit(2)
	}
	blob, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "clizinspect:", err)
		os.Exit(1)
	}
	info, err := core.Inspect(blob)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clizinspect:", err)
		os.Exit(1)
	}
	fmt.Print(info)
	if *decode {
		var rec trace.Recorder
		var data []float32
		if core.IsChunked(blob) {
			data, _, err = core.DecompressChunkedTraced(blob, *workers, &rec)
		} else {
			data, _, err = core.DecompressTraced(blob, &rec)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "clizinspect: decode:", err)
			os.Exit(1)
		}
		fmt.Printf("\ndecode stages (%d points):\n%s", len(data), trace.Table(rec.Aggregate()))
	}
}
