// Command clizinspect prints the internal structure of a CliZ blob —
// header, pipeline, per-section byte budget, nested template/residual blobs
// and parallel chunks — without decompressing the payload.
//
//	clizinspect field.clz
package main

import (
	"fmt"
	"os"

	"cliz/internal/core"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: clizinspect <file.clz>")
		os.Exit(2)
	}
	blob, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "clizinspect:", err)
		os.Exit(1)
	}
	info, err := core.Inspect(blob)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clizinspect:", err)
		os.Exit(1)
	}
	fmt.Print(info)
}
