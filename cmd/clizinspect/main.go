// Command clizinspect prints the internal structure of a CliZ blob —
// header, pipeline, per-section byte budget, nested template/residual blobs
// and parallel chunks — without decompressing the payload.
//
//	clizinspect field.clz
//
// With -verify every integrity checksum of a v3 blob is recomputed (v1/v2
// blobs are walked structurally) and a per-section damage report is printed;
// the exit status is non-zero when any section fails.
//
//	clizinspect -verify field.clz
//
// With -decode the blob is additionally decompressed under a stage
// collector and a per-stage timing table (aggregated across chunks and
// template/residual sub-blobs) is printed. -bound-check n additionally
// replays the prediction traversal over the decoded output, re-verifying
// every n-th point against the error bound.
//
//	clizinspect -decode field.clz
package main

import (
	"flag"
	"fmt"
	"os"

	"cliz/internal/core"
	"cliz/internal/trace"
)

func main() {
	fs := flag.NewFlagSet("clizinspect", flag.ContinueOnError)
	decode := fs.Bool("decode", false, "decompress the blob and print a decode stage table")
	verify := fs.Bool("verify", false, "recompute all integrity checksums and print a damage report")
	boundCheck := fs.Int("bound-check", 0, "with -decode: re-verify every n-th decoded point against the error bound (0 = off)")
	workers := fs.Int("workers", 0, "decode workers for chunked blobs (0 = all cores)")
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: clizinspect [-verify] [-decode [-bound-check n]] <file.clz>")
		os.Exit(2)
	}
	blob, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "clizinspect:", err)
		os.Exit(1)
	}
	info, err := core.Inspect(blob)
	if err != nil {
		fmt.Fprintln(os.Stderr, "clizinspect:", err)
		os.Exit(1)
	}
	fmt.Print(info)
	if n := info.IntegrityTotal(); n > 0 {
		fmt.Printf("integrity overhead: %d bytes (%.3f%% of blob)\n",
			n, 100*float64(n)/float64(len(blob)))
	}
	if *verify {
		rep := core.Verify(blob)
		fmt.Printf("\n%s", rep)
		if !rep.OK() {
			os.Exit(1)
		}
	}
	if *decode {
		var rec trace.Recorder
		opt := core.DecompressOptions{Workers: *workers, Trace: &rec, BoundCheckEvery: *boundCheck}
		var data []float32
		if core.IsChunked(blob) {
			data, _, err = core.DecompressChunkedOpts(blob, *workers, opt)
		} else {
			data, _, err = core.DecompressWithOptions(blob, opt)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "clizinspect: decode:", err)
			os.Exit(1)
		}
		fmt.Printf("\ndecode stages (%d points):\n%s", len(data), trace.Table(rec.Aggregate()))
	}
}
