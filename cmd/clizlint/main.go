// Command clizlint runs the CliZ static-analysis suite (internal/analysis)
// over module packages and reports diagnostics.
//
// Usage:
//
//	clizlint [flags] [packages]
//
// Packages default to ./... (every package in the module). Exit status:
// 0 when no diagnostics, 1 when diagnostics were reported, 2 on usage or
// load/type-check errors.
//
// With -baseline the suite runs in ratchet mode: findings recorded in the
// baseline file are tolerated (keyed by file, analyzer and message — not
// line number, so unrelated edits do not churn it), new findings still
// fail, and stale entries are reported so the baseline can be tightened.
// -update-baseline rewrites the file to the current findings (adopt or
// ratchet down).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"cliz/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("clizlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	filter := fs.String("analyzer", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	baselinePath := fs.String("baseline", "", "baseline file: tolerate recorded findings, fail only on new ones")
	updateBaseline := fs.Bool("update-baseline", false, "rewrite the -baseline file to the current findings and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: clizlint [flags] [packages]\n\nAnalyzers: %s\n\n",
			strings.Join(analysis.AnalyzerNames(), ", "))
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *updateBaseline && *baselinePath == "" {
		fmt.Fprintln(stderr, "clizlint: -update-baseline requires -baseline <file>")
		return 2
	}

	analyzers := analysis.Analyzers()
	if *filter != "" {
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*filter, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "clizlint: unknown analyzer %q (have: %s)\n",
					name, strings.Join(analysis.AnalyzerNames(), ", "))
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "clizlint: %v\n", err)
		return 2
	}
	loader, err := analysis.NewLoader(wd)
	if err != nil {
		fmt.Fprintf(stderr, "clizlint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadPatterns(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "clizlint: %v\n", err)
		return 2
	}

	diags := analysis.Run(loader.Fset, pkgs, analyzers)

	if *updateBaseline {
		if err := os.WriteFile(*baselinePath, analysis.FormatBaseline(loader.ModuleDir(), diags), 0o644); err != nil {
			fmt.Fprintf(stderr, "clizlint: %v\n", err)
			return 2
		}
		fmt.Fprintf(stderr, "clizlint: baseline %s updated with %d finding(s)\n", *baselinePath, len(diags))
		return 0
	}
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintf(stderr, "clizlint: %v\n", err)
			return 2
		}
		base, err := analysis.ParseBaseline(data)
		if err != nil {
			fmt.Fprintf(stderr, "clizlint: %s: %v\n", *baselinePath, err)
			return 2
		}
		var stale int
		diags, stale = base.Filter(loader.ModuleDir(), diags)
		if stale > 0 {
			phrase := fmt.Sprintf("%d baseline entries no longer fire", stale)
			if stale == 1 {
				phrase = "1 baseline entry no longer fires"
			}
			fmt.Fprintf(stderr, "clizlint: %s; run -update-baseline to ratchet down\n", phrase)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "clizlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "clizlint: %d diagnostic(s) (%s, %d package(s))\n",
			len(diags), analysis.Version, len(pkgs))
		return 1
	}
	return 0
}
