package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintModule writes a tiny single-package module with one deliberate
// boundedalloc finding and returns its directory.
func lintModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module lintme\n\ngo 1.22\n",
		"decode.go": `package core

import "encoding/binary"

func Decode(b []byte) []byte {
	n := binary.LittleEndian.Uint32(b)
	out := make([]byte, n)
	return out
}
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runIn runs the CLI from dir, capturing output.
func runIn(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestRunReportsFindings(t *testing.T) {
	dir := lintModule(t)
	code, stdout, _ := runIn(t, dir, ".")
	if code != 1 {
		t.Fatalf("want exit 1 on findings, got %d (stdout %q)", code, stdout)
	}
	if !strings.Contains(stdout, "boundedalloc") {
		t.Fatalf("want a boundedalloc finding, got %q", stdout)
	}
}

func TestBaselineAdoptAndRatchet(t *testing.T) {
	dir := lintModule(t)
	basePath := filepath.Join(dir, "lint.baseline")

	// Adopt: record current findings, then the lint is clean.
	code, _, stderr := runIn(t, dir, "-baseline", basePath, "-update-baseline", ".")
	if code != 0 {
		t.Fatalf("update-baseline: want exit 0, got %d (%s)", code, stderr)
	}
	code, stdout, _ := runIn(t, dir, "-baseline", basePath, ".")
	if code != 0 {
		t.Fatalf("baselined run: want exit 0, got %d (stdout %q)", code, stdout)
	}

	// A new finding not in the baseline fails.
	extra := `package core

import "encoding/binary"

func Decode2(b []byte) []byte {
	n := binary.LittleEndian.Uint64(b)
	return make([]byte, n)
}
`
	if err := os.WriteFile(filepath.Join(dir, "decode2.go"), []byte(extra), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ = runIn(t, dir, "-baseline", basePath, ".")
	if code != 1 {
		t.Fatalf("new finding: want exit 1, got %d (stdout %q)", code, stdout)
	}
	if !strings.Contains(stdout, "decode2.go") {
		t.Fatalf("want only the new finding reported, got %q", stdout)
	}
	if strings.Contains(stdout, "decode.go:") {
		t.Fatalf("baselined finding must stay suppressed, got %q", stdout)
	}

	// Ratchet: fix the original finding; the run is clean but reports the
	// stale entry so the baseline can be tightened.
	if err := os.Remove(filepath.Join(dir, "decode2.go")); err != nil {
		t.Fatal(err)
	}
	fixed := `package core

func Decode(b []byte) []byte {
	return append([]byte(nil), b...)
}
`
	if err := os.WriteFile(filepath.Join(dir, "decode.go"), []byte(fixed), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, stderr = runIn(t, dir, "-baseline", basePath, ".")
	if code != 0 {
		t.Fatalf("fixed run: want exit 0, got %d", code)
	}
	if !strings.Contains(stderr, "no longer fire") {
		t.Fatalf("want stale-entry notice, got %q", stderr)
	}

	// Ratchet down: regenerating shrinks the baseline to empty.
	code, _, _ = runIn(t, dir, "-baseline", basePath, "-update-baseline", ".")
	if code != 0 {
		t.Fatalf("ratchet update: want exit 0, got %d", code)
	}
	data, err := os.ReadFile(basePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line != "" && !strings.HasPrefix(line, "#") {
			t.Fatalf("ratcheted baseline must be empty, got %q", line)
		}
	}
}

func TestUpdateBaselineRequiresPath(t *testing.T) {
	dir := lintModule(t)
	code, _, stderr := runIn(t, dir, "-update-baseline", ".")
	if code != 2 {
		t.Fatalf("want usage error, got %d", code)
	}
	if !strings.Contains(stderr, "-baseline") {
		t.Fatalf("want flag hint, got %q", stderr)
	}
}
