// Command datagen writes the synthetic Table III datasets to disk as raw
// little-endian float32 grids, with sidecar .meta descriptions and .mask
// region maps, for use with clizc or external tools.
//
//	datagen -out data/ -scale 0.25            # all six datasets
//	datagen -out data/ -name SSH -scale 1.0   # one dataset at paper size
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"cliz/internal/datagen"
	"cliz/internal/dataset"
	"cliz/internal/netcdf"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		out    = fs.String("out", "data", "output directory")
		name   = fs.String("name", "", "dataset name (default: all of "+fmt.Sprint(datagen.Names())+")")
		scale  = fs.Float64("scale", datagen.DefaultScale, "linear scale (1.0 = paper dimensions)")
		format = fs.String("format", "raw", "output format: raw (f32+meta+mask) or nc (NetCDF classic)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	names := datagen.Names()
	if *name != "" {
		names = []string{*name}
	}
	for _, n := range names {
		ds, err := datagen.ByName(n, *scale)
		if err != nil {
			return err
		}
		switch *format {
		case "raw":
			err = writeDataset(*out, ds)
		case "nc":
			err = writeNetCDF(*out, ds)
		default:
			err = fmt.Errorf("unknown -format %q", *format)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeNetCDF emits the dataset as a NetCDF classic file with CESM-style
// naming: the field variable, a REGION_MASK variable, and _FillValue.
func writeNetCDF(dir string, ds *dataset.Dataset) error {
	var w netcdf.Writer
	dimNames := make([]string, len(ds.Dims))
	n := len(ds.Dims)
	for i := range dimNames {
		switch {
		case i == n-1:
			dimNames[i] = "lon"
		case i == n-2:
			dimNames[i] = "lat"
		case ds.Lead == dataset.LeadTime && i == 0:
			dimNames[i] = "time"
		default:
			dimNames[i] = "lev"
		}
	}
	ids := make([]int, n)
	for i, d := range ds.Dims {
		ids[i] = w.AddDim(dimNames[i], d)
	}
	w.AddGlobalAttr(netcdf.Attr{Name: "title", Value: "cliz synthetic " + ds.Name})
	var attrs []netcdf.Attr
	if ds.Mask != nil {
		attrs = append(attrs, netcdf.Attr{
			Name: "_FillValue", Type: netcdf.Float, Value: []float64{float64(ds.FillValue)},
		})
	}
	if ds.Periodic {
		attrs = append(attrs, netcdf.Attr{Name: "cell_methods", Value: "time: mean (monthly, annual cycle)"})
	}
	if err := w.AddFloatVar(ds.Name, ids, attrs, ds.Data); err != nil {
		return err
	}
	if ds.Mask != nil {
		if err := w.AddIntVar("REGION_MASK", ids[n-2:], nil, ds.Mask.Regions); err != nil {
			return err
		}
	}
	blob, err := w.Bytes()
	if err != nil {
		return err
	}
	path := filepath.Join(dir, ds.Name+".nc")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%v, %d points)\n", path, ds.Dims, ds.Points())
	return nil
}

func writeDataset(dir string, ds *dataset.Dataset) error {
	base := filepath.Join(dir, ds.Name)
	raw := make([]byte, 4*len(ds.Data))
	for i, v := range ds.Data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	if err := os.WriteFile(base+".f32", raw, 0o644); err != nil {
		return err
	}
	meta := fmt.Sprintf("name: %s\ndims: %v\nlead: %s\nperiodic: %v\nmask: %v\nfill: %g\npoints: %d\n",
		ds.Name, ds.Dims, ds.Lead, ds.Periodic, ds.Mask != nil, ds.FillValue, ds.Points())
	if err := os.WriteFile(base+".meta", []byte(meta), 0o644); err != nil {
		return err
	}
	if ds.Mask != nil {
		mb := make([]byte, 4*len(ds.Mask.Regions))
		for i, r := range ds.Mask.Regions {
			binary.LittleEndian.PutUint32(mb[4*i:], uint32(r))
		}
		if err := os.WriteFile(base+".mask", mb, 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s (%v, %d points)\n", base+".f32", ds.Dims, ds.Points())
	return nil
}
