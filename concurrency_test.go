package cliz_test

// Concurrency regression tests for the server-shaped usage patterns clizd
// introduces: one long-lived *Trace shared across concurrent requests, and
// AutoTune running on several datasets at once. Run under -race these
// pin the library's "safe for concurrent use" claims to executable proof.

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"cliz"
)

// concDS builds a small periodic field, seeded so distinct names yield
// distinct (but deterministic) data.
func concDS(seed int64) *cliz.Dataset {
	const (
		nt, ny, nx = 48, 24, 24
		period     = 12
	)
	data := make([]float32, nt*ny*nx)
	s := float64(seed)
	for t := 0; t < nt; t++ {
		seasonal := math.Sin(2 * math.Pi * float64(t%period) / period)
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := 10*seasonal +
					3*math.Sin(s+float64(y)/3) +
					2*math.Cos(s*2+float64(x)/4) +
					0.1*math.Sin(float64(t*ny*nx+y*nx+x)+s)
				data[t*ny*nx+y*nx+x] = float32(v)
			}
		}
	}
	return &cliz.Dataset{
		Name: fmt.Sprintf("conc-%d", seed), Data: data,
		Dims: []int{nt, ny, nx}, Lead: cliz.LeadTime, Periodic: true,
	}
}

// TestSharedTraceConcurrentRequests shares one *Trace across concurrent
// Compress, chunked Compress and Decompress calls — the pattern of a
// daemon aggregating per-stage metrics across its worker pool — while a
// reader drains Stages/Aggregate/String the whole time. The test's only
// assertion beyond -race cleanliness is that every recorded stage stays
// internally consistent.
func TestSharedTraceConcurrentRequests(t *testing.T) {
	var tr cliz.Trace
	const workers = 6
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Concurrent reader: snapshots must be safe while writers record.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = tr.Stages()
			_ = tr.Aggregate()
			_ = tr.String()
		}
	}()

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ds := concDS(int64(w))
			var blob []byte
			var err error
			if w%2 == 0 {
				blob, _, err = cliz.Compress(ds, cliz.Rel(1e-3), nil, cliz.WithTrace(&tr))
			} else {
				blob, _, err = cliz.CompressChunked(ds, cliz.Rel(1e-3), nil, 4, 2, cliz.WithTrace(&tr))
			}
			if err != nil {
				t.Error(err)
				return
			}
			if _, _, err := cliz.Decompress(blob, cliz.WithTrace(&tr)); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-readerDone

	stages := tr.Stages()
	if len(stages) == 0 {
		t.Fatal("shared trace recorded nothing")
	}
	for _, s := range stages {
		if s.Name == "" || s.Duration < 0 {
			t.Fatalf("inconsistent stage record: %+v", s)
		}
	}
}

// TestConcurrentAutoTuneDeterministic runs AutoTune on distinct datasets
// concurrently and asserts each result is identical to its serial
// reference — same winning pipeline, same report — for every interleaving
// the race detector can provoke. Shared scratch or a shared RNG between
// tuner instances would break this (or trip -race).
func TestConcurrentAutoTuneDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("tuner search in -short")
	}
	opt := func() *cliz.TuneOptions { return &cliz.TuneOptions{MaxPipelines: 24} }
	const nds = 3
	type ref struct {
		pipe   string
		report cliz.TuneReport
	}
	refs := make([]ref, nds)
	for i := 0; i < nds; i++ {
		pipe, rep, err := cliz.AutoTune(concDS(int64(i)), cliz.Rel(1e-3), opt())
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref{pipe: pipe.String(), report: *rep}
	}

	const rounds = 3
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for i := 0; i < nds; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				pipe, rep, err := cliz.AutoTune(concDS(int64(i)), cliz.Rel(1e-3), opt())
				if err != nil {
					t.Errorf("ds %d: %v", i, err)
					return
				}
				if pipe.String() != refs[i].pipe {
					t.Errorf("ds %d round %d: pipeline %q != serial %q",
						i, round, pipe.String(), refs[i].pipe)
				}
				if !reflect.DeepEqual(*rep, refs[i].report) {
					t.Errorf("ds %d round %d: report %+v != serial %+v",
						i, round, *rep, refs[i].report)
				}
			}(i)
		}
		wg.Wait()
	}
}

// TestConcurrentCompressDeterministic asserts the blob a dataset
// compresses to is independent of what other goroutines are doing — the
// bit-equality contract the service e2e test relies on.
func TestConcurrentCompressDeterministic(t *testing.T) {
	refs := make([][]byte, 4)
	for i := range refs {
		blob, _, err := cliz.Compress(concDS(int64(i)), cliz.Rel(1e-3), nil)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = blob
	}
	var wg sync.WaitGroup
	for i := range refs {
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				blob, _, err := cliz.Compress(concDS(int64(i)), cliz.Rel(1e-3), nil)
				if err != nil {
					t.Errorf("ds %d: %v", i, err)
					return
				}
				if string(blob) != string(refs[i]) {
					t.Errorf("ds %d: concurrent blob differs from serial blob", i)
				}
			}(i)
		}
	}
	wg.Wait()
}
