package cliz

import (
	"context"
	"errors"
	"testing"
	"time"
)

func ctxTestDataset() *Dataset {
	ds := &Dataset{
		Name:     "ctx",
		Data:     make([]float32, 96*48*48),
		Dims:     []int{96, 48, 48},
		Lead:     LeadTime,
		Periodic: true,
	}
	for i := range ds.Data {
		ds.Data[i] = float32(i%113)*0.5 + float32((i/7)%11)
	}
	return ds
}

func TestWithContextCanceledCompress(t *testing.T) {
	ds := ctxTestDataset()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Compress(ds, Abs(1e-3), nil, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// Without the option nothing is polled and the run completes.
	if _, _, err := Compress(ds, Abs(1e-3), nil); err != nil {
		t.Fatalf("uncanceled compress failed: %v", err)
	}
}

func TestWithContextCanceledDecompress(t *testing.T) {
	ds := ctxTestDataset()
	blob, _, err := Compress(ds, Abs(1e-3), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Decompress(blob, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if _, _, _, err := DecompressVerified(blob, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("verified: want context.Canceled, got %v", err)
	}
	// Partial decode must abort too, not report NaN-filled "damage".
	cblob, _, err := CompressChunked(ds, Abs(1e-3), nil, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecompressPartial(cblob, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("partial: want context.Canceled, got %v", err)
	}
}

func TestWithContextCanceledChunked(t *testing.T) {
	ds := ctxTestDataset()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := CompressChunked(ds, Abs(1e-3), nil, 4, 2, WithContext(ctx)); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestTuneContextCanceled(t *testing.T) {
	ds := ctxTestDataset()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := AutoTune(ds, Rel(1e-2), &TuneOptions{MaxPipelines: 16, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestEstimateContextCanceled(t *testing.T) {
	ds := ctxTestDataset()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Estimate(ds, Rel(1e-2), &TuneOptions{Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// An estimate-first tune under a canceled context must not fall back to
	// an uncancelable search.
	_, _, err = AutoTune(ds, Rel(1e-2), &TuneOptions{EstimateFirst: true, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("estimate-first tune: want context.Canceled, got %v", err)
	}
}

func TestTuneContextDeadline(t *testing.T) {
	ds := ctxTestDataset()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond)
	_, _, err := AutoTune(ds, Rel(1e-2), &TuneOptions{Context: ctx})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}
