package cliz

import (
	"time"

	"cliz/internal/core"
	"cliz/internal/estimate"
)

// MinEstimateConfidence is the default confidence threshold below which an
// estimate-first tune falls back to the full AutoTune search. Estimate's
// report carries the confidence so callers can apply their own threshold.
const MinEstimateConfidence = estimate.DefaultMinConfidence

// EstimateReport summarizes a fast pipeline estimate.
type EstimateReport struct {
	// Ratio is the predicted full-data compression ratio (uncompressed
	// bytes / predicted compressed bytes) under the estimated pipeline.
	Ratio float64
	// Confidence in [0, 1]: 1 means every heuristic decision was far from
	// a breakpoint and the probe extrapolation was clean. Compare against
	// MinEstimateConfidence to choose estimate vs full search.
	Confidence float64
	// Period is the detected period along the time axis (0 = none).
	Period int
	// Notes documents each heuristic decision and confidence penalty in
	// order — the estimate's transparency contract.
	Notes []string
	// Elapsed is the total estimation wall time.
	Elapsed time.Duration
}

// Estimate predicts the AutoTune winner and its full-data compression ratio
// without running the candidate search: a cheap feature pass over a strided
// sample, a transparent heuristic model nominating a short candidate slate,
// and two probe compressions extrapolating the ratio — tens of milliseconds
// against AutoTune's seconds. The report's Confidence says how much to trust
// it; TuneOptions.EstimateFirst automates the fallback. opt may be nil; only
// the search-space restrictions (DisablePeriod, DisableClassify,
// FixedPeriod) apply to an estimate.
func Estimate(ds *Dataset, eb ErrorBound, opt *TuneOptions) (Pipeline, *EstimateReport, error) {
	ids, err := ds.internal()
	if err != nil {
		return Pipeline{}, nil, err
	}
	abs, err := eb.resolve(ids)
	if err != nil {
		return Pipeline{}, nil, err
	}
	var tc core.TuneConfig
	var interrupt func() error
	if opt != nil {
		tc = core.TuneConfig{
			DisablePeriod:   opt.DisablePeriod,
			DisableClassify: opt.DisableClassify,
			FixedPeriod:     opt.FixedPeriod,
		}
		if opt.Context != nil {
			interrupt = opt.Context.Err
		}
	}
	res, err := estimate.Estimate(ids, abs, estimate.Config{Tune: tc, Interrupt: interrupt})
	if err != nil {
		return Pipeline{}, nil, err
	}
	return Pipeline{p: res.Pipeline}, &EstimateReport{
		Ratio:      res.Ratio,
		Confidence: res.Confidence,
		Period:     res.Pipeline.Period,
		Notes:      res.Notes,
		Elapsed:    res.Elapsed,
	}, nil
}
