package cliz_test

import (
	"math"
	"testing"

	"cliz"
)

// TestEstimatePublicAPI checks the fast estimator through the public surface:
// the estimated pipeline must be directly usable with Compress, the report
// must be explainable (notes) and calibrated (confidence in range), and the
// ratio prediction must be in the neighborhood of the measured ratio.
func TestEstimatePublicAPI(t *testing.T) {
	ds := makeTestDataset()
	pipe, rep, err := cliz.Estimate(ds, cliz.Rel(1e-2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Confidence < 0 || rep.Confidence > 1 {
		t.Fatalf("confidence %.2f outside [0, 1]", rep.Confidence)
	}
	if len(rep.Notes) == 0 {
		t.Fatal("no notes: the estimate must explain itself")
	}
	if rep.Ratio <= 1 {
		t.Fatalf("predicted ratio %.2f for a compressible field", rep.Ratio)
	}

	// The estimated pipeline compresses and round-trips within the bound.
	blob, info, err := cliz.Compress(ds, cliz.Rel(1e-2), &pipe)
	if err != nil {
		t.Fatalf("estimated pipeline rejected by Compress: %v", err)
	}
	if info.Pipeline != pipe.String() {
		t.Fatalf("info pipeline %q != estimate %q", info.Pipeline, pipe.String())
	}
	recon, _, err := cliz.Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := cliz.ValidityOf(ds)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range ds.Data {
		if valid[i] {
			lo, hi = math.Min(lo, float64(v)), math.Max(hi, float64(v))
		}
	}
	if got, eb := cliz.MaxAbsErr(ds.Data, recon, valid), 0.01*(hi-lo); got > eb*(1+1e-9) {
		t.Fatalf("bound violated under estimated pipeline: %g > %g", got, eb)
	}

	// The prediction tracks reality within a loose factor — this is a sanity
	// check, not the calibration gate (clizbench -estimate -check owns that).
	if rep.Ratio < info.Ratio/3 || rep.Ratio > info.Ratio*3 {
		t.Errorf("predicted ratio %.1f vs measured %.1f: off by more than 3x", rep.Ratio, info.Ratio)
	}
}

// TestEstimateHonorsTuneOptions: search-space restrictions must bind the
// estimate exactly as they bind AutoTune.
func TestEstimateHonorsTuneOptions(t *testing.T) {
	ds := makeTestDataset() // period-12 seasonal signal
	pipe, rep, err := cliz.Estimate(ds, cliz.Rel(1e-2), &cliz.TuneOptions{DisablePeriod: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Period != 0 {
		t.Errorf("DisablePeriod: estimated period %d", rep.Period)
	}
	if _, _, err := cliz.Compress(ds, cliz.Rel(1e-2), &pipe); err != nil {
		t.Fatal(err)
	}
}

// TestEstimateFirstTune drives both sides of the EstimateFirst fallback by
// bracketing the estimator's own confidence with the acceptance threshold.
func TestEstimateFirstTune(t *testing.T) {
	ds := makeTestDataset()
	_, rep, err := cliz.Estimate(ds, cliz.Rel(1e-2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Confidence <= 0 {
		t.Fatalf("estimator has no confidence (%.2f) in the test field; the bracketing below needs some", rep.Confidence)
	}

	// Threshold below the confidence: the estimate answers, no search.
	pipe, tr, err := cliz.AutoTune(ds, cliz.Rel(1e-2),
		&cliz.TuneOptions{EstimateFirst: true, MinConfidence: rep.Confidence / 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Mode != "estimate" {
		t.Fatalf("mode %q, want estimate (confidence %.2f, threshold %.2f)", tr.Mode, tr.Confidence, rep.Confidence/2)
	}
	if tr.PipelinesTested != 0 {
		t.Errorf("estimate mode tested %d pipelines; the search should have been skipped", tr.PipelinesTested)
	}
	if tr.Confidence < rep.Confidence/2 {
		t.Errorf("accepted below its own threshold: %.2f < %.2f", tr.Confidence, rep.Confidence/2)
	}
	if _, _, err := cliz.Compress(ds, cliz.Rel(1e-2), &pipe); err != nil {
		t.Fatal(err)
	}

	// Threshold above the confidence: full search, mode "search".
	if rep.Confidence < 0.995 {
		_, tr, err = cliz.AutoTune(ds, cliz.Rel(1e-2),
			&cliz.TuneOptions{SamplingRate: 0.05, EstimateFirst: true, MinConfidence: rep.Confidence + 0.005})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Mode != "search" {
			t.Fatalf("mode %q, want search fallback below the confidence threshold", tr.Mode)
		}
		if tr.PipelinesTested == 0 {
			t.Error("search fallback tested no pipelines")
		}
	}

	// Without EstimateFirst the report says "search" — the mode is always
	// filled so clizd can label its decisions.
	_, tr, err = cliz.AutoTune(ds, cliz.Rel(1e-2), &cliz.TuneOptions{SamplingRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Mode != "search" {
		t.Fatalf("plain AutoTune mode %q, want search", tr.Mode)
	}
}
