// Atmostune: demonstrate why dimension permutation/fusion matters. A global
// atmosphere temperature field varies ~100× faster along height than along
// latitude/longitude (the paper's Fig. 4 observation); the auto-tuner should
// discover a pipeline that beats the default natural-order configuration.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cliz"
)

// makeAtmosphere synthesizes a (height, lat, lon) temperature field with a
// dominant vertical lapse rate and smooth horizontal structure.
func makeAtmosphere(nH, nLat, nLon int) *cliz.Dataset {
	rng := rand.New(rand.NewSource(11))
	data := make([]float32, nH*nLat*nLon)
	for h := 0; h < nH; h++ {
		level := 288 - 4.4*float64(h) // strong lapse along height
		for i := 0; i < nLat; i++ {
			for j := 0; j < nLon; j++ {
				lat := float64(i) / float64(nLat)
				lon := float64(j) / float64(nLon)
				v := level +
					8*math.Sin(2*math.Pi*lat*2)*math.Cos(2*math.Pi*lon*3) +
					0.02*rng.NormFloat64()
				data[(h*nLat+i)*nLon+j] = float32(v)
			}
		}
	}
	return &cliz.Dataset{
		Name: "atmos-T", Data: data, Dims: []int{nH, nLat, nLon},
		Lead: cliz.LeadHeight,
	}
}

func main() {
	ds := makeAtmosphere(26, 90, 180)
	eb := cliz.Rel(1e-3)

	// Baseline: the untuned default pipeline.
	defPipe, err := cliz.DefaultPipeline(ds)
	if err != nil {
		log.Fatal(err)
	}
	_, defInfo, err := cliz.Compress(ds, eb, &defPipe)
	if err != nil {
		log.Fatal(err)
	}

	// Auto-tuned pipeline (1% sampling, the paper's default).
	pipe, report, err := cliz.AutoTune(ds, eb, &cliz.TuneOptions{SamplingRate: 0.01})
	if err != nil {
		log.Fatal(err)
	}
	blob, info, err := cliz.Compress(ds, eb, &pipe)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("default pipeline: %-40s ratio %.2f\n", defPipe, defInfo.Ratio)
	fmt.Printf("tuned pipeline  : %-40s ratio %.2f\n", pipe, info.Ratio)
	fmt.Printf("tested %d candidate pipelines; gain %.1f%%\n",
		report.PipelinesTested, (info.Ratio/defInfo.Ratio-1)*100)

	recon, _, err := cliz.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PSNR %.2f dB, max error %.4g\n",
		cliz.PSNR(ds.Data, recon, nil), cliz.MaxAbsErr(ds.Data, recon, nil))
}
