// Hurricane: compress a Hurricane-Isabel-like temperature volume — the
// paper's hardest case for CliZ's climate-specific tricks (no mask, no
// periodicity, weak topography aloft), where the win comes only from the
// dimension permutation/fusion search. Compares all five codecs at several
// error bounds and prints the rate-distortion points.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cliz"
	"cliz/baselines"
)

func makeHurricane(nH, nLat, nLon int) *cliz.Dataset {
	rng := rand.New(rand.NewSource(5))
	data := make([]float32, nH*nLat*nLon)
	cy, cx := 0.5*float64(nLat), 0.5*float64(nLon)
	sigma := 0.1 * float64(nLat)
	for h := 0; h < nH; h++ {
		level := 25 - 0.7*float64(h)
		warm := 6 * float64(h) / float64(nH)
		for i := 0; i < nLat; i++ {
			for j := 0; j < nLon; j++ {
				dy, dx := float64(i)-cy, float64(j)-cx
				r2 := (dy*dy + dx*dx) / (2 * sigma * sigma)
				v := level + warm*math.Exp(-r2) -
					3*math.Exp(-(math.Sqrt(r2)-1.3)*(math.Sqrt(r2)-1.3)*5) +
					0.05*rng.NormFloat64()
				data[(h*nLat+i)*nLon+j] = float32(v)
			}
		}
	}
	return &cliz.Dataset{
		Name: "hurricane-T", Data: data, Dims: []int{nH, nLat, nLon},
		Lead: cliz.LeadHeight,
	}
}

func main() {
	ds := makeHurricane(40, 120, 120)
	valid := []bool(nil)

	fmt.Printf("Hurricane-T %v — rate-distortion across codecs\n\n", ds.Dims)
	fmt.Printf("%-6s  %8s  %10s  %8s  %10s\n", "codec", "rel-eb", "bits/pt", "ratio", "PSNR(dB)")
	for _, rel := range []float64{1e-2, 1e-3, 1e-4} {
		for _, name := range baselines.Names() {
			blob, err := baselines.Compress(name, ds, cliz.Rel(rel))
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			recon, _, err := baselines.Decompress(name, blob)
			if err != nil {
				log.Fatalf("%s: %v", name, err)
			}
			bits := float64(len(blob)) * 8 / float64(len(ds.Data))
			ratio := float64(len(ds.Data)*4) / float64(len(blob))
			fmt.Printf("%-6s  %8.0e  %10.3f  %8.2f  %10.2f\n",
				name, rel, bits, ratio, cliz.PSNR(ds.Data, recon, valid))
		}
		fmt.Println()
	}
}
