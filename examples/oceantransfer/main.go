// Oceantransfer: reproduce the paper's motivating use case (§VII-C4) — move
// a month of ocean model output across a WAN. Each codec compresses the same
// field at the same error bound; the transfer time over a shared 10 Gbit/s
// link then follows directly from the compressed sizes.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"cliz"
	"cliz/baselines"
)

const (
	wanBandwidth = 1.25e9 // bytes/s ≈ 10 Gbit/s
	nFiles       = 256    // one file per core, as in the paper's Fig. 13
)

func makeOcean(nT, nLat, nLon int) *cliz.Dataset {
	rng := rand.New(rand.NewSource(3))
	const fill = 9.96921e36
	regions := make([]int32, nLat*nLon)
	for i := range regions {
		lat := float64(i/nLon) / float64(nLat)
		lon := float64(i%nLon) / float64(nLon)
		land := math.Sin(2*math.Pi*lat*1.5)*math.Cos(2*math.Pi*lon*2.5) > 0.55
		if !land {
			regions[i] = 1
		}
	}
	data := make([]float32, nT*nLat*nLon)
	plane := nLat * nLon
	for t := 0; t < nT; t++ {
		season := 2 * math.Pi * float64(t) / 12
		for p := 0; p < plane; p++ {
			idx := t*plane + p
			if regions[p] == 0 {
				data[idx] = fill
				continue
			}
			lat := float64(p/nLon) / float64(nLat)
			data[idx] = float32(30*math.Sin(2*math.Pi*lat*4) +
				10*math.Sin(season+6*lat) + 0.2*rng.NormFloat64())
		}
	}
	return &cliz.Dataset{
		Name: "ocean-SSH", Data: data, Dims: []int{nT, nLat, nLon},
		Lead: cliz.LeadTime, Periodic: true,
		MaskRegions: regions, FillValue: fill,
	}
}

func main() {
	ds := makeOcean(120, 96, 80)
	eb := cliz.Rel(1e-2)
	rawBytes := len(ds.Data) * 4

	fmt.Printf("field: %v = %.1f MB raw per file, %d files over a 10 Gbit/s WAN\n\n",
		ds.Dims, float64(rawBytes)/1e6, nFiles)
	fmt.Printf("%-6s  %10s  %8s  %12s  %12s\n",
		"codec", "bytes/file", "ratio", "compress(s)", "transfer(s)")

	for _, name := range []string{"CliZ", "SZ3", "QoZ", "ZFP", "SPERR"} {
		t0 := time.Now()
		blob, err := baselines.Compress(name, ds, eb)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		cmp := time.Since(t0).Seconds()
		// Verify the blob decodes before shipping it anywhere.
		if _, _, err := baselines.Decompress(name, blob); err != nil {
			log.Fatalf("%s: decode: %v", name, err)
		}
		transfer := float64(nFiles) * float64(len(blob)) / wanBandwidth
		fmt.Printf("%-6s  %10d  %8.2f  %12.2f  %12.2f\n",
			name, len(blob), float64(rawBytes)/float64(len(blob)), cmp, transfer)
	}
	uncompressed := float64(nFiles) * float64(rawBytes) / wanBandwidth
	fmt.Printf("\nuncompressed transfer would take %.1f s\n", uncompressed)
}
