// Parallel: compress a long time series with chunked parallel compression —
// the library-level analogue of the paper's per-core-file setup (§VII-C4).
// Shows the throughput/ratio trade: more chunks parallelize better but each
// chunk amortizes its own header, Huffman tables and periodic template.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"runtime"
	"time"

	"cliz"
)

func makeSeries(nT, nLat, nLon int) *cliz.Dataset {
	rng := rand.New(rand.NewSource(9))
	data := make([]float32, nT*nLat*nLon)
	plane := nLat * nLon
	for t := 0; t < nT; t++ {
		season := 2 * math.Pi * float64(t) / 12
		for p := 0; p < plane; p++ {
			lat := float64(p/nLon) / float64(nLat)
			data[t*plane+p] = float32(25*math.Sin(2*math.Pi*lat*3) +
				8*math.Sin(season+4*lat) + 0.1*rng.NormFloat64())
		}
	}
	return &cliz.Dataset{
		Name: "series", Data: data, Dims: []int{nT, nLat, nLon},
		Lead: cliz.LeadTime, Periodic: true,
	}
}

func main() {
	ds := makeSeries(240, 96, 96)
	eb := cliz.Rel(1e-2)
	pipe, _, err := cliz.AutoTune(ds, eb, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("field %v (%d MB), pipeline: %s, %d cores\n\n",
		ds.Dims, len(ds.Data)*4/1e6, pipe, runtime.GOMAXPROCS(0))
	fmt.Printf("%7s  %10s  %8s  %12s  %14s\n",
		"chunks", "bytes", "ratio", "compress", "decompress")
	for _, chunks := range []int{1, 2, 4, 8} {
		t0 := time.Now()
		blob, info, err := cliz.CompressChunked(ds, eb, &pipe, chunks, 0)
		if err != nil {
			log.Fatal(err)
		}
		ct := time.Since(t0)
		t0 = time.Now()
		recon, _, err := cliz.Decompress(blob)
		if err != nil {
			log.Fatal(err)
		}
		dt := time.Since(t0)
		if e := cliz.MaxAbsErr(ds.Data, recon, nil); e > 0 {
			// Bound check: 1% of the value range.
			lo, hi := rangeOf(ds.Data)
			if e > 0.01*(hi-lo)*(1+1e-9) {
				log.Fatalf("bound violated: %g", e)
			}
		}
		fmt.Printf("%7d  %10d  %8.2f  %12v  %14v\n",
			chunks, info.CompressedBytes, info.Ratio,
			ct.Round(time.Millisecond), dt.Round(time.Millisecond))
	}
}

func rangeOf(x []float32) (float64, float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range x {
		lo = math.Min(lo, float64(v))
		hi = math.Max(hi, float64(v))
	}
	return lo, hi
}
