// Quickstart: compress a small ocean field with CliZ using the public API —
// auto-tune once (offline stage), compress (online stage), decompress, and
// verify the error bound.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cliz"
)

// makeSSH synthesizes a small sea-surface-height-like field: monthly
// snapshots with an annual cycle over an ocean-masked grid.
func makeSSH(nT, nLat, nLon int) *cliz.Dataset {
	rng := rand.New(rand.NewSource(7))
	const fill = 9.96921e36
	// A blobby "continent" in the middle of the grid defines the mask.
	regions := make([]int32, nLat*nLon)
	for i := 0; i < nLat; i++ {
		for j := 0; j < nLon; j++ {
			dy := float64(i)/float64(nLat) - 0.5
			dx := float64(j)/float64(nLon) - 0.45
			if dy*dy+dx*dx > 0.08 { // ocean
				regions[i*nLon+j] = 1
			}
		}
	}
	data := make([]float32, nT*nLat*nLon)
	for t := 0; t < nT; t++ {
		season := 2 * math.Pi * float64(t) / 12
		for i := 0; i < nLat; i++ {
			for j := 0; j < nLon; j++ {
				idx := (t*nLat+i)*nLon + j
				if regions[i*nLon+j] == 0 {
					data[idx] = fill
					continue
				}
				lat := float64(i) / float64(nLat)
				lon := float64(j) / float64(nLon)
				v := 40*math.Sin(2*math.Pi*lat*3)*math.Cos(2*math.Pi*lon*2) +
					15*math.Sin(season+2*math.Pi*lat) +
					0.3*rng.NormFloat64()
				data[idx] = float32(v)
			}
		}
	}
	return &cliz.Dataset{
		Name: "quickstart-SSH", Data: data, Dims: []int{nT, nLat, nLon},
		Lead: cliz.LeadTime, Periodic: true,
		MaskRegions: regions, FillValue: fill,
	}
}

func main() {
	ds := makeSSH(96, 48, 64)
	eb := cliz.Rel(1e-2) // 1% of the valid value range

	// Offline stage: auto-tune a pipeline for this climate model. The same
	// pipeline serves every field/snapshot of the model afterwards.
	pipe, report, err := cliz.AutoTune(ds, eb, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned pipeline : %s\n", pipe)
	fmt.Printf("detected period: %d (tested %d pipelines, est. ratio %.1f)\n",
		report.Period, report.PipelinesTested, report.EstimatedRatio)

	// Online stage: compress.
	blob, info, err := cliz.Compress(ds, eb, &pipe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed     : %d points -> %d bytes (ratio %.1f, %.2f bits/pt)\n",
		len(ds.Data), info.CompressedBytes, info.Ratio, info.BitRate)

	// Decompress and verify.
	recon, dims, err := cliz.Decompress(blob)
	if err != nil {
		log.Fatal(err)
	}
	valid, err := cliz.ValidityOf(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed  : dims %v\n", dims)
	fmt.Printf("max abs error  : %.4g (bound %.4g)\n",
		cliz.MaxAbsErr(ds.Data, recon, valid), 0.01*valueRange(ds, valid))
	fmt.Printf("PSNR           : %.2f dB, SSIM %.4f\n",
		cliz.PSNR(ds.Data, recon, valid),
		cliz.SSIM(ds.Data, recon, dims, 8, valid))
}

func valueRange(ds *cliz.Dataset, valid []bool) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, v := range ds.Data {
		if valid != nil && !valid[i] {
			continue
		}
		f := float64(v)
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return hi - lo
}
