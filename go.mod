module cliz

go 1.22
