package cliz_test

// Integration matrix: every registered compressor × every synthetic dataset
// × two error bounds, verifying the strict bound (prediction-based codecs
// and SPERR) or sane distortion (ZFP on masked data) plus dims fidelity.

import (
	"math"
	"testing"

	"cliz/internal/codec"
	"cliz/internal/datagen"
	"cliz/internal/stats"
)

func TestIntegrationMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const scale = 0.08
	for _, dsName := range datagen.Names() {
		ds, err := datagen.ByName(dsName, scale)
		if err != nil {
			t.Fatal(err)
		}
		valid := ds.Validity()
		for _, codecName := range codec.Names() {
			c, err := codec.Get(codecName)
			if err != nil {
				t.Fatal(err)
			}
			for _, rel := range []float64{1e-1, 1e-3} {
				eb := ds.AbsErrorBound(rel)
				t.Run(dsName+"/"+codecName, func(t *testing.T) {
					blob, err := c.Compress(ds, eb)
					if err != nil {
						t.Fatalf("compress: %v", err)
					}
					recon, dims, err := c.Decompress(blob)
					if err != nil {
						t.Fatalf("decompress: %v", err)
					}
					if len(dims) != len(ds.Dims) || len(recon) != ds.Points() {
						t.Fatalf("shape mismatch: %v / %d", dims, len(recon))
					}
					maxErr := stats.MaxAbsErr(ds.Data, recon, valid)
					switch codecName {
					case "ZFP":
						// ZFP cannot bound the error through 1e36 fills
						// (see DESIGN.md §3.7); on unmasked data it must.
						if ds.Mask == nil && maxErr > eb {
							t.Fatalf("ZFP bound violated on unmasked data: %g > %g", maxErr, eb)
						}
						if psnr := stats.PSNR(ds.Data, recon, valid); math.IsNaN(psnr) {
							t.Fatalf("degenerate reconstruction")
						}
					default:
						if maxErr > eb*(1+1e-9) {
							t.Fatalf("bound violated: %g > %g", maxErr, eb)
						}
					}
					// Lossy compression must actually compress smooth data.
					if rel == 1e-1 && len(blob) >= ds.Points()*4 {
						t.Fatalf("no compression: %d bytes for %d points", len(blob), ds.Points())
					}
				})
			}
		}
	}
}
