package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// Version identifies the static-analysis contract implemented by this
// package. Bump it whenever an analyzer's rules change materially; it is
// recorded in conformance reproducer artifacts.
const Version = "clizlint/1"

// Severity classifies a diagnostic.
type Severity string

const (
	SeverityError   Severity = "error"
	SeverityWarning Severity = "warning"
)

// Diagnostic is one finding from an analyzer.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Column   int            `json:"column"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
	Severity Severity       `json:"severity"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Column, d.Analyzer, d.Message)
}

// Analyzer is one static check run over a set of loaded packages. Checks
// that need a whole-program view (callgraph reachability) receive every
// requested package in a single call.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(pass *Pass)
}

// Pass carries the loaded packages and accumulates diagnostics for one
// analyzer run.
type Pass struct {
	Fset *token.FileSet
	Pkgs []*Package
	// Prog is the shared interprocedural state (callgraph, function
	// summaries, decode reachability), built once per Run and reused by
	// every analyzer. Use the Program() accessor, which builds it lazily
	// for hand-constructed passes.
	Prog     *Program
	analyzer string
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos with SeverityError.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, SeverityError, format, args...)
}

func (p *Pass) report(pos token.Pos, sev Severity, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Column:   position.Column,
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
		Severity: sev,
	})
}

// Analyzers returns the full suite in a stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerNoPanic,
		AnalyzerBoundedAlloc,
		AnalyzerErrWrap,
		AnalyzerTracePair,
		AnalyzerFloatEq,
		AnalyzerTaintSize,
		AnalyzerCtxPoll,
		AnalyzerGoroLeak,
	}
}

// AnalyzerNames returns the names of every analyzer in the suite.
func AnalyzerNames() []string {
	as := Analyzers()
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return names
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the given analyzers over pkgs and returns the surviving
// diagnostics sorted by position. Diagnostics matched by a well-formed
// //clizlint:ignore directive are dropped; malformed directives (missing
// analyzer name or reason) are reported by the engine itself under the
// pseudo-analyzer name "directive".
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	prog := buildProgram(fset, pkgs)
	for _, a := range analyzers {
		pass := &Pass{Fset: fset, Pkgs: pkgs, Prog: prog, analyzer: a.Name}
		a.Run(pass)
		for _, d := range pass.diags {
			if suppressed(pkgs, d) {
				continue
			}
			out = append(out, d)
		}
	}
	for _, p := range pkgs {
		for _, ig := range p.Ignores {
			if ig.Analyzer == "" || ig.Reason == "" {
				out = append(out, Diagnostic{
					Pos:      ig.Pos,
					File:     ig.Pos.Filename,
					Line:     ig.Pos.Line,
					Column:   ig.Pos.Column,
					Analyzer: "directive",
					Message:  "malformed //clizlint:ignore directive: want //clizlint:ignore <analyzer> <reason>",
					Severity: SeverityError,
				})
			} else if ByName(ig.Analyzer) == nil && ig.Analyzer != "all" {
				out = append(out, Diagnostic{
					Pos:      ig.Pos,
					File:     ig.Pos.Filename,
					Line:     ig.Pos.Line,
					Column:   ig.Pos.Column,
					Analyzer: "directive",
					Message:  fmt.Sprintf("//clizlint:ignore names unknown analyzer %q", ig.Analyzer),
					Severity: SeverityError,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

func suppressed(pkgs []*Package, d Diagnostic) bool {
	for _, p := range pkgs {
		for _, ig := range p.Ignores {
			if ig.suppresses(d.Analyzer, d.Pos) {
				return true
			}
		}
	}
	return false
}
