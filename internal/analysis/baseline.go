package analysis

import (
	"bufio"
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline is a multiset of accepted diagnostics: the debt a codebase has
// adopted and must not grow. Keys are "file|analyzer|message" with the file
// made module-relative, and deliberately exclude line numbers — unrelated
// edits move findings around without changing what was accepted, and a
// baseline that churns on every edit stops being a ratchet.
//
// Counts make it a multiset: adopting two identical findings in one file
// permits exactly two, so introducing a third identical instance still
// fails.
type Baseline struct {
	counts map[string]int
}

// baselineKey renders the identity of a diagnostic for baseline matching.
// root (the module root) relativizes the file path so a baseline checked in
// from one checkout matches on another.
func baselineKey(root string, d Diagnostic) string {
	file := d.File
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return file + "|" + d.Analyzer + "|" + d.Message
}

// ParseBaseline reads a baseline file: one key per line, duplicates counted,
// blank lines and #-comments skipped.
func ParseBaseline(data []byte) (*Baseline, error) {
	b := &Baseline{counts: make(map[string]int)}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		if strings.Count(s, "|") < 2 {
			return nil, fmt.Errorf("baseline line %d: want file|analyzer|message, got %q", line, s)
		}
		b.counts[s]++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// FormatBaseline renders diags as a baseline file: sorted, one key per
// occurrence, with a header documenting the ratchet contract.
func FormatBaseline(root string, diags []Diagnostic) []byte {
	keys := make([]string, 0, len(diags))
	for _, d := range diags {
		keys = append(keys, baselineKey(root, d))
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteString("# clizlint baseline: adopted findings (file|analyzer|message).\n")
	buf.WriteString("# New findings not in this file fail the lint; fix a finding and\n")
	buf.WriteString("# regenerate with clizlint -baseline <file> -update-baseline to ratchet down.\n")
	for _, k := range keys {
		buf.WriteString(k)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// Filter splits diags into the findings not covered by the baseline (kept,
// in input order) and reports how many baseline entries went unmatched
// (stale — findings that were fixed; the ratchet opportunity). Each baseline
// entry absorbs at most its count of matching diagnostics.
func (b *Baseline) Filter(root string, diags []Diagnostic) (kept []Diagnostic, stale int) {
	remaining := make(map[string]int, len(b.counts))
	for k, n := range b.counts {
		remaining[k] = n
	}
	for _, d := range diags {
		k := baselineKey(root, d)
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		kept = append(kept, d)
	}
	for _, n := range remaining {
		stale += n
	}
	return kept, stale
}
