package analysis

import (
	"strings"
	"testing"
)

func baselineDiag(file, analyzer, msg string) Diagnostic {
	return Diagnostic{File: file, Analyzer: analyzer, Message: msg, Severity: SeverityError}
}

func TestBaselineAdoptThenClean(t *testing.T) {
	diags := []Diagnostic{
		baselineDiag("/mod/a.go", "ctxpoll", "loop without poll"),
		baselineDiag("/mod/b.go", "taintsize", "unchecked make"),
	}
	data := FormatBaseline("/mod", diags)
	if !strings.Contains(string(data), "a.go|ctxpoll|loop without poll") {
		t.Fatalf("baseline missing module-relative key:\n%s", data)
	}
	base, err := ParseBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	kept, stale := base.Filter("/mod", diags)
	if len(kept) != 0 || stale != 0 {
		t.Fatalf("adopted findings must be clean: kept=%v stale=%d", kept, stale)
	}
}

func TestBaselineNewFindingFails(t *testing.T) {
	old := []Diagnostic{baselineDiag("/mod/a.go", "ctxpoll", "loop without poll")}
	base, err := ParseBaseline(FormatBaseline("/mod", old))
	if err != nil {
		t.Fatal(err)
	}
	now := append(old, baselineDiag("/mod/c.go", "goroleak", "unjoined goroutine"))
	kept, stale := base.Filter("/mod", now)
	if len(kept) != 1 || kept[0].Analyzer != "goroleak" {
		t.Fatalf("want only the new finding kept, got %v", kept)
	}
	if stale != 0 {
		t.Fatalf("no entries should be stale, got %d", stale)
	}
}

func TestBaselineRatchetReportsStale(t *testing.T) {
	old := []Diagnostic{
		baselineDiag("/mod/a.go", "ctxpoll", "loop without poll"),
		baselineDiag("/mod/b.go", "taintsize", "unchecked make"),
	}
	base, err := ParseBaseline(FormatBaseline("/mod", old))
	if err != nil {
		t.Fatal(err)
	}
	// One finding was fixed; its entry is stale (the ratchet opportunity).
	kept, stale := base.Filter("/mod", old[:1])
	if len(kept) != 0 {
		t.Fatalf("remaining finding is baselined, got %v", kept)
	}
	if stale != 1 {
		t.Fatalf("want 1 stale entry, got %d", stale)
	}
}

func TestBaselineIsMultiset(t *testing.T) {
	// Two identical findings adopted; a third identical one must still fail.
	twice := []Diagnostic{
		baselineDiag("/mod/a.go", "ctxpoll", "loop without poll"),
		baselineDiag("/mod/a.go", "ctxpoll", "loop without poll"),
	}
	base, err := ParseBaseline(FormatBaseline("/mod", twice))
	if err != nil {
		t.Fatal(err)
	}
	thrice := append(twice, twice[0])
	kept, _ := base.Filter("/mod", thrice)
	if len(kept) != 1 {
		t.Fatalf("multiset must absorb exactly two, got kept=%v", kept)
	}
}

func TestBaselineLineNumbersIrrelevant(t *testing.T) {
	d := baselineDiag("/mod/a.go", "ctxpoll", "loop without poll")
	d.Line, d.Column = 10, 2
	base, err := ParseBaseline(FormatBaseline("/mod", []Diagnostic{d}))
	if err != nil {
		t.Fatal(err)
	}
	d.Line, d.Column = 99, 5 // unrelated edit moved the finding
	kept, stale := base.Filter("/mod", []Diagnostic{d})
	if len(kept) != 0 || stale != 0 {
		t.Fatalf("moved finding must still match: kept=%v stale=%d", kept, stale)
	}
}

func TestBaselineParseRejectsGarbage(t *testing.T) {
	if _, err := ParseBaseline([]byte("not a key\n")); err == nil {
		t.Fatal("want parse error for malformed line")
	}
	b, err := ParseBaseline([]byte("# comment\n\na.go|ctxpoll|msg with | pipe\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.counts) != 1 {
		t.Fatalf("comments and blanks must be skipped, got %v", b.counts)
	}
}
