package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
)

// AnalyzerBoundedAlloc flags make() calls (including make feeding an
// append) whose size argument is derived from a header or bitstream read
// without first being dominated by a comparison against a cap. A hostile
// blob can declare an arbitrarily large count in a few bytes; every
// allocation sized from such a count must be preceded by a bounds check
// (against a named cap like maxSections/maxDecodeVolume, a payload
// length, or a caller-supplied budget) before memory is committed.
//
// The analysis is intra-procedural and lexical: a variable becomes
// tainted when assigned from a varint/bit/binary read (or arithmetic on
// a tainted value), and is sanitized once it appears in any if/for
// comparison or is passed to a check/validate/budget-named helper at a
// position before the allocation. Growth via append inside a loop is
// work-proportional to the input and is deliberately exempt.
var AnalyzerBoundedAlloc = &Analyzer{
	Name: "boundedalloc",
	Doc:  "allocations sized from header/bitstream reads must be bounds-checked first",
	Run:  runBoundedAlloc,
}

// taintSourcePattern matches the callee names that yield
// attacker-controlled integers: varint readers, bit readers, and
// binary.* fixed-width loads.
var taintSourcePattern = regexp.MustCompile(`^(readUvarint|ReadUvarint|Uvarint|Varint|uvarint|varint|ReadBits|ReadBit|ReadByte|Uint16|Uint32|Uint64)$`)

// sanitizerCallPattern matches helper names whose invocation counts as a
// bounds check for any tainted argument (e.g. checkDecodeBudget).
var sanitizerCallPattern = regexp.MustCompile(`(?i)(check|valid|budget|bound|cap)`)

var boundedAllocPackages = decodeContractPackages

func runBoundedAlloc(pass *Pass) {
	for _, pkg := range pass.Pkgs {
		if !boundedAllocPackages[pkg.Name] {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkBoundedAlloc(pass, fd)
			}
		}
	}
}

// checkBoundedAlloc runs the lexical taint walk over one function body.
// Function literals are included: their statements are visited in source
// order like any other block.
func checkBoundedAlloc(pass *Pass, fd *ast.FuncDecl) {
	tainted := make(map[string]token.Pos)   // var name -> taint position
	sanitized := make(map[string]token.Pos) // var name -> earliest sanitizing position

	// Pass 1: collect taint assignments and sanitizing positions.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if anyTaintedSource(n.Rhs, tainted) {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" && id.Name != "err" {
						if _, seen := tainted[id.Name]; !seen {
							tainted[id.Name] = id.Pos()
						}
					}
				}
			}
		case *ast.IfStmt:
			if n.Cond != nil {
				markComparisons(n.Cond, sanitized)
			}
		case *ast.ForStmt:
			if n.Cond != nil {
				markComparisons(n.Cond, sanitized)
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				markIdents(n.Tag, n.Tag.Pos(), sanitized)
			}
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						markIdents(e, n.Pos(), sanitized)
					}
				}
			}
		case *ast.CallExpr:
			if name := calleeName(n); name != "" && sanitizerCallPattern.MatchString(name) {
				for _, arg := range n.Args {
					markIdents(arg, n.Pos(), sanitized)
				}
			}
		}
		return true
	})

	// Pass 2: flag make() sizes that use a tainted, not-yet-sanitized
	// variable.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "make" {
			return true
		}
		for _, arg := range call.Args[1:] { // skip the type argument
			if name, pos := taintedIdentIn(arg, tainted, sanitized, call.Pos()); name != "" {
				pass.Reportf(pos,
					"make() sized by %q, which is read from the bitstream without a preceding bounds check against a cap",
					name)
			}
		}
		return true
	})
}

// anyTaintedSource reports whether any RHS expression reads from the
// bitstream (a taint-source call) or uses an already-tainted variable.
func anyTaintedSource(rhs []ast.Expr, tainted map[string]token.Pos) bool {
	for _, e := range rhs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name := calleeName(n); name != "" && taintSourcePattern.MatchString(name) {
					found = true
					return false
				}
			case *ast.Ident:
				if _, ok := tainted[n.Name]; ok {
					found = true
					return false
				}
			case *ast.FuncLit:
				return false // closures get their own walk
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// markComparisons records every identifier that participates in a
// relational comparison inside cond.
func markComparisons(cond ast.Expr, sanitized map[string]token.Pos) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			markIdents(be.X, be.Pos(), sanitized)
			markIdents(be.Y, be.Pos(), sanitized)
		}
		return true
	})
}

func markIdents(e ast.Expr, pos token.Pos, sanitized map[string]token.Pos) {
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if prev, ok := sanitized[id.Name]; !ok || pos < prev {
				sanitized[id.Name] = pos
			}
		}
		return true
	})
}

// taintedIdentIn returns the first identifier inside e that is tainted
// and has no sanitizing occurrence before allocPos.
func taintedIdentIn(e ast.Expr, tainted, sanitized map[string]token.Pos, allocPos token.Pos) (string, token.Pos) {
	var name string
	var pos token.Pos
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || name != "" {
			return name == ""
		}
		if _, isTainted := tainted[id.Name]; !isTainted {
			return true
		}
		if sanPos, ok := sanitized[id.Name]; ok && sanPos < allocPos {
			return true
		}
		name, pos = id.Name, id.Pos()
		return false
	})
	return name, pos
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
