package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// funcNode is the callgraph's view of one declared function or method in
// the loaded packages. Function literals are attributed to their
// enclosing declaration, which keeps closure bodies (worker fan-outs via
// par.Run and friends) reachable from whatever calls the enclosing
// function.
type funcNode struct {
	obj   *types.Func
	pkg   *Package
	decl  *ast.FuncDecl
	calls map[*types.Func][]token.Pos // callee -> call sites
	// panics holds positions of direct panic()/log.Fatal* calls in the
	// body (including closures).
	panics []panicSite
}

type panicSite struct {
	pos  token.Pos
	what string // "panic" or e.g. "log.Fatalf"
}

type callGraph struct {
	nodes map[*types.Func]*funcNode
}

// buildCallGraph walks every function declaration in pkgs and records,
// per function, the set of statically resolvable callees and any direct
// panic/log.Fatal sites. Calls through interface methods resolve to the
// interface method object, which has no body in the graph and therefore
// ends the walk there; this is a documented approximation (see DESIGN.md
// §9).
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{nodes: make(map[*types.Func]*funcNode)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &funcNode{
					obj:   obj,
					pkg:   pkg,
					decl:  fd,
					calls: make(map[*types.Func][]token.Pos),
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					recordCall(pkg, node, call)
					return true
				})
				g.nodes[obj] = node
			}
		}
	}
	return g
}

func recordCall(pkg *Package, node *funcNode, call *ast.CallExpr) {
	fn := ast.Unparen(call.Fun)
	// Explicitly instantiated generics: f[T](...) / pkg.F[T](...).
	switch idx := fn.(type) {
	case *ast.IndexExpr:
		fn = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fn = ast.Unparen(idx.X)
	}
	switch fun := fn.(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[fun]
		if b, ok := obj.(*types.Builtin); (ok && b.Name() == "panic") || (obj == nil && fun.Name == "panic") {
			node.panics = append(node.panics, panicSite{pos: call.Pos(), what: "panic"})
			return
		}
		if f, ok := obj.(*types.Func); ok {
			node.calls[origin(f)] = append(node.calls[origin(f)], call.Pos())
		}
	case *ast.SelectorExpr:
		var callee *types.Func
		if sel, ok := pkg.Info.Selections[fun]; ok {
			callee, _ = sel.Obj().(*types.Func)
		} else if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			callee = f // package-qualified call
		}
		if callee == nil {
			return
		}
		callee = origin(callee)
		if p := callee.Pkg(); p != nil && p.Path() == "log" {
			switch callee.Name() {
			case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				node.panics = append(node.panics, panicSite{pos: call.Pos(), what: "log." + callee.Name()})
				return
			}
		}
		node.calls[callee] = append(node.calls[callee], call.Pos())
	}
}

// origin maps instantiated generic functions/methods back to their
// generic declaration so the callgraph has one node per source function.
func origin(f *types.Func) *types.Func {
	if o := f.Origin(); o != nil {
		return o
	}
	return f
}

// reachableFrom returns every function node reachable from the entry
// set, along with one shortest call chain (as a parent map) for
// reporting.
func (g *callGraph) reachableFrom(entries []*types.Func) (map[*types.Func]bool, map[*types.Func]*types.Func) {
	seen := make(map[*types.Func]bool)
	parent := make(map[*types.Func]*types.Func)
	queue := make([]*types.Func, 0, len(entries))
	for _, e := range entries {
		if !seen[e] {
			seen[e] = true
			queue = append(queue, e)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		node := g.nodes[cur]
		if node == nil {
			continue // no body in loaded set (stdlib, interface method)
		}
		for callee := range node.calls {
			if !seen[callee] {
				seen[callee] = true
				parent[callee] = cur
				queue = append(queue, callee)
			}
		}
	}
	return seen, parent
}

// chain renders a call chain entry -> ... -> f for diagnostics.
func chain(parent map[*types.Func]*types.Func, f *types.Func) string {
	names := []string{f.Name()}
	for cur := f; ; {
		p, ok := parent[cur]
		if !ok {
			break
		}
		names = append(names, p.Name())
		cur = p
	}
	out := ""
	for i := len(names) - 1; i >= 0; i-- {
		if out != "" {
			out += " -> "
		}
		out += names[i]
	}
	return out
}

// decodeEntryPattern matches the exported entry points that form the
// decoder-hardening contract: anything that parses or decodes untrusted
// bytes, plus the Verify family.
var decodeEntryPattern = regexp.MustCompile(`^(Decompress|Decode|Parse|Verify|Read|Unpack|Unmarshal|Inspect)`)

// decodeContractPackages are the package names (last import-path
// element) whose exported decode entry points anchor the nopanic and
// errwrap analyses. Matching by name rather than full path lets golden
// testdata fixtures participate in the contract.
var decodeContractPackages = map[string]bool{
	"cliz":    true,
	"core":    true,
	"codec":   true,
	"grid":    true,
	"bitio":   true,
	"entropy": true,
	"rans":    true,
	"huffman": true,
	// The HTTP service parses hostile request bodies and metadata; its
	// exported Parse*/Read* helpers are decode entry points like any
	// blob reader.
	"service": true,
	// The streaming codec parses hostile stream headers and frame
	// records (Parse/ReadFrame).
	"stream": true,
}

// decodeEntryPoints collects the exported functions and methods in
// contract packages whose names match the decode/parse/verify pattern.
func decodeEntryPoints(pkgs []*Package) []*types.Func {
	var entries []*types.Func
	for _, pkg := range pkgs {
		if !decodeContractPackages[pkg.Name] {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !fd.Name.IsExported() || !decodeEntryPattern.MatchString(fd.Name.Name) {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					entries = append(entries, obj)
				}
			}
		}
	}
	return entries
}
