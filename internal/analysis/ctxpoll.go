package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// AnalyzerCtxPoll enforces the PR 7 cooperative-cancellation contract on
// the service-facing subsystems: every data-proportional loop reachable
// from a service or stream entry point (Compress*/Decompress*/Tune*/
// Append/ReadFrame/Estimate, plus the HTTP handlers) whose body does
// per-element work must reach a cancellation poll — an Interrupt/
// interrupted/poll* call or ctx.Err()/ctx.Done() — inside the loop,
// either directly or through a callee whose summary polls.
//
// Scope is deliberate: the core codec polls at stage and chunk
// boundaries by design (tight kernels stay branch-free), so only the
// packages that own request lifetimes — service, stream, estimate — are
// held to the per-loop rule. "Data-proportional" means the loop bound is
// not a compile-time constant (or it ranges over a slice/map/channel/
// string/non-constant int); "per-element work" means the body calls a
// module-local or statically unresolvable function, or contains another
// data-proportional loop — pure-arithmetic loops are exempt because
// their per-element cost is bounded.
//
// The check is capability-based: a callee that polls a nil Interrupt
// hook satisfies it. The wiring of real hooks (WithContext, TuneOptions)
// is pinned by runtime cancellation tests instead.
var AnalyzerCtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc:  "service/stream/estimate loops doing per-element work must reach a cancellation poll",
	Run:  runCtxPoll,
}

// ctxPollEntryPattern matches the exported entry points that own a
// request or stream lifetime.
var ctxPollEntryPattern = regexp.MustCompile(`^(Compress|Decompress|AutoTune|Tune|Append|ReadFrame|Estimate)`)

// ctxPollPackages are the package names held to the per-loop poll rule.
// Matching by name lets golden testdata fixtures participate.
var ctxPollPackages = map[string]bool{
	"service":  true,
	"stream":   true,
	"estimate": true,
}

// ctxPollEntryPoints collects the cancellation-contract entry points:
// exported lifetime-owning functions in the scoped packages, plus the
// HTTP handler methods (handle*, ServeHTTP) in the service package.
func ctxPollEntryPoints(pkgs []*Package) []*types.Func {
	var entries []*types.Func
	for _, pkg := range pkgs {
		if !ctxPollPackages[pkg.Name] {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				name := fd.Name.Name
				match := fd.Name.IsExported() && ctxPollEntryPattern.MatchString(name)
				if pkg.Name == "service" && (strings.HasPrefix(name, "handle") || name == "ServeHTTP") {
					match = true
				}
				if !match {
					continue
				}
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					entries = append(entries, obj)
				}
			}
		}
	}
	return entries
}

func runCtxPoll(pass *Pass) {
	prog := pass.Program()
	entries := ctxPollEntryPoints(pass.Pkgs)
	reach, parent := prog.graph.reachableFrom(entries)
	for _, f := range prog.funcs {
		if !reach[f] {
			continue
		}
		node := prog.graph.nodes[f]
		if !ctxPollPackages[node.pkg.Name] {
			continue
		}
		checkLoops(pass, prog, node, node.decl.Body, parent, f)
	}
}

// checkLoops walks stmts for data-proportional loops, reporting the
// outermost offender in each subtree (a flagged loop's inner loops share
// the missing poll, so one report covers them).
func checkLoops(pass *Pass, prog *Program, node *funcNode, root ast.Node, parent map[*types.Func]*types.Func, f *types.Func) {
	ast.Inspect(root, func(n ast.Node) bool {
		var body *ast.BlockStmt
		switch l := n.(type) {
		case *ast.ForStmt:
			if !dataProportionalFor(node.pkg, l) {
				return true
			}
			body = l.Body
		case *ast.RangeStmt:
			if !dataProportionalRange(node.pkg, l) || literalBacked(node, l.X) {
				return true
			}
			body = l.Body
		default:
			return true
		}
		if !loopDoesWork(prog, node.pkg, body) || loopReachesPoll(prog, node.pkg, body) {
			return true // keep descending: an inner loop may still offend
		}
		pass.Reportf(n.Pos(),
			"data-proportional loop in %s does per-element work without reaching a cancellation poll (%s); poll Interrupt/ctx.Err() in the loop or call a polling helper",
			f.Name(), chain(parent, f))
		return false // inner loops share this report
	})
}

// dataProportionalFor reports whether the for statement's trip count can
// scale with input data: a comparison condition with no constant
// operand, or a non-comparison condition. `for` with no condition
// (select/event loops) and constant-bounded loops are exempt.
func dataProportionalFor(pkg *Package, n *ast.ForStmt) bool {
	if n.Cond == nil {
		return false
	}
	be, ok := ast.Unparen(n.Cond).(*ast.BinaryExpr)
	if !ok {
		return true
	}
	return !isConstExpr(pkg, be.X) && !isConstExpr(pkg, be.Y)
}

// dataProportionalRange reports whether the range statement iterates a
// data-sized container: slice, map, channel, string, function iterator,
// or non-constant integer. Fixed-size arrays are exempt.
func dataProportionalRange(pkg *Package, n *ast.RangeStmt) bool {
	t := pkg.Info.TypeOf(n.X)
	if t == nil {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		if u.Info()&types.IsInteger != 0 || u.Info()&types.IsString != 0 {
			return !isConstExpr(pkg, n.X)
		}
		return false
	case *types.Array:
		return false
	case *types.Pointer:
		_, arr := u.Elem().Underlying().(*types.Array)
		return !arr
	}
	return true
}

// literalBacked reports whether x is a local variable whose every
// assignment in the function is a composite literal — its length is a
// source-visible constant (e.g. a table of fractions), so ranging over
// it is not data-proportional.
func literalBacked(node *funcNode, x ast.Expr) bool {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return false
	}
	obj := node.pkg.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	assigned, allLits := false, true
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lid, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || node.pkg.Info.ObjectOf(lid) != obj || i >= len(n.Rhs) {
					continue
				}
				assigned = true
				if _, lit := ast.Unparen(n.Rhs[i]).(*ast.CompositeLit); !lit {
					allLits = false
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if node.pkg.Info.ObjectOf(name) != obj || i >= len(n.Values) {
					continue
				}
				assigned = true
				if _, lit := ast.Unparen(n.Values[i]).(*ast.CompositeLit); !lit {
					allLits = false
				}
			}
		}
		return true
	})
	return assigned && allLits
}

func isConstExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// loopDoesWork reports whether the loop body does per-element work: a
// call to a module-local function, a statically unresolvable call
// (closure variable, function value, interface method), or a nested
// data-proportional loop. Builtins, conversions, and non-module calls
// (stdlib arithmetic, fmt) do not count.
func loopDoesWork(prog *Program, pkg *Package, body *ast.BlockStmt) bool {
	work := false
	ast.Inspect(body, func(n ast.Node) bool {
		if work {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			if dataProportionalFor(pkg, n) {
				work = true
				return false
			}
		case *ast.RangeStmt:
			if dataProportionalRange(pkg, n) {
				work = true
				return false
			}
		case *ast.CallExpr:
			if isPollCall(pkg, n) {
				return true // a poll is not work
			}
			if tv, ok := pkg.Info.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
			callee := resolveCallee(pkg, n)
			if callee == nil || prog.isModuleFunc(callee) {
				work = true
				return false
			}
		}
		return true
	})
	return work
}

// loopReachesPoll reports whether the loop body reaches a cancellation
// poll: a direct poll call, or a call to a module-local callee whose
// summary polls (transitively).
func loopReachesPoll(prog *Program, pkg *Package, body *ast.BlockStmt) bool {
	polls := false
	ast.Inspect(body, func(n ast.Node) bool {
		if polls {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPollCall(pkg, call) {
			polls = true
			return false
		}
		if f := resolveCallee(pkg, call); f != nil {
			if s := prog.sums[f]; s != nil && s.polls {
				polls = true
				return false
			}
		}
		return true
	})
	return polls
}
