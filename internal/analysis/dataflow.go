package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the interprocedural dataflow layer: a per-function value
// graph (parameters, results, locals, with field and index edges) plus
// bottom-up function summaries propagated to a fixpoint over the
// callgraph. The summaries power the taintsize, ctxpoll and goroleak
// analyzers and reuse the boundedalloc analyzer's taint-source and
// sanitizer heuristics as their summary sources, so the single-function
// contract of PR 5 and the interprocedural contract agree on what a
// "bitstream read" and a "bounds check" are.

// Program is the shared whole-module view built once per Run and handed
// to every analyzer through Pass.Prog: the callgraph, the decode-contract
// reachability, and one funcSummary per declared function.
type Program struct {
	fset  *token.FileSet
	graph *callGraph
	// funcs is every callgraph node in stable source order.
	funcs []*types.Func
	sums  map[*types.Func]*funcSummary
	// decodeReach/decodeParent are the nopanic/errwrap reachability from
	// the decode entry points, shared so the graph is walked once.
	decodeReach  map[*types.Func]bool
	decodeParent map[*types.Func]*types.Func
	// modRoot is the first import-path element of the loaded packages
	// (e.g. "cliz"); callees under it are module-local and summarized.
	modRoot string
}

// funcSummary is the bottom-up summary of one function: the facts a
// caller needs without looking at the body.
type funcSummary struct {
	// polls reports that the body reaches a cancellation poll — an
	// Interrupt/interrupted/poll* call or ctx.Err()/ctx.Done() — either
	// directly or through a summarized callee. Capability, not wiring: a
	// nil Interrupt hook still counts (runtime tests pin the wiring).
	polls bool
	// blocking reports the body may block the calling goroutine: channel
	// operations, select, a *.Wait() / time.Sleep call, or a transitively
	// blocking module-local callee. Goroutine bodies and non-invoked
	// function literals are excluded.
	blocking bool
	// taintedResults[i] reports result i is an integer derived from a
	// bitstream read (boundedalloc's taint sources) with no intervening
	// bounds check.
	taintedResults []bool
	// resultParams[i] is the bitmask of parameters whose value flows to
	// result i without an intervening bounds check. A callee that clamps
	// its input before returning it (e.g. zfp's precision()) has an
	// empty mask, which sanitizes the flow at every call site.
	resultParams []uint64
	// paramSinks maps a parameter index to a description of the
	// unchecked allocation-or-loop sink it reaches (possibly through
	// further summarized calls).
	paramSinks map[int]string
	// blockCallees are the module-local callees invoked outside go
	// statements and function literals, for blocking propagation.
	blockCallees []*types.Func
}

// Program returns the shared interprocedural state, building it on first
// use (tests may construct a Pass without one).
func (p *Pass) Program() *Program {
	if p.Prog == nil {
		p.Prog = buildProgram(p.Fset, p.Pkgs)
	}
	return p.Prog
}

// moduleRoot returns the first import-path element of the loaded set.
func moduleRoot(pkgs []*Package) string {
	for _, p := range pkgs {
		if i := strings.IndexByte(p.Path, '/'); i > 0 {
			return p.Path[:i]
		}
		return p.Path
	}
	return ""
}

// isModuleFunc reports whether f is declared inside the loaded module
// (including testdata fixture packages, whose synthetic import paths sit
// under the module root).
func (prog *Program) isModuleFunc(f *types.Func) bool {
	pkg := f.Pkg()
	if pkg == nil || prog.modRoot == "" {
		return false
	}
	return pkg.Path() == prog.modRoot || strings.HasPrefix(pkg.Path(), prog.modRoot+"/")
}

// buildProgram constructs the callgraph, seeds each function's local
// facts, and iterates the summary transfer to a fixpoint (the module's
// call depth is shallow; the iteration cap is a recursion backstop).
func buildProgram(fset *token.FileSet, pkgs []*Package) *Program {
	prog := &Program{
		fset:    fset,
		graph:   buildCallGraph(pkgs),
		sums:    make(map[*types.Func]*funcSummary),
		modRoot: moduleRoot(pkgs),
	}
	for f := range prog.graph.nodes {
		prog.funcs = append(prog.funcs, f)
	}
	sort.Slice(prog.funcs, func(i, j int) bool {
		return prog.graph.nodes[prog.funcs[i]].decl.Pos() < prog.graph.nodes[prog.funcs[j]].decl.Pos()
	})
	for _, f := range prog.funcs {
		node := prog.graph.nodes[f]
		s := &funcSummary{paramSinks: map[int]string{}}
		s.polls = hasLocalPoll(node)
		s.blocking, s.blockCallees = localBlocking(node)
		prog.sums[f] = s
	}
	// Bottom-up fixpoint: propagate polls/blocking over call edges and
	// recompute the taint summaries (whose transfer function consults
	// callee summaries) until nothing changes.
	for iter := 0; iter < 12; iter++ {
		changed := false
		for _, f := range prog.funcs {
			node, s := prog.graph.nodes[f], prog.sums[f]
			if !s.polls {
				for callee := range node.calls {
					if cs := prog.sums[callee]; cs != nil && cs.polls {
						s.polls = true
						changed = true
						break
					}
				}
			}
			if !s.blocking {
				for _, callee := range s.blockCallees {
					if cs := prog.sums[callee]; cs != nil && cs.blocking {
						s.blocking = true
						changed = true
						break
					}
				}
			}
			fl := newFuncFlow(node.pkg, node.decl, prog)
			tr, rp, ps := fl.summaryFacts()
			if !boolsEqual(tr, s.taintedResults) || !masksEqual(rp, s.resultParams) || !sinksEqual(ps, s.paramSinks) {
				s.taintedResults, s.resultParams, s.paramSinks = tr, rp, ps
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	entries := decodeEntryPoints(pkgs)
	prog.decodeReach, prog.decodeParent = prog.graph.reachableFrom(entries)
	return prog
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func masksEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sinksEqual(a, b map[int]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Poll and blocking detection (ctxpoll / goroleak summary sources).
// ---------------------------------------------------------------------

// isPollCall reports whether call is a cancellation poll: a callee whose
// name says interrupt/poll (Interrupt hooks, interrupted helpers,
// pollEvery closures), or Err()/Done() on a context.Context.
func isPollCall(pkg *Package, call *ast.CallExpr) bool {
	name := calleeName(call)
	if name == "" {
		return false
	}
	l := strings.ToLower(name)
	if strings.Contains(l, "interrupt") || strings.HasPrefix(l, "poll") {
		return true
	}
	if name == "Err" || name == "Done" {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if t := pkg.Info.TypeOf(sel.X); t != nil && t.String() == "context.Context" {
				return true
			}
		}
	}
	return false
}

// hasLocalPoll reports whether the function body contains a direct poll.
func hasLocalPoll(node *funcNode) bool {
	found := false
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isPollCall(node.pkg, call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// localBlocking scans the body outside go statements and function
// literals for operations that can block the calling goroutine, and
// collects the module-local callees on those paths for propagation.
func localBlocking(node *funcNode) (bool, []*types.Func) {
	blocking := false
	var callees []*types.Func
	seen := map[*types.Func]bool{}
	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt, *ast.FuncLit:
				return false // the launched/deferred work blocks someone else
			case *ast.SendStmt, *ast.SelectStmt:
				blocking = true
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					blocking = true
				}
			case *ast.RangeStmt:
				if t := node.pkg.Info.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						blocking = true
					}
				}
			case *ast.CallExpr:
				switch calleeName(n) {
				case "Wait", "Sleep":
					blocking = true
				}
				if f := resolveCallee(node.pkg, n); f != nil && !seen[f] {
					seen[f] = true
					callees = append(callees, f)
				}
			}
			return true
		})
	}
	walk(node.decl.Body)
	return blocking, callees
}

// resolveCallee resolves a call to its static *types.Func callee (the
// same resolution the callgraph uses), or nil.
func resolveCallee(pkg *Package, call *ast.CallExpr) *types.Func {
	fn := ast.Unparen(call.Fun)
	switch idx := fn.(type) {
	case *ast.IndexExpr:
		fn = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fn = ast.Unparen(idx.X)
	}
	switch fun := fn.(type) {
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return origin(f)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return origin(f)
			}
		} else if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return origin(f)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Per-function value graph and taint flow (taintsize summary source).
// ---------------------------------------------------------------------

// ref names one value in the function's value graph: a root object (a
// parameter, local, or named result) plus a field/index path, so h.count
// and h are distinct nodes with a prefix edge between them.
type ref struct {
	obj  types.Object
	path string
}

// taintVal is the dataflow fact attached to a ref.
type taintVal struct {
	// direct says the value derives from a bitstream read.
	direct bool
	// viaCall says the direct taint crossed a function boundary (it came
	// out of a summarized callee rather than a local source call).
	viaCall bool
	// srcDesc names the originating read for diagnostics.
	srcDesc string
	// pos is where the taint was (first) introduced in this function.
	pos token.Pos
	// params is the bitmask of this function's parameters that flow into
	// the ref (for paramSinks summaries).
	params uint64
}

func (t taintVal) empty() bool { return !t.direct && t.params == 0 }

func mergeTaint(a, b taintVal) taintVal {
	out := a
	if b.direct && !a.direct {
		out.direct, out.viaCall, out.srcDesc, out.pos = true, b.viaCall, b.srcDesc, b.pos
	}
	out.params |= b.params
	return out
}

// flowEdge is one assignment edge in the value graph: dst receives the
// merged taint of srcs (and of a direct source expression, when the RHS
// contains a bitstream read) at pos.
type flowEdge struct {
	dst  ref
	srcs []ref
	src  *taintVal // direct source in the RHS, if any
	pos  token.Pos
}

// sinkKind classifies a taint sink.
type sinkKind int

const (
	sinkMake sinkKind = iota // make() size/capacity argument
	sinkLoop                 // loop bound
	sinkCall                 // argument to a callee with a paramSinks summary
)

type sinkSite struct {
	kind sinkKind
	pos  token.Pos // report position
	// cutoff is the position sanitization must precede (the loop
	// statement itself for loop bounds, so a loop's own condition does
	// not sanitize its bound).
	cutoff token.Pos
	expr   ast.Expr
	// callee/argIdx/desc describe sinkCall sites.
	callee *types.Func
	argIdx int
	desc   string
}

// funcFlow runs the per-function value-graph analysis. It is built twice
// per function per fixpoint round at most: once for summaries, once by
// the taintsize analyzer for reporting.
type funcFlow struct {
	pkg       *Package
	fd        *ast.FuncDecl
	prog      *Program
	params    []types.Object
	results   []types.Object // named results, aligned with the signature when named
	edges     []flowEdge
	taint     map[ref]taintVal
	sanitized map[ref]token.Pos
	sinks     []sinkSite
	returns   []*ast.ReturnStmt
}

func newFuncFlow(pkg *Package, fd *ast.FuncDecl, prog *Program) *funcFlow {
	fl := &funcFlow{
		pkg:       pkg,
		fd:        fd,
		prog:      prog,
		taint:     make(map[ref]taintVal),
		sanitized: make(map[ref]token.Pos),
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					fl.params = append(fl.params, obj)
				}
			}
		}
	}
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					fl.results = append(fl.results, obj)
				}
			}
		}
	}
	for i, obj := range fl.params {
		if i >= 64 {
			break
		}
		fl.taint[ref{obj: obj}] = taintVal{params: 1 << uint(i), pos: obj.Pos()}
	}
	fl.collect()
	fl.propagate()
	return fl
}

// resolveRef maps an expression to a value-graph node: an identifier, a
// field selection chain, or an index expression rooted at one.
func (fl *funcFlow) resolveRef(e ast.Expr) (ref, bool) {
	return resolveExprRef(fl.pkg, e)
}

func resolveExprRef(pkg *Package, e ast.Expr) (ref, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pkg.Info.ObjectOf(e)
		if obj == nil {
			return ref{}, false
		}
		return ref{obj: obj}, true
	case *ast.SelectorExpr:
		// Only field selections form value edges; method values do not.
		if _, ok := pkg.Info.Selections[e]; !ok {
			// Package-qualified name: resolve the selected object.
			if obj := pkg.Info.ObjectOf(e.Sel); obj != nil {
				return ref{obj: obj}, true
			}
			return ref{}, false
		}
		base, ok := resolveExprRef(pkg, e.X)
		if !ok {
			return ref{}, false
		}
		return ref{obj: base.obj, path: base.path + "." + e.Sel.Name}, true
	case *ast.IndexExpr:
		base, ok := resolveExprRef(pkg, e.X)
		if !ok {
			return ref{}, false
		}
		return ref{obj: base.obj, path: base.path + "[]"}, true
	case *ast.StarExpr:
		return resolveExprRef(pkg, e.X)
	}
	return ref{}, false
}

// exprRefs collects every resolvable ref mentioned in e (skipping nested
// function literals, which get their own facts via the callgraph). Calls
// to module-local functions with a summary are routed through that
// summary: only arguments the callee lets flow to a result contribute
// refs, so a callee that clamps its input (zfp's precision()) sanitizes
// the flow at every call site. Unsummarized and external calls stay
// conservative — every argument flows.
func (fl *funcFlow) exprRefs(e ast.Expr) []ref {
	var out []ref
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if f := resolveCallee(fl.pkg, call); f != nil && fl.prog.isModuleFunc(f) {
				if s := fl.prog.sums[f]; s != nil {
					var mask uint64
					for _, m := range s.resultParams {
						mask |= m
					}
					for j, arg := range call.Args {
						if j < 64 && mask&(1<<uint(j)) != 0 {
							out = append(out, fl.exprRefs(arg)...)
						}
					}
					// The receiver (or selector base) still flows: a
					// method value derived from a tainted struct stays
					// tainted.
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						out = append(out, fl.exprRefs(sel.X)...)
					}
					return false
				}
			}
		}
		if ex, ok := n.(ast.Expr); ok {
			if r, ok := fl.resolveRef(ex); ok {
				out = append(out, r)
				return false // the ref subsumes its sub-expressions
			}
		}
		return true
	})
	return out
}

// isIntType reports whether t is an integer type (only integers can
// carry a bitstream-count taint).
func isIntType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// directSourceIn looks for a bitstream read inside e: a call matching
// boundedalloc's taintSourcePattern, or a call to a module-local callee
// whose summary marks its (single) result tainted.
func (fl *funcFlow) directSourceIn(e ast.Expr) *taintVal {
	var out *taintVal
	ast.Inspect(e, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name := calleeName(call); name != "" && taintSourcePattern.MatchString(name) {
			out = &taintVal{direct: true, srcDesc: name, pos: call.Pos()}
			return false
		}
		if f := resolveCallee(fl.pkg, call); f != nil && fl.prog.isModuleFunc(f) {
			if s := fl.prog.sums[f]; s != nil {
				for _, tainted := range s.taintedResults {
					if tainted {
						out = &taintVal{direct: true, viaCall: true, srcDesc: f.Name() + "()", pos: call.Pos()}
						return false
					}
				}
			}
		}
		return true
	})
	return out
}

// collect walks the body once, recording value-graph edges, sanitizing
// positions, and sink sites.
func (fl *funcFlow) collect() {
	ast.Inspect(fl.fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			fl.collectAssign(n)
		case *ast.ValueSpec:
			if len(n.Values) == 1 && len(n.Names) > 1 {
				fl.addMultiEdge(nil, n.Values[0], n.Pos(), exprIdents(n.Names))
			} else {
				for i, name := range n.Names {
					if i < len(n.Values) {
						fl.addEdge(name, n.Values[i], n.Pos())
					}
				}
			}
		case *ast.RangeStmt:
			// Element values inherit the container's taint.
			if n.Value != nil {
				fl.addEdge(n.Value, n.X, n.Pos())
			}
			// Go 1.22 range-over-int: the range expression is the bound.
			if t := fl.pkg.Info.TypeOf(n.X); isIntType(t) {
				fl.sinks = append(fl.sinks, sinkSite{kind: sinkLoop, pos: n.X.Pos(), cutoff: n.Pos(), expr: n.X})
			}
		case *ast.IfStmt:
			if n.Cond != nil {
				fl.markComparisonRefs(n.Cond)
			}
		case *ast.ForStmt:
			if n.Cond != nil {
				fl.markComparisonRefs(n.Cond)
				fl.sinks = append(fl.sinks, sinkSite{kind: sinkLoop, pos: n.Cond.Pos(), cutoff: n.Pos(), expr: n.Cond})
			}
		case *ast.SwitchStmt:
			if n.Tag != nil {
				fl.sanitizeExpr(n.Tag, n.Tag.Pos())
			}
		case *ast.CallExpr:
			fl.collectCall(n)
		case *ast.ReturnStmt:
			fl.returns = append(fl.returns, n)
		}
		return true
	})
}

func exprIdents(names []*ast.Ident) []ast.Expr {
	out := make([]ast.Expr, len(names))
	for i, n := range names {
		out[i] = n
	}
	return out
}

func (fl *funcFlow) collectAssign(n *ast.AssignStmt) {
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		fl.addMultiEdge(n.Lhs, n.Rhs[0], n.Pos(), nil)
		return
	}
	for i, lhs := range n.Lhs {
		if i < len(n.Rhs) {
			fl.addEdge(lhs, n.Rhs[i], n.Pos())
		}
	}
}

// addEdge records dst <- rhs for a single-value assignment.
func (fl *funcFlow) addEdge(dst, rhsExpr ast.Expr, pos token.Pos) {
	dref, ok := fl.resolveRef(dst)
	if !ok || dref.obj.Name() == "_" {
		return
	}
	var src *taintVal
	if isIntType(fl.pkg.Info.TypeOf(dst)) {
		src = fl.directSourceIn(rhsExpr)
	}
	fl.edges = append(fl.edges, flowEdge{dst: dref, srcs: fl.exprRefs(rhsExpr), src: src, pos: pos})
}

// addMultiEdge records a multi-value call assignment: tainted callee
// results (by summary position, or every integer result for pattern
// sources) taint the corresponding destinations.
func (fl *funcFlow) addMultiEdge(lhs []ast.Expr, rhsExpr ast.Expr, pos token.Pos, altLhs []ast.Expr) {
	if altLhs != nil {
		lhs = altLhs
	}
	call, ok := ast.Unparen(rhsExpr).(*ast.CallExpr)
	if !ok {
		return
	}
	var perResult []bool
	var src taintVal
	if name := calleeName(call); name != "" && taintSourcePattern.MatchString(name) {
		src = taintVal{direct: true, srcDesc: name, pos: call.Pos()}
	} else if f := resolveCallee(fl.pkg, call); f != nil && fl.prog.isModuleFunc(f) {
		if s := fl.prog.sums[f]; s != nil && len(s.taintedResults) > 0 {
			perResult = s.taintedResults
			src = taintVal{direct: true, viaCall: true, srcDesc: f.Name() + "()", pos: call.Pos()}
		}
	}
	if !src.direct {
		return
	}
	for i, dst := range lhs {
		if perResult != nil && (i >= len(perResult) || !perResult[i]) {
			continue
		}
		dref, ok := fl.resolveRef(dst)
		if !ok || dref.obj.Name() == "_" || !isIntType(fl.pkg.Info.TypeOf(dst)) {
			continue
		}
		s := src
		fl.edges = append(fl.edges, flowEdge{dst: dref, src: &s, pos: pos})
	}
}

// markComparisonRefs records every ref participating in a relational
// comparison as sanitized from the comparison's position on (the
// boundedalloc rule, lifted from names to value-graph refs).
func (fl *funcFlow) markComparisonRefs(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			fl.sanitizeExpr(be.X, be.Pos())
			fl.sanitizeExpr(be.Y, be.Pos())
		}
		return true
	})
}

func (fl *funcFlow) sanitizeExpr(e ast.Expr, pos token.Pos) {
	for _, r := range fl.exprRefs(e) {
		if prev, ok := fl.sanitized[r]; !ok || pos < prev {
			fl.sanitized[r] = pos
		}
	}
}

func (fl *funcFlow) collectCall(call *ast.CallExpr) {
	name := calleeName(call)
	if name != "" && sanitizerCallPattern.MatchString(name) {
		for _, arg := range call.Args {
			fl.sanitizeExpr(arg, call.Pos())
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "make" {
		for _, arg := range call.Args[1:] {
			fl.sinks = append(fl.sinks, sinkSite{kind: sinkMake, pos: call.Pos(), cutoff: call.Pos(), expr: arg})
		}
		return
	}
	callee := resolveCallee(fl.pkg, call)
	if callee == nil || !fl.prog.isModuleFunc(callee) {
		return
	}
	s := fl.prog.sums[callee]
	if s == nil || len(s.paramSinks) == 0 {
		return
	}
	for argIdx, desc := range s.paramSinks {
		if argIdx >= len(call.Args) {
			continue // variadic spread or mismatched call; skip
		}
		fl.sinks = append(fl.sinks, sinkSite{
			kind: sinkCall, pos: call.Pos(), cutoff: call.Pos(),
			expr: call.Args[argIdx], callee: callee, argIdx: argIdx, desc: desc,
		})
	}
}

// propagate iterates the value-graph edges to a fixpoint, skipping
// propagation from refs already sanitized before the edge's position.
func (fl *funcFlow) propagate() {
	for round := 0; round < 8; round++ {
		changed := false
		for _, e := range fl.edges {
			nv := fl.taint[e.dst]
			if e.src != nil {
				nv = mergeTaint(nv, *e.src)
			}
			for _, s := range e.srcs {
				if s == e.dst {
					continue
				}
				tv, ok := fl.lookupTaint(s)
				if !ok || fl.sanitizedBefore(s, e.pos) {
					continue
				}
				tv.pos = e.pos
				nv = mergeTaint(nv, tv)
			}
			if nv != fl.taint[e.dst] {
				fl.taint[e.dst] = nv
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// lookupTaint finds the taint of r, falling back to any tainted prefix
// (a tainted struct taints its fields and elements).
func (fl *funcFlow) lookupTaint(r ref) (taintVal, bool) {
	if tv, ok := fl.taint[r]; ok && !tv.empty() {
		return tv, true
	}
	path := r.path
	for path != "" {
		cut := strings.LastIndexAny(path, ".[")
		if cut < 0 {
			break
		}
		path = path[:cut]
		if strings.HasSuffix(path, "]") || strings.HasSuffix(path, "[") {
			path = strings.TrimRight(path, "[]")
		}
		if tv, ok := fl.taint[ref{obj: r.obj, path: path}]; ok && !tv.empty() {
			return tv, true
		}
	}
	if r.path != "" {
		if tv, ok := fl.taint[ref{obj: r.obj}]; ok && !tv.empty() {
			return tv, true
		}
	}
	return taintVal{}, false
}

// sanitizedBefore reports whether r (or a prefix of it) was bounds-
// checked at a position before pos.
func (fl *funcFlow) sanitizedBefore(r ref, pos token.Pos) bool {
	if p, ok := fl.sanitized[r]; ok && p < pos {
		return true
	}
	if r.path != "" {
		if p, ok := fl.sanitized[ref{obj: r.obj}]; ok && p < pos {
			return true
		}
	}
	return false
}

// taintOfExpr merges the taint of every unsanitized ref in e at pos,
// plus any direct source call embedded in e. It returns the merged value
// and the name of the first tainted ref (for diagnostics).
func (fl *funcFlow) taintOfExpr(e ast.Expr, cutoff token.Pos) (taintVal, string) {
	var out taintVal
	name := ""
	for _, r := range fl.exprRefs(e) {
		tv, ok := fl.lookupTaint(r)
		if !ok || fl.sanitizedBefore(r, cutoff) {
			continue
		}
		if name == "" && tv.direct {
			name = refName(r)
		}
		out = mergeTaint(out, tv)
	}
	if src := fl.directSourceIn(e); src != nil && src.viaCall {
		// A summarized tainted result used inline (no local variable).
		out = mergeTaint(out, *src)
		if name == "" {
			name = src.srcDesc
		}
	}
	return out, name
}

func refName(r ref) string {
	return r.obj.Name() + r.path
}

// shortPos renders a position as base-filename:line for summary chains.
func (prog *Program) shortPos(pos token.Pos) string {
	p := prog.fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}

// summaryFacts evaluates the sinks and returns for summary purposes:
// which results are tainted, which parameters flow to which results, and
// which parameters reach an unchecked allocation or loop bound.
func (fl *funcFlow) summaryFacts() ([]bool, []uint64, map[int]string) {
	sinks := make(map[int]string)
	fname := fl.fd.Name.Name
	for _, s := range fl.sinks {
		tv, _ := fl.taintOfExpr(s.expr, s.cutoff)
		if tv.params == 0 {
			continue
		}
		var desc string
		switch s.kind {
		case sinkMake:
			desc = fmt.Sprintf("a make() in %s (%s)", fname, fl.prog.shortPos(s.pos))
		case sinkLoop:
			desc = fmt.Sprintf("a loop bound in %s (%s)", fname, fl.prog.shortPos(s.pos))
		case sinkCall:
			desc = fmt.Sprintf("%s via %s", s.desc, fname)
		}
		for i := 0; i < len(fl.params) && i < 64; i++ {
			if tv.params&(1<<uint(i)) != 0 {
				if _, ok := sinks[i]; !ok {
					sinks[i] = desc
				}
			}
		}
	}
	// Tainted results: explicit return expressions plus named results.
	nResults := 0
	if fl.fd.Type.Results != nil {
		for _, f := range fl.fd.Type.Results.List {
			if len(f.Names) == 0 {
				nResults++
			} else {
				nResults += len(f.Names)
			}
		}
	}
	tainted := make([]bool, nResults)
	masks := make([]uint64, nResults)
	markReturn := func(i int, e ast.Expr) {
		if i >= nResults || !isIntType(fl.pkg.Info.TypeOf(e)) {
			return
		}
		tv, _ := fl.taintOfExpr(e, e.Pos())
		if tv.direct {
			tainted[i] = true
		}
		// An inline pattern-source call (return r.ReadBits(n)) is a tainted
		// result even though taintOfExpr skips it intra-function (that
		// double-report guard is about sinks, not summaries).
		if src := fl.directSourceIn(e); src != nil {
			tainted[i] = true
		}
		masks[i] |= tv.params
	}
	for _, ret := range fl.returns {
		if len(ret.Results) == 1 && nResults > 1 {
			// Bare call pass-through: results inherit the callee's facts.
			if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
				if name := calleeName(call); name != "" && taintSourcePattern.MatchString(name) {
					for i := range tainted {
						tainted[i] = true
					}
				} else if f := resolveCallee(fl.pkg, call); f != nil && fl.prog.isModuleFunc(f) {
					if s := fl.prog.sums[f]; s != nil {
						for i, t := range s.taintedResults {
							if i < nResults && t {
								tainted[i] = true
							}
						}
					}
				}
				// The args' param taint flows into every result,
				// respecting the callee's own resultParams via exprRefs.
				tv, _ := fl.taintOfExpr(ret.Results[0], ret.Pos())
				for i := range masks {
					masks[i] |= tv.params
				}
			}
			continue
		}
		for i, e := range ret.Results {
			markReturn(i, e)
		}
		if len(ret.Results) == 0 {
			for i, obj := range fl.results {
				if i >= nResults || !isIntType(obj.Type()) {
					continue
				}
				if fl.sanitizedBefore(ref{obj: obj}, ret.Pos()) {
					continue
				}
				if tv, ok := fl.lookupTaint(ref{obj: obj}); ok {
					if tv.direct {
						tainted[i] = true
					}
					masks[i] |= tv.params
				}
			}
		}
	}
	anyT, anyM := false, false
	for i := range tainted {
		anyT = anyT || tainted[i]
		anyM = anyM || masks[i] != 0
	}
	if !anyT {
		tainted = tainted[:0]
	}
	if !anyM {
		masks = masks[:0]
	}
	return tainted, masks, sinks
}
