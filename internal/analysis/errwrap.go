package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerErrWrap flags fmt.Errorf calls without a %w verb inside
// functions reachable from the decode entry points. Decode-path errors
// must wrap a package sentinel (ErrCorrupt or equivalent) so callers can
// classify hostile input with errors.Is end-to-end; a raw fmt.Errorf
// breaks the chain.
//
// Reachability is computed on the same type-checked callgraph as
// nopanic, so errors assigned inside helper methods (for example a
// decoder storing into a struct error field) are covered even when the
// helper's own name says nothing about decoding.
var AnalyzerErrWrap = &Analyzer{
	Name: "errwrap",
	Doc:  "decode-path fmt.Errorf must wrap a sentinel with %w",
	Run:  runErrWrap,
}

func runErrWrap(pass *Pass) {
	prog := pass.Program()
	g := prog.graph
	reach, parent := prog.decodeReach, prog.decodeParent
	for f := range reach {
		node := g.nodes[f]
		if node == nil {
			continue
		}
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if !isFmtErrorf(node.pkg, call) {
				return true
			}
			format, ok := formatLiteral(node.pkg, call)
			if !ok {
				return true // non-constant format: cannot judge statically
			}
			if strings.Contains(format, "%w") {
				return true
			}
			pass.Reportf(call.Pos(),
				"fmt.Errorf without %%w in decode path (%s); wrap the package corrupt-input sentinel so errors.Is works",
				chain(parent, f))
			return true
		})
	}
}

func isFmtErrorf(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	f, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Name() != "Errorf" {
		return false
	}
	p := f.Pkg()
	return p != nil && p.Path() == "fmt"
}

// formatLiteral returns the constant string value of the first argument,
// if it is a compile-time string constant.
func formatLiteral(pkg *Package, call *ast.CallExpr) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	tv, ok := pkg.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil {
		return "", false
	}
	s := tv.Value.ExactString()
	if len(s) >= 2 && s[0] == '"' {
		return s, true
	}
	return s, true
}
