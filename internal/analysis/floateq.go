package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerFloatEq flags == and != between float32/float64 operands in
// the quantization and prediction packages (quant, interp, lorenzo).
// Almost every float equality there is a bug — reconstructed values
// differ from originals by rounding, so equality silently misclassifies
// points. The two legitimate uses (bit-exact self-verification replays,
// where the decoder recomputes the identical arithmetic) carry a
// //clizlint:ignore floateq annotation explaining why.
var AnalyzerFloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "no ==/!= on float32/float64 in quant/interp/lorenzo",
	Run:  runFloatEq,
}

var floatEqPackages = map[string]bool{
	"quant":   true,
	"interp":  true,
	"lorenzo": true,
}

func runFloatEq(pass *Pass) {
	for _, pkg := range pass.Pkgs {
		if !floatEqPackages[pkg.Name] {
			continue
		}
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				if isFloat(pkg, be.X) || isFloat(pkg, be.Y) {
					pass.Reportf(be.OpPos,
						"%s on floating-point operands; compare with a tolerance, or annotate a bit-exact comparison with //clizlint:ignore floateq <reason>",
						be.Op)
				}
				return true
			})
		}
	}
}

func isFloat(pkg *Package, e ast.Expr) bool {
	t := pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	return b.Info()&types.IsFloat != 0
}
