package analysis

import (
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// sharedLoader memoizes one Loader for the whole test binary so the
// standard library is only type-checked once across golden tests and the
// module self-check.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func sharedLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() {
		loaderVal, loaderErr = NewLoader(".")
	})
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

// expectation is one parsed `// want` comment: a regexp that must match
// a diagnostic message on the anchored line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

var wantRe = regexp.MustCompile("^// want (\\+(\\d+) )?([`\"].*)$")

// collectWants scans the fixture package's comments for expectations.
// `// want \x60regex\x60` anchors to the comment's own line; `// want +N
// \x60regex\x60` anchors N lines below (for diagnostics reported on full-line
// comments, like malformed directives).
func collectWants(t *testing.T, pkg *Package, l *Loader) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				offset := 0
				if m[2] != "" {
					offset, _ = strconv.Atoi(m[2])
				}
				raw := strings.TrimSpace(m[3])
				var pat string
				if strings.HasPrefix(raw, "`") {
					pat = strings.Trim(raw, "`")
				} else {
					var err error
					pat, err = strconv.Unquote(raw)
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", l.Fset.Position(c.Pos()), raw, err)
					}
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", l.Fset.Position(c.Pos()), pat, err)
				}
				pos := l.Fset.Position(c.Pos())
				wants = append(wants, &expectation{
					file:    pos.Filename,
					line:    pos.Line + offset,
					pattern: re,
				})
			}
		}
	}
	return wants
}

// runGolden loads one fixture package, runs the given analyzers, and
// checks the diagnostics against the fixture's want comments exactly:
// every expectation must be matched and every diagnostic expected. A
// disabled or broken analyzer therefore fails the test (its expected
// diagnostics go unmatched).
func runGolden(t *testing.T, fixture string, analyzers []*Analyzer) {
	t.Helper()
	l := sharedLoader(t)
	pkgs, err := l.LoadPatterns([]string{"./internal/analysis/testdata/src/" + fixture})
	if err != nil {
		t.Fatalf("load fixture %s: %v", fixture, err)
	}
	diags := Run(l.Fset, pkgs, analyzers)
	var wants []*expectation
	for _, p := range pkgs {
		wants = append(wants, collectWants(t, p, l)...)
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", fixture)
	}
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.File && w.line == d.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q was not reported", w.file, w.line, w.pattern)
		}
	}
}

func TestGoldenNoPanic(t *testing.T) { runGolden(t, "nopanic/grid", []*Analyzer{AnalyzerNoPanic}) }
func TestGoldenBoundedAlloc(t *testing.T) {
	runGolden(t, "boundedalloc/bitio", []*Analyzer{AnalyzerBoundedAlloc})
}
func TestGoldenErrWrap(t *testing.T) { runGolden(t, "errwrap/core", []*Analyzer{AnalyzerErrWrap}) }
func TestGoldenTracePair(t *testing.T) {
	runGolden(t, "tracepair/tracecheck", []*Analyzer{AnalyzerTracePair})
}
func TestGoldenFloatEq(t *testing.T) { runGolden(t, "floateq/quant", []*Analyzer{AnalyzerFloatEq}) }
func TestGoldenTaintSize(t *testing.T) {
	runGolden(t, "taintsize/codec", []*Analyzer{AnalyzerTaintSize})
}
func TestGoldenCtxPoll(t *testing.T) {
	runGolden(t, "ctxpoll/stream", []*Analyzer{AnalyzerCtxPoll})
}
func TestGoldenGoroLeak(t *testing.T) {
	runGolden(t, "goroleak/service", []*Analyzer{AnalyzerGoroLeak})
}

// Regression fixtures: minimized real-world shapes from this module's
// own triage. Each pre-fix hazard must keep firing and each shipped fix
// (or summary-proved safe shape) must stay clean.
func TestRegressStreamDelta(t *testing.T) {
	runGolden(t, "regress/stream", []*Analyzer{AnalyzerCtxPoll})
}
func TestRegressZFPPlanes(t *testing.T) {
	runGolden(t, "regress/zfp", []*Analyzer{AnalyzerTaintSize})
}
func TestRegressServiceRefresh(t *testing.T) {
	runGolden(t, "regress/service", []*Analyzer{AnalyzerGoroLeak})
}

// TestGoldenDirectives checks the engine's own directive validation
// (missing reason, unknown analyzer) with the full suite active.
func TestGoldenDirectives(t *testing.T) { runGolden(t, "directive", Analyzers()) }

// TestEachAnalyzerFires pins the disabled-check property directly: every
// analyzer must produce at least one diagnostic on its fixture, so
// neutering Run for an analyzer cannot pass unnoticed.
func TestEachAnalyzerFires(t *testing.T) {
	fixtures := map[string]string{
		"nopanic":      "nopanic/grid",
		"boundedalloc": "boundedalloc/bitio",
		"errwrap":      "errwrap/core",
		"tracepair":    "tracepair/tracecheck",
		"floateq":      "floateq/quant",
		"taintsize":    "taintsize/codec",
		"ctxpoll":      "ctxpoll/stream",
		"goroleak":     "goroleak/service",
	}
	l := sharedLoader(t)
	for _, a := range Analyzers() {
		fixture, ok := fixtures[a.Name]
		if !ok {
			t.Errorf("analyzer %s has no golden fixture", a.Name)
			continue
		}
		pkgs, err := l.LoadPatterns([]string{"./internal/analysis/testdata/src/" + fixture})
		if err != nil {
			t.Fatalf("load fixture %s: %v", fixture, err)
		}
		found := false
		for _, d := range Run(l.Fset, pkgs, []*Analyzer{a}) {
			if d.Analyzer == a.Name {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("analyzer %s reported nothing on fixture %s: check disabled?", a.Name, fixture)
		}
	}
}

// TestSuppression checks that a well-formed ignore directive removes the
// diagnostic while leaving unannotated sites flagged (the floateq
// fixture has both).
func TestSuppression(t *testing.T) {
	l := sharedLoader(t)
	pkgs, err := l.LoadPatterns([]string{"./internal/analysis/testdata/src/floateq/quant"})
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(l.Fset, pkgs, []*Analyzer{AnalyzerFloatEq})
	if len(diags) != 2 {
		var lines []string
		for _, d := range diags {
			lines = append(lines, d.String())
		}
		t.Fatalf("want exactly 2 surviving diagnostics (annotated site suppressed), got %d:\n%s",
			len(diags), strings.Join(lines, "\n"))
	}
}
