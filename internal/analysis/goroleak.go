package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerGoroLeak enforces goroutine hygiene: every `go` statement in
// non-test code must have a visible join or cancellation path, so a
// caller that returns early cannot strand the goroutine. Accepted
// evidence, checked lexically in the goroutine body and its enclosing
// function:
//
//   - WaitGroup: the body calls Done (directly or deferred) and the
//     enclosing function Waits on the same WaitGroup.
//   - Channel handoff: the body sends on or closes a channel, and the
//     enclosing function receives from / selects on / ranges over a
//     channel, returns one, or the channel arrived as a parameter or
//     field (the consumer lives elsewhere by construction).
//   - Context binding: the body references a context.Context or polls an
//     Interrupt hook, so cancellation reaches it.
//   - A named `go f(...)` call passing a context, WaitGroup, or channel
//     argument, or whose callee's summary polls.
//
// A sub-check scoped to internal/service flags mutexes held across
// blocking operations: inside a lexical Lock..Unlock window (a deferred
// Unlock extends the window to the end of the function), any channel
// operation, select, Wait/Sleep, or call to a module-local callee whose
// summary blocks is reported — the PR 7 singleflight design requires
// the LRU mutex to be released around AutoTune/encode work.
var AnalyzerGoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "goroutines need a join or cancellation path; service mutexes must not be held across blocking calls",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	prog := pass.Program()
	for _, f := range prog.funcs {
		node := prog.graph.nodes[f]
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineJoined(prog, node, gs) {
				pass.Reportf(gs.Pos(),
					"goroutine launched in %s has no join or cancellation path (no WaitGroup Done/Wait pair, channel handoff, or context binding); a caller that returns early leaks it",
					f.Name())
			}
			return true
		})
		if node.pkg.Name == "service" {
			checkMutexWindows(pass, prog, node)
		}
	}
}

// goroutineJoined decides whether the go statement has join or
// cancellation evidence.
func goroutineJoined(prog *Program, node *funcNode, gs *ast.GoStmt) bool {
	lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
	if !ok {
		// go f(args...): joined if an argument carries a lifetime (context,
		// WaitGroup, channel) or the callee polls cancellation itself.
		for _, arg := range gs.Call.Args {
			if carriesLifetime(node.pkg.Info.TypeOf(arg)) {
				return true
			}
		}
		if f := resolveCallee(node.pkg, gs.Call); f != nil {
			if s := prog.sums[f]; s != nil && s.polls {
				return true
			}
		}
		return false
	}
	body := lit.Body
	// WaitGroup: Done in the body, Wait on the same group in the encloser.
	for _, done := range receiverRefs(node.pkg, body, "Done") {
		for _, wait := range receiverRefs(node.pkg, node.decl.Body, "Wait") {
			if done == wait {
				return true
			}
		}
	}
	// Channel handoff: the body sends/closes; the result is consumed by
	// the encloser or the channel's owner lives elsewhere.
	if r, sends := bodySendsOnChannel(node.pkg, body); sends {
		if enclosingConsumesChannel(node.pkg, node.decl.Body) {
			return true
		}
		if r.obj != nil && !isFunctionLocal(r.obj, node.decl) {
			return true
		}
	}
	// Context binding: the body can observe cancellation.
	bound := false
	ast.Inspect(body, func(n ast.Node) bool {
		if bound {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if t := node.pkg.Info.TypeOf(n); t != nil && t.String() == "context.Context" {
				bound = true
			}
		case *ast.CallExpr:
			if isPollCall(node.pkg, n) {
				bound = true
			}
			if f := resolveCallee(node.pkg, n); f != nil {
				if s := prog.sums[f]; s != nil && s.polls {
					bound = true
				}
			}
		}
		return true
	})
	return bound
}

func carriesLifetime(t types.Type) bool {
	if t == nil {
		return false
	}
	if t.String() == "context.Context" {
		return true
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if strings.HasSuffix(t.String(), "sync.WaitGroup") {
		return true
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// receiverRefs collects the value-graph refs of x in x.<method>() calls
// with the given method name inside root.
func receiverRefs(pkg *Package, root ast.Node, method string) []ref {
	var out []ref
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		if r, ok := resolveExprRef(pkg, sel.X); ok {
			out = append(out, r)
		}
		return true
	})
	return out
}

// bodySendsOnChannel reports whether the goroutine body sends on or
// closes a channel, returning the channel's ref when resolvable.
func bodySendsOnChannel(pkg *Package, body *ast.BlockStmt) (ref, bool) {
	var out ref
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
			out, _ = resolveExprRef(pkg, n.Chan)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 1 {
					found = true
					out, _ = resolveExprRef(pkg, n.Args[0])
				}
			}
		}
		return true
	})
	return out, found
}

// enclosingConsumesChannel reports whether the enclosing function
// contains a receive operation, a select, or a range over a channel —
// the consumption side of a handoff.
func enclosingConsumesChannel(pkg *Package, body *ast.BlockStmt) bool {
	consumes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if consumes {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectStmt:
			consumes = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				consumes = true
			}
		case *ast.RangeStmt:
			if t := pkg.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					consumes = true
				}
			}
		}
		return true
	})
	return consumes
}

// isFunctionLocal reports whether obj is declared inside fd's body (as
// opposed to a parameter, field owner, or package-level variable, whose
// consumer can live elsewhere).
func isFunctionLocal(obj types.Object, fd *ast.FuncDecl) bool {
	return obj.Pos() >= fd.Body.Pos() && obj.Pos() <= fd.Body.End()
}

// ---------------------------------------------------------------------
// Mutex-across-blocking sub-check (internal/service).
// ---------------------------------------------------------------------

type lockWindow struct {
	recv       ref
	start, end token.Pos
}

// checkMutexWindows finds lexical Lock..Unlock windows in node's body
// and reports blocking operations inside them.
func checkMutexWindows(pass *Pass, prog *Program, node *funcNode) {
	windows := collectLockWindows(node)
	if len(windows) == 0 {
		return
	}
	for _, site := range blockingSites(prog, node) {
		for _, w := range windows {
			if site.pos > w.start && site.pos < w.end {
				pass.Reportf(site.pos,
					"%s while holding %s locked in %s; release the mutex before blocking work (unlock around the heavy section, singleflight style)",
					site.what, refName(w.recv), node.decl.Name.Name)
				break
			}
		}
	}
}

// collectLockWindows pairs each Lock/RLock with the first later Unlock/
// RUnlock on the same receiver. A deferred unlock extends the window to
// the end of the function.
func collectLockWindows(node *funcNode) []lockWindow {
	type ev struct {
		r        ref
		pos      token.Pos
		name     string
		deferred bool
	}
	var evs []ev
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		deferred := false
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferred = true
			call = n.Call
		case *ast.CallExpr:
			call = n
		default:
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "Unlock", "RUnlock":
			if !isMutexRecv(node.pkg, sel.X) {
				return true
			}
			if r, ok := resolveExprRef(node.pkg, sel.X); ok {
				evs = append(evs, ev{r: r, pos: call.Pos(), name: sel.Sel.Name, deferred: deferred})
			}
		}
		return !deferred
	})
	var out []lockWindow
	for _, e := range evs {
		if e.name != "Lock" && e.name != "RLock" {
			continue
		}
		w := lockWindow{recv: e.r, start: e.pos, end: node.decl.Body.End()}
		for _, u := range evs {
			if u.r == e.r && !u.deferred && u.pos > e.pos &&
				(u.name == "Unlock" || u.name == "RUnlock") && u.pos < w.end {
				w.end = u.pos
			}
		}
		out = append(out, w)
	}
	return out
}

func isMutexRecv(pkg *Package, x ast.Expr) bool {
	t := pkg.Info.TypeOf(x)
	if t == nil {
		return false
	}
	s := t.String()
	return strings.HasSuffix(s, "sync.Mutex") || strings.HasSuffix(s, "sync.RWMutex")
}

type blockSite struct {
	pos  token.Pos
	what string
}

// blockingSites collects operations in node's body (outside go
// statements and function literals) that can block the calling
// goroutine: channel operations, select, Wait/Sleep, and calls to
// module-local callees whose summaries block.
func blockingSites(prog *Program, node *funcNode) []blockSite {
	var out []blockSite
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		case *ast.SendStmt:
			out = append(out, blockSite{n.Pos(), "channel send"})
		case *ast.SelectStmt:
			out = append(out, blockSite{n.Pos(), "select"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				out = append(out, blockSite{n.Pos(), "channel receive"})
			}
		case *ast.RangeStmt:
			if t := node.pkg.Info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					out = append(out, blockSite{n.Pos(), "range over channel"})
				}
			}
		case *ast.CallExpr:
			switch calleeName(n) {
			case "Wait", "Sleep":
				out = append(out, blockSite{n.Pos(), calleeName(n) + " call"})
				return true
			}
			if f := resolveCallee(node.pkg, n); f != nil && prog.isModuleFunc(f) {
				if s := prog.sums[f]; s != nil && s.blocking {
					out = append(out, blockSite{n.Pos(), "call to blocking " + f.Name()})
				}
			}
		}
		return true
	})
	return out
}
