package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Ignore is one parsed //clizlint:ignore directive.
//
// Format:
//
//	//clizlint:ignore <analyzer> <reason>
//
// The directive suppresses diagnostics from <analyzer> (or every
// analyzer, when <analyzer> is "all") reported on the same line or on
// the line immediately below the directive. A non-empty reason is
// mandatory; a directive without one is itself reported as a
// malformed-directive diagnostic so suppressions stay reviewable.
type Ignore struct {
	Pos      token.Position
	Analyzer string
	Reason   string
}

const ignorePrefix = "//clizlint:ignore"

// collectIgnores scans file comments for clizlint directives.
func collectIgnores(fset *token.FileSet, files []*ast.File) []Ignore {
	var out []Ignore
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				ig := Ignore{Pos: fset.Position(c.Pos())}
				if len(fields) > 0 {
					ig.Analyzer = fields[0]
				}
				if len(fields) > 1 {
					ig.Reason = strings.Join(fields[1:], " ")
				}
				out = append(out, ig)
			}
		}
	}
	return out
}

// suppresses reports whether ig applies to a diagnostic from the named
// analyzer at pos: same file, and the diagnostic sits on the directive's
// own line (trailing comment) or the line immediately below it.
func (ig Ignore) suppresses(analyzer string, pos token.Position) bool {
	if ig.Analyzer != analyzer && ig.Analyzer != "all" {
		return false
	}
	if ig.Reason == "" {
		return false // malformed directives suppress nothing
	}
	if ig.Pos.Filename != pos.Filename {
		return false
	}
	return pos.Line == ig.Pos.Line || pos.Line == ig.Pos.Line+1
}
