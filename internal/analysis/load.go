// Package analysis is a stdlib-only static-analysis engine for the CliZ
// module. It loads and type-checks packages with go/parser + go/types,
// runs project-specific analyzers over the typed ASTs, and reports
// diagnostics that can be suppressed with //clizlint:ignore directives.
//
// The engine deliberately avoids golang.org/x/tools: the loader resolves
// imports of module-local packages ("cliz/...") by recursively
// type-checking the corresponding directories, and delegates standard
// library imports to the source importer shipped with the toolchain.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit analyzers see.
type Package struct {
	Path    string // import path, e.g. "cliz/internal/grid"
	Name    string // package name, e.g. "grid"
	Dir     string // directory on disk
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Ignores []Ignore
}

// Loader parses and type-checks packages of a single Go module. It is
// safe to reuse across Load calls; type-checked packages are memoized so
// that shared dependencies are only checked once.
type Loader struct {
	Fset    *token.FileSet
	modPath string
	modDir  string
	std     types.ImporterFrom
	cache   map[string]*Package
	loading map[string]bool
}

// NewLoader creates a loader rooted at the module containing dir. It
// locates go.mod by walking upward from dir.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("analysis: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:    fset,
		modPath: modPath,
		modDir:  modDir,
		std:     std,
		cache:   make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// ModulePath returns the module path from go.mod (e.g. "cliz").
func (l *Loader) ModulePath() string { return l.modPath }

// ModuleDir returns the module root directory.
func (l *Loader) ModuleDir() string { return l.modDir }

func findModule(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: go.mod in %s has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// LoadPatterns resolves package patterns relative to the module root.
// Supported patterns: "./..." (all module packages), a module-relative
// directory like "./internal/grid", or an import path like
// "cliz/internal/grid".
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var pkgs []*Package
	add := func(p *Package) {
		if p != nil && !seen[p.Path] {
			seen[p.Path] = true
			pkgs = append(pkgs, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := l.moduleDirs()
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				p, err := l.loadDir(d)
				if err != nil {
					return nil, err
				}
				add(p)
			}
		case strings.HasPrefix(pat, "./") && strings.HasSuffix(pat, "/..."):
			// Recursive subtree pattern, e.g. ./cmd/...
			root := filepath.Join(l.modDir, filepath.FromSlash(strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/...")))
			dirs, err := l.dirsUnder(root)
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				p, err := l.loadDir(d)
				if err != nil {
					return nil, err
				}
				add(p)
			}
		case strings.HasPrefix(pat, "./") || pat == ".":
			p, err := l.loadDir(filepath.Join(l.modDir, filepath.FromSlash(strings.TrimPrefix(pat, "./"))))
			if err != nil {
				return nil, err
			}
			add(p)
		default:
			p, err := l.loadImportPath(pat)
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// moduleDirs returns every directory under the module root that contains
// at least one non-test .go file, skipping testdata, hidden dirs, and
// vendor.
func (l *Loader) moduleDirs() ([]string, error) {
	return l.dirsUnder(l.modDir)
}

// dirsUnder walks root for package directories with the same skip rules
// as moduleDirs (testdata, hidden, vendor).
func (l *Loader) dirsUnder(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "results") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && isSourceFile(e.Name()) {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	return dirs, err
}

func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

func (l *Loader) loadImportPath(path string) (*Package, error) {
	if path == l.modPath {
		return l.loadDir(l.modDir)
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return l.loadDir(filepath.Join(l.modDir, filepath.FromSlash(rest)))
	}
	return nil, fmt.Errorf("analysis: import path %q is outside module %s", path, l.modPath)
}

// loadDir parses and type-checks the package in dir (non-test files
// only), memoized by import path.
func (l *Loader) loadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(abs)
	if err != nil {
		return nil, err
	}
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	ents, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(abs, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", abs)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := cfg.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", path, err)
	}
	p := &Package{
		Path:    path,
		Name:    tpkg.Name(),
		Dir:     abs,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Ignores: collectIgnores(l.Fset, files),
	}
	l.cache[path] = p
	return p, nil
}

// importPathFor maps a directory inside the module to its import path.
// Directories under testdata get a synthetic path rooted at the module
// path so golden-test fixture packages can be loaded like real ones.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modDir, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: directory %s is outside module root %s", dir, l.modDir)
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// loaderImporter adapts Loader to types.ImporterFrom: module-local
// import paths are type-checked from source in-process; everything else
// (the standard library) is delegated to the toolchain source importer.
type loaderImporter Loader

func (im *loaderImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l := (*Loader)(im)
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		p, err := l.loadImportPath(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
