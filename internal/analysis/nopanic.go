package analysis

import "go/types"

// AnalyzerNoPanic reports panic() and log.Fatal* calls that are
// reachable, via the type-checked callgraph, from exported
// decode/parse/Verify entry points in the decode-contract packages.
// Hostile input must surface as a returned error, never a crash.
//
// Encode-only and registration-time panics (programmer-error guards that
// no untrusted byte stream can trigger) are permitted because they are
// unreachable from the entry set; the analyzer proves that property
// rather than trusting it.
var AnalyzerNoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "no panic/log.Fatal reachable from exported decode/Verify entry points",
	Run:  runNoPanic,
}

func runNoPanic(pass *Pass) {
	prog := pass.Program()
	g := prog.graph
	reach, parent := prog.decodeReach, prog.decodeParent
	reported := make(map[*types.Func]bool)
	for f := range reach {
		node := g.nodes[f]
		if node == nil || len(node.panics) == 0 || reported[f] {
			continue
		}
		reported[f] = true
		for _, site := range node.panics {
			pass.Reportf(site.pos,
				"%s call in %s is reachable from decode entry point (%s); return an error wrapping the package corrupt-input sentinel instead",
				site.what, f.Name(), chain(parent, f))
		}
	}
}
