package analysis

import "testing"

// TestModuleClean runs the full analyzer suite over every package in the
// module and requires zero diagnostics — the same gate CI applies via
// cmd/clizlint. A regression that reintroduces a decode-reachable panic,
// an unbounded header-sized allocation, an unwrapped decode error, an
// unpaired trace span, or a float equality fails `go test ./...`, not
// just the lint job.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide type-check is slow; skipped in -short")
	}
	l := sharedLoader(t)
	pkgs, err := l.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	for _, d := range Run(l.Fset, pkgs, Analyzers()) {
		t.Errorf("%s", d)
	}
}

// TestLoaderResolvesModuleImports pins the loader's import wiring: a
// deep package whose dependencies span both module-local packages and
// the standard library must type-check.
func TestLoaderResolvesModuleImports(t *testing.T) {
	l := sharedLoader(t)
	pkgs, err := l.LoadPatterns([]string{"cliz/internal/core"})
	if err != nil {
		t.Fatalf("load cliz/internal/core: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Name != "core" {
		t.Fatalf("unexpected load result: %+v", pkgs)
	}
	if pkgs[0].Types.Scope().Lookup("Decompress") == nil {
		t.Fatal("core.Decompress not found in type-checked package")
	}
}
