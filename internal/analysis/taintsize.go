package analysis

import "fmt"

// AnalyzerTaintSize tracks bitstream-derived integers across function
// boundaries into allocation sizes and loop bounds. It is the
// interprocedural superset of boundedalloc: boundedalloc flags a read
// feeding a make() inside one function; taintsize flags the same flow
// when the read, the value plumbing, and the sink live in different
// functions — a length decoded in a helper, returned to a caller, and
// passed two hops down into a make() with no bounds check anywhere on
// the path.
//
// The split keeps the two analyzers disjoint: taintsize only reports
// flows that cross at least one call boundary (the taint arrived from a
// summarized callee result, or it departs into a summarized callee
// sink), so a finding is never reported twice under two names.
//
// Sanitization is positional, inherited from boundedalloc: a relational
// comparison involving the value, or passing it to a call whose name
// says check/valid/budget/cap/bound, kills the taint from that point on.
// For loop-bound sinks the cutoff is the loop statement itself, so a
// loop's own `i < n` condition does not sanitize its bound.
var AnalyzerTaintSize = &Analyzer{
	Name: "taintsize",
	Doc:  "bitstream-derived sizes must be bounds-checked before crossing calls into make/loop sinks",
	Run:  runTaintSize,
}

func runTaintSize(pass *Pass) {
	prog := pass.Program()
	for _, f := range prog.funcs {
		node := prog.graph.nodes[f]
		fl := newFuncFlow(node.pkg, node.decl, prog)
		for _, s := range fl.sinks {
			tv, name := fl.taintOfExpr(s.expr, s.cutoff)
			if !tv.direct {
				continue
			}
			// An unnamed tainted value (an inline call chain feeding the
			// sink directly) has no variable to point at; describe it by
			// its origin alone instead of repeating the origin twice.
			desc := fmt.Sprintf("%s, a bitstream-derived value from %s,", name, tv.srcDesc)
			short := fmt.Sprintf("bitstream-derived value %s (from %s)", name, tv.srcDesc)
			if name == "" || name == tv.srcDesc {
				desc = fmt.Sprintf("the bitstream-derived result of %s,", tv.srcDesc)
				short = fmt.Sprintf("the bitstream-derived result of %s", tv.srcDesc)
			}
			switch s.kind {
			case sinkMake:
				if !tv.viaCall {
					continue // intra-function flow: boundedalloc's finding
				}
				pass.Reportf(s.pos,
					"make() sized by %s with no bounds check on the path; cap it against a computed budget before allocating",
					desc)
			case sinkLoop:
				if !tv.viaCall {
					continue
				}
				pass.Reportf(s.pos,
					"loop bounded by %s with no bounds check on the path; validate it against a computed budget before looping",
					desc)
			case sinkCall:
				pass.Reportf(s.pos,
					"%s flows unchecked into %s; cap it before the call",
					short, s.desc)
			}
		}
	}
}
