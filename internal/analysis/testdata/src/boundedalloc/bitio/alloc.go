// Package bitio is a golden-test fixture for the boundedalloc analyzer:
// allocations sized from bitstream reads must be dominated by a bounds
// check before memory is committed.
package bitio

import "encoding/binary"

const maxSections = 16

// ParseHeader reads two counts from the stream. The first sizes an
// allocation with no preceding bounds check (flagged); the second is
// compared against a named cap first (clean).
func ParseHeader(src []byte) ([]byte, []uint32) {
	n, _ := binary.Uvarint(src)
	bad := make([]byte, n) // want `make\(\) sized by "n", which is read from the bitstream`
	m, sz := binary.Uvarint(src[1:])
	if m > maxSections || sz <= 0 {
		return bad, nil
	}
	good := make([]uint32, m)
	return bad, good
}

// ParseBody grows output with append inside a loop: work-proportional to
// the input, deliberately exempt.
func ParseBody(src []byte) []uint64 {
	var out []uint64
	for len(src) >= 8 {
		v := binary.LittleEndian.Uint64(src)
		out = append(out, v)
		src = src[8:]
	}
	return out
}
