// Package stream is a golden-test fixture for the ctxpoll analyzer:
// data-proportional loops reachable from lifetime-owning entry points
// must reach a cancellation poll, directly or through a callee whose
// summary polls.
package stream

// Reader carries the cancellation hook, mirroring core.Options.Interrupt.
type Reader struct {
	interrupt func() error
}

// interrupted polls the hook; its name satisfies the poll pattern and
// its summary marks every caller's loop as polling.
func (r *Reader) interrupted() error {
	if r.interrupt == nil {
		return nil
	}
	return r.interrupt()
}

// step is the per-element work the contract is about.
func step(v float32) float32 {
	return v * 0.5
}

// ReadFrame does per-element work with no poll in sight (flagged).
func (r *Reader) ReadFrame(data []float32) float32 {
	var sum float32
	for _, v := range data { // want `data-proportional loop in ReadFrame does per-element work without reaching a cancellation poll`
		sum += step(v)
	}
	return sum
}

// Decompress polls directly inside the loop (clean).
func (r *Reader) Decompress(data []float32) float32 {
	var sum float32
	for _, v := range data {
		if r.interrupted() != nil {
			return sum
		}
		sum += step(v)
	}
	return sum
}

// Append reaches the poll transitively: chunk's summary polls (clean).
func (r *Reader) Append(data []float32) float32 {
	var sum float32
	for _, v := range data {
		sum += r.chunk(v)
	}
	return sum
}

func (r *Reader) chunk(v float32) float32 {
	if r.interrupted() != nil {
		return 0
	}
	return step(v)
}

// Tune's loop is pure arithmetic: bounded per-element cost, exempt.
func (r *Reader) Tune(data []float32) float32 {
	var sum float32
	for _, v := range data {
		sum += v * v
	}
	return sum
}

// Estimate iterates a bounded table; the directive records why no poll
// is needed and must suppress the diagnostic.
func (r *Reader) Estimate(rows []float32) float32 {
	var sum float32
	//clizlint:ignore ctxpoll bounded calibration table, not request data
	for _, v := range rows {
		sum += step(v)
	}
	return sum
}
