// Package directive is a golden-test fixture for the suppression-
// directive rules: a directive must name a known analyzer and carry a
// reason, and a malformed one is itself a diagnostic. The `want +N`
// form anchors the expectation N lines below the comment.
package directive

// want +2 `malformed //clizlint:ignore directive`

//clizlint:ignore floateq
func missingReason() {}

// want +2 `names unknown analyzer "nosuchanalyzer"`

//clizlint:ignore nosuchanalyzer reason text here
func unknownAnalyzer() {}

//clizlint:ignore all this whole line is exempt for a documented reason
func wellFormed() {}

var _ = []func(){missingReason, unknownAnalyzer, wellFormed}
