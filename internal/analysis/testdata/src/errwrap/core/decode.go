// Package core is a golden-test fixture for the errwrap analyzer:
// fmt.Errorf in decode-reachable functions must wrap a sentinel with %w.
package core

import (
	"errors"
	"fmt"
)

// ErrCorrupt is the package corrupt-input sentinel.
var ErrCorrupt = errors.New("core: corrupt")

// DecodeThing is a decode entry point.
func DecodeThing(src []byte) error {
	if len(src) == 0 {
		return fmt.Errorf("empty input") // want `fmt.Errorf without %w in decode path`
	}
	if len(src) > 64 {
		return fmt.Errorf("implausible length %d: %w", len(src), ErrCorrupt)
	}
	return helper(src)
}

// helper is only reachable through DecodeThing; its raw fmt.Errorf still
// breaks the errors.Is chain and must be flagged.
func helper(src []byte) error {
	if src[0] != 0xC1 {
		return fmt.Errorf("bad magic byte %#x", src[0]) // want `fmt.Errorf without %w in decode path`
	}
	return nil
}

// Advise is unreachable from any decode entry point, so its bare
// fmt.Errorf is an ordinary error, not a contract violation.
func Advise(n int) error {
	return fmt.Errorf("advice rejected for %d", n)
}
