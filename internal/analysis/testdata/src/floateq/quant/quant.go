// Package quant is a golden-test fixture for the floateq analyzer: its
// name places it in the float-comparison contract, so ==/!= on floats
// are flagged unless annotated as bit-exact comparisons.
package quant

// Same compares floats the wrong way (flagged) and the right ways
// (tolerance, annotated bit-exact, integer).
func Same(a, b float32, eps float64) bool {
	if a == b { // want `== on floating-point operands`
		return true
	}
	d := float64(a) - float64(b)
	if d != 0 { // want `!= on floating-point operands`
		d = -d
	}
	//clizlint:ignore floateq golden-test stand-in for a bit-exact self-verification replay
	if a != b {
		_ = d
	}
	na, nb := int32(a), int32(b)
	if na != nb { // integers: not flagged
		return false
	}
	return d < eps
}
