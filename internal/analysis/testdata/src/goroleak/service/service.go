// Package service is a golden-test fixture for the goroleak analyzer:
// every go statement needs a join or cancellation path, and service
// mutexes must not be held across blocking calls.
package service

import (
	"context"
	"sync"
	"time"
)

func work(i int) int {
	return i * 2
}

// Flood launches a goroutine with no join, handoff, or context binding
// (flagged): a caller that returns early leaks it.
func Flood(n int) {
	go func() { // want `goroutine launched in Flood has no join or cancellation path`
		work(n)
	}()
}

// Joined pairs Done in the body with Wait on the same group (clean).
func Joined(n int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work(n)
	}()
	wg.Wait()
}

// Handoff sends the result on a channel the encloser receives (clean).
func Handoff(n int) int {
	ch := make(chan int, 1)
	go func() {
		ch <- work(n)
	}()
	return <-ch
}

// Escape sends on a caller-owned channel: the consumer lives elsewhere
// (clean).
func Escape(ch chan<- int, n int) {
	go func() {
		ch <- work(n)
	}()
}

// Bound binds the goroutine to a context it can observe (clean).
func Bound(ctx context.Context, n int) {
	go func() {
		<-ctx.Done()
		work(n)
	}()
}

// cache is the mutex-discipline half of the fixture.
type cache struct {
	mu sync.Mutex
	m  map[string]int
}

// slowLoad blocks (Sleep), so its summary marks callers' lock windows.
func slowLoad(k string) int {
	time.Sleep(time.Millisecond)
	return len(k)
}

// BadGet holds the cache mutex across the blocking load (flagged): every
// other request serializes behind one slow miss.
func (c *cache) BadGet(k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[k]
	if !ok {
		v = slowLoad(k) // want `call to blocking slowLoad while holding .* locked in BadGet`
		c.m[k] = v
	}
	return v
}

// GoodGet releases the mutex around the heavy section, singleflight
// style (clean).
func (c *cache) GoodGet(k string) int {
	c.mu.Lock()
	v, ok := c.m[k]
	c.mu.Unlock()
	if ok {
		return v
	}
	v = slowLoad(k)
	c.mu.Lock()
	c.m[k] = v
	c.mu.Unlock()
	return v
}
