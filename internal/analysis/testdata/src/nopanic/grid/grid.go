// Package grid is a golden-test fixture for the nopanic analyzer: its
// name puts it in the decode contract, so panics reachable from the
// exported Decode entry point must be flagged while encode-side panics
// stay exempt.
package grid

import "log"

// DecodeStuff is a decode entry point (exported, name matches the
// decode/parse pattern, contract package name).
func DecodeStuff(src []byte) ([]byte, error) {
	return expand(src)
}

func expand(src []byte) ([]byte, error) {
	if len(src) == 0 {
		panic("empty input") // want `panic call in expand is reachable from decode entry point`
	}
	if len(src) > 1<<20 {
		log.Fatal("input too large") // want `log.Fatal call in expand is reachable from decode entry point`
	}
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// EncodeStuff panics on programmer error; it is not reachable from any
// decode entry point, so the analyzer must not flag it.
func EncodeStuff(dst []byte) []byte {
	if dst == nil {
		panic("nil destination")
	}
	return dst
}
