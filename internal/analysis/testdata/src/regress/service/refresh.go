// Package service is a regression fixture pinning the two goroutine-
// hygiene shapes audited in the real internal/service code: a cache
// refresh goroutine fired without any join path (the pre-fix hazard the
// analyzer must keep catching), and the shipped singleflight cache.Get
// whose in-flight channel handoff must stay clean.
package service

import "sync"

func retune(key string) int {
	return len(key)
}

// RefreshStale is the hazard shape: a fire-and-forget retune goroutine
// with no WaitGroup, channel, or context — a shutdown leaks it mid-run
// (must keep firing).
func RefreshStale(keys []string) {
	for _, k := range keys {
		k := k
		go func() { // want `goroutine launched in RefreshStale has no join or cancellation path`
			retune(k)
		}()
	}
}

// flight is one in-flight tune; waiters block on done.
type flight struct {
	done chan struct{}
	val  int
}

// cache is the singleflight LRU shape shipped in internal/service.
type cache struct {
	mu sync.Mutex
	m  map[string]*flight
}

// Get is the shipped shape: the mutex guards only map access, the heavy
// retune runs unlocked, and the goroutine closes a channel every waiter
// receives from — a channel handoff, not a leak (must stay clean).
func (c *cache) Get(key string) int {
	c.mu.Lock()
	f, ok := c.m[key]
	if ok {
		c.mu.Unlock()
		<-f.done
		return f.val
	}
	f = &flight{done: make(chan struct{})}
	c.m[key] = f
	c.mu.Unlock()
	go func() {
		f.val = retune(key)
		close(f.done)
	}()
	<-f.done
	return f.val
}
