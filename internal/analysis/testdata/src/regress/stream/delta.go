// Package stream is a regression fixture minimized from the real
// internal/stream finding this suite's first run caught: decodeDelta's
// per-point reconstruction loop ran a keyframe interval's worth of work
// during a replayed Seek without ever polling the Interrupt hook. The
// pre-fix shape must keep firing; the shipped fix (a periodic poll) must
// stay clean.
package stream

type reader struct {
	interrupt func() error
	cur       []float32
}

func (r *reader) interrupted() error {
	if r.interrupt == nil {
		return nil
	}
	return r.interrupt()
}

func (r *reader) recover(prev float32, sym uint32) float32 {
	return prev + float32(sym)
}

// DecompressDelta is the pre-fix decodeDelta: volume-proportional work,
// no poll (must keep firing).
func (r *reader) DecompressDelta(syms []uint32) []float32 {
	out := make([]float32, len(syms))
	for i, sym := range syms { // want `data-proportional loop in DecompressDelta does per-element work without reaching a cancellation poll`
		out[i] = r.recover(r.cur[i], sym)
	}
	return out
}

// DecompressDeltaFixed is the shipped fix: a periodic mid-frame poll
// (clean).
func (r *reader) DecompressDeltaFixed(syms []uint32) ([]float32, error) {
	out := make([]float32, len(syms))
	for i, sym := range syms {
		if i&0xffff == 0 {
			if err := r.interrupted(); err != nil {
				return nil, err
			}
		}
		out[i] = r.recover(r.cur[i], sym)
	}
	return out, nil
}
