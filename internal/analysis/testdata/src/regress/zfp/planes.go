// Package zfp is a regression fixture minimized from the internal/zfp
// triage that shaped taintsize's summary model: a bit-plane count read
// from the stream flows into decodePlanes' loop bound. The real code is
// safe because precision() clamps the count in-callee — the analyzer
// must prove that through the param->result summary mask rather than
// flag it (the false positive the first implementation produced), while
// the same flow without the clamp must keep firing.
package zfp

type bitReader struct {
	buf []byte
	pos uint
}

// ReadBits matches the bitstream-source pattern, like the real bit
// reader it stands in for.
func (b *bitReader) ReadBits(n uint) uint64 {
	var v uint64
	for i := uint(0); i < n && int((b.pos+i)/8) < len(b.buf); i++ {
		v |= uint64(b.buf[(b.pos+i)/8]>>((b.pos+i)%8)&1) << i
	}
	b.pos += n
	return v
}

// readBits wraps the raw read; its summary carries the taint to callers.
func readBits(b *bitReader, n uint) uint64 {
	return b.ReadBits(n)
}

const intprec = 32

// precision clamps the decoded count to the representable range — the
// real zfp helper whose in-callee sanitization must zero the summary's
// param->result taint mask.
func precision(p uint64) uint64 {
	if p > intprec {
		return intprec
	}
	return p
}

func decodePlanes(planes []uint64, kmax uint64) uint64 {
	var acc uint64
	for k := uint64(0); k < kmax && int(k) < len(planes); k++ {
		acc ^= planes[k]
	}
	return acc
}

// DecodeBlock is the real shape: clamped in-callee, must stay clean.
func DecodeBlock(b *bitReader, planes []uint64) uint64 {
	raw := readBits(b, 7)
	prec := precision(raw)
	return decodePlanes(planes, prec)
}

// DecodeBlockUnclamped drops the clamp: the same two-hop flow must fire.
func DecodeBlockUnclamped(b *bitReader, planes []uint64) uint64 {
	raw := readBits(b, 7)
	prec := raw
	return decodePlanes(planes, prec) // want `bitstream-derived value prec \(from readBits\(\)\) flows unchecked into a loop bound in decodePlanes`
}
