// Package codec is a golden-test fixture for the taintsize analyzer:
// bitstream-derived integers crossing function boundaries into make()
// sizes, loop bounds, or summarized callee sinks must be bounds-checked
// somewhere on the path.
package codec

import "encoding/binary"

const maxRecords = 1 << 20

// readCount decodes a record count from the stream; its summary marks
// the result bitstream-tainted.
func readCount(src []byte) uint64 {
	n, _ := binary.Uvarint(src)
	return n
}

// plumb passes the count through untouched — a second call hop whose
// summary inherits readCount's taint.
func plumb(src []byte) uint64 {
	return readCount(src)
}

// allocRecords commits memory for n records; its summary records the
// make() as a parameter sink.
func allocRecords(n uint64) []uint64 {
	return make([]uint64, n)
}

// DecodeTwoHop routes the count through readCount -> plumb -> here and
// into allocRecords' make with no check anywhere: a three-function flow
// neither boundedalloc nor a single-hop check can see.
func DecodeTwoHop(src []byte) []uint64 {
	n := plumb(src)
	return allocRecords(n) // want `bitstream-derived value n \(from plumb\(\)\) flows unchecked into a make\(\) in allocRecords`
}

// DecodeFrame allocates directly from a helper-read count: the taint
// crossed one call boundary, so this is taintsize's finding, not
// boundedalloc's.
func DecodeFrame(src []byte) []byte {
	n := readCount(src)
	return make([]byte, n) // want `make\(\) sized by n, a bitstream-derived value from readCount\(\)`
}

// SumRecords iterates a helper-read count with no cap: a hostile stream
// buys an arbitrarily long loop in a few bytes.
func SumRecords(src []byte) uint64 {
	n := readCount(src)
	var s uint64
	for i := uint64(0); i < n; i++ { // want `loop bounded by n, a bitstream-derived value from readCount\(\)`
		s += i
	}
	return s
}

// DecodeInline feeds the helper's result straight into the sink call
// with no intermediate variable; the message names the origin alone
// instead of repeating it as the value name.
func DecodeInline(src []byte) []uint64 {
	return allocRecords(readCount(src)) // want `the bitstream-derived result of readCount\(\) flows unchecked into a make\(\) in allocRecords`
}

// DecodeChecked compares the count against a cap before the sink: the
// comparison sanitizes the flow (clean).
func DecodeChecked(src []byte) []uint64 {
	n := readCount(src)
	if n > maxRecords {
		return nil
	}
	return allocRecords(n)
}

// clamp caps its input in-callee; its summary's param->result mask is
// therefore clean, sanitizing every call site (the zfp precision()
// pattern — the name deliberately matches no sanitizer regex, so only
// the summary can prove it safe).
func clamp(n uint64) uint64 {
	if n > maxRecords {
		n = maxRecords
	}
	return n
}

// DecodeClamped routes the count through clamp before the sink (clean).
func DecodeClamped(src []byte) []uint64 {
	raw := readCount(src)
	n := clamp(raw)
	return allocRecords(n)
}
