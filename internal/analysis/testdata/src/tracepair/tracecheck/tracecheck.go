// Package tracecheck is a golden-test fixture for the tracepair
// analyzer. It exercises the real trace package, so the Begin/End
// pairing rules are checked against the actual Span API.
package tracecheck

import "cliz/internal/trace"

// Leaky opens a span and never closes it.
func Leaky(c trace.Collector) int {
	sp := trace.Begin(c, "stage") // want `trace span "sp" opened here has no End`
	_ = sp
	return 1
}

// Discarded drops the span on the floor; it can never be ended.
func Discarded(c trace.Collector) {
	trace.Begin(c, "stage") // want `trace.Begin result discarded`
}

// Balanced reuses one span variable across two stages, closing each
// segment before the next Begin — the idiom used throughout the core
// pipeline. Early error returns may drop a span (deliberately allowed),
// but each Begin here has a lexically-following end.
func Balanced(c trace.Collector, n int) int {
	sp := trace.Begin(c, "first")
	n *= 2
	sp.EndBytes(int64(n), int64(n))
	sp = trace.Begin(c, "second")
	defer sp.End()
	return n
}

// ClosureBalanced opens and closes a span inside a worker closure, the
// shape of the sectioned fan-outs in core.
func ClosureBalanced(c trace.Collector, fns []func()) {
	for _, fn := range fns {
		func() {
			sp := trace.Begin(c, "worker")
			fn()
			sp.End()
		}()
	}
}
