package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AnalyzerTracePair checks that every trace span opened with
// trace.Begin-style calls is closed: for each variable assigned from
// Begin, an End/EndBytes/EndFull call on that variable must appear later
// in the same function body, before the variable is re-assigned from
// another Begin (and before the function ends). A Begin whose result is
// discarded is always flagged — a span that can never be ended is dead
// instrumentation and skews byte accounting.
//
// The check is lexical rather than per-return-path on purpose: the trace
// contract allows dropping a span on an early error return (stage timing
// for failed decodes is not recorded), but a span with no closing call
// anywhere is a bug. Spans that escape the function (passed as a call
// argument or assigned to a non-local destination) are treated as handed
// off and exempt.
var AnalyzerTracePair = &Analyzer{
	Name: "tracepair",
	Doc:  "every trace.Begin span has a matching End/EndBytes/EndFull",
	Run:  runTracePair,
}

var spanEndMethods = map[string]bool{"End": true, "EndBytes": true, "EndFull": true}

func runTracePair(pass *Pass) {
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				checkTracePairs(pass, pkg, fd.Body)
			}
		}
	}
}

type spanOpen struct {
	name   string
	pos    token.Pos
	closed bool
}

// checkTracePairs scans one body lexically. Function literals are
// scanned as part of the enclosing body: spans opened inside a closure
// are visible to the same walk, and a span opened outside but ended
// inside a closure (or vice versa) still pairs up.
func checkTracePairs(pass *Pass, pkg *Package, body *ast.BlockStmt) {
	var opens []*spanOpen
	latest := make(map[string]*spanOpen)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isTraceBegin(pkg, call) {
					continue
				}
				var name string
				if len(n.Lhs) > i {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						name = id.Name
					}
				}
				if name == "" || name == "_" {
					pass.Reportf(call.Pos(), "trace.Begin result discarded; the span can never be ended")
					continue
				}
				open := &spanOpen{name: name, pos: call.Pos()}
				opens = append(opens, open)
				latest[name] = open
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if isTraceBegin(pkg, call) {
					pass.Reportf(call.Pos(), "trace.Begin result discarded; the span can never be ended")
					return true
				}
				if name, ok := spanEndCall(call); ok {
					if open := latest[name]; open != nil && call.Pos() > open.pos {
						open.closed = true
					}
				}
			}
		case *ast.DeferStmt:
			if name, ok := spanEndCall(n.Call); ok {
				if open := latest[name]; open != nil && n.Pos() > open.pos {
					open.closed = true
				}
			}
		case *ast.CallExpr:
			// A span passed to another function escapes; treat as handed
			// off so ownership transfers do not false-positive.
			for _, arg := range n.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if open := latest[id.Name]; open != nil && n.Pos() > open.pos {
						if name, _ := spanEndCall(n); name != id.Name {
							open.closed = true
						}
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					if open := latest[id.Name]; open != nil {
						open.closed = true // returned to caller: ownership transfers
					}
				}
			}
		}
		return true
	})

	for _, open := range opens {
		if !open.closed {
			pass.Reportf(open.pos,
				"trace span %q opened here has no End/EndBytes/EndFull before the function returns or the variable is reused",
				open.name)
		}
	}
}

// isTraceBegin reports whether call invokes a function named Begin from
// a package named trace (the project trace package or a golden-test
// stand-in).
func isTraceBegin(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Begin" {
		return false
	}
	f, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	p := f.Pkg()
	return p != nil && p.Name() == "trace"
}

// spanEndCall reports whether call is v.End()/v.EndBytes()/v.EndFull()
// on a plain identifier receiver, returning the receiver name.
func spanEndCall(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !spanEndMethods[sel.Sel.Name] {
		return "", false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}
