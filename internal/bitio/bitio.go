// Package bitio provides MSB-first bit-level writing and reading on top of
// byte slices. It is the substrate for the Huffman coders and the bit-plane
// coders in the ZFP- and SPERR-style codecs.
package bitio

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrOverrun is returned by Reader methods when the stream is exhausted.
var ErrOverrun = errors.New("bitio: read past end of stream")

// ErrBitCount is returned when a requested bit count is outside the
// representable range. Bit counts on decode paths can come from the
// bitstream itself, so this must be a classifiable error, not a panic.
var ErrBitCount = errors.New("bitio: bit count out of range")

// Writer accumulates bits MSB-first into an internal byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  uint64 // pending bits, left-aligned within nbits
	nbit uint   // number of valid bits in cur (0..63)
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBit appends a single bit (any nonzero b means 1).
func (w *Writer) WriteBit(b uint) {
	if b != 0 {
		b = 1
	}
	w.cur = w.cur<<1 | uint64(b)
	w.nbit++
	if w.nbit == 64 {
		w.spill()
	}
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 64 {
		panic(fmt.Sprintf("bitio: WriteBits n=%d out of range", n))
	}
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	free := 64 - w.nbit
	if n <= free {
		w.cur = w.cur<<n | v
		w.nbit += n
		if w.nbit == 64 {
			w.spill()
		}
		return
	}
	// Split: top part fills cur, bottom part starts a fresh word.
	top := n - free
	w.cur = w.cur<<free | v>>top
	w.nbit = 64
	w.spill()
	if top < 64 {
		v &= (1 << top) - 1
	}
	w.cur = v
	w.nbit = top
}

// spill flushes the full 64-bit accumulator to the byte buffer.
func (w *Writer) spill() {
	w.buf = append(w.buf,
		byte(w.cur>>56), byte(w.cur>>48), byte(w.cur>>40), byte(w.cur>>32),
		byte(w.cur>>24), byte(w.cur>>16), byte(w.cur>>8), byte(w.cur))
	w.cur, w.nbit = 0, 0
}

// BitLen reports the total number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nbit) }

// Bytes flushes any partial byte (zero-padded) and returns the buffer.
// The Writer may continue to be used afterwards, but the padding bits
// become part of the stream.
func (w *Writer) Bytes() []byte {
	for w.nbit >= 8 {
		shift := w.nbit - 8
		w.buf = append(w.buf, byte(w.cur>>shift))
		w.nbit -= 8
		if w.nbit == 0 {
			w.cur = 0
		} else {
			w.cur &= (1 << w.nbit) - 1
		}
	}
	if w.nbit > 0 {
		w.buf = append(w.buf, byte(w.cur<<(8-w.nbit)))
		w.cur, w.nbit = 0, 0
	}
	return w.buf
}

// Reset discards all written data, retaining the allocation.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nbit = 0, 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf  []byte
	pos  int // next byte index
	cur  uint64
	nbit uint // valid bits remaining in cur
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// fill loads up to 8 more bytes into the accumulator.
func (r *Reader) fill() {
	// Bulk path: 4 bytes at a time while they fit both the accumulator and
	// the remaining input.
	for r.nbit <= 32 && r.pos+4 <= len(r.buf) {
		r.cur = r.cur<<32 | uint64(binary.BigEndian.Uint32(r.buf[r.pos:]))
		r.pos += 4
		r.nbit += 32
	}
	for r.nbit <= 56 && r.pos < len(r.buf) {
		r.cur = r.cur<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.nbit += 8
	}
}

// ReadBit reads one bit.
func (r *Reader) ReadBit() (uint, error) {
	if r.nbit == 0 {
		r.fill()
		if r.nbit == 0 {
			return 0, ErrOverrun
		}
	}
	r.nbit--
	bit := uint(r.cur>>r.nbit) & 1
	return bit, nil
}

// ReadBits reads n bits (n in [0,64]) MSB-first and returns them
// right-aligned.
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if n > 64 {
		return 0, fmt.Errorf("bitio: ReadBits n=%d: %w", n, ErrBitCount)
	}
	var v uint64
	for n > 0 {
		if r.nbit == 0 {
			r.fill()
			if r.nbit == 0 {
				return 0, ErrOverrun
			}
		}
		take := n
		if take > r.nbit {
			take = r.nbit
		}
		r.nbit -= take
		chunk := (r.cur >> r.nbit) & ((1 << take) - 1)
		if take == 64 {
			chunk = r.cur
		}
		v = v<<take | chunk
		n -= take
	}
	return v, nil
}

// Peek returns the next n bits (n in [1,56]) MSB-first and right-aligned
// without consuming them, together with the number of bits actually
// available. Near the end of the stream avail may be less than n; the
// missing low bits of the returned value are zero. The accumulator keeps
// stale already-consumed bits above the valid window, so the value is
// masked here — callers must never read r.cur directly. Requests above 56
// bits are out of contract: they never corrupt state or leak stale bits,
// but whether any bits are reported depends on the buffer state.
func (r *Reader) Peek(n uint) (uint64, uint) {
	// Fast path — enough bits buffered — kept within the inlining budget so
	// it disappears into the Huffman LUT decode loop. Safe for any n that
	// passes the guard: n <= nbit <= 64, and Go shifts by >= 64 yield the
	// correct all-ones mask for n == 64.
	if r.nbit >= n {
		return (r.cur >> (r.nbit - n)) & (1<<n - 1), n
	}
	return r.peekSlow(n)
}

func (r *Reader) peekSlow(n uint) (v uint64, avail uint) {
	if n == 0 || n > 56 {
		return 0, 0
	}
	r.fill()
	if r.nbit >= n {
		return (r.cur >> (r.nbit - n)) & ((1 << n) - 1), n
	}
	avail = r.nbit
	if avail == 0 {
		return 0, 0
	}
	return (r.cur & ((1 << avail) - 1)) << (n - avail), avail
}

// Consume discards n bits previously observed via Peek. n must not exceed
// the avail that Peek reported; consuming more than is buffered is an
// overrun.
func (r *Reader) Consume(n uint) error {
	if n > r.nbit {
		return ErrOverrun
	}
	r.nbit -= n
	return nil
}

// BitsRemaining reports the number of unread bits (including padding bits).
func (r *Reader) BitsRemaining() int {
	return int(r.nbit) + (len(r.buf)-r.pos)*8
}
