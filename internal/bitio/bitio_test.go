package bitio

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(4)
	pattern := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range pattern {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range pattern {
		got, err := r.ReadBit()
		if err != nil {
			t.Fatalf("bit %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestWriteBitsRoundTrip(t *testing.T) {
	type chunk struct {
		v uint64
		n uint
	}
	chunks := []chunk{
		{0x1, 1}, {0x3, 2}, {0xff, 8}, {0x12345, 20},
		{0xdeadbeefcafe, 48}, {^uint64(0), 64}, {0, 0}, {5, 3},
		{0xabcdef0123456789, 64}, {1, 64},
	}
	w := NewWriter(64)
	for _, c := range chunks {
		w.WriteBits(c.v, c.n)
	}
	r := NewReader(w.Bytes())
	for i, c := range chunks {
		got, err := r.ReadBits(c.n)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		want := c.v
		if c.n < 64 {
			want &= (1 << c.n) - 1
		}
		if got != want {
			t.Fatalf("chunk %d: got %#x want %#x", i, got, want)
		}
	}
}

func TestBitLen(t *testing.T) {
	w := NewWriter(0)
	if w.BitLen() != 0 {
		t.Fatalf("empty BitLen = %d", w.BitLen())
	}
	w.WriteBits(0x7, 3)
	if w.BitLen() != 3 {
		t.Fatalf("BitLen = %d want 3", w.BitLen())
	}
	w.WriteBits(0, 64)
	if w.BitLen() != 67 {
		t.Fatalf("BitLen = %d want 67", w.BitLen())
	}
}

func TestBytesPadsToByte(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x5, 3) // 101
	b := w.Bytes()
	if len(b) != 1 {
		t.Fatalf("len = %d", len(b))
	}
	if b[0] != 0xa0 { // 1010_0000
		t.Fatalf("padding wrong: %#x", b[0])
	}
}

func TestReaderOverrun(t *testing.T) {
	r := NewReader([]byte{0xff})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatalf("unexpected: %v", err)
	}
	if _, err := r.ReadBit(); err != ErrOverrun {
		t.Fatalf("want ErrOverrun, got %v", err)
	}
	r2 := NewReader(nil)
	if _, err := r2.ReadBits(1); err != ErrOverrun {
		t.Fatalf("want ErrOverrun, got %v", err)
	}
}

func TestReadBitsZero(t *testing.T) {
	r := NewReader(nil)
	v, err := r.ReadBits(0)
	if err != nil || v != 0 {
		t.Fatalf("ReadBits(0) = %d, %v", v, err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xff, 8)
	w.Reset()
	w.WriteBits(0x1, 1)
	b := w.Bytes()
	if len(b) != 1 || b[0] != 0x80 {
		t.Fatalf("after reset got %v", b)
	}
}

func TestQuickRandomChunks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 1
		vals := make([]uint64, n)
		bits := make([]uint, n)
		w := NewWriter(0)
		for i := range vals {
			bits[i] = uint(rng.Intn(64) + 1)
			vals[i] = rng.Uint64()
			if bits[i] < 64 {
				vals[i] &= (1 << bits[i]) - 1
			}
			w.WriteBits(vals[i], bits[i])
		}
		r := NewReader(w.Bytes())
		for i := range vals {
			got, err := r.ReadBits(bits[i])
			if err != nil || got != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedBitAndBits(t *testing.T) {
	w := NewWriter(0)
	w.WriteBit(1)
	w.WriteBits(0x2a, 7)
	w.WriteBit(0)
	w.WriteBits(0xffff, 16)
	r := NewReader(w.Bytes())
	if b, _ := r.ReadBit(); b != 1 {
		t.Fatal("first bit")
	}
	if v, _ := r.ReadBits(7); v != 0x2a {
		t.Fatalf("7 bits: %#x", v)
	}
	if b, _ := r.ReadBit(); b != 0 {
		t.Fatal("ninth bit")
	}
	if v, _ := r.ReadBits(16); v != 0xffff {
		t.Fatal("16 bits")
	}
}

func TestBitsRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0, 0})
	if r.BitsRemaining() != 24 {
		t.Fatalf("got %d", r.BitsRemaining())
	}
	_, _ = r.ReadBits(5)
	if r.BitsRemaining() != 19 {
		t.Fatalf("got %d", r.BitsRemaining())
	}
}

func TestPeekConsume(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0b1011001110001111, 16)
	w.WriteBits(0xDEADBEEFCAFE, 48)
	buf := w.Bytes()

	r := NewReader(buf)
	v, avail := r.Peek(16)
	if avail != 16 || v != 0b1011001110001111 {
		t.Fatalf("peek 16: got %b avail=%d", v, avail)
	}
	// Peek must not consume.
	v2, avail2 := r.Peek(16)
	if v2 != v || avail2 != avail {
		t.Fatalf("second peek differs: %b/%d vs %b/%d", v2, avail2, v, avail)
	}
	if err := r.Consume(3); err != nil {
		t.Fatal(err)
	}
	v, avail = r.Peek(13)
	if avail != 13 || v != 0b1001110001111 {
		t.Fatalf("peek after consume: got %b avail=%d", v, avail)
	}
	if err := r.Consume(13); err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadBits(48)
	if err != nil || got != 0xDEADBEEFCAFE {
		t.Fatalf("ReadBits after peek/consume: got %x err=%v", got, err)
	}
}

// TestPeekMasksStaleBits pins the accumulator subtlety: after partial reads
// the high bits of the accumulator still hold already-consumed data, and
// Peek must mask them out rather than leak them into the returned window.
func TestPeekMasksStaleBits(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0xFFFF, 16) // consumed bits are all ones: leaks are visible
	w.WriteBits(0x0000, 16)
	buf := w.Bytes()
	r := NewReader(buf)
	if _, err := r.ReadBits(16); err != nil {
		t.Fatal(err)
	}
	v, avail := r.Peek(16)
	if avail != 16 || v != 0 {
		t.Fatalf("stale bits leaked into peek: got %b avail=%d", v, avail)
	}
}

func TestPeekShortStream(t *testing.T) {
	r := NewReader([]byte{0b10110000})
	v, avail := r.Peek(12)
	if avail != 8 {
		t.Fatalf("avail=%d, want 8", avail)
	}
	// The 8 real bits sit in the top of the 12-bit window, zero-padded.
	if v != 0b101100000000 {
		t.Fatalf("short peek: got %012b", v)
	}
	if err := r.Consume(8); err != nil {
		t.Fatal(err)
	}
	if _, avail := r.Peek(4); avail != 0 {
		t.Fatalf("peek at EOF: avail=%d, want 0", avail)
	}
}

func TestPeekBadCounts(t *testing.T) {
	r := NewReader([]byte{0xAB, 0xCD})
	if _, avail := r.Peek(0); avail != 0 {
		t.Fatal("Peek(0) must report no bits")
	}
	if _, avail := r.Peek(57); avail != 0 {
		t.Fatal("Peek beyond 56 must report no bits")
	}
}

func TestConsumeOverrun(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, avail := r.Peek(8); avail != 8 {
		t.Fatal("expected 8 bits available")
	}
	if err := r.Consume(9); !errors.Is(err, ErrOverrun) {
		t.Fatalf("over-consume: got %v, want ErrOverrun", err)
	}
	if err := r.Consume(8); err != nil {
		t.Fatalf("exact consume failed: %v", err)
	}
}

// TestPeekConsumeInterleavedWithReads drives a randomized mixed workload of
// Peek/Consume/ReadBit/ReadBits against a pure-ReadBits oracle.
func TestPeekConsumeInterleavedWithReads(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	data := make([]byte, 512)
	rng.Read(data)
	r := NewReader(data)
	oracle := NewReader(data)
	for r.BitsRemaining() > 64 {
		n := uint(1 + rng.Intn(24))
		want, err := oracle.ReadBits(n)
		if err != nil {
			t.Fatal(err)
		}
		switch rng.Intn(3) {
		case 0:
			v, avail := r.Peek(n)
			if avail != n || v != want {
				t.Fatalf("peek %d: got %x/%d want %x", n, v, avail, want)
			}
			if err := r.Consume(n); err != nil {
				t.Fatal(err)
			}
		case 1:
			v, err := r.ReadBits(n)
			if err != nil || v != want {
				t.Fatalf("readbits %d: got %x err=%v want %x", n, v, err, want)
			}
		case 2:
			var v uint64
			for i := uint(0); i < n; i++ {
				b, err := r.ReadBit()
				if err != nil {
					t.Fatal(err)
				}
				v = v<<1 | uint64(b)
			}
			if v != want {
				t.Fatalf("readbit %d: got %x want %x", n, v, want)
			}
		}
	}
}
