package bitio

import (
	"errors"
	"testing"
)

// TestReadBitsRange pins the n>64 guard: a width outside [0,64] is a
// classifiable ErrBitCount, never a shift-amount panic or silent wrap.
func TestReadBitsRange(t *testing.T) {
	r := NewReader([]byte{0xFF, 0xFF})
	_, err := r.ReadBits(65)
	if !errors.Is(err, ErrBitCount) {
		t.Fatalf("ReadBits(65): want ErrBitCount, got %v", err)
	}
	// The reader must remain usable after the rejected call.
	v, err := r.ReadBits(8)
	if err != nil || v != 0xFF {
		t.Fatalf("ReadBits(8) after rejection: v=%#x err=%v", v, err)
	}
}
