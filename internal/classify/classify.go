// Package classify implements CliZ's quantization-bin classification
// (paper §VI-E): the topography-driven multi-Huffman encoding stage.
//
// After prediction and quantization, every grid point owns a quantization
// bin. Points are grouped into *columns* — one per horizontal (lat, lon)
// position — because topography makes the bin statistics of a column
// consistent across heights/timesteps (paper §V-D, Fig. 5). Two patterns are
// corrected per column:
//
//   - Bin shifting (j = 1): if the column's modal bin sits at ±1 off the
//     centre, all predictable bins in the column shift so the mode lands on
//     the zero-offset bin.
//   - Bin dispersion (k = 1): columns whose modal frequency exceeds λ = 0.4
//     (Theorem 2) are "concentrated" and encoded with Huffman tree A; the
//     dispersed remainder uses tree B.
//
// Per-column metadata is 6-state (shift ∈ {−1,0,+1} × class ∈ {A,B}),
// packed three columns per byte (6³ = 216 ≤ 256), about log₂6 ≈ 2.58 bits
// per column before the lossless stage — matching the paper's cost estimate
// log₂((2j+1)(k+1)).
package classify

import (
	"errors"

	"cliz/internal/lossless"
)

// DefaultLambda is the dispersion threshold proven optimal in Theorem 2.
const DefaultLambda = 0.4

// ErrCorrupt reports malformed classification metadata.
var ErrCorrupt = errors.New("classify: corrupt metadata")

// Params configures the analysis.
type Params struct {
	// Radius is the quantizer radius (centre bin = Radius).
	Radius int32
	// Lambda is the dispersion threshold; 0 selects DefaultLambda.
	Lambda float64
}

// Result holds the per-column decisions.
type Result struct {
	// Shift per column in {−1, 0, +1}: the modal bin offset that was
	// subtracted from the column's predictable bins.
	Shift []int8
	// ClassA per column: true means the column's bins are concentrated and
	// belong to Huffman tree A.
	ClassA []bool
}

// Analyze inspects the bin grid and decides shift and class per column.
// colOf maps each point to its column id (len(bins) entries, ids in
// [0, nCols)); valid may be nil. Bin 0 (unpredictable literal marker) is
// excluded from the statistics and never shifted.
func Analyze(bins []int32, colOf []int32, nCols int, valid []bool, p Params) Result {
	if p.Lambda == 0 {
		p.Lambda = DefaultLambda
	}
	r := p.Radius
	// Per column: counts of offsets −1, 0, +1; total predictable count;
	// min and max bin (to keep shifts from colliding with the literal
	// marker or leaving the bin range).
	cnt := make([][3]int32, nCols)
	total := make([]int32, nCols)
	minBin := make([]int32, nCols)
	maxBin := make([]int32, nCols)
	for c := range minBin {
		minBin[c] = 1<<31 - 1
	}
	for i, b := range bins {
		if valid != nil && !valid[i] {
			continue
		}
		if b == 0 {
			continue
		}
		c := colOf[i]
		total[c]++
		if b < minBin[c] {
			minBin[c] = b
		}
		if b > maxBin[c] {
			maxBin[c] = b
		}
		off := b - r
		if off >= -1 && off <= 1 {
			cnt[c][off+1]++
		}
	}
	res := Result{
		Shift:  make([]int8, nCols),
		ClassA: make([]bool, nCols),
	}
	for c := 0; c < nCols; c++ {
		if total[c] == 0 {
			continue
		}
		// Modal offset among {−1, 0, +1}; ties favour 0 (no shift).
		best := int8(0)
		bestCnt := cnt[c][1]
		if cnt[c][0] > bestCnt {
			best, bestCnt = -1, cnt[c][0]
		}
		if cnt[c][2] > bestCnt {
			best, bestCnt = 1, cnt[c][2]
		}
		// Suppress shifts that would push any bin out of [1, 2r−1].
		if best == 1 && minBin[c] <= 1 {
			best, bestCnt = 0, cnt[c][1]
		}
		if best == -1 && maxBin[c] >= 2*r-1 {
			best, bestCnt = 0, cnt[c][1]
		}
		res.Shift[c] = best
		res.ClassA[c] = float64(bestCnt)/float64(total[c]) > p.Lambda
	}
	return res
}

// ShiftBins applies the per-column shifts in place: predictable bins of a
// column with shift δ become bin − δ (the mode lands on the centre).
// Unpredictable (0) and masked bins are untouched.
func ShiftBins(bins []int32, colOf []int32, valid []bool, res Result) {
	for i, b := range bins {
		if b == 0 {
			continue
		}
		if valid != nil && !valid[i] {
			continue
		}
		bins[i] = b - int32(res.Shift[colOf[i]])
	}
}

// UnshiftBins reverses ShiftBins.
func UnshiftBins(bins []int32, colOf []int32, valid []bool, res Result) {
	for i, b := range bins {
		if b == 0 {
			continue
		}
		if valid != nil && !valid[i] {
			continue
		}
		bins[i] = b + int32(res.Shift[colOf[i]])
	}
}

// Split routes the (already shifted) bins of valid points into the two class
// streams, preserving grid order within each stream.
func Split(bins []int32, colOf []int32, valid []bool, res Result) (streamA, streamB []uint32) {
	for i, b := range bins {
		if valid != nil && !valid[i] {
			continue
		}
		if res.ClassA[colOf[i]] {
			streamA = append(streamA, uint32(b))
		} else {
			streamB = append(streamB, uint32(b))
		}
	}
	return streamA, streamB
}

// Merge reverses Split: it rebuilds the full bin grid (length = len(colOf))
// from the two streams. Masked positions receive bin 0.
func Merge(streamA, streamB []uint32, colOf []int32, valid []bool, res Result) ([]int32, error) {
	bins := make([]int32, len(colOf))
	ai, bi := 0, 0
	for i := range bins {
		if valid != nil && !valid[i] {
			continue
		}
		if res.ClassA[colOf[i]] {
			if ai >= len(streamA) {
				return nil, ErrCorrupt
			}
			bins[i] = int32(streamA[ai])
			ai++
		} else {
			if bi >= len(streamB) {
				return nil, ErrCorrupt
			}
			bins[i] = int32(streamB[bi])
			bi++
		}
	}
	if ai != len(streamA) || bi != len(streamB) {
		return nil, ErrCorrupt
	}
	return bins, nil
}

// PackMeta serializes the per-column metadata: base-6 state packed three
// columns per byte, then flate-compressed.
func PackMeta(res Result) []byte {
	n := len(res.Shift)
	raw := make([]byte, 0, n/3+1)
	var acc, cnt int
	mult := 1
	for c := 0; c < n; c++ {
		s := int(res.Shift[c]+1) * 2
		if res.ClassA[c] {
			s++
		}
		acc += s * mult
		mult *= 6
		cnt++
		if cnt == 3 {
			raw = append(raw, byte(acc))
			acc, cnt, mult = 0, 0, 1
		}
	}
	if cnt > 0 {
		raw = append(raw, byte(acc))
	}
	return lossless.Encode(lossless.Flate{Level: 6}, raw)
}

// UnpackMeta reverses PackMeta for nCols columns.
func UnpackMeta(blob []byte, nCols int) (Result, error) {
	raw, err := lossless.Decode(blob)
	if err != nil {
		return Result{}, err
	}
	need := (nCols + 2) / 3
	if len(raw) < need {
		return Result{}, ErrCorrupt
	}
	res := Result{
		Shift:  make([]int8, nCols),
		ClassA: make([]bool, nCols),
	}
	for c := 0; c < nCols; c++ {
		b := int(raw[c/3])
		switch c % 3 {
		case 1:
			b /= 6
		case 2:
			b /= 36
		}
		s := b % 6
		res.Shift[c] = int8(s/2) - 1
		res.ClassA[c] = s%2 == 1
	}
	return res, nil
}
