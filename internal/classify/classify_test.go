package classify

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

const r = 32768 // test radius

func params() Params { return Params{Radius: r} }

// grid2 builds a 2-column layout: even indices column 0, odd column 1.
func grid2(n int) []int32 {
	colOf := make([]int32, n)
	for i := range colOf {
		colOf[i] = int32(i % 2)
	}
	return colOf
}

func TestAnalyzeDetectsShift(t *testing.T) {
	// Column 0 peaks at offset +1, column 1 at 0.
	n := 200
	colOf := grid2(n)
	bins := make([]int32, n)
	for i := range bins {
		if i%2 == 0 {
			bins[i] = r + 1
		} else {
			bins[i] = r
		}
	}
	res := Analyze(bins, colOf, 2, nil, params())
	if res.Shift[0] != 1 {
		t.Fatalf("col 0 shift = %d want 1", res.Shift[0])
	}
	if res.Shift[1] != 0 {
		t.Fatalf("col 1 shift = %d want 0", res.Shift[1])
	}
	if !res.ClassA[0] || !res.ClassA[1] {
		t.Fatal("concentrated columns should be class A")
	}
}

func TestAnalyzeDispersion(t *testing.T) {
	// Column 0 concentrated at centre; column 1 uniform over many bins.
	rng := rand.New(rand.NewSource(1))
	n := 2000
	colOf := grid2(n)
	bins := make([]int32, n)
	for i := range bins {
		if i%2 == 0 {
			bins[i] = r
		} else {
			bins[i] = r + int32(rng.Intn(41)) - 20
		}
	}
	res := Analyze(bins, colOf, 2, nil, params())
	if !res.ClassA[0] {
		t.Fatal("concentrated column not class A")
	}
	if res.ClassA[1] {
		t.Fatal("dispersed column classified as A")
	}
}

func TestAnalyzeIgnoresLiteralsAndMasked(t *testing.T) {
	n := 100
	colOf := grid2(n)
	bins := make([]int32, n)
	valid := make([]bool, n)
	for i := range bins {
		valid[i] = i%4 != 0
		if i%2 == 0 {
			bins[i] = 0 // literal marker — excluded
		} else {
			bins[i] = r - 1
		}
	}
	res := Analyze(bins, colOf, 2, valid, params())
	if res.Shift[0] != 0 {
		t.Fatalf("literal-only column shifted: %d", res.Shift[0])
	}
	if res.Shift[1] != -1 {
		t.Fatalf("col 1 shift = %d want -1", res.Shift[1])
	}
}

func TestShiftSuppressionAtBinRangeEdge(t *testing.T) {
	// A column whose mode is +1 but which contains bin 1: shifting would
	// collide with the literal marker, so it must be suppressed.
	bins := []int32{r + 1, r + 1, r + 1, 1}
	colOf := []int32{0, 0, 0, 0}
	res := Analyze(bins, colOf, 1, nil, params())
	if res.Shift[0] != 0 {
		t.Fatalf("unsafe shift not suppressed: %d", res.Shift[0])
	}
	// Mirror case at the top of the range.
	bins = []int32{r - 1, r - 1, r - 1, 2*r - 1}
	res = Analyze(bins, colOf, 1, nil, params())
	if res.Shift[0] != 0 {
		t.Fatalf("unsafe -1 shift not suppressed: %d", res.Shift[0])
	}
}

func TestShiftUnshiftRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 3000
	nCols := 16
	colOf := make([]int32, n)
	bins := make([]int32, n)
	valid := make([]bool, n)
	for i := range bins {
		colOf[i] = int32(i % nCols)
		valid[i] = rng.Float64() > 0.2
		if rng.Float64() < 0.05 {
			bins[i] = 0
		} else {
			bins[i] = r + int32(colOf[i]%3) - 1 + int32(rng.Intn(5)-2)
		}
	}
	orig := append([]int32(nil), bins...)
	res := Analyze(bins, colOf, nCols, valid, params())
	ShiftBins(bins, colOf, valid, res)
	// Shifted bins must never hit the literal marker.
	for i, b := range bins {
		if orig[i] != 0 && valid[i] && b == 0 {
			t.Fatalf("shift produced literal marker at %d", i)
		}
	}
	UnshiftBins(bins, colOf, valid, res)
	if !reflect.DeepEqual(bins, orig) {
		t.Fatal("shift/unshift not inverse")
	}
}

func TestShiftImprovesConcentration(t *testing.T) {
	// After shifting, the global histogram should concentrate on the centre.
	rng := rand.New(rand.NewSource(3))
	n := 10000
	nCols := 50
	colOf := make([]int32, n)
	bins := make([]int32, n)
	colShift := make([]int32, nCols)
	for c := range colShift {
		colShift[c] = int32(rng.Intn(3)) - 1
	}
	for i := range bins {
		c := int32(i % nCols)
		colOf[i] = c
		if rng.Float64() < 0.7 {
			bins[i] = r + colShift[c]
		} else {
			bins[i] = r + colShift[c] + int32(rng.Intn(7)) - 3
		}
	}
	countCentre := func() int {
		k := 0
		for _, b := range bins {
			if b == r {
				k++
			}
		}
		return k
	}
	before := countCentre()
	res := Analyze(bins, colOf, nCols, nil, params())
	ShiftBins(bins, colOf, nil, res)
	after := countCentre()
	if after <= before {
		t.Fatalf("shifting did not concentrate: %d -> %d", before, after)
	}
	if float64(after)/float64(n) < 0.6 {
		t.Fatalf("weak concentration after shift: %d/%d", after, n)
	}
}

func TestSplitMergeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 5000
	nCols := 20
	colOf := make([]int32, n)
	bins := make([]int32, n)
	valid := make([]bool, n)
	for i := range bins {
		colOf[i] = int32(rng.Intn(nCols))
		valid[i] = rng.Float64() > 0.3
		if valid[i] {
			bins[i] = r + int32(rng.Intn(9)-4)
		}
	}
	res := Analyze(bins, colOf, nCols, valid, params())
	a, b := Split(bins, colOf, valid, res)
	got, err := Merge(a, b, colOf, valid, res)
	if err != nil {
		t.Fatal(err)
	}
	for i := range bins {
		if valid[i] && got[i] != bins[i] {
			t.Fatalf("mismatch at %d: %d vs %d", i, got[i], bins[i])
		}
		if !valid[i] && got[i] != 0 {
			t.Fatalf("masked point %d got bin %d", i, got[i])
		}
	}
}

func TestMergeDetectsCorruption(t *testing.T) {
	colOf := []int32{0, 0, 1, 1}
	res := Result{Shift: []int8{0, 0}, ClassA: []bool{true, false}}
	// Too few symbols in stream A.
	if _, err := Merge([]uint32{5}, []uint32{6, 7}, colOf, nil, res); err == nil {
		t.Fatal("underrun not detected")
	}
	// Leftover symbols.
	if _, err := Merge([]uint32{5, 6, 9}, []uint32{6, 7}, colOf, nil, res); err == nil {
		t.Fatal("overrun not detected")
	}
}

func TestMetaPackUnpackRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500) + 1
		res := Result{Shift: make([]int8, n), ClassA: make([]bool, n)}
		for i := 0; i < n; i++ {
			res.Shift[i] = int8(rng.Intn(3)) - 1
			res.ClassA[i] = rng.Intn(2) == 1
		}
		blob := PackMeta(res)
		got, err := UnpackMeta(blob, n)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Shift, res.Shift) &&
			reflect.DeepEqual(got.ClassA, res.ClassA)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMetaCompact(t *testing.T) {
	// Uniform metadata must compress to far less than a byte per column.
	n := 30000
	res := Result{Shift: make([]int8, n), ClassA: make([]bool, n)}
	blob := PackMeta(res)
	if len(blob) > n/20 {
		t.Fatalf("metadata too large: %d bytes for %d columns", len(blob), n)
	}
}

func TestUnpackMetaCorrupt(t *testing.T) {
	if _, err := UnpackMeta(nil, 5); err == nil {
		t.Fatal("nil blob accepted")
	}
	small := PackMeta(Result{Shift: make([]int8, 3), ClassA: make([]bool, 3)})
	if _, err := UnpackMeta(small, 1000); err == nil {
		t.Fatal("short metadata accepted for too many columns")
	}
}

func TestLambdaDefault(t *testing.T) {
	// Frequency exactly between custom lambdas flips the class.
	n := 10
	bins := make([]int32, n)
	colOf := make([]int32, n)
	for i := range bins {
		if i < 5 {
			bins[i] = r // 50% at the mode
		} else {
			bins[i] = r + int32(i) + 5
		}
	}
	resDefault := Analyze(bins, colOf, 1, nil, Params{Radius: r}) // λ=0.4
	if !resDefault.ClassA[0] {
		t.Fatal("50% modal frequency should exceed λ=0.4")
	}
	resStrict := Analyze(bins, colOf, 1, nil, Params{Radius: r, Lambda: 0.6})
	if resStrict.ClassA[0] {
		t.Fatal("50% modal frequency should not exceed λ=0.6")
	}
}
