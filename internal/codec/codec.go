// Package codec defines the common compressor interface implemented by CliZ
// and every baseline (SZ3, QoZ, ZFP, SPERR), plus a registry used by the
// benchmark harness and the CLI. All compressors consume a dataset and an
// absolute error bound and emit a self-describing blob.
package codec

import (
	"fmt"
	"sort"
	"sync"

	"cliz/internal/dataset"
)

// Compressor is an error-bounded lossy compressor.
type Compressor interface {
	// Name is the registry key ("CliZ", "SZ3", ...).
	Name() string
	// Compress encodes ds.Data under the absolute error bound eb.
	Compress(ds *dataset.Dataset, eb float64) ([]byte, error)
	// Decompress reconstructs the data and dims from a blob produced by
	// the same compressor.
	Decompress(blob []byte) ([]float32, []int, error)
}

var (
	mu       sync.RWMutex
	registry = map[string]Compressor{}
)

// Register adds c to the registry; duplicate names panic (programmer error).
func Register(c Compressor) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[c.Name()]; dup {
		panic(fmt.Sprintf("codec: duplicate compressor %q", c.Name()))
	}
	registry[c.Name()] = c
}

// Get returns the named compressor.
func Get(name string) (Compressor, error) {
	mu.RLock()
	defer mu.RUnlock()
	c, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("codec: unknown compressor %q (have %v)", name, namesLocked())
	}
	return c, nil
}

// Names lists registered compressors in sorted order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
