package codec

import (
	"strings"
	"testing"

	"cliz/internal/dataset"
)

type fake struct{ name string }

func (f fake) Name() string { return f.name }
func (f fake) Compress(ds *dataset.Dataset, eb float64) ([]byte, error) {
	return []byte(f.name), nil
}
func (f fake) Decompress(blob []byte) ([]float32, []int, error) {
	return nil, nil, nil
}

func TestRegisterGetNames(t *testing.T) {
	Register(fake{"zz-test-a"})
	Register(fake{"zz-test-b"})
	c, err := Get("zz-test-a")
	if err != nil || c.Name() != "zz-test-a" {
		t.Fatalf("Get: %v", err)
	}
	names := Names()
	// Sorted order.
	for i := 1; i < len(names); i++ {
		if names[i] <= names[i-1] {
			t.Fatalf("names unsorted: %v", names)
		}
	}
	found := 0
	for _, n := range names {
		if strings.HasPrefix(n, "zz-test-") {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("registered codecs missing from Names: %v", names)
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("definitely-not-registered"); err == nil {
		t.Fatal("unknown codec accepted")
	}
}

func TestDuplicatePanics(t *testing.T) {
	Register(fake{"zz-test-dup"})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(fake{"zz-test-dup"})
}
