// Package conform is the seeded conformance harness: it generates
// random-but-reproducible datasets and pipeline/option combinations, runs
// every case through a shared invariant suite (error bound, fill-value
// exactness, decode determinism, worker independence, blob integrity, trace
// byte-accounting, compression-ratio sanity, and differential oracles
// against the SZ3/QoZ baselines), shrinks failures to minimal reproducers,
// and writes replayable artifacts.
//
// Everything is a pure function of the seed: the same seed generates the
// same cases, datasets, verdicts and artifacts, so any failure printed by a
// sweep can be replayed exactly with `clizconform -replay` or re-derived
// with `clizconform -seed`.
package conform

import (
	"fmt"

	"cliz/internal/core"
	"cliz/internal/datagen"
	"cliz/internal/dataset"
	"cliz/internal/grid"
	"cliz/internal/predict"
)

// PipeSpec is a JSON-serializable description of a core.Pipeline. The zero
// value (Default=true implied when Perm is empty) selects the dataset's
// default pipeline.
type PipeSpec struct {
	// Default selects core.Default for the dataset, ignoring other fields.
	Default bool `json:"default,omitempty"`
	// Perm is the dimension permutation (length = rank).
	Perm []int `json:"perm,omitempty"`
	// Fusion holds the fusion group sizes (must sum to rank; empty = none).
	Fusion []int `json:"fusion,omitempty"`
	// Fitting is "linear" or "cubic" (default cubic).
	Fitting string `json:"fitting,omitempty"`
	// Classify enables bin classification with multi-Huffman encoding.
	Classify bool `json:"classify,omitempty"`
	// UseMask enables mask-aware prediction.
	UseMask bool `json:"useMask,omitempty"`
	// Period enables periodic component extraction.
	Period int `json:"period,omitempty"`
	// LevelAlpha tightens coarse interpolation levels (0/1 = flat).
	LevelAlpha float64 `json:"levelAlpha,omitempty"`
}

// BoundSpec is the error-bound request: exactly one of Rel/Abs positive.
type BoundSpec struct {
	Rel float64 `json:"rel,omitempty"`
	Abs float64 `json:"abs,omitempty"`
}

// OptSpec selects the implementation knobs a case runs under.
type OptSpec struct {
	// Workers bounds intra-blob parallelism (0/1 = serial).
	Workers int `json:"workers,omitempty"`
	// Chunks > 0 compresses through the chunked container path with that
	// many chunks.
	Chunks int `json:"chunks,omitempty"`
	// ChunkWorkers bounds chunk-level concurrency (0 = GOMAXPROCS).
	ChunkWorkers int `json:"chunkWorkers,omitempty"`
	// BoundCheck > 0 decodes with decode-time bound self-verification every
	// n-th point.
	BoundCheck int `json:"boundCheck,omitempty"`
	// Entropy is "huffman" (default), "rans", or "rans-interleaved".
	Entropy string `json:"entropy,omitempty"`
}

// Case is one fully-specified conformance case: dataset recipe, pipeline,
// bound and options. It is self-contained and JSON-round-trippable, which is
// what makes reproducer artifacts replayable.
type Case struct {
	// Label is a short human-readable tag ("r3-mask-period-chunked").
	Label string `json:"label,omitempty"`
	// Data is the deterministic dataset recipe.
	Data  datagen.SyntheticSpec `json:"data"`
	Pipe  PipeSpec              `json:"pipe"`
	Bound BoundSpec             `json:"bound"`
	Opts  OptSpec               `json:"opts"`
	// Stream, when non-nil, additionally runs the streaming-codec invariant
	// over a temporal frame sequence derived from the case.
	Stream *StreamSpec `json:"stream,omitempty"`
}

// Points returns the case's grid volume.
func (c *Case) Points() int { return c.Data.Volume() }

// String renders a one-line summary.
func (c *Case) String() string {
	return fmt.Sprintf("%s dims=%v pipe=%s bound={rel:%g abs:%g} opts=%+v",
		c.Label, c.Data.Dims, c.pipeString(), c.Bound.Rel, c.Bound.Abs, c.Opts)
}

func (c *Case) pipeString() string {
	if c.Pipe.Default || len(c.Pipe.Perm) == 0 {
		return "default"
	}
	return fmt.Sprintf("perm=%v fuse=%v fit=%s cls=%v mask=%v period=%d alpha=%g",
		c.Pipe.Perm, c.Pipe.Fusion, c.Pipe.Fitting, c.Pipe.Classify,
		c.Pipe.UseMask, c.Pipe.Period, c.Pipe.LevelAlpha)
}

// Materialize generates the dataset and resolves the pipeline.
func (c *Case) Materialize() (*dataset.Dataset, core.Pipeline, error) {
	ds, err := datagen.Synthetic(c.Data)
	if err != nil {
		return nil, core.Pipeline{}, fmt.Errorf("conform: bad data spec: %w", err)
	}
	p, err := c.pipeline(ds)
	if err != nil {
		return nil, core.Pipeline{}, err
	}
	return ds, p, nil
}

func (c *Case) pipeline(ds *dataset.Dataset) (core.Pipeline, error) {
	if c.Pipe.Default || len(c.Pipe.Perm) == 0 {
		return core.Default(ds), nil
	}
	n := len(ds.Dims)
	p := core.Pipeline{
		Perm:       append([]int(nil), c.Pipe.Perm...),
		Fusion:     grid.NoFusion(n),
		Fitting:    predict.Cubic,
		Classify:   c.Pipe.Classify,
		UseMask:    c.Pipe.UseMask,
		Period:     c.Pipe.Period,
		LevelAlpha: c.Pipe.LevelAlpha,
	}
	if len(c.Pipe.Fusion) > 0 {
		p.Fusion = grid.Fusion{Groups: append([]int(nil), c.Pipe.Fusion...)}
	}
	switch c.Pipe.Fitting {
	case "", "cubic":
	case "linear":
		p.Fitting = predict.Linear
	default:
		return core.Pipeline{}, fmt.Errorf("conform: unknown fitting %q", c.Pipe.Fitting)
	}
	if err := p.Validate(n); err != nil {
		return core.Pipeline{}, fmt.Errorf("conform: invalid pipeline: %w", err)
	}
	return p, nil
}

// resolveBound mirrors the public cliz.ErrorBound semantics: Rel scales the
// valid value range and is cleanly rejected on zero-range or non-finite
// ranges; Abs passes through.
func (c *Case) resolveBound(ds *dataset.Dataset) (float64, error) {
	switch {
	case c.Bound.Abs > 0 && c.Bound.Rel == 0:
		return c.Bound.Abs, nil
	case c.Bound.Rel > 0 && c.Bound.Abs == 0:
		lo, hi := ds.ValueRange()
		if hi-lo <= 0 {
			return 0, fmt.Errorf("relative bound %g on zero value range [%g, %g]", c.Bound.Rel, lo, hi)
		}
		abs := ds.AbsErrorBound(c.Bound.Rel)
		if !finite(abs) {
			return 0, fmt.Errorf("relative bound %g resolves to non-finite absolute bound", c.Bound.Rel)
		}
		return abs, nil
	}
	return 0, fmt.Errorf("exactly one of rel/abs must be positive (got %+v)", c.Bound)
}
