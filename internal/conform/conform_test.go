package conform

import (
	"encoding/json"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"cliz/internal/datagen"
)

// smokeConfig is the fixed-seed suite wired into `go test ./...`: small
// volumes keep it well under the ~30s budget while still crossing every
// pipeline family, option knob and degenerate shape within a few dozen
// cases.
func smokeConfig(t *testing.T) Config {
	cfg := Config{
		Seed:      7,
		Cases:     48,
		MaxPoints: 1 << 12,
		Baselines: true,
		Shrink:    true,
	}
	if testing.Verbose() {
		cfg.Logf = t.Logf
	}
	return cfg
}

// TestSmokeSweep is the conformance smoke suite: a fixed-seed sweep with
// differential oracles must come back clean. Any failure here is a real
// contract violation; the log carries the minimized reproducer.
func TestSmokeSweep(t *testing.T) {
	res, err := Run(smokeConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		for _, f := range res.Failures {
			t.Errorf("case %d %s: %v", f.Index, f.Case.String(), f.Failures)
			if f.Shrunk != nil {
				t.Errorf("  shrunk (%d points): %s → %v",
					f.Shrunk.Points(), f.Shrunk.String(), f.ShrunkFailures)
			}
		}
		t.Fatalf("%s", res.Summary())
	}
	if res.Passed == 0 {
		t.Fatal("smoke sweep passed zero cases — generator is broken")
	}
}

// TestSweepDeterminism pins the seed contract: the same seed produces the
// same cases and the same verdicts, and every case is derivable in
// isolation from (seed, index).
func TestSweepDeterminism(t *testing.T) {
	cfg := smokeConfig(t)
	cfg.Cases = 16
	cfg.Shrink = false
	cfg.Baselines = false // determinism is about CliZ's own path; keep it fast
	cfg.Logf = nil
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\n%+v", a, b)
	}
	for i := 0; i < cfg.Cases; i++ {
		c1 := GenCase(cfg.Seed, i, cfg.MaxPoints)
		c2 := GenCase(cfg.Seed, i, cfg.MaxPoints)
		if !reflect.DeepEqual(c1, c2) {
			t.Fatalf("case %d not deterministic:\n%+v\n%+v", i, c1, c2)
		}
		ds1, _, err := c1.Materialize()
		if err != nil {
			continue
		}
		ds2, _, _ := c2.Materialize()
		for j := range ds1.Data {
			if math.Float32bits(ds1.Data[j]) != math.Float32bits(ds2.Data[j]) {
				t.Fatalf("case %d dataset not bit-deterministic at %d", i, j)
			}
		}
	}
}

// TestMutationCaughtAndShrunk is the harness's own mutation check: a
// deliberately injected bound bug (one point perturbed past the bound on
// every decode) must be caught by the bound invariant and shrunk to a ≤64
// point reproducer — the acceptance bar for the shrinker.
func TestMutationCaughtAndShrunk(t *testing.T) {
	hook := Hook{
		CorruptRecon: func(c *Case, recon []float32) {
			if len(recon) == 0 {
				return
			}
			// Deterministic "decoder bug": the middle point drifts far past
			// any bound the generator can produce.
			recon[len(recon)/2] += 1e30
		},
	}
	opt := RunOptions{Hook: hook}
	caught, shrunkOK := 0, 0
	for i := 0; i < 40 && caught < 5; i++ {
		c := GenCase(1234, i, 1<<12)
		// Keep every point plain data: on a masked or NaN midpoint the
		// corruption would fire the fill/non-finite invariant instead — also
		// a catch, but this test pins the bound invariant specifically.
		c.Data.MaskFrac, c.Pipe.UseMask = 0, false
		c.Data.NaNs, c.Data.PosInfs, c.Data.NegInfs = 0, 0, 0
		v := RunCase(c, opt)
		if v.Outcome == "rejected" {
			continue
		}
		if !v.FailedInvariant(InvBound) {
			t.Fatalf("case %d: injected bound bug not caught: %+v", i, v)
		}
		caught++
		sh := Shrink(c, InvBound, opt)
		if len(sh.Failures) == 0 {
			t.Fatalf("case %d: shrunk case no longer fails", i)
		}
		if pts := sh.Case.Points(); pts <= 64 {
			shrunkOK++
		} else {
			t.Errorf("case %d: shrunk to %d points, want ≤ 64 (case %s)",
				i, pts, sh.Case.String())
		}
	}
	if caught == 0 {
		t.Fatal("no cases exercised the mutation check")
	}
	if shrunkOK != caught {
		t.Fatalf("only %d/%d mutations shrunk to ≤64 points", shrunkOK, caught)
	}
}

// TestMutationWorkersCaught injects a worker-dependent corruption and
// checks the workers-independence invariant trips.
func TestMutationWorkersCaught(t *testing.T) {
	decodes := 0
	hook := Hook{
		CorruptRecon: func(c *Case, recon []float32) {
			decodes++
			if decodes%3 == 0 && len(recon) > 0 { // only the third decode (the other-workers one)
				recon[0] += 1e30
			}
		},
	}
	c := GenCase(7, 0, 1<<10)
	c.Data.Constant = false
	c.Data.NaNs, c.Data.PosInfs, c.Data.NegInfs = 0, 0, 0
	c.Bound = BoundSpec{Abs: 1}
	v := RunCase(c, RunOptions{Hook: hook})
	if !v.FailedInvariant(InvWorkers) && !v.FailedInvariant(InvDeterminism) {
		t.Fatalf("worker-dependent corruption not caught: %+v", v)
	}
}

// TestArtifactRoundTrip pins the replay path: write → load → replay
// reproduces the recorded verdict.
func TestArtifactRoundTrip(t *testing.T) {
	hook := Hook{CorruptRecon: func(c *Case, recon []float32) {
		if len(recon) > 0 {
			recon[0] += 1e30
		}
	}}
	opt := RunOptions{Hook: hook}
	var failing Case
	found := false
	for i := 0; i < 40; i++ {
		c := GenCase(99, i, 1<<10)
		if v := RunCase(c, opt); v.FailedInvariant(InvBound) {
			failing, found = c, true
			break
		}
	}
	if !found {
		t.Fatal("no failing case found for artifact test")
	}
	sh := Shrink(failing, InvBound, opt)
	dir := t.TempDir()
	path, err := WriteArtifact(dir, &Artifact{
		Seed: 99, CaseIndex: 0, Case: failing,
		Failures: []Failure{{Invariant: InvBound, Detail: "injected"}},
		Shrunk:   &sh.Case, ShrunkFailures: sh.Failures,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, ArtifactName(99, 0)); path != want {
		t.Fatalf("artifact path %s, want %s", path, want)
	}
	art, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(art.Case, failing) {
		t.Fatalf("case did not survive the JSON round trip:\n%+v\n%+v", art.Case, failing)
	}
	// WriteArtifact stamps the lint contract automatically; the stamp
	// must survive the round trip and name at least the core analyzers.
	if art.Lint == nil || art.Lint.Version == "" || len(art.Lint.Analyzers) < 5 {
		t.Fatalf("artifact missing lint stamp: %+v", art.Lint)
	}
	if !reflect.DeepEqual(art.Lint, CurrentLintStamp()) {
		t.Fatalf("lint stamp changed across round trip: %+v vs %+v", art.Lint, CurrentLintStamp())
	}
	// With the hook active the artifact still fails; without it (the bug
	// "fixed") the replay comes back clean.
	if rep := Replay(art, opt); !rep.StillFails() {
		t.Fatal("replay with the injected bug did not fail")
	}
	if rep := Replay(art, RunOptions{}); rep.StillFails() {
		t.Fatalf("replay without the injected bug failed: %+v / %+v",
			rep.Original.Failures, rep.Shrunk)
	}
}

// TestCaseJSONStable guards the artifact schema: a case survives
// marshal/unmarshal exactly (the replay contract depends on it).
func TestCaseJSONStable(t *testing.T) {
	for i := 0; i < 25; i++ {
		c := GenCase(5, i, 1<<12)
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		var back Case
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(c, back) {
			t.Fatalf("case %d changed across JSON round trip:\n%+v\n%+v", i, c, back)
		}
	}
}

// TestCleanRejections pins the rejected-case taxonomy: a relative bound on
// a constant field and a relative bound on an Inf-bearing field are
// rejected with self-explanatory errors, not failures.
func TestCleanRejections(t *testing.T) {
	base := GenCase(7, 0, 1<<10)
	base.Opts = OptSpec{}
	base.Pipe = PipeSpec{Default: true}

	constant := cloneCase(base)
	constant.Data.Constant = true
	constant.Data.NaNs, constant.Data.PosInfs, constant.Data.NegInfs = 0, 0, 0
	constant.Bound = BoundSpec{Rel: 1e-2}
	if v := RunCase(constant, RunOptions{}); v.Outcome != "rejected" {
		t.Fatalf("constant field + rel bound: outcome %q (%+v), want rejected", v.Outcome, v.Failures)
	}

	inf := cloneCase(base)
	inf.Data.Constant = false
	inf.Data.PosInfs = 1
	inf.Bound = BoundSpec{Rel: 1e-2}
	if v := RunCase(inf, RunOptions{}); v.Outcome != "rejected" {
		t.Fatalf("Inf field + rel bound: outcome %q (%+v), want rejected", v.Outcome, v.Failures)
	}
}

// TestStreamCasesGenerated pins the stream coverage of the case space: the
// generator must attach stream specs to a healthy fraction of cases, and a
// directly-constructed stream case must run the stream invariant clean
// (checkStream self-validates its own corruption probes: truncation and a
// payload flip are injected on every run).
func TestStreamCasesGenerated(t *testing.T) {
	streams := 0
	for i := 0; i < 48; i++ {
		if GenCase(7, i, 1<<12).Stream != nil {
			streams++
		}
	}
	if streams < 4 {
		t.Fatalf("only %d/48 generated cases carry a stream spec", streams)
	}

	c := Case{
		Label: "stream-selftest",
		Data: datagen.SyntheticSpec{
			Name: "conform", Dims: []int{12, 16}, Seed: 99,
			MaskFrac: 0.4, FillValue: datagen.FillValue,
			NoiseAmp: 0.3, Scale: 50,
		},
		Bound:  BoundSpec{Abs: 0.05},
		Pipe:   PipeSpec{Default: true},
		Stream: &StreamSpec{Frames: 9, Interval: 4, Corr: 0.95},
	}
	v := RunCase(c, RunOptions{})
	if v.FailedInvariant(InvStream) {
		t.Fatalf("stream self-test case failed: %+v", v.Failures)
	}
	if v.Outcome != "pass" {
		t.Fatalf("stream self-test outcome %q: %+v", v.Outcome, v.Failures)
	}

	// The relative-bound path resolves against the first frame.
	rel := cloneCase(c)
	rel.Bound = BoundSpec{Rel: 1e-3}
	if v := RunCase(rel, RunOptions{}); v.FailedInvariant(InvStream) {
		t.Fatalf("rel-bound stream case failed: %+v", v.Failures)
	}
}
