package conform

import (
	"fmt"
	"time"
)

// Config drives one conformance sweep.
type Config struct {
	// Seed is the master seed: the entire sweep — cases, datasets,
	// verdicts — is a pure function of (Seed, Cases, MaxPoints).
	Seed int64
	// Cases is the number of cases to generate and run.
	Cases int
	// MaxPoints caps each case's grid volume (0 = 1<<15).
	MaxPoints int
	// Baselines enables the differential SZ3/QoZ oracles.
	Baselines bool
	// Shrink minimizes failing cases before reporting them.
	Shrink bool
	// OutDir, when non-empty, receives a replayable artifact per failure.
	OutDir string
	// Budget stops the sweep early once exceeded (0 = no budget). Cases
	// already started still finish, so a sweep is deterministic for a given
	// budget only up to where the cutoff lands; CI uses this as a wall-time
	// guard, not a correctness knob.
	Budget time.Duration
	// Hook injects faults for self-tests.
	Hook Hook
	// Logf, when non-nil, receives one line per case and per failure.
	Logf func(format string, args ...any)
}

func (c *Config) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// CaseReport records one failed case in a sweep result.
type CaseReport struct {
	Index    int       `json:"index"`
	Case     Case      `json:"case"`
	Failures []Failure `json:"failures"`
	// Shrunk is the minimized reproducer (nil when shrinking is off).
	Shrunk         *Case     `json:"shrunk,omitempty"`
	ShrunkFailures []Failure `json:"shrunkFailures,omitempty"`
	// ArtifactPath is where the replayable artifact landed ("" when OutDir
	// is unset).
	ArtifactPath string `json:"artifactPath,omitempty"`
}

// Result summarizes a sweep.
type Result struct {
	Seed     int64 `json:"seed"`
	Total    int   `json:"total"`
	Passed   int   `json:"passed"`
	Rejected int   `json:"rejected"`
	Failed   int   `json:"failed"`
	// TruncatedAt is the case count actually run when the budget cut the
	// sweep short (0 = ran to completion).
	TruncatedAt int          `json:"truncatedAt,omitempty"`
	Failures    []CaseReport `json:"failures,omitempty"`
}

// OK reports whether the sweep found no violations.
func (r *Result) OK() bool { return r.Failed == 0 }

// Summary renders a one-line outcome.
func (r *Result) Summary() string {
	s := fmt.Sprintf("seed %d: %d cases — %d passed, %d rejected cleanly, %d FAILED",
		r.Seed, r.Total, r.Passed, r.Rejected, r.Failed)
	if r.TruncatedAt > 0 {
		s += fmt.Sprintf(" (budget hit after %d cases)", r.TruncatedAt)
	}
	return s
}

// Run executes the sweep.
func Run(cfg Config) (*Result, error) {
	if cfg.Cases <= 0 {
		cfg.Cases = 64
	}
	res := &Result{Seed: cfg.Seed}
	opt := RunOptions{Baselines: cfg.Baselines, Hook: cfg.Hook}
	start := time.Now()
	for i := 0; i < cfg.Cases; i++ {
		if cfg.Budget > 0 && time.Since(start) > cfg.Budget && res.Total > 0 {
			res.TruncatedAt = res.Total
			break
		}
		c := GenCase(cfg.Seed, i, cfg.MaxPoints)
		v := RunCase(c, opt)
		res.Total++
		switch v.Outcome {
		case "pass":
			res.Passed++
			cfg.logf("PASS   %-40s ratio=%.3g", c.Label, v.Ratio)
		case "rejected":
			res.Rejected++
			cfg.logf("REJECT %-40s %s", c.Label, v.RejectReason)
		default:
			res.Failed++
			cfg.logf("FAIL   %-40s %v", c.Label, v.Failures)
			rep := CaseReport{Index: i, Case: c, Failures: v.Failures}
			if cfg.Shrink {
				sh := Shrink(c, v.Failures[0].Invariant, opt)
				if sh.Steps > 0 {
					shr := sh.Case
					rep.Shrunk = &shr
					rep.ShrunkFailures = sh.Failures
					cfg.logf("       shrunk to %d points in %d steps (%d runs): %s",
						shr.Points(), sh.Steps, sh.Runs, shr.String())
				}
			}
			if cfg.OutDir != "" {
				path, err := WriteArtifact(cfg.OutDir, &Artifact{
					Seed: cfg.Seed, CaseIndex: i, Case: c,
					Failures: v.Failures, Shrunk: rep.Shrunk,
					ShrunkFailures: rep.ShrunkFailures,
					Note:           fmt.Sprintf("sweep seed %d case %d", cfg.Seed, i),
				})
				if err != nil {
					return res, fmt.Errorf("conform: writing artifact for case %d: %w", i, err)
				}
				rep.ArtifactPath = path
			}
			res.Failures = append(res.Failures, rep)
		}
	}
	return res, nil
}
