package conform

import (
	"fmt"
	"math/rand"

	"cliz/internal/datagen"
)

// CaseSeed derives the sub-seed of case i under master seed: cases are
// independent, so replaying case 17 never requires generating cases 0..16.
func CaseSeed(seed int64, i int) int64 {
	// SplitMix64 finalizer over seed⊕index — well-mixed and stable.
	z := uint64(seed) + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// GenCase deterministically builds case i of the sweep under master seed.
// maxPoints caps the synthesized volume (0 selects 1<<15).
func GenCase(seed int64, i, maxPoints int) Case {
	sub := CaseSeed(seed, i)
	rng := rand.New(rand.NewSource(sub))
	if maxPoints <= 0 {
		maxPoints = 1 << 15
	}

	c := Case{}
	c.Data = genDataSpec(rng, sub, maxPoints)
	c.Bound = genBound(rng, &c.Data)
	c.Pipe = genPipe(rng, &c.Data)
	c.Opts = genOpts(rng, &c.Data)
	c.Stream = genStream(rng, &c.Data)
	c.Label = label(i, &c)
	return c
}

// genStream attaches a temporal-stream spec to roughly a quarter of the
// cases with a horizontal plane. The frame count stays small — the stream
// multiplies the case's plane volume.
func genStream(rng *rand.Rand, s *datagen.SyntheticSpec) *StreamSpec {
	if len(s.Dims) < 2 || rng.Intn(4) != 0 {
		return nil
	}
	return &StreamSpec{
		Frames:   pick(rng, 5, 8, 12),
		Interval: pick(rng, 0, 1, 2, 4, 16),
		Corr:     pick(rng, 0.5, 0.9, 0.98),
	}
}

func pick[T any](rng *rand.Rand, vals ...T) T { return vals[rng.Intn(len(vals))] }

func genDataSpec(rng *rand.Rand, sub int64, maxPoints int) datagen.SyntheticSpec {
	s := datagen.SyntheticSpec{Seed: sub, Name: "conform"}

	// Rank 2..4 dominate; rank 1 is rare but in scope (degenerate shapes).
	rank := pick(rng, 2, 2, 3, 3, 3, 4, 1)
	extents := []int{1, 2, 3, 5, 8, 13, 16, 24, 36, 48}
	s.Dims = make([]int, rank)
	for i := range s.Dims {
		s.Dims[i] = pick(rng, extents...)
	}
	// Degenerate-shape pushes: occasionally force a 1×N plane or a single
	// leading plane.
	if rank >= 2 && rng.Intn(8) == 0 {
		s.Dims[rank-2] = 1
	}
	if rank >= 3 && rng.Intn(8) == 0 {
		s.Dims[0] = 1
	}
	for volume(s.Dims) > maxPoints {
		// Shrink the largest extent until the volume fits.
		big := 0
		for i, d := range s.Dims {
			if d > s.Dims[big] {
				big = i
			}
		}
		if s.Dims[big] <= 2 {
			break
		}
		s.Dims[big] = (s.Dims[big] + 1) / 2
	}

	if rank >= 3 {
		s.Lead = pick(rng, "", "time", "time", "height")
	} else if rank == 2 && rng.Intn(4) == 0 {
		s.Lead = "time"
	}
	if s.Lead == "time" && rng.Intn(2) == 0 {
		s.Periodic = true
		s.Period = pick(rng, 6, 12)
		s.PeriodAmp = pick(rng, 5.0, 20.0)
	}

	// Mask: only where a horizontal plane exists; masked periodic datasets
	// need rank ≥ 3 (dataset.Validate).
	if rank >= 2 && (!s.Periodic || rank >= 3) && rng.Intn(5) < 2 {
		s.MaskFrac = pick(rng, 0.3, 0.5, 0.7, 0.95)
		s.FillValue = pick(rng, datagen.FillValue, -9999, 1e20)
	}

	s.Roughness = pick(rng, 0.4, 0.8, 1.2, 1.8)
	s.Anisotropy = pick(rng, 0.0, 0.0, 2.0, 8.0)
	s.NoiseAmp = pick(rng, 0.0, 0.05, 0.5, 5.0)
	s.Offset = pick(rng, 0.0, 0.0, 300.0, -1e6)
	s.Scale = pick(rng, 1.0, 100.0, 1e-3, 1e6)

	switch rng.Intn(20) {
	case 0:
		s.Constant = true
	case 1:
		s.NaNs = 1 + rng.Intn(3)
	case 2:
		s.PosInfs = 1
		s.NegInfs = rng.Intn(2)
	case 3:
		s.NaNs = 1
		s.PosInfs = 1
	}
	return s
}

func genBound(rng *rand.Rand, s *datagen.SyntheticSpec) BoundSpec {
	// Constant fields have no value range: use Abs most of the time but
	// keep a sliver of Rel cases to pin the clean-rejection path.
	if s.Constant && rng.Intn(4) != 0 {
		return BoundSpec{Abs: pick(rng, 1e-3, 1e-1)}
	}
	if rng.Intn(3) == 0 {
		// Absolute bounds scaled to the signal magnitude.
		mag := s.Scale
		if mag == 0 {
			mag = 100
		}
		return BoundSpec{Abs: mag * pick(rng, 1e-4, 1e-2, 1e-1)}
	}
	return BoundSpec{Rel: pick(rng, 1e-1, 1e-2, 1e-3, 1e-4)}
}

func genPipe(rng *rand.Rand, s *datagen.SyntheticSpec) PipeSpec {
	if rng.Intn(4) == 0 {
		return PipeSpec{Default: true}
	}
	n := len(s.Dims)
	p := PipeSpec{
		Perm:    rng.Perm(n),
		Fusion:  randComposition(rng, n),
		Fitting: pick(rng, "linear", "cubic"),
	}
	p.Classify = rng.Intn(2) == 0
	if s.MaskFrac > 0 {
		p.UseMask = rng.Intn(4) != 0
	}
	if s.Lead == "time" {
		// Sometimes the true period, sometimes a wrong or absent one — the
		// contract must hold regardless of how well the pipeline fits.
		p.Period = pick(rng, 0, 0, s.Period, 12, 7)
	}
	p.LevelAlpha = pick(rng, 0.0, 0.0, 1.5, 2.0)
	return p
}

func genOpts(rng *rand.Rand, s *datagen.SyntheticSpec) OptSpec {
	o := OptSpec{
		Workers: pick(rng, 0, 0, 2, 3),
		Entropy: pick(rng, "", "", "", "rans", "rans-interleaved"),
	}
	if len(s.Dims) >= 2 && rng.Intn(4) == 0 {
		o.Chunks = pick(rng, 2, 3)
		o.ChunkWorkers = pick(rng, 0, 2)
	}
	if rng.Intn(5) == 0 {
		o.BoundCheck = pick(rng, 1, 7)
	}
	return o
}

// randComposition returns a random composition of n (fusion group sizes).
func randComposition(rng *rand.Rand, n int) []int {
	var groups []int
	for n > 0 {
		g := 1 + rng.Intn(n)
		groups = append(groups, g)
		n -= g
	}
	return groups
}

func volume(dims []int) int {
	v := 1
	for _, d := range dims {
		v *= d
	}
	return v
}

func label(i int, c *Case) string {
	tag := fmt.Sprintf("case%d-r%d", i, len(c.Data.Dims))
	if c.Data.MaskFrac > 0 {
		tag += "-mask"
	}
	if c.Data.Period > 0 {
		tag += "-periodic"
	}
	if c.Data.Constant {
		tag += "-const"
	}
	if c.Data.NaNs+c.Data.PosInfs+c.Data.NegInfs > 0 {
		tag += "-nonfinite"
	}
	if c.Opts.Chunks > 0 {
		tag += "-chunked"
	}
	if c.Opts.Workers > 1 {
		tag += "-par"
	}
	if c.Stream != nil {
		tag += "-stream"
	}
	return tag
}
