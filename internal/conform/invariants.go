package conform

import (
	"bytes"
	"fmt"
	"math"
	"strings"

	"cliz/internal/codec"
	"cliz/internal/core"
	"cliz/internal/dataset"
	"cliz/internal/entropy"
	"cliz/internal/trace"

	// Differential oracles.
	_ "cliz/internal/qoz"
	_ "cliz/internal/sz3"
)

// Invariant names, in check order. DESIGN.md documents the exact contract
// behind each; keep the two lists in sync.
const (
	InvCompress    = "compress"    // compression succeeds or rejects with a clear, named error
	InvRatio       = "ratio"       // blob non-empty, ratio finite, size within sanity ceiling
	InvTrace       = "trace"       // traced total stage accounts for exactly the blob length
	InvVerify      = "verify"      // Verify reports every section clean on a fresh blob
	InvDecode      = "decode"      // the blob decodes, with the original dims
	InvBound       = "bound"       // |recon − orig| ≤ eb at every valid finite point
	InvFill        = "fill"        // masked points reproduce the fill value bit-exactly
	InvNonFinite   = "nonfinite"   // NaN stays NaN, ±Inf stays exactly ±Inf at valid points
	InvDeterminism = "determinism" // two decodes of one blob are bit-identical
	InvWorkers     = "workers"     // decode output independent of the worker count
	InvBoundCheck  = "bound-check" // decode-time bound self-verification passes on honest blobs
	InvDiffBound   = "diff-bound"  // SZ3/QoZ honor the same bound on the same input
	InvDiffRatio   = "diff-ratio"  // CliZ's ratio is within a sane factor of SZ3's
	InvFusedBlob   = "fused-blob"  // fused and materialized-permute pipelines emit identical blobs (Workers=1)
	InvStream      = "stream"      // temporal stream round-trips per-frame in bound, Seek is bit-identical, corruption is clean and attributed
)

// Failure is one invariant violation.
type Failure struct {
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
}

func (f Failure) String() string { return f.Invariant + ": " + f.Detail }

// Verdict is the outcome of running one case through the invariant suite.
type Verdict struct {
	// Outcome is "pass", "rejected" (clean, expected compress-time
	// rejection — e.g. a relative bound on a constant field) or "fail".
	Outcome string `json:"outcome"`
	// RejectReason carries the clean rejection's error text.
	RejectReason string `json:"rejectReason,omitempty"`
	// Failures lists every violated invariant.
	Failures []Failure `json:"failures,omitempty"`
	// Ratio is the achieved compression ratio (0 when rejected).
	Ratio float64 `json:"ratio,omitempty"`
	// Points is the case volume.
	Points int `json:"points"`
}

// Failed reports whether any invariant was violated.
func (v *Verdict) Failed() bool { return len(v.Failures) > 0 }

// FailedInvariant reports whether the named invariant is among the failures.
func (v *Verdict) FailedInvariant(name string) bool {
	for _, f := range v.Failures {
		if f.Invariant == name {
			return true
		}
	}
	return false
}

func (v *Verdict) addf(inv, format string, args ...any) {
	v.Failures = append(v.Failures, Failure{Invariant: inv, Detail: fmt.Sprintf(format, args...)})
}

// Hook injects faults for the harness's own self-tests (mutation checks):
// CorruptRecon, when non-nil, is applied to every decode output before the
// invariants see it, simulating a decoder bug. It must be deterministic.
type Hook struct {
	CorruptRecon func(c *Case, recon []float32)
}

// RunOptions configure one invariant-suite run.
type RunOptions struct {
	// Baselines enables the differential oracles (SZ3/QoZ on the same
	// input). They roughly triple a case's cost.
	Baselines bool
	// Hook is the fault-injection hook for self-tests.
	Hook Hook
}

// cleanRejection reports whether a compress-time error is an acceptable,
// self-explanatory rejection of a degenerate input rather than a bug.
func cleanRejection(err error) bool {
	msg := err.Error()
	for _, want := range []string{"non-finite", "zero value range", "rel/abs"} {
		if strings.Contains(msg, want) {
			return true
		}
	}
	return false
}

// RunCase materializes the case, compresses it, and checks every invariant.
func RunCase(c Case, opt RunOptions) *Verdict {
	v := &Verdict{Outcome: "pass", Points: c.Points()}

	ds, pipe, err := c.Materialize()
	if err != nil {
		v.Outcome = "fail"
		v.addf(InvCompress, "materialize: %v", err)
		return v
	}
	eb, err := c.resolveBound(ds)
	if err != nil {
		// Mirrors the public API's clean bound rejection.
		v.Outcome = "rejected"
		v.RejectReason = err.Error()
		return v
	}

	blob, stages, err := compressCase(c, ds, eb, pipe)
	if err != nil {
		if cleanRejection(err) {
			v.Outcome = "rejected"
			v.RejectReason = err.Error()
			return v
		}
		v.Outcome = "fail"
		v.addf(InvCompress, "%v", err)
		return v
	}

	checkRatio(v, c, blob)
	checkTrace(v, c, blob, stages)
	checkVerify(v, blob)
	checkFusedBlob(v, c, ds, eb, pipe)
	recon := checkDecode(v, c, ds, blob, opt.Hook)
	if recon != nil {
		checkPointwise(v, ds, recon, eb, pipe.UseMask)
		checkDeterminism(v, c, blob, recon, opt.Hook)
	}
	if opt.Baselines {
		checkDifferential(v, c, ds, eb, blob)
	}
	if c.Stream != nil {
		checkStream(v, &c)
	}

	if v.Failed() {
		v.Outcome = "fail"
	}
	return v
}

// entropyKind maps the case's entropy spec to the core option.
func entropyKind(spec string) (entropy.Kind, error) {
	switch spec {
	case "", "huffman":
		return entropy.Huffman, nil
	case "rans":
		return entropy.RANS, nil
	case "rans-interleaved":
		return entropy.RANSInterleaved, nil
	}
	return 0, fmt.Errorf("conform: unknown entropy kind %q", spec)
}

func compressCase(c Case, ds *dataset.Dataset, eb float64, pipe core.Pipeline) ([]byte, []trace.Stage, error) {
	var rec trace.Recorder
	opts := core.Options{Workers: c.Opts.Workers, Trace: &rec}
	kind, err := entropyKind(c.Opts.Entropy)
	if err != nil {
		return nil, nil, err
	}
	opts.Entropy = kind
	var blob []byte
	if c.Opts.Chunks > 0 {
		blob, err = core.CompressChunked(ds, eb, pipe, opts, c.Opts.Chunks, chunkWorkers(c))
	} else {
		blob, err = core.Compress(ds, eb, pipe, opts)
	}
	if err != nil {
		return nil, nil, err
	}
	return blob, rec.Stages(), nil
}

// checkFusedBlob: with Workers=1 (the deterministic single-goroutine
// shape) the fused-index pipeline and the forced materialized-permute
// pipeline must emit byte-identical blobs — the fused traversal is pure
// index arithmetic and must never change a single output bit. Chunked
// cases compare the whole CLZP container, which covers every chunk.
func checkFusedBlob(v *Verdict, c Case, ds *dataset.Dataset, eb float64, pipe core.Pipeline) {
	kind, err := entropyKind(c.Opts.Entropy)
	if err != nil {
		return // compressCase already reported it
	}
	fused := core.Options{Entropy: kind, Workers: 1}
	legacy := fused
	legacy.MaterializedPermute = true
	var fb, lb []byte
	var ferr, lerr error
	if c.Opts.Chunks > 0 {
		fb, ferr = core.CompressChunked(ds, eb, pipe, fused, c.Opts.Chunks, 1)
		lb, lerr = core.CompressChunked(ds, eb, pipe, legacy, c.Opts.Chunks, 1)
	} else {
		fb, ferr = core.Compress(ds, eb, pipe, fused)
		lb, lerr = core.Compress(ds, eb, pipe, legacy)
	}
	if (ferr == nil) != (lerr == nil) {
		v.addf(InvFusedBlob, "fused err=%v, materialized err=%v", ferr, lerr)
		return
	}
	if ferr != nil {
		return // both rejected identically; the compress invariant owns that
	}
	if !bytes.Equal(fb, lb) {
		n := len(fb)
		if len(lb) < n {
			n = len(lb)
		}
		at := n
		for i := 0; i < n; i++ {
			if fb[i] != lb[i] {
				at = i
				break
			}
		}
		v.addf(InvFusedBlob, "blobs differ at byte %d (fused %d bytes, materialized %d)", at, len(fb), len(lb))
	}
}

func chunkWorkers(c Case) int {
	if c.Opts.ChunkWorkers > 0 {
		return c.Opts.ChunkWorkers
	}
	return 2
}

func decodeOpts(c Case, workers int) core.DecompressOptions {
	return core.DecompressOptions{Workers: workers, BoundCheckEvery: c.Opts.BoundCheck}
}

func decodeCase(c Case, blob []byte, workers int) ([]float32, []int, error) {
	if core.IsChunked(blob) {
		return core.DecompressChunkedOpts(blob, chunkWorkers(c), decodeOpts(c, workers))
	}
	return core.DecompressWithOptions(blob, decodeOpts(c, workers))
}

// checkRatio: the blob is non-empty, the ratio is finite and positive, and
// the blob never exceeds a generous ceiling (4× the raw data plus fixed
// framing slack) — an incompressible field costs about 1×, so 4× only trips
// on pathological expansion bugs.
func checkRatio(v *Verdict, c Case, blob []byte) {
	if len(blob) == 0 {
		v.addf(InvRatio, "empty blob")
		return
	}
	raw := c.Points() * 4
	v.Ratio = float64(raw) / float64(len(blob))
	if !finite(v.Ratio) || v.Ratio <= 0 {
		v.addf(InvRatio, "non-finite ratio %g", v.Ratio)
	}
	if ceiling := 4*raw + 65536; len(blob) > ceiling {
		v.addf(InvRatio, "blob %d bytes exceeds sanity ceiling %d (raw %d)", len(blob), ceiling, raw)
	}
}

// checkTrace: the byte-accounting contract — the traced run's root stage
// records exactly the blob length as its output bytes, and no
// section-producing stage alone exceeds the blob length.
func checkTrace(v *Verdict, c Case, blob []byte, stages []trace.Stage) {
	rootName := "total"
	if c.Opts.Chunks > 0 {
		rootName = "chunked-total"
	}
	var root *trace.Stage
	for i := range stages {
		if stages[i].Name == rootName {
			root = &stages[i]
			break
		}
	}
	if root == nil {
		v.addf(InvTrace, "no %q stage in %d trace records", rootName, len(stages))
		return
	}
	if root.OutBytes != int64(len(blob)) {
		v.addf(InvTrace, "%s.OutBytes = %d, blob = %d bytes", rootName, root.OutBytes, len(blob))
	}
}

func checkVerify(v *Verdict, blob []byte) {
	rep := core.Verify(blob)
	if !rep.OK() {
		v.addf(InvVerify, "fresh blob verifies damaged: %v", rep.Damaged())
	}
}

func checkDecode(v *Verdict, c Case, ds *dataset.Dataset, blob []byte, hook Hook) []float32 {
	recon, dims, err := decodeCase(c, blob, c.Opts.Workers)
	if err != nil {
		v.addf(InvDecode, "%v", err)
		return nil
	}
	if !equalDims(dims, ds.Dims) {
		v.addf(InvDecode, "dims %v, want %v", dims, ds.Dims)
		return nil
	}
	if len(recon) != len(ds.Data) {
		v.addf(InvDecode, "recon %d points, want %d", len(recon), len(ds.Data))
		return nil
	}
	if hook.CorruptRecon != nil {
		hook.CorruptRecon(&c, recon)
	}
	return recon
}

// checkPointwise: error bound at valid finite points, fill handling at
// masked points, exact NaN/Inf preservation at valid points. With
// mask-aware prediction (useMask) masked points must reproduce the fill
// value bit-exactly; without it the fill sentinels are ordinary data and
// only owe the error bound like every other point.
func checkPointwise(v *Verdict, ds *dataset.Dataset, recon []float32, eb float64, useMask bool) {
	valid := ds.Validity()
	tol := eb * (1 + 1e-9)
	var worst float64
	worstIdx := -1
	for i, want := range ds.Data {
		got := recon[i]
		if useMask && valid != nil && !valid[i] {
			if math.Float32bits(got) != math.Float32bits(ds.FillValue) {
				v.addf(InvFill, "masked point %d = %g (bits %#x), want fill %g",
					i, got, math.Float32bits(got), ds.FillValue)
				return
			}
			continue
		}
		switch {
		case math.IsNaN(float64(want)):
			if !math.IsNaN(float64(got)) {
				v.addf(InvNonFinite, "NaN at %d decoded to %g", i, got)
				return
			}
		case math.IsInf(float64(want), 0):
			if got != want {
				v.addf(InvNonFinite, "%g at %d decoded to %g", want, i, got)
				return
			}
		default:
			if d := math.Abs(float64(got) - float64(want)); d > tol {
				if d > worst {
					worst, worstIdx = d, i
				}
			}
		}
	}
	if worstIdx >= 0 {
		v.addf(InvBound, "point %d: |%g − %g| = %g > eb %g",
			worstIdx, recon[worstIdx], ds.Data[worstIdx], worst, eb)
	}
}

// checkDeterminism: a second decode must be bit-identical, and a decode with
// a different worker count must be bit-identical too.
func checkDeterminism(v *Verdict, c Case, blob []byte, first []float32, hook Hook) {
	again, _, err := decodeCase(c, blob, c.Opts.Workers)
	if err != nil {
		v.addf(InvDeterminism, "second decode failed: %v", err)
		return
	}
	if hook.CorruptRecon != nil {
		hook.CorruptRecon(&c, again)
	}
	if i := firstBitDiff(first, again); i >= 0 {
		v.addf(InvDeterminism, "decode #2 differs at point %d: %g vs %g", i, first[i], again[i])
	}

	otherWorkers := 3
	if c.Opts.Workers >= 2 {
		otherWorkers = 1
	}
	other, _, err := decodeCase(c, blob, otherWorkers)
	if err != nil {
		v.addf(InvWorkers, "decode with workers=%d failed: %v", otherWorkers, err)
		return
	}
	if hook.CorruptRecon != nil {
		hook.CorruptRecon(&c, other)
	}
	if i := firstBitDiff(first, other); i >= 0 {
		v.addf(InvWorkers, "workers=%d decode differs at point %d: %g vs %g",
			otherWorkers, i, first[i], other[i])
	}

	if c.Opts.BoundCheck == 0 {
		// The case didn't opt in; still exercise the self-check path once —
		// it must pass on an honest blob.
		opt := decodeOpts(c, c.Opts.Workers)
		opt.BoundCheckEvery = 7
		var err error
		if core.IsChunked(blob) {
			_, _, err = core.DecompressChunkedOpts(blob, chunkWorkers(c), opt)
		} else {
			_, _, err = core.DecompressWithOptions(blob, opt)
		}
		if err != nil {
			v.addf(InvBoundCheck, "bound self-check rejected an honest blob: %v", err)
		}
	}
}

// checkDifferential runs the SZ3 and QoZ reference adapters on the same
// input and bound: both must round-trip within the bound (or reject
// non-finite input cleanly), and CliZ's ratio must not be absurdly worse
// than SZ3's on non-trivial finite fields.
func checkDifferential(v *Verdict, c Case, ds *dataset.Dataset, eb float64, blob []byte) {
	hasNonFinite := c.Data.NaNs+c.Data.PosInfs+c.Data.NegInfs > 0
	var szRatio float64
	for _, name := range []string{"SZ3", "QoZ"} {
		comp, err := codec.Get(name)
		if err != nil {
			v.addf(InvDiffBound, "%s unavailable: %v", name, err)
			continue
		}
		bblob, err := comp.Compress(ds, eb)
		if err != nil {
			if hasNonFinite && cleanRejection(err) {
				continue
			}
			v.addf(InvDiffBound, "%s compress: %v", name, err)
			continue
		}
		recon, dims, err := comp.Decompress(bblob)
		if err != nil {
			v.addf(InvDiffBound, "%s decompress: %v", name, err)
			continue
		}
		if !equalDims(dims, ds.Dims) {
			v.addf(InvDiffBound, "%s dims %v, want %v", name, dims, ds.Dims)
			continue
		}
		// Baselines are mask-oblivious: every point, including fill
		// sentinels, is data to them and must obey the bound.
		tol := eb * (1 + 1e-9)
		for i, want := range ds.Data {
			got := recon[i]
			if math.IsNaN(float64(want)) {
				if !math.IsNaN(float64(got)) {
					v.addf(InvDiffBound, "%s: NaN at %d decoded to %g", name, i, got)
					break
				}
				continue
			}
			if math.IsInf(float64(want), 0) {
				if got != want {
					v.addf(InvDiffBound, "%s: %g at %d decoded to %g", name, want, i, got)
					break
				}
				continue
			}
			if d := math.Abs(float64(got) - float64(want)); d > tol {
				v.addf(InvDiffBound, "%s: point %d |%g − %g| = %g > eb %g", name, i, got, want, d, eb)
				break
			}
		}
		if name == "SZ3" {
			szRatio = float64(c.Points()*4) / float64(len(bblob))
		}
	}
	// Ratio plausibility: only meaningful for the auto-selected pipeline on
	// non-trivial finite fields where fixed per-blob overhead doesn't
	// dominate. Adversarial hand-built pipelines (say, full fusion over a
	// reversed permutation) can legitimately compress an order of magnitude
	// worse than SZ3 — that is a bad configuration, not a bug.
	if szRatio > 0 && c.Pipe.Default && !hasNonFinite && !c.Data.Constant && c.Points() >= 4096 {
		clizRatio := float64(c.Points()*4) / float64(len(blob))
		if clizRatio < szRatio/10 {
			v.addf(InvDiffRatio, "CliZ ratio %.3g vs SZ3 %.3g (>10× worse)", clizRatio, szRatio)
		}
	}
}

func equalDims(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// firstBitDiff returns the first index where the float bit patterns differ
// (−1 when identical).
func firstBitDiff(a, b []float32) int {
	if len(a) != len(b) {
		return 0
	}
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i
		}
	}
	return -1
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
