package conform

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"cliz/internal/analysis"
)

// ArtifactVersion is bumped when the artifact schema changes incompatibly.
const ArtifactVersion = 1

// Artifact is the replayable record of one conformance failure:
// everything needed to re-execute the case (and its minimized form) on
// another machine, plus the verdict observed when it was written.
type Artifact struct {
	Version int `json:"version"`
	// Seed and CaseIndex locate the case in its sweep (Seed 0 + index −1
	// for hand-written cases).
	Seed      int64 `json:"seed"`
	CaseIndex int   `json:"caseIndex"`
	// Case is the original failing case.
	Case Case `json:"case"`
	// Failures are the original case's invariant violations.
	Failures []Failure `json:"failures"`
	// Shrunk is the minimized reproducer (nil when shrinking was disabled
	// or achieved nothing).
	Shrunk *Case `json:"shrunk,omitempty"`
	// ShrunkFailures are the minimized case's violations.
	ShrunkFailures []Failure `json:"shrunkFailures,omitempty"`
	// Note carries free-form context ("found by sweep seed 42 case 17").
	Note string `json:"note,omitempty"`
	// Lint records the static-analysis contract the writing binary was
	// built under, so a reproducer can be matched to the lint rules that
	// were enforced when the failure was captured.
	Lint *LintStamp `json:"lint,omitempty"`
}

// LintStamp identifies the clizlint contract a binary was built with.
type LintStamp struct {
	Version   string   `json:"version"`
	Analyzers []string `json:"analyzers"`
}

// CurrentLintStamp returns the stamp for the analyzers compiled into
// this binary.
func CurrentLintStamp() *LintStamp {
	return &LintStamp{Version: analysis.Version, Analyzers: analysis.AnalyzerNames()}
}

// ArtifactName returns the canonical file name for a failure artifact.
func ArtifactName(seed int64, caseIndex int) string {
	return fmt.Sprintf("conform-repro-%d-%d.json", seed, caseIndex)
}

// WriteArtifact writes the artifact into dir (created if missing) and
// returns its path.
func WriteArtifact(dir string, a *Artifact) (string, error) {
	if a.Version == 0 {
		a.Version = ArtifactVersion
	}
	if a.Lint == nil {
		a.Lint = CurrentLintStamp()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, ArtifactName(a.Seed, a.CaseIndex))
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return "", err
	}
	return path, os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadArtifact reads an artifact written by WriteArtifact.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("conform: malformed artifact %s: %w", path, err)
	}
	if a.Version > ArtifactVersion {
		return nil, fmt.Errorf("conform: artifact %s has version %d, this build understands ≤ %d",
			path, a.Version, ArtifactVersion)
	}
	return &a, nil
}

// ReplayReport is the outcome of re-executing an artifact.
type ReplayReport struct {
	// Original is the verdict of the artifact's full case.
	Original *Verdict `json:"original"`
	// Shrunk is the verdict of the minimized case (nil when absent).
	Shrunk *Verdict `json:"shrunk,omitempty"`
}

// StillFails reports whether either form still violates an invariant.
func (r *ReplayReport) StillFails() bool {
	if r.Original.Failed() {
		return true
	}
	return r.Shrunk != nil && r.Shrunk.Failed()
}

// Replay re-executes an artifact's case (and minimized case, if present)
// through the invariant suite.
func Replay(a *Artifact, opt RunOptions) *ReplayReport {
	rep := &ReplayReport{Original: RunCase(a.Case, opt)}
	if a.Shrunk != nil {
		rep.Shrunk = RunCase(*a.Shrunk, opt)
	}
	return rep
}
