package conform

// Shrinking: given a failing case, repeatedly apply simplifying
// transformations — disable options, drop pipeline stages, simplify the
// data, halve dimensions, widen the bound — keeping a transformation only
// when the case still fails the same invariant. The result is a (locally)
// minimal reproducer, typically a handful of points with a near-default
// pipeline, which is what gets written into the replay artifact and
// promoted to a regression test.

// ShrinkResult reports what the shrinker achieved.
type ShrinkResult struct {
	// Case is the minimized reproducer.
	Case Case `json:"case"`
	// Failures are the minimized case's invariant violations.
	Failures []Failure `json:"failures"`
	// Steps counts accepted transformations; Runs counts invariant-suite
	// executions spent shrinking.
	Steps int `json:"steps"`
	Runs  int `json:"runs"`
}

// maxShrinkRuns caps the invariant-suite executions one shrink may spend.
const maxShrinkRuns = 250

// Shrink minimizes a failing case. target is the invariant that must keep
// failing (one of the original failures); opt should match the original run
// so failures reproduce. If the case does not fail at all, it is returned
// unchanged.
func Shrink(c Case, target string, opt RunOptions) ShrinkResult {
	res := ShrinkResult{Case: c}
	fails := func(cand Case) bool {
		if res.Runs >= maxShrinkRuns {
			return false
		}
		res.Runs++
		v := RunCase(cand, opt)
		return v.FailedInvariant(target)
	}
	if !fails(c) {
		res.Failures = RunCase(c, opt).Failures
		return res
	}
	cur := c
	for {
		improved := false
		for _, cand := range shrinkCandidates(cur) {
			if fails(cand) {
				cur = cand
				res.Steps++
				improved = true
				break
			}
		}
		if !improved || res.Runs >= maxShrinkRuns {
			break
		}
	}
	res.Case = cur
	res.Failures = RunCase(cur, opt).Failures
	return res
}

// shrinkCandidates proposes one-step simplifications, cheapest first: knobs
// and pipeline stages before data shape, data shape before bound widening.
func shrinkCandidates(c Case) []Case {
	var out []Case
	add := func(f func(*Case)) {
		cand := cloneCase(c)
		f(&cand)
		out = append(out, cand)
	}

	// 1. Drop implementation knobs.
	if c.Stream != nil {
		add(func(c *Case) { c.Stream = nil })
		if c.Stream.Frames > 2 {
			add(func(c *Case) { c.Stream.Frames = (c.Stream.Frames + 1) / 2 })
		}
		if c.Stream.Interval != 1 {
			add(func(c *Case) { c.Stream.Interval = 1 })
		}
	}
	if c.Opts.Chunks > 0 {
		add(func(c *Case) { c.Opts.Chunks, c.Opts.ChunkWorkers = 0, 0 })
	}
	if c.Opts.Workers > 1 {
		add(func(c *Case) { c.Opts.Workers = 0 })
	}
	if c.Opts.BoundCheck > 0 {
		add(func(c *Case) { c.Opts.BoundCheck = 0 })
	}
	if c.Opts.Entropy != "" {
		add(func(c *Case) { c.Opts.Entropy = "" })
	}

	// 2. Drop pipeline stages.
	if c.Pipe.Period > 0 {
		add(func(c *Case) { c.Pipe.Period = 0 })
	}
	if c.Pipe.Classify {
		add(func(c *Case) { c.Pipe.Classify = false })
	}
	if c.Pipe.LevelAlpha > 1 {
		add(func(c *Case) { c.Pipe.LevelAlpha = 0 })
	}
	if len(c.Pipe.Fusion) > 0 && len(c.Pipe.Fusion) != len(c.Data.Dims) {
		add(func(c *Case) { c.Pipe.Fusion = nil })
	}
	if !identityPerm(c.Pipe.Perm) {
		add(func(c *Case) {
			for i := range c.Pipe.Perm {
				c.Pipe.Perm[i] = i
			}
		})
	}
	if c.Pipe.UseMask {
		add(func(c *Case) { c.Pipe.UseMask = false })
	}
	if c.Pipe.Fitting == "cubic" {
		add(func(c *Case) { c.Pipe.Fitting = "linear" })
	}

	// 3. Simplify the data.
	if c.Data.NaNs+c.Data.PosInfs+c.Data.NegInfs > 0 {
		add(func(c *Case) { c.Data.NaNs, c.Data.PosInfs, c.Data.NegInfs = 0, 0, 0 })
	}
	if c.Data.MaskFrac > 0 && !c.Pipe.UseMask {
		add(func(c *Case) { c.Data.MaskFrac = 0 })
	}
	if c.Data.NoiseAmp > 0 {
		add(func(c *Case) { c.Data.NoiseAmp = 0 })
	}
	if c.Data.Period > 0 && c.Pipe.Period == 0 {
		add(func(c *Case) { c.Data.Period, c.Data.PeriodAmp, c.Data.Periodic = 0, 0, false })
	}
	if c.Data.Anisotropy != 0 {
		add(func(c *Case) { c.Data.Anisotropy = 0 })
	}

	// 4. Halve dimensions (largest first), preserving rank; fusion groups
	// stay valid because the rank is unchanged.
	order := dimOrder(c.Data.Dims)
	for _, i := range order {
		if c.Data.Dims[i] <= 1 {
			continue
		}
		i := i
		add(func(c *Case) {
			c.Data.Dims[i] = (c.Data.Dims[i] + 1) / 2
			clampPeriods(c)
		})
	}

	// 5. Widen the bound — a violation that survives a 4× looser bound is a
	// simpler, starker reproducer.
	if c.Bound.Rel > 0 && c.Bound.Rel < 0.25 {
		add(func(c *Case) { c.Bound.Rel *= 4 })
	}
	if c.Bound.Abs > 0 && c.Bound.Abs < 1e9 {
		add(func(c *Case) { c.Bound.Abs *= 4 })
	}
	return out
}

// clampPeriods keeps period knobs sensible after a dim shrink (a pipeline
// period exceeding the lead extent is legal input, but shrinking shouldn't
// wander into it unless that was the original bug shape).
func clampPeriods(c *Case) {
	if len(c.Data.Dims) == 0 {
		return
	}
	lead := c.Data.Dims[0]
	if c.Data.Period > lead {
		c.Data.Period = lead
	}
	if c.Data.Period == 0 {
		c.Data.Periodic = false
	}
}

func cloneCase(c Case) Case {
	out := c
	out.Data.Dims = append([]int(nil), c.Data.Dims...)
	out.Pipe.Perm = append([]int(nil), c.Pipe.Perm...)
	out.Pipe.Fusion = append([]int(nil), c.Pipe.Fusion...)
	if c.Stream != nil {
		s := *c.Stream
		out.Stream = &s
	}
	return out
}

func identityPerm(p []int) bool {
	for i, v := range p {
		if v != i {
			return false
		}
	}
	return true
}

// dimOrder returns dim indices sorted by descending extent.
func dimOrder(dims []int) []int {
	order := make([]int, len(dims))
	for i := range order {
		order[i] = i
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && dims[order[j]] > dims[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}
