package conform

import (
	"bytes"
	"errors"
	"io"
	"math"

	"cliz/internal/core"
	"cliz/internal/datagen"
	"cliz/internal/stream"
)

// StreamSpec makes a case additionally exercise the streaming codec: a
// temporal frame sequence over the case's horizontal plane is written
// through internal/stream and held to the stream invariant (per-frame bound
// with no drift, seek bit-identity, clean corruption handling).
type StreamSpec struct {
	// Frames is the timestep count.
	Frames int `json:"frames"`
	// Interval is the keyframe interval (0 = the writer default).
	Interval int `json:"interval,omitempty"`
	// Corr is the frame-to-frame correlation of the temporal field.
	Corr float64 `json:"corr,omitempty"`
}

// temporalSpec derives the frame-sequence recipe from the case: the stream
// shares the case's horizontal extents, seed lineage, mask and magnitude
// knobs, so the stream sweep covers the same data space as the blob sweep.
func temporalSpec(c *Case) datagen.TemporalSpec {
	dims := c.Data.Dims
	ts := datagen.TemporalSpec{
		Name:        "conform-stream",
		Frames:      c.Stream.Frames,
		NLat:        dims[len(dims)-2],
		NLon:        dims[len(dims)-1],
		Seed:        c.Data.Seed ^ 0x73747265,
		Corr:        c.Stream.Corr,
		AdvectCells: 0.3,
		Drift:       0.05,
		NoiseAmp:    c.Data.NoiseAmp,
		Scale:       c.Data.Scale,
		Offset:      c.Data.Offset,
	}
	if c.Data.MaskFrac > 0 {
		ts.MaskFrac = c.Data.MaskFrac
		ts.FillValue = c.Data.FillValue
	}
	return ts
}

// streamBound resolves the case's bound against the stream's first frame,
// mirroring the public writer's Rel semantics. A zero or non-finite range
// under a relative bound returns 0: the case cleanly has no stream bound and
// the stream checks are skipped (the blob side already pins the clean
// rejection contract for such inputs).
func streamBound(c *Case, ts *datagen.TemporalStream) float64 {
	if c.Bound.Abs > 0 {
		return c.Bound.Abs
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for p, v := range ts.Frames[0] {
		if ts.Mask != nil && ts.Mask.Regions[p] == 0 {
			continue
		}
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		lo, hi = math.Min(lo, f), math.Max(hi, f)
	}
	eb := c.Bound.Rel * (hi - lo)
	if !finite(eb) || eb <= 0 {
		return 0
	}
	return eb
}

// checkStream runs the InvStream contract: the temporal stream round-trips
// with every frame inside the bound and fill bit-exact, Seek decodes
// bit-identically to sequential replay, a mid-record truncation is rejected
// with an error wrapping core.ErrCorrupt, and a payload corruption surfaces
// as a *stream.FrameError naming the damaged frame — never a panic.
func checkStream(v *Verdict, c *Case) {
	ts, err := datagen.Temporal(temporalSpec(c))
	if err != nil {
		v.addf(InvStream, "temporal datagen: %v", err)
		return
	}
	eb := streamBound(c, ts)
	if eb == 0 {
		return
	}
	kind, err := entropyKind(c.Opts.Entropy)
	if err != nil {
		return // compressCase already reported it
	}

	var buf bytes.Buffer
	w, err := stream.NewWriter(&buf, stream.Config{
		Name: ts.Name, Dims: ts.Dims, Mask: ts.Mask, Fill: ts.Fill,
		EB: eb, Interval: c.Stream.Interval,
		Opts: core.Options{Workers: c.Opts.Workers, Entropy: kind},
	})
	if err != nil {
		v.addf(InvStream, "NewWriter: %v", err)
		return
	}
	for i, f := range ts.Frames {
		if _, err := w.Append(f); err != nil {
			v.addf(InvStream, "Append frame %d: %v", i, err)
			return
		}
	}
	if err := w.Close(); err != nil {
		v.addf(InvStream, "Close: %v", err)
		return
	}
	blob := buf.Bytes()

	seq := streamRoundTrip(v, c, ts, blob, eb)
	if seq == nil {
		return
	}
	streamSeekCheck(v, c, blob, seq)
	streamCorruptionCheck(v, c, blob)
}

// streamRoundTrip decodes the whole stream sequentially and holds every
// frame to the bound/fill contract; it returns the frames for the seek
// check (nil after a failure).
func streamRoundTrip(v *Verdict, c *Case, ts *datagen.TemporalStream, blob []byte, eb float64) [][]float32 {
	r, err := stream.Parse(blob, core.DecompressOptions{Workers: c.Opts.Workers})
	if err != nil {
		v.addf(InvStream, "Parse of fresh stream: %v", err)
		return nil
	}
	if r.Frames() != len(ts.Frames) {
		v.addf(InvStream, "stream has %d frames, want %d", r.Frames(), len(ts.Frames))
		return nil
	}
	tol := eb * (1 + 1e-9)
	var seq [][]float32
	for t := 0; t < r.Frames(); t++ {
		got, err := r.ReadFrame()
		if err != nil {
			v.addf(InvStream, "ReadFrame %d: %v", t, err)
			return nil
		}
		for p, want := range ts.Frames[t] {
			if ts.Mask != nil && ts.Mask.Regions[p] == 0 {
				if math.Float32bits(got[p]) != math.Float32bits(ts.Fill) {
					v.addf(InvStream, "frame %d point %d: masked point %g, want fill %g",
						t, p, got[p], ts.Fill)
					return nil
				}
				continue
			}
			if d := math.Abs(float64(got[p]) - float64(want)); d > tol {
				v.addf(InvStream, "frame %d point %d: |%g − %g| = %g > eb %g",
					t, p, got[p], want, d, eb)
				return nil
			}
		}
		seq = append(seq, got)
	}
	return seq
}

// streamSeekCheck: Seek+ReadFrame at the stream's corners and middle must be
// bit-identical to the sequential decode.
func streamSeekCheck(v *Verdict, c *Case, blob []byte, seq [][]float32) {
	r, err := stream.Parse(blob, core.DecompressOptions{Workers: c.Opts.Workers})
	if err != nil {
		v.addf(InvStream, "Parse for seek: %v", err)
		return
	}
	for _, t := range []int{len(seq) - 1, 0, len(seq) / 2} {
		if err := r.Seek(t); err != nil {
			v.addf(InvStream, "Seek(%d): %v", t, err)
			return
		}
		got, err := r.ReadFrame()
		if err != nil {
			v.addf(InvStream, "ReadFrame after Seek(%d): %v", t, err)
			return
		}
		if i := firstBitDiff(got, seq[t]); i >= 0 {
			v.addf(InvStream, "Seek(%d) differs from sequential at point %d: %g vs %g",
				t, i, got[i], seq[t][i])
			return
		}
	}
}

// streamCorruptionCheck: a mid-record truncation must fail Parse with an
// error wrapping core.ErrCorrupt, and a flipped payload byte must surface as
// a *stream.FrameError attributing the damage to the flipped frame.
func streamCorruptionCheck(v *Verdict, c *Case, blob []byte) {
	if _, err := stream.Parse(blob[:len(blob)-1], core.DecompressOptions{}); err == nil {
		v.addf(InvStream, "truncated stream parsed cleanly")
	} else if !errors.Is(err, core.ErrCorrupt) {
		v.addf(InvStream, "truncation error %v does not wrap core.ErrCorrupt", err)
	}

	r, err := stream.Parse(blob, core.DecompressOptions{})
	if err != nil || r.Frames() == 0 {
		return
	}
	target := r.Frames() / 2
	rec, err := r.Record(target)
	if err != nil {
		v.addf(InvStream, "Record(%d): %v", target, err)
		return
	}
	bad := append([]byte(nil), blob...)
	bad[rec.PayloadOffset+rec.PayloadLen/2] ^= 0x20
	rb, err := stream.Parse(bad, core.DecompressOptions{})
	if err != nil {
		v.addf(InvStream, "Parse of payload-flipped stream: %v", err)
		return
	}
	for {
		_, err := rb.ReadFrame()
		if err == io.EOF {
			v.addf(InvStream, "payload flip in frame %d decoded cleanly", target)
			return
		}
		if err == nil {
			continue
		}
		var fe *stream.FrameError
		if !errors.As(err, &fe) {
			v.addf(InvStream, "flip error %v is not a FrameError", err)
		} else if fe.Frame != target {
			v.addf(InvStream, "flip in frame %d attributed to frame %d", target, fe.Frame)
		} else if !errors.Is(err, core.ErrCorrupt) {
			v.addf(InvStream, "flip error %v does not wrap core.ErrCorrupt", err)
		}
		return
	}
}
