package core

import (
	"fmt"
	"sync"

	"cliz/internal/codec"
	"cliz/internal/dataset"
)

// Codec adapts the CliZ compressor to the common codec.Compressor interface
// used by the benchmark harness and CLI. Each Compress call auto-tunes at
// the configured sampling rate; tuned pipelines are cached per
// (dataset name, dims, error bound), mirroring the paper's offline/online
// split where one tuning run serves every field of a climate model.
type Codec struct {
	// Tune configures the auto-tuner (zero value = paper defaults).
	Tune TuneConfig
	// Opt configures implementation knobs.
	Opt Options

	mu    sync.Mutex
	cache map[string]Pipeline
}

func init() { codec.Register(NewCodec()) }

// NewCodec returns a CliZ codec with paper-default tuning (1% sampling).
func NewCodec() *Codec {
	return &Codec{cache: map[string]Pipeline{}}
}

// Name implements codec.Compressor.
func (*Codec) Name() string { return "CliZ" }

// Compress implements codec.Compressor.
func (c *Codec) Compress(ds *dataset.Dataset, eb float64) ([]byte, error) {
	p, err := c.pipelineFor(ds, eb)
	if err != nil {
		return nil, err
	}
	return Compress(ds, eb, p, c.Opt)
}

// Decompress implements codec.Compressor.
func (*Codec) Decompress(blob []byte) ([]float32, []int, error) {
	return Decompress(blob)
}

func (c *Codec) pipelineFor(ds *dataset.Dataset, eb float64) (Pipeline, error) {
	key := fmt.Sprintf("%s|%v|%g", ds.Name, ds.Dims, eb)
	c.mu.Lock()
	if c.cache == nil {
		c.cache = map[string]Pipeline{}
	}
	p, ok := c.cache[key]
	c.mu.Unlock()
	if ok {
		return p, nil
	}
	best, _, err := AutoTune(ds, eb, c.Tune, c.Opt)
	if err != nil {
		return Pipeline{}, err
	}
	c.mu.Lock()
	c.cache[key] = best
	c.mu.Unlock()
	return best, nil
}
