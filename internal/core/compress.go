package core

import (
	"errors"
	"fmt"
	"math"

	"cliz/internal/classify"
	"cliz/internal/dataset"
	"cliz/internal/entropy"
	"cliz/internal/grid"
	"cliz/internal/lossless"
	"cliz/internal/mask"
	"cliz/internal/predict"
	"cliz/internal/quant"
	"cliz/internal/trace"
)

// Options tune implementation knobs that are not part of the paper's
// pipeline search space.
type Options struct {
	// Radius is the quantizer radius; 0 selects quant.DefaultRadius.
	Radius int32
	// Lambda is the classification threshold; 0 selects the Theorem 2
	// optimum 0.4.
	Lambda float64
	// Backend is the lossless stage ("Zstd" in the paper); nil selects
	// flate level 6.
	Backend lossless.Codec
	// Entropy selects the symbol coder for quantization bins: Huffman
	// (paper default), rANS, or interleaved rANS (same size class as rANS,
	// faster decode). Decoding is driven by the block itself, so blobs
	// written with any coder always decode.
	Entropy entropy.Kind
	// Trace receives per-stage records (wall time, byte counts, bin
	// histogram summaries). Nil — the default — disables collection; the
	// hooks are then allocation-free no-ops.
	Trace trace.Collector
	// Workers bounds intra-blob parallelism: sectioned prediction, sharded
	// entropy coding, and parallel transposition. <= 1 (the default) keeps
	// every stage on the calling goroutine. Output is deterministic for a
	// fixed Workers value; Workers = 1 reproduces the serial v1 bitstream
	// except for the version byte and section-count field.
	Workers int
	// MaterializedPermute forces the legacy materialized transpose in front
	// of the predictor even when the permutation and fusion could be folded
	// into the engines' index arithmetic (the default fused path). Blobs are
	// bit-identical either way — the flag exists for the fused-vs-legacy
	// equivalence suites and as an escape hatch.
	MaterializedPermute bool
	// Interrupt, when non-nil, is polled at stage, chunk and tuner-candidate
	// boundaries; a non-nil return aborts the run with that error wrapped.
	// This is how per-request deadlines and cancellation reach a long
	// compression from a server context without adding locks to the kernels
	// (the polling granularity is a pipeline stage, not a point).
	Interrupt func() error
	// sectionLeadFloor overrides minSectionLead so package tests can force
	// sectioned prediction on small fixtures; 0 (always, outside tests)
	// selects the default.
	sectionLeadFloor int
}

func (o Options) radius() int32 {
	if o.Radius == 0 {
		return quant.DefaultRadius
	}
	return o.Radius
}

func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

func (o Options) backend() lossless.Codec {
	if o.Backend == nil {
		return lossless.Flate{Level: 6}
	}
	return o.Backend
}

// validity abstracts over the two mask representations: the horizontal
// mask-map of real climate files (compact, broadcast across leading dims)
// and an arbitrary per-point bitmap (used for the auto-tuner's concatenated
// sample blocks, whose horizontal windows differ block to block).
type validity struct {
	hm  *mask.Map
	pts []bool
}

func (v validity) none() bool { return v.hm == nil && v.pts == nil }

// bitmap materializes the per-point validity for dims (nil if unmasked).
func (v validity) bitmap(dims []int) ([]bool, error) {
	switch {
	case v.pts != nil:
		return v.pts, nil
	case v.hm != nil:
		return v.hm.Broadcast(dims)
	}
	return nil, nil
}

// Compress encodes ds.Data under the absolute error bound eb with the given
// pipeline. The blob is self-contained: it embeds the mask and (for periodic
// pipelines) the compressed template.
func Compress(ds *dataset.Dataset, eb float64, p Pipeline, opt Options) ([]byte, error) {
	blob, _, err := CompressWithRecon(ds, eb, p, opt)
	return blob, err
}

// CompressWithRecon also returns the reconstruction the decompressor will
// produce, sparing experiments a decode pass.
func CompressWithRecon(ds *dataset.Dataset, eb float64, p Pipeline, opt Options) ([]byte, []float32, error) {
	if err := ds.Validate(); err != nil {
		return nil, nil, err
	}
	var v validity
	if p.UseMask {
		v.hm = ds.Mask
	}
	total := trace.Begin(opt.Trace, "total")
	blob, recon, err := compressGeneral(ds.Data, ds.Dims, v, eb, p, ds.FillValue, opt)
	if err == nil {
		total.EndFull(int64(len(ds.Data))*4, int64(len(blob)), int64(len(ds.Data)), nil)
	}
	return blob, recon, err
}

// ErrInterrupted marks an abort requested through Options.Interrupt /
// DecompressOptions.Interrupt. The hook's own error (context.Canceled,
// context.DeadlineExceeded, ...) stays reachable through errors.Is too.
var ErrInterrupted = errors.New("core: interrupted")

// interrupted polls an Interrupt hook.
func interrupted(poll func() error) error {
	if poll == nil {
		return nil
	}
	if err := poll(); err != nil {
		return fmt.Errorf("%w: %w", ErrInterrupted, err)
	}
	return nil
}

func compressGeneral(data []float32, dims []int, v validity, eb float64,
	p Pipeline, fill float32, opt Options) ([]byte, []float32, error) {

	if err := interrupted(opt.Interrupt); err != nil {
		return nil, nil, err
	}
	if eb <= 0 {
		return nil, nil, fmt.Errorf("core: error bound must be positive, got %g", eb)
	}
	if err := p.Validate(len(dims)); err != nil {
		return nil, nil, err
	}
	if v.none() {
		p.UseMask = false
	}
	if p.Period >= 2 && dims[0] >= 2*p.Period {
		return compressPeriodic(data, dims, v, eb, p, fill, opt)
	}
	p.Period = 0
	return compressUnit(data, dims, v, eb, p, fill, opt)
}

// compressPeriodic implements periodic component extraction (paper §VI-D):
// the template (per-phase mean) and the residual are compressed as two
// nested blobs. The residual is computed against the template's *lossy
// reconstruction*, so the residual's error bound alone bounds the composed
// error and both components may use the full budget.
func compressPeriodic(data []float32, dims []int, v validity, eb float64,
	p Pipeline, fill float32, opt Options) ([]byte, []float32, error) {

	valid, err := v.bitmap(dims)
	if err != nil {
		return nil, nil, err
	}
	sp := trace.Begin(opt.Trace, "template-build")
	tmplData, tmplDims, tmplValid := buildTemplate(data, dims, valid, p.Period, fill)
	sp.EndFull(int64(len(data))*4, int64(len(tmplData))*4, int64(len(tmplData)), nil)
	tv := validity{}
	if v.hm != nil && len(dims) >= 3 {
		tv.hm = v.hm // horizontal masks broadcast identically over phases
	} else if tmplValid != nil {
		// Point-mask inputs — or a rank-2 mask, which would span the time
		// axis — carry the template's own validity bitmap instead.
		tv.pts = tmplValid
	}
	tp := templatePipeline(p, len(tmplDims))
	topt := opt
	topt.Trace = trace.Prefixed(opt.Trace, "template")
	tmplBlob, tmplRecon, err := compressUnit(tmplData, tmplDims, tv, eb, tp, fill, topt)
	if err != nil {
		return nil, nil, fmt.Errorf("core: template: %w", err)
	}
	sp = trace.Begin(opt.Trace, "residual-build")
	residual := subtractTemplate(data, tmplRecon, dims, p.Period, valid, fill)
	sp.EndFull(int64(len(data))*4, int64(len(residual))*4, int64(len(residual)), nil)
	// The decoder composes fl32(residual′ + template), and the residual
	// itself is fl32(data − template): two float32 roundings the residual's
	// verified bound does not see. Budget them out of the residual's error
	// bound; if the bound is too tight to afford the slack, periodic
	// extraction cannot guarantee it — fall back to direct compression.
	slack := compositionSlack(data, tmplRecon, dims, p.Period, valid)
	if slack >= eb/2 {
		up := p
		up.Period = 0
		up.Template = nil
		return compressUnit(data, dims, v, eb, up, fill, opt)
	}
	rp := p
	rp.Period = 0
	rp.Template = nil
	ropt := opt
	ropt.Trace = trace.Prefixed(opt.Trace, "residual")
	resBlob, resRecon, err := compressUnit(residual, dims, v, eb-slack, rp, fill, ropt)
	if err != nil {
		return nil, nil, fmt.Errorf("core: residual: %w", err)
	}
	h := header{
		flags:     flagPeriodic | maskFlags(v) | fitFlag(p),
		eb:        eb,
		fill:      fill,
		radius:    opt.radius(),
		dims:      dims,
		pipe:      p,
		psections: 1, // periodic wrappers carry no bin streams of their own
	}
	if p.Classify {
		h.flags |= flagClassify
	}
	w := blobWriter{h: h}
	w.add(secTemplate, tmplBlob)
	w.add(secResidual, resBlob)
	out := w.bytes()
	// Compose the reconstruction: template tile + residual.
	recon := addTemplate(resRecon, tmplRecon, dims, p.Period)
	if valid != nil {
		for i, ok := range valid {
			if !ok {
				recon[i] = fill
			}
		}
	}
	return out, recon, nil
}

// compositionSlack bounds the float32 rounding the periodic composition
// adds on top of the residual's verified error: one rounding when the
// residual is formed (data − template) and one when the decoder re-adds the
// template. Each is at most half a ulp of the largest magnitude involved.
func compositionSlack(data, tmplRecon []float32, dims []int, period int, valid []bool) float64 {
	nT := dims[0]
	plane := len(data) / nT
	maxAbs := 0.0
	for t := 0; t < nT; t++ {
		toff := (t % period) * plane
		for p := 0; p < plane; p++ {
			idx := t*plane + p
			if valid != nil && !valid[idx] {
				continue
			}
			if a := math.Abs(float64(data[idx])); a > maxAbs {
				maxAbs = a
			}
			if a := math.Abs(float64(tmplRecon[toff+p])); a > maxAbs {
				maxAbs = a
			}
		}
	}
	// 2 roundings × ulp(maxAbs)/2, doubled for safety: 2·maxAbs·2⁻²³.
	return maxAbs * (1.0 / (1 << 22))
}

func maskFlags(v validity) byte {
	switch {
	case v.hm != nil:
		return flagMask
	case v.pts != nil:
		return flagPointMask
	}
	return 0
}

func fitFlag(p Pipeline) byte {
	switch p.Fitting {
	case predict.Cubic:
		return flagCubic
	case predict.Lorenzo:
		return flagLorenzo
	}
	return 0
}

// templatePipeline derives the pipeline for the template: either the tuned
// one carried by p.Template, or p itself stripped of period/classification.
func templatePipeline(p Pipeline, rank int) Pipeline {
	var tp Pipeline
	if p.Template != nil {
		tp = *p.Template
	} else {
		tp = p
		tp.Classify = false
	}
	tp.Period = 0
	tp.Template = nil
	tp.UseMask = p.UseMask
	if len(tp.Perm) != rank || !grid.ValidPerm(tp.Perm, rank) {
		tp.Perm = identityPerm(rank)
	}
	if !tp.Fusion.Valid(rank) {
		tp.Fusion = grid.NoFusion(rank)
	}
	return tp
}

// levelEBFactor builds the per-level error-bound scaling for a level alpha:
// eb_ℓ = eb / min(α^(ℓ−1), 4). nil (flat) for α ≤ 1.
func levelEBFactor(alpha float64) func(int) float64 {
	if alpha <= 1 {
		return nil
	}
	return func(level int) float64 {
		// A single-point dataset has Levels() == 0, so the origin is handled
		// at level 0; without the clamp α^(level−1) dips below 1 and the
		// factor LOOSENS the bound by α, violating the contract.
		if level < 1 {
			level = 1
		}
		return 1 / math.Min(math.Pow(alpha, float64(level-1)), 4)
	}
}

func identityPerm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// compressUnit handles a single (non-periodic) compression unit.
func compressUnit(data []float32, dims []int, v validity, eb float64,
	p Pipeline, fill float32, opt Options) ([]byte, []float32, error) {

	if err := interrupted(opt.Interrupt); err != nil {
		return nil, nil, err
	}
	validOrig, err := v.bitmap(dims)
	if err != nil {
		return nil, nil, err
	}
	W := opt.workers()
	// Fused path (default): the permutation and fusion become a Layout the
	// engines traverse directly, so the float data is never transposed —
	// only the compact bool mask is, keeping the bins/mask/classify streams
	// in logical (post-permutation) order. The legacy path materializes the
	// transpose; both produce bit-identical blobs.
	lay, fused := grid.FusedLayout(dims, p.Perm, p.Fusion)
	if opt.MaterializedPermute {
		fused = false
	}
	var tdims []int
	var work []float32
	var tvalid []bool
	if fused {
		if validOrig != nil {
			sp := trace.Begin(opt.Trace, "mask")
			tvalid, err = grid.TransposeWorkers(validOrig, dims, p.Perm, W)
			if err != nil {
				return nil, nil, err
			}
			sp.EndFull(int64(len(validOrig)), int64(len(tvalid)), int64(len(tvalid)), nil)
		}
		work = make([]float32, len(data))
		copy(work, data)
	} else {
		sp := trace.Begin(opt.Trace, "permute")
		tdims = grid.PermuteDims(dims, p.Perm)
		work, err = grid.TransposeWorkers(data, dims, p.Perm, W)
		if err != nil {
			return nil, nil, err
		}
		if validOrig != nil {
			tvalid, err = grid.TransposeWorkers(validOrig, dims, p.Perm, W)
			if err != nil {
				return nil, nil, err
			}
		}
		sp.EndFull(int64(len(data))*4, int64(len(work))*4, int64(len(work)), nil)
		lay = grid.IdentityLayout(p.Fusion.Apply(tdims))
	}
	fdims := lay.Dims
	P := sectionCount(W, fdims, opt.sectionLeadFloor)
	// The sectioned fan-out gets its own span name so the per-shard spans
	// (which Aggregate folds into one "predict" row) are not double-counted.
	predName := "predict"
	if P > 1 {
		predName = "predict-fanout"
	}
	sp := trace.Begin(opt.Trace, predName)
	bins, lits, err := predictSections(work, lay, tvalid, eb, p, fill, opt, P)
	if err != nil {
		return nil, nil, err
	}
	sp.EndFull(int64(len(work))*4, 0, int64(len(bins)), binStats(bins, lits, tvalid, opt.Trace))
	if err := interrupted(opt.Interrupt); err != nil {
		return nil, nil, err
	}

	h := header{
		flags:     maskFlags(v) | fitFlag(p),
		eb:        eb,
		fill:      fill,
		radius:    opt.radius(),
		dims:      dims,
		pipe:      p,
		psections: P,
	}
	if p.Classify {
		h.flags |= flagClassify
	}
	w := blobWriter{h: h}
	switch {
	case v.hm != nil:
		sp = trace.Begin(opt.Trace, "mask")
		ms := v.hm.Serialize()
		w.add(secMask, ms)
		sp.EndBytes(int64(len(v.hm.Regions))*4, int64(len(ms)))
	case v.pts != nil:
		sp = trace.Begin(opt.Trace, "mask")
		ms := packBitmap(v.pts)
		w.add(secMask, ms)
		sp.EndBytes(int64(len(v.pts)), int64(len(ms)))
	}
	be := opt.backend()
	if p.Classify {
		sp = trace.Begin(opt.Trace, "classify")
		nLat, nLon := latLon(dims)
		colOf := columnIDs(dims, p.Perm)
		cls := classify.Analyze(bins, colOf, nLat*nLon, tvalid,
			classify.Params{Radius: opt.radius(), Lambda: opt.Lambda})
		classify.ShiftBins(bins, colOf, tvalid, cls)
		a, b := classify.Split(bins, colOf, tvalid, cls)
		meta := classify.PackMeta(cls)
		w.add(secClassMeta, meta)
		sp.EndFull(int64(len(bins))*4, int64(len(meta)), int64(len(a)+len(b)), nil)
		sp = trace.Begin(opt.Trace, "entropy")
		encA := entropy.EncodeBlockSharded(opt.Entropy, a, W)
		encB := entropy.EncodeBlockSharded(opt.Entropy, b, W)
		sp.EndFull(int64(len(a)+len(b))*4, int64(len(encA)+len(encB)),
			int64(len(a)+len(b)), entropyStats(opt.Trace, encA, encB))
		sp = trace.Begin(opt.Trace, "lossless")
		lsA := lossless.Encode(be, encA)
		lsB := lossless.Encode(be, encB)
		w.add(secBinsA, lsA)
		w.add(secBinsB, lsB)
		sp.EndBytes(int64(len(encA)+len(encB)), int64(len(lsA)+len(lsB)))
	} else {
		symsp := symsPool.Get().(*[]uint32)
		syms := (*symsp)[:0]
		for i, bin := range bins {
			if tvalid != nil && !tvalid[i] {
				continue
			}
			syms = append(syms, uint32(bin))
		}
		sp = trace.Begin(opt.Trace, "entropy")
		enc := entropy.EncodeBlockSharded(opt.Entropy, syms, W)
		sp.EndFull(int64(len(syms))*4, int64(len(enc)), int64(len(syms)),
			entropyStats(opt.Trace, enc))
		*symsp = syms[:0]
		symsPool.Put(symsp)
		sp = trace.Begin(opt.Trace, "lossless")
		ls := lossless.Encode(be, enc)
		w.add(secBins, ls)
		sp.EndBytes(int64(len(enc)), int64(len(ls)))
	}
	sp = trace.Begin(opt.Trace, "literals")
	litRaw := float32sToBytes(lits)
	litEnc := lossless.Encode(be, litRaw)
	w.add(secLiterals, litEnc)
	sp.EndFull(int64(len(litRaw)), int64(len(litEnc)), int64(len(lits)), nil)
	out := w.bytes()

	// The engines reconstructed in place: under the fused layout work is
	// already in the original array layout, otherwise transpose it back.
	if fused {
		return out, work, nil
	}
	sp = trace.Begin(opt.Trace, "unpermute")
	recon, err := grid.TransposeWorkers(work, tdims, grid.InversePerm(p.Perm), W)
	if err != nil {
		return nil, nil, err
	}
	sp.EndFull(int64(len(work))*4, int64(len(recon))*4, int64(len(recon)), nil)
	return out, recon, nil
}

// binStats summarizes the quantization-bin histogram for the trace: distinct
// bin count, Shannon entropy in bits/symbol, the share of the most frequent
// bin, and the literal (unpredictable) count. It runs only when a collector
// is attached; the nil-trace hot path never touches it.
func binStats(bins []int32, literals []float32, tvalid []bool, c trace.Collector) []trace.KV {
	if c == nil {
		return nil
	}
	hist := map[int32]int{}
	n := 0
	for i, b := range bins {
		if tvalid != nil && !tvalid[i] {
			continue
		}
		hist[b]++
		n++
	}
	if n == 0 {
		return []trace.KV{{Key: "literals", Value: float64(len(literals))}}
	}
	top := 0
	entropyBits := 0.0
	for _, cnt := range hist {
		if cnt > top {
			top = cnt
		}
		pr := float64(cnt) / float64(n)
		entropyBits -= pr * math.Log2(pr)
	}
	return []trace.KV{
		{Key: "distinct_bins", Value: float64(len(hist))},
		{Key: "entropy_bits", Value: entropyBits},
		{Key: "top1_share", Value: float64(top) / float64(n)},
		{Key: "literals", Value: float64(len(literals))},
	}
}

// entropyStats splits encoded symbol blocks into code-table and payload
// bytes (Huffman tree size vs bitstream size). Collector-gated like binStats.
func entropyStats(c trace.Collector, blocks ...[]byte) []trace.KV {
	if c == nil {
		return nil
	}
	table, stream := 0, 0
	for _, b := range blocks {
		if _, t, s, ok := entropy.BlockStats(b); ok {
			table += t
			stream += s
		}
	}
	return []trace.KV{
		{Key: "table_bytes", Value: float64(table)},
		{Key: "stream_bytes", Value: float64(stream)},
	}
}

// DecompressOptions tune the decode side. The zero value is the serial
// default.
type DecompressOptions struct {
	// Workers bounds intra-blob decode parallelism (sharded entropy decode,
	// sectioned reconstruction, parallel transposition). The reconstruction
	// partition comes from the blob header, so the output is identical for
	// every worker count.
	Workers int
	// Trace receives per-stage decode records; nil disables collection.
	Trace trace.Collector
	// BoundCheckEvery > 0 enables decode-time bound self-verification: the
	// prediction traversal is replayed read-only over the finished
	// reconstruction and every BoundCheckEvery-th point is checked to be
	// exactly regenerated from its recorded quantization bin (or literal).
	// 1 checks every point. Combined with v3 checksums this turns "the
	// bitstream decoded" into "the decode satisfies the header's error
	// bound".
	BoundCheckEvery int
	// MaterializedPermute forces the legacy materialized unpermute after
	// reconstruction instead of the fused layout decode (mirrors
	// Options.MaterializedPermute; output is bit-identical either way).
	MaterializedPermute bool
	// Interrupt mirrors Options.Interrupt for the decode side: polled at
	// blob and chunk boundaries, a non-nil return aborts the decode.
	Interrupt func() error
	// stats receives verification counters when non-nil (set by
	// DecompressVerified / DecompressPartial).
	stats *verifyCounters
}

func (o DecompressOptions) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// prefixed returns a copy routing trace records under the given stage prefix.
func (o DecompressOptions) prefixed(prefix string) DecompressOptions {
	o.Trace = trace.Prefixed(o.Trace, prefix)
	return o
}

// Decompress reconstructs the data and original dims from a CliZ blob.
func Decompress(blob []byte) ([]float32, []int, error) {
	pos := 0
	return decompressAt(blob, &pos, DecompressOptions{Workers: 1})
}

// DecompressTraced is Decompress with an attached stage collector recording
// per-stage decode timings and byte counts.
func DecompressTraced(blob []byte, c trace.Collector) ([]float32, []int, error) {
	return DecompressWithOptions(blob, DecompressOptions{Trace: c})
}

// DecompressWithOptions is Decompress with decode-side knobs.
func DecompressWithOptions(blob []byte, opt DecompressOptions) ([]float32, []int, error) {
	pos := 0
	total := trace.Begin(opt.Trace, "total")
	data, dims, err := decompressAt(blob, &pos, opt)
	if err == nil {
		total.EndFull(int64(len(blob)), int64(len(data))*4, int64(len(data)), nil)
	}
	return data, dims, err
}

func decompressAt(blob []byte, pos *int, opt DecompressOptions) ([]float32, []int, error) {
	if err := interrupted(opt.Interrupt); err != nil {
		return nil, nil, err
	}
	c := opt.Trace
	h, err := parseHeader(blob, pos)
	if err != nil {
		return nil, nil, err
	}
	if h.flags&flagPeriodic != 0 {
		sr := sectionReader{h: &h}
		tmplSec, err := sr.next(blob, pos, secTemplate)
		if err != nil {
			return nil, nil, err
		}
		resSec, err := sr.next(blob, pos, secResidual)
		if err != nil {
			return nil, nil, err
		}
		if !sr.done() {
			return nil, nil, ErrCorrupt
		}
		tpos := 0
		tmpl, tmplDims, err := decompressAt(tmplSec, &tpos, opt.prefixed("template"))
		if err != nil {
			return nil, nil, fmt.Errorf("core: template: %w", err)
		}
		if len(tmplDims) != len(h.dims) || tmplDims[0] != h.pipe.Period {
			return nil, nil, ErrCorrupt
		}
		rpos := 0
		residual, resDims, err := decompressAt(resSec, &rpos, opt.prefixed("residual"))
		if err != nil {
			return nil, nil, fmt.Errorf("core: residual: %w", err)
		}
		if !dimsEqual(resDims, h.dims) {
			return nil, nil, ErrCorrupt
		}
		sp := trace.Begin(c, "compose")
		data := addTemplate(residual, tmpl, h.dims, h.pipe.Period)
		if h.flags&(flagMask|flagPointMask) != 0 {
			// Adding the template disturbed the fill values the residual
			// decoder placed at masked points; restore them using the
			// validity embedded in the residual blob.
			valid, err := validityFromUnitBlob(resSec, h.dims)
			if err != nil {
				return nil, nil, err
			}
			for i, ok := range valid {
				if !ok {
					data[i] = h.fill
				}
			}
		}
		sp.EndFull(0, int64(len(data))*4, int64(len(data)), nil)
		return data, h.dims, nil
	}
	return decompressUnit(blob, pos, h, opt)
}

// validityFromUnitBlob extracts the embedded validity bitmap of a unit blob.
func validityFromUnitBlob(blob []byte, dims []int) ([]bool, error) {
	pos := 0
	h, err := parseHeader(blob, &pos)
	if err != nil {
		return nil, err
	}
	sr := sectionReader{h: &h}
	switch {
	case h.flags&flagMask != 0:
		sec, err := sr.next(blob, &pos, secMask)
		if err != nil {
			return nil, err
		}
		hm, err := mask.Parse(sec)
		if err != nil {
			return nil, corrupt(err)
		}
		valid, err := hm.Broadcast(dims)
		return valid, corrupt(err)
	case h.flags&flagPointMask != 0:
		sec, err := sr.next(blob, &pos, secMask)
		if err != nil {
			return nil, err
		}
		return unpackBitmap(sec, grid.Volume(dims))
	}
	return nil, ErrCorrupt
}

// checkDecodeBudget gates a declared volume against the hard decode caps and
// the remaining payload size, so hostile headers cannot drive the allocations
// below (bins, bitmaps, output) past what the payload can plausibly back.
func checkDecodeBudget(vol, avail int) error {
	if vol > maxDecodeVolume {
		return fmt.Errorf("core: declared volume %d exceeds decode cap %d: %w",
			vol, maxDecodeVolume, ErrCorrupt)
	}
	if avail < 0 {
		avail = 0
	}
	if uint64(vol) > (uint64(avail)+64)*maxPointsPerByte {
		return fmt.Errorf("core: declared volume %d implausible for %d payload bytes: %w",
			vol, avail, ErrCorrupt)
	}
	return nil
}

func decompressUnit(blob []byte, pos *int, h header, opt DecompressOptions) ([]float32, []int, error) {
	c := opt.Trace
	workers := opt.workers()
	dims := h.dims
	p := h.pipe
	vol := grid.Volume(dims)
	if err := checkDecodeBudget(vol, len(blob)-*pos); err != nil {
		return nil, nil, err
	}
	sr := sectionReader{h: &h}
	var validOrig, tvalid []bool
	sp := trace.Begin(c, "mask")
	switch {
	case h.flags&flagMask != 0:
		sec, err := sr.next(blob, pos, secMask)
		if err != nil {
			return nil, nil, err
		}
		hm, err := mask.Parse(sec)
		if err != nil {
			return nil, nil, corrupt(err)
		}
		nLat, nLon := latLon(dims)
		if hm.NLat != nLat || hm.NLon != nLon {
			return nil, nil, ErrCorrupt
		}
		validOrig, err = hm.Broadcast(dims)
		if err != nil {
			return nil, nil, corrupt(err)
		}
	case h.flags&flagPointMask != 0:
		sec, err := sr.next(blob, pos, secMask)
		if err != nil {
			return nil, nil, err
		}
		var err2 error
		validOrig, err2 = unpackBitmap(sec, vol)
		if err2 != nil {
			return nil, nil, err2
		}
	}
	if validOrig != nil {
		var err2 error
		tvalid, err2 = grid.TransposeWorkers(validOrig, dims, p.Perm, workers)
		if err2 != nil {
			return nil, nil, corrupt(err2)
		}
	}
	sp.EndFull(0, int64(len(validOrig)), int64(len(validOrig)), nil)
	tdims := grid.PermuteDims(dims, p.Perm)
	// Mirror the encoder's layout decision. The choice is local: blobs carry
	// no trace of which path wrote them, and either path decodes any blob to
	// the identical output.
	lay, fused := grid.FusedLayout(dims, p.Perm, p.Fusion)
	if opt.MaterializedPermute {
		fused = false
	}
	if !fused {
		lay = grid.IdentityLayout(p.Fusion.Apply(tdims))
	}

	sp = trace.Begin(c, "entropy-decode")
	binsStart := *pos
	var bins []int32
	if h.flags&flagClassify != 0 {
		metaSec, err := sr.next(blob, pos, secClassMeta)
		if err != nil {
			return nil, nil, err
		}
		aSec, err := sr.next(blob, pos, secBinsA)
		if err != nil {
			return nil, nil, err
		}
		bSec, err := sr.next(blob, pos, secBinsB)
		if err != nil {
			return nil, nil, err
		}
		nLat, nLon := latLon(dims)
		cls, err := classify.UnpackMeta(metaSec, nLat*nLon)
		if err != nil {
			return nil, nil, corrupt(err)
		}
		a, err := decodeSymbolSectionWorkers(aSec, workers, vol)
		if err != nil {
			return nil, nil, err
		}
		b, err := decodeSymbolSectionWorkers(bSec, workers, vol)
		if err != nil {
			return nil, nil, err
		}
		colOf := columnIDs(dims, p.Perm)
		bins, err = classify.Merge(a, b, colOf, tvalid, cls)
		if err != nil {
			return nil, nil, corrupt(err)
		}
		classify.UnshiftBins(bins, colOf, tvalid, cls)
	} else {
		sec, err := sr.next(blob, pos, secBins)
		if err != nil {
			return nil, nil, err
		}
		syms, err := decodeSymbolSectionWorkers(sec, workers, vol)
		if err != nil {
			return nil, nil, err
		}
		bins = make([]int32, vol)
		si := 0
		for i := 0; i < vol; i++ {
			if tvalid != nil && !tvalid[i] {
				continue
			}
			if si >= len(syms) {
				return nil, nil, ErrCorrupt
			}
			bins[i] = int32(syms[si])
			si++
		}
		if si != len(syms) {
			return nil, nil, ErrCorrupt
		}
	}
	sp.EndFull(int64(*pos-binsStart), int64(len(bins))*4, int64(len(bins)), nil)
	sp = trace.Begin(c, "literals-decode")
	litSec, err := sr.next(blob, pos, secLiterals)
	if err != nil {
		return nil, nil, err
	}
	if !sr.done() {
		return nil, nil, ErrCorrupt
	}
	litBytes, err := lossless.Decode(litSec)
	if err != nil {
		return nil, nil, corrupt(err)
	}
	lits, err := bytesToFloat32s(litBytes)
	if err != nil {
		return nil, nil, err
	}
	sp.EndFull(int64(len(litSec)), int64(len(litBytes)), int64(len(lits)), nil)
	recName := "reconstruct"
	if h.psections > 1 {
		recName = "reconstruct-fanout"
	}
	sp = trace.Begin(c, recName)
	out := make([]float32, vol)
	if err := reconstructSections(bins, lits, lay, tvalid, h, workers, h.psections, c, out); err != nil {
		return nil, nil, corrupt(err)
	}
	sp.EndFull(int64(len(bins))*4, int64(len(out))*4, int64(len(out)), nil)
	if opt.BoundCheckEvery > 0 {
		sp = trace.Begin(c, "verify-bound")
		n, err := verifySections(bins, lits, lay, tvalid, h, workers, h.psections, opt.BoundCheckEvery, out)
		if err != nil {
			return nil, nil, fmt.Errorf("core: bound self-verification: %w", corrupt(err))
		}
		if opt.stats != nil {
			opt.stats.boundChecked.Add(int64(n))
		}
		sp.EndFull(int64(len(bins))*4, 0, int64(n), nil)
	}
	// Under the fused layout the reconstruction already sits in the original
	// array layout; the legacy path transposes back.
	if fused {
		return out, dims, nil
	}
	sp = trace.Begin(c, "unpermute")
	data, err := grid.TransposeWorkers(out, tdims, grid.InversePerm(p.Perm), workers)
	if err != nil {
		return nil, nil, corrupt(err)
	}
	sp.EndFull(int64(len(out))*4, int64(len(data))*4, int64(len(data)), nil)
	return data, dims, nil
}

// decodeSymbolSectionWorkers lossless-decodes and entropy-decodes one
// symbol section. maxSyms is the largest symbol count the caller can use
// (the unit volume); the entropy layer rejects declared counts beyond it
// before allocating. Sub-package errors are classified as corruption.
func decodeSymbolSectionWorkers(sec []byte, workers, maxSyms int) ([]uint32, error) {
	raw, err := lossless.Decode(sec)
	if err != nil {
		return nil, corrupt(err)
	}
	syms, err := entropy.DecodeBlockBounded(raw, workers, maxSyms)
	if err != nil {
		return nil, corrupt(err)
	}
	return syms, nil
}

// packBitmap bit-packs and flate-compresses a validity bitmap.
func packBitmap(v []bool) []byte {
	bits := make([]byte, (len(v)+7)/8)
	for i, ok := range v {
		if ok {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	return lossless.Encode(lossless.Flate{Level: 6}, bits)
}

func unpackBitmap(blob []byte, n int) ([]bool, error) {
	bits, err := lossless.Decode(blob)
	if err != nil {
		return nil, corrupt(err)
	}
	if len(bits) < (n+7)/8 {
		return nil, ErrCorrupt
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = bits[i/8]&(1<<(i%8)) != 0
	}
	return out, nil
}

func dimsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// latLon returns the trailing-two extents.
func latLon(dims []int) (int, int) {
	n := len(dims)
	if n < 2 {
		return 1, dims[n-1]
	}
	return dims[n-2], dims[n-1]
}

// columnIDs maps each point of the *transposed* layout to its original
// horizontal (lat, lon) column id.
func columnIDs(origDims, perm []int) []int32 {
	n := len(origDims)
	tdims := grid.PermuteDims(origDims, perm)
	vol := grid.Volume(origDims)
	out := make([]int32, vol)
	nLon := origDims[n-1]
	latAx, lonAx := n-2, n-1
	if n < 2 {
		latAx = -1
		lonAx = 0
	}
	co := make([]int, n)
	sc := make([]int, n)
	for i := 0; i < vol; i++ {
		for ax, p := range perm {
			sc[p] = co[ax]
		}
		lat := 0
		if latAx >= 0 {
			lat = sc[latAx]
		}
		out[i] = int32(lat*nLon + sc[lonAx])
		for ax := n - 1; ax >= 0; ax-- {
			co[ax]++
			if co[ax] < tdims[ax] {
				break
			}
			co[ax] = 0
		}
	}
	return out
}
