package core

import (
	"math"
	"math/rand"
	"testing"

	"cliz/internal/datagen"
	"cliz/internal/dataset"
	"cliz/internal/grid"
	"cliz/internal/mask"
	"cliz/internal/predict"
	"cliz/internal/stats"
)

// smallSSH returns a small periodic, masked dataset for fast tests.
func smallSSH() *dataset.Dataset { return datagen.SSH(0.08) }

func smallHurricane() *dataset.Dataset { return datagen.HurricaneT(0.06) }

func checkRoundTrip(t *testing.T, ds *dataset.Dataset, eb float64, p Pipeline) ([]float32, int) {
	t.Helper()
	blob, err := Compress(ds, eb, p, Options{})
	if err != nil {
		t.Fatalf("compress [%s]: %v", p, err)
	}
	got, dims, err := Decompress(blob)
	if err != nil {
		t.Fatalf("decompress [%s]: %v", p, err)
	}
	if !dimsEqual(dims, ds.Dims) {
		t.Fatalf("dims %v want %v", dims, ds.Dims)
	}
	valid := ds.Validity()
	if p.UseMask && valid != nil {
		if got := stats.MaxAbsErr(ds.Data, got, valid); got > eb*(1+1e-9) {
			t.Fatalf("[%s] masked error bound violated: %g > %g", p, got, eb)
		}
		for i, ok := range valid {
			if !ok && got[i] != ds.FillValue {
				t.Fatalf("[%s] masked point %d = %g, want fill", p, i, got[i])
			}
		}
	} else {
		if gotErr := stats.MaxAbsErr(ds.Data, got, nil); gotErr > eb*(1+1e-9) {
			t.Fatalf("[%s] error bound violated: %g > %g", p, gotErr, eb)
		}
	}
	return got, len(blob)
}

func TestRoundTripDefaultPipeline(t *testing.T) {
	ds := smallHurricane()
	eb := ds.AbsErrorBound(1e-3)
	checkRoundTrip(t, ds, eb, Default(ds))
}

func TestRoundTripAllPipelineVariants3D(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	for _, period := range []int{0, 12} {
		for _, cls := range []bool{false, true} {
			for _, useMask := range []bool{false, true} {
				for _, fit := range []predict.Fitting{predict.Linear, predict.Cubic} {
					p := Default(ds)
					p.Period = period
					p.Classify = cls
					p.UseMask = useMask
					p.Fitting = fit
					checkRoundTrip(t, ds, eb, p)
				}
			}
		}
	}
}

func TestRoundTripPermutationsAndFusions(t *testing.T) {
	ds := smallHurricane()
	eb := ds.AbsErrorBound(1e-2)
	for _, perm := range grid.Permutations(3) {
		p := Default(ds)
		p.Perm = perm
		checkRoundTrip(t, ds, eb, p)
	}
	for _, fus := range grid.Compositions(3) {
		p := Default(ds)
		p.Fusion = fus
		checkRoundTrip(t, ds, eb, p)
	}
}

func TestRoundTrip4D(t *testing.T) {
	ds := datagen.SOILLIQ(0.15)
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Period = 12
	p.Classify = true
	checkRoundTrip(t, ds, eb, p)
}

func TestRoundTrip2D(t *testing.T) {
	// A single horizontal slice.
	rng := rand.New(rand.NewSource(1))
	nLat, nLon := 40, 56
	data := make([]float32, nLat*nLon)
	for i := range data {
		data[i] = float32(math.Sin(float64(i%nLon)/9) + rng.NormFloat64()*0.01)
	}
	ds := &dataset.Dataset{Name: "slice", Data: data, Dims: []int{nLat, nLon}}
	checkRoundTrip(t, ds, 0.001, Default(ds))
}

func TestMaskImprovesRatioOnMaskedData(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	withMask := Default(ds)
	noMask := Default(ds)
	noMask.UseMask = false
	_, szMask := checkRoundTrip(t, ds, eb, withMask)
	_, szRaw := checkRoundTrip(t, ds, eb, noMask)
	if szMask >= szRaw {
		t.Fatalf("mask should shrink output: %d vs %d bytes", szMask, szRaw)
	}
}

func TestPeriodImprovesRatioOnPeriodicData(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	base := Default(ds)
	periodic := Default(ds)
	periodic.Period = 12
	_, szBase := checkRoundTrip(t, ds, eb, base)
	_, szPeriodic := checkRoundTrip(t, ds, eb, periodic)
	if szPeriodic >= szBase {
		t.Fatalf("periodic extraction should shrink output: %d vs %d bytes",
			szPeriodic, szBase)
	}
}

func TestPeriodicWithSeparatelyTunedTemplate(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Period = 12
	tp := Default(ds)
	tp.Fitting = predict.Linear
	p.Template = &tp
	checkRoundTrip(t, ds, eb, p)
}

func TestErrorBoundAcrossMagnitudes(t *testing.T) {
	ds := smallHurricane()
	for _, rel := range []float64{1e-1, 1e-2, 1e-3, 1e-4} {
		eb := ds.AbsErrorBound(rel)
		p := Default(ds)
		p.Classify = true
		checkRoundTrip(t, ds, eb, p)
	}
}

func TestCompressionIsDeterministic(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Period = 12
	p.Classify = true
	a, err := Compress(ds, eb, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compress(ds, eb, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("non-deterministic sizes: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at byte %d", i)
		}
	}
}

func TestCompressWithReconMatchesDecode(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Period = 12
	p.Classify = true
	blob, recon, err := CompressWithRecon(ds, eb, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != recon[i] {
			t.Fatalf("recon asymmetry at %d: %g vs %g", i, recon[i], got[i])
		}
	}
}

func TestInvalidInputs(t *testing.T) {
	ds := smallHurricane()
	p := Default(ds)
	if _, err := Compress(ds, 0, p, Options{}); err == nil {
		t.Fatal("zero eb accepted")
	}
	bad := p
	bad.Perm = []int{0, 0, 1}
	if _, err := Compress(ds, 1, bad, Options{}); err == nil {
		t.Fatal("invalid perm accepted")
	}
	bad = p
	bad.Fusion = grid.Fusion{Groups: []int{5}}
	if _, err := Compress(ds, 1, bad, Options{}); err == nil {
		t.Fatal("invalid fusion accepted")
	}
	bad = p
	bad.Template = &p
	if _, err := Compress(ds, 1, bad, Options{}); err == nil {
		t.Fatal("template without period accepted")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	ds := smallHurricane()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Classify = true
	blob, err := Compress(ds, eb, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decompress(nil); err == nil {
		t.Fatal("nil blob accepted")
	}
	if _, _, err := Decompress([]byte("BOGUSDATA")); err == nil {
		t.Fatal("bad magic accepted")
	}
	for _, cut := range []int{5, 20, len(blob) / 2, len(blob) - 3} {
		if _, _, err := Decompress(blob[:cut]); err == nil {
			t.Fatalf("truncated blob (%d bytes) accepted", cut)
		}
	}
	// Flipping the version byte must fail cleanly.
	bad := append([]byte(nil), blob...)
	bad[4] = 99
	if _, _, err := Decompress(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestColumnIDs(t *testing.T) {
	dims := []int{2, 3, 4} // (t, lat, lon): 12 columns
	ident := columnIDs(dims, []int{0, 1, 2})
	// In natural order the column id cycles through 0..11 per time step.
	for i, c := range ident {
		if int(c) != i%12 {
			t.Fatalf("identity colOf[%d] = %d want %d", i, c, i%12)
		}
	}
	// Under permutation (2,0,1): transposed dims (4,2,3); the point at
	// transposed coord (lon, t, lat) has column lat*4+lon.
	perm := []int{2, 0, 1}
	cols := columnIDs(dims, perm)
	tdims := grid.PermuteDims(dims, perm)
	co := make([]int, 3)
	for i, c := range cols {
		grid.Coord(i, tdims, co)
		lon, lat := co[0], co[2]
		if int(c) != lat*4+lon {
			t.Fatalf("perm colOf[%d] = %d want %d", i, c, lat*4+lon)
		}
	}
}

func TestBuildTemplateMath(t *testing.T) {
	// Two full periods of a known signal: template must be the mean.
	dims := []int{4, 1, 2}
	data := []float32{
		1, 10, // t0
		2, 20, // t1
		3, 30, // t2 (phase 0 again)
		4, 40, // t3
	}
	tmpl, tmplDims, _ := buildTemplate(data, dims, nil, 2, 0)
	if !dimsEqual(tmplDims, []int{2, 1, 2}) {
		t.Fatalf("template dims %v", tmplDims)
	}
	want := []float32{2, 20, 3, 30}
	for i := range want {
		if tmpl[i] != want[i] {
			t.Fatalf("tmpl[%d] = %g want %g", i, tmpl[i], want[i])
		}
	}
	res := subtractTemplate(data, tmpl, dims, 2, nil, 0)
	back := addTemplate(res, tmpl, dims, 2)
	for i := range data {
		if back[i] != data[i] {
			t.Fatalf("add/subtract not inverse at %d", i)
		}
	}
}

func TestBuildTemplateMasked(t *testing.T) {
	dims := []int{2, 1, 2}
	valid, err := mask.New(1, 2, []int32{1, 0}).Broadcast(dims)
	if err != nil {
		t.Fatal(err)
	}
	data := []float32{5, 999, 7, 999}
	tmpl, _, tmplValid := buildTemplate(data, dims, valid, 2, -1)
	if tmpl[0] != 5 || tmpl[2] != 7 {
		t.Fatalf("valid template wrong: %v", tmpl)
	}
	if tmpl[1] != -1 || tmpl[3] != -1 {
		t.Fatalf("masked template not filled: %v", tmpl)
	}
	want := []bool{true, false, true, false}
	for i := range want {
		if tmplValid[i] != want[i] {
			t.Fatalf("template validity %v", tmplValid)
		}
	}
}

func TestBuildTemplateInhomogeneousValidity(t *testing.T) {
	// Validity varying along time (as in concatenated tuner samples): the
	// phase mean must only use valid contributions.
	dims := []int{4, 1, 1}
	data := []float32{10, 99, 30, 20}
	valid := []bool{true, false, true, true}
	tmpl, _, tmplValid := buildTemplate(data, dims, valid, 2, -1)
	if tmpl[0] != 20 { // mean(10, 30)
		t.Fatalf("phase 0 mean = %g want 20", tmpl[0])
	}
	if tmpl[1] != 20 { // only t=3 contributes
		t.Fatalf("phase 1 mean = %g want 20", tmpl[1])
	}
	if !tmplValid[0] || !tmplValid[1] {
		t.Fatalf("validity %v", tmplValid)
	}
}

func TestDetectPeriodOnSSH(t *testing.T) {
	ds := smallSSH()
	if p := DetectPeriod(ds, 10); p != 12 {
		t.Fatalf("period = %d want 12", p)
	}
}

func TestDetectPeriodOnAperiodic(t *testing.T) {
	ds := smallHurricane()
	if p := DetectPeriod(ds, 10); p != 0 {
		t.Fatalf("aperiodic dataset got period %d", p)
	}
}

func TestPipelineString(t *testing.T) {
	p := Pipeline{
		Perm:     []int{2, 0, 1},
		Fusion:   grid.Fusion{Groups: []int{1, 2}},
		Fitting:  predict.Linear,
		Classify: true,
		UseMask:  true,
		Period:   12,
	}
	want := "period=12 mask classify perm=201 fuse=1&2 fit=Linear"
	if got := p.String(); got != want {
		t.Fatalf("String = %q want %q", got, want)
	}
}

func TestEnumeratePipelinesCounts(t *testing.T) {
	// Paper §VII-C2: SSH (periodic, 3D) has 192 pipelines; CESM-T has 96.
	tc := TuneConfig{MaxPipelines: 10000}
	if got := len(EnumeratePipelines(3, 12, true, tc)); got != 192 {
		t.Fatalf("periodic 3D pipelines = %d want 192", got)
	}
	if got := len(EnumeratePipelines(3, 0, false, tc)); got != 96 {
		t.Fatalf("aperiodic 3D pipelines = %d want 96", got)
	}
	// The cap must engage deterministically.
	capped := EnumeratePipelines(3, 12, true, TuneConfig{MaxPipelines: 50})
	if len(capped) > 50 {
		t.Fatalf("cap exceeded: %d", len(capped))
	}
}

func TestAutoTuneSSH(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	best, report, err := AutoTune(ds, eb, TuneConfig{SamplingRate: 0.05}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Period != 12 {
		t.Fatalf("tuner period = %d want 12", report.Period)
	}
	if best.Period != 12 {
		t.Fatalf("best pipeline should use periodicity, got %s", best)
	}
	if len(report.Candidates) < 96 {
		t.Fatalf("only %d candidates tested", len(report.Candidates))
	}
	// The tuned pipeline must round-trip and beat the default.
	_, szBest := checkRoundTrip(t, ds, eb, best)
	_, szDefault := checkRoundTrip(t, ds, eb, Default(ds))
	if szBest > szDefault {
		t.Fatalf("tuned pipeline worse than default: %d vs %d", szBest, szDefault)
	}
}

func TestAutoTuneRespectsDisables(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	_, report, err := AutoTune(ds, eb, TuneConfig{
		SamplingRate: 0.02, DisablePeriod: true, DisableClassify: true,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Period != 0 {
		t.Fatal("period detected despite DisablePeriod")
	}
	for _, c := range report.Candidates {
		if c.Pipe.Period != 0 || c.Pipe.Classify {
			t.Fatalf("disabled stage appeared in candidate %s", c.Pipe)
		}
	}
}

func TestAutoTuneDeterminism(t *testing.T) {
	ds := smallHurricane()
	eb := ds.AbsErrorBound(1e-2)
	a, _, err := AutoTune(ds, eb, TuneConfig{SamplingRate: 0.02}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := AutoTune(ds, eb, TuneConfig{SamplingRate: 0.02}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("tuner not deterministic: %s vs %s", a, b)
	}
}

func TestSampleConcatShape(t *testing.T) {
	ds := smallSSH()
	smp := sampleConcat(ds, 0.01, 12)
	total := grid.Volume(smp.dims)
	if total >= ds.Points()/2 {
		t.Fatalf("sample too large: %d of %d", total, ds.Points())
	}
	if total != len(smp.data) {
		t.Fatalf("dims %v inconsistent with data length %d", smp.dims, len(smp.data))
	}
	// Periodic samples must keep the time axis a multiple of the period
	// (phase alignment) and stack blocks along a spatial axis so each time
	// series stays coherent.
	if smp.dims[0]%12 != 0 {
		t.Fatalf("sample time extent %d not a multiple of the period", smp.dims[0])
	}
	if smp.dims[0] < 24 {
		t.Fatalf("sample time extent %d shorter than 2 periods", smp.dims[0])
	}
	if smp.dims[1]%8 != 0 {
		t.Fatalf("expected 8 blocks stacked along lat, dims %v", smp.dims)
	}
}

func TestSampleConcatMaskMatchesData(t *testing.T) {
	ds := smallSSH()
	smp := sampleConcat(ds, 0.05, 0)
	if smp.valid == nil {
		t.Fatal("masked dataset produced unmasked sample")
	}
	for i, ok := range smp.valid {
		isFill := smp.data[i] == ds.FillValue
		if ok && isFill {
			t.Fatal("sample says valid but data holds fill")
		}
		if !ok && !isFill {
			t.Fatal("sample says invalid but data holds a value")
		}
	}
}

func TestSampleConcatFullRate(t *testing.T) {
	ds := smallHurricane()
	smp := sampleConcat(ds, 1.0, 0)
	if grid.Volume(smp.dims) != ds.Points() {
		t.Fatal("rate 1 should use the whole dataset")
	}
}

func TestLorenzoFittingRoundTrip(t *testing.T) {
	ds := smallHurricane()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Fitting = predict.Lorenzo
	checkRoundTrip(t, ds, eb, p)
	// With classification and a mask too.
	ssh := smallSSH()
	p2 := Default(ssh)
	p2.Fitting = predict.Lorenzo
	p2.Classify = true
	checkRoundTrip(t, ssh, ssh.AbsErrorBound(1e-2), p2)
}

func TestEnumerateWithLorenzo(t *testing.T) {
	tc := TuneConfig{MaxPipelines: 10000, EnableLorenzo: true}
	if got := len(EnumeratePipelines(3, 0, false, tc)); got != 144 {
		t.Fatalf("lorenzo-extended 3D pipelines = %d want 144", got)
	}
}
