package core

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// requireCleanError asserts the decoder contract on hostile input: a
// decode entry point either succeeds or returns an error classifiable as
// ErrCorrupt via errors.Is — never a panic, never an unwrapped error.
func requireCleanError(t *testing.T, op string, err error) {
	t.Helper()
	if err != nil && !errors.Is(err, ErrCorrupt) {
		t.Errorf("%s: error not classifiable as ErrCorrupt: %v", op, err)
	}
}

// TestFuzzCorpusSeeds strengthens TestFuzzCorpus (which only requires
// "no panic") into the full decoder-hardening contract: every checked-in
// fuzz corpus seed is run through every decode entry point, and each
// must either succeed or return an error wrapping ErrCorrupt so callers
// can classify damage with errors.Is. This is the table-driven face of
// the same contract cmd/clizlint enforces statically.
func TestFuzzCorpusSeeds(t *testing.T) {
	dir := fuzzCorpusDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read corpus dir: %v", err)
	}
	const minSeeds = 18
	if len(entries) < minSeeds {
		t.Fatalf("fuzz corpus shrank: %d seeds < %d", len(entries), minSeeds)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			blob, err := parseCorpusEntry(string(raw))
			if err != nil {
				t.Fatalf("seed %s: %v", e.Name(), err)
			}
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on seed %s: %v", e.Name(), r)
				}
			}()
			_, _, err = Decompress(blob)
			requireCleanError(t, "Decompress", err)
			if IsChunked(blob) {
				_, _, err = DecompressChunked(blob, 2)
				requireCleanError(t, "DecompressChunked", err)
			}
			_, _, _, err = DecompressVerified(blob, DecompressOptions{})
			requireCleanError(t, "DecompressVerified", err)
			_, _, rep, err := DecompressPartial(blob, DecompressOptions{})
			requireCleanError(t, "DecompressPartial", err)
			if err == nil && rep == nil {
				t.Error("DecompressPartial: nil report without error")
			}
			// Verify never errors; it must not panic and must always
			// produce a structured report.
			if rep := Verify(blob); rep == nil || rep.Kind == "" {
				t.Error("Verify: missing or kindless report")
			}
			if _, err := Inspect(blob); err != nil {
				requireCleanError(t, "Inspect", err)
			}
		})
	}
}
