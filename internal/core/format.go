package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"cliz/internal/grid"
	"cliz/internal/predict"
)

// Blob layout (all integers varint unless noted):
//
//	magic "CLZ1" | version 1|2 | flags | eb float64 | fill float32 | radius
//	ndims | dims... | perm bytes | fusion group count | groups... | period
//	level alpha float64 | psections (version 2 only; v1 implies 1)
//	sections (each uvarint length + payload), in order:
//	  mask        (flagMask)
//	  template    (flagPeriodic; nested full blob)
//	  residual    (flagPeriodic; nested full blob)  — periodic blobs stop here
//	  meta        (flagClassify)
//	  streamA     (always for unit blobs; the single stream when !classify)
//	  streamB     (flagClassify)
//	  literals    (always for unit blobs)
//
// psections is the number of contiguous predict/reconstruct sections the
// fused leading dimension was cut into at encode time; the decoder replays
// the same partition (possibly in parallel), so decode output never depends
// on the decode-side worker count. Version 2 writers may also emit sharded
// entropy blocks (entropy.Sharded) inside streamA/streamB; v1 readers would
// reject those, which is why emitting them bumps the version.
const (
	magic    = "CLZ1"
	version1 = 1
	version2 = 2
)

const (
	flagMask byte = 1 << iota
	flagClassify
	flagCubic
	flagPeriodic
	// flagPointMask marks an arbitrary per-point validity bitmap instead of
	// a horizontal mask-map (used for the tuner's concatenated samples).
	flagPointMask
	// flagLorenzo selects the Lorenzo predictor (overrides flagCubic).
	flagLorenzo
)

// ErrCorrupt reports a malformed CliZ blob.
var ErrCorrupt = errors.New("core: corrupt CliZ blob")

type header struct {
	flags  byte
	eb     float64
	fill   float32
	radius int32
	dims   []int
	pipe   Pipeline
	// psections is the predict-section count recorded in v2 blobs (always 1
	// for v1). It partitions the fused leading dimension for parallel
	// prediction/reconstruction.
	psections int
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func readUvarint(src []byte, pos *int) (uint64, error) {
	v, n := binary.Uvarint(src[*pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	*pos += n
	return v, nil
}

func appendSection(dst, payload []byte) []byte {
	dst = appendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

func readSection(src []byte, pos *int) ([]byte, error) {
	l, err := readUvarint(src, pos)
	if err != nil {
		return nil, err
	}
	if uint64(*pos)+l > uint64(len(src)) {
		return nil, ErrCorrupt
	}
	out := src[*pos : *pos+int(l)]
	*pos += int(l)
	return out, nil
}

func encodeHeader(h header) []byte {
	out := make([]byte, 0, 64)
	out = append(out, magic...)
	out = append(out, version2)
	out = append(out, h.flags)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(h.eb))
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint32(b8[:4], math.Float32bits(h.fill))
	out = append(out, b8[:4]...)
	out = appendUvarint(out, uint64(h.radius))
	out = appendUvarint(out, uint64(len(h.dims)))
	for _, d := range h.dims {
		out = appendUvarint(out, uint64(d))
	}
	for _, p := range h.pipe.Perm {
		out = append(out, byte(p))
	}
	out = appendUvarint(out, uint64(len(h.pipe.Fusion.Groups)))
	for _, g := range h.pipe.Fusion.Groups {
		out = append(out, byte(g))
	}
	out = appendUvarint(out, uint64(h.pipe.Period))
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(h.pipe.LevelAlpha))
	out = append(out, b8[:]...)
	out = appendUvarint(out, uint64(h.psections))
	return out
}

func parseHeader(src []byte, pos *int) (header, error) {
	var h header
	if len(src)-*pos < len(magic)+2 {
		return h, ErrCorrupt
	}
	if string(src[*pos:*pos+4]) != magic {
		return h, fmt.Errorf("core: bad magic: %w", ErrCorrupt)
	}
	*pos += 4
	ver := src[*pos]
	if ver != version1 && ver != version2 {
		return h, fmt.Errorf("core: unsupported version %d: %w", ver, ErrCorrupt)
	}
	*pos++
	h.flags = src[*pos]
	*pos++
	if len(src)-*pos < 12 {
		return h, ErrCorrupt
	}
	h.eb = math.Float64frombits(binary.LittleEndian.Uint64(src[*pos:]))
	*pos += 8
	h.fill = math.Float32frombits(binary.LittleEndian.Uint32(src[*pos:]))
	*pos += 4
	if h.eb <= 0 || math.IsNaN(h.eb) || math.IsInf(h.eb, 0) {
		return h, fmt.Errorf("core: invalid error bound %g: %w", h.eb, ErrCorrupt)
	}
	r, err := readUvarint(src, pos)
	if err != nil || r > 1<<30 {
		return h, ErrCorrupt
	}
	h.radius = int32(r)
	nd, err := readUvarint(src, pos)
	if err != nil || nd < 1 || nd > 8 {
		return h, ErrCorrupt
	}
	h.dims = make([]int, nd)
	vol := 1
	for i := range h.dims {
		d, err := readUvarint(src, pos)
		if err != nil || d == 0 || d > 1<<31 {
			return h, ErrCorrupt
		}
		h.dims[i] = int(d)
		// Overflow-safe: vol*d can wrap past 1<<64 and sneak under the cap.
		if int(d) > (1<<33)/vol {
			return h, fmt.Errorf("core: volume too large: %w", ErrCorrupt)
		}
		vol *= int(d)
	}
	if len(src)-*pos < int(nd) {
		return h, ErrCorrupt
	}
	h.pipe.Perm = make([]int, nd)
	for i := range h.pipe.Perm {
		h.pipe.Perm[i] = int(src[*pos])
		*pos++
	}
	if !grid.ValidPerm(h.pipe.Perm, int(nd)) {
		return h, ErrCorrupt
	}
	ng, err := readUvarint(src, pos)
	if err != nil || ng == 0 || ng > nd {
		return h, ErrCorrupt
	}
	if len(src)-*pos < int(ng) {
		return h, ErrCorrupt
	}
	h.pipe.Fusion.Groups = make([]int, ng)
	for i := range h.pipe.Fusion.Groups {
		h.pipe.Fusion.Groups[i] = int(src[*pos])
		*pos++
	}
	if !h.pipe.Fusion.Valid(int(nd)) {
		return h, ErrCorrupt
	}
	p, err := readUvarint(src, pos)
	if err != nil || p > uint64(h.dims[0]) {
		return h, ErrCorrupt
	}
	h.pipe.Period = int(p)
	if len(src)-*pos < 8 {
		return h, ErrCorrupt
	}
	h.pipe.LevelAlpha = math.Float64frombits(binary.LittleEndian.Uint64(src[*pos:]))
	*pos += 8
	if h.pipe.LevelAlpha < 0 || math.IsNaN(h.pipe.LevelAlpha) || h.pipe.LevelAlpha > 1e6 {
		return h, ErrCorrupt
	}
	h.psections = 1
	if ver >= version2 {
		// Sections partition the fused leading dimension, so the count can
		// never exceed that extent.
		lead := 1
		for j := 0; j < h.pipe.Fusion.Groups[0]; j++ {
			lead *= h.dims[h.pipe.Perm[j]]
		}
		ps, err := readUvarint(src, pos)
		if err != nil || ps == 0 || ps > uint64(lead) {
			return h, ErrCorrupt
		}
		h.psections = int(ps)
	}
	h.pipe.UseMask = h.flags&(flagMask|flagPointMask) != 0
	h.pipe.Classify = h.flags&flagClassify != 0
	switch {
	case h.flags&flagLorenzo != 0:
		h.pipe.Fitting = predict.Lorenzo
	case h.flags&flagCubic != 0:
		h.pipe.Fitting = predict.Cubic
	default:
		h.pipe.Fitting = predict.Linear
	}
	return h, nil
}

func float32sToBytes(xs []float32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

func bytesToFloat32s(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, ErrCorrupt
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}
