package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"cliz/internal/grid"
	"cliz/internal/predict"
)

// Blob layout (all integers varint unless noted):
//
//	magic "CLZ1" | version 1|2|3 | flags | eb float64 | fill float32 | radius
//	ndims | dims... | perm bytes | fusion group count | groups... | period
//	level alpha float64 | psections (version >= 2; v1 implies 1)
//	section directory (version 3 only):
//	  nsections | per section: id byte + CRC-32C uint32 LE of the payload
//	  | CRC-32C uint32 LE over every header+directory byte so far
//	sections (each uvarint length + payload), in order:
//	  mask        (flagMask)
//	  template    (flagPeriodic; nested full blob)
//	  residual    (flagPeriodic; nested full blob)  — periodic blobs stop here
//	  meta        (flagClassify)
//	  streamA     (always for unit blobs; the single stream when !classify)
//	  streamB     (flagClassify)
//	  literals    (always for unit blobs)
//
// psections is the number of contiguous predict/reconstruct sections the
// fused leading dimension was cut into at encode time; the decoder replays
// the same partition (possibly in parallel), so decode output never depends
// on the decode-side worker count. Version 2 writers may also emit sharded
// entropy blocks (entropy.Sharded) inside streamA/streamB; v1 readers would
// reject those, which is why emitting them bumps the version.
//
// Version 3 adds integrity: the header and directory are covered by one
// CRC-32C (Castagnoli), and every section payload by its own, so any
// single-byte corruption anywhere in the blob is detected and attributed to
// a named section before its bytes are interpreted. v1/v2 blobs carry no
// directory and still decode bit-exactly.
const (
	magic    = "CLZ1"
	version1 = 1
	version2 = 2
	version3 = 3
)

// crcTable is the Castagnoli (CRC-32C) table shared by all integrity checks.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Section ids of the v3 directory. The id makes the directory
// self-describing: a verifier can name a damaged section without trusting
// the flag logic that ordered it.
const (
	secMask byte = iota
	secTemplate
	secResidual
	secClassMeta
	secBinsA
	secBinsB
	secBins
	secLiterals
	numSectionIDs
)

var sectionNames = [numSectionIDs]string{
	"mask", "template", "residual", "class-meta", "bins-A", "bins-B", "bins", "literals",
}

func sectionName(id byte) string {
	if int(id) < len(sectionNames) {
		return sectionNames[id]
	}
	return fmt.Sprintf("section-%d", id)
}

// Hard resource caps for untrusted input. A hostile header must not be able
// to trigger allocations the payload cannot plausibly back.
const (
	// maxSections bounds the v3 directory (real blobs need at most 5).
	maxSections = 16
	// maxDecodeVolume caps the point count a single blob may declare at
	// decode time (format-level parsing allows more; Inspect stays cheap).
	maxDecodeVolume = 1 << 31
	// maxPointsPerByte caps declared points per remaining payload byte. The
	// densest legitimate encodings (near-constant or almost fully masked
	// fields: ~1 bit/point Huffman then ~1000x flate) stay under ~8k
	// points/byte, so 64k leaves an 8x margin while capping a 40-byte
	// hostile header to a few-MB allocation instead of gigabytes.
	maxPointsPerByte = 1 << 16
)

const (
	flagMask byte = 1 << iota
	flagClassify
	flagCubic
	flagPeriodic
	// flagPointMask marks an arbitrary per-point validity bitmap instead of
	// a horizontal mask-map (used for the tuner's concatenated samples).
	flagPointMask
	// flagLorenzo selects the Lorenzo predictor (overrides flagCubic).
	flagLorenzo
)

// ErrCorrupt reports a malformed CliZ blob.
var ErrCorrupt = errors.New("core: corrupt CliZ blob")

// ErrChecksum reports a v3 integrity-checksum mismatch. It wraps ErrCorrupt,
// so errors.Is(err, ErrCorrupt) remains true for all corruption classes.
var ErrChecksum = fmt.Errorf("checksum mismatch: %w", ErrCorrupt)

// SectionError attributes a decode failure to a named blob section.
type SectionError struct {
	Section string
	Err     error
}

func (e *SectionError) Error() string {
	return fmt.Sprintf("core: section %q: %v", e.Section, e.Err)
}

func (e *SectionError) Unwrap() error { return e.Err }

// corrupt classifies a decode-path failure from a sub-package (entropy,
// interp, lorenzo, mask, lossless, grid, ...) as blob corruption: the
// returned error wraps both the original error and ErrCorrupt, so callers
// can match either the specific sub-package sentinel or the umbrella
// errors.Is(err, ErrCorrupt) contract. nil and already-classified errors
// pass through unchanged.
func corrupt(err error) error {
	if err == nil || errors.Is(err, ErrCorrupt) {
		return err
	}
	return fmt.Errorf("%w: %w", ErrCorrupt, err)
}

// dirEntry is one v3 section-directory record.
type dirEntry struct {
	id  byte
	crc uint32
}

type header struct {
	version byte
	flags   byte
	eb      float64
	fill    float32
	radius  int32
	dims    []int
	pipe    Pipeline
	// psections is the predict-section count recorded in v2+ blobs (always 1
	// for v1). It partitions the fused leading dimension for parallel
	// prediction/reconstruction.
	psections int
	// secs is the v3 section directory (nil for v1/v2 blobs).
	secs []dirEntry
	// integrityBytes counts the directory + checksum bytes a v3 header
	// spends on integrity (0 for v1/v2).
	integrityBytes int
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func readUvarint(src []byte, pos *int) (uint64, error) {
	v, n := binary.Uvarint(src[*pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	*pos += n
	return v, nil
}

func appendSection(dst, payload []byte) []byte {
	dst = appendUvarint(dst, uint64(len(payload)))
	return append(dst, payload...)
}

func readSection(src []byte, pos *int) ([]byte, error) {
	l, err := readUvarint(src, pos)
	if err != nil {
		return nil, err
	}
	if uint64(*pos)+l > uint64(len(src)) {
		return nil, ErrCorrupt
	}
	out := src[*pos : *pos+int(l)]
	*pos += int(l)
	return out, nil
}

func encodeHeader(h header) []byte {
	ver := h.version
	if ver == 0 {
		ver = version3
	}
	out := make([]byte, 0, 64)
	out = append(out, magic...)
	out = append(out, ver)
	out = append(out, h.flags)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(h.eb))
	out = append(out, b8[:]...)
	binary.LittleEndian.PutUint32(b8[:4], math.Float32bits(h.fill))
	out = append(out, b8[:4]...)
	out = appendUvarint(out, uint64(h.radius))
	out = appendUvarint(out, uint64(len(h.dims)))
	for _, d := range h.dims {
		out = appendUvarint(out, uint64(d))
	}
	for _, p := range h.pipe.Perm {
		out = append(out, byte(p))
	}
	out = appendUvarint(out, uint64(len(h.pipe.Fusion.Groups)))
	for _, g := range h.pipe.Fusion.Groups {
		out = append(out, byte(g))
	}
	out = appendUvarint(out, uint64(h.pipe.Period))
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(h.pipe.LevelAlpha))
	out = append(out, b8[:]...)
	out = appendUvarint(out, uint64(h.psections))
	return out
}

// blobWriter assembles a v3 blob: header fields, the integrity directory
// (section id + payload CRC-32C per section, then one CRC-32C over every
// header and directory byte), and the section payloads.
type blobWriter struct {
	h    header
	ids  []byte
	secs [][]byte
}

func (w *blobWriter) add(id byte, payload []byte) {
	w.ids = append(w.ids, id)
	w.secs = append(w.secs, payload)
}

func (w *blobWriter) bytes() []byte {
	w.h.version = version3
	out := encodeHeader(w.h)
	total := len(out) + 1 + 5*len(w.ids) + 4
	for _, s := range w.secs {
		total += binary.MaxVarintLen64 + len(s)
	}
	buf := make([]byte, 0, total)
	buf = append(buf, out...)
	buf = appendUvarint(buf, uint64(len(w.ids)))
	var b4 [4]byte
	for i, id := range w.ids {
		buf = append(buf, id)
		binary.LittleEndian.PutUint32(b4[:], crc32.Checksum(w.secs[i], crcTable))
		buf = append(buf, b4[:]...)
	}
	binary.LittleEndian.PutUint32(b4[:], crc32.Checksum(buf, crcTable))
	buf = append(buf, b4[:]...)
	for _, s := range w.secs {
		buf = appendSection(buf, s)
	}
	return buf
}

// sectionReader walks the sections of one parsed blob in order. For v3
// headers every read cross-checks the expected section id and the payload
// CRC-32C against the directory before the bytes are handed out; v1/v2
// headers degrade to a plain framed read.
type sectionReader struct {
	h   *header
	idx int
}

func (r *sectionReader) next(src []byte, pos *int, id byte) ([]byte, error) {
	sec, err := readSection(src, pos)
	if err != nil {
		return nil, &SectionError{Section: sectionName(id), Err: err}
	}
	if r.h.version >= version3 {
		if r.idx >= len(r.h.secs) {
			return nil, &SectionError{Section: sectionName(id),
				Err: fmt.Errorf("section %d beyond %d-entry directory: %w", r.idx, len(r.h.secs), ErrCorrupt)}
		}
		ent := r.h.secs[r.idx]
		if ent.id != id {
			return nil, &SectionError{Section: sectionName(id),
				Err: fmt.Errorf("directory lists %q here: %w", sectionName(ent.id), ErrCorrupt)}
		}
		// The framing and directory entry line up, so the walk can continue
		// past a payload-checksum failure: advance before the CRC check.
		r.idx++
		if got := crc32.Checksum(sec, crcTable); got != ent.crc {
			return nil, &SectionError{Section: sectionName(id), Err: ErrChecksum}
		}
		return sec, nil
	}
	r.idx++
	return sec, nil
}

// done reports whether every directory entry was consumed (always true for
// v1/v2 blobs, which carry no directory).
func (r *sectionReader) done() bool {
	return r.h.version < version3 || r.idx == len(r.h.secs)
}

func parseHeader(src []byte, pos *int) (header, error) {
	var h header
	start := *pos
	if len(src)-*pos < len(magic)+2 {
		return h, ErrCorrupt
	}
	if string(src[*pos:*pos+4]) != magic {
		return h, fmt.Errorf("core: bad magic: %w", ErrCorrupt)
	}
	*pos += 4
	ver := src[*pos]
	if ver != version1 && ver != version2 && ver != version3 {
		return h, fmt.Errorf("core: unsupported version %d: %w", ver, ErrCorrupt)
	}
	h.version = ver
	*pos++
	h.flags = src[*pos]
	*pos++
	if len(src)-*pos < 12 {
		return h, ErrCorrupt
	}
	h.eb = math.Float64frombits(binary.LittleEndian.Uint64(src[*pos:]))
	*pos += 8
	h.fill = math.Float32frombits(binary.LittleEndian.Uint32(src[*pos:]))
	*pos += 4
	if h.eb <= 0 || math.IsNaN(h.eb) || math.IsInf(h.eb, 0) {
		return h, fmt.Errorf("core: invalid error bound %g: %w", h.eb, ErrCorrupt)
	}
	r, err := readUvarint(src, pos)
	if err != nil || r > 1<<30 {
		return h, ErrCorrupt
	}
	h.radius = int32(r)
	nd, err := readUvarint(src, pos)
	if err != nil || nd < 1 || nd > 8 {
		return h, ErrCorrupt
	}
	h.dims = make([]int, nd)
	vol := 1
	for i := range h.dims {
		d, err := readUvarint(src, pos)
		if err != nil || d == 0 || d > 1<<31 {
			return h, ErrCorrupt
		}
		h.dims[i] = int(d)
		// Overflow-safe: vol*d can wrap past 1<<64 and sneak under the cap.
		if int(d) > (1<<33)/vol {
			return h, fmt.Errorf("core: volume too large: %w", ErrCorrupt)
		}
		vol *= int(d)
	}
	if len(src)-*pos < int(nd) {
		return h, ErrCorrupt
	}
	h.pipe.Perm = make([]int, nd)
	for i := range h.pipe.Perm {
		h.pipe.Perm[i] = int(src[*pos])
		*pos++
	}
	if !grid.ValidPerm(h.pipe.Perm, int(nd)) {
		return h, ErrCorrupt
	}
	ng, err := readUvarint(src, pos)
	if err != nil || ng == 0 || ng > nd {
		return h, ErrCorrupt
	}
	if len(src)-*pos < int(ng) {
		return h, ErrCorrupt
	}
	h.pipe.Fusion.Groups = make([]int, ng)
	for i := range h.pipe.Fusion.Groups {
		h.pipe.Fusion.Groups[i] = int(src[*pos])
		*pos++
	}
	if !h.pipe.Fusion.Valid(int(nd)) {
		return h, ErrCorrupt
	}
	p, err := readUvarint(src, pos)
	if err != nil || p > uint64(h.dims[0]) {
		return h, ErrCorrupt
	}
	h.pipe.Period = int(p)
	if len(src)-*pos < 8 {
		return h, ErrCorrupt
	}
	h.pipe.LevelAlpha = math.Float64frombits(binary.LittleEndian.Uint64(src[*pos:]))
	*pos += 8
	if h.pipe.LevelAlpha < 0 || math.IsNaN(h.pipe.LevelAlpha) || h.pipe.LevelAlpha > 1e6 {
		return h, ErrCorrupt
	}
	h.psections = 1
	if ver >= version2 {
		// Sections partition the fused leading dimension, so the count can
		// never exceed that extent.
		lead := 1
		for j := 0; j < h.pipe.Fusion.Groups[0]; j++ {
			lead *= h.dims[h.pipe.Perm[j]]
		}
		ps, err := readUvarint(src, pos)
		if err != nil || ps == 0 || ps > uint64(lead) {
			return h, ErrCorrupt
		}
		h.psections = int(ps)
	}
	if ver >= version3 {
		dirStart := *pos
		ns, err := readUvarint(src, pos)
		if err != nil || ns > maxSections {
			return h, fmt.Errorf("core: section directory: %w", ErrCorrupt)
		}
		if len(src)-*pos < int(ns)*5+4 {
			return h, fmt.Errorf("core: section directory truncated: %w", ErrCorrupt)
		}
		h.secs = make([]dirEntry, ns)
		for i := range h.secs {
			id := src[*pos]
			if id >= numSectionIDs {
				return h, fmt.Errorf("core: unknown section id %d: %w", id, ErrCorrupt)
			}
			h.secs[i] = dirEntry{id: id, crc: binary.LittleEndian.Uint32(src[*pos+1:])}
			*pos += 5
		}
		// One CRC covers header fields and directory together, so a flip in
		// the directory itself (count, ids, per-section CRCs) is caught here
		// and never mis-frames the section parse.
		want := binary.LittleEndian.Uint32(src[*pos:])
		if got := crc32.Checksum(src[start:*pos], crcTable); got != want {
			return h, &SectionError{Section: "header", Err: ErrChecksum}
		}
		*pos += 4
		h.integrityBytes = *pos - dirStart
	}
	h.pipe.UseMask = h.flags&(flagMask|flagPointMask) != 0
	h.pipe.Classify = h.flags&flagClassify != 0
	switch {
	case h.flags&flagLorenzo != 0:
		h.pipe.Fitting = predict.Lorenzo
	case h.flags&flagCubic != 0:
		h.pipe.Fitting = predict.Cubic
	default:
		h.pipe.Fitting = predict.Linear
	}
	return h, nil
}

func float32sToBytes(xs []float32) []byte {
	out := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(out[4*i:], math.Float32bits(x))
	}
	return out
}

func bytesToFloat32s(b []byte) ([]float32, error) {
	if len(b)%4 != 0 {
		return nil, ErrCorrupt
	}
	out := make([]float32, len(b)/4)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out, nil
}
