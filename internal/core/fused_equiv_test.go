package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"cliz/internal/datagen"
	"cliz/internal/dataset"
	"cliz/internal/entropy"
	"cliz/internal/grid"
	"cliz/internal/mask"
	"cliz/internal/predict"
)

// equivDataset builds a deterministic smooth-ish field over dims, optionally
// with a mask over the trailing two (or one) dimensions, so every
// permutation and fusion of the shape is exercised with both validity
// representations.
func equivDataset(dims []int, masked bool, seed int64) *dataset.Dataset {
	rng := rand.New(rand.NewSource(seed))
	vol := grid.Volume(dims)
	data := make([]float32, vol)
	for i := range data {
		data[i] = float32(i%17)*0.5 + float32(rng.NormFloat64())*0.1
	}
	ds := &dataset.Dataset{
		Name:      fmt.Sprintf("fused-equiv-%v", dims),
		Data:      data,
		Dims:      dims,
		FillValue: datagen.FillValue,
	}
	if masked {
		nLat, nLon := 1, dims[len(dims)-1]
		if len(dims) >= 2 {
			nLat = dims[len(dims)-2]
		}
		regions := make([]int32, nLat*nLon)
		for i := range regions {
			if i%4 == 0 {
				regions[i] = 0
			} else {
				regions[i] = 1
			}
		}
		m := mask.New(nLat, nLon, regions)
		ds.Mask = m
		valid := ds.Validity()
		for i, ok := range valid {
			if !ok {
				ds.Data[i] = datagen.FillValue
			}
		}
	}
	return ds
}

// checkFusedEquivalence runs one pipeline through the fused path and the
// forced-materialized path on both sides of the codec and requires
// bit-identical blobs, recons, and decodes. This is the gate the tentpole
// rides on: the fused index arithmetic must be observationally invisible.
func checkFusedEquivalence(t *testing.T, ds *dataset.Dataset, eb float64, p Pipeline, opt Options) {
	t.Helper()
	legacy := opt
	legacy.MaterializedPermute = true
	fblob, frecon, err := CompressWithRecon(ds, eb, p, opt)
	if err != nil {
		t.Fatalf("fused compress [%s]: %v", p, err)
	}
	lblob, lrecon, err := CompressWithRecon(ds, eb, p, legacy)
	if err != nil {
		t.Fatalf("legacy compress [%s]: %v", p, err)
	}
	if !bytes.Equal(fblob, lblob) {
		t.Fatalf("[%s] fused and materialized blobs differ: %d vs %d bytes", p, len(fblob), len(lblob))
	}
	if !bytes.Equal(floatsToBytes(frecon), floatsToBytes(lrecon)) {
		t.Fatalf("[%s] fused and materialized compress-side recons differ", p)
	}
	fdec, fdims, err := DecompressWithOptions(fblob, DecompressOptions{})
	if err != nil {
		t.Fatalf("fused decode [%s]: %v", p, err)
	}
	ldec, ldims, err := DecompressWithOptions(fblob, DecompressOptions{MaterializedPermute: true})
	if err != nil {
		t.Fatalf("legacy decode [%s]: %v", p, err)
	}
	if !dimsEqual(fdims, ds.Dims) || !dimsEqual(ldims, ds.Dims) {
		t.Fatalf("[%s] decoded dims %v / %v, want %v", p, fdims, ldims, ds.Dims)
	}
	if !bytes.Equal(floatsToBytes(fdec), floatsToBytes(ldec)) {
		t.Fatalf("[%s] fused and materialized decodes differ", p)
	}
	if !bytes.Equal(floatsToBytes(fdec), floatsToBytes(frecon)) {
		t.Fatalf("[%s] decode differs from compress-side recon", p)
	}
}

// TestFusedMatchesMaterializedProperty sweeps every permutation and fusion
// of rank-2 and rank-3 shapes across all three predictors, masked and
// unmasked. Any divergence found here should be minimized and promoted to
// regression_test.go.
func TestFusedMatchesMaterializedProperty(t *testing.T) {
	shapes := [][]int{{8, 7}, {6, 5, 4}}
	for si, dims := range shapes {
		n := len(dims)
		for _, masked := range []bool{false, true} {
			ds := equivDataset(dims, masked, int64(100+si))
			eb := ds.AbsErrorBound(1e-2)
			for _, perm := range grid.Permutations(n) {
				for _, f := range grid.Compositions(n) {
					for _, fit := range []predict.Fitting{predict.Cubic, predict.Linear, predict.Lorenzo} {
						p := Default(ds)
						p.Perm = perm
						p.Fusion = f
						p.Fitting = fit
						p.UseMask = masked
						checkFusedEquivalence(t, ds, eb, p, Options{})
					}
				}
			}
		}
	}
}

// TestFusedMatchesMaterializedPipelineFeatures covers the pipeline features
// the plain sweep leaves out: classification, periodic extraction, rANS and
// interleaved-rANS entropy, and multi-worker sectioned prediction (with the
// section floor lowered so small fixtures actually section).
func TestFusedMatchesMaterializedPipelineFeatures(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)

	t.Run("classify", func(t *testing.T) {
		p := Default(ds)
		p.Perm = []int{1, 0, 2}
		p.Classify = true
		checkFusedEquivalence(t, ds, eb, p, Options{})
	})
	t.Run("periodic", func(t *testing.T) {
		p := Default(ds)
		p.Period = 12
		p.Classify = true
		checkFusedEquivalence(t, ds, eb, p, Options{})
	})
	t.Run("rans", func(t *testing.T) {
		p := Default(ds)
		p.Perm = []int{2, 0, 1}
		checkFusedEquivalence(t, ds, eb, p, Options{Entropy: entropy.RANS})
	})
	t.Run("rans-interleaved", func(t *testing.T) {
		p := Default(ds)
		p.Perm = []int{2, 0, 1}
		checkFusedEquivalence(t, ds, eb, p, Options{Entropy: entropy.RANSInterleaved})
	})
	t.Run("workers-sectioned", func(t *testing.T) {
		p := Default(ds)
		p.Perm = []int{1, 2, 0}
		checkFusedEquivalence(t, ds, eb, p, Options{Workers: 3, sectionLeadFloor: 4})
	})
	t.Run("workers-sectioned-lorenzo", func(t *testing.T) {
		p := Default(ds)
		p.Fitting = predict.Lorenzo
		checkFusedEquivalence(t, ds, eb, p, Options{Workers: 3, sectionLeadFloor: 4})
	})
}

// TestFusedMatchesMaterializedChunked covers the CLZP chunked container:
// per-chunk blobs must be identical between the fused and materialized
// paths, so the container bytes must match end to end.
func TestFusedMatchesMaterializedChunked(t *testing.T) {
	ds := equivDataset([]int{12, 6, 5}, true, 7)
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Perm = []int{1, 0, 2}
	p.UseMask = true

	fblob, err := CompressChunked(ds, eb, p, Options{}, 3, 2)
	if err != nil {
		t.Fatalf("fused chunked compress: %v", err)
	}
	lblob, err := CompressChunked(ds, eb, p, Options{MaterializedPermute: true}, 3, 2)
	if err != nil {
		t.Fatalf("legacy chunked compress: %v", err)
	}
	if !bytes.Equal(fblob, lblob) {
		t.Fatalf("chunked container differs: %d vs %d bytes", len(fblob), len(lblob))
	}
	fdec, _, err := DecompressChunkedOpts(fblob, 2, DecompressOptions{})
	if err != nil {
		t.Fatalf("fused chunked decode: %v", err)
	}
	ldec, _, err := DecompressChunkedOpts(fblob, 2, DecompressOptions{MaterializedPermute: true})
	if err != nil {
		t.Fatalf("legacy chunked decode: %v", err)
	}
	if !bytes.Equal(floatsToBytes(fdec), floatsToBytes(ldec)) {
		t.Fatal("chunked fused and materialized decodes differ")
	}
}
