package core

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"cliz/internal/dataset"
	"cliz/internal/entropy"
	"cliz/internal/mask"
)

// The on-disk seed corpus for FuzzDecompress (testdata/fuzz/FuzzDecompress)
// pins the decoder's hostile-input behaviour: truncated headers, corrupted
// entropy streams, volume-overflow dims and malformed chunked containers.
// `go test` runs every seed through the fuzz target even without -fuzz;
// regenerate the files with `go test ./internal/core -run TestFuzzCorpus -update`.

// corpusSeeds builds the hostile blobs from deterministic valid ones.
func corpusSeeds(t testing.TB) map[string][]byte {
	ds := smallHurricane()
	eb := ds.AbsErrorBound(1e-2)
	plain, err := Compress(ds, eb, Default(ds), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cls := Default(ds)
	cls.Classify = true
	classified, err := Compress(ds, eb, cls, Options{})
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := CompressChunked(ds, eb, Default(ds), Options{}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}

	seeds := map[string][]byte{
		"trunc-magic":      []byte("CLZ"),
		"trunc-header-9":   append([]byte(nil), plain[:9]...),
		"trunc-header-20":  append([]byte(nil), plain[:20]...),
		"trunc-last-bytes": append([]byte(nil), plain[:len(plain)-5]...),
		"trunc-half":       append([]byte(nil), plain[:len(plain)/2]...),
		"chunked-trunc":    append([]byte(nil), chunked[:len(chunked)-7]...),
	}
	// Corrupted Huffman stream: flip bytes in the middle of the bins
	// section (past the header, before the trailing literals).
	corrupt := append([]byte(nil), plain...)
	for i := len(corrupt) / 2; i < len(corrupt)/2+8 && i < len(corrupt); i++ {
		corrupt[i] ^= 0xA5
	}
	seeds["corrupt-huffman"] = corrupt
	corrupt2 := append([]byte(nil), classified...)
	for i := len(corrupt2) / 3; i < len(corrupt2)/3+8 && i < len(corrupt2); i++ {
		corrupt2[i] ^= 0x5A
	}
	seeds["corrupt-multihuffman"] = corrupt2
	// Volume overflow: dims 2^31 × 4 × 2^31 = 2^64 wraps to 0 and used to
	// sneak under the volume cap.
	seeds["dims-overflow"] = overflowBlob()
	// Chunked container whose chunk count exceeds the lead extent.
	badNC := append([]byte(nil), chunked...)
	// layout: "CLZP" ver ndims dims... nchunks — patch nchunks (single
	// varint byte for small values) to 0xFF,0x01 would shift framing, so
	// just overwrite the 1-byte varint with a bigger 1-byte value.
	ncPos := 4 + 1
	p := ncPos
	_, _ = readUvarint(badNC, &p) // ndims
	for i := 0; i < len(ds.Dims); i++ {
		_, _ = readUvarint(badNC, &p)
	}
	badNC[p] = 0x7F
	seeds["chunked-bad-nchunks"] = badNC
	// Chunk lead extents that no longer sum to dims[0].
	badLead := append([]byte(nil), chunked...)
	q := p
	_, _ = readUvarint(badLead, &q) // nchunks
	badLead[q] = 0x01               // first chunk's lead extent -> 1
	seeds["chunked-lead-mismatch"] = badLead
	// Chunked container whose trailing dims disagree with the embedded
	// chunk's (at equal volume and matching lead extent): the per-chunk
	// validation must reject the full dims vector, not just dims[0] — the
	// old check let this write a transposed plane into the output.
	seeds["chunked-plane-mismatch"] = chunkedPlaneMismatch(t)
	// v2 fixture with a bit flipped inside the sharded-entropy bins region:
	// v2 blobs carry no checksums, so this must die in the entropy decoder
	// (or bound check), never panic or silently succeed.
	if v2, err := os.ReadFile(goldenPath("v2-parallel-w4", ".clz")); err == nil {
		flipped := append([]byte(nil), v2...)
		flipped[len(flipped)/2] ^= 0x08
		seeds["v2-shard-dir-flip"] = flipped
	} else {
		t.Fatalf("v2 fixture for fuzz seed: %v", err)
	}
	// v3 blob with a corrupted section payload (checksum must catch it) and
	// one with a corrupted directory entry (the header CRC must catch it
	// before the directory can mis-frame anything). `plain` is a v3 blob:
	// its directory starts right after the psections varint.
	crcFlip := append([]byte(nil), plain...)
	crcFlip[len(crcFlip)-3] ^= 0x10 // inside the literals payload
	seeds["v3-section-crc-flip"] = crcFlip
	dirFlip := append([]byte(nil), plain...)
	hpos := 0
	if _, err := parseHeader(dirFlip, &hpos); err != nil {
		t.Fatalf("v3 seed header: %v", err)
	}
	dirFlip[hpos-6] ^= 0x01 // a directory CRC byte (before the header CRC)
	seeds["v3-dir-flip"] = dirFlip
	// Conformance-harness shapes: a chunked container whose chunks carry
	// sliced rank-2 masks, and a sharded rANS blob whose sub-block shards
	// encode below one bit per symbol (the old shard-directory check
	// rejected such blobs as corrupt). Mutations of these probe the mask
	// slicing and the mode-aware directory validation.
	seeds["chunked-mask-rank2"] = chunkedMaskedRank2(t)
	rblob := shardedRANSBlob(t)
	seeds["rans-sharded"] = rblob
	rflip := append([]byte(nil), rblob...)
	rflip[len(rflip)*2/3] ^= 0x42 // inside the shard payloads
	seeds["rans-sharded-flip"] = rflip
	// Interleaved-rANS blobs, plain and sharded: mutations of these probe
	// the multi-state framing — the ways byte, the per-way final states and
	// the byte-reversed shared stream.
	iblob := interleavedRANSBlob(t, 0)
	seeds["rans-interleaved"] = iblob
	iflip := append([]byte(nil), iblob...)
	iflip[len(iflip)*2/3] ^= 0x37 // inside the interleaved stream
	seeds["rans-interleaved-flip"] = iflip
	seeds["rans-interleaved-sharded"] = interleavedRANSBlob(t, 2)
	return seeds
}

// interleavedRANSBlob builds a unit blob whose bins section is coded with
// N-way interleaved rANS (sharded sub-blocks when workers > 1).
func interleavedRANSBlob(t testing.TB, workers int) []byte {
	dims := []int{20, 10, 12}
	data := make([]float32, dims[0]*dims[1]*dims[2])
	for i := range data {
		data[i] = float32((i*7)%23) * 2e-6
	}
	ds := &dataset.Dataset{Name: "fuzz-rans-interleaved", Data: data, Dims: dims}
	blob, err := Compress(ds, 0.5, Default(ds), Options{Entropy: entropy.RANSInterleaved, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// chunkedMaskedRank2 builds a chunked container over a masked rank-2 grid:
// the split axis is part of the (lat, lon) mask plane, so each chunk embeds
// a sliced mask (the shape the conformance harness caught crashing).
func chunkedMaskedRank2(t testing.TB) []byte {
	const nLat, nLon = 6, 5
	data := make([]float32, nLat*nLon)
	regions := make([]int32, nLat*nLon)
	for i := range data {
		data[i] = float32(i) * 0.5
		if i%4 == 0 {
			data[i] = -9999
			regions[i] = 0
		} else {
			regions[i] = 1
		}
	}
	ds := &dataset.Dataset{
		Name:      "fuzz-chunk-mask",
		Data:      data,
		Dims:      []int{nLat, nLon},
		Mask:      mask.New(nLat, nLon, regions),
		FillValue: -9999,
	}
	p := Default(ds)
	p.UseMask = true
	blob, err := CompressChunked(ds, 1e-3, p, Options{}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// shardedRANSBlob builds a unit blob whose bins section is a sharded rANS
// container with sub-block shards far below one bit per symbol.
func shardedRANSBlob(t testing.TB) []byte {
	dims := []int{24, 8, 16}
	data := make([]float32, dims[0]*dims[1]*dims[2])
	for i := range data {
		data[i] = float32(i%16) * 1e-6
	}
	ds := &dataset.Dataset{Name: "fuzz-rans-shards", Data: data, Dims: dims}
	blob, err := Compress(ds, 0.5, Default(ds), Options{Entropy: entropy.RANS, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// chunkedPlaneMismatch wraps a valid [2,3,5] unit blob in a container that
// declares dims [2,5,3]: same volume, same lead, swapped planes.
func chunkedPlaneMismatch(t testing.TB) []byte {
	sw := &dataset.Dataset{Name: "swap", Data: make([]float32, 2*3*5), Dims: []int{2, 3, 5}}
	for i := range sw.Data {
		sw.Data[i] = float32(i % 7)
	}
	blob, err := Compress(sw, 0.01, Default(sw), Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := []byte(parMagic)
	out = append(out, version1)
	out = appendUvarint(out, 3)
	out = appendUvarint(out, 2)
	out = appendUvarint(out, 5) // swapped trailing dims
	out = appendUvarint(out, 3)
	out = appendUvarint(out, 1) // one chunk
	out = appendUvarint(out, 2) // lead extent matches
	return appendSection(out, blob)
}

// overflowBlob hand-crafts a header whose dims volume wraps past 1<<64.
func overflowBlob() []byte {
	out := []byte(magic)
	out = append(out, version1, 0)
	var b8 [8]byte
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(1.0))
	out = append(out, b8[:]...)
	out = append(out, 0, 0, 0, 0) // fill value
	out = appendUvarint(out, 32768)
	out = appendUvarint(out, 3)
	out = appendUvarint(out, 1<<31)
	out = appendUvarint(out, 4)
	out = appendUvarint(out, 1<<31)
	out = append(out, 0, 1, 2) // perm
	out = appendUvarint(out, 3)
	out = append(out, 1, 1, 1)  // fusion groups
	out = appendUvarint(out, 0) // period
	binary.LittleEndian.PutUint64(b8[:], math.Float64bits(0))
	out = append(out, b8[:]...)
	out = appendUvarint(out, 0) // empty bins section
	out = appendUvarint(out, 0) // empty literals section
	return out
}

func fuzzCorpusDir() string {
	return filepath.Join("testdata", "fuzz", "FuzzDecompress")
}

// TestFuzzCorpus regenerates the seed files with -update and always replays
// every on-disk seed through the decoder entry points, requiring a clean
// error or a clean success — never a panic.
func TestFuzzCorpus(t *testing.T) {
	seeds := corpusSeeds(t)
	if *updateGolden {
		if err := os.MkdirAll(fuzzCorpusDir(), 0o755); err != nil {
			t.Fatal(err)
		}
		for name, blob := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(blob)) + ")\n"
			if err := os.WriteFile(filepath.Join(fuzzCorpusDir(), "seed-"+name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("wrote %d seeds", len(seeds))
	}
	// The crafted overflow header must be rejected at parse time, not
	// merely die downstream.
	if _, err := Inspect(overflowBlob()); err == nil {
		t.Fatal("overflow dims accepted by Inspect")
	}
	entries, err := os.ReadDir(fuzzCorpusDir())
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	ran := 0
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(fuzzCorpusDir(), e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		blob, err := parseCorpusEntry(string(raw))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		t.Run(e.Name(), func(t *testing.T) {
			if IsChunked(blob) {
				_, _, _ = DecompressChunked(blob, 1)
				_, _, _, _ = DecompressPartial(blob, DecompressOptions{})
			} else {
				_, _, _ = Decompress(blob)
			}
			_, _ = Inspect(blob)
			_ = Verify(blob)
		})
		ran++
	}
	if ran < len(seeds) {
		t.Fatalf("only %d corpus files on disk, expected at least %d (regenerate with -update)", ran, len(seeds))
	}
}

// parseCorpusEntry reads the Go fuzz corpus v1 format: a version line
// followed by one []byte("...") literal.
func parseCorpusEntry(s string) ([]byte, error) {
	lines := strings.SplitN(strings.TrimSpace(s), "\n", 2)
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "go test fuzz v1") {
		return nil, fmt.Errorf("not a v1 corpus entry")
	}
	body := strings.TrimSpace(lines[1])
	body = strings.TrimPrefix(body, "[]byte(")
	body = strings.TrimSuffix(body, ")")
	str, err := strconv.Unquote(body)
	if err != nil {
		return nil, err
	}
	return []byte(str), nil
}
