package core

import (
	"testing"
)

// FuzzDecompress drives the blob decoder with arbitrary inputs (run with
// `go test -fuzz=FuzzDecompress ./internal/core`); the seeds — one valid
// blob per pipeline family — always run as part of the normal test suite.
func FuzzDecompress(f *testing.F) {
	ds := smallHurricane()
	eb := ds.AbsErrorBound(1e-2)
	plain, err := Compress(ds, eb, Default(ds), Options{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(plain)
	ssh := smallSSH()
	p := Default(ssh)
	p.Period = 12
	p.Classify = true
	periodic, err := Compress(ssh, ssh.AbsErrorBound(1e-2), p, Options{})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(periodic)
	chunked, err := CompressChunked(ds, eb, Default(ds), Options{}, 2, 1)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(chunked)
	f.Add([]byte("CLZ1"))
	f.Add([]byte("CLZP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, blob []byte) {
		// Must never panic; errors and garbage output are acceptable.
		if IsChunked(blob) {
			_, _, _ = DecompressChunked(blob, 1)
			_, _, _, _ = DecompressPartial(blob, DecompressOptions{})
		} else {
			_, _, _ = Decompress(blob)
		}
		_, _ = Inspect(blob)
		_ = Verify(blob)
	})
}
