package core

import (
	"math/rand"
	"testing"
)

// TestDecompressNeverPanicsOnMutations hammers the decoder with byte-level
// corruptions of valid blobs: every mutation must return cleanly (an error
// or, for payload bits the checksums cannot see, wrong data) — never panic.
func TestDecompressNeverPanicsOnMutations(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Period = 12
	p.Classify = true
	blob, err := Compress(ds, eb, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	run := func(b []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("decoder panicked: %v", r)
			}
		}()
		_, _, _ = Decompress(b)
		_, _ = Inspect(b)
	}
	// Single-byte flips across the whole blob (sampled for speed).
	for trial := 0; trial < 600; trial++ {
		bad := append([]byte(nil), blob...)
		i := rng.Intn(len(bad))
		bad[i] ^= byte(1 + rng.Intn(255))
		run(bad)
	}
	// Truncations at every length up to a cap.
	step := len(blob)/200 + 1
	for cut := 0; cut < len(blob); cut += step {
		run(blob[:cut])
	}
	// Random garbage.
	for trial := 0; trial < 100; trial++ {
		garbage := make([]byte, rng.Intn(400))
		rng.Read(garbage)
		run(garbage)
	}
	// Garbage with a valid magic prefix.
	for trial := 0; trial < 100; trial++ {
		garbage := make([]byte, 8+rng.Intn(200))
		rng.Read(garbage)
		copy(garbage, "CLZ1")
		garbage[4] = 1
		run(garbage)
	}
}

// TestChunkedDecoderNeverPanics does the same for the parallel container.
func TestChunkedDecoderNeverPanics(t *testing.T) {
	ds := smallHurricane()
	blob, err := CompressChunked(ds, ds.AbsErrorBound(1e-2), Default(ds), Options{}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	run := func(b []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("chunked decoder panicked: %v", r)
			}
		}()
		_, _, _ = DecompressChunked(b, 2)
	}
	for trial := 0; trial < 400; trial++ {
		bad := append([]byte(nil), blob...)
		bad[rng.Intn(len(bad))] ^= byte(1 + rng.Intn(255))
		run(bad)
	}
	step := len(blob)/100 + 1
	for cut := 0; cut < len(blob); cut += step {
		run(blob[:cut])
	}
}
