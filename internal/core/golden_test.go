package core

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"cliz/internal/dataset"
	"cliz/internal/entropy"
	"cliz/internal/grid"
	"cliz/internal/predict"
)

var updateGolden = flag.Bool("update", false, "regenerate golden fixtures under testdata/golden")

// goldenCases pins the on-disk blob format: every pipeline variant has a
// committed blob plus its expected reconstruction, and the decoder must keep
// reproducing that reconstruction bit-for-bit. Catching an accidental format
// or decoder change is the point — after a deliberate format change,
// regenerate with `go test ./internal/core -run TestGolden -update`.
var goldenCases = []struct {
	name string
	ds   func() *dataset.Dataset
	pipe func(ds *dataset.Dataset) Pipeline
	opt  Options
	rel  float64
	// chunks > 0 compresses through the parallel container.
	chunks int
}{
	{
		name: "cubic-default",
		ds:   smallHurricane,
		pipe: func(ds *dataset.Dataset) Pipeline { return Default(ds) },
		rel:  1e-2,
	},
	{
		name: "linear-perm-fuse",
		ds:   smallHurricane,
		pipe: func(ds *dataset.Dataset) Pipeline {
			p := Default(ds)
			p.Perm = []int{2, 0, 1}
			p.Fusion = grid.Fusion{Groups: []int{1, 2}}
			p.Fitting = predict.Linear
			return p
		},
		rel: 1e-3,
	},
	{
		name: "lorenzo",
		ds:   smallHurricane,
		pipe: func(ds *dataset.Dataset) Pipeline {
			p := Default(ds)
			p.Fitting = predict.Lorenzo
			return p
		},
		rel: 1e-2,
	},
	{
		name: "classify-alpha",
		ds:   smallHurricane,
		pipe: func(ds *dataset.Dataset) Pipeline {
			p := Default(ds)
			p.Classify = true
			p.LevelAlpha = 1.5
			return p
		},
		rel: 1e-2,
	},
	{
		name: "periodic-mask-classify",
		ds:   smallSSH,
		pipe: func(ds *dataset.Dataset) Pipeline {
			p := Default(ds)
			p.Period = 12
			p.Classify = true
			return p
		},
		rel: 1e-2,
	},
	{
		name: "rans",
		ds:   smallHurricane,
		pipe: func(ds *dataset.Dataset) Pipeline { return Default(ds) },
		opt:  Options{Entropy: entropy.RANS},
		rel:  1e-2,
	},
	{
		name: "chunked",
		ds:   smallHurricane,
		pipe: func(ds *dataset.Dataset) Pipeline { return Default(ds) },
		rel:  1e-2,
		// 3 chunks, exercising the CLZP container framing.
		chunks: 3,
	},
}

func goldenPath(name, ext string) string {
	return filepath.Join("testdata", "golden", name+ext)
}

func TestGoldenFixtures(t *testing.T) {
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			ds := tc.ds()
			eb := ds.AbsErrorBound(tc.rel)
			p := tc.pipe(ds)
			if *updateGolden {
				var blob []byte
				var err error
				if tc.chunks > 0 {
					blob, err = CompressChunked(ds, eb, p, tc.opt, tc.chunks, 2)
				} else {
					blob, err = Compress(ds, eb, p, tc.opt)
				}
				if err != nil {
					t.Fatal(err)
				}
				var recon []float32
				if tc.chunks > 0 {
					recon, _, err = DecompressChunked(blob, 2)
				} else {
					recon, _, err = Decompress(blob)
				}
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(tc.name, ".clz"), blob, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(tc.name, ".f32"), floatsToBytes(recon), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s: %d-byte blob, %d points", tc.name, len(blob), len(recon))
				return
			}
			blob, err := os.ReadFile(goldenPath(tc.name, ".clz"))
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			wantRaw, err := os.ReadFile(goldenPath(tc.name, ".f32"))
			if err != nil {
				t.Fatalf("%v (regenerate with -update)", err)
			}
			var recon []float32
			var dims []int
			if tc.chunks > 0 {
				recon, dims, err = DecompressChunked(blob, 2)
			} else {
				recon, dims, err = Decompress(blob)
			}
			if err != nil {
				t.Fatalf("stored blob no longer decodes: %v", err)
			}
			if !dimsEqual(dims, ds.Dims) {
				t.Fatalf("decoded dims %v, dataset has %v", dims, ds.Dims)
			}
			// Bit-exact: the decoder must reproduce the committed
			// reconstruction down to the last float bit.
			got := floatsToBytes(recon)
			if !bytes.Equal(got, wantRaw) {
				t.Fatalf("decode of %s.clz changed: %s", tc.name, firstFloatDiff(got, wantRaw))
			}
			// And the reconstruction must still respect the error bound
			// against the deterministic source field.
			checkBound(t, ds, recon, eb)
		})
	}
}

func floatsToBytes(data []float32) []byte {
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	return raw
}

func firstFloatDiff(got, want []byte) string {
	if len(got) != len(want) {
		return fmt.Sprintf("length %d vs %d bytes", len(got), len(want))
	}
	for i := 0; i+4 <= len(got); i += 4 {
		g := binary.LittleEndian.Uint32(got[i:])
		w := binary.LittleEndian.Uint32(want[i:])
		if g != w {
			return fmt.Sprintf("point %d: got %g (0x%08x), want %g (0x%08x)",
				i/4, math.Float32frombits(g), g, math.Float32frombits(w), w)
		}
	}
	return "no difference (length mismatch?)"
}

// checkBound asserts |recon - orig| <= eb at every valid point, with a tiny
// float32 rounding allowance.
func checkBound(t *testing.T, ds *dataset.Dataset, recon []float32, eb float64) {
	t.Helper()
	valid := ds.Validity()
	tol := eb * (1 + 1e-5)
	for i, v := range ds.Data {
		if valid != nil && !valid[i] {
			continue
		}
		if d := math.Abs(float64(recon[i]) - float64(v)); d > tol {
			t.Fatalf("point %d: |%g - %g| = %g > eb %g", i, recon[i], v, d, eb)
		}
	}
}
