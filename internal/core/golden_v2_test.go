package core

import (
	"bytes"
	"flag"
	"os"
	"testing"
)

var updateGoldenV2 = flag.Bool("update-v2", false,
	"regenerate the v2 (parallel-encode) golden fixtures under testdata/golden")

// TestGoldenV2Fixtures pins the version-2 on-disk format produced by the
// parallel encoder: sectioned prediction (psections > 1) and sharded entropy
// blocks. These fixtures live beside — and never replace — the v1 fixtures,
// which continue to pin backward compatibility. Regenerate only after a
// deliberate format change, with
// `go test ./internal/core -run TestGoldenV2 -update-v2`.
func TestGoldenV2Fixtures(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Period = 12
	p.Classify = true
	cases := []struct {
		name    string
		workers int
	}{
		{"v2-parallel-w4", 4},
		{"v2-parallel-w8", 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if *updateGoldenV2 {
				blob, err := Compress(ds, eb, p, Options{Workers: tc.workers, sectionLeadFloor: 8})
				if err != nil {
					t.Fatal(err)
				}
				recon, _, err := Decompress(blob)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(tc.name, ".clz"), blob, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(tc.name, ".f32"), floatsToBytes(recon), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s: %d-byte blob", tc.name, len(blob))
				return
			}
			blob, err := os.ReadFile(goldenPath(tc.name, ".clz"))
			if err != nil {
				t.Fatalf("%v (regenerate with -update-v2)", err)
			}
			wantRaw, err := os.ReadFile(goldenPath(tc.name, ".f32"))
			if err != nil {
				t.Fatalf("%v (regenerate with -update-v2)", err)
			}
			// The encoder must still reproduce the committed blob exactly
			// (determinism for a fixed worker count)…
			reblob, err := Compress(ds, eb, p, Options{Workers: tc.workers, sectionLeadFloor: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(reblob, blob) {
				t.Fatalf("encode of %s changed (%d vs %d bytes)", tc.name, len(reblob), len(blob))
			}
			// …and decode must be bit-exact at every worker count.
			for _, w := range []int{1, 4} {
				recon, dims, err := DecompressWithOptions(blob, DecompressOptions{Workers: w})
				if err != nil {
					t.Fatalf("decode workers=%d: %v", w, err)
				}
				if !dimsEqual(dims, ds.Dims) {
					t.Fatalf("dims %v", dims)
				}
				if !bytes.Equal(floatsToBytes(recon), wantRaw) {
					t.Fatalf("decode workers=%d of %s.clz changed: %s",
						w, tc.name, firstFloatDiff(floatsToBytes(recon), wantRaw))
				}
				checkBound(t, ds, recon, eb)
			}
		})
	}
}
