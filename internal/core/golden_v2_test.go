package core

import (
	"bytes"
	"os"
	"testing"
)

// TestGoldenV2Fixtures pins decode-side backward compatibility for the
// version-2 on-disk format (sectioned prediction, sharded entropy blocks).
// The fixtures are frozen: the writer has moved on to v3 (integrity
// checksums), so — exactly like the v1 fixtures — these blobs are never
// regenerated and must keep decoding bit-exactly at every worker count.
func TestGoldenV2Fixtures(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	cases := []string{"v2-parallel-w4", "v2-parallel-w8"}
	for _, name := range cases {
		t.Run(name, func(t *testing.T) {
			blob, err := os.ReadFile(goldenPath(name, ".clz"))
			if err != nil {
				t.Fatalf("%v (v2 fixtures are frozen; do not regenerate)", err)
			}
			wantRaw, err := os.ReadFile(goldenPath(name, ".f32"))
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{1, 4} {
				recon, dims, err := DecompressWithOptions(blob, DecompressOptions{Workers: w})
				if err != nil {
					t.Fatalf("decode workers=%d: %v", w, err)
				}
				if !dimsEqual(dims, ds.Dims) {
					t.Fatalf("dims %v", dims)
				}
				if !bytes.Equal(floatsToBytes(recon), wantRaw) {
					t.Fatalf("decode workers=%d of %s.clz changed: %s",
						w, name, firstFloatDiff(floatsToBytes(recon), wantRaw))
				}
				checkBound(t, ds, recon, eb)
			}
			// v2 blobs carry no checksums; Verify must still walk them
			// structurally and report them intact (not damaged).
			rep := Verify(blob)
			if !rep.OK() {
				t.Fatalf("Verify rejected an intact v2 fixture:\n%s", rep)
			}
			if rep.Checksummed {
				t.Fatal("Verify claims a v2 blob is checksummed")
			}
			if rep.Version != 2 {
				t.Fatalf("Verify reports version %d for a v2 fixture", rep.Version)
			}
		})
	}
}
