package core

import (
	"bytes"
	"flag"
	"os"
	"testing"
)

var updateGoldenV3 = flag.Bool("update-v3", false,
	"regenerate the v3 (integrity-checksummed) golden fixtures under testdata/golden")

// TestGoldenV3Fixtures pins the version-3 on-disk format: everything v2 had
// (sectioned prediction, sharded entropy blocks) plus the integrity
// directory — per-section CRC-32C checksums and a header checksum. Unlike
// the frozen v1/v2 fixtures these match the current writer, so the encoder
// must reproduce them byte-for-byte. Regenerate only after a deliberate
// format change, with `go test ./internal/core -run TestGoldenV3 -update-v3`.
func TestGoldenV3Fixtures(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Period = 12
	p.Classify = true
	cases := []struct {
		name    string
		workers int
	}{
		{"v3-parallel-w4", 4},
		{"v3-parallel-w8", 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if *updateGoldenV3 {
				blob, err := Compress(ds, eb, p, Options{Workers: tc.workers, sectionLeadFloor: 8})
				if err != nil {
					t.Fatal(err)
				}
				recon, _, err := Decompress(blob)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(tc.name, ".clz"), blob, 0o644); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(goldenPath(tc.name, ".f32"), floatsToBytes(recon), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s: %d-byte blob", tc.name, len(blob))
				return
			}
			blob, err := os.ReadFile(goldenPath(tc.name, ".clz"))
			if err != nil {
				t.Fatalf("%v (regenerate with -update-v3)", err)
			}
			wantRaw, err := os.ReadFile(goldenPath(tc.name, ".f32"))
			if err != nil {
				t.Fatalf("%v (regenerate with -update-v3)", err)
			}
			// The encoder must still reproduce the committed blob exactly
			// (determinism for a fixed worker count)…
			reblob, err := Compress(ds, eb, p, Options{Workers: tc.workers, sectionLeadFloor: 8})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(reblob, blob) {
				t.Fatalf("encode of %s changed (%d vs %d bytes)", tc.name, len(reblob), len(blob))
			}
			// …and decode must be bit-exact at every worker count.
			for _, w := range []int{1, 4} {
				recon, dims, err := DecompressWithOptions(blob, DecompressOptions{Workers: w})
				if err != nil {
					t.Fatalf("decode workers=%d: %v", w, err)
				}
				if !dimsEqual(dims, ds.Dims) {
					t.Fatalf("dims %v", dims)
				}
				if !bytes.Equal(floatsToBytes(recon), wantRaw) {
					t.Fatalf("decode workers=%d of %s.clz changed: %s",
						w, tc.name, firstFloatDiff(floatsToBytes(recon), wantRaw))
				}
				checkBound(t, ds, recon, eb)
			}
			// A v3 fixture must verify clean, checksummed end to end.
			rep := Verify(blob)
			if !rep.OK() {
				t.Fatalf("Verify rejected an intact v3 fixture:\n%s", rep)
			}
			if !rep.Checksummed {
				t.Fatal("Verify reports a v3 fixture as not checksummed")
			}
			if rep.Version != 3 {
				t.Fatalf("Verify reports version %d for a v3 fixture", rep.Version)
			}
		})
	}
}
