package core

import (
	"fmt"
	"strings"

	"cliz/internal/grid"
)

// SectionInfo describes one section of a blob.
type SectionInfo struct {
	Name  string
	Bytes int
}

// BlobInfo is the parsed structure of a CliZ blob, for inspection tools.
type BlobInfo struct {
	Kind     string // "unit", "periodic", "chunked"
	Dims     []int
	EB       float64
	Fill     float32
	Pipeline string
	// Version is the blob format version (0 for the chunked container root,
	// whose chunks carry their own versions).
	Version int
	// Checksummed reports a v3 blob whose header and sections carry CRC-32C
	// integrity checksums.
	Checksummed bool
	// IntegrityBytes counts the bytes the v3 section directory and checksums
	// add to this blob (excluding children).
	IntegrityBytes int
	// PSections is the predict-section count from the v2 header (1 for v1
	// blobs and for serial encodes): how many ways the fused leading
	// dimension was cut for parallel prediction/reconstruction.
	PSections int
	Sections  []SectionInfo
	// Children holds the template+residual of periodic blobs or the chunks
	// of a parallel container.
	Children []*BlobInfo
	Total    int
}

// IntegrityTotal sums the integrity overhead of the blob and all children.
func (b *BlobInfo) IntegrityTotal() int {
	n := b.IntegrityBytes
	for _, c := range b.Children {
		n += c.IntegrityTotal()
	}
	return n
}

// Inspect parses a blob's structure without decompressing the payload.
func Inspect(blob []byte) (*BlobInfo, error) {
	if IsChunked(blob) {
		return inspectChunked(blob)
	}
	pos := 0
	return inspectAt(blob, &pos)
}

func inspectAt(blob []byte, pos *int) (*BlobInfo, error) {
	start := *pos
	h, err := parseHeader(blob, pos)
	if err != nil {
		return nil, err
	}
	info := &BlobInfo{
		Dims:           h.dims,
		EB:             h.eb,
		Fill:           h.fill,
		Pipeline:       h.pipe.String(),
		Version:        int(h.version),
		Checksummed:    h.version >= version3,
		IntegrityBytes: h.integrityBytes,
		PSections:      h.psections,
	}
	info.Sections = append(info.Sections, SectionInfo{"header", *pos - start})
	if h.flags&flagPeriodic != 0 {
		info.Kind = "periodic"
		for _, name := range []string{"template", "residual"} {
			sec, err := readSection(blob, pos)
			if err != nil {
				return nil, err
			}
			cpos := 0
			child, err := inspectAt(sec, &cpos)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", name, err)
			}
			child.Kind = name
			info.Children = append(info.Children, child)
			info.Sections = append(info.Sections, SectionInfo{name, len(sec)})
		}
		info.Total = *pos - start
		return info, nil
	}
	info.Kind = "unit"
	names := []string{}
	if h.flags&(flagMask|flagPointMask) != 0 {
		names = append(names, "mask")
	}
	if h.flags&flagClassify != 0 {
		names = append(names, "class-meta", "bins-A", "bins-B")
	} else {
		names = append(names, "bins")
	}
	names = append(names, "literals")
	for _, name := range names {
		sec, err := readSection(blob, pos)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		info.Sections = append(info.Sections, SectionInfo{name, len(sec)})
	}
	info.Total = *pos - start
	return info, nil
}

func inspectChunked(blob []byte) (*BlobInfo, error) {
	pos := 4
	if pos >= len(blob) || blob[pos] != version1 {
		return nil, ErrCorrupt
	}
	pos++
	nd, err := readUvarint(blob, &pos)
	if err != nil || nd < 1 || nd > 8 {
		return nil, ErrCorrupt
	}
	dims := make([]int, nd)
	vol := 1
	for i := range dims {
		d, err := readUvarint(blob, &pos)
		if err != nil || d == 0 || d > 1<<31 {
			return nil, ErrCorrupt
		}
		dims[i] = int(d)
		if int(d) > (1<<33)/vol {
			return nil, ErrCorrupt
		}
		vol *= int(d)
	}
	nc, err := readUvarint(blob, &pos)
	if err != nil {
		return nil, ErrCorrupt
	}
	info := &BlobInfo{Kind: "chunked", Dims: dims, Total: len(blob)}
	for c := uint64(0); c < nc; c++ {
		if _, err := readUvarint(blob, &pos); err != nil { // lead extent
			return nil, err
		}
		sec, err := readSection(blob, &pos)
		if err != nil {
			return nil, err
		}
		cpos := 0
		child, err := inspectAt(sec, &cpos)
		if err != nil {
			return nil, fmt.Errorf("chunk %d: %w", c, err)
		}
		child.Kind = fmt.Sprintf("chunk[%d] %s", c, child.Kind)
		info.Children = append(info.Children, child)
	}
	return info, nil
}

// Render writes a human-readable tree of the blob structure, with each
// section's share of the blob and its cost in bits per data point.
func (b *BlobInfo) Render(indent string, w *strings.Builder) {
	fmt.Fprintf(w, "%s%s  dims=%v", indent, b.Kind, b.Dims)
	if b.Version > 0 {
		fmt.Fprintf(w, "  v%d", b.Version)
	}
	if b.Checksummed {
		w.WriteString("+crc")
	}
	if b.EB > 0 {
		fmt.Fprintf(w, "  eb=%g", b.EB)
	}
	if b.Pipeline != "" {
		fmt.Fprintf(w, "  [%s]", b.Pipeline)
	}
	if b.PSections > 1 {
		fmt.Fprintf(w, "  psections=%d", b.PSections)
	}
	points := grid.Volume(b.Dims)
	fmt.Fprintf(w, "  %d bytes", b.Total)
	if points > 0 && b.Total > 0 {
		fmt.Fprintf(w, " (%.3f bits/point)", float64(b.Total)*8/float64(points))
	}
	w.WriteByte('\n')
	for _, s := range b.Sections {
		fmt.Fprintf(w, "%s  %-10s %8d bytes", indent, s.Name, s.Bytes)
		if b.Total > 0 {
			fmt.Fprintf(w, " %5.1f%%", 100*float64(s.Bytes)/float64(b.Total))
		}
		w.WriteByte('\n')
	}
	for _, c := range b.Children {
		c.Render(indent+"    ", w)
	}
}

// String implements fmt.Stringer.
func (b *BlobInfo) String() string {
	var sb strings.Builder
	b.Render("", &sb)
	return sb.String()
}
