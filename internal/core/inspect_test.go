package core

import (
	"strings"
	"testing"
)

func TestInspectUnit(t *testing.T) {
	ds := smallHurricane()
	p := Default(ds)
	p.Classify = true
	blob, err := Compress(ds, ds.AbsErrorBound(1e-2), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "unit" {
		t.Fatalf("kind %q", info.Kind)
	}
	names := map[string]bool{}
	total := 0
	for _, s := range info.Sections {
		names[s.Name] = true
		total += s.Bytes
	}
	for _, want := range []string{"header", "class-meta", "bins-A", "bins-B", "literals"} {
		if !names[want] {
			t.Fatalf("missing section %s in %v", want, names)
		}
	}
	// Section lengths plus per-section varint prefixes account for the blob.
	if total > len(blob) || total < len(blob)/2 {
		t.Fatalf("sections total %d vs blob %d", total, len(blob))
	}
	if !strings.Contains(info.String(), "bins-A") {
		t.Fatal("render missing sections")
	}
}

func TestInspectPeriodic(t *testing.T) {
	ds := smallSSH()
	p := Default(ds)
	p.Period = 12
	blob, err := Compress(ds, ds.AbsErrorBound(1e-2), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "periodic" || len(info.Children) != 2 {
		t.Fatalf("kind %q children %d", info.Kind, len(info.Children))
	}
	if info.Children[0].Kind != "template" || info.Children[1].Kind != "residual" {
		t.Fatalf("children %q %q", info.Children[0].Kind, info.Children[1].Kind)
	}
	if info.Children[0].Dims[0] != 12 {
		t.Fatalf("template lead %v", info.Children[0].Dims)
	}
}

func TestInspectChunked(t *testing.T) {
	ds := smallHurricane()
	blob, err := CompressChunked(ds, ds.AbsErrorBound(1e-2), Default(ds), Options{}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "chunked" || len(info.Children) != 3 {
		t.Fatalf("kind %q children %d", info.Kind, len(info.Children))
	}
}

func TestInspectCorrupt(t *testing.T) {
	if _, err := Inspect(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := Inspect([]byte("garbage!")); err == nil {
		t.Fatal("garbage accepted")
	}
}
