package core

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"time"

	"cliz/internal/dataset"
	"cliz/internal/grid"
	"cliz/internal/interp"
	"cliz/internal/lorenzo"
)

// tinyField builds a small smooth dataset so exhaustive byte-flip sweeps
// stay fast while still exercising multi-section blobs.
func tinyField() *dataset.Dataset {
	dims := []int{6, 12, 12}
	data := make([]float32, grid.Volume(dims))
	for t := 0; t < dims[0]; t++ {
		for i := 0; i < dims[1]; i++ {
			for j := 0; j < dims[2]; j++ {
				data[(t*dims[1]+i)*dims[2]+j] = float32(
					math.Sin(float64(t)/3) + math.Cos(float64(i)/5)*float64(j)/12)
			}
		}
	}
	return &dataset.Dataset{Name: "tiny", Data: data, Dims: dims}
}

func TestVerifyIntactV3(t *testing.T) {
	ds := tinyField()
	eb := ds.AbsErrorBound(1e-3)
	blob, err := Compress(ds, eb, Default(ds), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := Verify(blob)
	if !rep.OK() {
		t.Fatalf("intact blob reported damaged:\n%s", rep)
	}
	if !rep.Checksummed || rep.Version != 3 {
		t.Fatalf("version=%d checksummed=%v, want v3 with checksums", rep.Version, rep.Checksummed)
	}
	want := map[string]bool{"header": false, "bins": false, "literals": false}
	for _, s := range rep.Sections {
		if _, ok := want[s.Path]; ok {
			want[s.Path] = true
		}
		if !s.Checksummed {
			t.Fatalf("section %q not checksummed in a v3 blob", s.Path)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Fatalf("section %q missing from report:\n%s", name, rep)
		}
	}
}

// TestByteFlipNeverSilent is the integrity property test: corrupting any
// single byte of a v3 blob must yield a decode error or a VerifyReport
// naming damage — never a silent success. CRC-32C detects every single-byte
// error in the covered regions (header, directory, payloads); the only
// uncovered bytes are the section length varints, whose corruption
// mis-frames a later read into a deterministic CRC or framing failure.
func TestByteFlipNeverSilent(t *testing.T) {
	ds := tinyField()
	eb := ds.AbsErrorBound(1e-3)
	blob, err := Compress(ds, eb, Default(ds), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mut := make([]byte, len(blob))
	for _, delta := range []byte{0x01, 0xFF} {
		for i := range blob {
			copy(mut, blob)
			mut[i] ^= delta
			_, _, decErr := Decompress(mut)
			if decErr != nil {
				continue
			}
			if rep := Verify(mut); !rep.OK() {
				continue
			}
			t.Fatalf("flipping byte %d (of %d) with ^%#x decoded cleanly and verified OK",
				i, len(blob), delta)
		}
	}
}

// TestVerifyNamesDamagedSection corrupts one byte inside a known section
// payload and requires Verify to blame exactly that section, with the other
// sections still reported intact, and Decompress to fail with a
// SectionError naming the same section.
func TestVerifyNamesDamagedSection(t *testing.T) {
	ds := tinyField()
	eb := ds.AbsErrorBound(1e-3)
	blob, err := Compress(ds, eb, Default(ds), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Locate the bins payload by re-walking the framing.
	pos := 0
	h, err := parseHeader(blob, &pos)
	if err != nil {
		t.Fatal(err)
	}
	if h.flags&flagClassify != 0 || h.flags&(flagMask|flagPointMask) != 0 {
		t.Fatalf("tiny fixture grew unexpected sections (flags %#x)", h.flags)
	}
	binsStart := pos
	sec, err := readSection(blob, &binsStart) // advances past bins
	if err != nil {
		t.Fatal(err)
	}
	mid := binsStart - len(sec)/2 // middle of the bins payload
	mut := append([]byte(nil), blob...)
	mut[mid] ^= 0xA5

	rep := Verify(mut)
	if rep.OK() {
		t.Fatalf("Verify missed the corruption:\n%s", rep)
	}
	damaged := rep.Damaged()
	if len(damaged) != 1 || damaged[0] != "bins" {
		t.Fatalf("damaged = %v, want exactly [bins]\n%s", damaged, rep)
	}
	for _, s := range rep.Sections {
		if s.Path != "bins" && !s.OK {
			t.Fatalf("intact section %q reported damaged:\n%s", s.Path, rep)
		}
	}

	_, _, decErr := Decompress(mut)
	if decErr == nil {
		t.Fatal("Decompress accepted the corrupted blob")
	}
	if !errors.Is(decErr, ErrChecksum) || !errors.Is(decErr, ErrCorrupt) {
		t.Fatalf("decode error %v does not wrap ErrChecksum/ErrCorrupt", decErr)
	}
	var se *SectionError
	if !errors.As(decErr, &se) || se.Section != "bins" {
		t.Fatalf("decode error %v does not name section bins", decErr)
	}
}

func TestDecompressVerifiedRoundTrip(t *testing.T) {
	ds := tinyField()
	eb := ds.AbsErrorBound(1e-3)
	blob, err := Compress(ds, eb, Default(ds), Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, _, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, dims, rep, err := DecompressVerified(blob, DecompressOptions{BoundCheckEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !dimsEqual(dims, ds.Dims) {
		t.Fatalf("dims %v", dims)
	}
	if !bytes.Equal(floatsToBytes(got), floatsToBytes(plain)) {
		t.Fatal("verified decode differs from plain decode")
	}
	if !rep.OK() {
		t.Fatalf("report not OK:\n%s", rep)
	}
	if rep.BoundChecked != int64(len(ds.Data)) {
		t.Fatalf("BoundChecked = %d, want every one of %d points", rep.BoundChecked, len(ds.Data))
	}

	// Sampled checking counts fewer points but still succeeds.
	_, _, rep, err = DecompressVerified(blob, DecompressOptions{BoundCheckEvery: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BoundChecked <= 0 || rep.BoundChecked >= int64(len(ds.Data)) {
		t.Fatalf("sampled BoundChecked = %d of %d", rep.BoundChecked, len(ds.Data))
	}

	// Corruption fails the verified decode before any payload is touched.
	mut := append([]byte(nil), blob...)
	mut[len(mut)-1] ^= 0xFF
	data, _, rep, err := DecompressVerified(mut, DecompressOptions{})
	if err == nil || data != nil {
		t.Fatal("verified decode accepted a corrupted blob")
	}
	if rep.OK() || len(rep.Damaged()) == 0 {
		t.Fatalf("report did not flag the damage:\n%s", rep)
	}
}

// TestVerifyBuffersCatchesTamperedRecon drives both prediction engines'
// verify mode directly: an output array that disagrees with what the bins
// regenerate must be rejected.
func TestVerifyBuffersCatchesTamperedRecon(t *testing.T) {
	ds := tinyField()
	eb := ds.AbsErrorBound(1e-3)
	vol := len(ds.Data)

	t.Run("lorenzo", func(t *testing.T) {
		cfg := lorenzo.Config{EB: eb, Radius: 512}
		bins := make([]int32, vol)
		recon := make([]float32, vol)
		lits, err := lorenzo.CompressBuffers(ds.Data, ds.Dims, cfg, bins, recon)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := lorenzo.VerifyBuffers(bins, lits, ds.Dims, cfg, recon, 1); err != nil || n != vol {
			t.Fatalf("intact recon: n=%d err=%v", n, err)
		}
		recon[vol/2] += float32(10 * eb)
		if _, err := lorenzo.VerifyBuffers(bins, lits, ds.Dims, cfg, recon, 1); err == nil {
			t.Fatal("tampered recon passed verification")
		}
	})
	t.Run("interp", func(t *testing.T) {
		cfg := interp.Config{EB: eb, Radius: 512}
		bins := make([]int32, vol)
		recon := make([]float32, vol)
		lits, err := interp.CompressBuffers(ds.Data, ds.Dims, cfg, bins, recon)
		if err != nil {
			t.Fatal(err)
		}
		if n, err := interp.VerifyBuffers(bins, lits, ds.Dims, cfg, recon, 1); err != nil || n != vol {
			t.Fatalf("intact recon: n=%d err=%v", n, err)
		}
		recon[vol/2] += float32(10 * eb)
		if _, err := interp.VerifyBuffers(bins, lits, ds.Dims, cfg, recon, 1); err == nil {
			t.Fatal("tampered recon passed verification")
		}
	})
}

func TestDecompressPartialSalvagesIntactChunks(t *testing.T) {
	ds := tinyField()
	eb := ds.AbsErrorBound(1e-3)
	blob, err := CompressChunked(ds, eb, Default(ds), Options{}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	pristine, _, err := DecompressChunked(blob, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the middle chunk's payload (the parsed chunk blobs alias mut).
	mut := append([]byte(nil), blob...)
	_, chunks, err := parseChunkedContainer(mut)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 {
		t.Fatalf("%d chunks", len(chunks))
	}
	chunks[1].blob[len(chunks[1].blob)/2] ^= 0xFF

	// The strict paths refuse the whole container.
	if _, _, err := DecompressChunked(mut, 2); err == nil {
		t.Fatal("strict chunked decode accepted a damaged container")
	}
	if _, _, _, err := DecompressVerified(mut, DecompressOptions{}); err == nil {
		t.Fatal("DecompressVerified accepted a damaged container")
	}

	got, dims, rep, err := DecompressPartial(mut, DecompressOptions{})
	if err != nil {
		t.Fatalf("partial decode: %v", err)
	}
	if !dimsEqual(dims, ds.Dims) {
		t.Fatalf("dims %v", dims)
	}
	if rep.OK() {
		t.Fatal("report claims OK despite a damaged chunk")
	}
	if len(rep.DamagedChunks) != 1 || rep.DamagedChunks[0].Index != 1 {
		t.Fatalf("DamagedChunks = %+v, want exactly chunk 1", rep.DamagedChunks)
	}
	dmg := rep.DamagedChunks[0]
	plane := len(pristine) / ds.Dims[0]
	lo, hi := dmg.LeadStart*plane, (dmg.LeadStart+dmg.LeadLen)*plane
	for i, v := range got {
		if i >= lo && i < hi {
			if !math.IsNaN(float64(v)) {
				t.Fatalf("damaged region point %d = %g, want NaN", i, v)
			}
		} else if v != pristine[i] {
			t.Fatalf("intact point %d = %g, want %g", i, v, pristine[i])
		}
	}
}

// TestHostileHeaderBudget crafts valid-looking v3 headers whose declared
// volume the payload cannot plausibly back: the decoder must reject them
// quickly instead of allocating gigabytes.
func TestHostileHeaderBudget(t *testing.T) {
	craft := func(dims []int) []byte {
		h := header{
			eb:     1e-3,
			radius: 512,
			dims:   dims,
			pipe: Pipeline{
				Perm:   []int{0, 1},
				Fusion: grid.Fusion{Groups: []int{1, 1}},
			},
			psections: 1,
		}
		w := blobWriter{h: h}
		w.add(secBins, []byte{1, 2, 3})
		w.add(secLiterals, nil)
		return w.bytes()
	}
	cases := map[string][]int{
		"volume-cap":      {1 << 17, 1<<14 + 1}, // > maxDecodeVolume points
		"points-per-byte": {1 << 13, 1 << 13},   // 67M points, ~70-byte blob
	}
	for name, dims := range cases {
		t.Run(name, func(t *testing.T) {
			blob := craft(dims)
			start := time.Now()
			_, _, err := Decompress(blob)
			if err == nil {
				t.Fatal("hostile header accepted")
			}
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("error %v does not wrap ErrCorrupt", err)
			}
			if el := time.Since(start); el > time.Second {
				t.Fatalf("rejection took %v — budget gate not applied before allocation", el)
			}
		})
	}
}
