package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"cliz/internal/dataset"
	"cliz/internal/grid"
	"cliz/internal/mask"
	"cliz/internal/trace"
)

// Parallel chunked container: the dataset is split along the leading
// dimension into chunks that are compressed and decompressed concurrently —
// the library-level counterpart of the paper's per-core-file setup
// (§VII-C4). Periodic pipelines keep chunk boundaries on whole periods so
// every chunk still amortizes its own template.
//
// Container layout: magic "CLZP" | version | ndims | dims | nchunks |
// per chunk: lead-extent varint + blob-length varint + CliZ blob.
const parMagic = "CLZP"

// CompressChunked compresses ds split along dimension 0 into nChunks pieces
// using `workers` goroutines (0 = GOMAXPROCS). Each chunk is an independent
// CliZ blob, so decompression parallelizes too.
func CompressChunked(ds *dataset.Dataset, eb float64, p Pipeline, opt Options,
	nChunks, workers int) ([]byte, error) {

	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(len(ds.Dims)); err != nil {
		return nil, err
	}
	if nChunks < 1 {
		nChunks = 1
	}
	if nChunks > ds.Dims[0] {
		nChunks = ds.Dims[0]
	}
	bounds := chunkBounds(ds.Dims[0], nChunks, p.Period)
	nChunks = len(bounds) - 1
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	plane := 1
	for _, d := range ds.Dims[1:] {
		plane *= d
	}
	total := trace.Begin(opt.Trace, "chunked-total")
	blobs := make([][]byte, nChunks)
	errs := make([]error, nChunks)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for c := 0; c < nChunks; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			lo, hi := bounds[c], bounds[c+1]
			sub := &dataset.Dataset{
				Name:      fmt.Sprintf("%s#%d", ds.Name, c),
				Data:      ds.Data[lo*plane : hi*plane],
				Dims:      append([]int{hi - lo}, ds.Dims[1:]...),
				Lead:      ds.Lead,
				Periodic:  ds.Periodic,
				Mask:      chunkMask(ds.Mask, len(ds.Dims), lo, hi),
				FillValue: ds.FillValue,
			}
			cp := p
			if cp.Period > 0 && (hi-lo) < 2*cp.Period {
				cp.Period = 0
				cp.Template = nil
			}
			if err := interrupted(opt.Interrupt); err != nil {
				errs[c] = err
				return
			}
			copt := opt
			copt.Trace = trace.Prefixed(opt.Trace, fmt.Sprintf("chunk[%d]", c))
			blobs[c], errs[c] = Compress(sub, eb, cp, copt)
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]byte, 0, len(ds.Data)/2)
	out = append(out, parMagic...)
	out = append(out, version1)
	out = appendUvarint(out, uint64(len(ds.Dims)))
	for _, d := range ds.Dims {
		out = appendUvarint(out, uint64(d))
	}
	out = appendUvarint(out, uint64(nChunks))
	for c, blob := range blobs {
		out = appendUvarint(out, uint64(bounds[c+1]-bounds[c]))
		out = appendSection(out, blob)
	}
	total.EndFull(int64(len(ds.Data))*4, int64(len(out)), int64(nChunks), nil)
	return out, nil
}

// chunkMask returns the mask a chunk covering lead rows [lo, hi) should
// carry. For rank ≥ 3 the split axis is outside the horizontal plane, so the
// full mask broadcasts unchanged; for rank ≤ 2 the leading dimension IS part
// of the (lat, lon) plane, so the mask must be sliced along with the data —
// passing it whole fails the sub-dataset's validation (mask h×w != grid).
func chunkMask(m *mask.Map, rank, lo, hi int) *mask.Map {
	switch {
	case m == nil || rank >= 3:
		return m
	case rank == 2:
		return mask.New(hi-lo, m.NLon, m.Regions[lo*m.NLon:hi*m.NLon])
	default: // rank 1: the plane is 1×n and the split runs along it
		return mask.New(1, hi-lo, m.Regions[lo:hi])
	}
}

// chunkBounds splits n into about k pieces; with a period, boundaries snap
// to period multiples (except the final one).
func chunkBounds(n, k, period int) []int {
	bounds := []int{0}
	for c := 1; c < k; c++ {
		b := n * c / k
		if period > 1 {
			b -= b % period
		}
		if b > bounds[len(bounds)-1] {
			bounds = append(bounds, b)
		}
	}
	if bounds[len(bounds)-1] != n {
		bounds = append(bounds, n)
	}
	return bounds
}

// IsChunked reports whether blob is a parallel container.
func IsChunked(blob []byte) bool {
	return len(blob) >= 4 && string(blob[:4]) == parMagic
}

// IsUnit reports whether blob bears the CliZ unit-blob magic. A blob that
// passes IsUnit but fails Decompress is a damaged CliZ blob, not some other
// format — callers sniffing codecs should surface the decode error instead
// of trying the next codec.
func IsUnit(blob []byte) bool {
	return len(blob) >= 4 && string(blob[:4]) == magic
}

// DecompressChunked reverses CompressChunked, decoding chunks concurrently.
func DecompressChunked(blob []byte, workers int) ([]float32, []int, error) {
	return DecompressChunkedTraced(blob, workers, nil)
}

// DecompressChunkedTraced is DecompressChunked with an attached stage
// collector; each chunk's decode stages are path-qualified "chunk[i]/...".
func DecompressChunkedTraced(blob []byte, workers int, tc trace.Collector) ([]float32, []int, error) {
	return DecompressChunkedOpts(blob, workers, DecompressOptions{Trace: tc})
}

// DecompressChunkedOpts is DecompressChunked with full decode-side knobs
// (trace collector, decode-time bound self-verification).
func DecompressChunkedOpts(blob []byte, workers int, opt DecompressOptions) ([]float32, []int, error) {
	data, dims, _, err := decompressChunked(blob, workers, opt, false)
	return data, dims, err
}

// chunkEntry is one parsed record of a chunked container.
type chunkEntry struct {
	lead int // extent along dims[0]
	off  int // start along dims[0]
	blob []byte
}

// parseChunkedContainer validates the container framing and returns the full
// dims plus the chunk table. Resource caps gate the declared volume against
// the container size before any volume-proportional allocation.
func parseChunkedContainer(blob []byte) ([]int, []chunkEntry, error) {
	if !IsChunked(blob) {
		return nil, nil, fmt.Errorf("core: not a chunked container: %w", ErrCorrupt)
	}
	pos := 4
	if pos >= len(blob) || blob[pos] != version1 {
		return nil, nil, ErrCorrupt
	}
	pos++
	nd, err := readUvarint(blob, &pos)
	if err != nil || nd < 1 || nd > 8 {
		return nil, nil, ErrCorrupt
	}
	dims := make([]int, nd)
	vol := 1
	for i := range dims {
		d, err := readUvarint(blob, &pos)
		if err != nil || d == 0 || d > 1<<31 {
			return nil, nil, ErrCorrupt
		}
		dims[i] = int(d)
		if int(d) > (1<<33)/vol {
			return nil, nil, ErrCorrupt
		}
		vol *= int(d)
	}
	if err := checkDecodeBudget(vol, len(blob)-pos); err != nil {
		return nil, nil, err
	}
	nc, err := readUvarint(blob, &pos)
	if err != nil || nc == 0 || nc > uint64(dims[0]) {
		return nil, nil, ErrCorrupt
	}
	chunks := make([]chunkEntry, nc)
	total := 0
	for c := range chunks {
		lead, err := readUvarint(blob, &pos)
		if err != nil || lead == 0 {
			return nil, nil, ErrCorrupt
		}
		sec, err := readSection(blob, &pos)
		if err != nil {
			return nil, nil, err
		}
		chunks[c] = chunkEntry{lead: int(lead), off: total, blob: sec}
		total += int(lead)
	}
	if total != dims[0] {
		return nil, nil, ErrCorrupt
	}
	return dims, chunks, nil
}

// decompressChunked decodes a chunked container. With partial=false the
// first chunk failure aborts the whole decode; with partial=true damaged
// chunks are reported in the returned ChunkDamage list and their output
// regions are filled with quiet NaN so they cannot be mistaken for data.
func decompressChunked(blob []byte, workers int, opt DecompressOptions, partial bool) ([]float32, []int, []ChunkDamage, error) {
	dims, chunks, err := parseChunkedContainer(blob)
	if err != nil {
		return nil, nil, nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	vol := grid.Volume(dims)
	nc := len(chunks)
	plane := vol / dims[0]
	sp := trace.Begin(opt.Trace, "chunked-total")
	out := make([]float32, vol)
	errs := make([]error, nc)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for c := range chunks {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cpos := 0
			// Chunks already decode concurrently; nested intra-blob
			// parallelism would only oversubscribe the worker budget.
			copt := opt.prefixed(fmt.Sprintf("chunk[%d]", c))
			copt.Workers = 1
			data, cdims, err := decompressAt(chunks[c].blob, &cpos, copt)
			if err != nil {
				errs[c] = err
				return
			}
			// Validate the FULL dims vector: a crafted chunk whose trailing
			// dims disagree with the container (even at equal volume) would
			// otherwise write a transposed/truncated plane into out.
			if len(cdims) != len(dims) || cdims[0] != chunks[c].lead {
				errs[c] = ErrCorrupt
				return
			}
			for i := 1; i < len(dims); i++ {
				if cdims[i] != dims[i] {
					errs[c] = ErrCorrupt
					return
				}
			}
			if len(data) != chunks[c].lead*plane {
				errs[c] = ErrCorrupt
				return
			}
			copy(out[chunks[c].off*plane:(chunks[c].off+chunks[c].lead)*plane], data)
		}(c)
	}
	wg.Wait()
	var damage []ChunkDamage
	nan := float32(math.NaN())
	for c, err := range errs {
		if err == nil {
			continue
		}
		// A requested abort is not chunk damage: even a partial decode must
		// not NaN-fill a region just because the caller's deadline fired.
		if !partial || errors.Is(err, ErrInterrupted) {
			return nil, nil, nil, err
		}
		damage = append(damage, ChunkDamage{
			Index:     c,
			LeadStart: chunks[c].off,
			LeadLen:   chunks[c].lead,
			Err:       err,
		})
		region := out[chunks[c].off*plane : (chunks[c].off+chunks[c].lead)*plane]
		for i := range region {
			region[i] = nan
		}
	}
	sp.EndFull(int64(len(blob)), int64(vol)*4, int64(nc), nil)
	return out, dims, damage, nil
}
