package core

import (
	"fmt"
	"sync"

	"cliz/internal/grid"
	"cliz/internal/interp"
	"cliz/internal/lorenzo"
	"cliz/internal/par"
	"cliz/internal/predict"
	"cliz/internal/trace"
)

// Intra-blob parallelism: the fused leading dimension is cut into P
// contiguous sections and each section runs its own prediction/quantization
// (or reconstruction) engine. Sections are independent — predictions never
// reference across a section boundary — so the partition is part of the
// format: v2 blobs record P (header.psections) and the decoder replays the
// identical partition whatever its own worker budget is. Bins stay in global
// grid order (sections are contiguous in row-major memory); the literal
// stream is the concatenation of the sections' literals, and the decoder
// recovers each section's share by counting bin==0 at valid points.

// minSectionVol keeps sections large enough that the per-section engine
// setup stays negligible.
const minSectionVol = 1 << 15

// minSectionLead is the floor on each section's extent along the fused
// leading dimension. Every section restarts the interpolation hierarchy, so
// a cut costs roughly one coarse level's worth of extra anchors; measured on
// the perf corpus that is ~0.5-0.7% of the blob per boundary at 128+ planes
// per section and grows sharply below (a 25-plane field cut in two loses
// ~15%). The floor keeps the parallel encoding's ratio within the ~1%
// parity contract: short leading extents simply don't section, and the
// entropy shards (which are ratio-neutral) carry the parallelism instead.
const minSectionLead = 128

// sectionCount picks the number of predict sections for a worker budget.
// leadFloor <= 0 selects minSectionLead (tests lower it to exercise
// sectioning on small fixtures).
func sectionCount(workers int, fdims []int, leadFloor int) int {
	if workers <= 1 || len(fdims) == 0 {
		return 1
	}
	if leadFloor <= 0 {
		leadFloor = minSectionLead
	}
	p := workers
	if m := fdims[0] / leadFloor; p > m {
		p = m
	}
	vol := 1
	for _, d := range fdims {
		vol *= d
	}
	if m := vol / minSectionVol; p > m {
		p = m
	}
	if p < 1 {
		p = 1
	}
	return p
}

// sectionBounds cuts the leading extent n into k near-equal pieces (it is
// chunkBounds without period snapping, shared by encode and decode).
func sectionBounds(n, k int) []int {
	return chunkBounds(n, k, 0)
}

// predictSections runs prediction+quantization over P contiguous sections of
// the (logically) fused grid, writing bins into a global slice and returning
// the concatenated literal stream. The engines run in place on work, which
// holds the original values at lay's physical positions on entry and the
// reconstruction on exit. Sections cut the leading logical axis, so their
// physical footprints are disjoint and the engines never race. P==1 degrades
// to one engine over the whole grid on the calling goroutine.
func predictSections(work []float32, lay grid.Layout, tvalid []bool, eb float64,
	p Pipeline, fill float32, opt Options, P int) ([]int32, []float32, error) {

	fdims := lay.Dims
	vol := grid.Volume(fdims)
	bins := make([]int32, vol)
	bounds := sectionBounds(fdims[0], P)
	nSec := len(bounds) - 1
	plane := vol / fdims[0]
	secLits := make([][]float32, nSec)
	errs := make([]error, nSec)
	par.Run(opt.workers(), nSec, func(i int) {
		lo, hi := bounds[i]*plane, bounds[i+1]*plane
		slay := lay.Section(bounds[i], bounds[i+1])
		var svalid []bool
		if tvalid != nil {
			svalid = tvalid[lo:hi]
		}
		// Serial runs are traced by the caller's single "predict" span; the
		// sectioned path emits per-shard spans that Aggregate folds back
		// into one "predict" row.
		var tc trace.Collector
		if nSec > 1 {
			tc = trace.Prefixed(opt.Trace, fmt.Sprintf("shard[%d]", i))
		}
		sp := trace.Begin(tc, "predict")
		var lits []float32
		var err error
		if p.Fitting == predict.Lorenzo {
			lits, err = lorenzo.CompressLayout(work, slay, lorenzo.Config{
				EB: eb, Radius: opt.radius(), Valid: svalid, FillValue: fill,
			}, bins[lo:hi])
		} else {
			lits, err = interp.CompressLayout(work, slay, interp.Config{
				EB:            eb,
				Radius:        opt.radius(),
				Fitting:       p.Fitting,
				Valid:         svalid,
				FillValue:     fill,
				LevelEBFactor: levelEBFactor(p.LevelAlpha),
			}, bins[lo:hi])
		}
		if err != nil {
			errs[i] = err
			return
		}
		secLits[i] = lits
		sp.EndFull(int64(hi-lo)*4, 0, int64(hi-lo), nil)
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	var lits []float32
	if nSec == 1 {
		lits = secLits[0]
	} else {
		total := 0
		for _, l := range secLits {
			total += len(l)
		}
		lits = make([]float32, 0, total)
		for _, l := range secLits {
			lits = append(lits, l...)
		}
	}
	return bins, lits, nil
}

// reconstructSections reverses predictSections: the same partition (P from
// the blob header) is replayed over the global bins, each section consuming
// its own prefix of the literal stream, with up to `workers` concurrent
// engines. The reconstruction lands at lay's physical positions in the
// caller-provided out buffer — under a fused layout that is already the
// original array layout, so no unpermute pass follows.
func reconstructSections(bins []int32, lits []float32, lay grid.Layout, tvalid []bool,
	h header, workers, P int, tc trace.Collector, out []float32) error {

	fdims := lay.Dims
	bounds, litStart, err := sectionLitStarts(bins, lits, fdims, tvalid, P)
	if err != nil {
		return err
	}
	nSec := len(bounds) - 1
	plane := len(bins) / fdims[0]
	errs := make([]error, nSec)
	par.Run(workers, nSec, func(i int) {
		lo, hi := bounds[i]*plane, bounds[i+1]*plane
		slay := lay.Section(bounds[i], bounds[i+1])
		var svalid []bool
		if tvalid != nil {
			svalid = tvalid[lo:hi]
		}
		var stc trace.Collector
		if nSec > 1 {
			stc = trace.Prefixed(tc, fmt.Sprintf("shard[%d]", i))
		}
		sp := trace.Begin(stc, "reconstruct")
		if h.pipe.Fitting == predict.Lorenzo {
			errs[i] = lorenzo.DecompressLayout(bins[lo:hi], lits[litStart[i]:], slay, lorenzo.Config{
				EB: h.eb, Radius: h.radius, Valid: svalid, FillValue: h.fill,
			}, out)
		} else {
			errs[i] = interp.DecompressLayout(bins[lo:hi], lits[litStart[i]:], slay, interp.Config{
				EB:            h.eb,
				Radius:        h.radius,
				Fitting:       h.pipe.Fitting,
				Valid:         svalid,
				FillValue:     h.fill,
				LevelEBFactor: levelEBFactor(h.pipe.LevelAlpha),
			}, out)
		}
		sp.EndFull(int64(hi-lo)*4, int64(hi-lo)*4, int64(hi-lo), nil)
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// sectionLitStarts replays the encoder's section partition and computes each
// section's literal-stream start. Each section consumes exactly one literal
// per valid bin-0 point it handles; prefix sums give every section its slice
// start. Slices are open-ended past the start so section-local underrun
// checks match the serial engine's.
func sectionLitStarts(bins []int32, lits []float32, fdims []int, tvalid []bool, P int) ([]int, []int, error) {
	if len(fdims) == 0 || fdims[0] < P || P < 1 {
		return nil, nil, ErrCorrupt
	}
	bounds := sectionBounds(fdims[0], P)
	nSec := len(bounds) - 1
	plane := len(bins) / fdims[0]
	litStart := make([]int, nSec+1)
	for i := 0; i < nSec; i++ {
		lo, hi := bounds[i]*plane, bounds[i+1]*plane
		cnt := 0
		for j := lo; j < hi; j++ {
			if bins[j] == 0 && (tvalid == nil || tvalid[j]) {
				cnt++
			}
		}
		litStart[i+1] = litStart[i] + cnt
	}
	if litStart[nSec] > len(lits) {
		return nil, nil, fmt.Errorf("core: literal stream underrun: %w", ErrCorrupt)
	}
	return bounds, litStart, nil
}

// verifySections mirrors reconstructSections in verify mode: each section
// replays its prediction traversal read-only over the finished
// reconstruction (addressed through lay) and checks that every `every`-th
// point is exactly regenerated from its recorded bin or literal. Returns the
// total number of points checked.
func verifySections(bins []int32, lits []float32, lay grid.Layout, tvalid []bool,
	h header, workers, P, every int, recon []float32) (int, error) {

	fdims := lay.Dims
	bounds, litStart, err := sectionLitStarts(bins, lits, fdims, tvalid, P)
	if err != nil {
		return 0, err
	}
	nSec := len(bounds) - 1
	plane := len(bins) / fdims[0]
	counts := make([]int, nSec)
	errs := make([]error, nSec)
	par.Run(workers, nSec, func(i int) {
		lo, hi := bounds[i]*plane, bounds[i+1]*plane
		slay := lay.Section(bounds[i], bounds[i+1])
		var svalid []bool
		if tvalid != nil {
			svalid = tvalid[lo:hi]
		}
		if h.pipe.Fitting == predict.Lorenzo {
			counts[i], errs[i] = lorenzo.VerifyLayout(bins[lo:hi], lits[litStart[i]:], slay, lorenzo.Config{
				EB: h.eb, Radius: h.radius, Valid: svalid, FillValue: h.fill,
			}, recon, every)
		} else {
			counts[i], errs[i] = interp.VerifyLayout(bins[lo:hi], lits[litStart[i]:], slay, interp.Config{
				EB:            h.eb,
				Radius:        h.radius,
				Fitting:       h.pipe.Fitting,
				Valid:         svalid,
				FillValue:     h.fill,
				LevelEBFactor: levelEBFactor(h.pipe.LevelAlpha),
			}, recon, every)
		}
	})
	total := 0
	for i, err := range errs {
		if err != nil {
			return 0, err
		}
		total += counts[i]
	}
	return total, nil
}

// symsPool recycles the uint32 staging slice the unclassified encode path
// uses to gather valid-point bins for entropy coding.
var symsPool = sync.Pool{New: func() any { return new([]uint32) }}
