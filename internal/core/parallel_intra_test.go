package core

import (
	"bytes"
	"os"
	"testing"

	"cliz/internal/predict"
)

// TestChunkedPlaneMismatchRejected pins the fix for the chunked decoder's
// dims validation: a container whose trailing dims disagree with the
// embedded chunk's (at equal volume and matching lead extent) used to pass
// the old dims[0]-only check and silently copy a transposed plane into the
// output. It must be rejected as corrupt.
func TestChunkedPlaneMismatchRejected(t *testing.T) {
	blob := chunkedPlaneMismatch(t)
	if _, _, err := DecompressChunked(blob, 2); err == nil {
		t.Fatal("container with swapped trailing dims decoded without error")
	}
}

// TestEncodeDeterministicForFixedWorkers asserts the determinism contract:
// the encoded blob depends only on (data, pipeline, options) — never on
// goroutine scheduling.
func TestEncodeDeterministicForFixedWorkers(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Period = 12
	p.Classify = true
	for _, w := range []int{1, 2, 4, 8} {
		var prev []byte
		for run := 0; run < 3; run++ {
			blob, err := Compress(ds, eb, p, Options{Workers: w, sectionLeadFloor: 8})
			if err != nil {
				t.Fatalf("workers=%d run=%d: %v", w, run, err)
			}
			if prev != nil && !bytes.Equal(prev, blob) {
				t.Fatalf("workers=%d: encode not deterministic across runs", w)
			}
			prev = blob
		}
	}
}

// TestDecodeWorkerCountIndependence asserts that decode output is identical
// for every decode-side worker count: the section partition is read from the
// blob header, and the shard directory is self-describing.
func TestDecodeWorkerCountIndependence(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Period = 12
	p.Classify = true
	blob, err := Compress(ds, eb, p, Options{Workers: 8, sectionLeadFloor: 8})
	if err != nil {
		t.Fatal(err)
	}
	ref, refDims, err := Decompress(blob)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, ds, ref, eb)
	for _, w := range []int{1, 2, 3, 8, 16} {
		got, dims, err := DecompressWithOptions(blob, DecompressOptions{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !dimsEqual(dims, refDims) {
			t.Fatalf("workers=%d: dims %v want %v", w, dims, refDims)
		}
		if !bytes.Equal(floatsToBytes(got), floatsToBytes(ref)) {
			t.Fatalf("workers=%d: decode output differs from serial decode", w)
		}
	}
}

// TestWorkersRoundTripPipelines round-trips every pipeline shape through the
// parallel encoder: sectioned prediction changes which neighbours each
// section's predictor sees, so the reconstruction may differ from the serial
// one — but it must still respect the error bound everywhere.
func TestWorkersRoundTripPipelines(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	pipes := map[string]func() Pipeline{
		"default": func() Pipeline { return Default(ds) },
		"classify": func() Pipeline {
			p := Default(ds)
			p.Classify = true
			return p
		},
		"periodic": func() Pipeline {
			p := Default(ds)
			p.Period = 12
			return p
		},
		"lorenzo": func() Pipeline {
			p := Default(ds)
			p.Fitting = predict.Lorenzo
			return p
		},
	}
	for name, mk := range pipes {
		for _, w := range []int{2, 8} {
			blob, err := Compress(ds, eb, mk(), Options{Workers: w, sectionLeadFloor: 8})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			recon, dims, err := Decompress(blob)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, w, err)
			}
			if !dimsEqual(dims, ds.Dims) {
				t.Fatalf("%s workers=%d: dims %v", name, w, dims)
			}
			checkBound(t, ds, recon, eb)
		}
	}
}

// TestChunkedSingleChunkMatchesUnchunked: a 1-chunk container runs the exact
// same pipeline over the exact same data as the plain compressor, so the two
// reconstructions must agree bit-for-bit (the property test anchoring the
// chunked/unchunked equivalence family).
func TestChunkedSingleChunkMatchesUnchunked(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Period = 12
	plain, err := Compress(ds, eb, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := CompressChunked(ds, eb, p, Options{}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Decompress(plain)
	if err != nil {
		t.Fatal(err)
	}
	got, dims, err := DecompressChunked(chunked, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !dimsEqual(dims, ds.Dims) {
		t.Fatalf("dims %v", dims)
	}
	if !bytes.Equal(floatsToBytes(got), floatsToBytes(want)) {
		t.Fatal("single-chunk container decode differs from plain decode")
	}
}

// TestChunkedPeriodSnappedEquivalence sweeps chunk counts over a periodic
// pipeline (bounds snap to whole periods) and worker counts, requiring every
// combination to reconstruct within the bound with worker-count-independent
// decode output.
func TestChunkedPeriodSnappedEquivalence(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Period = 12
	p.Classify = true
	for _, nChunks := range []int{2, 3, 5} {
		blob, err := CompressChunked(ds, eb, p, Options{Workers: 2, sectionLeadFloor: 8}, nChunks, 2)
		if err != nil {
			t.Fatalf("chunks=%d: %v", nChunks, err)
		}
		var ref []byte
		for _, w := range []int{1, 2, 4} {
			recon, dims, err := DecompressChunked(blob, w)
			if err != nil {
				t.Fatalf("chunks=%d workers=%d: %v", nChunks, w, err)
			}
			if !dimsEqual(dims, ds.Dims) {
				t.Fatalf("chunks=%d: dims %v", nChunks, dims)
			}
			checkBound(t, ds, recon, eb)
			raw := floatsToBytes(recon)
			if ref == nil {
				ref = raw
			} else if !bytes.Equal(ref, raw) {
				t.Fatalf("chunks=%d workers=%d: decode differs", nChunks, w)
			}
		}
	}
}

// TestWorkers1MatchesV1Golden pins the format-compatibility contract: the
// Workers=1 v3 encoding of a fixture's inputs carries byte-identical section
// payloads to the committed v1 blob — only the version byte, the psections
// field, and the integrity directory differ. The expected blob is built by
// re-wrapping the v1 fixture's own sections with the v3 writer.
func TestWorkers1MatchesV1Golden(t *testing.T) {
	v1, err := os.ReadFile(goldenPath("cubic-default", ".clz"))
	if err != nil {
		t.Fatalf("%v (v1 fixture missing)", err)
	}
	ds := smallHurricane()
	eb := ds.AbsErrorBound(1e-2)
	v3, err := Compress(ds, eb, Default(ds), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pos := 0
	h, err := parseHeader(v1, &pos)
	if err != nil {
		t.Fatalf("v1 fixture header: %v", err)
	}
	if h.psections != 1 {
		t.Fatalf("v1 fixture parsed psections=%d, want implied 1", h.psections)
	}
	var ids []byte
	if h.flags&(flagMask|flagPointMask) != 0 {
		ids = append(ids, secMask)
	}
	if h.flags&flagClassify != 0 {
		ids = append(ids, secClassMeta, secBinsA, secBinsB)
	} else {
		ids = append(ids, secBins)
	}
	ids = append(ids, secLiterals)
	w := blobWriter{h: h}
	for _, id := range ids {
		sec, err := readSection(v1, &pos)
		if err != nil {
			t.Fatalf("v1 fixture section %s: %v", sectionName(id), err)
		}
		w.add(id, sec)
	}
	if pos != len(v1) {
		t.Fatalf("v1 fixture has %d trailing bytes", len(v1)-pos)
	}
	want := w.bytes()
	if !bytes.Equal(v3, want) {
		t.Fatalf("Workers=1 v3 encode diverges from the re-wrapped v1 fixture beyond the header (%d vs %d bytes)",
			len(v3), len(want))
	}
}
