package core

import (
	"fmt"
	"sync"
	"testing"

	"cliz/internal/trace"
)

// TestChunkedStress drives the parallel container through mismatched
// chunk/worker combinations — more chunks than lead planes, more workers
// than chunks, workers=0 (GOMAXPROCS) — with a shared trace collector
// attached so the concurrent Record path is exercised too. Run with -race.
func TestChunkedStress(t *testing.T) {
	ds := smallHurricane()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	cases := []struct{ nChunks, workers int }{
		{1, 1},
		{2, 8},               // more workers than chunks
		{7, 2},               // more chunks than workers
		{5, 0},               // workers=0 -> GOMAXPROCS
		{ds.Dims[0] + 10, 3}, // more chunks than lead planes: clamped
		{ds.Dims[0], 0},      // one plane per chunk
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("chunks=%d_workers=%d", tc.nChunks, tc.workers), func(t *testing.T) {
			t.Parallel()
			var rec trace.Recorder
			blob, err := CompressChunked(ds, eb, p, Options{Trace: &rec}, tc.nChunks, tc.workers)
			if err != nil {
				t.Fatal(err)
			}
			// Decode the same blob concurrently with different worker
			// counts, all feeding one collector.
			var dec trace.Recorder
			var wg sync.WaitGroup
			errs := make([]error, 3)
			for i := 0; i < 3; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					data, dims, err := DecompressChunkedTraced(blob, i, &dec)
					if err != nil {
						errs[i] = err
						return
					}
					if !dimsEqual(dims, ds.Dims) || len(data) != len(ds.Data) {
						errs[i] = fmt.Errorf("shape %v / %d points", dims, len(data))
						return
					}
					for j, v := range data {
						if diff := float64(v) - float64(ds.Data[j]); diff > eb*1.00001 || diff < -eb*1.00001 {
							errs[i] = fmt.Errorf("point %d: error %g exceeds bound %g", j, diff, eb)
							return
						}
					}
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("decoder %d: %v", i, err)
				}
			}
			if len(dec.Stages()) == 0 {
				t.Fatal("no decode stages recorded")
			}
		})
	}
}

// TestChunkedConcurrentCompress compresses the same dataset from several
// goroutines at once (the adapter cache path does this under a benchmark
// harness); -race must stay silent.
func TestChunkedConcurrentCompress(t *testing.T) {
	ds := smallHurricane()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	var wg sync.WaitGroup
	blobs := make([][]byte, 4)
	errs := make([]error, 4)
	for i := range blobs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			blobs[i], errs[i] = CompressChunked(ds, eb, p, Options{}, 3, 2)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("compressor %d: %v", i, err)
		}
		if len(blobs[i]) == 0 {
			t.Fatalf("compressor %d: empty blob", i)
		}
	}
	// Deterministic pipeline => identical containers.
	for i := 1; i < len(blobs); i++ {
		if string(blobs[i]) != string(blobs[0]) {
			t.Fatalf("blob %d differs from blob 0 (%d vs %d bytes)", i, len(blobs[i]), len(blobs[0]))
		}
	}
}

// TestIntraBlobRaceStress hammers the intra-blob parallel encode and decode
// paths — sectioned prediction/reconstruction, sharded entropy coding, the
// pooled scratch buffers and parallel transposes — from several goroutines
// at once so `go test -race` observes them under real contention. Every
// iteration also checks the determinism contract against a reference blob.
func TestIntraBlobRaceStress(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Period = 12
	p.Classify = true
	ref, err := Compress(ds, eb, p, Options{Workers: 4, sectionLeadFloor: 8})
	if err != nil {
		t.Fatal(err)
	}
	refOut, _, err := DecompressWithOptions(ref, DecompressOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	refRaw := floatsToBytes(refOut)

	const goroutines = 4
	const iters = 3
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				blob, err := Compress(ds, eb, p, Options{Workers: 4, sectionLeadFloor: 8})
				if err != nil {
					errs[g] = err
					return
				}
				if string(blob) != string(ref) {
					errs[g] = fmt.Errorf("iteration %d: encode not deterministic", it)
					return
				}
				out, _, err := DecompressWithOptions(blob, DecompressOptions{Workers: 4})
				if err != nil {
					errs[g] = err
					return
				}
				if string(floatsToBytes(out)) != string(refRaw) {
					errs[g] = fmt.Errorf("iteration %d: decode output differs", it)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}
