package core

import (
	"testing"

	"cliz/internal/datagen"
	"cliz/internal/stats"
)

func TestChunkedRoundTrip(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Period = 12
	p.Classify = true
	for _, nChunks := range []int{1, 2, 3, 7} {
		blob, err := CompressChunked(ds, eb, p, Options{}, nChunks, 4)
		if err != nil {
			t.Fatalf("chunks=%d: %v", nChunks, err)
		}
		if !IsChunked(blob) {
			t.Fatal("missing container magic")
		}
		got, dims, err := DecompressChunked(blob, 4)
		if err != nil {
			t.Fatalf("chunks=%d: %v", nChunks, err)
		}
		if !dimsEqual(dims, ds.Dims) {
			t.Fatalf("dims %v", dims)
		}
		valid := ds.Validity()
		if e := stats.MaxAbsErr(ds.Data, got, valid); e > eb*(1+1e-9) {
			t.Fatalf("chunks=%d: bound violated: %g > %g", nChunks, e, eb)
		}
	}
}

func TestChunkedMatchesSerial(t *testing.T) {
	// A single chunk must reproduce exactly what serial compression decodes
	// to (same pipeline, same data).
	ds := smallHurricane()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	serial, err := Compress(ds, eb, p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sData, _, err := Decompress(serial)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := CompressChunked(ds, eb, p, Options{}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cData, _, err := DecompressChunked(chunked, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sData {
		if sData[i] != cData[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestChunkBoundsPeriodAligned(t *testing.T) {
	b := chunkBounds(84, 4, 12)
	if b[0] != 0 || b[len(b)-1] != 84 {
		t.Fatalf("bounds %v", b)
	}
	for _, x := range b[1 : len(b)-1] {
		if x%12 != 0 {
			t.Fatalf("boundary %d not on a period", x)
		}
	}
	// Degenerate: more chunks than steps.
	b = chunkBounds(3, 10, 0)
	if b[len(b)-1] != 3 {
		t.Fatalf("bounds %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("non-monotonic bounds %v", b)
		}
	}
}

func TestChunkedShortChunksDropPeriod(t *testing.T) {
	// Chunks shorter than two periods must silently fall back to
	// non-periodic compression and still round-trip.
	ds := datagen.SSH(0.08)
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Period = 12
	nChunks := ds.Dims[0] / 12 // every chunk is a single period
	blob, err := CompressChunked(ds, eb, p, Options{}, nChunks, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := DecompressChunked(blob, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.MaxAbsErr(ds.Data, got, ds.Validity()); e > eb*(1+1e-9) {
		t.Fatalf("bound violated: %g", e)
	}
}

func TestChunkedCorrupt(t *testing.T) {
	ds := smallHurricane()
	blob, err := CompressChunked(ds, ds.AbsErrorBound(1e-2), Default(ds), Options{}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecompressChunked(nil, 1); err == nil {
		t.Fatal("nil accepted")
	}
	if _, _, err := DecompressChunked([]byte("CLZPx"), 1); err == nil {
		t.Fatal("bad version accepted")
	}
	for _, cut := range []int{6, len(blob) / 2, len(blob) - 2} {
		if _, _, err := DecompressChunked(blob[:cut], 1); err == nil {
			t.Fatalf("truncated (%d) accepted", cut)
		}
	}
	// Serial Decompress must reject the container (wrong magic for it).
	if _, _, err := Decompress(blob); err == nil {
		t.Fatal("unit decoder accepted a container")
	}
}
