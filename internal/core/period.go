package core

import (
	"fmt"
	"math/rand"

	"cliz/internal/dataset"
	"cliz/internal/fft"
)

// DetectPeriod estimates the dataset's period along the leading (time)
// dimension from the magnitude spectra of sampled rows (paper §VI-D,
// Fig. 8). It returns 0 when the data shows no usable periodicity. The
// sampling and FFT are deterministic for a given dataset.
func DetectPeriod(ds *dataset.Dataset, sampleRows int) int {
	return DetectPeriodFull(ds, sampleRows).Period
}

// DetectPeriodFull is DetectPeriod with the full spectral evidence: the
// adopted peak's strength and the averaged spectrum ride along for callers
// that grade confidence (the fast estimator). The returned Period is already
// gated exactly as DetectPeriod gates it — estimator and tuner share one
// periodicity breakpoint by construction.
func DetectPeriodFull(ds *dataset.Dataset, sampleRows int) fft.PeriodResult {
	if ds.Lead != dataset.LeadTime || len(ds.Dims) < 2 {
		return fft.PeriodResult{}
	}
	nT := ds.Dims[0]
	if nT < 8 {
		return fft.PeriodResult{}
	}
	plane := 1
	for _, d := range ds.Dims[1:] {
		plane *= d
	}
	var valid []bool
	if ds.Mask != nil {
		// Validity of one horizontal plane, tiled over any inner height dim.
		valid, _ = ds.Mask.Broadcast(ds.Dims[1:])
	}
	if sampleRows <= 0 {
		sampleRows = 10 // the paper's Fig. 8 uses 10 rows
	}
	rng := rand.New(rand.NewSource(12345))
	rows := make([][]float64, 0, sampleRows)
	for attempts := 0; attempts < sampleRows*20 && len(rows) < sampleRows; attempts++ {
		p := rng.Intn(plane)
		if valid != nil && !valid[p] {
			continue
		}
		row := make([]float64, nT)
		for t := 0; t < nT; t++ {
			row[t] = float64(ds.Data[t*plane+p])
		}
		rows = append(rows, row)
	}
	res := fft.DetectPeriod(rows, 0.7, 5)
	if res.Period >= 2 && nT < 2*res.Period {
		// Fewer than two full cycles: periodic extraction is untestable, so
		// the tuner never considers this period. Zero it here so every
		// caller sees the gated value.
		res.Period = 0
	}
	return res
}

// PeriodicResidual exposes the periodic component extraction for analysis
// (paper Fig. 9): it compresses the dataset's template with the given
// pipeline and returns data − reconstructed-template — exactly the residual
// the periodic compression path encodes.
func PeriodicResidual(ds *dataset.Dataset, period int, tmplPipe Pipeline) ([]float32, error) {
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if period < 2 || ds.Dims[0] < 2*period {
		return nil, fmt.Errorf("core: period %d unusable for dims %v", period, ds.Dims)
	}
	var v validity
	if tmplPipe.UseMask {
		v.hm = ds.Mask
	}
	valid, err := v.bitmap(ds.Dims)
	if err != nil {
		return nil, err
	}
	tmplData, tmplDims, tmplValid := buildTemplate(ds.Data, ds.Dims, valid, period, ds.FillValue)
	tv := validity{}
	if v.hm != nil {
		tv.hm = v.hm
	} else if tmplValid != nil {
		tv.pts = tmplValid
	}
	tp := templatePipeline(tmplPipe, len(tmplDims))
	_, tmplRecon, err := compressUnit(tmplData, tmplDims, tv, 1e-6, tp, ds.FillValue, Options{})
	if err != nil {
		return nil, err
	}
	return subtractTemplate(ds.Data, tmplRecon, ds.Dims, period, valid, ds.FillValue), nil
}

// buildTemplate computes the template data (paper §VI-D): the per-phase mean
// across all periods, using valid contributions only. Output dims are
// [period, dims[1:]...]. It also returns the template's validity bitmap
// (nil when valid is nil): a template cell is valid when at least one
// contributing point was valid; invalid cells hold the fill value.
func buildTemplate(data []float32, dims []int, valid []bool, period int, fill float32) ([]float32, []int, []bool) {
	nT := dims[0]
	plane := 1
	for _, d := range dims[1:] {
		plane *= d
	}
	tmplDims := append([]int{period}, dims[1:]...)
	sum := make([]float64, period*plane)
	var cnt []int32
	if valid != nil {
		cnt = make([]int32, period*plane)
	} else {
		cnt = make([]int32, period) // one counter per phase suffices
	}
	for t := 0; t < nT; t++ {
		ph := t % period
		off := t * plane
		toff := ph * plane
		if valid == nil {
			cnt[ph]++
			for p := 0; p < plane; p++ {
				sum[toff+p] += float64(data[off+p])
			}
			continue
		}
		for p := 0; p < plane; p++ {
			if valid[off+p] {
				sum[toff+p] += float64(data[off+p])
				cnt[toff+p]++
			}
		}
	}
	out := make([]float32, period*plane)
	var tmplValid []bool
	if valid != nil {
		tmplValid = make([]bool, period*plane)
		for i := range out {
			if cnt[i] == 0 {
				out[i] = fill
				continue
			}
			tmplValid[i] = true
			out[i] = float32(sum[i] / float64(cnt[i]))
		}
		return out, tmplDims, tmplValid
	}
	for ph := 0; ph < period; ph++ {
		inv := 1.0 / float64(cnt[ph])
		for p := 0; p < plane; p++ {
			idx := ph*plane + p
			out[idx] = float32(sum[idx] * inv)
		}
	}
	return out, tmplDims, nil
}

// subtractTemplate returns data − tiled template (residual); masked points
// hold the fill value. The template passed here is normally the *lossy
// reconstruction* so the residual's error bound alone bounds the composed
// error.
func subtractTemplate(data, tmpl []float32, dims []int, period int, valid []bool, fill float32) []float32 {
	nT := dims[0]
	plane := len(data) / nT
	out := make([]float32, len(data))
	for t := 0; t < nT; t++ {
		ph := t % period
		for p := 0; p < plane; p++ {
			idx := t*plane + p
			if valid != nil && !valid[idx] {
				out[idx] = fill
				continue
			}
			out[idx] = data[idx] - tmpl[ph*plane+p]
		}
	}
	return out
}

// addTemplate reverses subtractTemplate (without mask handling — callers
// re-apply fill values afterwards).
func addTemplate(residual, tmpl []float32, dims []int, period int) []float32 {
	nT := dims[0]
	plane := len(residual) / nT
	out := make([]float32, len(residual))
	for t := 0; t < nT; t++ {
		ph := t % period
		for p := 0; p < plane; p++ {
			out[t*plane+p] = residual[t*plane+p] + tmpl[ph*plane+p]
		}
	}
	return out
}
