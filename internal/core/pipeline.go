// Package core implements the CliZ compressor (paper §IV, §VI): an
// error-bounded lossy compressor for climate datasets built on the SZ3
// framework, extended with mask-map-aware prediction, dimension permutation
// and fusion, periodic component extraction, and quantization-bin
// classification with multi-Huffman encoding — all selected by a
// sampling-based offline auto-tuner.
package core

import (
	"fmt"
	"strings"

	"cliz/internal/dataset"
	"cliz/internal/grid"
	"cliz/internal/predict"
)

// Pipeline is one fully-specified compression configuration — the output of
// the offline auto-tuning stage (paper Fig. 2) and the input of the online
// compression stage.
type Pipeline struct {
	// Perm is the dimension permutation (paper §VI-C): axis Perm[i] of the
	// dataset becomes prediction axis i.
	Perm []int
	// Fusion merges adjacent post-permutation dimensions (paper §VI-C).
	Fusion grid.Fusion
	// Fitting selects the linear or cubic fitting predictor (paper §VI-B).
	Fitting predict.Fitting
	// Classify enables quantization-bin classification and multi-Huffman
	// encoding (paper §VI-E).
	Classify bool
	// UseMask enables mask-map-based prediction (paper §VI-B). Per the
	// paper this is the user's decision, not the tuner's.
	UseMask bool
	// Period > 0 enables periodic component extraction with that period
	// along the leading (time) dimension (paper §VI-D).
	Period int
	// Template optionally carries a separately-tuned pipeline for the
	// template data (nil selects a default); only meaningful if Period > 0.
	Template *Pipeline
	// LevelAlpha tightens the error bound of coarse interpolation levels:
	// eb_ℓ = eb / min(α^(ℓ−1), 4). Values ≤ 1 (including 0) mean a flat
	// bound. This is the level-wise tuning knob QoZ introduced and newer
	// SZ3 releases adopted; CliZ's tuner selects it after the pipeline
	// search.
	LevelAlpha float64
}

// Default returns the baseline pipeline for a dataset: natural dimension
// order, no fusion, cubic fitting, mask honoured when present, no period or
// classification.
func Default(ds *dataset.Dataset) Pipeline {
	n := len(ds.Dims)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return Pipeline{
		Perm:    perm,
		Fusion:  grid.NoFusion(n),
		Fitting: predict.Cubic,
		UseMask: ds.Mask != nil,
	}
}

// Validate checks the pipeline against a dataset rank.
func (p Pipeline) Validate(n int) error {
	if !grid.ValidPerm(p.Perm, n) {
		return fmt.Errorf("core: invalid permutation %v for rank %d", p.Perm, n)
	}
	if !p.Fusion.Valid(n) {
		return fmt.Errorf("core: invalid fusion %v for rank %d", p.Fusion.Groups, n)
	}
	if p.Period < 0 {
		return fmt.Errorf("core: negative period %d", p.Period)
	}
	if p.Template != nil && p.Period == 0 {
		return fmt.Errorf("core: template pipeline without a period")
	}
	if p.LevelAlpha < 0 {
		return fmt.Errorf("core: negative level alpha %g", p.LevelAlpha)
	}
	return nil
}

// String renders the pipeline in the paper's table notation, e.g.
// "period=12 mask classify perm=201 fuse=1&2 fit=Linear".
func (p Pipeline) String() string {
	var b strings.Builder
	if p.Period > 0 {
		fmt.Fprintf(&b, "period=%d ", p.Period)
	}
	if p.UseMask {
		b.WriteString("mask ")
	}
	if p.Classify {
		b.WriteString("classify ")
	}
	fmt.Fprintf(&b, "perm=%s fuse=%s fit=%s",
		grid.PermString(p.Perm), p.Fusion.String(), p.Fitting)
	if p.LevelAlpha > 1 {
		fmt.Fprintf(&b, " alpha=%g", p.LevelAlpha)
	}
	return b.String()
}
