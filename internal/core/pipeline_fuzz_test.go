package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cliz/internal/dataset"
	"cliz/internal/entropy"
	"cliz/internal/grid"
	"cliz/internal/mask"
	"cliz/internal/predict"
	"cliz/internal/stats"
)

// TestQuickRandomPipelines round-trips random datasets through random valid
// pipelines (permutation × fusion × fitting × classify × period × alpha ×
// entropy coder) and asserts the error bound plus dims fidelity — the
// broadest single property the compressor must satisfy.
func TestQuickRandomPipelines(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rank := rng.Intn(3) + 1
		dims := make([]int, rank)
		vol := 1
		for i := range dims {
			dims[i] = rng.Intn(14) + 2
			vol *= dims[i]
		}
		data := make([]float32, vol)
		base := rng.NormFloat64() * 100
		for i := range data {
			data[i] = float32(base + 10*math.Sin(float64(i)/7) + rng.NormFloat64())
		}
		ds := &dataset.Dataset{Name: "fuzz", Data: data, Dims: dims}
		// Random mask on rank ≥ 2.
		if rank >= 2 && rng.Intn(2) == 0 {
			nLat, nLon := dims[rank-2], dims[rank-1]
			regions := make([]int32, nLat*nLon)
			for i := range regions {
				if rng.Float64() > 0.3 {
					regions[i] = 1
				}
			}
			ds.Mask = mask.New(nLat, nLon, regions)
			ds.FillValue = 9.96921e36
			valid := ds.Validity()
			for i, ok := range valid {
				if !ok {
					ds.Data[i] = ds.FillValue
				}
			}
		}
		// A masked periodic dataset needs rank ≥ 3 (the mask must not span
		// the time axis); dataset.Validate rejects the combination.
		if rank >= 2 && rng.Intn(2) == 0 && (ds.Mask == nil || rank >= 3) {
			ds.Lead = dataset.LeadTime
			ds.Periodic = true
		}
		perms := grid.Permutations(rank)
		fusions := grid.Compositions(rank)
		fits := []predict.Fitting{predict.Linear, predict.Cubic, predict.Lorenzo}
		p := Pipeline{
			Perm:     perms[rng.Intn(len(perms))],
			Fusion:   fusions[rng.Intn(len(fusions))],
			Fitting:  fits[rng.Intn(len(fits))],
			Classify: rng.Intn(2) == 0,
			UseMask:  ds.Mask != nil && rng.Intn(4) != 0,
		}
		if ds.Periodic && rng.Intn(2) == 0 {
			p.Period = rng.Intn(5) + 2
		}
		if rng.Intn(2) == 0 {
			p.LevelAlpha = 1 + rng.Float64()
		}
		eb := math.Pow(10, -rng.Float64()*3)
		opt := Options{Entropy: entropy.Kind(rng.Intn(2))}
		blob, err := Compress(ds, eb, p, opt)
		if err != nil {
			return false
		}
		got, gdims, err := Decompress(blob)
		if err != nil {
			return false
		}
		if !dimsEqual(gdims, dims) {
			return false
		}
		var valid []bool
		if p.UseMask {
			valid = ds.Validity()
		}
		return stats.MaxAbsErr(ds.Data, got, valid) <= eb*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
