package core

import (
	"bytes"
	"math"
	"testing"

	"cliz/internal/datagen"
	"cliz/internal/dataset"
	"cliz/internal/entropy"
	"cliz/internal/grid"
	"cliz/internal/mask"
	"cliz/internal/stats"
)

// Regression tests promoted from minimized conformance-harness reproducers
// (internal/conform). Each pins a bug the seeded sweep surfaced; the shapes
// and knobs below are the shrunken cases, not arbitrary choices.

// TestRegressionChunkedMaskRank2 pins the chunkMask fix: for rank ≤ 2 the
// chunked container's split axis lies inside the horizontal (lat, lon) mask
// plane, so each chunk must carry a sliced mask. Passing the full mask made
// the sub-dataset fail validation ("mask HxW != grid") and the whole
// compress error out. Minimized reproducer: conform-repro shrunk to a 2x4
// masked grid split in two.
func TestRegressionChunkedMaskRank2(t *testing.T) {
	for _, tc := range []struct {
		name string
		dims []int
	}{
		{"rank2", []int{4, 4}},
		{"rank1", []int{8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			nLat, nLon := 1, tc.dims[0]
			if len(tc.dims) == 2 {
				nLat, nLon = tc.dims[0], tc.dims[1]
			}
			vol := nLat * nLon
			data := make([]float32, vol)
			regions := make([]int32, vol)
			for i := range data {
				data[i] = float32(i) * 0.25
				if i%3 == 0 {
					data[i] = datagen.FillValue
					regions[i] = 0 // invalid cell
				} else {
					regions[i] = 1
				}
			}
			ds := &dataset.Dataset{
				Name:      "regress-chunk-mask",
				Data:      data,
				Dims:      tc.dims,
				Mask:      mask.New(nLat, nLon, regions),
				FillValue: datagen.FillValue,
			}
			p := Default(ds)
			p.UseMask = true
			eb := 1e-3
			blob, err := CompressChunked(ds, eb, p, Options{}, 2, 2)
			if err != nil {
				t.Fatalf("chunked compress with rank-%d mask: %v", len(tc.dims), err)
			}
			got, dims, err := DecompressChunked(blob, 2)
			if err != nil {
				t.Fatalf("chunked decompress: %v", err)
			}
			if !dimsEqual(dims, ds.Dims) {
				t.Fatalf("dims %v want %v", dims, ds.Dims)
			}
			valid := ds.Validity()
			if got := stats.MaxAbsErr(ds.Data, got, valid); got > eb*(1+1e-9) {
				t.Fatalf("error bound violated: %g > %g", got, eb)
			}
			for i, ok := range valid {
				if !ok && got[i] != ds.FillValue {
					t.Fatalf("masked point %d = %g, want fill %g", i, got[i], ds.FillValue)
				}
			}
		})
	}
}

// TestRegressionShardedRANSWorkers pins the sharded rANS decode fix: with
// Workers ≥ 2 a low-entropy field encodes sub-block shards below one bit per
// symbol, and the shard directory's old >= 1 bit/symbol plausibility check
// rejected the (legitimate) blob at decode as "entropy: corrupt block".
// Minimized reproducer: conform-repro-11-7, dims [24, 8, 16], workers 2.
func TestRegressionShardedRANSWorkers(t *testing.T) {
	dims := []int{24, 8, 16}
	vol := dims[0] * dims[1] * dims[2]
	data := make([]float32, vol)
	for i := range data {
		// Smooth, heavily quantizable: nearly every bin is identical, which
		// is what pushes rANS below a bit per symbol.
		data[i] = float32(i%16) * 1e-6
	}
	ds := &dataset.Dataset{Name: "regress-rans-shards", Data: data, Dims: dims}
	eb := 0.5
	blob, err := Compress(ds, eb, Default(ds), Options{Entropy: entropy.RANS, Workers: 2})
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	for _, workers := range []int{1, 2, 4} {
		got, gdims, err := DecompressWithOptions(blob, DecompressOptions{Workers: workers})
		if err != nil {
			t.Fatalf("decompress workers=%d: %v", workers, err)
		}
		if !dimsEqual(gdims, dims) {
			t.Fatalf("dims %v want %v", gdims, dims)
		}
		if gotErr := stats.MaxAbsErr(ds.Data, got, nil); gotErr > eb*(1+1e-9) {
			t.Fatalf("workers=%d error bound violated: %g > %g", workers, gotErr, eb)
		}
	}
}

// TestRegressionLevelAlphaSinglePoint pins the levelEBFactor clamp: a
// single-point dataset has Levels() == 0, so the origin was quantized at
// level 0 where α^(level−1) < 1 LOOSENED the bound by α instead of leaving
// it flat — errors up to α·eb escaped. Minimized reproducers:
// conform-repro-10-18 (α=1.5, eb=4e-5) and conform-repro-11-50 (α=2,
// eb=0.1), both dims [1].
func TestRegressionLevelAlphaSinglePoint(t *testing.T) {
	for _, tc := range []struct {
		alpha float64
		eb    float64
		val   float32
	}{
		{1.5, 4e-5, 0.001},
		{2, 0.1, -0.19768451},
		{2, 1e-5, 123.456},
	} {
		for _, dims := range [][]int{{1}, {1, 1}, {1, 1, 1}} {
			ds := &dataset.Dataset{Name: "regress-alpha", Data: []float32{tc.val}, Dims: dims}
			p := Default(ds)
			p.LevelAlpha = tc.alpha
			blob, err := Compress(ds, tc.eb, p, Options{})
			if err != nil {
				t.Fatalf("alpha=%g dims=%v compress: %v", tc.alpha, dims, err)
			}
			got, _, err := Decompress(blob)
			if err != nil {
				t.Fatalf("alpha=%g dims=%v decompress: %v", tc.alpha, dims, err)
			}
			if d := math.Abs(float64(got[0]) - float64(tc.val)); d > tc.eb*(1+1e-9) {
				t.Fatalf("alpha=%g dims=%v: |%g − %g| = %g > eb %g",
					tc.alpha, dims, got[0], tc.val, d, tc.eb)
			}
		}
	}
}

// TestRegressionNonContiguousFusionFallback pins the fused-layout fallback
// boundary surfaced while building the fused-vs-materialized property sweep
// (fused_equiv_test.go): dims {2,3,4} with perm 102 and fusion 2&1 is the
// smallest pipeline whose permuted axes are not physically adjacent, so
// grid.FusedLayout must refuse it and both codec sides must silently take
// the materialized-transpose path — producing the same bytes the fused
// pipelines produce for expressible layouts. A regression here would either
// mis-fuse (wrong strides, wrong values) or diverge between the two paths.
func TestRegressionNonContiguousFusionFallback(t *testing.T) {
	dims := []int{2, 3, 4}
	perm := []int{1, 0, 2}
	fusion := grid.Fusion{Groups: []int{2, 1}}
	if _, ok := grid.FusedLayout(dims, perm, fusion); ok {
		t.Fatal("layout unexpectedly fusable; the fixture no longer covers the fallback")
	}
	data := make([]float32, 24)
	for i := range data {
		data[i] = float32(i*i%13) * 0.75
	}
	ds := &dataset.Dataset{Name: "regress-nonfusable", Data: data, Dims: dims}
	p := Default(ds)
	p.Perm = perm
	p.Fusion = fusion
	eb := 1e-3
	blob, recon, err := CompressWithRecon(ds, eb, p, Options{})
	if err != nil {
		t.Fatalf("compress: %v", err)
	}
	lblob, _, err := CompressWithRecon(ds, eb, p, Options{MaterializedPermute: true})
	if err != nil {
		t.Fatalf("legacy compress: %v", err)
	}
	if !bytes.Equal(blob, lblob) {
		t.Fatal("fallback blob differs from forced-materialized blob")
	}
	got, _, err := Decompress(blob)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	for i := range got {
		if got[i] != recon[i] {
			t.Fatalf("point %d: decode %g != compress-side recon %g", i, got[i], recon[i])
		}
		if d := math.Abs(float64(got[i]) - float64(data[i])); d > eb*(1+1e-9) {
			t.Fatalf("point %d: error %g > eb %g", i, d, eb)
		}
	}
}
