package core

import (
	"strings"
	"testing"
	"time"

	"cliz/internal/trace"
)

// TestTraceHooksNilCollectorAllocs guards the no-collector hot path: every
// instrumentation hook the compressor calls must be an allocation-free no-op
// when no collector is attached.
func TestTraceHooksNilCollectorAllocs(t *testing.T) {
	bins := make([]int32, 256)
	lits := make([]float32, 4)
	allocs := testing.AllocsPerRun(500, func() {
		sp := trace.Begin(nil, "predict")
		sp.EndFull(1, 2, 3, binStats(bins, lits, nil, nil))
		sp = trace.Begin(nil, "entropy")
		sp.EndFull(0, 0, 0, entropyStats(nil, nil))
		trace.Begin(trace.Prefixed(nil, "chunk[0]"), "lossless").EndBytes(4, 5)
	})
	if allocs != 0 {
		t.Fatalf("nil-collector trace hooks allocate %v times per run", allocs)
	}
}

// TestTraceCompressAccounting asserts the tentpole's bookkeeping contract:
// the per-stage byte counts of a traced compression sum — within header and
// section-framing overhead — to the blob size, and the per-stage wall times
// sum to (at most, and most of) the measured total.
func TestTraceCompressAccounting(t *testing.T) {
	ds := smallHurricane()
	eb := ds.AbsErrorBound(1e-2)
	var rec trace.Recorder
	p := Default(ds)
	opt := Options{Trace: &rec}
	blob, err := Compress(ds, eb, p, opt)
	if err != nil {
		t.Fatal(err)
	}
	stages := rec.Stages()
	var total trace.Stage
	var sectionOut int64
	var sumDur time.Duration
	for _, s := range stages {
		switch s.Name {
		case "total":
			total = s
		case "mask", "classify", "lossless", "literals":
			// The stages whose output lands in the blob.
			sectionOut += s.OutBytes
		}
		if s.Name != "total" {
			sumDur += s.Duration
		}
	}
	if total.Name != "total" || total.OutBytes != int64(len(blob)) {
		t.Fatalf("missing or wrong total record: %+v", total)
	}
	if total.Items != int64(len(ds.Data)) {
		t.Fatalf("total items %d != %d points", total.Items, len(ds.Data))
	}
	// Blob = header + section length varints + recorded section payloads.
	overhead := int64(len(blob)) - sectionOut
	if overhead < 0 || overhead > 128 {
		t.Fatalf("sections %d vs blob %d: %d bytes unaccounted (want ≤ 128 header+framing)",
			sectionOut, len(blob), overhead)
	}
	if sumDur > total.Duration {
		t.Fatalf("stage durations %v exceed measured total %v", sumDur, total.Duration)
	}
	if sumDur < total.Duration/2 {
		t.Fatalf("stage durations %v cover under half the total %v", sumDur, total.Duration)
	}
	// The predict stage must carry the bin-histogram summary.
	found := false
	for _, s := range stages {
		if s.Name == "predict" {
			found = true
			keys := map[string]bool{}
			for _, kv := range s.Extra {
				keys[kv.Key] = true
			}
			for _, want := range []string{"distinct_bins", "entropy_bits", "top1_share", "literals"} {
				if !keys[want] {
					t.Fatalf("predict stage missing %q annotation: %+v", want, s.Extra)
				}
			}
		}
		if s.Name == "entropy" {
			keys := map[string]bool{}
			for _, kv := range s.Extra {
				keys[kv.Key] = true
			}
			if !keys["table_bytes"] || !keys["stream_bytes"] {
				t.Fatalf("entropy stage missing table/stream split: %+v", s.Extra)
			}
		}
	}
	if !found {
		t.Fatal("no predict stage recorded")
	}
}

// TestTracePeriodicPrefixes checks that periodic compression path-qualifies
// template and residual work.
func TestTracePeriodicPrefixes(t *testing.T) {
	ds := smallSSH()
	eb := ds.AbsErrorBound(1e-2)
	p := Default(ds)
	p.Period = 12
	p.Classify = true
	var rec trace.Recorder
	if _, err := Compress(ds, eb, p, Options{Trace: &rec}); err != nil {
		t.Fatal(err)
	}
	var tmpl, res, cls bool
	for _, s := range rec.Stages() {
		if strings.HasPrefix(s.Name, "template/") {
			tmpl = true
		}
		if strings.HasPrefix(s.Name, "residual/") {
			res = true
		}
		if s.Name == "residual/classify" {
			cls = true
		}
	}
	if !tmpl || !res || !cls {
		t.Fatalf("missing periodic prefixes (template=%v residual=%v classify=%v):\n%s",
			tmpl, res, cls, rec.Table())
	}
}

// TestTraceChunkedAndDecode covers the parallel container (chunk[i]/
// prefixes from concurrent workers) and the traced decode path.
func TestTraceChunkedAndDecode(t *testing.T) {
	ds := smallHurricane()
	eb := ds.AbsErrorBound(1e-2)
	var rec trace.Recorder
	blob, err := CompressChunked(ds, eb, Default(ds), Options{Trace: &rec}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	chunks := map[string]bool{}
	for _, s := range rec.Stages() {
		if i := strings.IndexByte(s.Name, '/'); i > 0 {
			chunks[s.Name[:i]] = true
		}
	}
	for _, want := range []string{"chunk[0]", "chunk[1]", "chunk[2]"} {
		if !chunks[want] {
			t.Fatalf("missing %s records: have %v", want, chunks)
		}
	}
	var dec trace.Recorder
	data, dims, err := DecompressChunkedTraced(blob, 2, &dec)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(ds.Data) || !dimsEqual(dims, ds.Dims) {
		t.Fatalf("decode shape %v", dims)
	}
	var sawReconstruct bool
	for _, s := range dec.Stages() {
		if strings.HasSuffix(s.Name, "/reconstruct") {
			sawReconstruct = true
		}
	}
	if !sawReconstruct {
		t.Fatalf("decode trace missing reconstruct stages:\n%s", dec.Table())
	}
	// Plain traced decode of a unit blob.
	unit, err := Compress(ds, eb, Default(ds), Options{})
	if err != nil {
		t.Fatal(err)
	}
	dec.Reset()
	if _, _, err := DecompressTraced(unit, &dec); err != nil {
		t.Fatal(err)
	}
	agg := dec.Aggregate()
	names := map[string]bool{}
	for _, s := range agg {
		names[s.Name] = true
	}
	for _, want := range []string{"entropy-decode", "literals-decode", "reconstruct", "total"} {
		if !names[want] {
			t.Fatalf("decode trace missing %q: %v", want, names)
		}
	}
}
