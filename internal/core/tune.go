package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"cliz/internal/dataset"
	"cliz/internal/grid"
	"cliz/internal/predict"
	"cliz/internal/trace"
)

// TuneConfig controls the offline auto-tuning stage (paper §VI-A).
type TuneConfig struct {
	// SamplingRate is the expected fraction of the dataset used for
	// testing; 0 selects 1% (the rate used in the paper's §VII-C1).
	// A rate ≥ 1 tests every pipeline on the whole dataset.
	SamplingRate float64
	// MaxPipelines caps the number of candidates (deterministic stride
	// subsampling keeps the space representative); 0 selects 512.
	MaxPipelines int
	// DisablePeriod / DisableClassify remove those stages from the search
	// space (used by the paper's ablations, Tables V–VI).
	DisablePeriod   bool
	DisableClassify bool
	// FixedPeriod overrides FFT-based detection (0 = detect).
	FixedPeriod int
	// EnableLorenzo adds the Lorenzo predictor as a third fitting arm
	// (an extension beyond the paper's {linear, cubic} space; enabling it
	// grows the candidate counts by 50%).
	EnableLorenzo bool
	// SampleRows is the number of rows for period detection (0 = 10, as in
	// the paper's Fig. 8).
	SampleRows int
}

// LevelAlphas is the level-wise error-bound ladder AutoTune searches after
// the pipeline search. It is exported so the fast estimator draws its
// LevelAlpha from the same set — a pipeline knob the estimator can emit but
// the tuner would never select is a contract violation (see
// internal/estimate's breakpoint contract test).
var LevelAlphas = []float64{1, 1.25, 1.5, 1.75, 2}

// Candidate is one tested pipeline with its sample results.
type Candidate struct {
	Pipe        Pipeline
	SampleBytes int
	Ratio       float64 // estimated compression ratio on the sample
	Duration    time.Duration
}

// TuneReport documents an auto-tuning run.
type TuneReport struct {
	Period        int // detected (or forced) period; 0 if none
	SamplePoints  int
	Candidates    []Candidate
	Best          Pipeline
	BestRatio     float64
	TotalDuration time.Duration
}

// EnumeratePipelines lists the candidate pipelines for a dataset of the
// given rank: period on/off × classification on/off × all permutations ×
// all adjacent fusions × {linear, cubic}. For a periodic 3D dataset this is
// the paper's 2·2·6·4·2 = 192; without periodicity, 96.
func EnumeratePipelines(rank int, period int, useMask bool, tc TuneConfig) []Pipeline {
	periodOpts := []int{0}
	if period > 0 && !tc.DisablePeriod {
		periodOpts = append(periodOpts, period)
	}
	classifyOpts := []bool{false}
	if !tc.DisableClassify {
		classifyOpts = append(classifyOpts, true)
	}
	perms := grid.Permutations(rank)
	fusions := grid.Compositions(rank)
	fits := []predict.Fitting{predict.Linear, predict.Cubic}
	if tc.EnableLorenzo {
		fits = append(fits, predict.Lorenzo)
	}
	var out []Pipeline
	for _, per := range periodOpts {
		for _, cls := range classifyOpts {
			for _, perm := range perms {
				for _, fus := range fusions {
					for _, fit := range fits {
						out = append(out, Pipeline{
							Perm:     perm,
							Fusion:   fus,
							Fitting:  fit,
							Classify: cls,
							UseMask:  useMask,
							Period:   per,
						})
					}
				}
			}
		}
	}
	maxP := tc.MaxPipelines
	if maxP == 0 {
		maxP = 512
	}
	if len(out) > maxP {
		stride := (len(out) + maxP - 1) / maxP
		sub := make([]Pipeline, 0, maxP)
		for i := 0; i < len(out); i += stride {
			sub = append(sub, out[i])
		}
		out = sub
	}
	return out
}

// sample holds the tuner's concatenated test data.
type sample struct {
	data  []float32
	dims  []int
	valid []bool // nil when the dataset has no mask
}

// sampleConcat extracts the tuning sample (paper §VI-A): 2^n blocks centred
// at 1/3 and 2/3 of each dimension, each side (1/2)·rate^(1/n) of the full
// side, concatenated along dimension 0 into a single test dataset. Because
// the blocks' horizontal windows differ, the sample's validity is carried as
// a per-point bitmap. For periodic datasets the blocks' time extents are
// widened to whole multiples of the period and their time origins snapped to
// phase 0, so the concatenated time axis stays phase-aligned and periodic
// candidates remain testable.
func sampleConcat(ds *dataset.Dataset, rate float64, period int) sample {
	var validOrig []bool
	if ds.Mask != nil {
		validOrig, _ = ds.Mask.Broadcast(ds.Dims)
	}
	if rate >= 1 {
		return sample{data: ds.Data, dims: ds.Dims, valid: validOrig}
	}
	// A minimum block side of 12 keeps the cubic predictor's ±3-stride
	// references meaningful inside a block — the paper (§VI-A) notes that
	// petite blocks systematically disadvantage cubic fitting.
	blocks := grid.SampleBlocks(ds.Dims, rate, 12)
	if period > 0 {
		nT := ds.Dims[0]
		for i := range blocks {
			want := blocks[i].Size[0]
			if want < 2*period {
				want = 2 * period
			}
			want = (want + period - 1) / period * period
			if want > nT {
				want = nT / period * period
				if want < period {
					want = nT
				}
			}
			org := blocks[i].Origin[0]
			org -= org % period
			if org+want > nT {
				org = nT - want
				if org > 0 {
					org -= org % period
				}
				if org < 0 {
					org = 0
				}
			}
			blocks[i].Origin[0] = org
			blocks[i].Size[0] = want
		}
	}
	if validOrig != nil {
		for i := range blocks {
			blocks[i] = nudgeBlockToValid(blocks[i], ds.Dims, validOrig)
		}
	}
	// Periodic data stacks along a spatial axis so every time series in the
	// sample is a coherent series from one block; otherwise dim 0.
	axis := 0
	if period > 0 && len(ds.Dims) >= 2 {
		axis = 1
	}
	data, sdims := grid.ConcatBlocksAxis(ds.Data, ds.Dims, blocks, axis)
	var svalid []bool
	if validOrig != nil {
		svalid, _ = grid.ConcatBlocksAxis(validOrig, ds.Dims, blocks, axis)
	}
	return sample{data: data, dims: sdims, valid: svalid}
}

// sampleCentral extracts a single centred block covering about rate of the
// dataset volume. Unlike the 2^n-block stage-1 sample it has no block seams,
// so the refinement stage ranks predictors on data whose smoothness
// structure matches the full field (seams systematically penalize the
// long-range cubic fitting). Periodic data keeps a phase-aligned time extent
// of at least two periods.
func sampleCentral(ds *dataset.Dataset, rate float64, period int) sample {
	var validOrig []bool
	if ds.Mask != nil {
		validOrig, _ = ds.Mask.Broadcast(ds.Dims)
	}
	if rate >= 1 {
		return sample{data: ds.Data, dims: ds.Dims, valid: validOrig}
	}
	n := len(ds.Dims)
	frac := math.Pow(rate, 1/float64(n))
	org := make([]int, n)
	size := make([]int, n)
	for i, d := range ds.Dims {
		s := int(frac * float64(d))
		if s < 12 {
			s = 12
		}
		if s > d {
			s = d
		}
		size[i] = s
		org[i] = (d - s) / 2
	}
	if period > 0 {
		nT := ds.Dims[0]
		want := size[0]
		if want < 2*period {
			want = 2 * period
		}
		want = (want + period - 1) / period * period
		if want > nT {
			want = nT / period * period
			if want < period {
				want = nT
			}
		}
		o := org[0] - org[0]%period
		if o+want > nT {
			o = nT - want
			if o > 0 {
				o -= o % period
			}
			if o < 0 {
				o = 0
			}
		}
		org[0], size[0] = o, want
	}
	blk := grid.Block{Origin: org, Size: size}
	if validOrig != nil {
		blk = nudgeBlockToValid(blk, ds.Dims, validOrig)
	}
	data := grid.Extract(ds.Data, ds.Dims, blk)
	var svalid []bool
	if validOrig != nil {
		svalid = grid.Extract(validOrig, ds.Dims, blk)
	}
	return sample{data: data, dims: size, valid: svalid}
}

// nudgeBlockToValid shifts a sample block so it actually covers valid data.
// The paper's fixed 1/3–2/3 block centres can land entirely inside masked
// regions (e.g. the mid-latitudes of an ice field), leaving the tuner to
// rank pipelines on an empty sample; a coordinate-descent scan over a few
// candidate origins per dimension keeps the block where data lives.
func nudgeBlockToValid(b grid.Block, dims []int, valid []bool) grid.Block {
	count := func(blk grid.Block) int {
		vs := grid.Extract(valid, dims, blk)
		n := 0
		for _, ok := range vs {
			if ok {
				n++
			}
		}
		return n
	}
	best := b
	bestN := count(b)
	vol := grid.Volume(b.Size)
	if bestN*2 >= vol { // already mostly valid
		return best
	}
	fracs := []float64{0, 1.0 / 6, 1.0 / 3, 0.5, 2.0 / 3, 5.0 / 6, 1}
	for ax := range dims {
		cur := best
		for _, f := range fracs {
			cand := grid.Block{
				Origin: append([]int(nil), cur.Origin...),
				Size:   cur.Size,
			}
			o := int(f * float64(dims[ax]-cur.Size[ax]))
			if o < 0 {
				o = 0
			}
			cand.Origin[ax] = o
			if n := count(cand); n > bestN {
				best, bestN = cand, n
			}
		}
	}
	return best
}

// AutoTune runs the offline stage: it detects periodicity, samples the
// dataset, tests every candidate pipeline on the sample and returns the best
// one (by estimated compression ratio) together with a full report.
func AutoTune(ds *dataset.Dataset, eb float64, tc TuneConfig, opt Options) (Pipeline, *TuneReport, error) {
	if err := ds.Validate(); err != nil {
		return Pipeline{}, nil, err
	}
	start := time.Now()
	// Candidate evaluation loops run untraced — hundreds of tiny pipeline
	// runs would flood the collector; the tuner records its own coarse
	// stages into the caller's collector instead.
	tcol := opt.Trace
	opt.Trace = nil
	rate := tc.SamplingRate
	if rate == 0 {
		rate = 0.01
	}
	sp := trace.Begin(tcol, "tune/detect-period")
	period := 0
	if ds.Periodic && !tc.DisablePeriod {
		if tc.FixedPeriod > 0 {
			period = tc.FixedPeriod
		} else {
			period = DetectPeriod(ds, tc.SampleRows)
		}
	}
	sp.EndFull(0, 0, int64(period), nil)
	sp = trace.Begin(tcol, "tune/sample")
	smp := sampleConcat(ds, rate, period)
	samplePoints := grid.Volume(smp.dims)
	sp.EndFull(int64(len(ds.Data))*4, int64(samplePoints)*4, int64(samplePoints), nil)
	sp = trace.Begin(tcol, "tune/search")
	cands := EnumeratePipelines(len(ds.Dims), period, ds.Mask != nil, tc)
	report := &TuneReport{Period: period, SamplePoints: samplePoints}
	bestIdx := -1
	for _, p := range cands {
		// Poll per candidate, not per stage: compressGeneral swallows
		// nothing here, but candidate errors are skipped below, so an
		// interrupt inside a candidate run must be re-raised explicitly.
		if err := interrupted(opt.Interrupt); err != nil {
			return Pipeline{}, nil, err
		}
		t0 := time.Now()
		var v validity
		if p.UseMask {
			v.pts = smp.valid
		}
		blob, _, err := compressGeneral(smp.data, smp.dims, v, eb, p, ds.FillValue, opt)
		if err != nil {
			continue
		}
		// Estimated full-data size per point. For periodic candidates the
		// template is a fixed cost amortized over the number of cycles: the
		// sample spans fewer cycles than the full dataset, so scale the
		// template's contribution by sampleTime/fullTime before ranking —
		// otherwise short samples systematically undervalue periodicity.
		effective := float64(len(blob))
		if p.Period > 0 && smp.dims[0] < ds.Dims[0] {
			if tmplLen, restLen, ok := periodicSectionSizes(blob); ok {
				amort := float64(smp.dims[0]) / float64(ds.Dims[0])
				effective = float64(restLen) + float64(tmplLen)*amort
			}
		}
		c := Candidate{
			Pipe:        p,
			SampleBytes: len(blob),
			Ratio:       float64(samplePoints) * 4 / effective,
			Duration:    time.Since(t0),
		}
		report.Candidates = append(report.Candidates, c)
		if bestIdx < 0 || c.Ratio > report.Candidates[bestIdx].Ratio {
			bestIdx = len(report.Candidates) - 1
		}
	}
	sp.EndFull(0, 0, int64(len(report.Candidates)), nil)
	if bestIdx < 0 {
		return Pipeline{}, nil, fmt.Errorf("core: auto-tuning found no viable pipeline")
	}
	// Refinement stage: fixed per-blob overheads (Huffman tables, headers,
	// nested template containers) distort the ranking when the sample is
	// tiny, so the leading candidates are re-ranked on an 8×-larger sample.
	best := report.Candidates[bestIdx].Pipe
	bestRatio := report.Candidates[bestIdx].Ratio
	sp = trace.Begin(tcol, "tune/refine")
	refSmp := smp
	if rate < 1 {
		// The refinement sample must carry enough *compressed payload* that
		// candidate differences dominate the fixed per-blob overheads
		// (headers, code tables ≈ a few hundred bytes). At extreme ratios a
		// volume-based sample compresses to almost nothing, so grow the
		// sample until the winner's compressed size reaches minPayload (the
		// stage-1 ratio estimate is itself overhead-dominated there, hence
		// the adaptive loop rather than a one-shot computation).
		const minPayload = 16384.0
		refRate := math.Min(rate*8, 1)
		for attempt := 0; ; attempt++ {
			refSmp = sampleCentral(ds, refRate, period)
			var v validity
			if best.UseMask {
				v.pts = refSmp.valid
			}
			blob, _, err := compressGeneral(refSmp.data, refSmp.dims, v, eb, best, ds.FillValue, opt)
			if err != nil || refRate >= 1 || attempt >= 3 || float64(len(blob)) >= minPayload {
				break
			}
			grow := minPayload / math.Max(float64(len(blob)), 1)
			refRate = math.Min(refRate*math.Max(grow, 2), 1)
		}
		refPoints := grid.Volume(refSmp.dims)
		leaders := topCandidates(report.Candidates, 8)
		refBest := -1.0
		for _, cand := range leaders {
			if err := interrupted(opt.Interrupt); err != nil {
				return Pipeline{}, nil, err
			}
			var v validity
			if cand.Pipe.UseMask {
				v.pts = refSmp.valid
			}
			blob, _, err := compressGeneral(refSmp.data, refSmp.dims, v, eb, cand.Pipe, ds.FillValue, opt)
			if err != nil {
				continue
			}
			effective := float64(len(blob))
			if cand.Pipe.Period > 0 && refSmp.dims[0] < ds.Dims[0] {
				if tmplLen, restLen, ok := periodicSectionSizes(blob); ok {
					amort := float64(refSmp.dims[0]) / float64(ds.Dims[0])
					effective = float64(restLen) + float64(tmplLen)*amort
				}
			}
			r := float64(refPoints) * 4 / effective
			if r > refBest {
				refBest = r
				best = cand.Pipe
				bestRatio = r
			}
		}
	}
	sp.EndFull(0, 0, int64(grid.Volume(refSmp.dims)), nil)
	if best.Period > 0 {
		sp = trace.Begin(tcol, "tune/template")
		// The template is tuned on the refinement sample, not the initial
		// one: the template section often dominates a periodic blob, and a
		// sub-pipeline picked on a tiny sample template generalizes badly to
		// the full field's template (the choice can double the final blob).
		best.Template = tuneTemplate(refSmp, eb, best, opt)
		sp.End()
	}
	// Level-wise error-bound tuning: coarse interpolation levels anchor all
	// finer predictions, so tightening them (α > 1, capped by β) often buys
	// ratio — the same knob QoZ introduced and newer SZ3 adopted. Tuned
	// after the pipeline search so the paper's candidate counts (96/192 for
	// 3D) are preserved.
	sp = trace.Begin(tcol, "tune/alpha")
	bestAlpha, alphaRatio := 1.0, -1.0
	refPoints := grid.Volume(refSmp.dims)
	for _, alpha := range LevelAlphas {
		if err := interrupted(opt.Interrupt); err != nil {
			return Pipeline{}, nil, err
		}
		p := best
		p.LevelAlpha = alpha
		var v validity
		if p.UseMask {
			v.pts = refSmp.valid
		}
		blob, _, err := compressGeneral(refSmp.data, refSmp.dims, v, eb, p, ds.FillValue, opt)
		if err != nil {
			continue
		}
		r := float64(refPoints) * 4 / float64(len(blob))
		if r > alphaRatio {
			alphaRatio = r
			bestAlpha = alpha
		}
	}
	sp.End()
	// tuneTemplate aborts best-effort (it has no error path), so re-check
	// here: a canceled AutoTune must not hand back a half-tuned pipeline.
	if err := interrupted(opt.Interrupt); err != nil {
		return Pipeline{}, nil, err
	}
	best.LevelAlpha = bestAlpha
	report.Best = best
	report.BestRatio = bestRatio
	report.TotalDuration = time.Since(start)
	return best, report, nil
}

// topCandidates returns the k best candidates by estimated ratio, plus the
// best candidate of every discrete (fitting, classification, periodicity)
// arm. Small samples systematically bias some arms (e.g. petite blocks hurt
// cubic fitting, §VI-A), so each arm's champion deserves a second look on
// the larger refinement sample even when the whole top-k comes from another
// arm.
func topCandidates(cands []Candidate, k int) []Candidate {
	sorted := append([]Candidate(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Ratio > sorted[j].Ratio })
	out := sorted
	if len(out) > k {
		out = append([]Candidate(nil), sorted[:k]...)
	}
	seen := map[string]bool{}
	for _, c := range out {
		seen[c.Pipe.String()] = true
	}
	armBest := map[[3]bool]bool{}
	for _, c := range sorted { // descending ratio: first hit per arm wins
		arm := [3]bool{c.Pipe.Fitting == predict.Cubic, c.Pipe.Classify, c.Pipe.Period > 0}
		if armBest[arm] {
			continue
		}
		armBest[arm] = true
		if !seen[c.Pipe.String()] {
			seen[c.Pipe.String()] = true
			out = append(out, c)
		}
	}
	return out
}

// periodicSectionSizes splits a periodic blob's size into the template
// section and everything else (header + residual).
func periodicSectionSizes(blob []byte) (tmplLen, restLen int, ok bool) {
	pos := 0
	h, err := parseHeader(blob, &pos)
	if err != nil || h.flags&flagPeriodic == 0 {
		return 0, 0, false
	}
	tmpl, err := readSection(blob, &pos)
	if err != nil {
		return 0, 0, false
	}
	return len(tmpl), len(blob) - len(tmpl), true
}

// tuneTemplate picks the best sub-pipeline for the template data (paper
// Table IV notes the template pipeline is tuned separately). It tests
// perm × fusion × fitting on the template extracted from the sample.
func tuneTemplate(smp sample, eb float64, outer Pipeline, opt Options) *Pipeline {
	if smp.dims[0] < outer.Period {
		return nil
	}
	var valid []bool
	if outer.UseMask {
		valid = smp.valid
	}
	tmplData, tmplDims, tmplValid := buildTemplate(smp.data, smp.dims, valid, outer.Period, datagenFill)
	var tv validity
	if tmplValid != nil {
		tv.pts = tmplValid
	}
	rank := len(tmplDims)
	var best *Pipeline
	bestBytes := 0
	for _, perm := range grid.Permutations(rank) {
		if interrupted(opt.Interrupt) != nil {
			return nil
		}
		for _, fus := range grid.Compositions(rank) {
			for _, fit := range []predict.Fitting{predict.Linear, predict.Cubic} {
				p := Pipeline{Perm: perm, Fusion: fus, Fitting: fit, UseMask: tmplValid != nil}
				blob, _, err := compressUnit(tmplData, tmplDims, tv, eb, p, datagenFill, opt)
				if err != nil {
					continue
				}
				if best == nil || len(blob) < bestBytes {
					pc := p
					best = &pc
					bestBytes = len(blob)
				}
			}
		}
	}
	return best
}

// datagenFill mirrors the CESM sentinel; only used for template scratch
// space during tuning, where the exact fill value is irrelevant.
const datagenFill float32 = 9.96921e36
