package core

import (
	"testing"

	"cliz/internal/datagen"
	"cliz/internal/grid"
)

func TestNudgeBlockToValid(t *testing.T) {
	// Validity lives only in the top band of a 2D grid; a centre block must
	// be nudged up into it.
	dims := []int{40, 20}
	valid := make([]bool, 800)
	for i := 0; i < 8*20; i++ {
		valid[i] = true // rows 0..7 valid
	}
	b := grid.Block{Origin: []int{16, 6}, Size: []int{8, 8}}
	nb := nudgeBlockToValid(b, dims, valid)
	count := 0
	for _, ok := range grid.Extract(valid, dims, nb) {
		if ok {
			count++
		}
	}
	if count == 0 {
		t.Fatalf("nudged block still empty: %+v", nb)
	}
	if nb.Origin[0] != 0 {
		t.Fatalf("expected block at the valid band, got origin %v", nb.Origin)
	}
	if nb.Size[0] != 8 || nb.Size[1] != 8 {
		t.Fatalf("size changed: %v", nb.Size)
	}
}

func TestNudgeKeepsMostlyValidBlocks(t *testing.T) {
	dims := []int{10, 10}
	valid := make([]bool, 100)
	for i := range valid {
		valid[i] = true
	}
	b := grid.Block{Origin: []int{2, 2}, Size: []int{4, 4}}
	nb := nudgeBlockToValid(b, dims, valid)
	if nb.Origin[0] != 2 || nb.Origin[1] != 2 {
		t.Fatalf("fully valid block moved: %v", nb.Origin)
	}
}

func TestSamplingFindsValidDataOnBandedMask(t *testing.T) {
	// A Tsfc-like polar mask: the paper's 1/3–2/3 sample centres land in
	// fully-masked mid-latitudes, so without nudging the tuner would rank
	// pipelines on an empty sample.
	ds := datagen.Tsfc(0.1)
	period := DetectPeriod(ds, 10)
	for _, smp := range []sample{
		sampleConcat(ds, 0.01, period),
		sampleCentral(ds, 0.08, period),
	} {
		if smp.valid == nil {
			t.Fatal("no validity on masked dataset")
		}
		n := 0
		for _, ok := range smp.valid {
			if ok {
				n++
			}
		}
		if frac := float64(n) / float64(len(smp.valid)); frac < 0.1 {
			t.Fatalf("sample nearly empty: %.1f%% valid", frac*100)
		}
	}
}

func TestTunedBeatsOrMatchesSZ3Config(t *testing.T) {
	// SZ3's configuration (natural order, no mask, flat bound) is inside
	// CliZ's search space, so a tuned CliZ should not produce a much larger
	// blob than the mask-less default on the full dataset. Sampling noise is
	// inherent (the paper's own Table IV reports up to 17% loss at low
	// rates), so allow 10%.
	for _, name := range []string{"Tsfc", "Hurricane-T"} {
		ds, err := datagen.ByName(name, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		eb := ds.AbsErrorBound(1e-2)
		best, _, err := AutoTune(ds, eb, TuneConfig{SamplingRate: 0.01}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tuned, err := Compress(ds, eb, best, Options{})
		if err != nil {
			t.Fatal(err)
		}
		plain := Default(ds)
		plain.UseMask = false
		base, err := Compress(ds, eb, plain, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if float64(len(tuned)) > 1.10*float64(len(base)) {
			t.Fatalf("%s: tuned %d bytes worse than untuned default %d",
				name, len(tuned), len(base))
		}
	}
}
