package core

import (
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
	"sync/atomic"

	"cliz/internal/trace"
)

// Integrity verification: walk a blob's structure, checking the v3 header
// and section checksums (and the structural framing of v1/v2 blobs) without
// decoding payloads. Verify answers "which bytes are damaged" before any
// section is interpreted; DecompressVerified stacks a full decode (plus
// optional bound self-verification) on top; DecompressPartial salvages the
// intact chunks of a damaged chunked container.

// verifyCounters accumulates verification statistics across concurrently
// decoded chunks.
type verifyCounters struct {
	boundChecked atomic.Int64
}

// SectionCheck is the verification result for one blob section (or header).
type SectionCheck struct {
	// Path names the section, qualified by its position in the blob tree:
	// "header", "bins", "template/literals", "chunk[2]/mask", ...
	Path  string
	Bytes int
	// OK is false when the section's checksum mismatches or its framing is
	// corrupt.
	OK bool
	// Checksummed reports whether a CRC-32C actually covered this section
	// (false inside v1/v2 blobs, where only structural framing is checked).
	Checksummed bool
	// Detail explains a failure (empty when OK).
	Detail string
}

// ChunkDamage describes one undecodable chunk of a chunked container.
type ChunkDamage struct {
	// Index is the chunk's position in the container.
	Index int
	// LeadStart/LeadLen locate the damaged region along dims[0]; the
	// affected output slice is [LeadStart*plane, (LeadStart+LeadLen)*plane).
	LeadStart int
	LeadLen   int
	// Err is the decode failure.
	Err error
}

// VerifyReport is the outcome of verifying a blob's integrity.
type VerifyReport struct {
	// Kind is "unit", "periodic" or "chunked".
	Kind string
	// Version is the root blob's format version (0 when the header is
	// unparseable; chunked containers report the first chunk's version).
	Version int
	// Checksummed reports whether the root carries v3 integrity checksums.
	Checksummed bool
	// Sections lists every section checked, in blob order.
	Sections []SectionCheck
	// BoundChecked counts decode-time bound self-verification points
	// (filled by DecompressVerified/DecompressPartial when enabled).
	BoundChecked int64
	// DamagedChunks lists chunks DecompressPartial could not decode.
	DamagedChunks []ChunkDamage
}

// OK reports whether every section verified and every chunk decoded.
func (r *VerifyReport) OK() bool {
	for _, s := range r.Sections {
		if !s.OK {
			return false
		}
	}
	return len(r.DamagedChunks) == 0
}

// Damaged returns the paths of all failed sections and damaged chunks.
func (r *VerifyReport) Damaged() []string {
	var out []string
	for _, s := range r.Sections {
		if !s.OK {
			out = append(out, s.Path)
		}
	}
	for _, c := range r.DamagedChunks {
		out = append(out, fmt.Sprintf("chunk[%d]", c.Index))
	}
	return out
}

// String renders a one-line-per-section summary.
func (r *VerifyReport) String() string {
	var sb strings.Builder
	state := "ok"
	if !r.OK() {
		state = "DAMAGED"
	}
	crc := "no checksums (v<3)"
	if r.Checksummed {
		crc = "crc32c"
	}
	fmt.Fprintf(&sb, "%s v%d [%s]: %s\n", r.Kind, r.Version, crc, state)
	for _, s := range r.Sections {
		mark := "ok"
		if !s.OK {
			mark = "FAIL " + s.Detail
		} else if !s.Checksummed {
			mark = "ok (structural only)"
		}
		fmt.Fprintf(&sb, "  %-24s %8d bytes  %s\n", s.Path, s.Bytes, mark)
	}
	for _, c := range r.DamagedChunks {
		fmt.Fprintf(&sb, "  chunk[%d] lead %d+%d UNDECODABLE: %v\n",
			c.Index, c.LeadStart, c.LeadLen, c.Err)
	}
	if r.BoundChecked > 0 {
		fmt.Fprintf(&sb, "  bound self-verified at %d points\n", r.BoundChecked)
	}
	return sb.String()
}

func (r *VerifyReport) add(c SectionCheck) { r.Sections = append(r.Sections, c) }

// Verify checks a blob's integrity without decoding payloads: v3 blobs have
// the header CRC and every section CRC-32C recomputed; v1/v2 blobs (which
// carry no checksums) are walked structurally. Periodic children and
// container chunks are verified recursively under qualified paths. The
// report tells damage apart by section; it never panics on hostile input.
func Verify(blob []byte) *VerifyReport {
	rep := &VerifyReport{Kind: "unit"}
	if IsChunked(blob) {
		rep.Kind = "chunked"
		_, chunks, err := parseChunkedContainer(blob)
		if err != nil {
			rep.add(SectionCheck{Path: "container", Bytes: len(blob), OK: false, Detail: err.Error()})
			return rep
		}
		for i, ch := range chunks {
			v, c := verifyAt(ch.blob, fmt.Sprintf("chunk[%d]/", i), rep)
			if i == 0 {
				rep.Version, rep.Checksummed = v, c
			} else if !c {
				rep.Checksummed = false
			}
		}
		return rep
	}
	ver, crc := verifyAt(blob, "", rep)
	rep.Version, rep.Checksummed = ver, crc
	if len(blob) > 0 {
		pos := 0
		if h, err := parseHeader(blob, &pos); err == nil && h.flags&flagPeriodic != 0 {
			rep.Kind = "periodic"
		}
	}
	return rep
}

// verifyAt walks one (unit or periodic) blob, appending section checks under
// the given path prefix. It returns the blob's version and whether all of it
// (including children) is checksummed.
func verifyAt(blob []byte, path string, rep *VerifyReport) (version int, checksummed bool) {
	pos := 0
	h, err := parseHeader(blob, &pos)
	if err != nil {
		rep.add(SectionCheck{Path: path + "header", Bytes: len(blob), OK: false,
			Checksummed: errors.Is(err, ErrChecksum), Detail: err.Error()})
		return 0, false
	}
	checksummed = h.version >= version3
	rep.add(SectionCheck{Path: path + "header", Bytes: pos, OK: true, Checksummed: checksummed})

	var ids []byte
	if h.flags&flagPeriodic != 0 {
		ids = []byte{secTemplate, secResidual}
	} else {
		if h.flags&(flagMask|flagPointMask) != 0 {
			ids = append(ids, secMask)
		}
		if h.flags&flagClassify != 0 {
			ids = append(ids, secClassMeta, secBinsA, secBinsB)
		} else {
			ids = append(ids, secBins)
		}
		ids = append(ids, secLiterals)
	}
	sr := sectionReader{h: &h}
	for _, id := range ids {
		name := path + sectionName(id)
		secStart := pos
		sec, err := sr.next(blob, &pos, id)
		if err != nil {
			if errors.Is(err, ErrChecksum) {
				// Framing is intact (the length field parsed), so later
				// sections can still be checked independently.
				rep.add(SectionCheck{Path: name, Bytes: pos - secStart, OK: false,
					Checksummed: true, Detail: "checksum mismatch"})
				continue
			}
			rep.add(SectionCheck{Path: name, Bytes: len(blob) - secStart, OK: false,
				Checksummed: checksummed, Detail: err.Error()})
			return int(h.version), false
		}
		rep.add(SectionCheck{Path: name, Bytes: len(sec), OK: true, Checksummed: checksummed})
		if id == secTemplate || id == secResidual {
			_, childCRC := verifyAt(sec, name+"/", rep)
			checksummed = checksummed && childCRC
		}
	}
	if checksummed && pos != len(blob) {
		rep.add(SectionCheck{Path: path + "trailing", Bytes: len(blob) - pos, OK: false,
			Checksummed: true, Detail: fmt.Sprintf("%d bytes past the last section", len(blob)-pos)})
	}
	return int(h.version), checksummed
}

// DecompressVerified verifies every checksum, then decodes. When
// opt.BoundCheckEvery > 0 it additionally replays the prediction traversal
// over the decoded output, checking sampled points regenerate exactly from
// their recorded bins (the report's BoundChecked counts them). On damage the
// report names the failed sections and no decode is attempted.
func DecompressVerified(blob []byte, opt DecompressOptions) ([]float32, []int, *VerifyReport, error) {
	sp := trace.Begin(opt.Trace, "verify-checksums")
	rep := Verify(blob)
	sp.EndFull(int64(len(blob)), 0, int64(len(rep.Sections)), nil)
	if !rep.OK() {
		return nil, nil, rep, fmt.Errorf("core: integrity check failed (%s): %w",
			strings.Join(rep.Damaged(), ", "), ErrCorrupt)
	}
	stats := &verifyCounters{}
	opt.stats = stats
	var (
		data []float32
		dims []int
		err  error
	)
	if IsChunked(blob) {
		data, dims, err = DecompressChunkedOpts(blob, opt.Workers, opt)
	} else {
		data, dims, err = DecompressWithOptions(blob, opt)
	}
	rep.BoundChecked = stats.boundChecked.Load()
	return data, dims, rep, err
}

// DecompressPartial decodes as much of a chunked container as possible:
// intact chunks land in the output, undecodable ones are reported in the
// VerifyReport's DamagedChunks and their regions filled with quiet NaN so
// they cannot be mistaken for data. Non-chunked blobs degrade to
// DecompressVerified (a unit blob has no independent pieces to salvage). The
// returned error is non-nil only when nothing was decodable (bad container
// framing, or a damaged unit blob).
func DecompressPartial(blob []byte, opt DecompressOptions) ([]float32, []int, *VerifyReport, error) {
	if !IsChunked(blob) {
		return DecompressVerified(blob, opt)
	}
	sp := trace.Begin(opt.Trace, "verify-checksums")
	rep := Verify(blob)
	sp.EndFull(int64(len(blob)), 0, int64(len(rep.Sections)), nil)
	stats := &verifyCounters{}
	opt.stats = stats
	data, dims, damage, err := decompressChunked(blob, opt.Workers, opt, true)
	if err != nil {
		return nil, nil, rep, err
	}
	rep.DamagedChunks = damage
	rep.BoundChecked = stats.boundChecked.Load()
	return data, dims, rep, nil
}

// sectionCRC is exposed for tests crafting corrupted fixtures.
func sectionCRC(payload []byte) uint32 {
	return crc32.Checksum(payload, crcTable)
}
