// Package datagen synthesizes the climate fields of the paper's Table III.
//
// The real experiments used CESM output and the Hurricane Isabel dataset,
// which are not redistributable here. Each generator below reproduces the
// structural properties that CliZ's optimizations key on, so every code path
// of the compressor and every comparison of the evaluation is exercised:
//
//   - spectral-synthesis terrain shared across fields of the same "model",
//     giving the topography-correlated variance of paper Fig. 5;
//   - land/ocean masks thresholded from that terrain, with CESM-style fill
//     values (9.96921e36) at invalid points (paper Fig. 3);
//   - an annual cycle (period 12 along monthly time axes) for the fields
//     Table III flags periodic (paper Fig. 8);
//   - strong vertical gradients but smooth horizontal structure for the
//     atmosphere fields — the paper quotes mean variations of 4.425 along
//     height vs 0.053/0.017 along lat/lon for CESM-T (paper Fig. 4);
//   - a hurricane vortex with sharp radial gradients for Hurricane-T.
//
// All generators are deterministic (fixed seeds) and accept a linear scale
// factor: 1.0 reproduces the paper's dimensions, smaller values shrink every
// axis proportionally for laptop-scale runs.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"cliz/internal/dataset"
	"cliz/internal/mask"
)

// FillValue is the CESM missing-data sentinel.
const FillValue float32 = 9.96921e36

// DefaultScale keeps the full suite comfortably under a gigabyte.
const DefaultScale = 0.25

// spectral2D synthesizes a smooth random field of size nLat×nLon as a sum of
// random-phase plane waves with a power-law spectrum. roughness ∈ (0, 2]:
// higher values put more energy into high frequencies.
func spectral2D(nLat, nLon int, seed int64, modes int, roughness float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	type wave struct {
		fy, fx, amp, phase float64
	}
	waves := make([]wave, modes)
	for m := range waves {
		// Frequencies in cycles per grid span, 1..12.
		f := 1 + rng.Float64()*11
		theta := rng.Float64() * 2 * math.Pi
		waves[m] = wave{
			fy:    f * math.Sin(theta),
			fx:    f * math.Cos(theta),
			amp:   math.Pow(f, -1.5+roughness/2),
			phase: rng.Float64() * 2 * math.Pi,
		}
	}
	out := make([]float64, nLat*nLon)
	for i := 0; i < nLat; i++ {
		y := float64(i) / float64(nLat)
		for j := 0; j < nLon; j++ {
			x := float64(j) / float64(nLon)
			v := 0.0
			for _, w := range waves {
				v += w.amp * math.Sin(2*math.Pi*(w.fy*y+w.fx*x)+w.phase)
			}
			out[i*nLon+j] = v
		}
	}
	// Normalize to roughly unit amplitude.
	maxAbs := 0.0
	for _, v := range out {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 0 {
		for i := range out {
			out[i] /= maxAbs
		}
	}
	return out
}

// Terrain is the shared topography of one climate "model": a smooth height
// field in [-1, 1] where negative values are below sea level.
type Terrain struct {
	NLat, NLon int
	Height     []float64
	SeaLevel   float64 // quantile threshold giving ~70% ocean
}

// NewTerrain synthesizes terrain with about oceanFrac of the surface below
// sea level.
func NewTerrain(nLat, nLon int, seed int64, oceanFrac float64) *Terrain {
	h := spectral2D(nLat, nLon, seed, 48, 1.2)
	sorted := append([]float64(nil), h...)
	sort.Float64s(sorted)
	q := int(oceanFrac * float64(len(sorted)))
	if q >= len(sorted) {
		q = len(sorted) - 1
	}
	return &Terrain{NLat: nLat, NLon: nLon, Height: h, SeaLevel: sorted[q]}
}

// OceanMask returns the mask over ocean cells (valid where below sea level),
// labelled 1 for ocean and 0 for land — the SSH/Tsfc style mask.
func (t *Terrain) OceanMask() *mask.Map {
	regions := make([]int32, len(t.Height))
	for i, h := range t.Height {
		if h < t.SeaLevel {
			regions[i] = 1
		}
	}
	return mask.New(t.NLat, t.NLon, regions)
}

// LandMask is the complement — the SOILLIQ style mask.
func (t *Terrain) LandMask() *mask.Map {
	regions := make([]int32, len(t.Height))
	for i, h := range t.Height {
		if h >= t.SeaLevel {
			regions[i] = 1
		}
	}
	return mask.New(t.NLat, t.NLon, regions)
}

func scaled(v int, scale float64, minV int) int {
	s := int(math.Round(float64(v) * scale))
	if s < minV {
		s = minV
	}
	return s
}

// scaledMonths scales a monthly time axis, keeping it a multiple of 12 —
// the paper's time extents (1032 = 86·12, 360 = 30·12) are whole numbers of
// annual cycles, which is what makes the Fig. 8 spectra peak cleanly.
func scaledMonths(v int, scale float64, minV int) int {
	s := scaled(v, scale, minV)
	s = (s + 6) / 12 * 12
	if s < 24 {
		s = 24
	}
	return s
}

// SSH generates the sea-surface-height field: monthly snapshots with a
// strong annual cycle, an ocean-only mask, dims (time, lat, lon) —
// Table III row "SSH 384 320 1032 – Mask Yes Period Yes".
func SSH(scale float64) *dataset.Dataset {
	nT := scaledMonths(1032, scale, 48)
	nLat := scaled(384, scale, 24)
	nLon := scaled(320, scale, 24)
	ter := NewTerrain(nLat, nLon, 101, 0.70)
	m := ter.OceanMask()
	amp := spectral2D(nLat, nLon, 102, 24, 0.8)   // seasonal amplitude
	phase := spectral2D(nLat, nLon, 103, 24, 0.8) // seasonal phase
	base := spectral2D(nLat, nLon, 104, 32, 1.0)  // mean dynamic topography
	slow := spectral2D(nLat, nLon, 105, 24, 0.6)  // interannual pattern
	trend := spectral2D(nLat, nLon, 107, 16, 0.5) // secular drift pattern
	rng := rand.New(rand.NewSource(106))
	data := make([]float32, nT*nLat*nLon)
	plane := nLat * nLon
	// Bathymetry couples into local variability: shallow coastal water is
	// rougher than the open ocean (this is what makes quantization-bin
	// statistics topography-locked, paper §V-D).
	noiseAmp := make([]float64, plane)
	for p := 0; p < plane; p++ {
		depth := math.Max(ter.SeaLevel-ter.Height[p], 0)
		noiseAmp[p] = 0.15 + 1.6*math.Exp(-6*depth)
	}
	for tt := 0; tt < nT; tt++ {
		season := 2 * math.Pi * float64(tt) / 12
		inter := math.Sin(2 * math.Pi * float64(tt) / float64(nT) * 1.7)
		prog := float64(tt) / float64(nT)
		for p := 0; p < plane; p++ {
			idx := tt*plane + p
			if m.Regions[p] == 0 {
				data[idx] = FillValue
				continue
			}
			v := 120*base[p] +
				40*(0.6+0.4*amp[p])*math.Sin(season+2*phase[p]) +
				15*inter*slow[p] +
				8*trend[p]*prog + // regionally-varying sea level drift
				noiseAmp[p]*rng.NormFloat64()
			data[idx] = float32(v)
		}
	}
	return &dataset.Dataset{
		Name: "SSH", Data: data, Dims: []int{nT, nLat, nLon},
		Lead: dataset.LeadTime, Periodic: true, Mask: m, FillValue: FillValue,
	}
}

// atmosphere3D builds a (height, lat, lon) field with strong vertical and
// weak horizontal variation, plus terrain-coupled high-frequency energy so
// quantization-bin statistics correlate with topography across heights
// (paper Fig. 5).
func atmosphere3D(name string, nH, nLat, nLon int, seedBase int64,
	level0, lapse, horizAmp, roughAmp, noise float64) *dataset.Dataset {
	ter := NewTerrain(nLat, nLon, 201, 0.70) // shared atmosphere-model terrain
	smooth := spectral2D(nLat, nLon, seedBase, 24, 0.6)
	rough := spectral2D(nLat, nLon, seedBase+1, 64, 1.8)
	rng := rand.New(rand.NewSource(seedBase + 2))
	data := make([]float32, nH*nLat*nLon)
	plane := nLat * nLon
	// Terrain couples into local roughness at every level: mountainous
	// columns vary more than maritime ones (paper Fig. 5's height-invariant
	// topography pattern in the quantization bins).
	roughScale := make([]float64, plane)
	for p := 0; p < plane; p++ {
		tr := math.Max(ter.Height[p]-ter.SeaLevel, 0)
		roughScale[p] = 0.25 + 4*tr + 0.5*math.Abs(ter.Height[p])
	}
	for h := 0; h < nH; h++ {
		// Vertical profile dominates: the paper reports ~4.4 mean variation
		// along height vs ~0.05/0.02 along lat/lon for CESM-T.
		lev := level0 + lapse*float64(h)
		for p := 0; p < plane; p++ {
			tr := math.Max(ter.Height[p]-ter.SeaLevel, 0)
			v := lev +
				horizAmp*smooth[p] +
				roughAmp*tr*rough[p] +
				noise*roughScale[p]*rng.NormFloat64()
			data[h*plane+p] = float32(v)
		}
	}
	return &dataset.Dataset{
		Name: name, Data: data, Dims: []int{nH, nLat, nLon},
		Lead: dataset.LeadHeight, FillValue: FillValue,
	}
}

// CESMT is the global atmosphere temperature field, dims (26, 1800, 3600)
// at scale 1 — Table III row "CESM-T".
func CESMT(scale float64) *dataset.Dataset {
	nH := 26
	nLat := scaled(1800, scale, 45)
	nLon := scaled(3600, scale, 90)
	return atmosphere3D("CESM-T", nH, nLat, nLon, 301,
		288, -4.425, 9.0, 2.5, 0.02)
}

// RELHUM is the relative humidity field with the same grid as CESM-T but
// noisier horizontal structure.
func RELHUM(scale float64) *dataset.Dataset {
	nH := 26
	nLat := scaled(1800, scale, 45)
	nLon := scaled(3600, scale, 90)
	ds := atmosphere3D("RELHUM", nH, nLat, nLon, 401,
		85, -2.8, 18.0, 8.0, 0.15)
	// Clamp into the physical 0..100% range.
	for i, v := range ds.Data {
		if v < 0 {
			ds.Data[i] = 0
		} else if v > 100 {
			ds.Data[i] = 100
		}
	}
	return ds
}

// SOILLIQ is the land-model soil liquid water field, dims
// (time, height, lat, lon) = (360, 15, 96, 144) at scale 1, land-only mask,
// periodic — Table III row "SOILLIQ".
func SOILLIQ(scale float64) *dataset.Dataset {
	nT := scaledMonths(360, scale, 24)
	nH := 15
	nLat := scaled(96, scale, 24)
	nLon := scaled(144, scale, 24)
	ter := NewTerrain(nLat, nLon, 501, 0.70)
	m := ter.LandMask() // ~70% of points invalid (ocean), as §VII-C3 notes
	cap2d := spectral2D(nLat, nLon, 502, 24, 0.8)
	phase := spectral2D(nLat, nLon, 503, 16, 0.6)
	rng := rand.New(rand.NewSource(504))
	plane := nLat * nLon
	data := make([]float32, nT*nH*plane)
	for tt := 0; tt < nT; tt++ {
		season := 2 * math.Pi * float64(tt) / 12
		for h := 0; h < nH; h++ {
			depthDamp := math.Exp(-float64(h) / 5) // seasonal signal fades with depth
			depthBase := 25 + 8*float64(h)         // deeper layers hold more water
			for p := 0; p < plane; p++ {
				idx := (tt*nH+h)*plane + p
				if m.Regions[p] == 0 {
					data[idx] = FillValue
					continue
				}
				v := depthBase*(1+0.5*cap2d[p]) +
					12*depthDamp*math.Sin(season+2.5*phase[p]) +
					0.05*rng.NormFloat64()
				if v < 0 {
					v = 0
				}
				data[idx] = float32(v)
			}
		}
	}
	return &dataset.Dataset{
		Name: "SOILLIQ", Data: data, Dims: []int{nT, nH, nLat, nLon},
		Lead: dataset.LeadTime, Periodic: true, Mask: m, FillValue: FillValue,
	}
}

// Tsfc is the snow/ice surface temperature field, dims (time, lat, lon) =
// (360, 384, 320) at scale 1, masked to ice-capable regions, periodic.
func Tsfc(scale float64) *dataset.Dataset {
	nT := scaledMonths(360, scale, 24)
	nLat := scaled(384, scale, 24)
	nLon := scaled(320, scale, 24)
	// Ice mask: polar bands (top/bottom ~22% of latitudes) over ocean-model
	// terrain.
	ter := NewTerrain(nLat, nLon, 601, 0.70)
	regions := make([]int32, nLat*nLon)
	for i := 0; i < nLat; i++ {
		frac := float64(i) / float64(nLat)
		polar := frac < 0.22 || frac > 0.78
		for j := 0; j < nLon; j++ {
			p := i*nLon + j
			if polar && ter.Height[p] < ter.SeaLevel+0.15 {
				regions[p] = 1
			}
		}
	}
	m := mask.New(nLat, nLon, regions)
	base := spectral2D(nLat, nLon, 602, 24, 0.7)
	phase := spectral2D(nLat, nLon, 603, 16, 0.6)
	rng := rand.New(rand.NewSource(604))
	plane := nLat * nLon
	data := make([]float32, nT*plane)
	for tt := 0; tt < nT; tt++ {
		season := 2 * math.Pi * float64(tt) / 12
		for p := 0; p < plane; p++ {
			idx := tt*plane + p
			if m.Regions[p] == 0 {
				data[idx] = FillValue
				continue
			}
			lat := float64(p/nLon) / float64(nLat)
			hemi := 1.0
			if lat > 0.5 {
				hemi = -1.0 // opposite season in the south
			}
			v := -20 + 10*base[p] +
				15*hemi*math.Cos(season+phase[p]) +
				0.1*rng.NormFloat64()
			data[idx] = float32(v)
		}
	}
	return &dataset.Dataset{
		Name: "Tsfc", Data: data, Dims: []int{nT, nLat, nLon},
		Lead: dataset.LeadTime, Periodic: true, Mask: m, FillValue: FillValue,
	}
}

// HurricaneT is the Hurricane-Isabel-like temperature field, dims
// (height, lat, lon) = (100, 500, 500) at scale 1, no mask, no periodicity.
func HurricaneT(scale float64) *dataset.Dataset {
	nH := scaled(100, scale, 16)
	nLat := scaled(500, scale, 32)
	nLon := scaled(500, scale, 32)
	bg := spectral2D(nLat, nLon, 701, 24, 0.7)
	rng := rand.New(rand.NewSource(702))
	plane := nLat * nLon
	data := make([]float32, nH*plane)
	cy, cx := 0.55*float64(nLat), 0.45*float64(nLon)
	sigma := 0.08 * float64(nLat)
	for h := 0; h < nH; h++ {
		lev := 25 - 0.75*float64(h) // tropospheric lapse
		// Eye warms aloft; vortex tilts slightly with height.
		eyeWarm := 8 * float64(h) / float64(nH)
		ty := cy + 0.05*float64(nLat)*float64(h)/float64(nH)
		tx := cx + 0.08*float64(nLon)*float64(h)/float64(nH)
		for i := 0; i < nLat; i++ {
			for j := 0; j < nLon; j++ {
				dy, dx := float64(i)-ty, float64(j)-tx
				r2 := (dy*dy + dx*dx) / (2 * sigma * sigma)
				ring := math.Exp(-r2)                                                // warm core
				wall := math.Exp(-(math.Sqrt(r2) - 1.2) * (math.Sqrt(r2) - 1.2) * 4) // eyewall cooling
				v := lev + 3*bg[i*nLon+j] + eyeWarm*ring - 4*wall +
					0.05*rng.NormFloat64()
				data[h*plane+i*nLon+j] = float32(v)
			}
		}
	}
	return &dataset.Dataset{
		Name: "Hurricane-T", Data: data, Dims: []int{nH, nLat, nLon},
		Lead: dataset.LeadHeight, FillValue: FillValue,
	}
}

// Names lists the generated datasets in the paper's Table III order.
func Names() []string {
	return []string{"SSH", "CESM-T", "RELHUM", "SOILLIQ", "Tsfc", "Hurricane-T"}
}

// ByName generates one dataset by its Table III name.
func ByName(name string, scale float64) (*dataset.Dataset, error) {
	switch name {
	case "SSH":
		return SSH(scale), nil
	case "CESM-T":
		return CESMT(scale), nil
	case "RELHUM":
		return RELHUM(scale), nil
	case "SOILLIQ":
		return SOILLIQ(scale), nil
	case "Tsfc":
		return Tsfc(scale), nil
	case "Hurricane-T":
		return HurricaneT(scale), nil
	}
	return nil, fmt.Errorf("datagen: unknown dataset %q (have %v)", name, Names())
}

// All generates every dataset at the given scale.
func All(scale float64) []*dataset.Dataset {
	out := make([]*dataset.Dataset, 0, len(Names()))
	for _, n := range Names() {
		ds, _ := ByName(n, scale)
		out = append(out, ds)
	}
	return out
}
