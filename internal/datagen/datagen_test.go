package datagen

import (
	"math"
	"reflect"
	"testing"

	"cliz/internal/dataset"
	"cliz/internal/fft"
)

const testScale = 0.1

func TestAllDatasetsValidate(t *testing.T) {
	for _, ds := range All(testScale) {
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: %v", ds.Name, err)
		}
		if ds.Points() == 0 {
			t.Fatalf("%s: empty", ds.Name)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("NOPE", 1); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a := SSH(testScale)
	b := SSH(testScale)
	if !reflect.DeepEqual(a.Data, b.Data) {
		t.Fatal("SSH not deterministic")
	}
	if !reflect.DeepEqual(a.Mask.Regions, b.Mask.Regions) {
		t.Fatal("mask not deterministic")
	}
}

func TestTableIIIProperties(t *testing.T) {
	// Mask/period flags must match the paper's Table III.
	cases := map[string]struct {
		mask, period bool
		rank         int
	}{
		"SSH":         {true, true, 3},
		"CESM-T":      {false, false, 3},
		"RELHUM":      {false, false, 3},
		"SOILLIQ":     {true, true, 4},
		"Tsfc":        {true, true, 3},
		"Hurricane-T": {false, false, 3},
	}
	for name, want := range cases {
		ds, err := ByName(name, testScale)
		if err != nil {
			t.Fatal(err)
		}
		if (ds.Mask != nil) != want.mask {
			t.Fatalf("%s: mask presence = %v", name, ds.Mask != nil)
		}
		if ds.Periodic != want.period {
			t.Fatalf("%s: periodic = %v", name, ds.Periodic)
		}
		if len(ds.Dims) != want.rank {
			t.Fatalf("%s: rank %d want %d", name, len(ds.Dims), want.rank)
		}
	}
}

func TestFullScaleDims(t *testing.T) {
	// At scale 1 the dims must match Table III exactly (generation of the
	// giant fields is skipped; only the plumbing is checked via scaled()).
	if testing.Short() {
		t.Skip("short mode")
	}
	ds := SSH(1.0)
	want := []int{1032, 384, 320}
	if !reflect.DeepEqual(ds.Dims, want) {
		t.Fatalf("SSH dims %v want %v", ds.Dims, want)
	}
}

func TestMaskedPointsHoldFillValues(t *testing.T) {
	for _, name := range []string{"SSH", "SOILLIQ", "Tsfc"} {
		ds, _ := ByName(name, testScale)
		valid := ds.Validity()
		for i, ok := range valid {
			if !ok && ds.Data[i] != FillValue {
				t.Fatalf("%s: masked point %d = %g, want fill", name, i, ds.Data[i])
			}
			if ok && ds.Data[i] == FillValue {
				t.Fatalf("%s: valid point %d holds fill value", name, i)
			}
		}
	}
}

func TestSSHOceanFraction(t *testing.T) {
	ds := SSH(testScale)
	frac := float64(ds.Mask.ValidCount()) / float64(ds.Mask.NLat*ds.Mask.NLon)
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("ocean fraction %.2f outside [0.6, 0.8]", frac)
	}
}

func TestSOILLIQLandFraction(t *testing.T) {
	// §VII-C3: about 70% of the surface is water → ~30% valid for SOILLIQ.
	ds := SOILLIQ(testScale)
	frac := float64(ds.Mask.ValidCount()) / float64(ds.Mask.NLat*ds.Mask.NLon)
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("land fraction %.2f outside [0.2, 0.4]", frac)
	}
}

func TestSSHPeriodicity(t *testing.T) {
	// The annual cycle must be detectable with period 12 along time.
	ds := SSH(testScale)
	nT := ds.Dims[0]
	plane := ds.Dims[1] * ds.Dims[2]
	var rows [][]float64
	for p := 0; p < plane && len(rows) < 10; p += plane/17 + 1 {
		if ds.Mask.Regions[p] == 0 {
			continue
		}
		row := make([]float64, nT)
		for tt := 0; tt < nT; tt++ {
			row[tt] = float64(ds.Data[tt*plane+p])
		}
		rows = append(rows, row)
	}
	res := fft.DetectPeriod(rows, 0.7, 3)
	if res.Period != 12 {
		t.Fatalf("SSH period = %d want 12 (strength %.1f)", res.Period, res.Strength)
	}
}

func TestCESMTAnisotropy(t *testing.T) {
	// The paper's Fig. 4 observation: variation along height dwarfs the
	// horizontal variations.
	ds := CESMT(testScale)
	nH, nLat, nLon := ds.Dims[0], ds.Dims[1], ds.Dims[2]
	plane := nLat * nLon
	meanAbsDiff := func(stride, n int, idx func(k int) int) float64 {
		var s float64
		for k := 0; k < n; k++ {
			i := idx(k)
			s += math.Abs(float64(ds.Data[i+stride]) - float64(ds.Data[i]))
		}
		return s / float64(n)
	}
	samples := 2000
	dH := meanAbsDiff(plane, samples, func(k int) int {
		return (k % (nH - 1)) * plane // vary height at point 0.. simple walk
	})
	dLat := meanAbsDiff(nLon, samples, func(k int) int {
		return (k % (nLat - 1)) * nLon
	})
	dLon := meanAbsDiff(1, samples, func(k int) int {
		return k % (nLon - 1)
	})
	if !(dH > 5*dLat && dH > 5*dLon) {
		t.Fatalf("height variation %.3f should dwarf lat %.4f / lon %.4f",
			dH, dLat, dLon)
	}
}

func TestRELHUMRange(t *testing.T) {
	ds := RELHUM(testScale)
	lo, hi := ds.ValueRange()
	if lo < 0 || hi > 100 {
		t.Fatalf("RELHUM range [%g, %g] outside physical bounds", lo, hi)
	}
}

func TestHurricaneHasVortexStructure(t *testing.T) {
	ds := HurricaneT(testScale)
	nH, nLat, nLon := ds.Dims[0], ds.Dims[1], ds.Dims[2]
	plane := nLat * nLon
	// The top-level slice must vary more strongly near the vortex centre
	// than at the domain edge.
	h := nH - 1
	cy, cx := int(0.55*float64(nLat)), int(0.45*float64(nLon))
	grad := func(i, j int) float64 {
		idx := h*plane + i*nLon + j
		return math.Abs(float64(ds.Data[idx+1]) - float64(ds.Data[idx]))
	}
	var centre, edge float64
	n := 0
	for d := -3; d <= 3; d++ {
		centre += grad(cy+d, cx+int(1.2*float64(nLat)*0.08)) // near eyewall
		edge += grad(2+((d+3)%4), 2)
		n++
	}
	if centre <= edge {
		t.Fatalf("no vortex: eyewall gradient %.3f <= edge %.3f", centre/float64(n), edge/float64(n))
	}
}

func TestAbsErrorBoundConversion(t *testing.T) {
	ds := CESMT(testScale)
	lo, hi := ds.ValueRange()
	eb := ds.AbsErrorBound(0.01)
	if math.Abs(eb-0.01*(hi-lo)) > 1e-9 {
		t.Fatalf("AbsErrorBound = %g want %g", eb, 0.01*(hi-lo))
	}
}

func TestCloneIndependence(t *testing.T) {
	ds := Tsfc(testScale)
	cp := ds.Clone()
	cp.Data[0] = 42
	cp.Mask.Regions[0] = 9
	if ds.Data[0] == 42 || ds.Mask.Regions[0] == 9 {
		t.Fatal("Clone shares storage")
	}
}

var _ = dataset.LeadNone // keep import if assertions above change
