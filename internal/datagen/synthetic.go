package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"cliz/internal/dataset"
	"cliz/internal/mask"
)

// SyntheticSpec parameterizes a fully deterministic synthetic climate field.
// It exposes every structural knob the named Table III generators bake in —
// mask coverage, fill value, periodicity, anisotropy, roughness, non-finite
// injection, degenerate shapes — so the conformance harness can explore the
// whole dataset space from a single seed instead of six fixed fields.
type SyntheticSpec struct {
	// Name labels the dataset (defaults to "synthetic").
	Name string `json:"name,omitempty"`
	// Dims are the grid extents (rank 1..4); degenerate extents (1×N,
	// single-plane) are allowed.
	Dims []int `json:"dims"`
	// Seed drives every random choice; equal specs generate equal bits.
	Seed int64 `json:"seed"`
	// Lead is the leading-dimension kind ("", "time" or "height").
	Lead string `json:"lead,omitempty"`
	// Periodic marks the time axis as periodic metadata.
	Periodic bool `json:"periodic,omitempty"`
	// Period is the synthesized cycle length along the time axis (0 = no
	// cyclic component even if Periodic is set — metadata can lie).
	Period int `json:"period,omitempty"`
	// PeriodAmp scales the cyclic component (default 10 when Period > 0).
	PeriodAmp float64 `json:"periodAmp,omitempty"`
	// MaskFrac in (0, 1] masks roughly that fraction of the horizontal
	// plane; 0 disables the mask.
	MaskFrac float64 `json:"maskFrac,omitempty"`
	// FillValue is stored at masked points (0 picks the CESM sentinel).
	FillValue float32 `json:"fillValue,omitempty"`
	// Roughness in (0, 2] controls horizontal spectral roughness
	// (0 selects 0.8).
	Roughness float64 `json:"roughness,omitempty"`
	// Anisotropy scales the gradient along the leading axis relative to the
	// horizontal variation (the paper's height-dominant CESM-T structure).
	Anisotropy float64 `json:"anisotropy,omitempty"`
	// NoiseAmp adds white noise of that amplitude.
	NoiseAmp float64 `json:"noiseAmp,omitempty"`
	// Constant makes every valid point the same value (Offset), the
	// degenerate zero-range field.
	Constant bool `json:"constant,omitempty"`
	// Offset shifts the whole field.
	Offset float64 `json:"offset,omitempty"`
	// Scale multiplies the signal (0 selects 100).
	Scale float64 `json:"scale,omitempty"`
	// NaNs / PosInfs / NegInfs inject that many non-finite values at valid
	// points (deterministic positions).
	NaNs    int `json:"nans,omitempty"`
	PosInfs int `json:"posInfs,omitempty"`
	NegInfs int `json:"negInfs,omitempty"`
}

func (s *SyntheticSpec) leadKind() dataset.LeadKind {
	switch s.Lead {
	case "time":
		return dataset.LeadTime
	case "height":
		return dataset.LeadHeight
	}
	return dataset.LeadNone
}

// Volume returns the total point count of the spec.
func (s *SyntheticSpec) Volume() int {
	v := 1
	for _, d := range s.Dims {
		v *= d
	}
	return v
}

// Synthetic generates the field described by spec. The output is a pure
// function of the spec: identical specs yield bit-identical datasets.
func Synthetic(spec SyntheticSpec) (*dataset.Dataset, error) {
	if len(spec.Dims) < 1 || len(spec.Dims) > 4 {
		return nil, fmt.Errorf("datagen: synthetic rank %d not in 1..4", len(spec.Dims))
	}
	for _, d := range spec.Dims {
		if d < 1 {
			return nil, fmt.Errorf("datagen: non-positive extent in %v", spec.Dims)
		}
	}
	name := spec.Name
	if name == "" {
		name = "synthetic"
	}
	fill := spec.FillValue
	if fill == 0 {
		fill = FillValue
	}
	rough := spec.Roughness
	if rough <= 0 || rough > 2 {
		rough = 0.8
	}
	scale := spec.Scale
	if scale == 0 {
		scale = 100
	}
	periodAmp := spec.PeriodAmp
	if periodAmp == 0 {
		periodAmp = 10
	}

	nLat, nLon := 1, spec.Dims[len(spec.Dims)-1]
	if len(spec.Dims) >= 2 {
		nLat = spec.Dims[len(spec.Dims)-2]
	}
	plane := nLat * nLon
	lead := 1
	for _, d := range spec.Dims[:max(len(spec.Dims)-2, 0)] {
		lead *= d
	}

	var m *mask.Map
	if spec.MaskFrac > 0 {
		// Threshold a smooth terrain at the requested quantile, exactly like
		// the named generators, so masked regions are contiguous blobs
		// rather than salt-and-pepper.
		ter := NewTerrain(nLat, nLon, spec.Seed^0x6d61736b, clamp01(spec.MaskFrac))
		regions := make([]int32, plane)
		valid := 0
		for i, h := range ter.Height {
			if h >= ter.SeaLevel {
				regions[i] = 1
				valid++
			}
		}
		if valid == 0 {
			// Keep at least one valid point so the field is not empty unless
			// the caller really asked for full masking (MaskFrac >= 1).
			if spec.MaskFrac < 1 {
				regions[0] = 1
			}
		}
		m = mask.New(nLat, nLon, regions)
	}

	base := spectral2D(nLat, nLon, spec.Seed^0x62617365, 24, rough)
	phase := spectral2D(nLat, nLon, spec.Seed^0x70686173, 16, rough)
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x6e6f6973))

	data := make([]float32, lead*plane)
	for l := 0; l < lead; l++ {
		cyc := 0.0
		if spec.Period > 0 {
			cyc = 2 * math.Pi * float64(l) / float64(spec.Period)
		}
		vert := spec.Anisotropy * float64(l)
		for p := 0; p < plane; p++ {
			idx := l*plane + p
			if m != nil && m.Regions[p] == 0 {
				data[idx] = fill
				continue
			}
			if spec.Constant {
				data[idx] = float32(spec.Offset)
				continue
			}
			v := spec.Offset + vert + scale*base[p]
			if spec.Period > 0 {
				v += periodAmp * math.Sin(cyc+2*phase[p])
			}
			if spec.NoiseAmp > 0 {
				v += spec.NoiseAmp * rng.NormFloat64()
			}
			data[idx] = float32(v)
		}
	}

	injectNonFinite(data, m, plane, spec)

	ds := &dataset.Dataset{
		Name: name, Data: data, Dims: append([]int(nil), spec.Dims...),
		Lead: spec.leadKind(), Periodic: spec.Periodic, Mask: m,
		FillValue: fill,
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// injectNonFinite overwrites deterministic valid positions with NaN/±Inf.
func injectNonFinite(data []float32, m *mask.Map, plane int, spec SyntheticSpec) {
	total := spec.NaNs + spec.PosInfs + spec.NegInfs
	if total == 0 {
		return
	}
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x696e6a65))
	vals := make([]float32, 0, total)
	for i := 0; i < spec.NaNs; i++ {
		vals = append(vals, float32(math.NaN()))
	}
	for i := 0; i < spec.PosInfs; i++ {
		vals = append(vals, float32(math.Inf(1)))
	}
	for i := 0; i < spec.NegInfs; i++ {
		vals = append(vals, float32(math.Inf(-1)))
	}
	for _, v := range vals {
		// Rejection-sample a valid position; cap attempts so a fully masked
		// field cannot loop forever.
		for try := 0; try < 64; try++ {
			idx := rng.Intn(len(data))
			if m != nil && m.Regions[idx%plane] == 0 {
				continue
			}
			data[idx] = v
			break
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
