package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"cliz/internal/mask"
)

// TemporalSpec parameterizes a deterministic sequence of timesteps of one
// horizontal field — the workload of the streaming codec. Each frame is an
// advected smooth pattern plus a slow additive drift plus AR(1) noise whose
// frame-to-frame correlation is the knob that decides how much a temporal
// delta can win over independent coding.
type TemporalSpec struct {
	// Name labels the stream (defaults to "temporal").
	Name string `json:"name,omitempty"`
	// Frames is the number of timesteps.
	Frames int `json:"frames"`
	// NLat, NLon are the per-frame grid extents.
	NLat int `json:"nLat"`
	NLon int `json:"nLon"`
	// Seed drives every random choice; equal specs generate equal bits.
	Seed int64 `json:"seed"`
	// Corr in [0, 1) is the frame-to-frame correlation of the stochastic
	// component: n_t = Corr·n_{t−1} + sqrt(1−Corr²)·ε_t, so the per-frame
	// marginal variance is constant while consecutive frames decorrelate at
	// rate 1−Corr. 0 makes every frame's noise independent.
	Corr float64 `json:"corr,omitempty"`
	// AdvectCells is the per-frame eastward advection of the smooth pattern,
	// in (fractional) grid cells with longitude wraparound.
	AdvectCells float64 `json:"advectCells,omitempty"`
	// Drift is the per-frame additive trend (slow warming/cooling).
	Drift float64 `json:"drift,omitempty"`
	// NoiseAmp scales the stochastic component.
	NoiseAmp float64 `json:"noiseAmp,omitempty"`
	// Scale multiplies the advected pattern (0 selects 100).
	Scale float64 `json:"scale,omitempty"`
	// Offset shifts the whole field.
	Offset float64 `json:"offset,omitempty"`
	// MaskFrac in (0, 1] masks roughly that fraction of the plane with a
	// contiguous terrain-threshold mask; 0 disables the mask.
	MaskFrac float64 `json:"maskFrac,omitempty"`
	// FillValue is stored at masked points (0 picks the CESM sentinel).
	FillValue float32 `json:"fillValue,omitempty"`
}

// TemporalStream is a generated frame sequence ready to feed a stream
// writer.
type TemporalStream struct {
	Name string
	// Dims are the per-frame extents {nLat, nLon}.
	Dims []int
	Mask *mask.Map
	Fill float32
	// Frames holds one grid per timestep.
	Frames [][]float32
}

// Temporal generates the frame sequence described by spec. The output is a
// pure function of the spec: identical specs yield bit-identical streams.
func Temporal(spec TemporalSpec) (*TemporalStream, error) {
	if spec.Frames < 1 {
		return nil, fmt.Errorf("datagen: temporal frame count %d < 1", spec.Frames)
	}
	if spec.NLat < 1 || spec.NLon < 1 {
		return nil, fmt.Errorf("datagen: temporal grid %d×%d has empty extents", spec.NLat, spec.NLon)
	}
	if spec.Corr < 0 || spec.Corr >= 1 {
		return nil, fmt.Errorf("datagen: temporal correlation %g not in [0, 1)", spec.Corr)
	}
	name := spec.Name
	if name == "" {
		name = "temporal"
	}
	fill := spec.FillValue
	if fill == 0 {
		fill = FillValue
	}
	scale := spec.Scale
	if scale == 0 {
		scale = 100
	}
	plane := spec.NLat * spec.NLon

	var m *mask.Map
	if spec.MaskFrac > 0 {
		ter := NewTerrain(spec.NLat, spec.NLon, spec.Seed^0x6d61736b, clamp01(spec.MaskFrac))
		regions := make([]int32, plane)
		valid := 0
		for i, h := range ter.Height {
			if h >= ter.SeaLevel {
				regions[i] = 1
				valid++
			}
		}
		if valid == 0 && spec.MaskFrac < 1 {
			regions[0] = 1
		}
		m = mask.New(spec.NLat, spec.NLon, regions)
	}

	base := spectral2D(spec.NLat, spec.NLon, spec.Seed^0x61647665, 24, 0.8)
	rng := rand.New(rand.NewSource(spec.Seed ^ 0x74656d70))
	noise := make([]float64, plane)
	for p := range noise {
		noise[p] = rng.NormFloat64()
	}
	mix := math.Sqrt(1 - spec.Corr*spec.Corr)

	out := &TemporalStream{
		Name: name,
		Dims: []int{spec.NLat, spec.NLon},
		Mask: m,
		Fill: fill,
	}
	out.Frames = make([][]float32, spec.Frames)
	for t := range out.Frames {
		if t > 0 && spec.NoiseAmp > 0 {
			for p := range noise {
				noise[p] = spec.Corr*noise[p] + mix*rng.NormFloat64()
			}
		}
		shift := spec.AdvectCells * float64(t)
		drift := spec.Drift * float64(t)
		frame := make([]float32, plane)
		for i := 0; i < spec.NLat; i++ {
			for j := 0; j < spec.NLon; j++ {
				p := i*spec.NLon + j
				if m != nil && m.Regions[p] == 0 {
					frame[p] = fill
					continue
				}
				v := spec.Offset + drift + scale*sampleLon(base, spec.NLon, i, float64(j)-shift)
				if spec.NoiseAmp > 0 {
					v += spec.NoiseAmp * noise[p]
				}
				frame[p] = float32(v)
			}
		}
		out.Frames[t] = frame
	}
	return out, nil
}

// sampleLon linearly interpolates row i of a (nLat×nLon) plane at fractional
// longitude x, wrapping around the dateline.
func sampleLon(plane []float64, nLon, i int, x float64) float64 {
	x = math.Mod(x, float64(nLon))
	if x < 0 {
		x += float64(nLon)
	}
	j0 := int(x)
	f := x - float64(j0)
	j1 := (j0 + 1) % nLon
	row := plane[i*nLon:]
	return row[j0]*(1-f) + row[j1]*f
}

// TemporalScenario returns the streaming benchmark's frame-sequence specs at
// the given size scale: a smoothly advecting masked ocean field (the case
// temporal deltas should win big) and a noisier drifting field with weaker
// frame-to-frame correlation (the stress case).
func TemporalScenario(scale float64) []TemporalSpec {
	nLat := scaled(384, scale, 48)
	nLon := scaled(320, scale, 48)
	frames := scaled(128, scale, 24)
	return []TemporalSpec{
		{
			Name: "ADVECT-SSH", Frames: frames, NLat: nLat, NLon: nLon,
			Seed: 1101, Corr: 0.98, AdvectCells: 0.2, Drift: 0.01,
			NoiseAmp: 0.5, Scale: 120, MaskFrac: 0.3,
		},
		{
			Name: "DRIFT-T", Frames: frames, NLat: nLat, NLon: nLon,
			Seed: 1102, Corr: 0.95, AdvectCells: 0.1, Drift: 0.05,
			NoiseAmp: 1.5, Scale: 60, Offset: 287,
		},
	}
}
