package datagen

import (
	"math"
	"testing"
)

func TestTemporalDeterministic(t *testing.T) {
	spec := TemporalSpec{Frames: 6, NLat: 20, NLon: 24, Seed: 7,
		Corr: 0.9, AdvectCells: 0.5, Drift: 0.02, NoiseAmp: 0.5, MaskFrac: 0.3}
	a, err := Temporal(spec)
	if err != nil {
		t.Fatalf("Temporal: %v", err)
	}
	b, _ := Temporal(spec)
	for f := range a.Frames {
		for p := range a.Frames[f] {
			if math.Float32bits(a.Frames[f][p]) != math.Float32bits(b.Frames[f][p]) {
				t.Fatalf("frame %d point %d differs between identical specs", f, p)
			}
		}
	}
	if a.Mask == nil {
		t.Fatal("MaskFrac 0.3 produced no mask")
	}
	masked := 0
	for p, r := range a.Mask.Regions {
		if r == 0 {
			masked++
			for f := range a.Frames {
				if a.Frames[f][p] != a.Fill {
					t.Fatalf("frame %d point %d: masked point holds %g", f, p, a.Frames[f][p])
				}
			}
		}
	}
	if frac := float64(masked) / float64(len(a.Mask.Regions)); frac < 0.1 || frac > 0.6 {
		t.Errorf("masked fraction %g far from requested 0.3", frac)
	}
}

// TestTemporalCorrelation: with high Corr and slow advection, consecutive
// frames must be much closer to each other than distant frames — the
// property the delta codec exploits.
func TestTemporalCorrelation(t *testing.T) {
	ts, err := Temporal(TemporalSpec{Frames: 24, NLat: 32, NLon: 32, Seed: 11,
		Corr: 0.98, AdvectCells: 0.3, NoiseAmp: 1})
	if err != nil {
		t.Fatalf("Temporal: %v", err)
	}
	rms := func(a, b []float32) float64 {
		s := 0.0
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			s += d * d
		}
		return math.Sqrt(s / float64(len(a)))
	}
	adjacent := rms(ts.Frames[10], ts.Frames[11])
	distant := rms(ts.Frames[0], ts.Frames[23])
	if adjacent*3 > distant {
		t.Errorf("adjacent RMS %g not well below distant RMS %g", adjacent, distant)
	}
}

func TestTemporalRejectsBadSpecs(t *testing.T) {
	bad := []TemporalSpec{
		{Frames: 0, NLat: 4, NLon: 4},
		{Frames: 2, NLat: 0, NLon: 4},
		{Frames: 2, NLat: 4, NLon: 4, Corr: 1},
		{Frames: 2, NLat: 4, NLon: 4, Corr: -0.1},
	}
	for i, spec := range bad {
		if _, err := Temporal(spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestTemporalScenario(t *testing.T) {
	for _, spec := range TemporalScenario(0.1) {
		ts, err := Temporal(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if len(ts.Frames) != spec.Frames {
			t.Errorf("%s: %d frames, want %d", spec.Name, len(ts.Frames), spec.Frames)
		}
	}
}
