// Package dataset models the climate fields the paper evaluates (Table III):
// a multi-dimensional float32 grid whose trailing two dimensions are the
// horizontal (lat, lon) plane and whose optional leading dimension is time or
// height, plus the CESM-style side information CliZ consumes — the mask map
// and the periodicity hint from the file metadata.
package dataset

import (
	"fmt"

	"cliz/internal/grid"
	"cliz/internal/mask"
	"cliz/internal/stats"
)

// LeadKind describes the physical meaning of the leading dimension.
type LeadKind int

const (
	// LeadNone means the dataset is purely horizontal (2D).
	LeadNone LeadKind = iota
	// LeadTime means the leading dimension is time; periodic component
	// extraction may apply (paper §V-C).
	LeadTime
	// LeadHeight means the leading dimension is vertical layers.
	LeadHeight
)

// String implements fmt.Stringer.
func (k LeadKind) String() string {
	switch k {
	case LeadTime:
		return "Time"
	case LeadHeight:
		return "Height"
	}
	return "None"
}

// Dataset is one climate field plus its side information.
type Dataset struct {
	Name string
	// Data is row-major over Dims.
	Data []float32
	// Dims: trailing two dimensions are (lat, lon); leading dimensions are
	// time and/or height — [time, height, lat, lon] for 4D fields like
	// SOILLIQ, [lead, lat, lon] for 3D, or [lat, lon] for 2D.
	Dims []int
	// Lead describes the first dimension (LeadNone for 2D fields).
	Lead LeadKind
	// Periodic marks fields whose metadata flags the time dimension as
	// periodic (e.g. monthly snapshots with an annual cycle).
	Periodic bool
	// Mask is the horizontal mask map, nil if every point is valid.
	Mask *mask.Map
	// FillValue replaces masked points (CESM uses huge sentinels).
	FillValue float32
}

// Points returns the total number of grid points.
func (d *Dataset) Points() int { return grid.Volume(d.Dims) }

// LatLonDims returns the horizontal extents (the trailing two dims).
func (d *Dataset) LatLonDims() (nLat, nLon int) {
	n := len(d.Dims)
	if n < 2 {
		return 1, d.Dims[n-1]
	}
	return d.Dims[n-2], d.Dims[n-1]
}

// Validity returns the broadcast validity bitmap (nil when unmasked or when
// the mask does not fit the dims — Validate reports that case as an error).
func (d *Dataset) Validity() []bool {
	if d.Mask == nil {
		return nil
	}
	v, err := d.Mask.Broadcast(d.Dims)
	if err != nil {
		return nil
	}
	return v
}

// ValidPoints counts the valid points.
func (d *Dataset) ValidPoints() int {
	if d.Mask == nil {
		return d.Points()
	}
	lead := 1
	if len(d.Dims) > 2 {
		for _, x := range d.Dims[:len(d.Dims)-2] {
			lead *= x
		}
	}
	return lead * d.Mask.ValidCount()
}

// ValueRange returns (min, max) over valid points.
func (d *Dataset) ValueRange() (float64, float64) {
	return stats.Range(d.Data, d.Validity())
}

// AbsErrorBound converts a relative error bound (fraction of the valid value
// range, as used throughout the paper's evaluation) into an absolute bound.
func (d *Dataset) AbsErrorBound(rel float64) float64 {
	lo, hi := d.ValueRange()
	r := hi - lo
	if r <= 0 {
		r = 1
	}
	return rel * r
}

// Validate checks internal consistency.
func (d *Dataset) Validate() error {
	if len(d.Dims) < 1 || len(d.Dims) > 4 {
		return fmt.Errorf("dataset %s: unsupported rank %d", d.Name, len(d.Dims))
	}
	if got, want := len(d.Data), grid.Volume(d.Dims); got != want {
		return fmt.Errorf("dataset %s: data %d != volume %d", d.Name, got, want)
	}
	if d.Mask != nil {
		nLat, nLon := d.LatLonDims()
		if d.Mask.NLat != nLat || d.Mask.NLon != nLon {
			return fmt.Errorf("dataset %s: mask %dx%d != grid %dx%d",
				d.Name, d.Mask.NLat, d.Mask.NLon, nLat, nLon)
		}
	}
	if d.Periodic && d.Lead != LeadTime {
		return fmt.Errorf("dataset %s: periodic without a time dimension", d.Name)
	}
	if d.Periodic && d.Mask != nil && len(d.Dims) < 3 {
		// A 2D periodic field is (time, lon); a "horizontal" mask would
		// span the time axis, contradicting its time-invariance.
		return fmt.Errorf("dataset %s: a masked periodic dataset needs a separate time dimension (rank ≥ 3)", d.Name)
	}
	return nil
}

// Clone performs a deep copy (used by experiments that mutate data).
func (d *Dataset) Clone() *Dataset {
	cp := *d
	cp.Data = append([]float32(nil), d.Data...)
	if d.Mask != nil {
		cp.Mask = mask.New(d.Mask.NLat, d.Mask.NLon,
			append([]int32(nil), d.Mask.Regions...))
	}
	cp.Dims = append([]int(nil), d.Dims...)
	return &cp
}
