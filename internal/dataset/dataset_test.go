package dataset

import (
	"testing"

	"cliz/internal/mask"
)

func sample3D() *Dataset {
	data := make([]float32, 2*3*4)
	for i := range data {
		data[i] = float32(i)
	}
	return &Dataset{
		Name: "t", Data: data, Dims: []int{2, 3, 4},
		Lead: LeadTime,
	}
}

func TestValidateHappyPath(t *testing.T) {
	ds := sample3D()
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	if ds.Points() != 24 {
		t.Fatalf("points %d", ds.Points())
	}
	nLat, nLon := ds.LatLonDims()
	if nLat != 3 || nLon != 4 {
		t.Fatalf("latlon %d %d", nLat, nLon)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := sample3D()
	bad.Data = bad.Data[:5]
	if err := bad.Validate(); err == nil {
		t.Fatal("length mismatch accepted")
	}
	bad = sample3D()
	bad.Dims = []int{2, 3, 4, 5, 6}
	if err := bad.Validate(); err == nil {
		t.Fatal("rank 5 accepted")
	}
	bad = sample3D()
	bad.Mask = mask.New(5, 5, make([]int32, 25))
	if err := bad.Validate(); err == nil {
		t.Fatal("mask dims mismatch accepted")
	}
	bad = sample3D()
	bad.Lead = LeadHeight
	bad.Periodic = true
	if err := bad.Validate(); err == nil {
		t.Fatal("periodic height accepted")
	}
}

func TestValidityAndCounts(t *testing.T) {
	ds := sample3D()
	if ds.Validity() != nil {
		t.Fatal("unmasked validity should be nil")
	}
	if ds.ValidPoints() != 24 {
		t.Fatalf("valid points %d", ds.ValidPoints())
	}
	regions := []int32{1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0}
	ds.Mask = mask.New(3, 4, regions)
	if ds.ValidPoints() != 12 { // 6 valid cells × 2 time steps
		t.Fatalf("masked valid points %d", ds.ValidPoints())
	}
	v := ds.Validity()
	if len(v) != 24 || !v[0] || v[1] {
		t.Fatalf("validity %v", v[:4])
	}
}

func TestValueRangeSkipsMasked(t *testing.T) {
	ds := sample3D()
	regions := make([]int32, 12)
	regions[0] = 1 // only cell 0 valid
	ds.Mask = mask.New(3, 4, regions)
	ds.Data[0] = 5
	ds.Data[12] = 7 // t=1, cell 0
	lo, hi := ds.ValueRange()
	if lo != 5 || hi != 7 {
		t.Fatalf("range %g %g", lo, hi)
	}
	if eb := ds.AbsErrorBound(0.5); eb != 1 {
		t.Fatalf("eb %g", eb)
	}
}

func TestAbsErrorBoundDegenerateRange(t *testing.T) {
	ds := &Dataset{Name: "c", Data: []float32{3, 3, 3}, Dims: []int{3}}
	if eb := ds.AbsErrorBound(0.1); eb != 0.1 {
		t.Fatalf("constant-field eb %g (range should default to 1)", eb)
	}
}

func TestLeadKindString(t *testing.T) {
	if LeadNone.String() != "None" || LeadTime.String() != "Time" || LeadHeight.String() != "Height" {
		t.Fatal("LeadKind.String broken")
	}
}

func TestValidateRejectsMasked2DPeriodic(t *testing.T) {
	bad := &Dataset{
		Name: "bad2d", Data: make([]float32, 12), Dims: []int{3, 4},
		Lead: LeadTime, Periodic: true,
		Mask: mask.New(3, 4, make([]int32, 12)),
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("masked 2D periodic dataset accepted (the mask would span time)")
	}
}
