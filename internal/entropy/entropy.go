// Package entropy multiplexes the symbol-coding stage of the compression
// pipelines: canonical Huffman (the paper's choice) or static rANS (the
// FSE/Zstd family). Every block is self-describing — one kind byte followed
// by the coder's own payload — so pipelines can mix coders freely.
//
// Blocks may additionally be *sharded* (kind Sharded): the symbol stream is
// cut into contiguous sections that are encoded and decoded concurrently. A
// sharded Huffman block shares one code table across all shards; only the
// bitstreams are per-shard, so the size cost over a plain block is the shard
// directory (a few varints per shard). Sharded rANS blocks fall back to
// independent sub-blocks (one slot table each) because the rANS stream state
// cannot be split under a shared table without re-normalizing.
package entropy

import (
	"errors"
	"sync"

	"cliz/internal/bitio"
	"cliz/internal/huffman"
	"cliz/internal/par"
	"cliz/internal/rans"
)

// Kind selects the symbol coder.
type Kind byte

// Available coders.
const (
	Huffman Kind = 0
	RANS    Kind = 1
	// Sharded marks a parallel container: a mode byte (shared-table Huffman
	// or independent sub-blocks), a shard directory, and per-shard streams.
	Sharded Kind = 2
	// RANSInterleaved codes with rans.DefaultWays interleaved states sharing
	// one stream: same model and size class as RANS, faster decode. Blocks
	// are self-describing, so v1-v3 blobs (which never carry this kind) are
	// untouched; it is only emitted when a pipeline opts in.
	RANSInterleaved Kind = 3
)

// Sharded container modes.
const (
	modeSharedHuffman byte = 0
	modeSubBlocks     byte = 1
)

// minShardSyms is the smallest symbol count worth cutting into one extra
// shard.
const minShardSyms = 1024

// maxShards bounds the decoder's shard-directory allocation; encoders use
// one shard per worker, so real counts are tiny.
const maxShards = 1 << 12

// ErrCorrupt reports an unknown coder id or malformed payload.
var ErrCorrupt = errors.New("entropy: corrupt block")

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Huffman:
		return "huffman"
	case RANS:
		return "rans"
	case Sharded:
		return "sharded"
	case RANSInterleaved:
		return "rans-interleaved"
	}
	return "unknown"
}

// EncodeBlock compresses symbols with the requested coder. rANS falls back
// to Huffman when the alphabet exceeds its slot table (the block records
// what was actually used).
func EncodeBlock(kind Kind, symbols []uint32) []byte {
	switch kind {
	case RANS:
		if body, ok := rans.EncodeBlock(symbols); ok {
			return append([]byte{byte(RANS)}, body...)
		}
	case RANSInterleaved:
		if body, ok := rans.EncodeInterleavedBlock(symbols, rans.DefaultWays); ok {
			return append([]byte{byte(RANSInterleaved)}, body...)
		}
	}
	return append([]byte{byte(Huffman)}, huffman.EncodeBlock(symbols)...)
}

// DecodeBlock reverses EncodeBlock (and decodes sharded blocks serially; use
// DecodeBlockParallel to fan shard decoding out across workers).
func DecodeBlock(blob []byte) ([]uint32, error) {
	return DecodeBlockParallel(blob, 1)
}

// DecodeBlockParallel is DecodeBlock with bounded shard-level parallelism:
// the shards of a Sharded block decode on up to `workers` goroutines into
// disjoint windows of one output slice. Plain blocks (and workers <= 1)
// decode serially; the result is identical either way.
func DecodeBlockParallel(blob []byte, workers int) ([]uint32, error) {
	return DecodeBlockBounded(blob, workers, -1)
}

// DecodeBlockBounded is DecodeBlockParallel with a caller-supplied upper
// bound on the decoded symbol count (-1 for no caller bound). Decoders
// that know their output volume — the core layer always does — should
// pass it so a hostile declared count is rejected before any allocation
// instead of being discovered after a huge make().
func DecodeBlockBounded(blob []byte, workers, maxSyms int) ([]uint32, error) {
	if len(blob) == 0 {
		return nil, ErrCorrupt
	}
	switch Kind(blob[0]) {
	case Huffman:
		syms, _, err := huffman.DecodeBlockMax(blob[1:], maxSyms)
		return syms, err
	case RANS:
		syms, _, err := rans.DecodeBlockMax(blob[1:], ransBudget(maxSyms))
		return syms, err
	case RANSInterleaved:
		syms, _, err := rans.DecodeInterleavedBlockMax(blob[1:], ransBudget(maxSyms))
		return syms, err
	case Sharded:
		return decodeSharded(blob[1:], workers, maxSyms)
	}
	return nil, ErrCorrupt
}

// ransBudget maps the caller bound onto rans.DecodeBlockMax's contract,
// which has no "unbounded" mode: absent a caller bound, fall back to the
// package-wide absolute cap.
func ransBudget(maxSyms int) int {
	if maxSyms < 0 {
		return rans.MaxBlockSyms
	}
	return maxSyms
}

// writerPool recycles the bitstream writers of parallel shard encoders; the
// backing buffers grow to shard size once and are reused across blobs.
var writerPool = sync.Pool{New: func() any { return bitio.NewWriter(0) }}

// EncodeBlockSharded encodes symbols as a Sharded container of `shards`
// contiguous sections compressed concurrently (bounded by the shard count
// itself — callers pick shards = worker budget). Huffman shards share one
// code table built over the full stream, so the output is the plain block's
// table and bitstream plus a small shard directory. shards <= 1, or streams
// too short to cut, degrade to the plain self-describing EncodeBlock. The
// output depends only on (kind, symbols, shards) — never on scheduling.
func EncodeBlockSharded(kind Kind, symbols []uint32, shards int) []byte {
	// Shards below ~minShardSyms symbols cost more in directory and table
	// overhead than the concurrency buys; short streams degrade gracefully.
	if s := len(symbols) / minShardSyms; shards > s {
		shards = s
	}
	if shards <= 1 {
		return EncodeBlock(kind, symbols)
	}
	bounds := shardBounds(len(symbols), shards)
	n := len(bounds) - 1
	if kind == RANS || kind == RANSInterleaved {
		// Independent sub-blocks: each shard re-derives its own table (and
		// keeps rANS's own Huffman fallback for oversized alphabets).
		subs := make([][]byte, n)
		par.Run(n, n, func(i int) {
			subs[i] = EncodeBlock(kind, symbols[bounds[i]:bounds[i+1]])
		})
		out := []byte{byte(Sharded), modeSubBlocks}
		out = appendUvarint(out, uint64(n))
		for i, sub := range subs {
			out = appendUvarint(out, uint64(bounds[i+1]-bounds[i]))
			out = appendUvarint(out, uint64(len(sub)))
		}
		for _, sub := range subs {
			out = append(out, sub...)
		}
		return out
	}
	// Shared-table Huffman: one codec over the full stream, per-shard
	// byte-aligned bitstreams.
	c := huffman.Build(huffman.CountFreqs(symbols))
	streams := make([][]byte, n)
	par.Run(n, n, func(i int) {
		w := writerPool.Get().(*bitio.Writer)
		w.Reset()
		_ = c.Encode(symbols[bounds[i]:bounds[i+1]], w) // codec covers these symbols
		streams[i] = append([]byte(nil), w.Bytes()...)
		writerPool.Put(w)
	})
	out := []byte{byte(Sharded), modeSharedHuffman}
	out = c.SerializeTable(out)
	out = appendUvarint(out, uint64(n))
	for i, s := range streams {
		out = appendUvarint(out, uint64(bounds[i+1]-bounds[i]))
		out = appendUvarint(out, uint64(len(s)))
	}
	for _, s := range streams {
		out = append(out, s...)
	}
	return out
}

// shardBounds cuts n symbols into k near-equal contiguous sections.
func shardBounds(n, k int) []int {
	bounds := make([]int, 0, k+1)
	bounds = append(bounds, 0)
	for i := 1; i <= k; i++ {
		b := n * i / k
		if b > bounds[len(bounds)-1] {
			bounds = append(bounds, b)
		}
	}
	return bounds
}

// shardDir is one parsed shard-directory entry.
type shardDir struct {
	nSyms   int
	nBytes  int
	symOff  int
	byteOff int
}

// maxShardSymsPerByte caps a sub-block shard's declared symbol count per
// payload byte. Unlike Huffman, rANS encodes skewed alphabets well below one
// bit per symbol (a constant run costs a near-fixed header regardless of
// length), so only a generous ratio — the same order as the core layer's
// maxPointsPerByte — separates plausible streams from hostile directories
// that would force a huge output allocation before any shard decodes.
const maxShardSymsPerByte = 1 << 16

// parseShardDir reads the shard count and directory at body[*pos:], returning
// the entries with symbol/byte offsets resolved and validated against the
// remaining payload length. The per-shard symbol/byte plausibility check
// depends on the container mode: shared-Huffman shards cost at least one bit
// per symbol, sub-block shards only satisfy the looser allocation cap.
func parseShardDir(body []byte, pos *int, mode byte, maxSyms int) ([]shardDir, error) {
	nShards, err := readUvarint(body, pos)
	if err != nil || nShards == 0 || nShards > maxShards || nShards > uint64(len(body)) {
		return nil, ErrCorrupt
	}
	dir := make([]shardDir, nShards)
	symOff, byteOff := 0, 0
	for i := range dir {
		ns, err := readUvarint(body, pos)
		if err != nil {
			return nil, ErrCorrupt
		}
		nb, err := readUvarint(body, pos)
		if err != nil {
			return nil, ErrCorrupt
		}
		// The encoder never emits empty shards, and every shard carries at
		// least one payload byte (sub-blocks embed their own header; Huffman
		// streams carry the bits themselves).
		if ns == 0 || nb == 0 || nb > uint64(len(body)) {
			return nil, ErrCorrupt
		}
		// Shared-Huffman shards cost at least one bit per symbol, so beyond
		// 8x the payload bytes cannot be legitimate. Sub-block shards (rANS)
		// can dip far below a bit per symbol on skewed alphabets, so they
		// only get the allocation cap; a lying directory is still caught
		// after decode, when the shard's own symbol count disagrees.
		limit := 8 * nb
		if mode == modeSubBlocks {
			limit = maxShardSymsPerByte * nb
		}
		if ns > limit {
			return nil, ErrCorrupt
		}
		dir[i] = shardDir{nSyms: int(ns), nBytes: int(nb), symOff: symOff, byteOff: byteOff}
		symOff += int(ns)
		byteOff += int(nb)
		if symOff < 0 || byteOff < 0 {
			return nil, ErrCorrupt
		}
	}
	if byteOff > len(body)-*pos {
		return nil, ErrCorrupt
	}
	if maxSyms >= 0 && symOff > maxSyms {
		return nil, ErrCorrupt
	}
	return dir, nil
}

// decodeSharded decodes a Sharded container body (everything after the kind
// byte) with up to `workers` concurrent shard decoders.
func decodeSharded(body []byte, workers, maxSyms int) ([]uint32, error) {
	if len(body) < 2 {
		return nil, ErrCorrupt
	}
	mode := body[0]
	pos := 1
	var codec *huffman.Codec
	switch mode {
	case modeSharedHuffman:
		c, n, err := huffman.ParseTable(body[pos:])
		if err != nil {
			return nil, ErrCorrupt
		}
		codec = c
		pos += n
	case modeSubBlocks:
	default:
		return nil, ErrCorrupt
	}
	dir, err := parseShardDir(body, &pos, mode, maxSyms)
	if err != nil {
		return nil, err
	}
	last := dir[len(dir)-1]
	out := make([]uint32, last.symOff+last.nSyms)
	streams := body[pos:]
	errs := make([]error, len(dir))
	par.Run(workers, len(dir), func(i int) {
		d := dir[i]
		raw := streams[d.byteOff : d.byteOff+d.nBytes]
		dst := out[d.symOff : d.symOff+d.nSyms]
		if mode == modeSharedHuffman {
			errs[i] = codec.DecodeInto(dst, bitio.NewReader(raw))
			return
		}
		syms, err := DecodeBlockBounded(raw, 1, d.nSyms)
		if err != nil {
			errs[i] = err
			return
		}
		if len(syms) != d.nSyms {
			errs[i] = ErrCorrupt
			return
		}
		copy(dst, syms)
	})
	for _, err := range errs {
		if err != nil {
			return nil, ErrCorrupt
		}
	}
	return out, nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func readUvarint(src []byte, pos *int) (uint64, error) {
	var v uint64
	var shift uint
	for i := *pos; i < len(src); i++ {
		if i-*pos > 9 {
			return 0, ErrCorrupt
		}
		b := src[i]
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			*pos = i + 1
			return v, nil
		}
		shift += 7
	}
	return 0, ErrCorrupt
}

// BlockStats splits an encoded block into its code-table bytes and payload
// bytes (symbol counts + bitstream) without decoding it — the observability
// layer uses this to report how much of each symbol stream is tree/table
// overhead. ok is false for malformed blocks.
func BlockStats(blob []byte) (kind Kind, tableBytes, streamBytes int, ok bool) {
	if len(blob) == 0 {
		return 0, 0, 0, false
	}
	kind = Kind(blob[0])
	body := blob[1:]
	var n int
	switch kind {
	case Huffman:
		_, pos, err := huffman.ParseTable(body)
		if err != nil {
			return kind, 0, 0, false
		}
		n = pos
	case RANS, RANSInterleaved:
		pos, tok := rans.TableBytes(body)
		if !tok {
			return kind, 0, 0, false
		}
		n = pos
	case Sharded:
		// Table side = mode byte + shared code table (if any) + the shard
		// directory; stream side = the concatenated shard payloads (which,
		// in sub-block mode, still embed their own small tables).
		if len(body) < 2 {
			return kind, 0, 0, false
		}
		pos := 1
		if body[0] == modeSharedHuffman {
			_, tn, err := huffman.ParseTable(body[pos:])
			if err != nil {
				return kind, 0, 0, false
			}
			pos += tn
		} else if body[0] != modeSubBlocks {
			return kind, 0, 0, false
		}
		if _, err := parseShardDir(body, &pos, body[0], -1); err != nil {
			return kind, 0, 0, false
		}
		n = pos
	default:
		return kind, 0, 0, false
	}
	return kind, n, len(body) - n, true
}
