// Package entropy multiplexes the symbol-coding stage of the compression
// pipelines: canonical Huffman (the paper's choice) or static rANS (the
// FSE/Zstd family). Every block is self-describing — one kind byte followed
// by the coder's own payload — so pipelines can mix coders freely.
package entropy

import (
	"errors"

	"cliz/internal/huffman"
	"cliz/internal/rans"
)

// Kind selects the symbol coder.
type Kind byte

// Available coders.
const (
	Huffman Kind = 0
	RANS    Kind = 1
)

// ErrCorrupt reports an unknown coder id or malformed payload.
var ErrCorrupt = errors.New("entropy: corrupt block")

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Huffman:
		return "huffman"
	case RANS:
		return "rans"
	}
	return "unknown"
}

// EncodeBlock compresses symbols with the requested coder. rANS falls back
// to Huffman when the alphabet exceeds its slot table (the block records
// what was actually used).
func EncodeBlock(kind Kind, symbols []uint32) []byte {
	if kind == RANS {
		if body, ok := rans.EncodeBlock(symbols); ok {
			return append([]byte{byte(RANS)}, body...)
		}
	}
	return append([]byte{byte(Huffman)}, huffman.EncodeBlock(symbols)...)
}

// DecodeBlock reverses EncodeBlock.
func DecodeBlock(blob []byte) ([]uint32, error) {
	if len(blob) == 0 {
		return nil, ErrCorrupt
	}
	switch Kind(blob[0]) {
	case Huffman:
		syms, _, err := huffman.DecodeBlock(blob[1:])
		return syms, err
	case RANS:
		syms, _, err := rans.DecodeBlock(blob[1:])
		return syms, err
	}
	return nil, ErrCorrupt
}

// BlockStats splits an encoded block into its code-table bytes and payload
// bytes (symbol counts + bitstream) without decoding it — the observability
// layer uses this to report how much of each symbol stream is tree/table
// overhead. ok is false for malformed blocks.
func BlockStats(blob []byte) (kind Kind, tableBytes, streamBytes int, ok bool) {
	if len(blob) == 0 {
		return 0, 0, 0, false
	}
	kind = Kind(blob[0])
	body := blob[1:]
	var n int
	switch kind {
	case Huffman:
		_, pos, err := huffman.ParseTable(body)
		if err != nil {
			return kind, 0, 0, false
		}
		n = pos
	case RANS:
		pos, tok := rans.TableBytes(body)
		if !tok {
			return kind, 0, 0, false
		}
		n = pos
	default:
		return kind, 0, 0, false
	}
	return kind, n, len(body) - n, true
}
