package entropy

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestBothKindsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]uint32, 5000)
	for i := range syms {
		syms[i] = uint32(32768 + rng.Intn(9) - 4)
	}
	for _, k := range []Kind{Huffman, RANS} {
		blob := EncodeBlock(k, syms)
		if Kind(blob[0]) != k {
			t.Fatalf("%s: kind byte %d", k, blob[0])
		}
		got, err := DecodeBlock(blob)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if !reflect.DeepEqual(got, syms) {
			t.Fatalf("%s: round trip failed", k)
		}
	}
}

func TestRANSFallsBackOnHugeAlphabet(t *testing.T) {
	syms := make([]uint32, 10000)
	for i := range syms {
		syms[i] = uint32(i) // 10000 distinct > rANS slot table
	}
	blob := EncodeBlock(RANS, syms)
	if Kind(blob[0]) != Huffman {
		t.Fatal("expected Huffman fallback")
	}
	got, err := DecodeBlock(blob)
	if err != nil || !reflect.DeepEqual(got, syms) {
		t.Fatalf("fallback round trip: %v", err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeBlock(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := DecodeBlock([]byte{99, 1, 2}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestKindString(t *testing.T) {
	if Huffman.String() != "huffman" || RANS.String() != "rans" || Kind(7).String() != "unknown" {
		t.Fatal("Kind.String broken")
	}
}

func TestEmpty(t *testing.T) {
	for _, k := range []Kind{Huffman, RANS} {
		got, err := DecodeBlock(EncodeBlock(k, nil))
		if err != nil || len(got) != 0 {
			t.Fatalf("%s empty: %v %v", k, got, err)
		}
	}
}
