package entropy

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomSyms(seed int64, n int) []uint32 {
	rng := rand.New(rand.NewSource(seed))
	syms := make([]uint32, n)
	for i := range syms {
		syms[i] = uint32(32768 + rng.Intn(17) - 8)
	}
	return syms
}

func TestShardedRoundTrip(t *testing.T) {
	for _, kind := range []Kind{Huffman, RANS} {
		for _, n := range []int{0, 1, 2, 7, 100, 5000} {
			for _, shards := range []int{1, 2, 3, 8, 64} {
				syms := randomSyms(int64(n*31+shards), n)
				blob := EncodeBlockSharded(kind, syms, shards)
				for _, workers := range []int{1, 4} {
					got, err := DecodeBlockParallel(blob, workers)
					if err != nil {
						t.Fatalf("%s n=%d shards=%d workers=%d: %v", kind, n, shards, workers, err)
					}
					if len(got) == 0 && len(syms) == 0 {
						continue
					}
					if !reflect.DeepEqual(got, syms) {
						t.Fatalf("%s n=%d shards=%d workers=%d: round trip mismatch", kind, n, shards, workers)
					}
				}
			}
		}
	}
}

func TestShardedDegradesToPlainBlock(t *testing.T) {
	syms := randomSyms(3, 2000)
	plain := EncodeBlock(Huffman, syms)
	if got := EncodeBlockSharded(Huffman, syms, 1); !reflect.DeepEqual(got, plain) {
		t.Fatal("shards=1 must emit the plain block byte-for-byte")
	}
	if got := EncodeBlockSharded(Huffman, nil, 8); Kind(got[0]) == Sharded {
		t.Fatal("empty stream must not be sharded")
	}
}

func TestShardedDeterministic(t *testing.T) {
	syms := randomSyms(9, 10000)
	a := EncodeBlockSharded(Huffman, syms, 7)
	b := EncodeBlockSharded(Huffman, syms, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("sharded encode is not deterministic")
	}
	if Kind(a[0]) != Sharded {
		t.Fatalf("expected sharded kind, got %d", a[0])
	}
}

func TestShardedOverheadIsSmall(t *testing.T) {
	syms := randomSyms(11, 100000)
	plain := EncodeBlock(Huffman, syms)
	sharded := EncodeBlockSharded(Huffman, syms, 8)
	// Shared table + 8 directory entries + up to 7 bytes of shard padding:
	// the overhead should be well under 1%.
	if over := len(sharded) - len(plain); over < 0 || over > len(plain)/100 {
		t.Fatalf("sharded overhead %d bytes over plain %d", over, len(plain))
	}
}

func TestShardedCorruptRejected(t *testing.T) {
	syms := randomSyms(13, 4000)
	blob := EncodeBlockSharded(Huffman, syms, 4)
	cases := map[string][]byte{
		"empty body":   {byte(Sharded)},
		"bad mode":     {byte(Sharded), 9, 0},
		"trunc table":  blob[:3],
		"trunc stream": blob[:len(blob)-5],
	}
	for name, b := range cases {
		if _, err := DecodeBlock(b); err == nil {
			t.Fatalf("%s: corrupt blob accepted", name)
		}
	}
	// Inflate a directory symbol count past the 8*bytes bound.
	mut := append([]byte(nil), blob...)
	// Find the directory: after kind+mode+table. Rather than locating it
	// precisely, flip every byte position and require no panic and either
	// an error or a decode (never a crash).
	for i := range mut {
		mut[i] ^= 0xff
		_, _ = DecodeBlock(mut)
		mut[i] ^= 0xff
	}
}

// TestShardedSkewedRANSRoundTrip pins a conformance-harness find: rANS
// encodes heavily skewed alphabets below one bit per symbol, so a sub-block
// shard legitimately carries more than 8x its payload bytes in symbols. The
// old directory check assumed >= 1 bit/symbol for every mode and rejected
// such blobs at decode as corrupt.
func TestShardedSkewedRANSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for name, gen := range map[string]func(i int) uint32{
		"constant": func(int) uint32 { return 7 },
		"skewed": func(int) uint32 {
			if rng.Intn(100) == 0 {
				return uint32(rng.Intn(4))
			}
			return 42
		},
	} {
		syms := make([]uint32, 4*minShardSyms)
		for i := range syms {
			syms[i] = gen(i)
		}
		blob := EncodeBlockSharded(RANS, syms, 4)
		if Kind(blob[0]) != Sharded || blob[1] != modeSubBlocks {
			t.Fatalf("%s: expected sharded sub-block container, got %v/%d", name, Kind(blob[0]), blob[1])
		}
		for _, workers := range []int{1, 3} {
			got, err := DecodeBlockParallel(blob, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !reflect.DeepEqual(got, syms) {
				t.Fatalf("%s workers=%d: round trip mismatch", name, workers)
			}
		}
	}
}

func TestShardedBlockStats(t *testing.T) {
	syms := randomSyms(17, 8000)
	blob := EncodeBlockSharded(Huffman, syms, 4)
	kind, table, stream, ok := BlockStats(blob)
	if !ok || kind != Sharded {
		t.Fatalf("BlockStats on sharded: kind=%v ok=%v", kind, ok)
	}
	if table <= 0 || stream <= 0 || 1+table+stream != len(blob) {
		t.Fatalf("BlockStats split %d+%d vs len %d", table, stream, len(blob))
	}
	rblob := EncodeBlockSharded(RANS, syms, 4)
	kind, table, stream, ok = BlockStats(rblob)
	if !ok || kind != Sharded || 1+table+stream != len(rblob) {
		t.Fatalf("BlockStats on sharded rANS: kind=%v ok=%v %d+%d vs %d", kind, ok, table, stream, len(rblob))
	}
}
