package estimate

import (
	"reflect"
	"testing"

	"cliz/internal/core"
	"cliz/internal/grid"
)

// The breakpoint contract: every pipeline the estimator can emit must be one
// the full AutoTune search could also select. These tests pin the contract in
// both directions — the estimator must know every tuner knob (reflection over
// core.Pipeline), and every slate candidate must live inside
// core.EnumeratePipelines' space with knob values drawn from the tuner's own
// ladders. Adding a dimension to the tuner without teaching the estimator
// fails `go test ./...` here.

// TestDecidedKnobsCoverPipeline reflects over core.Pipeline and fails on any
// field DecidedKnobs does not list (a tuner knob the estimator never learned)
// or any listed knob the struct no longer has (a stale entry).
func TestDecidedKnobsCoverPipeline(t *testing.T) {
	decided := map[string]bool{}
	for _, k := range DecidedKnobs() {
		decided[k] = true
	}
	pt := reflect.TypeOf(core.Pipeline{})
	structFields := map[string]bool{}
	for i := 0; i < pt.NumField(); i++ {
		name := pt.Field(i).Name
		structFields[name] = true
		if !decided[name] {
			t.Errorf("core.Pipeline field %q is not in DecidedKnobs() — the tuner gained a dimension the estimator does not decide; teach internal/estimate about it, then add it to the list", name)
		}
	}
	for k := range decided {
		if !structFields[k] {
			t.Errorf("DecidedKnobs() lists %q but core.Pipeline has no such field — stale entry", k)
		}
	}
}

// TestProbeAlphasFromTunerLadder pins the probe tournament's level-alpha
// rungs to the tuner's own ladder: a rung AutoTune would never test must not
// be probeable.
func TestProbeAlphasFromTunerLadder(t *testing.T) {
	ladder := map[float64]bool{}
	for _, a := range core.LevelAlphas {
		ladder[a] = true
	}
	for _, a := range probeAlphas {
		if !ladder[a] {
			t.Errorf("probeAlphas contains %g, which is not in core.LevelAlphas %v", a, core.LevelAlphas)
		}
	}
}

// contractFeatures builds a Features value by hand so the slate test can
// sweep decision branches without manufacturing datasets that trigger them.
func contractFeatures(rank int, lin, cub []float64, cv float64, period int, strength, seasonal float64) *Features {
	f := &Features{
		Rank:    rank,
		Points:  1 << 20,
		Sampled: 1 << 16,
		Lo:      -1, Hi: 1, Mean: 0, Std: 0.5,
		MaskDensity: 1,
		LinBits:     lin,
		CubBits:     cub,
		RoughnessCV: cv,
		Period:      period,
	}
	if period > 0 {
		f.PeriodStrength = strength
		f.SeasonalLinBits = seasonal
		f.SeasonalCubBits = seasonal + 0.1
	}
	return f
}

// structurallyIn reports whether pipe's searchable knobs (everything but the
// post-search LevelAlpha and Template) match some enumerated candidate.
func structurallyIn(pipe core.Pipeline, space []core.Pipeline) bool {
	for _, c := range space {
		if reflect.DeepEqual(pipe.Perm, c.Perm) &&
			reflect.DeepEqual(pipe.Fusion, c.Fusion) &&
			pipe.Fitting == c.Fitting &&
			pipe.Classify == c.Classify &&
			pipe.UseMask == c.UseMask &&
			pipe.Period == c.Period {
			return true
		}
	}
	return false
}

// TestSlateInsideEnumeration runs the heuristic model across the decision
// branches (rough/smooth, periodic, masked, rank 3/4, config restrictions)
// and asserts every nominated candidate is structurally inside
// core.EnumeratePipelines for the same rank/period/mask, with LevelAlpha from
// the tuner's ladder and the template left to the full search.
func TestSlateInsideEnumeration(t *testing.T) {
	cases := []struct {
		name    string
		f       *Features
		hasMask bool
		tc      core.TuneConfig
	}{
		{"rough 3d", contractFeatures(3, []float64{8, 6, 4}, []float64{9, 7, 5}, 2.0, 0, 0, 0), false, core.TuneConfig{}},
		{"smooth periodic 3d", contractFeatures(3, []float64{0.9, 0.5, 0.4}, []float64{1.0, 0.6, 0.5}, 0.3, 12, 20, 0.2), false, core.TuneConfig{}},
		{"weak periodic 3d", contractFeatures(3, []float64{3, 2, 2.5}, []float64{3.1, 2.2, 2.4}, 1.05, 12, 4, 2.5), false, core.TuneConfig{}},
		{"masked rough 2d", contractFeatures(2, []float64{5, 3}, []float64{6, 4}, 1.5, 0, 0, 0), true, core.TuneConfig{}},
		{"periodic rank 4", contractFeatures(4, []float64{1.2, 2.0, 1.5, 1.1}, []float64{1.3, 2.1, 1.6, 1.2}, 0.5, 8, 15, 0.4), false, core.TuneConfig{}},
		{"period disabled", contractFeatures(3, []float64{0.9, 0.5, 0.4}, []float64{1.0, 0.6, 0.5}, 0.3, 12, 20, 0.2), false, core.TuneConfig{DisablePeriod: true}},
		{"classify disabled", contractFeatures(3, []float64{8, 6, 4}, []float64{9, 7, 5}, 2.0, 0, 0, 0), false, core.TuneConfig{DisableClassify: true}},
		{"period forced", contractFeatures(3, []float64{4, 3, 2}, []float64{4.5, 3.5, 2.5}, 0.8, 0, 0, 0), false, core.TuneConfig{FixedPeriod: 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := decide(tc.f, tc.hasMask, tc.tc)
			if len(d.cands) == 0 {
				t.Fatal("empty slate")
			}
			alphas := map[float64]bool{}
			for _, a := range core.LevelAlphas {
				alphas[a] = true
			}
			for _, c := range d.cands {
				// The enumeration space depends on the period the slate
				// actually adopted; pass it through so a candidate with
				// Period=0 is checked against the period-off rows too.
				space := core.EnumeratePipelines(tc.f.Rank, c.pipe.Period, tc.hasMask, tc.tc)
				if !structurallyIn(c.pipe, space) {
					t.Errorf("candidate %q (%s) is outside EnumeratePipelines(rank=%d, period=%d, mask=%v)",
						c.pipe.String(), c.why, tc.f.Rank, c.pipe.Period, tc.hasMask)
				}
				if !alphas[c.pipe.LevelAlpha] {
					t.Errorf("candidate %q: LevelAlpha %g not in the tuner ladder %v",
						c.pipe.String(), c.pipe.LevelAlpha, core.LevelAlphas)
				}
				if c.pipe.Template != nil {
					t.Errorf("candidate %q carries a template sub-pipeline; that knob belongs to the full search", c.pipe.String())
				}
				if len(c.pipe.Perm) != tc.f.Rank {
					t.Errorf("candidate %q: perm rank %d != %d", c.pipe.String(), len(c.pipe.Perm), tc.f.Rank)
				}
				if tc.tc.DisablePeriod && c.pipe.Period != 0 {
					t.Errorf("candidate %q uses a period with DisablePeriod set", c.pipe.String())
				}
				if tc.tc.DisableClassify && c.pipe.Classify {
					t.Errorf("candidate %q classifies with DisableClassify set", c.pipe.String())
				}
				if c.pipe.UseMask != tc.hasMask {
					t.Errorf("candidate %q: UseMask %v, dataset mask %v", c.pipe.String(), c.pipe.UseMask, tc.hasMask)
				}
			}
			// No duplicate probes: the tournament budget is real money.
			seen := map[string]bool{}
			for _, c := range d.cands {
				if seen[c.pipe.String()] {
					t.Errorf("duplicate slate entry %q", c.pipe.String())
				}
				seen[c.pipe.String()] = true
			}
		})
	}
}

// TestSlatePermsAreValid checks every slate perm is a true permutation and
// every fusion is a valid composition of the rank (grid would panic later
// otherwise; failing here names the candidate).
func TestSlatePermsAreValid(t *testing.T) {
	f := contractFeatures(3, []float64{0.9, 0.5, 0.4}, []float64{1.0, 0.6, 0.5}, 0.3, 12, 20, 0.2)
	d := decide(f, false, core.TuneConfig{})
	for _, c := range d.cands {
		used := make([]bool, f.Rank)
		for _, ax := range c.pipe.Perm {
			if ax < 0 || ax >= f.Rank || used[ax] {
				t.Fatalf("candidate %q: invalid perm %v", c.pipe.String(), c.pipe.Perm)
			}
			used[ax] = true
		}
		sum := 0
		for _, g := range c.pipe.Fusion.Groups {
			if g < 1 {
				t.Fatalf("candidate %q: invalid fusion %v", c.pipe.String(), c.pipe.Fusion)
			}
			sum += g
		}
		if sum != f.Rank {
			t.Fatalf("candidate %q: fusion %v does not cover rank %d", c.pipe.String(), c.pipe.Fusion, f.Rank)
		}
		if grid.PermString(c.pipe.Perm) == "" {
			t.Fatalf("candidate %q: unprintable perm", c.pipe.String())
		}
	}
}
