package estimate

import (
	"fmt"
	"math"
	"sort"
	"time"

	"cliz/internal/core"
	"cliz/internal/dataset"
	"cliz/internal/fft"
	"cliz/internal/grid"
	"cliz/internal/mask"
	"cliz/internal/predict"
)

// DefaultMinConfidence is the confidence threshold below which callers
// (TuneOptions.EstimateFirst, clizd's estimate=1 mode) fall back to the full
// AutoTune search.
const DefaultMinConfidence = 0.5

// Config parameterizes an estimate. The embedded TuneConfig carries the
// search-space restrictions (DisablePeriod, DisableClassify, FixedPeriod)
// that the estimator must honor to stay inside the tuner's candidate space.
type Config struct {
	Tune core.TuneConfig
	// Interrupt, when non-nil, is polled between estimation stages, inside
	// the feature passes, and by the probe compressions (threaded into
	// core.Options.Interrupt). A non-nil return cancels the estimate with
	// an error wrapping core.ErrInterrupted. cliz.AutoTune wires
	// TuneOptions.Context.Err here.
	Interrupt func() error
}

// Result is a pipeline estimate: the predicted winner, the expected full-data
// compression ratio, and how much the caller should trust it.
type Result struct {
	// Pipeline is the predicted AutoTune winner.
	Pipeline core.Pipeline
	// Ratio is the expected full-data compression ratio
	// (uncompressed bytes / predicted compressed bytes).
	Ratio float64
	// Confidence in [0, 1]: 1 means every decision was far from a
	// breakpoint and the probe extrapolation was clean; each marginal call
	// subtracts a penalty (recorded in Notes). Callers compare against
	// DefaultMinConfidence to choose estimate vs full search.
	Confidence float64
	// Features are the measurements the decisions were made from.
	Features Features
	// Notes documents each heuristic decision and confidence penalty in
	// order — the transparency contract: a Result must be explainable.
	Notes []string
	// Elapsed is the total estimation wall time.
	Elapsed time.Duration
}

// detectPeriod routes period detection through the tuner's own detector so
// the estimator inherits the tuner's periodicity breakpoint exactly.
func detectPeriod(ds *dataset.Dataset) fft.PeriodResult {
	return core.DetectPeriodFull(ds, 0)
}

// DecidedKnobs lists the core.Pipeline fields the estimator knows how to
// decide. The breakpoint contract test reflects over core.Pipeline and fails
// when a field exists that is not listed here — adding a tuner dimension
// without teaching the estimator must not pass `go test ./...`.
func DecidedKnobs() []string {
	return []string{"Perm", "Fusion", "Fitting", "Classify", "UseMask", "Period", "Template", "LevelAlpha"}
}

// Heuristic breakpoints. Margins express "how far from the breakpoint the
// measurement must be before the call is trusted"; decisions inside a margin
// still pick a side but pay a confidence penalty.
const (
	// fitMarginBits: below this gap between the linear and cubic weighted
	// residual entropies, both fitting arms enter the probe tournament
	// instead of the entropy model deciding alone.
	fitMarginBits = 0.15
	// permTieBits: axis entropies are rounded to this granularity before
	// ordering, so near-tied axes keep their natural order — mirroring the
	// tuner's lexicographic enumeration, where the first candidate wins
	// ties.
	permTieBits = 0.1
	// classifyCV: quantization-bin statistics count as spatially locked
	// (classification pays, paper Fig. 5) above this coefficient of
	// variation of per-line roughness.
	classifyCV = 1.0
	// classifyCVMargin widens the classify breakpoint into a band that
	// costs confidence.
	classifyCVMargin = 0.25
	// alphaBits: below this weighted residual entropy the data is smooth
	// enough that tightening coarse interpolation levels (LevelAlpha 1.25)
	// reliably pays; above it a flat bound wins.
	alphaBits = 8
	// periodStrength*: spectral peak strengths (fft.PeriodResult.Strength)
	// below Weak are marginal periodicity calls.
	periodStrengthWeak = 8
	// seasonalMarginBits: the lag-period residual entropy must undercut the
	// plain time-axis entropy by at least this much before the periodic
	// path is trusted without penalty.
	seasonalMarginBits = 0.15
	// smoothBits: below this weighted residual entropy the data compresses
	// to near nothing per point, so the probe stage needs a larger volume
	// for the byte slope to rise above coding-table noise. Smooth data also
	// compresses fastest, so the bigger probes stay inside the latency
	// budget.
	smoothBits = 0.05
	// tournamentCloseFrac: a tournament runner-up within this byte fraction
	// of the winner is a close call worth a confidence penalty.
	tournamentCloseFrac = 0.02
	// alphaChallengerBits picks the direction of the level-alpha challenger
	// probe: smooth data (below) tries the tight 1.75 rung, rough data tries
	// the flat 1.0 rung.
	alphaChallengerBits = 0.1
	// alphaLadderFrac: the challenger rung must beat the incumbent by this
	// byte fraction on the probe before it displaces the breakpoint call —
	// small probes exaggerate rung differences.
	alphaLadderFrac = 0.10
)

// Confidence penalties, each tied to one marginal decision.
const (
	penFitClose     = 0.10
	penPermTie      = 0.05
	penClassifyBand = 0.15
	penPeriodWeak   = 0.20
	penPeriodClose  = 0.10
	penPeriodForced = 0.10
	penPeriodOn     = 0.05 // spatial entropies were measured pre-deseasonalization
	penNonFinite    = 0.30
	penTinyData     = 0.30
	penSingleProbe  = 0.25
	penProbeSlope   = 0.20
	penProbeClose   = 0.10
)

// tinyPoints is the dataset size below which sampled features are too noisy
// for a confident call.
const tinyPoints = 4096

// candidate is one pipeline in the probe tournament, tagged with the
// heuristic that nominated it.
type candidate struct {
	pipe core.Pipeline
	why  string
}

// decision is the output of the pure heuristic model: a short slate of
// candidate pipelines (cands[0] is the heuristic's primary call; the probe
// tournament ranks the slate by measured bytes), plus the confidence
// accumulated so far.
type decision struct {
	cands    []candidate
	cost     float64 // weighted residual entropy of the chosen fitting arm
	fitClose bool    // the arms were inseparable; the probe stage re-checks the winner
	conf     float64
	notes    []string
}

// axisBits returns the per-axis weighted residual entropy for one fitting
// arm, substituting the deseasonalized time-axis entropy when the periodic
// path is active.
func axisBits(f *Features, fit predict.Fitting, periodic bool) []float64 {
	bits := make([]float64, f.Rank)
	for d := range bits {
		if fit == predict.Cubic {
			bits[d] = f.CubBits[d]
		} else {
			bits[d] = f.LinBits[d]
		}
	}
	if periodic && f.Rank > 0 {
		if fit == predict.Cubic {
			bits[0] = f.SeasonalCubBits
		} else {
			bits[0] = f.SeasonalLinBits
		}
	}
	return bits
}

// levelWeights reflects the interp kernel's population structure: the last
// prediction axis predicts half of all points, the one before a quarter, and
// so on, with the remainder folded into the outermost axis.
func levelWeights(rank int) []float64 {
	w := make([]float64, rank)
	rem := 1.0
	for i := rank - 1; i > 0; i-- {
		share := rem / 2
		w[i] = share
		rem -= share
	}
	w[0] += rem
	return w
}

// fitCost scores a fitting arm: per-axis entropies sorted descending (the
// estimator's base ordering puts the cheapest axis innermost) folded with the
// level weights into one bits-per-point figure.
func fitCost(bits []float64) float64 {
	sorted := append([]float64(nil), bits...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	w := levelWeights(len(sorted))
	cost := 0.0
	for i, b := range sorted {
		cost += w[i] * b
	}
	return cost
}

// permFor orders the dataset axes so the lowest-entropy axis becomes the
// innermost prediction axis. Entropies are rounded to permTieBits before
// ordering and the sort is stable, so near-tied axes keep their natural order
// — matching the tuner's first-wins behavior over lexicographic enumeration.
// The bool reports whether any adjacent pair in the ordering was a tie.
func permFor(bits []float64) ([]int, bool) {
	rank := len(bits)
	rounded := make([]int64, rank)
	for i, b := range bits {
		rounded[i] = int64(math.Round(b / permTieBits))
	}
	perm := make([]int, rank)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool {
		return rounded[perm[a]] > rounded[perm[b]]
	})
	// A tie only matters when the rounding actually changed the order: the
	// exact entropies disagree with the rounded ordering somewhere.
	tie := false
	for i := 1; i < rank; i++ {
		if bits[perm[i-1]] < bits[perm[i]] {
			tie = true
		}
	}
	return perm, tie
}

// identityPerm is the natural axis order.
func identityPerm(rank int) []int {
	perm := make([]int, rank)
	for i := range perm {
		perm[i] = i
	}
	return perm
}

// roughestFirstPerm moves the highest-entropy axis outermost and keeps the
// rest in natural order — a shape the tuner favors when the remaining axes
// predict each other better in their storage order than fully sorted.
func roughestFirstPerm(bits []float64) []int {
	rank := len(bits)
	if rank < 3 {
		return nil // coincides with the sorted or natural order
	}
	r := 0
	for i, b := range bits {
		if b > bits[r] {
			r = i
		}
	}
	perm := make([]int, 0, rank)
	perm = append(perm, r)
	for i := 0; i < rank; i++ {
		if i != r {
			perm = append(perm, i)
		}
	}
	return perm
}

// decide maps features to a candidate slate through the transparent heuristic
// model. Every branch appends a human-readable note; marginal branches also
// charge a confidence penalty. The slate stays inside the tuner's candidate
// space (valid permutations, valid fusion compositions, the tuner's own
// period/classify/alpha breakpoints) — the probe tournament then ranks it by
// the tuner's own metric, compressed bytes on a sample.
func decide(f *Features, hasMask bool, tc core.TuneConfig) decision {
	d := decision{conf: 1}
	note := func(format string, args ...any) {
		d.notes = append(d.notes, fmt.Sprintf(format, args...))
	}
	penalize := func(p float64, format string, args ...any) {
		d.conf -= p
		d.notes = append(d.notes, fmt.Sprintf(format, args...)+fmt.Sprintf(" (confidence -%.2f)", p))
	}

	// Period: the detector already applies the tuner's gates; the remaining
	// call is whether extraction beats plain time-axis prediction, which the
	// lag-period residual entropy answers directly.
	period := 0
	switch {
	case tc.DisablePeriod:
		note("period: disabled by config")
	case tc.FixedPeriod > 0:
		period = tc.FixedPeriod
		penalize(penPeriodForced, "period: forced to %d without spectral evidence", period)
	case f.Period > 0:
		plain := math.Min(f.LinBits[0], f.CubBits[0])
		seasonal := math.Min(f.SeasonalLinBits, f.SeasonalCubBits)
		if seasonal < plain {
			period = f.Period
			note("period: %d adopted (strength %.1f, time-axis bits %.2f -> %.2f deseasonalized)",
				period, f.PeriodStrength, plain, seasonal)
			if f.PeriodStrength < periodStrengthWeak {
				penalize(penPeriodWeak, "period: spectral peak strength %.1f is marginal", f.PeriodStrength)
			}
			if plain-seasonal < seasonalMarginBits {
				penalize(penPeriodClose, "period: deseasonalization gain %.2f bits is marginal", plain-seasonal)
			}
			penalize(penPeriodOn, "period: spatial entropies measured before deseasonalization")
		} else {
			note("period: %d detected but rejected (deseasonalized bits %.2f >= plain %.2f)",
				f.Period, seasonal, plain)
			if plain-seasonal > -seasonalMarginBits {
				penalize(penPeriodClose, "period: rejection margin %.2f bits is marginal", seasonal-plain)
			}
		}
	default:
		note("period: none detected")
	}

	// Fitting: compare the level-weighted residual entropies of the two
	// arms; inside the margin, both arms enter the tournament.
	linBits := axisBits(f, predict.Linear, period > 0)
	cubBits := axisBits(f, predict.Cubic, period > 0)
	linCost, cubCost := fitCost(linBits), fitCost(cubBits)
	fit := predict.Linear
	bits := linBits
	if cubCost < linCost {
		fit, bits = predict.Cubic, cubBits
	}
	d.cost = math.Min(linCost, cubCost)
	gap := math.Abs(linCost - cubCost)
	fitClose := gap < fitMarginBits
	if fitClose && d.cost < smoothBits {
		// Noise-floor rule: when both arms sit at the residual-entropy noise
		// floor, small probes rank them by coding-table granularity and flip
		// unpredictably, while the tuner's large refinement sample settles on
		// the simpler arm. Lock linear instead of probing.
		fit, fitClose = predict.Linear, false
		note("fit: linear (both arms at the noise floor, linear %.2f vs cubic %.2f bits)", linCost, cubCost)
	}
	d.fitClose = fitClose
	if fitClose {
		penalize(penFitClose, "fit: linear %.2f vs cubic %.2f bits within margin — tournament decides", linCost, cubCost)
	} else if d.cost >= smoothBits || gap >= fitMarginBits {
		note("fit: %v (linear %.2f vs cubic %.2f bits)", fit, linCost, cubCost)
	}

	// Permutation: the entropy ordering (cheapest axis innermost — it
	// predicts half the points) is the primary call, but the tuner's winners
	// show the ordering alone misses interactions, so the slate carries the
	// natural order and a roughest-axis-first variant too.
	perm, tie := permFor(bits)
	note("perm: %s (axis bits %s)", grid.PermString(perm), fmtBits(bits))
	if tie {
		penalize(penPermTie, "perm: near-tied axis entropies")
	}

	// Classification pays when bin statistics are spatially locked — high
	// dispersion of per-line roughness (paper Fig. 5).
	classify := false
	switch {
	case tc.DisableClassify:
		note("classify: disabled by config")
	default:
		classify = f.RoughnessCV > classifyCV
		note("classify: %v (roughness CV %.2f vs breakpoint %.2f)", classify, f.RoughnessCV, float64(classifyCV))
		if math.Abs(f.RoughnessCV-classifyCV) < classifyCVMargin {
			penalize(penClassifyBand, "classify: roughness CV %.2f inside the breakpoint band", f.RoughnessCV)
		}
	}

	// LevelAlpha: smooth data (low residual entropy) benefits from
	// tightening coarse levels; drawn from the tuner's own ladder.
	alpha := core.LevelAlphas[0]
	if d.cost < alphaBits {
		alpha = 1.25
	}
	note("alpha: %g (weighted bits %.2f vs breakpoint %d)", alpha, d.cost, alphaBits)

	// Global data-quality penalties.
	if f.Sampled > 0 {
		if frac := float64(f.NonFinite) / float64(f.Sampled); frac > 0.01 {
			penalize(penNonFinite, "data: %.1f%% non-finite samples distort every feature", frac*100)
		}
	}
	if f.Points < tinyPoints {
		penalize(penTinyData, "data: only %d points — sampled features are noisy", f.Points)
	}

	// Candidate slate. Everything below stays inside EnumeratePipelines'
	// space: perms come from the permutation group, fusions are valid
	// compositions, and the shared knobs carry the breakpoint decisions
	// above. Duplicates collapse, so the tournament usually runs 3–5 probes.
	seen := map[string]bool{}
	add := func(p []int, fus grid.Fusion, ft predict.Fitting, why string) {
		pipe := core.Pipeline{
			Perm:       p,
			Fusion:     fus,
			Fitting:    ft,
			Classify:   classify,
			UseMask:    hasMask,
			Period:     period,
			Template:   nil, // the default template sub-pipeline; tuned only by the full search
			LevelAlpha: alpha,
		}
		key := pipe.String()
		if seen[key] {
			return
		}
		seen[key] = true
		d.cands = append(d.cands, candidate{pipe, why})
	}
	noFuse := grid.NoFusion(f.Rank)
	add(perm, noFuse, fit, "entropy-ordered axes")
	// Rank-4 periodic blocks cannot shrink below ~40k points (period-snapped
	// lead, 12-point sides), so the tournament affords fewer entries there;
	// the filler perms are dropped — the fused rotation below is the tuner's
	// recurring rank-4 winner, and the entropy order plus the alternate arm
	// keep the primary calls covered.
	if f.Rank < 4 || period == 0 {
		if rf := roughestFirstPerm(bits); rf != nil {
			add(rf, noFuse, fit, "roughest axis outermost, rest natural")
		}
		add(identityPerm(f.Rank), noFuse, fit, "natural axis order")
	}
	// The alternate fitting arm is NOT slated: the post-tournament fit flip
	// re-tests the winner's structure under the other arm, which settles the
	// same call one probe cheaper than carrying the arm through the slate.
	// Periodic fields often win with the lead axis kept outermost-or-inner
	// and fused: after deseasonalization the time residual is so smooth
	// that gluing it to a spatial axis lengthens interpolation lines for
	// free. The two shapes below are the tuner's recurring winners.
	if period > 0 && f.Rank == 3 {
		rough := 1
		if bits[2] > bits[1] {
			rough = 2
		}
		add([]int{0, rough, 3 - rough}, grid.Fusion{Groups: []int{2, 1}}, fit, "lead fused with roughest spatial axis")
	}
	if period > 0 && f.Rank == 4 {
		add([]int{1, 2, 3, 0}, grid.Fusion{Groups: []int{1, 3}}, fit, "lead rotated innermost, tail fused")
	}
	note("slate: %d candidates for the probe tournament", len(d.cands))
	return d
}

func fmtBits(bits []float64) string {
	s := "["
	for i, b := range bits {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", b)
	}
	return s + "]"
}

// Estimate predicts the AutoTune winner and full-data compression ratio for
// a dataset under an absolute error bound. It runs the cheap feature pass,
// the heuristic model to nominate a short candidate slate, a probe
// tournament that ranks the slate by compressed bytes on a small sample (the
// tuner's own metric), and a second probe that separates fixed blob costs
// from the per-point slope for the ratio extrapolation — tens of
// milliseconds against the tuner's full candidate search.
func Estimate(ds *dataset.Dataset, eb float64, cfg Config) (*Result, error) {
	start := time.Now()
	f, err := extract(ds, eb, cfg.Interrupt)
	if err != nil {
		return nil, err
	}
	if cfg.Interrupt != nil {
		if err := cfg.Interrupt(); err != nil {
			return nil, fmt.Errorf("%w: %w", core.ErrInterrupted, err)
		}
	}
	d := decide(&f, ds.Mask != nil, cfg.Tune)
	pr, err := probeRatio(ds, eb, &d, cfg.Interrupt)
	if err != nil {
		return nil, fmt.Errorf("estimate: probe compression: %w", err)
	}
	conf := d.conf - pr.penalty
	if conf < 0 {
		conf = 0
	} else if conf > 1 {
		conf = 1
	}
	return &Result{
		Pipeline:   pr.pipe,
		Ratio:      pr.ratio,
		Confidence: conf,
		Features:   f,
		Notes:      append(d.notes, pr.notes...),
		Elapsed:    time.Since(start),
	}, nil
}

// probeOutcome carries the tournament winner and ratio extrapolation plus the
// penalties and notes the probe stage accumulated.
type probeOutcome struct {
	pipe    core.Pipeline
	ratio   float64
	penalty float64
	notes   []string
}

// Probe volume budgets (points in the tournament block), keeping probe cost —
// and so total estimator latency — independent of dataset size. Smooth data
// gets a bigger budget (see smoothBits): its byte slope needs more volume to
// rise above coding-table noise, and it compresses fastest, so the larger
// probes stay inside the latency budget.
const (
	tournamentPoints       = 24 << 10
	smoothTournamentPoints = 48 << 10
	// maskedTournamentPoints is the rough-data budget when a mask is present:
	// masked fields compress slowest per point (mask bookkeeping in every
	// kernel) and pay an extra heterogeneity-window probe, so the tournament
	// block shrinks to keep the whole estimate under the latency target.
	maskedTournamentPoints = 18 << 10
	// estLatencyMillis is the soft wall-clock target for a whole estimate;
	// the probe and slope budgets below are sized so the deterministic work
	// stays under it on a single-core baseline.
	estLatencyMillis = 45
	// maxSlopePoints bounds the slope probe even on very fast data.
	maxSlopePoints = 448 << 10
	// minPayloadBytes mirrors the tuner's refinement-sample growth target
	// (tune.go's minPayload): the tuner grows its refinement crop until the
	// winner's blob reaches this size, which decides whether its alpha ladder
	// ever sees full-lead data. The estimator projects that growth from a
	// stripe's payload rate.
	minPayloadBytes = 16384.0
	// minMarginalPayload is the floor on the projected payload of the
	// marginal volume between two nested stripes. Entropy-coding tables
	// quantize blob sizes at roughly ±100 B, so a marginal payload below a
	// few hundred bytes makes the pair rate coding noise rather than a
	// measurement; the stripe widens until the projection clears this.
	minMarginalPayload = 512.0
	// anchorRateBias deflates the anchor's payload rate when projecting the
	// marginal payload above: at extreme compression ratios the anchor's
	// payload is mostly coding-table residue, overstating the marginal rate
	// by roughly this factor, so a widening that looks sufficient at the
	// anchor rate still lands in the noise. Observed ~4x on the bench suite's
	// most compressible field.
	anchorRateBias = 4.0
)

// probeAlphas are the level-alpha rungs the estimator can settle on — the
// breakpoint alphas plus the two challenger rungs — a subset of the tuner's
// core.LevelAlphas (the breakpoint contract test enforces the subset
// relation).
var probeAlphas = []float64{1, 1.25, 1.75}

// snapLead clamps a lead extent to a phase-aligned whole number of periods,
// at least two of them.
func snapLead(want, nT, period int) int {
	if period <= 0 {
		return want
	}
	if want < 2*period {
		want = 2 * period
	}
	want = want / period * period
	if want > nT {
		want = nT / period * period
		if want < period {
			want = nT
		}
	}
	return want
}

// planTournament sizes the tournament block: a seam-free centred block with
// extents proportional to the dataset's — the same shape as the tuner's
// refinement sample, whose candidate ranking the tournament must reproduce
// (in particular the proportional lead truncation: fit-arm ranking flips with
// lead depth on smooth fields, and the tuner decides on truncated leads).
func planTournament(ds *dataset.Dataset, period int, smooth bool) grid.Block {
	dims := ds.Dims
	rank := len(dims)
	budget := tournamentPoints
	if smooth {
		budget = smoothTournamentPoints
	} else if ds.Mask != nil {
		budget = maskedTournamentPoints
	}
	frac := math.Pow(float64(budget)/float64(grid.Volume(dims)), 1/float64(rank))
	size := make([]int, rank)
	for i, d := range dims {
		s := int(frac*float64(d) + 0.5)
		// A minimum side of 12 keeps the cubic predictor's ±3-stride
		// references meaningful — the same floor the tuner's sampler applies.
		if s < 12 {
			s = 12
		}
		if s > d {
			s = d
		}
		size[i] = s
	}
	if period > 0 {
		size[0] = snapLead(size[0], dims[0], period)
	}
	//clizlint:ignore ctxpoll converges in O(log extent) geometric axis-shrink iterations
	for grid.Volume(size) > budget {
		ax := -1
		for a := rank - 1; a >= rank-2 && a > 0; a-- {
			if size[a] > 12 && (ax < 0 || size[a] > size[ax]) {
				ax = a
			}
		}
		if ax < 0 {
			break
		}
		size[ax] = size[ax] * 3 / 4
		if size[ax] < 12 {
			size[ax] = 12
		}
	}
	// High-rank blocks (or period-snapped leads) can still be over budget with
	// every trailing axis at the floor; shrink the lead last — the tournament
	// only ranks candidates, the slope probe restores lead depth afterwards.
	//clizlint:ignore ctxpoll converges in O(log extent) geometric lead-shrink iterations
	for grid.Volume(size) > budget && size[0] > 12 {
		s := size[0] * 3 / 4
		if s < 12 {
			s = 12
		}
		if period > 0 {
			s = snapLead(s, dims[0], period)
		}
		if s >= size[0] {
			break
		}
		size[0] = s
	}
	org := make([]int, rank)
	for i := range org {
		org[i] = (dims[i] - size[i]) / 2
	}
	if period > 0 {
		org[0] -= org[0] % period
	}
	if ds.Mask != nil {
		nudgeWindow(ds.Mask, dims, org, size)
	}
	return grid.Block{Origin: org, Size: size}
}

// planSlope sizes the slope probe as a coverage stripe, independent of the
// tournament block's trailing extents: the lead axis is extended toward its
// full extent first (drift along time or vertical levels is what a truncated
// window cannot extrapolate), then the trailing axes from the SHORTEST up —
// covering a 450-row latitude axis beats widening a 900-column longitude
// window, because meridional structure is the dominant plane heterogeneity in
// climate fields. Axes the cap cannot cover stay at the 12-point floor (or
// get the partial extent the cap still affords). partialAx is the last axis
// in that coverage order left short of its full extent (-1 when the stripe
// covers the whole dataset) — the axis along which a narrower sibling stripe
// measures a marginal rate. Returns ok=false when the cap leaves no
// meaningful volume beyond the tournament block b1.
func planSlope(ds *dataset.Dataset, b1 grid.Block, period, ptsCap int, smooth bool) (b2 grid.Block, partialAx int, ok bool) {
	dims := ds.Dims
	rank := len(dims)
	if ptsCap > maxSlopePoints {
		ptsCap = maxSlopePoints
	}
	size := make([]int, rank)
	for i, d := range dims {
		size[i] = 12
		if size[i] > d {
			size[i] = d
		}
	}
	if period > 0 {
		size[0] = snapLead(size[0], dims[0], period)
	}
	// Axis order: lead, then trailing axes by ascending extent.
	order := []int{0}
	trail := make([]int, 0, rank-1)
	for a := 1; a < rank; a++ {
		trail = append(trail, a)
	}
	sort.Slice(trail, func(i, j int) bool { return dims[trail[i]] < dims[trail[j]] })
	order = append(order, trail...)
	//clizlint:ignore ctxpoll iterates the axis order, at most rank entries
	for _, ax := range order {
		if size[ax] >= dims[ax] {
			continue
		}
		rest := grid.Volume(size) / size[ax]
		want := ptsCap / rest
		if want > dims[ax] {
			want = dims[ax]
		}
		if ax == 0 && period > 0 {
			want = snapLead(want, dims[0], period)
		}
		if want <= size[ax] {
			continue
		}
		size[ax] = want
	}
	partialAx = -1
	for _, ax := range order {
		if size[ax] < dims[ax] {
			partialAx = ax
		}
	}
	org := make([]int, rank)
	for i := range org {
		org[i] = (dims[i] - size[i]) / 2
	}
	// For rough fields the partial axis starts at the edge, not centred:
	// centred windows on fields with a localized feature (a storm core, a
	// jet) sample only the roughest region, while an edge-to-interior window
	// sweeps the gradient once and averages closer to the global rate.
	// Smooth fields stay centred — their nested-pair marginal needs interior
	// fill, and edge columns of smooth fields are atypically constant.
	if partialAx >= 0 && !smooth {
		org[partialAx] = 0
	}
	if period > 0 {
		org[0] -= org[0] % period
	}
	if ds.Mask != nil {
		nudgeWindow(ds.Mask, dims, org, size)
	}
	if grid.Volume(size) < grid.Volume(b1.Size)+grid.Volume(b1.Size)/2 {
		// The marginal volume would be under half of b1 — too little slope
		// signal to be worth a second compression.
		return grid.Block{}, partialAx, false
	}
	return grid.Block{Origin: org, Size: size}, partialAx, true
}

// planLeadExtend sizes the slope probe for masked rough fields: the
// tournament block's lateral footprint kept verbatim, the lead extended as
// deep as the points cap affords — the marginal volume is then the same
// (valid-interior) window observed over more leading planes, so the byte
// slope isolates the along-lead rate from lateral heterogeneity. ok=false
// when the cap does not buy at least half of b1 again.
func planLeadExtend(ds *dataset.Dataset, b1 grid.Block, period, ptsCap int) (grid.Block, bool) {
	dims := ds.Dims
	if ptsCap > maxSlopePoints {
		ptsCap = maxSlopePoints
	}
	trailing := grid.Volume(b1.Size) / b1.Size[0]
	lead := ptsCap / trailing
	if lead > dims[0] {
		lead = dims[0]
	}
	if period > 0 {
		lead = snapLead(lead, dims[0], period)
	}
	if lead < b1.Size[0]+(b1.Size[0]+1)/2 {
		return grid.Block{}, false
	}
	b2 := grid.Block{Origin: append([]int(nil), b1.Origin...), Size: append([]int(nil), b1.Size...)}
	b2.Size[0] = lead
	org := (dims[0] - lead) / 2
	if period > 0 {
		org -= org % period
	}
	if org < 0 {
		org = 0
	}
	b2.Origin[0] = org
	return b2, true
}

// maskPrefix is a 2-D prefix sum over a mask's valid cells, shared by the
// window-placement helpers so each builds it once per call without
// broadcasting the mask over the full volume.
type maskPrefix struct {
	w   int
	pre []int64
}

func newMaskPrefix(m *mask.Map) *maskPrefix {
	w := m.NLon + 1
	pre := make([]int64, (m.NLat+1)*w)
	//clizlint:ignore ctxpoll single prefix-sum pass over one (lat,lon) plane
	for i := 0; i < m.NLat; i++ {
		var row int64
		for j := 0; j < m.NLon; j++ {
			if m.Regions[i*m.NLon+j] != 0 {
				row++
			}
			pre[(i+1)*w+j+1] = pre[i*w+j+1] + row
		}
	}
	return &maskPrefix{w: w, pre: pre}
}

// count returns the number of valid cells in the [latO, latO+latS) ×
// [lonO, lonO+lonS) window.
func (p *maskPrefix) count(latO, lonO, latS, lonS int) int64 {
	w := p.w
	return p.pre[(latO+latS)*w+lonO+lonS] - p.pre[latO*w+lonO+lonS] -
		p.pre[(latO+latS)*w+lonO] + p.pre[latO*w+lonO]
}

// nudgeWindow shifts the trailing-two (lat, lon) window of a probe block onto
// valid data when the centred position is mostly masked — the estimator's
// counterpart of the tuner's nudgeBlockToValid.
func nudgeWindow(m *mask.Map, dims, org, size []int) {
	if m == nil {
		return
	}
	rank := len(dims)
	la, lo := rank-2, rank-1
	latS, lonS := m.NLat, size[lo]
	if la >= 1 {
		latS = size[la]
	}
	pre := newMaskPrefix(m)
	latO := 0
	if la >= 1 {
		latO = org[la]
	}
	lonO := org[lo]
	best := pre.count(latO, lonO, latS, lonS)
	if 2*best >= int64(latS)*int64(lonS) { // already mostly valid
		return
	}
	fracs := []float64{0, 1.0 / 6, 1.0 / 3, 0.5, 2.0 / 3, 5.0 / 6, 1}
	if la >= 1 {
		for _, f := range fracs {
			o := int(f * float64(m.NLat-latS))
			if n := pre.count(o, lonO, latS, lonS); n > best {
				best, latO = n, o
			}
		}
	}
	for _, f := range fracs {
		o := int(f * float64(m.NLon-lonS))
		if n := pre.count(latO, o, latS, lonS); n > best {
			best, lonO = n, o
		}
	}
	if la >= 1 {
		org[la] = latO
	}
	org[lo] = lonO
}

// boundaryPrefix is a prefix sum over the mask's boundary cells: valid cells
// with at least one invalid 4-neighbor. Interpolation lines break at those
// cells (the predictor cannot reference masked neighbors), so they code at a
// higher per-point rate than interior cells — the dominant reason a nudged
// interior probe window understates a masked field's payload.
func newBoundaryPrefix(m *mask.Map) *maskPrefix {
	w := m.NLon + 1
	pre := make([]int64, (m.NLat+1)*w)
	valid := func(i, j int) bool {
		return i >= 0 && i < m.NLat && j >= 0 && j < m.NLon && m.Regions[i*m.NLon+j] != 0
	}
	//clizlint:ignore ctxpoll single prefix-sum pass over one (lat,lon) plane
	for i := 0; i < m.NLat; i++ {
		var row int64
		for j := 0; j < m.NLon; j++ {
			if valid(i, j) && (!valid(i-1, j) || !valid(i+1, j) || !valid(i, j-1) || !valid(i, j+1)) {
				row++
			}
			pre[(i+1)*w+j+1] = pre[i*w+j+1] + row
		}
	}
	return &maskPrefix{w: w, pre: pre}
}

// coastWindow places a window of b1's size over the (lat, lon) region with
// the highest boundary-cell density that still holds enough valid points to
// compress — the opposite selection rule from nudgeWindow, measuring the
// boundary coding rate the interior probe window cannot see. ok=false when no
// position is meaningfully more coastal than b1's own.
func coastWindow(m *mask.Map, dims []int, b1 grid.Block, vp, bp *maskPrefix) (grid.Block, bool) {
	rank := len(dims)
	if m == nil || rank < 3 {
		return grid.Block{}, false
	}
	la, lo := rank-2, rank-1
	latS, lonS := b1.Size[la], b1.Size[lo]
	vol := int64(latS) * int64(lonS)
	var bestB, bestV int64
	bestLat, bestLon := -1, 0
	fracs := []float64{0, 1.0 / 6, 1.0 / 3, 0.5, 2.0 / 3, 5.0 / 6, 1}
	for _, fa := range fracs {
		latO := int(fa * float64(m.NLat-latS))
		for _, fo := range fracs {
			lonO := int(fo * float64(m.NLon-lonS))
			v := vp.count(latO, lonO, latS, lonS)
			if 5*v < vol { // too little valid data to measure a rate
				continue
			}
			b := bp.count(latO, lonO, latS, lonS)
			// Compare boundary density at equal footing: maximize b/v.
			if bestLat < 0 || b*bestV > bestB*v {
				bestB, bestV, bestLat, bestLon = b, v, latO, lonO
			}
		}
	}
	if bestLat < 0 || bestV == 0 {
		return grid.Block{}, false
	}
	wb := grid.Block{Origin: append([]int(nil), b1.Origin...), Size: append([]int(nil), b1.Size...)}
	wb.Origin[la], wb.Origin[lo] = bestLat, bestLon
	return wb, true
}

// probeDataset materializes a probe block as a standalone dataset.
func probeDataset(ds *dataset.Dataset, b grid.Block) *dataset.Dataset {
	pd := &dataset.Dataset{
		Name:      ds.Name + "/probe",
		Data:      grid.Extract(ds.Data, ds.Dims, b),
		Dims:      append([]int(nil), b.Size...),
		Lead:      ds.Lead,
		Periodic:  ds.Periodic,
		FillValue: ds.FillValue,
	}
	if ds.Mask != nil {
		pd.Mask = subMask(ds.Mask, ds.Dims, b)
	}
	return pd
}

// subMask extracts the mask window covering a probe block's trailing-two
// (lat, lon) extents; the full mask is returned untouched when the window
// covers it.
func subMask(m *mask.Map, dims []int, b grid.Block) *mask.Map {
	rank := len(dims)
	latO, latS := 0, 1
	lonO, lonS := b.Origin[rank-1], b.Size[rank-1]
	if rank >= 2 {
		latO, latS = b.Origin[rank-2], b.Size[rank-2]
	}
	if latO == 0 && lonO == 0 && latS == m.NLat && lonS == m.NLon {
		return m
	}
	regions := make([]int32, latS*lonS)
	for la := 0; la < latS; la++ {
		src := (latO+la)*m.NLon + lonO
		copy(regions[la*lonS:(la+1)*lonS], m.Regions[src:src+lonS])
	}
	return mask.New(latS, lonS, regions)
}

// probePipe compresses a probe dataset under a candidate pipeline. A probe
// can be too short for the periodic path even after snapping; the stage is
// dropped rather than failing the estimate.
func probePipe(p *dataset.Dataset, eb float64, pipe core.Pipeline, interrupt func() error) ([]byte, error) {
	if pipe.Period > 0 && p.Dims[0] < 2*pipe.Period {
		pipe.Period = 0
		pipe.Template = nil
	}
	return core.Compress(p, eb, pipe, core.Options{Interrupt: interrupt})
}

// probeRatio runs the probe tournament and the ratio extrapolation, settling
// the final pipeline and predicted ratio.
func probeRatio(ds *dataset.Dataset, eb float64, d *decision, interrupt func() error) (probeOutcome, error) {
	var out probeOutcome
	note := func(format string, args ...any) {
		out.notes = append(out.notes, fmt.Sprintf(format, args...))
	}
	b1 := planTournament(ds, d.cands[0].pipe.Period, d.cost < smoothBits)
	p1 := probeDataset(ds, b1)

	// Tournament: every candidate compresses the same seam-free sample;
	// fewest bytes wins — the same ranking metric the tuner applies to its
	// own refinement sample. Later candidates must win strictly, mirroring
	// the tuner's first-candidate-wins tie behavior.
	best := -1
	var blob1 []byte
	sizes := make([]int, len(d.cands))
	for i, c := range d.cands {
		blob, err := probePipe(p1, eb, c.pipe, interrupt)
		if err != nil {
			return out, err
		}
		sizes[i] = len(blob)
		note("tournament: %s -> %d bytes (%s)", c.pipe.String(), len(blob), c.why)
		if best < 0 || len(blob) < len(blob1) {
			best = i
			blob1 = blob
		}
	}
	// Near-tie resolution: the tuner enumerates permutations in lexicographic
	// order and keeps the first of equals, so a photo-finish between
	// perm-only variants goes to the lexicographically smallest perm.
	closeTie := false
	//clizlint:ignore ctxpoll iterates the fixed candidate slate, a handful of pipelines
	for i, c := range d.cands {
		if i == best {
			continue
		}
		if float64(sizes[i]-sizes[best]) < tournamentCloseFrac*float64(sizes[best]) {
			closeTie = true
			if c.pipe.Fitting == d.cands[best].pipe.Fitting &&
				c.pipe.Fusion.String() == d.cands[best].pipe.Fusion.String() &&
				grid.PermString(c.pipe.Perm) < grid.PermString(d.cands[best].pipe.Perm) {
				note("tournament: %s within %.0f%% of %s — taking the earlier-enumerated perm",
					c.pipe.String(), 100*tournamentCloseFrac, d.cands[best].pipe.String())
				best = i
			}
		}
	}
	if sizes[best] != len(blob1) {
		// The tie-break moved the winner; its blob was not retained, so
		// recompress it (cheap: one more b1-sized pass).
		blob, err := probePipe(p1, eb, d.cands[best].pipe, interrupt)
		if err != nil {
			return out, err
		}
		blob1 = blob
	}
	out.pipe = d.cands[best].pipe
	if len(d.cands) > 1 {
		note("tournament: winner %s (%s)", out.pipe.String(), d.cands[best].why)
		if closeTie {
			out.penalty += penProbeClose
			note("tournament: runner-up within %.0f%% of the winner (confidence -%.2f)",
				100*tournamentCloseFrac, penProbeClose)
		}
	}
	// The entropy model could not separate the fitting arms; settle the call
	// on the winning structure directly.
	if d.fitClose {
		flip := out.pipe
		if flip.Fitting == predict.Linear {
			flip.Fitting = predict.Cubic
		} else {
			flip.Fitting = predict.Linear
		}
		dup := false
		//clizlint:ignore ctxpoll iterates the fixed candidate slate, a handful of pipelines
		for _, c := range d.cands {
			if c.pipe.String() == flip.String() {
				dup = true
				break
			}
		}
		if !dup {
			if blob, err := probePipe(p1, eb, flip, interrupt); err == nil {
				note("fit flip: %v -> %d bytes (winner %d)", flip.Fitting, len(blob), len(blob1))
				if len(blob) < len(blob1) {
					out.pipe = flip
					blob1 = blob
				}
			}
		}
	}
	// Level-alpha check on the settled structure — the tuner runs its full
	// ladder last, on the refinement sample. A small probe exaggerates rung
	// differences (its interpolation pyramid is shallower, so coarse-level
	// tightening looks better than it extrapolates), so only one challenger
	// rung runs — up toward 1.75 for smooth data, down toward 1 for rough —
	// and it must win decisively to displace the breakpoint call. Smooth
	// fields defer the check into the slope stage: which alpha the tuner's
	// ladder lands on depends on its refinement-sample geometry, which only
	// the stripe probes can project (see the minPayload note there).
	smooth := d.cost < smoothBits
	if challenger := probeAlphas[0]; !smooth {
		if d.cost < alphaChallengerBits {
			challenger = probeAlphas[len(probeAlphas)-1]
		}
		if challenger != out.pipe.LevelAlpha {
			p := out.pipe
			p.LevelAlpha = challenger
			if blob, err := probePipe(p1, eb, p, interrupt); err == nil {
				note("alpha: challenger %.2f -> %d bytes (incumbent %.2f -> %d)",
					challenger, len(blob), out.pipe.LevelAlpha, len(blob1))
				if float64(len(blob)) < (1-alphaLadderFrac)*float64(len(blob1)) {
					out.pipe = p
					blob1 = blob
				}
			}
		}
		note("alpha: settled on %.2f", out.pipe.LevelAlpha)
	}

	fullValid := float64(ds.ValidPoints())
	fullBytesUncomp := float64(ds.Points()) * 4
	valid1 := float64(p1.ValidPoints())
	if valid1 <= 0 {
		return out, fmt.Errorf("probe block holds no valid points")
	}
	payload1, _ := payloadConst(blob1)
	pp1 := float64(perPlaneBytes(blob1))

	// Slope-probe budget: a fixed multiple of the tournament volume per data
	// class. An earlier design sized this from a throughput gauge and the
	// wall-clock budget left, but every downstream decision — nested-anchor
	// width, deferred alpha, the marginal rate itself — is sensitive to the
	// stripe geometry, and a budget that moves with timing noise made whole
	// estimates nondeterministic run to run (tens of percent of ratio error
	// flipping on scheduler jitter). The tournament volumes are already sized
	// per class so a fixed multiple stays inside the latency target; smooth
	// fields get the larger multiple because their accuracy lives and dies by
	// stripe width (the marginal payload between the nested stripes must
	// clear coding-granularity noise) and they compress fastest.
	maskedRough := ds.Mask != nil && !smooth
	mult := 6
	if smooth {
		mult = 7
	} else if ds.Mask == nil {
		// Unmasked rough fields get a slightly smaller budget: their stripe
		// is anchored at the grid edge (see planSlope) and widens toward the
		// rough interior as it grows, so past a point more volume overweights
		// the core region and inflates the measured rate instead of refining
		// it.
		mult = 5
	}
	ptsCap := grid.Volume(b1.Size) * mult

	// Slope-probe geometry. Masked rough fields extend the tournament block
	// along the lead axis only, keeping its exact lateral footprint: the
	// windows were nudged onto valid interior, and growing them laterally
	// would fold coastline effects into the marginal rate unpredictably (a
	// mirrored window measures lateral heterogeneity separately below).
	// Everything else gets the coverage stripe.
	var b2 grid.Block
	var ok bool
	partialAx := -1
	if maskedRough {
		b2, ok = planLeadExtend(ds, b1, out.pipe.Period, ptsCap)
	} else {
		b2, partialAx, ok = planSlope(ds, b1, out.pipe.Period, ptsCap, smooth)
	}
	if !ok {
		if int(valid1) == ds.ValidPoints() && grid.Volume(b1.Size) == ds.Points() {
			// The probe was the whole dataset: the "estimate" is exact.
			out.ratio = fullBytesUncomp / math.Max(float64(len(blob1)), 16)
			note("probe: block covered the full dataset — measured, not extrapolated")
			return out, nil
		}
		planeScale := planeScaleFor(ds, valid1, b1.Size[0])
		pred := float64(len(blob1)) - payload1 - pp1 + pp1*planeScale + (payload1/valid1)*fullValid
		out.ratio = fullBytesUncomp / math.Max(pred, 16)
		out.penalty += penSingleProbe
		note("probe: single %v block (%d bytes) — no room in the point budget for a slope probe (confidence -%.2f)",
			b1.Size, len(blob1), penSingleProbe)
		return out, nil
	}

	// Pair anchor: the narrow end of the marginal-rate measurement. Rough
	// fields anchor on the tournament block for free. Smooth fields anchor on
	// a narrower sibling of the slope stripe itself — the marginal volume
	// between two nested stripes sharing full coverage axes is homogeneous
	// fill, which is exactly the component a smooth field's tail is made of;
	// anchoring on the small tournament window would fold its unamortized
	// coding tables into the rate. Costs one extra stripe compression, so the
	// stripe budget above was sized with room to spare on smooth data.
	anchorName := "tournament block"
	anchorBlock := b1
	payloadA, validA := payload1, valid1
	if smooth && partialAx >= 0 && b2.Size[partialAx] >= 24 {
		// The slope-probe cap already reserved budget for the anchor (the
		// smooth-path deduction above), so the stripe keeps its full width.
		s1 := grid.Block{Origin: append([]int(nil), b2.Origin...), Size: append([]int(nil), b2.Size...)}
		s1.Size[partialAx] = b2.Size[partialAx] * 2 / 5
		if s1.Size[partialAx] < 10 {
			s1.Size[partialAx] = 10
		}
		s1.Origin[partialAx] = b2.Origin[partialAx] + (b2.Size[partialAx]-s1.Size[partialAx])/2
		ps1 := probeDataset(ds, s1)
		if blobA, err := probePipe(ps1, eb, out.pipe, interrupt); err == nil {
			payloadA, _ = payloadConst(blobA)
			validA = float64(ps1.ValidPoints())
			anchorName, anchorBlock = "nested stripe", s1
			// Deferred level-alpha call for smooth data. The tuner's ladder
			// runs on its refinement sample, which it grows until the winner's
			// blob reaches minPayload — at extreme ratios growth hits the whole
			// dataset, and the ladder sees full-lead data (which prefers the
			// breakpoint alpha, like this stripe does); at moderate ratios
			// growth stops early, and the ladder sees a lead-truncated crop
			// (which exaggerates coarse-level tightening, like the tournament
			// block does). Project the tuner's growth from the stripe's payload
			// rate and imitate whichever geometry it would measure on.
			if rate := payloadA / validA; rate > 0 && minPayloadBytes/rate < 0.5*fullValid {
				p := out.pipe
				p.LevelAlpha = probeAlphas[len(probeAlphas)-1]
				if p.LevelAlpha != out.pipe.LevelAlpha {
					if blob, err := probePipe(p1, eb, p, interrupt); err == nil {
						note("alpha: truncated-lead refinement projected — challenger %.2f -> %d bytes on the tournament block (incumbent %.2f -> %d)",
							p.LevelAlpha, len(blob), out.pipe.LevelAlpha, len(blob1))
						if float64(len(blob)) < (1-alphaLadderFrac)*float64(len(blob1)) {
							out.pipe = p
							blob1 = blob
							// The pair anchor must carry the final alpha; the
							// challenger blob is the tournament block at that
							// alpha, so anchor there instead.
							payloadA, _ = payloadConst(blob)
							validA = valid1
							anchorName, anchorBlock = "tournament block", b1
						}
					}
				}
			} else {
				note("alpha: projected refinement sample reaches full lead — keeping %.2f", out.pipe.LevelAlpha)
			}
			note("alpha: settled on %.2f", out.pipe.LevelAlpha)
		}
	}
	// Rate-aware stripe escalation. At extreme compression ratios the
	// marginal volume between the nested stripes compresses into the
	// coding-table granularity (~±100 B) and the pair rate degenerates into
	// noise. Project the marginal payload from the anchor's own rate and
	// widen the outer stripe along the partial axis until the projection
	// clears minMarginalPayload, within the slope-probe point cap.
	if anchorName == "nested stripe" {
		if rateA := payloadA / validA; rateA > 0 {
			perWidth := float64(grid.Volume(b2.Size)) / float64(b2.Size[partialAx])
			marginal := float64(grid.Volume(b2.Size) - grid.Volume(anchorBlock.Size))
			if rateA*marginal < minMarginalPayload {
				want := anchorBlock.Size[partialAx] + int(math.Ceil(anchorRateBias*minMarginalPayload/(rateA*perWidth)))
				if maxW := int(float64(maxSlopePoints) / perWidth); want > maxW {
					want = maxW
				}
				if want > ds.Dims[partialAx] {
					want = ds.Dims[partialAx]
				}
				if want > b2.Size[partialAx] {
					b2.Size[partialAx] = want
					if b2.Origin[partialAx]+want > ds.Dims[partialAx] {
						b2.Origin[partialAx] = ds.Dims[partialAx] - want
					}
					note("probe: stripe widened to %v — projected marginal payload below %.0f B at anchor rate %.5f",
						b2.Size, minMarginalPayload, rateA)
				}
			}
		}
	}
	// Lateral-heterogeneity factor for masked rough fields: the nudged probe
	// window sits in smooth valid interior by construction, so its payload
	// rate understates the field average. A mirrored window (point-reflected
	// laterally, then nudged itself) samples a second region; the ratio of
	// the two-window mean rate to the probe window's rate rescales the
	// per-point part of the prediction. Clamped — two windows only bound the
	// dispersion, they do not measure it precisely.
	// Boundary-cost correction for masked rough fields. The probe window was
	// nudged onto mostly-valid interior, but interpolation lines break at mask
	// boundaries, so boundary-adjacent cells code at a higher rate the window
	// never sees. Model the per-valid-point rate as linear in the window's
	// boundary-cell fraction, r = a + c·f: the interior window gives one
	// (f, r) point, a deliberately coastal window the second; solving for c
	// and evaluating at the GLOBAL boundary fraction rescales the per-point
	// part of the prediction. Clamped — two windows fit a line, not a law.
	hetero := 1.0
	ppSlope := -1.0 // per-plane-bytes slope vs planar valid count (<0: unmeasured)
	if maskedRough {
		rank := len(ds.Dims)
		la, lo := rank-2, rank-1
		vp := newMaskPrefix(ds.Mask)
		bp := newBoundaryPrefix(ds.Mask)
		frac := func(b grid.Block) float64 {
			v := vp.count(b.Origin[la], b.Origin[lo], b.Size[la], b.Size[lo])
			if v == 0 {
				return 0
			}
			return float64(bp.count(b.Origin[la], b.Origin[lo], b.Size[la], b.Size[lo])) / float64(v)
		}
		fGlobal := float64(bp.count(0, 0, ds.Mask.NLat, ds.Mask.NLon)) /
			math.Max(float64(vp.count(0, 0, ds.Mask.NLat, ds.Mask.NLon)), 1)
		f1 := frac(b1)
		if wb, okW := coastWindow(ds.Mask, ds.Dims, b1, vp, bp); okW && frac(wb)-f1 > 0.02 {
			pw := probeDataset(ds, wb)
			if vw := float64(pw.ValidPoints()); vw > 0 {
				if blobW, err := probePipe(pw, eb, out.pipe, interrupt); err == nil {
					payloadW, _ := payloadConst(blobW)
					r1 := payload1 / valid1
					rc := payloadW / vw
					fc := frac(wb)
					c := (rc - r1) / (fc - f1)
					if c < 0 {
						c = 0
					}
					hetero = (r1 + c*(fGlobal-f1)) / r1
					if hetero < 0.7 {
						hetero = 0.7
					} else if hetero > 2 {
						hetero = 2
					}
					note("probe: coast window %v at %v rate %.5f (boundary frac %.3f) vs interior %.5f (%.3f), global frac %.3f — boundary factor %.2f",
						wb.Size, wb.Origin, rc, fc, r1, f1, fGlobal, hetero)
					// The same window pair measures how the per-plane costs
					// (mask bitmap, periodic template) scale with planar valid
					// count: they grow linearly but with a fixed intercept, so
					// pure proportional scaling overshoots. The pair slope is
					// only trusted when the boundary factor came out flat —
					// a costly coastline means the coast window's template
					// content differs from the interior's, and the slope then
					// measures content, not geometry.
					if hetero <= 1.1 {
						ppW := float64(perPlaneBytes(blobW))
						v1p := valid1 / float64(b1.Size[0])
						vWp := vw / float64(wb.Size[0])
						if math.Abs(v1p-vWp) > 0.1*v1p {
							if m := (pp1 - ppW) / (v1p - vWp); m > 0 {
								ppSlope = m
							}
						}
					}
				}
			}
		} else {
			note("probe: no window more coastal than the probe's (boundary frac %.3f vs global %.3f) — no correction", f1, fGlobal)
		}
	}
	p2 := probeDataset(ds, b2)
	blob2, err := probePipe(p2, eb, out.pipe, interrupt)
	if err != nil {
		return out, err
	}
	valid2 := float64(p2.ValidPoints())
	if valid2 <= validA {
		return out, fmt.Errorf("probe blocks hold no distinct valid volume")
	}
	// Split each blob into per-point payload (entropy-coded bins and
	// literals), per-plane sections (mask bitmap, periodic template), and the
	// constant rest (headers, coding tables) via Inspect, then extrapolate
	// each part separately with two estimators of opposite bias:
	//
	//   single: the big probe's own payload rate. Biased high — the probe
	//   pays coding-table granularity the full field amortizes away.
	//
	//   pair: the marginal payload rate between the anchor and the stripe.
	//   Biased low — the marginal volume is adjacent to already-covered
	//   territory and misses heterogeneity beyond both.
	//
	// The geometric mean (log-space midpoint) of the two predictions is the
	// estimate.
	payload2, konst2 := payloadConst(blob2)
	pp2 := float64(perPlaneBytes(blob2))
	planeScale := planeScaleFor(ds, valid2, b2.Size[0])
	// Per-plane costs at full scale: proportional by default; when the coast
	// window measured the linear slope, use intercept+slope instead, bounded
	// by the stripe's own cost below and the proportional estimate above.
	ppFull := pp2 * planeScale
	if ppSlope >= 0 {
		lin := pp2 + ppSlope*(fullValid/float64(ds.Dims[0])-valid2/float64(b2.Size[0]))
		if lin < pp2 {
			lin = pp2
		}
		if lin < ppFull {
			note("probe: per-plane costs %.0f B by linear model (slope %.2f B/valid cell) vs %.0f proportional",
				lin, ppSlope, ppFull)
			ppFull = lin
		}
	}
	predSingle := konst2 + ppFull + (payload2/valid2)*fullValid*hetero
	pred := predSingle
	rateM := (payload2 - payloadA) / (valid2 - validA)
	if rateM > 0 {
		fixed := payloadA - rateM*validA
		if fixed < 0 {
			fixed = 0
		}
		predPair := konst2 + fixed + ppFull + rateM*fullValid*hetero
		switch {
		case anchorName == "nested stripe":
			// Two nested stripes share their full-coverage axes, so the
			// single estimator's upward bias (unamortized coding tables) has
			// nothing to correct on the pair side: the marginal rate already
			// skips the tables. Take the pair alone.
			pred = predPair
		case maskedRough:
			// The masked-periodic pair extends the tournament block along
			// the lead axis, and the marginal periods ride the template the
			// whole window built — they code well below the field-average
			// rate, so the pair is biased low with nothing to average
			// against. The single estimator's table bias is small at this
			// probe's payload size; take it alone.
		default:
			pred = math.Sqrt(predSingle * predPair)
		}
		note("probe: %s %v -> stripe %v (%d bytes): single %.0f B, pair %.0f B (rate %.5f), predicted %.0f B",
			anchorName, anchorBlock.Size, b2.Size, len(blob2), predSingle, predPair, rateM, pred)
	} else if anchorName == "nested stripe" {
		// The marginal volume between the nested stripes compressed into the
		// byte-noise floor even after escalation — the field is so smooth
		// that payload barely grows with volume. The full-field payload then
		// sits somewhere between "no growth at all" (the stripe's payload is
		// already the whole story) and the single estimator's proportional
		// growth; with no measurement to pick a side, take the log-midpoint
		// of the two bounds.
		lo := konst2 + ppFull + payload2
		pred = math.Sqrt(lo * predSingle)
		out.penalty += penProbeSlope
		note("probe: marginal payload in the noise floor (%.0f -> %.0f B) — log-midpoint of flat %.0f and proportional %.0f, predicted %.0f B (confidence -%.2f)",
			payloadA, payload2, lo, predSingle, pred, penProbeSlope)
	} else {
		// The marginal volume compressed into the byte-noise floor; the
		// single-probe rate alone overestimates slightly.
		out.penalty += penProbeSlope
		note("probe: non-positive marginal rate (%d -> %d bytes) — single-probe fallback, predicted %.0f B (confidence -%.2f)",
			len(blob1), len(blob2), pred, penProbeSlope)
	}
	out.ratio = fullBytesUncomp / math.Max(pred, 16)
	return out, nil
}

// planeScaleFor rescales a probe's per-plane bytes to the full horizontal
// plane: the ratio of valid points per lead plane, full dataset over probe.
func planeScaleFor(ds *dataset.Dataset, valid float64, lead int) float64 {
	if probePlane := valid / float64(lead); probePlane > 0 {
		return (float64(ds.ValidPoints()) / float64(ds.Dims[0])) / probePlane
	}
	return 1
}

// payloadConst splits a blob's sections into the per-point payload (bins and
// literals) and the constant overhead (headers, classification metadata). A
// periodic blob's template child is excluded entirely — perPlaneBytes already
// accounts for it as a per-plane cost.
func payloadConst(blob []byte) (payload, konst float64) {
	info, err := core.Inspect(blob)
	if err != nil {
		return 0, 0
	}
	var walk func(bi *core.BlobInfo, skipTemplate bool)
	walk = func(bi *core.BlobInfo, skipTemplate bool) {
		for _, s := range bi.Sections {
			switch s.Name {
			case "bins", "bins-A", "bins-B", "literals":
				payload += float64(s.Bytes)
			case "header", "class-meta":
				konst += float64(s.Bytes)
			}
		}
		//clizlint:ignore ctxpoll walks the blob section tree, a handful of nodes
		for i, c := range bi.Children {
			if skipTemplate && bi.Kind == "periodic" && i == 0 {
				continue
			}
			walk(c, skipTemplate)
		}
	}
	walk(info, true)
	return payload, konst
}

// perPlaneBytes inspects a probe blob for the fixed costs that scale with
// the horizontal plane rather than staying constant: the mask bitmap
// section(s) and, for periodic blobs, the whole template child.
func perPlaneBytes(blob []byte) int {
	info, err := core.Inspect(blob)
	if err != nil {
		return 0
	}
	if info.Kind == "periodic" && len(info.Children) == 2 {
		return info.Children[0].Total + sectionBytes(info.Children[1], "mask")
	}
	return sectionBytes(info, "mask")
}

// sectionBytes sums the named section's bytes over a blob info tree.
func sectionBytes(info *core.BlobInfo, name string) int {
	n := 0
	for _, s := range info.Sections {
		if s.Name == name {
			n += s.Bytes
		}
	}
	//clizlint:ignore ctxpoll walks the blob section tree, a handful of nodes
	for _, c := range info.Children {
		n += sectionBytes(c, name)
	}
	return n
}
