package estimate

import (
	"math"
	"strings"
	"testing"

	"cliz/internal/core"
	"cliz/internal/datagen"
	"cliz/internal/dataset"
)

// estBound resolves the suite's relative bound against a dataset's value
// range, mirroring how the public API hands the estimator an absolute bound.
func estBound(t *testing.T, ds *dataset.Dataset, rel float64) float64 {
	t.Helper()
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range ds.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			continue
		}
		lo, hi = math.Min(lo, f), math.Max(hi, f)
	}
	if !(hi > lo) {
		t.Fatal("degenerate value range")
	}
	return rel * (hi - lo)
}

func genField(t *testing.T, name string, scale float64) *dataset.Dataset {
	t.Helper()
	ds, err := datagen.ByName(name, scale)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestEstimateShape checks the basic Result contract on a real field: a
// well-formed pipeline, a sane ratio, clamped confidence, and non-empty
// notes (the transparency contract — every decision must be explainable).
func TestEstimateShape(t *testing.T) {
	ds := genField(t, "SSH", 0.1)
	res, err := Estimate(ds, estBound(t, ds, 1e-2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio <= 1 {
		t.Errorf("predicted ratio %.2f, want > 1 for a compressible field", res.Ratio)
	}
	if res.Confidence < 0 || res.Confidence > 1 {
		t.Errorf("confidence %.2f outside [0, 1]", res.Confidence)
	}
	if len(res.Notes) == 0 {
		t.Error("no notes: the estimate is not explainable")
	}
	if len(res.Pipeline.Perm) != len(ds.Dims) {
		t.Errorf("pipeline perm rank %d != dataset rank %d", len(res.Pipeline.Perm), len(ds.Dims))
	}
	if res.Elapsed <= 0 {
		t.Error("zero elapsed time")
	}
	if res.Features.Points != len(ds.Data) {
		t.Errorf("features saw %d points, dataset has %d", res.Features.Points, len(ds.Data))
	}
}

// TestEstimateDeterministic runs the estimator twice on identical input and
// requires bit-identical output — the probes are sized by fixed budgets, not
// wall-clock, precisely so two runs cannot disagree.
func TestEstimateDeterministic(t *testing.T) {
	for _, name := range []string{"SSH", "CESM-T"} {
		ds := genField(t, name, 0.1)
		eb := estBound(t, ds, 1e-2)
		a, err := Estimate(ds, eb, Config{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Estimate(ds, eb, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Pipeline.String() != b.Pipeline.String() {
			t.Errorf("%s: pipeline flipped between runs: %q vs %q", name, a.Pipeline.String(), b.Pipeline.String())
		}
		if a.Ratio != b.Ratio {
			t.Errorf("%s: ratio flipped between runs: %g vs %g", name, a.Ratio, b.Ratio)
		}
		if a.Confidence != b.Confidence {
			t.Errorf("%s: confidence flipped between runs: %g vs %g", name, a.Confidence, b.Confidence)
		}
	}
}

// TestEstimateHonorsTuneConfig: the search-space restrictions AutoTune
// honors must restrict the estimate identically.
func TestEstimateHonorsTuneConfig(t *testing.T) {
	ds := genField(t, "CESM-T", 0.1) // strongly periodic
	eb := estBound(t, ds, 1e-2)

	res, err := Estimate(ds, eb, Config{Tune: core.TuneConfig{DisablePeriod: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.Period != 0 {
		t.Errorf("DisablePeriod: pipeline still periodic (period %d)", res.Pipeline.Period)
	}

	res, err = Estimate(ds, eb, Config{Tune: core.TuneConfig{DisableClassify: true}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pipeline.Classify {
		t.Error("DisableClassify: pipeline still classifies")
	}
}

// TestEstimateMaskPropagates: a masked dataset must estimate a masked
// pipeline (UseMask is the user's call, never the estimator's to undo).
func TestEstimateMaskPropagates(t *testing.T) {
	ds := genField(t, "SSH", 0.1)
	if ds.Mask == nil {
		t.Fatal("SSH field lost its land mask")
	}
	res, err := Estimate(ds, estBound(t, ds, 1e-2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pipeline.UseMask {
		t.Error("masked dataset estimated an unmasked pipeline")
	}
}

// TestEstimateTinyDataLowConfidence: a dataset under the tinyPoints floor
// must pay the penalty, pushing the result toward the full-search fallback.
func TestEstimateTinyDataLowConfidence(t *testing.T) {
	dims := []int{8, 16, 16} // 2048 < tinyPoints
	data := make([]float32, 8*16*16)
	for i := range data {
		data[i] = float32(math.Sin(float64(i) * 0.01))
	}
	ds := &dataset.Dataset{Name: "tiny", Data: data, Dims: dims}
	res, err := Estimate(ds, 1e-3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence > 1-penTinyData {
		t.Errorf("confidence %.2f on %d points; want at least the %.2f tiny-data penalty applied",
			res.Confidence, len(data), penTinyData)
	}
	found := false
	for _, n := range res.Notes {
		if strings.Contains(n, "points") && strings.Contains(n, "noisy") {
			found = true
		}
	}
	if !found {
		t.Errorf("tiny-data penalty not explained in notes: %v", res.Notes)
	}
}

// TestEstimateNonFiniteSurvives: NaN-bearing data must degrade confidence,
// not crash the feature pass or the probes.
func TestEstimateNonFiniteSurvives(t *testing.T) {
	ds := genField(t, "Tsfc", 0.1)
	data := append([]float32(nil), ds.Data...)
	for i := 0; i < len(data); i += 37 { // ~2.7% NaN
		data[i] = float32(math.NaN())
	}
	nds := *ds
	nds.Data = data
	res, err := Estimate(&nds, estBound(t, ds, 1e-2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Estimate(ds, estBound(t, ds, 1e-2), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Confidence >= clean.Confidence {
		t.Errorf("NaN-ridden confidence %.2f not below clean %.2f", res.Confidence, clean.Confidence)
	}
}
