// Package estimate predicts the winning compression pipeline and the
// expected compression ratio from cheap, measurable data characteristics —
// without running the full sampling tuner. AutoTune evaluates O(100)
// candidate compressions per dataset family; this package answers the same
// question in tens of milliseconds from a strided feature pass plus at most
// three tiny probe compressions, with a confidence score that routes
// low-confidence fields back to the full tuner.
//
// The critical rule (see DESIGN.md §12): every decision breakpoint here must
// track the tuner's breakpoints. The estimator draws its period from
// core.DetectPeriodFull (the tuner's own detector), its LevelAlpha from
// core.LevelAlphas (the tuner's own ladder), and emits only pipelines the
// tuner's EnumeratePipelines would itself consider — enforced by
// contract_test.go, which fails `go test ./...` when a tuner knob is added
// without teaching the estimator.
package estimate

import (
	"math"

	"cliz/internal/dataset"
	"cliz/internal/grid"
)

// sampleBudget bounds the points touched by each feature pass, keeping
// extraction cost independent of dataset size.
const sampleBudget = 1 << 16

// Features are the cheap measurements the heuristic model consumes. All of
// them come from strided samples, one FFT-based period probe, and per-axis
// line walks — no candidate compression is needed to fill this struct.
type Features struct {
	// Rank and Points describe the grid.
	Rank   int
	Points int
	// Sampled counts the points the global statistics pass touched.
	Sampled int
	// Lo and Hi are the finite value range over sampled valid points.
	Lo, Hi float64
	// Mean and Std are the sampled moments over finite valid points.
	Mean, Std float64
	// NonFinite counts NaN/±Inf values found at valid points — data the
	// statistics (and the codec's bound resolution) cannot trust.
	NonFinite int
	// MaskDensity is the valid fraction of the horizontal grid (1 when the
	// dataset has no mask).
	MaskDensity float64
	// Smooth is the per-axis mean |first difference| normalized by the
	// value range — the paper's "diverse smoothness of dimensions" made
	// measurable (compare Fig. 4's 4.425 along height vs 0.053 along lat).
	Smooth []float64
	// LinBits and CubBits are the per-axis level-weighted entropies (bits
	// per point) of the quantized linear- and cubic-interpolation residuals
	// — a direct, cheap proxy for what each fitting arm would pay on the
	// quantization-bin stream if that axis carried the prediction.
	LinBits []float64
	CubBits []float64
	// RoughnessCV is the coefficient of variation of per-line roughness
	// along the innermost axis: high values mean bin statistics are
	// spatially locked (the paper's topography correlation, Fig. 5), which
	// is when classification pays.
	RoughnessCV float64
	// Period and PeriodStrength come from the tuner's own detector
	// (core.DetectPeriodFull): Period is already gated exactly as AutoTune
	// gates it, Strength is the adopted peak over the mean spectrum.
	Period         int
	PeriodStrength float64
	// SeasonalLinBits / SeasonalCubBits mirror LinBits/CubBits for axis 0
	// after lag-Period differencing (only filled when Period > 0): the
	// residual entropy the time axis would carry once the periodic
	// component is extracted.
	SeasonalLinBits float64
	SeasonalCubBits float64
}

// validAt reports whether flat index idx is a valid point under the
// dataset's horizontal mask (O(1): the mask broadcasts over leading dims).
func validAt(ds *dataset.Dataset, plane, idx int) bool {
	if ds.Mask == nil {
		return true
	}
	return ds.Mask.Regions[idx%plane] != 0
}

// horizontalPlane returns the broadcast plane size of the mask (lat·lon),
// or 1 when the dataset is unmasked (the modulo is then never used).
func horizontalPlane(ds *dataset.Dataset) int {
	if ds.Mask == nil {
		return 1
	}
	return ds.Mask.NLat * ds.Mask.NLon
}

// globalStats fills the range/moment/mask features with one strided pass.
// interrupt (nil allowed) is polled periodically so a canceled request does
// not pay for the whole pass.
func globalStats(ds *dataset.Dataset, f *Features, interrupt func() error) error {
	n := len(ds.Data)
	stride := n / sampleBudget
	if stride < 1 {
		stride = 1
	}
	plane := horizontalPlane(ds)
	var lo, hi float64
	var sum, sum2 float64
	cnt := 0
	first := true
	visited := 0
	for i := 0; i < n; i += stride {
		if visited&0x1fff == 0 && interrupt != nil {
			if err := interrupt(); err != nil {
				return err
			}
		}
		visited++
		if !validAt(ds, plane, i) {
			continue
		}
		f.Sampled++
		v := float64(ds.Data[i])
		if math.IsNaN(v) || math.IsInf(v, 0) {
			f.NonFinite++
			continue
		}
		if first {
			lo, hi, first = v, v, false
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		sum += v
		sum2 += v * v
		cnt++
	}
	if cnt == 0 {
		return nil
	}
	f.Lo, f.Hi = lo, hi
	f.Mean = sum / float64(cnt)
	variance := sum2/float64(cnt) - f.Mean*f.Mean
	if variance > 0 {
		f.Std = math.Sqrt(variance)
	}
	if ds.Mask != nil {
		f.MaskDensity = float64(ds.Mask.ValidCount()) / float64(plane)
	} else {
		f.MaskDensity = 1
	}
	return nil
}

// residualHist is a clamped histogram of quantized residuals. The clamp only
// coarsens the far tail, which carries almost no probability mass in the
// entropy sum.
type residualHist struct {
	bins [4097]int
	n    int
}

func (h *residualHist) add(r, q float64) {
	k := int(math.Round(r / q))
	if k > 2048 {
		k = 2048
	} else if k < -2048 {
		k = -2048
	}
	h.bins[k+2048]++
	h.n++
}

// entropy returns the Shannon entropy of the histogram in bits per symbol.
func (h *residualHist) entropy() float64 {
	if h.n == 0 {
		return 0
	}
	inv := 1 / float64(h.n)
	e := 0.0
	for _, c := range h.bins {
		if c == 0 {
			continue
		}
		p := float64(c) * inv
		e -= p * math.Log2(p)
	}
	return e
}

// axisStats accumulates the per-axis features over sampled lines. Residual
// entropies are measured at strides 1, 2 and 4 — the three finest
// interpolation levels — and folded with the level populations (1/2, 1/4,
// the rest) into one level-weighted bits-per-point figure per fitting arm.
type axisStats struct {
	sumAbsD   float64
	pairs     int
	lin, cub  [3]residualHist // stride 1, 2, 4
	lineMeans []float64       // per-line mean |Δ|, for RoughnessCV
}

var levelStrides = [3]int{1, 2, 4}

// weightedBits folds the per-stride entropies with the interpolation level
// populations: half the points are predicted at the finest level, a quarter
// at the next, and the remaining quarter is approximated by the stride-4
// figure (coarser levels are few and noisier, and their residuals only
// grow, so this is a mild underestimate absorbed by the probe calibration).
func weightedBits(h *[3]residualHist) float64 {
	return 0.5*h[0].entropy() + 0.25*h[1].entropy() + 0.25*h[2].entropy()
}

// scanLine folds one line of values (with per-point validity; valid may be
// nil) into the axis accumulator. q is the quantization step (2·eb).
func (a *axisStats) scanLine(line []float64, valid []bool, q float64) {
	ok := func(i int) bool {
		if i < 0 || i >= len(line) {
			return false
		}
		if valid != nil && !valid[i] {
			return false
		}
		return !math.IsNaN(line[i]) && !math.IsInf(line[i], 0)
	}
	var lineSum float64
	linePairs := 0
	//clizlint:ignore ctxpoll scanLine folds one sampled line per call; axisFeatures polls between lines
	for i := 1; i < len(line); i++ {
		if ok(i) && ok(i-1) {
			d := math.Abs(line[i] - line[i-1])
			a.sumAbsD += d
			lineSum += d
			a.pairs++
			linePairs++
		}
	}
	if linePairs > 0 {
		a.lineMeans = append(a.lineMeans, lineSum/float64(linePairs))
	}
	for si, s := range levelStrides {
		//clizlint:ignore ctxpoll scanLine folds one sampled line per call; axisFeatures polls between lines
		for i := s; i+s < len(line); i += 2 * s {
			if !ok(i) || !ok(i-s) || !ok(i+s) {
				continue
			}
			linPred := (line[i-s] + line[i+s]) / 2
			a.lin[si].add(line[i]-linPred, q)
			if ok(i-3*s) && ok(i+3*s) {
				cubPred := (-line[i-3*s] + 9*line[i-s] + 9*line[i+s] - line[i+3*s]) / 16
				a.cub[si].add(line[i]-cubPred, q)
			} else {
				// Border points fall back to the linear formula in the
				// kernel too; charge the linear residual so short axes do
				// not spuriously flatter cubic fitting.
				a.cub[si].add(line[i]-linPred, q)
			}
		}
	}
}

// axisFeatures walks sampled lines along every axis, filling Smooth,
// LinBits, CubBits and RoughnessCV, plus the seasonal variants for axis 0
// when a period is known. interrupt (nil allowed) is polled once per
// sampled line.
func axisFeatures(ds *dataset.Dataset, eb float64, period int, f *Features, interrupt func() error) error {
	dims := ds.Dims
	rank := len(dims)
	plane := horizontalPlane(ds)
	rng := f.Hi - f.Lo
	q := 2 * eb
	if q <= 0 || math.IsNaN(q) || math.IsInf(q, 0) {
		q = 1
	}
	f.Smooth = make([]float64, rank)
	f.LinBits = make([]float64, rank)
	f.CubBits = make([]float64, rank)
	line := make([]float64, 0, 4096)
	lineValid := make([]bool, 0, 4096)
	var seasonal axisStats
	for d := 0; d < rank; d++ {
		step := 1
		for i := d + 1; i < rank; i++ {
			step *= dims[i]
		}
		nLines := len(ds.Data) / dims[d]
		wantLines := sampleBudget / dims[d]
		if wantLines < 1 {
			wantLines = 1
		}
		lineStride := nLines / wantLines
		if lineStride < 1 {
			lineStride = 1
		}
		var ax axisStats
		for l := 0; l < nLines; l += lineStride {
			if interrupt != nil {
				if err := interrupt(); err != nil {
					return err
				}
			}
			// Line l along axis d starts at offset o·(dims[d]·step) + s,
			// where l = o·step + s.
			o, s := l/step, l%step
			base := o*dims[d]*step + s
			line = line[:0]
			lineValid = lineValid[:0]
			//clizlint:ignore ctxpoll gathers one sampled line; the enclosing loop polls per line
			for j := 0; j < dims[d]; j++ {
				idx := base + j*step
				line = append(line, float64(ds.Data[idx]))
				lineValid = append(lineValid, validAt(ds, plane, idx))
			}
			ax.scanLine(line, lineValid, q)
			if d == 0 && period > 0 && dims[0] >= 2*period {
				// Deseasonalized time line: lag-period differences halve the
				// seasonal swing into the residual the periodic path encodes.
				sl := make([]float64, 0, len(line)-period)
				sv := make([]bool, 0, len(line)-period)
				for j := period; j < len(line); j++ {
					sl = append(sl, line[j]-line[j-period])
					sv = append(sv, lineValid[j] && lineValid[j-period])
				}
				seasonal.scanLine(sl, sv, q)
			}
		}
		if ax.pairs > 0 && rng > 0 {
			f.Smooth[d] = ax.sumAbsD / float64(ax.pairs) / rng
		}
		f.LinBits[d] = weightedBits(&ax.lin)
		f.CubBits[d] = weightedBits(&ax.cub)
		if d == rank-1 {
			f.RoughnessCV = coefficientOfVariation(ax.lineMeans)
		}
	}
	if seasonal.pairs > 0 {
		f.SeasonalLinBits = weightedBits(&seasonal.lin)
		f.SeasonalCubBits = weightedBits(&seasonal.cub)
	}
	return nil
}

// coefficientOfVariation is std/mean over xs (0 for degenerate input).
func coefficientOfVariation(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	if mean <= 0 {
		return 0
	}
	var sq float64
	for _, x := range xs {
		sq += (x - mean) * (x - mean)
	}
	return math.Sqrt(sq/float64(len(xs))) / mean
}

// Extract measures the full feature set for a dataset under an absolute
// error bound. It is the cheap half of estimation: strided passes bounded by
// sampleBudget per statistic plus one FFT period probe — no compression runs.
func Extract(ds *dataset.Dataset, eb float64) (Features, error) {
	return extract(ds, eb, nil)
}

// extract is Extract with a cancellation hook, polled between sampled
// lines and every few thousand strided points.
func extract(ds *dataset.Dataset, eb float64, interrupt func() error) (Features, error) {
	if err := ds.Validate(); err != nil {
		return Features{}, err
	}
	f := Features{Rank: len(ds.Dims), Points: grid.Volume(ds.Dims)}
	if err := globalStats(ds, &f, interrupt); err != nil {
		return Features{}, err
	}
	if ds.Periodic {
		res := detectPeriod(ds)
		f.Period = res.Period
		f.PeriodStrength = res.Strength
	}
	if err := axisFeatures(ds, eb, f.Period, &f, interrupt); err != nil {
		return Features{}, err
	}
	return f, nil
}
