package experiments

import (
	"fmt"
	"time"

	"cliz/internal/core"
	"cliz/internal/dataset"
	"cliz/internal/grid"
	"cliz/internal/stats"
)

func init() {
	register("E04", "Table V: per-strategy ablation on SSH (mask/classify/perm+fuse/period)", tableV)
	register("E05", "Table VI: ablation on Hurricane-T (no mask, no period)", tableVI)
}

// ablationRow compresses the full dataset with one pipeline and reports
// ratio + wall time.
func ablationRow(ds *dataset.Dataset, eb float64, p core.Pipeline) (float64, time.Duration, error) {
	t0 := time.Now()
	blob, err := core.Compress(ds, eb, p, core.Options{})
	if err != nil {
		return 0, 0, err
	}
	return stats.Ratio(ds.Points(), len(blob)), time.Since(t0), nil
}

func renderAblation(id, title, note string, labels []string, pipes []core.Pipeline,
	ds *dataset.Dataset, eb float64, env Env) (Table, error) {

	t := Table{
		ID: id, Title: title, Note: note,
		Header: []string{"Variant", "Periodicity", "Mask", "Classification", "Permutation", "Fusion", "Fitting", "CompressionRatio", "CRImprovement", "Time", "TimeIncrement"},
	}
	type res struct {
		ratio float64
		dur   time.Duration
	}
	results := make([]res, len(pipes))
	for i, p := range pipes {
		ratio, dur, err := ablationRow(ds, eb, p)
		if err != nil {
			return Table{}, fmt.Errorf("%s: %w", labels[i], err)
		}
		results[i] = res{ratio, dur}
		env.logf("  %-18s ratio %.3f time %v", labels[i], ratio, dur.Round(time.Millisecond))
	}
	base := results[0]
	for i, p := range pipes {
		period := "No"
		if p.Period > 0 {
			period = fmt.Sprintf("%d", p.Period)
		}
		yn := func(b bool) string {
			if b {
				return "Yes"
			}
			return "No"
		}
		crImp := base.ratio/results[i].ratio - 1
		tInc := base.dur.Seconds()/results[i].dur.Seconds() - 1
		t.Rows = append(t.Rows, []string{
			labels[i], period, yn(p.UseMask), yn(p.Classify),
			grid.PermString(p.Perm), p.Fusion.String(), p.Fitting.String(),
			f3(results[i].ratio), pct(crImp), results[i].dur.Round(time.Millisecond).String(), pct(tInc),
		})
	}
	return t, nil
}

func tableV(env Env) ([]Table, error) {
	ds, err := loadDataset(env, "SSH")
	if err != nil {
		return nil, err
	}
	eb := ds.AbsErrorBound(1e-2)
	best, _, err := core.AutoTune(ds, eb, core.TuneConfig{SamplingRate: 0.01}, core.Options{})
	if err != nil {
		return nil, err
	}
	noMask := best
	noMask.UseMask = false
	noPermFuse := best
	noPermFuse.Perm = []int{0, 1, 2}
	noPermFuse.Fusion = grid.NoFusion(3)
	noClassify := best
	noClassify.Classify = false
	noPeriod := best
	noPeriod.Period = 0
	noPeriod.Template = nil
	t, err := renderAblation("E04",
		"Table V: optimal pipeline vs each strategy cancelled (SSH)",
		"CRImprovement/TimeIncrement compare the optimal pipeline against each cancelled variant, as in the paper.",
		[]string{"optimal", "-mask", "-perm/fuse", "-classify", "-period"},
		[]core.Pipeline{best, noMask, noPermFuse, noClassify, noPeriod},
		ds, eb, env)
	if err != nil {
		return nil, err
	}
	return []Table{t}, nil
}

func tableVI(env Env) ([]Table, error) {
	ds, err := loadDataset(env, "Hurricane-T")
	if err != nil {
		return nil, err
	}
	eb := ds.AbsErrorBound(1e-2)
	best, _, err := core.AutoTune(ds, eb, core.TuneConfig{SamplingRate: 0.01}, core.Options{})
	if err != nil {
		return nil, err
	}
	noClassify := best
	noClassify.Classify = false
	randomPermFuse := best
	randomPermFuse.Perm = []int{0, 2, 1}
	randomPermFuse.Fusion = grid.Fusion{Groups: []int{2, 1}} // "0&1"
	t, err := renderAblation("E05",
		"Table VI: optimal pipeline vs cancelled/perturbed variants (Hurricane-T)",
		"Hurricane-T has no mask or periodicity, so only classification, permutation, fusion and fitting vary; the random perm/fuse column mirrors the paper's comparison.",
		[]string{"optimal", "-classify", "random perm/fuse"},
		[]core.Pipeline{best, noClassify, randomPermFuse},
		ds, eb, env)
	if err != nil {
		return nil, err
	}
	return []Table{t}, nil
}
