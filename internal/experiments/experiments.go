// Package experiments regenerates every table and figure of the paper's
// evaluation section (§VII). Each experiment is a named runner producing
// text tables (figures are rendered as the data series behind them); the
// cmd/clizbench binary and the repository's benchmark suite drive them.
//
// Experiment ids follow DESIGN.md's per-experiment index (E01–E11).
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"cliz/internal/codec"
	"cliz/internal/datagen"
	"cliz/internal/dataset"

	// Register every compressor.
	_ "cliz/internal/qoz"
	_ "cliz/internal/sperr"
	_ "cliz/internal/sz3"
	_ "cliz/internal/zfp"
)

// Env configures an experiment run.
type Env struct {
	// Scale shrinks every dataset axis (1.0 = the paper's sizes).
	Scale float64
	// OutDir receives artifacts (e.g. the Fig. 14 PGM images); empty
	// disables artifact writing.
	OutDir string
	// Log receives progress lines; nil silences them.
	Log io.Writer
}

// DefaultEnv returns a laptop-friendly configuration.
func DefaultEnv() Env { return Env{Scale: datagen.DefaultScale} }

func (e Env) scale() float64 {
	if e.Scale <= 0 {
		return datagen.DefaultScale
	}
	return e.Scale
}

func (e Env) logf(format string, args ...any) {
	if e.Log != nil {
		fmt.Fprintf(e.Log, format+"\n", args...)
	}
}

// Table is one rendered result table.
type Table struct {
	ID     string // experiment id, e.g. "E01"
	Title  string // paper reference, e.g. "Fig. 10 rate-distortion"
	Note   string
	Header []string
	Rows   [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Header))
	for i, h := range t.Header {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Runner generates one experiment's tables.
type Runner func(Env) ([]Table, error)

type entry struct {
	id, desc string
	run      Runner
}

var registry []entry

func register(id, desc string, run Runner) {
	registry = append(registry, entry{id, desc, run})
}

// List returns the registered experiment ids with descriptions, in id order.
func List() [][2]string {
	es := append([]entry(nil), registry...)
	sort.Slice(es, func(i, j int) bool { return es[i].id < es[j].id })
	out := make([][2]string, len(es))
	for i, e := range es {
		out[i] = [2]string{e.id, e.desc}
	}
	return out
}

// Run executes one experiment by id.
func Run(id string, env Env) ([]Table, error) {
	for _, e := range registry {
		if e.id == id {
			return e.run(env)
		}
	}
	return nil, fmt.Errorf("experiments: unknown id %q", id)
}

// RunAll executes every experiment in id order.
func RunAll(env Env) ([]Table, error) {
	var out []Table
	es := append([]entry(nil), registry...)
	sort.Slice(es, func(i, j int) bool { return es[i].id < es[j].id })
	for _, e := range es {
		env.logf("running %s (%s)...", e.id, e.desc)
		t0 := time.Now()
		ts, err := e.run(env)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.id, err)
		}
		env.logf("  done in %v", time.Since(t0).Round(time.Millisecond))
		out = append(out, ts...)
	}
	return out, nil
}

// loadDataset generates one dataset at the env scale.
func loadDataset(env Env, name string) (*dataset.Dataset, error) {
	return datagen.ByName(name, env.scale())
}

// getCodec fetches a registered compressor.
func getCodec(name string) (codec.Compressor, error) {
	return codec.Get(name)
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }
