package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tinyEnv keeps the experiment datasets small enough for unit testing.
func tinyEnv() Env { return Env{Scale: 0.06} }

// withSweep temporarily narrows the global sweeps so tests stay fast.
func withSweep(t *testing.T) {
	t.Helper()
	oldDatasets, oldCodecs, oldEBs := Fig10Datasets, Fig10Codecs, Fig10RelEBs
	oldRates, oldCores := SamplingRates, Fig13Cores
	Fig10Datasets = []string{"SSH", "Hurricane-T"}
	Fig10Codecs = []string{"CliZ", "SZ3", "ZFP"}
	Fig10RelEBs = []float64{1e-2}
	SamplingRates = []float64{0.1, 0.01}
	Fig13Cores = []int{256}
	t.Cleanup(func() {
		Fig10Datasets, Fig10Codecs, Fig10RelEBs = oldDatasets, oldCodecs, oldEBs
		SamplingRates, Fig13Cores = oldRates, oldCores
	})
}

func mustRun(t *testing.T, id string) []Table {
	t.Helper()
	ts, err := Run(id, tinyEnv())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(ts) == 0 {
		t.Fatalf("%s: no tables", id)
	}
	for _, tb := range ts {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty table %q", id, tb.Title)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Fatalf("%s: ragged row in %q: %v", id, tb.Title, row)
			}
		}
	}
	return ts
}

func cell(tb Table, row int, col string) string {
	for i, h := range tb.Header {
		if h == col {
			return tb.Rows[row][i]
		}
	}
	return ""
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestListAndUnknown(t *testing.T) {
	ids := List()
	if len(ids) < 10 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i][0] <= ids[i-1][0] {
			t.Fatalf("ids not sorted: %v", ids)
		}
	}
	if _, err := Run("E99", tinyEnv()); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestE01RateDistortion(t *testing.T) {
	withSweep(t)
	ts := mustRun(t, "E01")
	rd := ts[0]
	// CliZ must beat SZ3 and ZFP on the masked+periodic SSH dataset.
	ratios := map[string]float64{}
	for r := range rd.Rows {
		if cell(rd, r, "Dataset") == "SSH" {
			ratios[cell(rd, r, "Codec")] = parseF(t, cell(rd, r, "Ratio"))
		}
	}
	if !(ratios["CliZ"] > ratios["SZ3"] && ratios["CliZ"] > ratios["ZFP"]) {
		t.Fatalf("CliZ should win on SSH: %v", ratios)
	}
	// PSNR sanity: prediction-based codecs must score well; ZFP is allowed
	// to collapse on masked data (fill values exhaust its 32 bit planes,
	// exactly the paper's §V-A point) but must stay finite.
	for r := range rd.Rows {
		p := parseF(t, cell(rd, r, "PSNR(dB)"))
		codecName := cell(rd, r, "Codec")
		if codecName != "ZFP" && p < 25 {
			t.Fatalf("implausible PSNR %v in row %v", p, rd.Rows[r])
		}
		if p < 5 {
			t.Fatalf("PSNR %v degenerate in row %v", p, rd.Rows[r])
		}
	}
}

func TestE02TuningCost(t *testing.T) {
	withSweep(t)
	ts := mustRun(t, "E02")
	// SSH (periodic) must test more pipelines than CESM-T.
	var sshPipes, cesmPipes float64
	for r := range ts[0].Rows {
		switch cell(ts[0], r, "Dataset") {
		case "SSH":
			sshPipes = parseF(t, cell(ts[0], r, "Pipelines"))
		case "CESM-T":
			cesmPipes = parseF(t, cell(ts[0], r, "Pipelines"))
		}
	}
	if sshPipes <= cesmPipes {
		t.Fatalf("periodic SSH should enumerate more pipelines: %v vs %v", sshPipes, cesmPipes)
	}
}

func TestE03SamplingLoss(t *testing.T) {
	withSweep(t)
	ts := mustRun(t, "E03")
	tIV := ts[0]
	// Loss at the highest tested rate is the baseline (0%).
	if got := parseF(t, cell(tIV, 0, "Loss")); got != 0 {
		t.Fatalf("baseline loss = %v", got)
	}
}

func TestE04AblationSSH(t *testing.T) {
	ts := mustRun(t, "E04")
	tb := ts[0]
	if cell(tb, 0, "Variant") != "optimal" {
		t.Fatal("first row must be the optimal pipeline")
	}
	// Cancelling the mask on SSH must hurt badly (paper: +132% CR for mask).
	for r := range tb.Rows {
		if cell(tb, r, "Variant") == "-mask" {
			if imp := parseF(t, cell(tb, r, "CRImprovement")); imp < 10 {
				t.Fatalf("mask ablation should show a large CR improvement, got %v%%", imp)
			}
		}
	}
}

func TestE05AblationHurricane(t *testing.T) {
	ts := mustRun(t, "E05")
	tb := ts[0]
	if len(tb.Rows) != 3 {
		t.Fatalf("want 3 variants, got %d", len(tb.Rows))
	}
	for r := range tb.Rows {
		if cell(tb, r, "Mask") != "No" || cell(tb, r, "Periodicity") != "No" {
			t.Fatal("Hurricane-T has no mask or periodicity")
		}
	}
}

func TestE06Globus(t *testing.T) {
	withSweep(t)
	ts := mustRun(t, "E06")
	tb := ts[0]
	// At equal PSNR, CliZ must move fewer bytes than ZFP.
	bytesOf := map[string]float64{}
	for r := range tb.Rows {
		bytesOf[cell(tb, r, "Codec")] = parseF(t, cell(tb, r, "GBMoved"))
	}
	if !(bytesOf["CliZ"] < bytesOf["ZFP"]) {
		t.Fatalf("CliZ should move less than ZFP: %v", bytesOf)
	}
	// PSNRs should all sit near the target.
	for r := range tb.Rows {
		p := parseF(t, cell(tb, r, "PSNR(dB)"))
		if p < Fig13TargetPSNR-6 || p > Fig13TargetPSNR+6 {
			t.Fatalf("PSNR %v too far from target", p)
		}
	}
	// CliZ's transfer time must beat ZFP's (fewer bytes over the same
	// link); at toy scale the *total* can tie since the modeled fixed
	// overheads dominate, so allow a small negative summary margin.
	var clizXfer, zfpXfer float64
	for r := range tb.Rows {
		switch cell(tb, r, "Codec") {
		case "CliZ":
			clizXfer = parseF(t, cell(tb, r, "Transfer(s)"))
		case "ZFP":
			zfpXfer = parseF(t, cell(tb, r, "Transfer(s)"))
		}
	}
	if clizXfer >= zfpXfer {
		t.Fatalf("CliZ transfer %v >= ZFP %v", clizXfer, zfpXfer)
	}
	sum := ts[1]
	if red := parseF(t, cell(sum, 0, "Reduction")); red < -5 {
		t.Fatalf("total time much worse than baseline: %v%%", red)
	}
}

func TestE07PermFuse(t *testing.T) {
	ts := mustRun(t, "E07")
	tb := ts[0]
	if len(tb.Rows) != 24 {
		t.Fatalf("3D perm×fusion should give 24 rows, got %d", len(tb.Rows))
	}
	// Rows are sorted ascending by bit-rate.
	prev := -1.0
	for r := range tb.Rows {
		br := parseF(t, cell(tb, r, "BitRate"))
		if br < prev {
			t.Fatal("rows not sorted by bit-rate")
		}
		prev = br
	}
	best := parseF(t, cell(tb, 0, "BitRate"))
	worst := parseF(t, cell(tb, len(tb.Rows)-1, "BitRate"))
	if worst <= best {
		t.Fatal("permutation/fusion should matter")
	}
}

func TestE08Period(t *testing.T) {
	ts := mustRun(t, "E08")
	if !strings.Contains(ts[0].Note, "period 12") {
		t.Fatalf("expected period 12 in note: %q", ts[0].Note)
	}
}

func TestE09Visual(t *testing.T) {
	dir := t.TempDir()
	env := tinyEnv()
	env.OutDir = dir
	ts, err := Run("E09", env)
	if err != nil {
		t.Fatal(err)
	}
	tb := ts[0]
	// All codecs near the target ratio; CliZ slice SSIM ≥ SZ3's.
	var clizSSIM, sz3SSIM float64
	for r := range tb.Rows {
		switch cell(tb, r, "Codec") {
		case "CliZ":
			clizSSIM = parseF(t, cell(tb, r, "SliceSSIM"))
			ratio := parseF(t, cell(tb, r, "AchievedRatio"))
			if ratio < Fig14TargetRatio*0.7 || ratio > Fig14TargetRatio*1.3 {
				t.Fatalf("CliZ ratio %v far from target", ratio)
			}
		case "SZ3":
			sz3SSIM = parseF(t, cell(tb, r, "SliceSSIM"))
		}
	}
	if clizSSIM < sz3SSIM-1e-6 {
		t.Fatalf("CliZ slice SSIM %v below SZ3 %v at equal ratio", clizSSIM, sz3SSIM)
	}
}

func TestE10Properties(t *testing.T) {
	ts := mustRun(t, "E10")
	if len(ts) != 3 {
		t.Fatalf("want 3 property tables, got %d", len(ts))
	}
	// Fig. 4: height variation dwarfs horizontal.
	fig4 := ts[0]
	h := parseF(t, cell(fig4, 0, "Mean|Δ|"))
	lat := parseF(t, cell(fig4, 1, "Mean|Δ|"))
	lon := parseF(t, cell(fig4, 2, "Mean|Δ|"))
	if !(h > 5*lat && h > 5*lon) {
		t.Fatalf("anisotropy missing: %v %v %v", h, lat, lon)
	}
	// Fig. 5: bin maps correlate across heights.
	fig5 := ts[1]
	for r := range fig5.Rows {
		if c := parseF(t, cell(fig5, r, "Pearson")); c < 0.2 {
			t.Fatalf("weak topography correlation: %v", c)
		}
	}
	// Fig. 9: residual smoother than original.
	fig9 := ts[2]
	orig := parseF(t, cell(fig9, 0, "Mean|Δ| along longitude"))
	resid := parseF(t, cell(fig9, 1, "Mean|Δ| along longitude"))
	if resid >= orig {
		t.Fatalf("residual not smoother: %v vs %v", resid, orig)
	}
}

func TestE11Inventory(t *testing.T) {
	ts := mustRun(t, "E11")
	if len(ts[0].Rows) != 6 {
		t.Fatalf("want 6 datasets, got %d", len(ts[0].Rows))
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tb := Table{
		ID: "EXX", Title: "demo", Note: "note",
		Header: []string{"A", "LongHeader"},
		Rows:   [][]string{{"1", "x,y"}, {"22", `q"u`}},
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "EXX") || !strings.Contains(out, "LongHeader") {
		t.Fatalf("render output: %q", out)
	}
	buf.Reset()
	tb.CSV(&buf)
	csv := buf.String()
	if !strings.Contains(csv, `"x,y"`) || !strings.Contains(csv, `"q""u"`) {
		t.Fatalf("csv escaping: %q", csv)
	}
}
