package experiments

import (
	"fmt"
	"math"
	"time"

	"cliz/internal/dataset"
	"cliz/internal/stats"
)

// Fig10Datasets are the five datasets of the rate-distortion study.
var Fig10Datasets = []string{"SSH", "CESM-T", "RELHUM", "SOILLIQ", "Tsfc"}

// Fig10Codecs are the five compared compressors.
var Fig10Codecs = []string{"CliZ", "SZ3", "QoZ", "ZFP", "SPERR"}

// Fig10RelEBs are the relative error bounds swept for the curves.
var Fig10RelEBs = []float64{1e-1, 1e-2, 1e-3, 1e-4}

func init() {
	register("E01", "Fig. 10: rate-distortion (PSNR & SSIM vs bit-rate), 5 datasets × 5 codecs", fig10)
}

// rdPoint is one point of a rate-distortion curve.
type rdPoint struct {
	codec   string
	relEB   float64
	bitRate float64
	ratio   float64
	psnr    float64
	ssim    float64
	cmpSec  float64
	decSec  float64
	err     error
}

func measure(cname string, ds *dataset.Dataset, relEB float64) rdPoint {
	pt := rdPoint{codec: cname, relEB: relEB}
	c, err := getCodec(cname)
	if err != nil {
		pt.err = err
		return pt
	}
	eb := ds.AbsErrorBound(relEB)
	t0 := time.Now()
	blob, err := c.Compress(ds, eb)
	if err != nil {
		pt.err = err
		return pt
	}
	pt.cmpSec = time.Since(t0).Seconds()
	t0 = time.Now()
	recon, _, err := c.Decompress(blob)
	if err != nil {
		pt.err = err
		return pt
	}
	pt.decSec = time.Since(t0).Seconds()
	valid := ds.Validity()
	pt.bitRate = stats.BitRate(len(blob), ds.Points())
	pt.ratio = stats.Ratio(ds.Points(), len(blob))
	pt.psnr = stats.PSNR(ds.Data, recon, valid)
	pt.ssim = stats.SSIM(ds.Data, recon, ds.Dims, 8, valid)
	return pt
}

func fig10(env Env) ([]Table, error) {
	rd := Table{
		ID:    "E01",
		Title: "Fig. 10: rate-distortion on five climate datasets",
		Note: "One row per (dataset, codec, relative error bound); plot PSNR/SSIM " +
			"against bit-rate to recover the paper's curves.",
		Header: []string{"Dataset", "Codec", "RelEB", "BitRate", "Ratio", "PSNR(dB)", "SSIM", "Comp(s)", "Decomp(s)"},
	}
	summary := Table{
		ID:     "E01",
		Title:  "Fig. 10 summary: CliZ ratio vs second-best at equal error bound",
		Note:   "The paper reports CliZ beating the second best by 20%–200% (up to much more on masked/periodic data).",
		Header: []string{"Dataset", "RelEB", "CliZ ratio", "2nd best", "2nd ratio", "Improvement"},
	}
	for _, dsName := range Fig10Datasets {
		ds, err := loadDataset(env, dsName)
		if err != nil {
			return nil, err
		}
		env.logf("  %s %v", ds.Name, ds.Dims)
		for _, relEB := range Fig10RelEBs {
			var clizRatio float64
			bestOther, bestName := 0.0, ""
			for _, cname := range Fig10Codecs {
				pt := measure(cname, ds, relEB)
				if pt.err != nil {
					return nil, fmt.Errorf("%s/%s@%g: %w", dsName, cname, relEB, pt.err)
				}
				ssim := pt.ssim
				if math.IsNaN(ssim) {
					ssim = 0
				}
				rd.Rows = append(rd.Rows, []string{
					dsName, cname, fmt.Sprintf("%g", relEB),
					f3(pt.bitRate), f2(pt.ratio), f2(pt.psnr), f4(ssim),
					f3(pt.cmpSec), f3(pt.decSec),
				})
				if cname == "CliZ" {
					clizRatio = pt.ratio
				} else if pt.ratio > bestOther {
					bestOther, bestName = pt.ratio, cname
				}
			}
			imp := 0.0
			if bestOther > 0 {
				imp = clizRatio/bestOther - 1
			}
			summary.Rows = append(summary.Rows, []string{
				dsName, fmt.Sprintf("%g", relEB),
				f2(clizRatio), bestName, f2(bestOther), pct(imp),
			})
		}
	}
	return []Table{rd, summary}, nil
}
