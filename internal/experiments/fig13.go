package experiments

import (
	"fmt"
	"math"
	"time"

	"cliz/internal/codec"
	"cliz/internal/dataset"
	"cliz/internal/netsim"
	"cliz/internal/stats"
)

// Fig13Cores are the process counts of the scaled-performance experiment.
var Fig13Cores = []int{256, 512, 1024}

// Fig13TargetPSNR is the equal-distortion operating point (paper: ~117 dB).
const Fig13TargetPSNR = 117.0

func init() {
	register("E06", "Fig. 13: Globus WAN transfer at equal PSNR (CliZ vs SZ3 vs ZFP, 256–1024 cores)", fig13)
}

// tuneToPSNR binary-searches the relative error bound until the codec's
// reconstruction hits the target PSNR (±tol dB). Smaller eb → higher PSNR.
func tuneToPSNR(c codec.Compressor, ds *dataset.Dataset, target, tolDB float64) (blob []byte, psnr float64, cmpSec float64, err error) {
	valid := ds.Validity()
	lo, hi := -8.0, -0.5 // log10(relEB) bracket
	var best []byte
	bestPSNR := math.Inf(-1)
	bestEB := 0.0
	for iter := 0; iter < 24; iter++ {
		mid := (lo + hi) / 2
		eb := ds.AbsErrorBound(math.Pow(10, mid))
		b, cerr := c.Compress(ds, eb)
		if cerr != nil {
			return nil, 0, 0, cerr
		}
		recon, _, derr := c.Decompress(b)
		if derr != nil {
			return nil, 0, 0, derr
		}
		p := stats.PSNR(ds.Data, recon, valid)
		if math.Abs(p-target) < math.Abs(bestPSNR-target) {
			best, bestPSNR, bestEB = b, p, eb
		}
		if math.Abs(p-target) <= tolDB {
			break
		}
		if p < target {
			hi = mid // need smaller eb
		} else {
			lo = mid
		}
	}
	if best == nil {
		return nil, 0, 0, fmt.Errorf("PSNR tuning failed")
	}
	// Measure the online compression time with the tuned configuration warm
	// (CliZ's pipeline cache is populated by now) — the paper's offline
	// tuning is amortized across a model's fields and not part of Fig. 13's
	// per-file compression cost.
	t0 := time.Now()
	if _, err := c.Compress(ds, bestEB); err != nil {
		return nil, 0, 0, err
	}
	return best, bestPSNR, time.Since(t0).Seconds(), nil
}

func fig13(env Env) ([]Table, error) {
	// CESM-T carries no fill values: ZFP's 32 bit planes cannot reach high
	// PSNR through 1e36 sentinels (true of the original codec as well), so
	// the equal-PSNR comparison uses the atmosphere field.
	ds, err := loadDataset(env, "CESM-T")
	if err != nil {
		return nil, err
	}
	wan := netsim.DefaultWAN()
	t := Table{
		ID:    "E06",
		Title: "Fig. 13: compression + Globus transmission time at equal PSNR (~117 dB)",
		Note: fmt.Sprintf("Dataset CESM-T %v per core; WAN model: %.0f Gbit/s shared, "+
			"measured compression times, actual compressed sizes. The paper reports a "+
			"32%%–38%% total-time reduction for CliZ over SZ3/ZFP.",
			ds.Dims, wan.BandwidthBytesPerSec*8/1e9),
		Header: []string{"Codec", "PSNR(dB)", "Ratio", "Cores", "Compress(s)", "Transfer(s)", "Total(s)", "GBMoved"},
	}
	type tuned struct {
		name string
		blob []byte
		psnr float64
		sec  float64
	}
	var runs []tuned
	for _, name := range []string{"CliZ", "SZ3", "ZFP"} {
		c, err := getCodec(name)
		if err != nil {
			return nil, err
		}
		blob, psnr, sec, err := tuneToPSNR(c, ds, Fig13TargetPSNR, 0.5)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		env.logf("  %s: PSNR %.1f dB, %d bytes, %.2fs", name, psnr, len(blob), sec)
		runs = append(runs, tuned{name, blob, psnr, sec})
	}
	var clizTotal, worstTotal map[int]float64
	clizTotal = map[int]float64{}
	worstTotal = map[int]float64{}
	for _, r := range runs {
		for _, cores := range Fig13Cores {
			res, err := netsim.Simulate(wan, netsim.Job{
				Cores: cores, FileBytes: len(r.blob), CompressSec: r.sec,
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				r.name, f2(r.psnr), f2(stats.Ratio(ds.Points(), len(r.blob))),
				fmt.Sprintf("%d", cores),
				f2(res.CompressTime.Seconds()), f2(res.TransferTime.Seconds()),
				f2(res.Total.Seconds()),
				f3(float64(res.TotalBytes) / 1e9),
			})
			if r.name == "CliZ" {
				clizTotal[cores] = res.Total.Seconds()
			} else if res.Total.Seconds() > worstTotal[cores] {
				worstTotal[cores] = res.Total.Seconds()
			}
		}
	}
	sum := Table{
		ID:     "E06",
		Title:  "Fig. 13 summary: CliZ total-time reduction vs the slower baseline",
		Header: []string{"Cores", "CliZ total(s)", "Baseline worst(s)", "Reduction"},
	}
	for _, cores := range Fig13Cores {
		red := 1 - clizTotal[cores]/worstTotal[cores]
		sum.Rows = append(sum.Rows, []string{
			fmt.Sprintf("%d", cores), f2(clizTotal[cores]), f2(worstTotal[cores]), pct(red),
		})
	}
	return []Table{t, sum}, nil
}
