package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"cliz/internal/codec"
	"cliz/internal/dataset"
	"cliz/internal/stats"
)

// Fig14TargetRatio is the equal-compression-ratio operating point (paper: 25).
const Fig14TargetRatio = 25.0

func init() {
	register("E09", "Fig. 14: visual quality at equal compression ratio ≈25 (SSH slice; PGM dumps)", fig14)
}

// tuneToRatio binary-searches the relative error bound until the codec's
// output hits the target compression ratio.
func tuneToRatio(c codec.Compressor, ds *dataset.Dataset, target float64) ([]byte, float64, error) {
	lo, hi := -8.0, -0.5 // log10(relEB); larger eb → larger ratio
	var best []byte
	bestRatio := 0.0
	for iter := 0; iter < 22; iter++ {
		mid := (lo + hi) / 2
		eb := ds.AbsErrorBound(math.Pow(10, mid))
		b, err := c.Compress(ds, eb)
		if err != nil {
			return nil, 0, err
		}
		ratio := stats.Ratio(ds.Points(), len(b))
		if best == nil || math.Abs(ratio-target) < math.Abs(bestRatio-target) {
			best, bestRatio = b, ratio
		}
		if math.Abs(ratio-target) < 0.02*target {
			break
		}
		if ratio < target {
			lo = mid // need larger eb
		} else {
			hi = mid
		}
	}
	return best, bestRatio, nil
}

// writePGM renders one horizontal slice as an 8-bit PGM image; masked points
// render black.
func writePGM(path string, slice []float32, nLat, nLon int, valid []bool, lo, hi float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "P5\n%d %d\n255\n", nLon, nLat); err != nil {
		return err
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	buf := make([]byte, nLat*nLon)
	for i, v := range slice {
		if valid != nil && !valid[i] {
			buf[i] = 0
			continue
		}
		g := (float64(v) - lo) / span
		if g < 0 {
			g = 0
		}
		if g > 1 {
			g = 1
		}
		buf[i] = byte(10 + g*245)
	}
	_, err = f.Write(buf)
	return err
}

func fig14(env Env) ([]Table, error) {
	ds, err := loadDataset(env, "SSH")
	if err != nil {
		return nil, err
	}
	valid := ds.Validity()
	nLat, nLon := ds.LatLonDims()
	plane := nLat * nLon
	sliceT := ds.Dims[0] / 2
	lo, hi := ds.ValueRange()

	t := Table{
		ID:    "E09",
		Title: "Fig. 14: reconstruction quality at equal compression ratio ≈25",
		Note: "Per-slice SSIM/PSNR of the mid-time SSH slice; PGM images are written " +
			"when an output directory is configured. The paper shows CliZ visually clean " +
			"while SZ3 and QoZ distort at the same ratio.",
		Header: []string{"Codec", "AchievedRatio", "SlicePSNR(dB)", "SliceSSIM", "Image"},
	}
	if env.OutDir != "" {
		if err := os.MkdirAll(env.OutDir, 0o755); err != nil {
			return nil, err
		}
		orig := filepath.Join(env.OutDir, "fig14_original.pgm")
		if err := writePGM(orig, ds.Data[sliceT*plane:(sliceT+1)*plane], nLat, nLon,
			valid[:plane], lo, hi); err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{"original", "-", "inf", "1.0000", orig})
	} else {
		t.Rows = append(t.Rows, []string{"original", "-", "inf", "1.0000", "-"})
	}
	for _, name := range []string{"CliZ", "SZ3", "QoZ"} {
		c, err := getCodec(name)
		if err != nil {
			return nil, err
		}
		blob, ratio, err := tuneToRatio(c, ds, Fig14TargetRatio)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		recon, _, err := c.Decompress(blob)
		if err != nil {
			return nil, err
		}
		oSlice := ds.Data[sliceT*plane : (sliceT+1)*plane]
		rSlice := recon[sliceT*plane : (sliceT+1)*plane]
		vSlice := valid[:plane]
		psnr := stats.PSNR(oSlice, rSlice, vSlice)
		ssim := stats.SSIM(oSlice, rSlice, []int{nLat, nLon}, 8, vSlice)
		img := "-"
		if env.OutDir != "" {
			img = filepath.Join(env.OutDir, fmt.Sprintf("fig14_%s.pgm", name))
			if err := writePGM(img, rSlice, nLat, nLon, vSlice, lo, hi); err != nil {
				return nil, err
			}
		}
		t.Rows = append(t.Rows, []string{name, f2(ratio), f2(psnr), f4(ssim), img})
		env.logf("  %s: ratio %.2f, slice SSIM %.4f", name, ratio, ssim)
	}
	return []Table{t}, nil
}
