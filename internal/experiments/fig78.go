package experiments

import (
	"fmt"
	"sort"

	"cliz/internal/core"
	"cliz/internal/fft"
	"cliz/internal/grid"
	"cliz/internal/stats"
)

func init() {
	register("E07", "Fig. 7: bit-rate across every dimension permutation × fusion (CESM-T)", fig7)
	register("E08", "Fig. 8: FFT periodicity spectra of sampled SSH rows", fig8)
}

func fig7(env Env) ([]Table, error) {
	ds, err := loadDataset(env, "CESM-T")
	if err != nil {
		return nil, err
	}
	eb := ds.AbsErrorBound(1e-2)
	t := Table{
		ID:    "E07",
		Title: "Fig. 7: bit-rates of all permutation/fusion cases (CESM-T)",
		Note: "Lower bit-rate = taller red frustum in the paper's figure. The best and " +
			"near-best cases should cluster, with >10% spread to the worst.",
		Header: []string{"Permutation", "Fusion", "BitRate", "Ratio"},
	}
	type res struct {
		perm, fuse string
		bitRate    float64
		ratio      float64
	}
	var all []res
	for _, perm := range grid.Permutations(3) {
		for _, fus := range grid.Compositions(3) {
			p := core.Default(ds)
			p.Perm = perm
			p.Fusion = fus
			blob, err := core.Compress(ds, eb, p, core.Options{})
			if err != nil {
				return nil, err
			}
			all = append(all, res{
				grid.PermString(perm), fus.String(),
				stats.BitRate(len(blob), ds.Points()),
				stats.Ratio(ds.Points(), len(blob)),
			})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].bitRate < all[j].bitRate })
	for _, r := range all {
		t.Rows = append(t.Rows, []string{r.perm, r.fuse, f4(r.bitRate), f2(r.ratio)})
	}
	return []Table{t}, nil
}

func fig8(env Env) ([]Table, error) {
	ds, err := loadDataset(env, "SSH")
	if err != nil {
		return nil, err
	}
	nT := ds.Dims[0]
	plane := ds.Dims[1] * ds.Dims[2]
	valid, err := ds.Mask.Broadcast(ds.Dims[1:])
	if err != nil {
		return nil, err
	}
	var rows [][]float64
	for p := 0; p < plane && len(rows) < 10; p += plane/23 + 1 {
		if !valid[p] {
			continue
		}
		row := make([]float64, nT)
		for tt := 0; tt < nT; tt++ {
			row[tt] = float64(ds.Data[tt*plane+p])
		}
		rows = append(rows, row)
	}
	res := fft.DetectPeriod(rows, 0.7, 5)
	t := Table{
		ID:    "E08",
		Title: "Fig. 8: averaged FFT magnitude spectrum of 10 SSH rows",
		Note: fmt.Sprintf("Detected fundamental frequency %d (strength %.1f× mean) → period %d; "+
			"the paper's full-size SSH (1032 steps) peaks at frequency 86 → period 12.",
			res.Frequency, res.Strength, res.Period),
		Header: []string{"Rank", "Frequency", "Magnitude", "ImpliedPeriod"},
	}
	type peak struct {
		k   int
		mag float64
	}
	var peaks []peak
	for k := 1; k < len(res.Spectrum); k++ {
		peaks = append(peaks, peak{k, res.Spectrum[k]})
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].mag > peaks[j].mag })
	for i := 0; i < 8 && i < len(peaks); i++ {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", peaks[i].k),
			f2(peaks[i].mag),
			fmt.Sprintf("%d", int(float64(nT)/float64(peaks[i].k)+0.5)),
		})
	}
	if res.Period == 0 {
		return nil, fmt.Errorf("fig8: no period detected on SSH")
	}
	return []Table{t}, nil
}
