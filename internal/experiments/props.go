package experiments

import (
	"fmt"
	"math"

	"cliz/internal/core"
	"cliz/internal/interp"
	"cliz/internal/predict"
	"cliz/internal/quant"
)

func init() {
	register("E10", "Figs. 4/5/9: property demos — per-dim smoothness, quant-bin topography, residual smoothing", propertyDemos)
	register("E11", "Table III: dataset inventory", tableIII)
}

func propertyDemos(env Env) ([]Table, error) {
	var tables []Table

	// --- Fig. 4: mean absolute variation per dimension of CESM-T. ---
	cesmt, err := loadDataset(env, "CESM-T")
	if err != nil {
		return nil, err
	}
	fig4 := Table{
		ID:    "E10",
		Title: "Fig. 4 (data behind it): mean |Δ| per dimension, CESM-T",
		Note: "The paper reports ~4.425 along height vs ~0.053/0.017 along lat/lon: " +
			"the height axis must dwarf the horizontal ones.",
		Header: []string{"Dimension", "Mean|Δ|"},
	}
	dims := cesmt.Dims
	strides := []int{dims[1] * dims[2], dims[2], 1}
	names := []string{"Height", "Latitude", "Longitude"}
	for d := 0; d < 3; d++ {
		var sum float64
		var n int
		for i := 0; i+strides[d] < len(cesmt.Data); i += strides[d] {
			// Stay within the same line along dimension d.
			co := i / strides[d] % dims[d]
			if co == dims[d]-1 {
				continue
			}
			sum += math.Abs(float64(cesmt.Data[i+strides[d]]) - float64(cesmt.Data[i]))
			n++
			if n >= 200000 {
				break
			}
		}
		fig4.Rows = append(fig4.Rows, []string{names[d], f4(sum / float64(n))})
	}
	tables = append(tables, fig4)

	// --- Fig. 5: quantization-bin statistics correlate across heights. ---
	// A tight bound makes the terrain-coupled fine-scale variability visible
	// in the bins (at loose bounds almost everything lands on the zero bin).
	res, err := interp.Compress(cesmt.Data, cesmt.Dims, interp.Config{
		EB:      cesmt.AbsErrorBound(1e-5),
		Fitting: predict.Cubic,
	})
	if err != nil {
		return nil, err
	}
	nH, plane := dims[0], dims[1]*dims[2]
	// Per column (lat,lon): mean |bin offset| aggregated over a height band.
	// Aggregation across slices is what makes the topography signal visible
	// over the per-point quantization noise (the paper's log-scaled maps do
	// the same visually).
	colDev := func(h0, h1 int) []float64 {
		out := make([]float64, plane)
		for h := h0; h < h1; h++ {
			for p := 0; p < plane; p++ {
				b := res.Bins[h*plane+p]
				if b != 0 {
					out[p] += math.Abs(float64(b - quant.DefaultRadius))
				}
			}
		}
		for p := range out {
			out[p] /= float64(h1 - h0)
		}
		return out
	}
	fig5 := Table{
		ID:    "E10",
		Title: "Fig. 5 (data behind it): correlation of quantization-bin deviation maps across height bands",
		Note: "Topography shapes local variance, so the per-column |bin| maps of disjoint " +
			"height bands correlate strongly (the paper's visual similarity of slices).",
		Header: []string{"HeightBands", "Pearson"},
	}
	lowBand := colDev(0, nH/2)
	highBand := colDev(nH/2, nH)
	fig5.Rows = append(fig5.Rows, []string{
		fmt.Sprintf("[0,%d) vs [%d,%d)", nH/2, nH/2, nH),
		f3(pearson(lowBand, highBand)),
	})
	q1 := colDev(0, nH/4)
	q4 := colDev(3*nH/4, nH)
	fig5.Rows = append(fig5.Rows, []string{
		fmt.Sprintf("[0,%d) vs [%d,%d)", nH/4, 3*nH/4, nH),
		f3(pearson(q1, q4)),
	})
	tables = append(tables, fig5)

	// --- Fig. 9: residual data is smoother than the original. ---
	ssh, err := loadDataset(env, "SSH")
	if err != nil {
		return nil, err
	}
	valid := ssh.Validity()
	// Spatial roughness: mean |Δ| along longitude for valid neighbours, on
	// the original vs the periodic residual.
	rough := func(data []float32) float64 {
		nLon := ssh.Dims[2]
		var sum float64
		var n int
		for i := 0; i+1 < len(data); i++ {
			if (i+1)%nLon == 0 {
				continue
			}
			if valid != nil && (!valid[i] || !valid[i+1]) {
				continue
			}
			sum += math.Abs(float64(data[i+1]) - float64(data[i]))
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	tmplPipe := core.Default(ssh)
	residual, err := core.PeriodicResidual(ssh, 12, tmplPipe)
	if err != nil {
		return nil, err
	}
	fig9 := Table{
		ID:     "E10",
		Title:  "Fig. 9 (data behind it): spatial roughness of original vs periodic residual (SSH)",
		Note:   "Removing the periodic component must leave a smoother field (lower mean |Δ| along longitude).",
		Header: []string{"Field", "Mean|Δ| along longitude"},
	}
	fig9.Rows = append(fig9.Rows, []string{"original", f4(rough(ssh.Data))})
	fig9.Rows = append(fig9.Rows, []string{"residual", f4(rough(residual))})
	tables = append(tables, fig9)
	return tables, nil
}

func pearson(a, b []float64) float64 {
	var sa, sb, saa, sbb, sab float64
	n := float64(len(a))
	for i := range a {
		sa += a[i]
		sb += b[i]
		saa += a[i] * a[i]
		sbb += b[i] * b[i]
		sab += a[i] * b[i]
	}
	cov := sab - sa*sb/n
	den := math.Sqrt((saa - sa*sa/n) * (sbb - sb*sb/n))
	if den == 0 {
		return 0
	}
	return cov / den
}

func tableIII(env Env) ([]Table, error) {
	t := Table{
		ID:     "E11",
		Title:  "Table III: information about tested datasets",
		Note:   fmt.Sprintf("Synthetic CESM-like fields at scale %.2f of the paper's dimensions.", env.scale()),
		Header: []string{"Name", "Dims", "Lead", "Mask", "Period", "Points", "ValidPoints"},
	}
	for _, name := range []string{"SSH", "CESM-T", "RELHUM", "SOILLIQ", "Tsfc", "Hurricane-T"} {
		ds, err := loadDataset(env, name)
		if err != nil {
			return nil, err
		}
		yn := func(b bool) string {
			if b {
				return "Yes"
			}
			return "No"
		}
		t.Rows = append(t.Rows, []string{
			ds.Name, fmt.Sprintf("%v", ds.Dims), ds.Lead.String(),
			yn(ds.Mask != nil), yn(ds.Periodic),
			fmt.Sprintf("%d", ds.Points()), fmt.Sprintf("%d", ds.ValidPoints()),
		})
	}
	return []Table{t}, nil
}
