package experiments

import (
	"fmt"
	"sort"
	"time"

	"cliz/internal/core"
	"cliz/internal/grid"
	"cliz/internal/stats"
)

// SamplingRates is the paper's sampling-rate sweep (Fig. 11/12, Table IV).
var SamplingRates = []float64{1, 0.1, 0.01, 0.001, 0.0001, 0.00001}

func init() {
	register("E02", "Fig. 11: auto-tuning time vs sampling rate (SSH and CESM-T)", fig11)
	register("E03", "Fig. 12 + Table IV: pipeline ranking stability and CR loss vs sampling rate (SSH)", fig12TableIV)
}

func fig11(env Env) ([]Table, error) {
	t := Table{
		ID:    "E02",
		Title: "Fig. 11: sampling & pipeline-testing time per sampling rate",
		Note: "SSH is periodic (192 candidate pipelines), CESM-T is not (96); the paper " +
			"reports near-linear growth with rate plus a constant for periodic extraction.",
		Header: []string{"Dataset", "Rate", "Pipelines", "TuneTime", "FullCompressTime"},
	}
	for _, name := range []string{"SSH", "CESM-T"} {
		ds, err := loadDataset(env, name)
		if err != nil {
			return nil, err
		}
		// Reference: one full compression with the 1%-tuned pipeline.
		best, _, err := core.AutoTune(ds, ds.AbsErrorBound(1e-2), core.TuneConfig{SamplingRate: 0.01}, core.Options{})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := core.Compress(ds, ds.AbsErrorBound(1e-2), best, core.Options{}); err != nil {
			return nil, err
		}
		fullDur := time.Since(t0)
		for _, rate := range SamplingRates {
			_, rep, err := core.AutoTune(ds, ds.AbsErrorBound(1e-2), core.TuneConfig{SamplingRate: rate}, core.Options{})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				name, fmt.Sprintf("%g", rate),
				fmt.Sprintf("%d", len(rep.Candidates)),
				rep.TotalDuration.Round(time.Millisecond).String(),
				fullDur.Round(time.Millisecond).String(),
			})
			env.logf("  %s rate %g: %v", name, rate, rep.TotalDuration.Round(time.Millisecond))
		}
	}
	return []Table{t}, nil
}

func fig12TableIV(env Env) ([]Table, error) {
	ds, err := loadDataset(env, "SSH")
	if err != nil {
		return nil, err
	}
	eb := ds.AbsErrorBound(1e-2)

	tIV := Table{
		ID:    "E03",
		Title: "Table IV: estimated optimal pipeline and loss in compression ratio",
		Note: "\"Compression Ratio\" is the real full-dataset ratio achieved by the pipeline " +
			"the tuner picked at each rate; Loss is relative to the rate-1 pick.",
		Header: []string{"SamplingRate", "Periodicity", "Classification", "Permutation", "Fusion", "Fitting", "CompressionRatio", "Loss"},
	}
	f12 := Table{
		ID:     "E03",
		Title:  "Fig. 12: estimated compression ratios of the top pipelines per sampling rate",
		Note:   "Pipelines are ranked by the rate-1 (precise) estimate; a good tuner keeps the ordering stable.",
		Header: []string{"PipelineRank", "Pipeline"},
	}
	for _, r := range SamplingRates {
		f12.Header = append(f12.Header, fmt.Sprintf("est@%g", r))
	}

	type rateResult struct {
		rate  float64
		best  core.Pipeline
		ratio float64
		est   map[string]float64 // pipeline string -> estimated ratio
	}
	var results []rateResult
	for _, rate := range SamplingRates {
		best, rep, err := core.AutoTune(ds, eb, core.TuneConfig{SamplingRate: rate}, core.Options{})
		if err != nil {
			return nil, err
		}
		blob, err := core.Compress(ds, eb, best, core.Options{})
		if err != nil {
			return nil, err
		}
		rr := rateResult{
			rate:  rate,
			best:  best,
			ratio: stats.Ratio(ds.Points(), len(blob)),
			est:   map[string]float64{},
		}
		for _, c := range rep.Candidates {
			rr.est[pipeKey(c.Pipe)] = c.Ratio
		}
		results = append(results, rr)
		env.logf("  rate %g -> %s (full ratio %.3f)", rate, best, rr.ratio)
	}
	baseline := results[0].ratio
	for _, rr := range results {
		loss := 0.0
		if baseline > 0 {
			loss = 1 - rr.ratio/baseline
		}
		period := "No"
		if rr.best.Period > 0 {
			period = fmt.Sprintf("%d", rr.best.Period)
		}
		cls := "No"
		if rr.best.Classify {
			cls = "Yes"
		}
		tIV.Rows = append(tIV.Rows, []string{
			fmt.Sprintf("%g", rr.rate), period, cls,
			grid.PermString(rr.best.Perm), rr.best.Fusion.String(),
			rr.best.Fitting.String(), f3(rr.ratio), pct(loss),
		})
	}
	// Fig. 12: top 8 pipelines by the precise (rate-1) estimate, with the
	// estimate each rate produced for the same pipeline.
	precise := results[0].est
	type pe struct {
		key string
		est float64
	}
	var order []pe
	for k, v := range precise {
		order = append(order, pe{k, v})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].est > order[j].est })
	top := 8
	if len(order) < top {
		top = len(order)
	}
	for rank := 0; rank < top; rank++ {
		row := []string{fmt.Sprintf("%d", rank+1), order[rank].key}
		for _, rr := range results {
			if v, ok := rr.est[order[rank].key]; ok {
				row = append(row, f2(v))
			} else {
				row = append(row, "-")
			}
		}
		f12.Rows = append(f12.Rows, row)
	}
	return []Table{tIV, f12}, nil
}

func pipeKey(p core.Pipeline) string {
	return p.String()
}
