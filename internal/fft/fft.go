// Package fft implements the Fourier analysis CliZ needs for periodic
// component detection (paper §VI-D, Fig. 8). It replaces FFTW with a
// from-scratch radix-2 Cooley–Tukey transform plus Bluestein's algorithm for
// arbitrary lengths, and provides a periodogram-based period detector that
// follows the paper's harmonic-disambiguation rule (adopt the peak with the
// smallest frequency, i.e. the largest period).
package fft

import (
	"math"
	"math/cmplx"
)

// Transform computes the in-place DFT of x when inverse is false, or the
// inverse DFT (scaled by 1/n) when inverse is true. Any length is supported;
// non-powers of two use Bluestein's algorithm (allocating).
func Transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
	} else {
		bluestein(x, inverse)
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// radix2 is the iterative in-place Cooley–Tukey FFT for power-of-two n.
// No 1/n scaling is applied here.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// bit-reversal permutation
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Rect(1, ang)
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := x[start+k]
				v := x[start+k+half] * w
				x[start+k] = u + v
				x[start+k+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT via the chirp-z transform:
// X_k = conj(b_k) * sum_j (a_j b_j) * b_{k-j}, evaluated with a power-of-two
// convolution. No 1/n scaling is applied here.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[i] = exp(sign * i*pi*i^2/n); compute i^2 mod 2n to avoid overflow.
	chirp := make([]complex128, n)
	for i := 0; i < n; i++ {
		j := (int64(i) * int64(i)) % int64(2*n)
		chirp[i] = cmplx.Rect(1, sign*math.Pi*float64(j)/float64(n))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for i := 0; i < n; i++ {
		a[i] = x[i] * chirp[i]
	}
	b[0] = cmplx.Conj(chirp[0])
	for i := 1; i < n; i++ {
		c := cmplx.Conj(chirp[i])
		b[i] = c
		b[m-i] = c
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for i := 0; i < n; i++ {
		x[i] = a[i] * scale * chirp[i]
	}
}

// Periodogram returns the magnitude spectrum |X_k| of the real signal for
// k = 0..n/2, after removing the mean (so the DC bin does not dominate).
func Periodogram(signal []float64) []float64 {
	n := len(signal)
	if n == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range signal {
		mean += v
	}
	mean /= float64(n)
	x := make([]complex128, n)
	for i, v := range signal {
		x[i] = complex(v-mean, 0)
	}
	Transform(x, false)
	out := make([]float64, n/2+1)
	for k := range out {
		out[k] = cmplx.Abs(x[k])
	}
	return out
}

// PeriodResult reports what the detector found.
type PeriodResult struct {
	Period    int     // detected period length in samples; 0 if none
	Frequency int     // index of the adopted spectral peak
	Strength  float64 // peak magnitude relative to mean spectrum magnitude
	Spectrum  []float64
}

// DetectPeriod averages the periodograms of several sample rows and returns
// the period implied by the lowest-frequency strong peak. A peak counts as
// strong when it reaches relThreshold of the global maximum (the paper keeps
// only the smallest frequency among the harmonics at multiples of the base).
// minStrength guards against calling noise periodic: the adopted peak must
// exceed minStrength × the mean spectral magnitude.
func DetectPeriod(rows [][]float64, relThreshold, minStrength float64) PeriodResult {
	if len(rows) == 0 {
		return PeriodResult{}
	}
	n := len(rows[0])
	if n < 4 {
		return PeriodResult{}
	}
	var avg []float64
	cnt := 0
	for _, row := range rows {
		if len(row) != n {
			continue
		}
		p := Periodogram(row)
		if avg == nil {
			avg = make([]float64, len(p))
		}
		for k, v := range p {
			avg[k] += v
		}
		cnt++
	}
	if cnt == 0 {
		return PeriodResult{}
	}
	for k := range avg {
		avg[k] /= float64(cnt)
	}
	// Global maximum over k >= 1 (DC already suppressed by mean removal,
	// but skip it regardless).
	maxMag, maxK := 0.0, 0
	mean := 0.0
	for k := 1; k < len(avg); k++ {
		if avg[k] > maxMag {
			maxMag, maxK = avg[k], k
		}
		mean += avg[k]
	}
	if len(avg) > 1 {
		mean /= float64(len(avg) - 1)
	}
	if maxK == 0 || maxMag <= 0 {
		return PeriodResult{Spectrum: avg}
	}
	// Adopt the smallest frequency whose peak is within relThreshold of the
	// maximum — this picks the fundamental among harmonics.
	adopted := maxK
	for k := 1; k < maxK; k++ {
		if avg[k] >= relThreshold*maxMag {
			adopted = k
			break
		}
	}
	strength := maxMag / math.Max(mean, 1e-300)
	if strength < minStrength {
		return PeriodResult{Spectrum: avg, Strength: strength}
	}
	period := int(math.Round(float64(n) / float64(adopted)))
	if period < 2 || period > n/2 {
		return PeriodResult{Spectrum: avg, Strength: strength}
	}
	return PeriodResult{Period: period, Frequency: adopted, Strength: strength, Spectrum: avg}
}
