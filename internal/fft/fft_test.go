package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTransformKnownDFT(t *testing.T) {
	// DFT of [1,0,0,0] is [1,1,1,1].
	x := []complex128{1, 0, 0, 0}
	Transform(x, false)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v", i, v)
		}
	}
	// DFT of a pure cosine concentrates at ±k.
	n := 64
	k := 5
	y := make([]complex128, n)
	for i := range y {
		y[i] = complex(math.Cos(2*math.Pi*float64(k*i)/float64(n)), 0)
	}
	Transform(y, false)
	for i, v := range y {
		mag := cmplx.Abs(v)
		if i == k || i == n-k {
			if math.Abs(mag-float64(n)/2) > 1e-9 {
				t.Fatalf("bin %d mag %g want %g", i, mag, float64(n)/2)
			}
		} else if mag > 1e-9 {
			t.Fatalf("leak at bin %d: %g", i, mag)
		}
	}
}

func TestInverseIdentityPow2(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8, 64, 256} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		Transform(x, false)
		Transform(x, true)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d i=%d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestInverseIdentityArbitraryN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{3, 5, 6, 7, 12, 100, 1032, 360} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		Transform(x, false)
		Transform(x, true)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-7 {
				t.Fatalf("n=%d i=%d: %v vs %v", n, i, x[i], orig[i])
			}
		}
	}
}

func TestBluesteinMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 37 // prime, forces Bluestein
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := naiveDFT(x)
	got := append([]complex128(nil), x...)
	Transform(got, false)
	for i := range want {
		if cmplx.Abs(got[i]-want[i]) > 1e-8 {
			t.Fatalf("bin %d: %v vs naive %v", i, got[i], want[i])
		}
	}
}

func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			s += x[j] * cmplx.Rect(1, ang)
		}
		out[k] = s
	}
	return out
}

func TestPeriodogramPeak(t *testing.T) {
	n := 1032
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = 10 + 3*math.Sin(2*math.Pi*float64(i)/12) // period 12
	}
	p := Periodogram(sig)
	// Peak must be at frequency n/12 = 86.
	maxK, maxV := 0, 0.0
	for k, v := range p {
		if v > maxV {
			maxK, maxV = k, v
		}
	}
	if maxK != 86 {
		t.Fatalf("peak at %d, want 86", maxK)
	}
}

func TestDetectPeriodSSHLike(t *testing.T) {
	// Mirrors the paper's Fig. 8: 1032 monthly samples, annual cycle → the
	// adopted peak is frequency 86 and the period is 1032/86 = 12.
	rng := rand.New(rand.NewSource(6))
	n := 1032
	rows := make([][]float64, 10)
	for r := range rows {
		row := make([]float64, n)
		phase := rng.Float64() * 2 * math.Pi
		amp := 1 + rng.Float64()*4
		for i := range row {
			row[i] = amp*math.Sin(2*math.Pi*float64(i)/12+phase) + 0.2*rng.NormFloat64()
		}
		rows[r] = row
	}
	res := DetectPeriod(rows, 0.7, 3)
	if res.Period != 12 {
		t.Fatalf("period = %d (freq %d, strength %.1f), want 12",
			res.Period, res.Frequency, res.Strength)
	}
	if res.Frequency != 86 {
		t.Fatalf("frequency = %d, want 86", res.Frequency)
	}
}

func TestDetectPeriodHarmonics(t *testing.T) {
	// A signal with strong harmonics: fundamental must still win because the
	// detector adopts the smallest frequency above the threshold.
	n := 720
	rows := [][]float64{make([]float64, n)}
	for i := range rows[0] {
		x := 2 * math.Pi * float64(i) / 24
		rows[0][i] = math.Sin(x) + 0.9*math.Sin(2*x) + 0.8*math.Sin(3*x)
	}
	res := DetectPeriod(rows, 0.7, 3)
	if res.Period != 24 {
		t.Fatalf("period = %d, want 24 (fundamental)", res.Period)
	}
}

func TestDetectPeriodRejectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, 5)
	for r := range rows {
		row := make([]float64, 512)
		for i := range row {
			row[i] = rng.NormFloat64()
		}
		rows[r] = row
	}
	res := DetectPeriod(rows, 0.7, 8)
	if res.Period != 0 {
		t.Fatalf("noise classified as periodic: period %d strength %.1f",
			res.Period, res.Strength)
	}
}

func TestDetectPeriodDegenerateInputs(t *testing.T) {
	if res := DetectPeriod(nil, 0.7, 3); res.Period != 0 {
		t.Fatal("nil rows")
	}
	if res := DetectPeriod([][]float64{{1, 2}}, 0.7, 3); res.Period != 0 {
		t.Fatal("too-short rows")
	}
	if res := DetectPeriod([][]float64{{5, 5, 5, 5, 5, 5, 5, 5}}, 0.7, 3); res.Period != 0 {
		t.Fatal("constant signal")
	}
}

func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 2
		x := make([]complex128, n)
		var te float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			te += real(x[i]) * real(x[i])
		}
		Transform(x, false)
		var fe float64
		for _, v := range x {
			fe += real(v)*real(v) + imag(v)*imag(v)
		}
		fe /= float64(n)
		return math.Abs(te-fe) < 1e-6*math.Max(1, te)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
