package grid

import (
	"reflect"
	"testing"
)

func TestConcatBlocksAxis0MatchesLegacy(t *testing.T) {
	dims := []int{4, 4}
	src := seq(16)
	blocks := []Block{
		{Origin: []int{0, 0}, Size: []int{2, 2}},
		{Origin: []int{2, 2}, Size: []int{2, 2}},
	}
	d0, n0 := ConcatBlocks(src, dims, blocks)
	dA, nA := ConcatBlocksAxis(src, dims, blocks, 0)
	if !reflect.DeepEqual(d0, dA) || !reflect.DeepEqual(n0, nA) {
		t.Fatalf("axis-0 concat differs from legacy: %v/%v vs %v/%v", d0, n0, dA, nA)
	}
}

func TestConcatBlocksAxis1Semantics(t *testing.T) {
	// 3D blocks stacked along axis 1: out[t][b*s1+i1][i2] = block_b[t][i1][i2].
	dims := []int{2, 4, 3}
	src := seq(Volume(dims))
	blocks := []Block{
		{Origin: []int{0, 0, 0}, Size: []int{2, 2, 3}},
		{Origin: []int{0, 2, 0}, Size: []int{2, 2, 3}},
	}
	data, nd := ConcatBlocksAxis(src, dims, blocks, 1)
	if !reflect.DeepEqual(nd, []int{2, 4, 3}) {
		t.Fatalf("dims %v", nd)
	}
	// The two blocks partition the source exactly, so stacking them along
	// lat must reproduce the original array.
	if !reflect.DeepEqual(data, src) {
		t.Fatalf("data %v", data)
	}
}

func TestConcatBlocksAxis1TimeSeriesCoherent(t *testing.T) {
	// Every (lat,lon) column of the axis-1 concat must be a time series
	// from a single source block — the property the CliZ tuner relies on.
	dims := []int{6, 8, 2}
	src := make([]int, Volume(dims))
	for i := range src {
		// Encode (t, lat) into the value; lon ignored.
		t := i / 16
		lat := (i / 2) % 8
		src[i] = t*100 + lat
	}
	blocks := []Block{
		{Origin: []int{0, 0, 0}, Size: []int{4, 3, 2}},
		{Origin: []int{2, 4, 0}, Size: []int{4, 3, 2}},
	}
	data, nd := ConcatBlocksAxis(src, dims, blocks, 1)
	if !reflect.DeepEqual(nd, []int{4, 6, 2}) {
		t.Fatalf("dims %v", nd)
	}
	// For each output column, the lat part must be constant over time and
	// the time part must advance by 100 per step.
	for lat := 0; lat < 6; lat++ {
		for lon := 0; lon < 2; lon++ {
			base := data[lat*2+lon]
			for tt := 1; tt < 4; tt++ {
				got := data[(tt*6+lat)*2+lon]
				if got != base+tt*100 {
					t.Fatalf("column (%d,%d) not a coherent series: t0=%d t%d=%d",
						lat, lon, base, tt, got)
				}
			}
		}
	}
}

func TestConcatBlocksAxisEmpty(t *testing.T) {
	d, n := ConcatBlocksAxis[int](nil, []int{2, 2}, nil, 0)
	if d != nil || n != nil {
		t.Fatal("empty blocks should return nil")
	}
}
