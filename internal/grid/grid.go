// Package grid provides the N-dimensional index arithmetic used throughout
// the compressors: strides, physical transposition (dimension permutation),
// fusion (reshape of adjacent dimensions), and the block-sampling scheme of
// the CliZ auto-tuner.
package grid

import (
	"errors"
	"fmt"
	"math"

	"cliz/internal/par"
)

// ErrShape is the sentinel wrapped by every shape/permutation mismatch
// reported by this package. Decode paths hand Transpose dimensions that
// ultimately come from a blob header, so mismatches must surface as
// errors (never panics) and be classifiable with errors.Is.
var ErrShape = errors.New("grid: shape mismatch")

// Volume returns the number of points spanned by dims. Empty dims or any
// non-positive extent yields 0.
func Volume(dims []int) int {
	if len(dims) == 0 {
		return 0
	}
	v := 1
	for _, d := range dims {
		if d <= 0 {
			return 0
		}
		v *= d
	}
	return v
}

// Strides returns row-major strides for dims: strides[i] is the flat-index
// distance between neighbours along dimension i.
func Strides(dims []int) []int {
	n := len(dims)
	s := make([]int, n)
	acc := 1
	for i := n - 1; i >= 0; i-- {
		s[i] = acc
		acc *= dims[i]
	}
	return s
}

// Index converts a coordinate tuple to a flat row-major index.
func Index(coord, dims []int) int {
	idx := 0
	for i, c := range coord {
		idx = idx*dims[i] + c
	}
	return idx
}

// Coord converts a flat index to a coordinate tuple, writing into out
// (which must have len(dims)).
func Coord(idx int, dims, out []int) {
	for i := len(dims) - 1; i >= 0; i-- {
		out[i] = idx % dims[i]
		idx /= dims[i]
	}
}

// ValidPerm reports whether perm is a permutation of 0..n-1.
func ValidPerm(perm []int, n int) bool {
	if len(perm) != n {
		return false
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}

// InversePerm returns the inverse permutation of perm.
func InversePerm(perm []int) []int {
	inv := make([]int, len(perm))
	for i, p := range perm {
		inv[p] = i
	}
	return inv
}

// PermuteDims returns dims reordered so that result[i] = dims[perm[i]].
func PermuteDims(dims, perm []int) []int {
	out := make([]int, len(perm))
	for i, p := range perm {
		out[i] = dims[p]
	}
	return out
}

// Transpose physically reorders src (row-major over dims) into a new slice
// that is row-major over PermuteDims(dims, perm). Axis perm[i] of the source
// becomes axis i of the destination.
func Transpose[T any](src []T, dims, perm []int) ([]T, error) {
	return TransposeWorkers(src, dims, perm, 1)
}

// TransposeWorkers is Transpose with the destination range split across up
// to `workers` goroutines. The destination is written sequentially within
// each range, so ranges are disjoint and the result is identical for any
// worker count. A permutation that is not a bijection of the axes, or a
// src length that disagrees with dims, yields an error wrapping ErrShape.
func TransposeWorkers[T any](src []T, dims, perm []int, workers int) ([]T, error) {
	n := len(dims)
	if !ValidPerm(perm, n) {
		return nil, fmt.Errorf("grid: invalid permutation %v for %d dims: %w", perm, n, ErrShape)
	}
	vol := Volume(dims)
	if len(src) != vol {
		return nil, fmt.Errorf("grid: data length %d does not match dims %v: %w", len(src), dims, ErrShape)
	}
	dst := make([]T, vol)
	if n == 0 || vol == 0 {
		return dst, nil
	}
	outDims := PermuteDims(dims, perm)
	srcStr := Strides(dims)
	// Stride in the source corresponding to each destination axis.
	step := make([]int, n)
	for i, p := range perm {
		step[i] = srcStr[p]
	}
	// Too little data to amortize goroutine startup.
	if workers > 1 && vol < 1<<16 {
		workers = 1
	}
	if workers > vol {
		workers = vol
	}
	if workers <= 1 {
		transposeRange(dst, src, outDims, step, 0, vol)
		return dst, nil
	}
	par.Run(workers, workers, func(w int) {
		lo, hi := vol*w/workers, vol*(w+1)/workers
		transposeRange(dst, src, outDims, step, lo, hi)
	})
	return dst, nil
}

// transposeRange fills dst[lo:hi] of a transposition: destination indices are
// sequential, the source index is recovered from the starting coordinate and
// then advanced with the usual odometer.
func transposeRange[T any](dst, src []T, outDims, step []int, lo, hi int) {
	n := len(outDims)
	// Seed the odometer at destination index lo.
	coord := make([]int, n)
	rem := lo
	si := 0
	for ax := n - 1; ax >= 0; ax-- {
		coord[ax] = rem % outDims[ax]
		rem /= outDims[ax]
		si += coord[ax] * step[ax]
	}
	for di := lo; di < hi; di++ {
		dst[di] = src[si]
		// increment odometer (last destination axis fastest)
		for ax := n - 1; ax >= 0; ax-- {
			coord[ax]++
			si += step[ax]
			if coord[ax] < outDims[ax] {
				break
			}
			coord[ax] = 0
			si -= step[ax] * outDims[ax]
		}
	}
}

// Fusion describes which adjacent dimensions are merged: Groups is a
// composition of the dimension count, e.g. for 3 dims {2,1} means dims 0 and
// 1 fuse, and {3} means all three fuse. {1,1,1} is the identity.
type Fusion struct {
	Groups []int
}

// NoFusion returns the identity fusion for n dims.
func NoFusion(n int) Fusion {
	g := make([]int, n)
	for i := range g {
		g[i] = 1
	}
	return Fusion{Groups: g}
}

// Valid reports whether the fusion is a composition of n.
func (f Fusion) Valid(n int) bool {
	sum := 0
	for _, g := range f.Groups {
		if g <= 0 {
			return false
		}
		sum += g
	}
	return sum == n
}

// Apply returns the fused dimension extents: each group's dims multiply.
// Fusion is purely logical (row-major layout is unchanged), so no data
// movement happens.
func (f Fusion) Apply(dims []int) []int {
	out := make([]int, 0, len(f.Groups))
	i := 0
	for _, g := range f.Groups {
		d := 1
		for j := 0; j < g; j++ {
			d *= dims[i]
			i++
		}
		out = append(out, d)
	}
	return out
}

// String renders the fusion in the paper's "0&1" notation (post-permutation
// dimension indices), or "No" for the identity.
func (f Fusion) String() string {
	s := ""
	i := 0
	any := false
	for _, g := range f.Groups {
		if g > 1 {
			if any {
				s += ","
			}
			for j := 0; j < g; j++ {
				if j > 0 {
					s += "&"
				}
				s += fmt.Sprintf("%d", i+j)
			}
			any = true
		}
		i += g
	}
	if !any {
		return "No"
	}
	return s
}

// Compositions enumerates all 2^(n-1) compositions of n, i.e. every way to
// fuse adjacent dimensions. The identity composition comes first.
func Compositions(n int) []Fusion {
	if n <= 0 {
		return nil
	}
	var out []Fusion
	// Each of the n-1 gaps is either a split (bit 0) or a merge (bit 1).
	for massk := 0; massk < 1<<(n-1); massk++ {
		groups := []int{1}
		for gap := 0; gap < n-1; gap++ {
			if massk&(1<<gap) != 0 {
				groups[len(groups)-1]++
			} else {
				groups = append(groups, 1)
			}
		}
		out = append(out, Fusion{Groups: groups})
	}
	// Put identity first for readability.
	for i, f := range out {
		if len(f.Groups) == n {
			out[0], out[i] = out[i], out[0]
			break
		}
	}
	return out
}

// Permutations enumerates all permutations of 0..n-1 in lexicographic order.
func Permutations(n int) [][]int {
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	var out [][]int
	var rec func(prefix []int, rest []int)
	rec = func(prefix, rest []int) {
		if len(rest) == 0 {
			cp := make([]int, len(prefix))
			copy(cp, prefix)
			out = append(out, cp)
			return
		}
		for i := range rest {
			nr := make([]int, 0, len(rest)-1)
			nr = append(nr, rest[:i]...)
			nr = append(nr, rest[i+1:]...)
			rec(append(prefix, rest[i]), nr)
		}
	}
	rec(nil, base)
	return out
}

// PermString renders a permutation in the paper's compact "201" style.
func PermString(perm []int) string {
	s := ""
	for _, p := range perm {
		s += fmt.Sprintf("%d", p)
	}
	return s
}

// Block describes an axis-aligned sub-box of a grid.
type Block struct {
	Origin []int
	Size   []int
}

// Extract copies the block from src (row-major over dims) into a dense
// row-major slice of the block's size.
func Extract[T any](src []T, dims []int, b Block) []T {
	n := len(dims)
	vol := Volume(b.Size)
	dst := make([]T, vol)
	if vol == 0 {
		return dst
	}
	str := Strides(dims)
	coord := make([]int, n)
	base := 0
	for i := 0; i < n; i++ {
		base += b.Origin[i] * str[i]
	}
	si := base
	for di := 0; di < vol; di++ {
		dst[di] = src[si]
		for ax := n - 1; ax >= 0; ax-- {
			coord[ax]++
			si += str[ax]
			if coord[ax] < b.Size[ax] {
				break
			}
			coord[ax] = 0
			si -= str[ax] * b.Size[ax]
		}
	}
	return dst
}

// SampleBlocks implements the CliZ auto-tuning sampling strategy (paper
// §VI-A): 2^n blocks centred at 1/3 and 2/3 along every dimension, each side
// about (1/2)·rate^(1/n) of the corresponding full side. Blocks are clamped
// to at least minSide points per side (bounded by the dimension itself).
func SampleBlocks(dims []int, rate float64, minSide int) []Block {
	n := len(dims)
	if n == 0 || rate <= 0 {
		return nil
	}
	if rate > 1 {
		rate = 1
	}
	frac := 0.5 * pow(rate, 1.0/float64(n))
	sz := make([]int, n)
	for i, d := range dims {
		s := int(frac * float64(d))
		if s < minSide {
			s = minSide
		}
		if s > d/2 { // two blocks per axis must not overlap the same centre region badly
			s = d / 2
		}
		if s < 1 {
			s = 1
		}
		sz[i] = s
	}
	var blocks []Block
	for mask := 0; mask < 1<<n; mask++ {
		org := make([]int, n)
		for i, d := range dims {
			var centre int
			if mask&(1<<i) == 0 {
				centre = d / 3
			} else {
				centre = 2 * d / 3
			}
			o := centre - sz[i]/2
			if o < 0 {
				o = 0
			}
			if o+sz[i] > d {
				o = d - sz[i]
			}
			org[i] = o
		}
		blocks = append(blocks, Block{Origin: org, Size: append([]int(nil), sz...)})
	}
	return blocks
}

// ConcatBlocks extracts every block and concatenates them along dimension 0,
// returning the stacked data and its dims. All blocks must share Size (which
// SampleBlocks guarantees).
func ConcatBlocks[T any](src []T, dims []int, blocks []Block) ([]T, []int) {
	return ConcatBlocksAxis(src, dims, blocks, 0)
}

// ConcatBlocksAxis concatenates the blocks along the given axis. The CliZ
// tuner stacks periodic datasets along a spatial axis so that each time
// series in the sample stays a coherent series from a single block (stacking
// along time would interleave different geographic regions into one series
// and destroy the periodicity signal).
func ConcatBlocksAxis[T any](src []T, dims []int, blocks []Block, axis int) ([]T, []int) {
	if len(blocks) == 0 {
		return nil, nil
	}
	size := blocks[0].Size
	per := Volume(size)
	nb := len(blocks)
	out := make([]T, per*nb)
	// outer = product of dims before axis; inner = product from axis on.
	inner := 1
	for i := axis; i < len(size); i++ {
		inner *= size[i]
	}
	outer := per / inner
	for bi, b := range blocks {
		blk := Extract(src, dims, b)
		for o := 0; o < outer; o++ {
			dst := (o*nb + bi) * inner
			copy(out[dst:dst+inner], blk[o*inner:(o+1)*inner])
		}
	}
	nd := append([]int(nil), size...)
	nd[axis] *= nb
	return out, nd
}

func pow(x, y float64) float64 { return math.Pow(x, y) }
