package grid

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVolumeAndStrides(t *testing.T) {
	if v := Volume([]int{3, 4, 5}); v != 60 {
		t.Fatalf("Volume = %d", v)
	}
	if v := Volume(nil); v != 0 {
		t.Fatalf("Volume(nil) = %d", v)
	}
	if v := Volume([]int{3, 0}); v != 0 {
		t.Fatalf("Volume zero-dim = %d", v)
	}
	s := Strides([]int{3, 4, 5})
	if !reflect.DeepEqual(s, []int{20, 5, 1}) {
		t.Fatalf("Strides = %v", s)
	}
}

func TestIndexCoordInverse(t *testing.T) {
	dims := []int{3, 4, 5}
	out := make([]int, 3)
	for idx := 0; idx < Volume(dims); idx++ {
		Coord(idx, dims, out)
		if got := Index(out, dims); got != idx {
			t.Fatalf("Index(Coord(%d)) = %d", idx, got)
		}
	}
}

func mustTranspose[T any](t *testing.T, src []T, dims, perm []int) []T {
	t.Helper()
	dst, err := Transpose(src, dims, perm)
	if err != nil {
		t.Fatalf("Transpose(%v, %v): %v", dims, perm, err)
	}
	return dst
}

func TestTransposeIdentity(t *testing.T) {
	dims := []int{2, 3, 4}
	src := seq(Volume(dims))
	dst := mustTranspose(t, src, dims, []int{0, 1, 2})
	if !reflect.DeepEqual(src, dst) {
		t.Fatal("identity transpose changed data")
	}
}

func TestTranspose2D(t *testing.T) {
	// 2x3 matrix [[0,1,2],[3,4,5]] transposed -> 3x2 [[0,3],[1,4],[2,5]]
	src := []int{0, 1, 2, 3, 4, 5}
	dst := mustTranspose(t, src, []int{2, 3}, []int{1, 0})
	want := []int{0, 3, 1, 4, 2, 5}
	if !reflect.DeepEqual(dst, want) {
		t.Fatalf("got %v want %v", dst, want)
	}
}

func TestTransposeInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3) + 1
		dims := make([]int, n)
		for i := range dims {
			dims[i] = rng.Intn(6) + 1
		}
		perms := Permutations(n)
		perm := perms[rng.Intn(len(perms))]
		src := make([]float32, Volume(dims))
		for i := range src {
			src[i] = rng.Float32()
		}
		tr, err := Transpose(src, dims, perm)
		if err != nil {
			return false
		}
		back, err := Transpose(tr, PermuteDims(dims, perm), InversePerm(perm))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(src, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTransposeSemantics(t *testing.T) {
	dims := []int{2, 3, 4}
	src := seq(Volume(dims))
	perm := []int{2, 0, 1} // dst axis 0 = src axis 2, etc.
	dst := mustTranspose(t, src, dims, perm)
	outDims := PermuteDims(dims, perm)
	if !reflect.DeepEqual(outDims, []int{4, 2, 3}) {
		t.Fatalf("outDims = %v", outDims)
	}
	co := make([]int, 3)
	for di := range dst {
		Coord(di, outDims, co)
		// src coord: srcCoord[perm[i]] = co[i]
		sc := make([]int, 3)
		for i, p := range perm {
			sc[p] = co[i]
		}
		if dst[di] != src[Index(sc, dims)] {
			t.Fatalf("mismatch at %v", co)
		}
	}
}

// TestTransposeHostileShapes feeds the inputs that used to panic — an
// invalid permutation and a src length that disagrees with dims, both of
// which a hostile blob header can produce on the decode path — and
// checks they now come back as ErrShape-wrapping errors.
func TestTransposeHostileShapes(t *testing.T) {
	src := seq(6)
	cases := []struct {
		name string
		dims []int
		perm []int
	}{
		{"dup-perm", []int{2, 3}, []int{0, 0}},
		{"short-perm", []int{2, 3}, []int{0}},
		{"out-of-range-perm", []int{2, 3}, []int{0, 2}},
		{"length-mismatch", []int{2, 4}, []int{0, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				dst, err := TransposeWorkers(src, tc.dims, tc.perm, workers)
				if err == nil {
					t.Fatalf("workers=%d: no error", workers)
				}
				if !errors.Is(err, ErrShape) {
					t.Fatalf("workers=%d: err=%v, want errors.Is(err, ErrShape)", workers, err)
				}
				if dst != nil {
					t.Fatalf("workers=%d: non-nil result %v on error", workers, dst)
				}
			}
		})
	}
}

func TestInversePerm(t *testing.T) {
	p := []int{2, 0, 1}
	inv := InversePerm(p)
	if !reflect.DeepEqual(inv, []int{1, 2, 0}) {
		t.Fatalf("inv = %v", inv)
	}
}

func TestValidPerm(t *testing.T) {
	if !ValidPerm([]int{1, 0, 2}, 3) {
		t.Fatal("valid perm rejected")
	}
	if ValidPerm([]int{0, 0, 2}, 3) {
		t.Fatal("dup accepted")
	}
	if ValidPerm([]int{0, 1}, 3) {
		t.Fatal("short accepted")
	}
	if ValidPerm([]int{0, 1, 3}, 3) {
		t.Fatal("out of range accepted")
	}
}

func TestPermutations(t *testing.T) {
	p3 := Permutations(3)
	if len(p3) != 6 {
		t.Fatalf("len = %d", len(p3))
	}
	seen := map[string]bool{}
	for _, p := range p3 {
		seen[PermString(p)] = true
	}
	if len(seen) != 6 {
		t.Fatalf("duplicates: %v", seen)
	}
	if !seen["012"] || !seen["210"] {
		t.Fatal("expected perms missing")
	}
}

func TestCompositions(t *testing.T) {
	c3 := Compositions(3)
	if len(c3) != 4 {
		t.Fatalf("3 dims should have 4 fusions, got %d", len(c3))
	}
	names := map[string]bool{}
	for _, f := range c3 {
		if !f.Valid(3) {
			t.Fatalf("invalid composition %v", f.Groups)
		}
		names[f.String()] = true
	}
	for _, want := range []string{"No", "0&1", "1&2", "0&1&2"} {
		if !names[want] {
			t.Fatalf("missing fusion %q in %v", want, names)
		}
	}
	if names["No"] != true || c3[0].String() != "No" {
		t.Fatal("identity should come first")
	}
}

func TestFusionApply(t *testing.T) {
	f := Fusion{Groups: []int{2, 1}}
	got := f.Apply([]int{3, 4, 5})
	if !reflect.DeepEqual(got, []int{12, 5}) {
		t.Fatalf("Apply = %v", got)
	}
	all := Fusion{Groups: []int{3}}
	if !reflect.DeepEqual(all.Apply([]int{3, 4, 5}), []int{60}) {
		t.Fatal("full fusion wrong")
	}
}

func TestExtractBlock(t *testing.T) {
	dims := []int{4, 5}
	src := seq(20)
	b := Block{Origin: []int{1, 2}, Size: []int{2, 3}}
	got := Extract(src, dims, b)
	want := []int{7, 8, 9, 12, 13, 14}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Extract = %v want %v", got, want)
	}
}

func TestSampleBlocksCountAndBounds(t *testing.T) {
	dims := []int{100, 80, 60}
	blocks := SampleBlocks(dims, 0.01, 2)
	if len(blocks) != 8 {
		t.Fatalf("3D should give 2^3 blocks, got %d", len(blocks))
	}
	for _, b := range blocks {
		for i := range dims {
			if b.Origin[i] < 0 || b.Origin[i]+b.Size[i] > dims[i] {
				t.Fatalf("block out of bounds: %+v dims %v", b, dims)
			}
			if b.Size[i] < 1 {
				t.Fatalf("degenerate block %+v", b)
			}
		}
	}
}

func TestSampleBlocksRateScaling(t *testing.T) {
	dims := []int{512, 512}
	small := SampleBlocks(dims, 0.001, 1)
	large := SampleBlocks(dims, 0.1, 1)
	if Volume(small[0].Size) >= Volume(large[0].Size) {
		t.Fatalf("higher rate should give bigger blocks: %v vs %v",
			small[0].Size, large[0].Size)
	}
	// At rate r with n dims: side ~ 0.5*r^(1/n); total volume of 2^n blocks
	// ~ 2^n * (0.5 r^(1/n))^n * V = r/2^n * 2^n * ... ≈ r·V/2^... just check order.
	totalSmall := 0
	for _, b := range small {
		totalSmall += Volume(b.Size)
	}
	frac := float64(totalSmall) / float64(Volume(dims))
	if frac > 0.01 {
		t.Fatalf("0.1%% sampling used %.3f%% of data", frac*100)
	}
}

func TestConcatBlocks(t *testing.T) {
	dims := []int{4, 4}
	src := seq(16)
	blocks := []Block{
		{Origin: []int{0, 0}, Size: []int{2, 2}},
		{Origin: []int{2, 2}, Size: []int{2, 2}},
	}
	data, nd := ConcatBlocks(src, dims, blocks)
	if !reflect.DeepEqual(nd, []int{4, 2}) {
		t.Fatalf("dims = %v", nd)
	}
	want := []int{0, 1, 4, 5, 10, 11, 14, 15}
	if !reflect.DeepEqual(data, want) {
		t.Fatalf("data = %v want %v", data, want)
	}
}

func TestPermString(t *testing.T) {
	if s := PermString([]int{2, 0, 1}); s != "201" {
		t.Fatalf("got %q", s)
	}
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}
