package grid

// Layout describes how a logical row-major traversal space maps onto a
// physical buffer: logical extents, one physical stride per logical axis,
// and the physical index of the logical origin. The prediction engines
// traverse logical space (which fixes the bin/literal order) while reading
// and writing values through the layout, so a dimension permutation can be
// applied without materializing a transposed copy.
type Layout struct {
	// Dims are the logical extents, all positive.
	Dims []int
	// Strides are the physical strides per logical axis, all positive.
	Strides []int
	// Base is the physical index of the logical origin.
	Base int
}

// IdentityLayout returns the layout under which logical and physical
// indices coincide: row-major strides over dims with a zero base.
func IdentityLayout(dims []int) Layout {
	return Layout{Dims: dims, Strides: Strides(dims), Base: 0}
}

// Valid reports whether the layout is internally consistent: at least one
// axis, matching Dims/Strides lengths, positive extents and strides, and a
// non-negative base. Engines call this before trusting header-derived
// layouts.
func (l Layout) Valid() bool {
	if len(l.Dims) == 0 || len(l.Dims) != len(l.Strides) || l.Base < 0 {
		return false
	}
	for i, d := range l.Dims {
		if d <= 0 || l.Strides[i] <= 0 {
			return false
		}
	}
	return true
}

// MaxIndex returns the largest physical index the layout touches. The
// caller's buffer must satisfy len(buf) > MaxIndex().
func (l Layout) MaxIndex() int {
	m := l.Base
	for i, d := range l.Dims {
		m += (d - 1) * l.Strides[i]
	}
	return m
}

// Section restricts the layout to rows [lo, hi) of its leading logical
// axis: the same strides over a shorter axis 0, with the base advanced to
// row lo. Sectioned parallel prediction slices the logical space this way
// while every section shares one physical buffer.
func (l Layout) Section(lo, hi int) Layout {
	dims := append([]int{hi - lo}, l.Dims[1:]...)
	return Layout{Dims: dims, Strides: l.Strides, Base: l.Base + lo*l.Strides[0]}
}

// FusedLayout computes the layout that views a row-major array of origDims
// through permutation perm followed by fusion f, without materializing the
// transpose: Dims are the fused post-permutation extents and Strides the
// corresponding physical strides into the ORIGINAL array.
//
// A fused axis only has a single physical stride when its merged
// sub-axes are physically contiguous under the permutation: for each
// adjacent pair inside a group, stride[j] == stride[j+1]·dims[j+1] must
// hold in the permuted view. When a group violates that (the permutation
// separated axes that the fusion then merges), ok is false and the caller
// must fall back to a materialized transpose.
func FusedLayout(origDims, perm []int, f Fusion) (Layout, bool) {
	n := len(origDims)
	if !ValidPerm(perm, n) || !f.Valid(n) || Volume(origDims) == 0 {
		return Layout{}, false
	}
	tdims := PermuteDims(origDims, perm)
	ostr := Strides(origDims)
	pstr := make([]int, n)
	for i, p := range perm {
		pstr[i] = ostr[p]
	}
	dims := make([]int, 0, len(f.Groups))
	strides := make([]int, 0, len(f.Groups))
	i := 0
	for _, g := range f.Groups {
		ext := tdims[i]
		for j := 1; j < g; j++ {
			if pstr[i+j-1] != pstr[i+j]*tdims[i+j] {
				return Layout{}, false
			}
			ext *= tdims[i+j]
		}
		dims = append(dims, ext)
		strides = append(strides, pstr[i+g-1])
		i += g
	}
	return Layout{Dims: dims, Strides: strides}, true
}
