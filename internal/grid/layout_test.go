package grid

import (
	"math/rand"
	"testing"
)

func TestIdentityLayout(t *testing.T) {
	dims := []int{3, 4, 5}
	l := IdentityLayout(dims)
	if !l.Valid() {
		t.Fatalf("identity layout invalid: %+v", l)
	}
	if l.Base != 0 || l.MaxIndex() != Volume(dims)-1 {
		t.Fatalf("identity layout geometry wrong: base=%d max=%d", l.Base, l.MaxIndex())
	}
}

func TestLayoutSection(t *testing.T) {
	l := IdentityLayout([]int{6, 4})
	s := l.Section(2, 5)
	if s.Dims[0] != 3 || s.Base != 2*4 || s.MaxIndex() != 4*4+3 {
		t.Fatalf("section geometry wrong: %+v max=%d", s, s.MaxIndex())
	}
}

func TestFusedLayoutNonContiguous(t *testing.T) {
	// perm 102 separates axes 0 and 1 physically; fusing them afterwards
	// cannot be expressed with a single stride.
	_, ok := FusedLayout([]int{2, 3, 4}, []int{1, 0, 2}, Fusion{Groups: []int{2, 1}})
	if ok {
		t.Fatal("expected fallback for non-contiguous fusion")
	}
}

func TestFusedLayoutRejectsBadInputs(t *testing.T) {
	if _, ok := FusedLayout([]int{2, 3}, []int{0, 0}, NoFusion(2)); ok {
		t.Fatal("accepted invalid permutation")
	}
	if _, ok := FusedLayout([]int{2, 0}, []int{0, 1}, NoFusion(2)); ok {
		t.Fatal("accepted empty volume")
	}
	if _, ok := FusedLayout([]int{2, 3}, []int{0, 1}, Fusion{Groups: []int{3}}); ok {
		t.Fatal("accepted fusion that is not a composition")
	}
}

// TestFusedLayoutMatchesTranspose checks the defining property: reading the
// original buffer through a fused layout yields exactly the values of the
// materialized transpose, in logical row-major order.
func TestFusedLayoutMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][]int{{7}, {4, 5}, {3, 4, 5}, {2, 3, 4, 3}}
	for _, dims := range shapes {
		n := len(dims)
		src := make([]int, Volume(dims))
		for i := range src {
			src[i] = rng.Int()
		}
		for _, perm := range Permutations(n) {
			tdims := PermuteDims(dims, perm)
			trans, err := Transpose(src, dims, perm)
			if err != nil {
				t.Fatal(err)
			}
			for _, f := range Compositions(n) {
				lay, ok := FusedLayout(dims, perm, f)
				if !ok {
					continue
				}
				fdims := f.Apply(tdims)
				if Volume(lay.Dims) != Volume(fdims) {
					t.Fatalf("dims=%v perm=%v fuse=%v: fused volume mismatch", dims, perm, f)
				}
				if lay.MaxIndex() >= len(src) {
					t.Fatalf("dims=%v perm=%v fuse=%v: max index %d out of range", dims, perm, f, lay.MaxIndex())
				}
				coord := make([]int, len(lay.Dims))
				for li := 0; li < Volume(lay.Dims); li++ {
					pi := lay.Base
					for ax, c := range coord {
						pi += c * lay.Strides[ax]
					}
					if src[pi] != trans[li] {
						t.Fatalf("dims=%v perm=%v fuse=%v: logical %d maps to phys %d: got %d want %d",
							dims, perm, f, li, pi, src[pi], trans[li])
					}
					for ax := len(coord) - 1; ax >= 0; ax-- {
						coord[ax]++
						if coord[ax] < lay.Dims[ax] {
							break
						}
						coord[ax] = 0
					}
				}
			}
		}
	}
}

// TestFusedLayoutIdentityAlwaysOk pins that the default pipeline (identity
// permutation, no fusion) always takes the fused path: its layout is the
// identity layout.
func TestFusedLayoutIdentityAlwaysOk(t *testing.T) {
	dims := []int{5, 6, 7}
	perm := []int{0, 1, 2}
	lay, ok := FusedLayout(dims, perm, NoFusion(3))
	if !ok {
		t.Fatal("identity pipeline must be fusable")
	}
	id := IdentityLayout(dims)
	for i := range lay.Strides {
		if lay.Strides[i] != id.Strides[i] || lay.Dims[i] != id.Dims[i] {
			t.Fatalf("identity fused layout differs: %+v vs %+v", lay, id)
		}
	}
}
