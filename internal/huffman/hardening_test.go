package huffman

import (
	"errors"
	"testing"
)

// TestParseTableHugeDeclaredCount feeds ParseTable a header declaring
// far more entries than the payload could hold. Each entry costs at
// least two bytes, so the count must be rejected before the symbol map
// is sized — returning ErrCorrupt, not allocating gigabytes.
func TestParseTableHugeDeclaredCount(t *testing.T) {
	blob := appendUvarint(nil, 1<<40)
	blob = append(blob, 0x01, 0x05) // a lone (delta, length) pair
	_, _, err := ParseTable(blob)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge table count: want ErrCorrupt, got %v", err)
	}
}

// TestDecodeBlockMaxBudget pins the caller-supplied symbol budget on
// the block decoder: counts beyond the budget are corrupt, and the
// sentinel -1 (no caller budget) still applies the payload-length cap.
func TestDecodeBlockMaxBudget(t *testing.T) {
	syms := []uint32{4, 4, 9, 4, 9, 2, 4, 4}
	blob := EncodeBlock(syms)
	if _, _, err := DecodeBlockMax(blob, len(syms)); err != nil {
		t.Fatalf("exact budget rejected: %v", err)
	}
	if _, _, err := DecodeBlockMax(blob, -1); err != nil {
		t.Fatalf("unbounded budget rejected: %v", err)
	}
	_, _, err := DecodeBlockMax(blob, len(syms)-1)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("over-budget block: want ErrCorrupt, got %v", err)
	}
}
