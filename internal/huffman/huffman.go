// Package huffman implements a canonical, length-limited Huffman coder over
// dense uint32 symbol alphabets, with a compact serializable table format.
// It is the entropy stage of every prediction-based codec in this repository
// and supports the multi-tree encoding used by CliZ's quantization-bin
// classification (paper §VI-E): each classified group simply gets its own
// Codec instance and bitstream.
package huffman

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"sync"

	"cliz/internal/bitio"
)

// MaxCodeLen is the longest admissible code. 58 keeps any code plus slack
// within a single 64-bit read.
const MaxCodeLen = 58

// ErrCorrupt is returned when a serialized table or bitstream is malformed.
var ErrCorrupt = errors.New("huffman: corrupt table or stream")

// Codec holds canonical codes for one alphabet.
type Codec struct {
	// symbol -> (code, length); length 0 means symbol absent.
	codes map[uint32]code
	// canonical decode tables
	maxLen     uint
	firstCode  []uint64 // first canonical code value of each length
	firstIdx   []int    // index into symsByCode of the first code of each length
	counts     []int    // number of codes of each length
	symsByCode []uint32 // symbols sorted by (length, code)
	// decode-only LUT over the next lutBits of the stream; built lazily on
	// first DecodeInto, shared safely by concurrent shard decoders.
	lutOnce sync.Once
	lut     []lutEntry
}

// lutBits is the window width of the single-level decode table. Quantizer
// bin codes are short (the bulk of the mass sits within a few bits of the
// entropy), so an 11-bit window resolves almost every symbol in one lookup
// while the 2^11-entry table still fits comfortably in L1.
const lutBits = 11

// lutEntry resolves one lutBits-wide bit window to the symbol whose code is
// a prefix of it. n is the code length to consume; n == 0 means no code of
// length <= lutBits matches and the decoder must take the canonical
// bit-by-bit path.
type lutEntry struct {
	sym uint32
	n   uint8
}

// buildLUT fills the fast-path table: every code of length <= lutBits owns
// the 2^(lutBits-len) windows it prefixes. Codes are prefix-free, so the
// ranges never overlap; windows left zero fall through to DecodeOne.
func (c *Codec) buildLUT() {
	if len(c.symsByCode) == 0 {
		return
	}
	lut := make([]lutEntry, 1<<lutBits)
	maxL := c.maxLen
	if maxL > lutBits {
		maxL = lutBits
	}
	for l := uint(1); l <= maxL; l++ {
		for k := 0; k < c.counts[l]; k++ {
			codeVal := c.firstCode[l] + uint64(k)
			sym := c.symsByCode[c.firstIdx[l]+k]
			span := 1 << (lutBits - l)
			base := int(codeVal) * span
			for w := base; w < base+span; w++ {
				lut[w] = lutEntry{sym: sym, n: uint8(l)}
			}
		}
	}
	c.lut = lut
}

type code struct {
	bits uint64
	len  uint
}

// CountFreqs tallies symbol frequencies.
func CountFreqs(symbols []uint32) map[uint32]uint64 {
	f := make(map[uint32]uint64)
	for _, s := range symbols {
		f[s]++
	}
	return f
}

type hnode struct {
	freq  uint64
	depth int // prefer shallow trees on frequency ties
	seq   int // creation order: the final, total-order tie-break
	sym   uint32
	leaf  bool
	l, r  *hnode
}

type hheap []*hnode

func (h hheap) Len() int { return len(h) }

// Less is a strict total order (seq is unique), which makes the heap's pop
// sequence — and therefore the tree shape and every code length — fully
// deterministic regardless of map iteration order.
func (h hheap) Less(i, j int) bool {
	if h[i].freq != h[j].freq {
		return h[i].freq < h[j].freq
	}
	if h[i].depth != h[j].depth {
		return h[i].depth < h[j].depth
	}
	return h[i].seq < h[j].seq
}
func (h hheap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *hheap) Push(x any)   { *h = append(*h, x.(*hnode)) }
func (h *hheap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Build constructs a canonical length-limited codec from frequencies.
// Frequencies of zero are ignored. An empty alphabet yields a codec that can
// encode nothing; a single-symbol alphabet gets a 1-bit code.
func Build(freqs map[uint32]uint64) *Codec {
	lens := buildLengths(freqs)
	return fromLengths(lens)
}

// buildLengths computes code lengths, rebuilding with damped frequencies if
// the tree exceeds MaxCodeLen (a simple, rarely-triggered limiter).
func buildLengths(freqs map[uint32]uint64) map[uint32]uint {
	f := make(map[uint32]uint64, len(freqs))
	for s, c := range freqs {
		if c > 0 {
			f[s] = c
		}
	}
	for {
		lens := huffLengths(f)
		maxL := uint(0)
		for _, l := range lens {
			if l > maxL {
				maxL = l
			}
		}
		if maxL <= MaxCodeLen {
			return lens
		}
		// Damp the skew and retry.
		for s, c := range f {
			f[s] = c/2 + 1
		}
	}
}

func huffLengths(freqs map[uint32]uint64) map[uint32]uint {
	lens := make(map[uint32]uint, len(freqs))
	switch len(freqs) {
	case 0:
		return lens
	case 1:
		for s := range freqs {
			lens[s] = 1
		}
		return lens
	}
	syms := make([]uint32, 0, len(freqs))
	for s := range freqs {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	h := make(hheap, 0, len(freqs))
	seq := 0
	for _, s := range syms {
		h = append(h, &hnode{freq: freqs[s], seq: seq, sym: s, leaf: true})
		seq++
	}
	heap.Init(&h)
	for h.Len() > 1 {
		a := heap.Pop(&h).(*hnode)
		b := heap.Pop(&h).(*hnode)
		d := a.depth
		if b.depth > d {
			d = b.depth
		}
		heap.Push(&h, &hnode{freq: a.freq + b.freq, depth: d + 1, seq: seq, l: a, r: b})
		seq++
	}
	root := h[0]
	var walk func(n *hnode, d uint)
	walk = func(n *hnode, d uint) {
		if n.leaf {
			if d == 0 {
				d = 1
			}
			lens[n.sym] = d
			return
		}
		walk(n.l, d+1)
		walk(n.r, d+1)
	}
	walk(root, 0)
	return lens
}

// fromLengths assigns canonical codes given lengths.
func fromLengths(lens map[uint32]uint) *Codec {
	c := &Codec{codes: make(map[uint32]code, len(lens))}
	if len(lens) == 0 {
		return c
	}
	type sl struct {
		sym uint32
		l   uint
	}
	order := make([]sl, 0, len(lens))
	maxL := uint(0)
	for s, l := range lens {
		order = append(order, sl{s, l})
		if l > maxL {
			maxL = l
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].l != order[j].l {
			return order[i].l < order[j].l
		}
		return order[i].sym < order[j].sym
	})
	c.maxLen = maxL
	c.counts = make([]int, maxL+1)
	for _, e := range order {
		c.counts[e.l]++
	}
	c.firstCode = make([]uint64, maxL+2)
	c.firstIdx = make([]int, maxL+2)
	codeVal := uint64(0)
	idx := 0
	for l := uint(1); l <= maxL; l++ {
		c.firstCode[l] = codeVal
		c.firstIdx[l] = idx
		codeVal += uint64(c.counts[l])
		idx += c.counts[l]
		codeVal <<= 1
	}
	c.symsByCode = make([]uint32, len(order))
	nextCode := make([]uint64, maxL+1)
	nextIdx := make([]int, maxL+1)
	for l := uint(1); l <= maxL; l++ {
		nextCode[l] = c.firstCode[l]
		nextIdx[l] = c.firstIdx[l]
	}
	for _, e := range order {
		c.codes[e.sym] = code{bits: nextCode[e.l], len: e.l}
		c.symsByCode[nextIdx[e.l]] = e.sym
		nextCode[e.l]++
		nextIdx[e.l]++
	}
	return c
}

// Encode appends the codes for symbols to w. Unknown symbols are an error.
func (c *Codec) Encode(symbols []uint32, w *bitio.Writer) error {
	for _, s := range symbols {
		cd, ok := c.codes[s]
		if !ok {
			return fmt.Errorf("huffman: symbol %d not in alphabet", s)
		}
		w.WriteBits(cd.bits, cd.len)
	}
	return nil
}

// DecodeOne reads one symbol from r.
func (c *Codec) DecodeOne(r *bitio.Reader) (uint32, error) {
	if len(c.symsByCode) == 0 {
		return 0, ErrCorrupt
	}
	var v uint64
	for l := uint(1); l <= c.maxLen; l++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
		n := c.counts[l]
		if n == 0 {
			continue
		}
		first := c.firstCode[l]
		if v >= first && v < first+uint64(n) {
			return c.symsByCode[c.firstIdx[l]+int(v-first)], nil
		}
	}
	return 0, ErrCorrupt
}

// Decode reads n symbols from r.
func (c *Codec) Decode(n int, r *bitio.Reader) ([]uint32, error) {
	out := make([]uint32, n)
	if err := c.DecodeInto(out, r); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto fills dst with len(dst) symbols read from r. Beyond the LUT
// itself (built once per codec), it allocates nothing, so parallel shard
// decoders can decode straight into disjoint windows of one shared output
// slice. Symbols whose code fits the LUT window resolve in one peek; longer
// codes — and windows truncated by end of stream, where a LUT hit could be
// an artifact of zero padding — fall back to the canonical walk, which
// keeps the exact error behavior of DecodeOne.
func (c *Codec) DecodeInto(dst []uint32, r *bitio.Reader) error {
	c.lutOnce.Do(c.buildLUT)
	lut := c.lut
	if lut == nil {
		// Empty alphabet: DecodeOne supplies the canonical error.
		for i := range dst {
			s, err := c.DecodeOne(r)
			if err != nil {
				return err
			}
			dst[i] = s
		}
		return nil
	}
	// Batched window decode: peek up to 56 bits once, resolve as many
	// symbols as fit from the local word, consume their total in one call.
	// This amortizes the reader round-trip over several symbols — the LUT
	// hit itself is a shift, a mask, and one table load.
	const window = 56
	i := 0
	for i < len(dst) {
		v, avail := r.Peek(window)
		used := uint(0)
		for i < len(dst) && used+lutBits <= window {
			e := lut[(v>>(window-lutBits-used))&(1<<lutBits-1)]
			// avail < window near end of stream, where a hit may be an
			// artifact of zero padding — only lengths covered by real
			// bits count.
			if e.n == 0 || used+uint(e.n) > avail {
				break
			}
			dst[i] = e.sym
			used += uint(e.n)
			i++
		}
		if used > 0 {
			if err := r.Consume(used); err != nil {
				return err
			}
			continue
		}
		// LUT miss (code longer than lutBits) or window too short: the
		// canonical walk keeps the exact error behavior of DecodeOne.
		s, err := c.DecodeOne(r)
		if err != nil {
			return err
		}
		dst[i] = s
		i++
	}
	return nil
}

// Alphabet returns the number of distinct symbols.
func (c *Codec) Alphabet() int { return len(c.codes) }

// CodeLen returns the code length for sym (0 if absent). Useful for cost
// estimation without encoding.
func (c *Codec) CodeLen(sym uint32) uint {
	return c.codes[sym].len
}

// SerializeTable appends a compact description of the code table to dst:
// varint count, then per symbol (sorted) varint delta-encoded symbol value
// and a byte length.
func (c *Codec) SerializeTable(dst []byte) []byte {
	syms := make([]uint32, 0, len(c.codes))
	for s := range c.codes {
		syms = append(syms, s)
	}
	sort.Slice(syms, func(i, j int) bool { return syms[i] < syms[j] })
	dst = appendUvarint(dst, uint64(len(syms)))
	prev := uint32(0)
	for i, s := range syms {
		d := uint64(s)
		if i > 0 {
			d = uint64(s - prev) // strictly increasing
		}
		prev = s
		dst = appendUvarint(dst, d)
		dst = append(dst, byte(c.codes[s].len))
	}
	return dst
}

// ParseTable reads a table serialized by SerializeTable and returns the
// codec plus the number of bytes consumed.
func ParseTable(src []byte) (*Codec, int, error) {
	n, sz := uvarint(src)
	if sz <= 0 {
		return nil, 0, ErrCorrupt
	}
	// Every table entry costs at least 2 bytes (delta varint + length
	// byte), so a declared count beyond len(src)/2 cannot be backed by
	// payload; reject it before sizing the map.
	if n > uint64(len(src))/2 {
		return nil, 0, ErrCorrupt
	}
	pos := sz
	lens := make(map[uint32]uint, n)
	var cur uint32
	for i := uint64(0); i < n; i++ {
		d, sz := uvarint(src[pos:])
		if sz <= 0 || pos+sz >= len(src)+1 {
			return nil, 0, ErrCorrupt
		}
		pos += sz
		if pos >= len(src) {
			return nil, 0, ErrCorrupt
		}
		l := uint(src[pos])
		pos++
		if l == 0 || l > MaxCodeLen {
			return nil, 0, ErrCorrupt
		}
		if i == 0 {
			cur = uint32(d)
		} else {
			cur += uint32(d)
		}
		lens[cur] = l
	}
	return fromLengths(lens), pos, nil
}

func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func uvarint(src []byte) (uint64, int) {
	var v uint64
	var shift uint
	for i, b := range src {
		if i > 9 {
			return 0, -1
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, i + 1
		}
		shift += 7
	}
	return 0, -1
}

// EncodeBlock is a convenience helper: builds a codec from the symbols,
// serializes table + varint count + padded bitstream into one self-contained
// byte block.
func EncodeBlock(symbols []uint32) []byte {
	c := Build(CountFreqs(symbols))
	out := c.SerializeTable(nil)
	out = appendUvarint(out, uint64(len(symbols)))
	w := bitio.NewWriter(len(symbols) / 2)
	_ = c.Encode(symbols, w) // cannot fail: codec built from these symbols
	bits := w.Bytes()
	out = appendUvarint(out, uint64(len(bits)))
	return append(out, bits...)
}

// DecodeBlock reverses EncodeBlock, returning the symbols and bytes consumed.
func DecodeBlock(src []byte) ([]uint32, int, error) {
	return DecodeBlockMax(src, -1)
}

// DecodeBlockMax is DecodeBlock with a caller-supplied upper bound on the
// declared symbol count (-1 for no extra bound beyond the payload-backed
// one-bit-per-symbol cap). Decoders that know their output volume should
// pass it so a hostile count is rejected before allocation.
func DecodeBlockMax(src []byte, maxSyms int) ([]uint32, int, error) {
	c, pos, err := ParseTable(src)
	if err != nil {
		return nil, 0, err
	}
	n, sz := uvarint(src[pos:])
	if sz <= 0 {
		return nil, 0, ErrCorrupt
	}
	pos += sz
	blen, sz := uvarint(src[pos:])
	if sz <= 0 {
		return nil, 0, ErrCorrupt
	}
	pos += sz
	if pos+int(blen) > len(src) {
		return nil, 0, ErrCorrupt
	}
	if n == 0 {
		return nil, pos + int(blen), nil
	}
	// Every symbol costs at least one bit, so a count that exceeds the
	// bitstream's capacity is corrupt — reject before allocating n slots.
	if n > 8*blen {
		return nil, 0, ErrCorrupt
	}
	if maxSyms >= 0 && n > uint64(maxSyms) {
		return nil, 0, ErrCorrupt
	}
	r := bitio.NewReader(src[pos : pos+int(blen)])
	syms, err := c.Decode(int(n), r)
	if err != nil {
		return nil, 0, err
	}
	return syms, pos + int(blen), nil
}
