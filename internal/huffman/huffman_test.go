package huffman

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cliz/internal/bitio"
)

func TestRoundTripSimple(t *testing.T) {
	syms := []uint32{1, 1, 1, 2, 2, 3, 7, 7, 7, 7, 7}
	c := Build(CountFreqs(syms))
	w := bitio.NewWriter(8)
	if err := c.Encode(syms, w); err != nil {
		t.Fatal(err)
	}
	r := bitio.NewReader(w.Bytes())
	got, err := c.Decode(len(syms), r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, syms) {
		t.Fatalf("got %v want %v", got, syms)
	}
}

func TestSingleSymbolAlphabet(t *testing.T) {
	syms := []uint32{42, 42, 42}
	c := Build(CountFreqs(syms))
	w := bitio.NewWriter(1)
	if err := c.Encode(syms, w); err != nil {
		t.Fatal(err)
	}
	r := bitio.NewReader(w.Bytes())
	got, err := c.Decode(3, r)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, syms) {
		t.Fatalf("got %v", got)
	}
}

func TestEmptyAlphabet(t *testing.T) {
	c := Build(nil)
	if c.Alphabet() != 0 {
		t.Fatal("empty alphabet expected")
	}
	r := bitio.NewReader([]byte{0xff})
	if _, err := c.DecodeOne(r); err == nil {
		t.Fatal("decoding from empty alphabet should fail")
	}
}

func TestUnknownSymbol(t *testing.T) {
	c := Build(CountFreqs([]uint32{1, 2}))
	w := bitio.NewWriter(1)
	if err := c.Encode([]uint32{3}, w); err == nil {
		t.Fatal("expected error for unknown symbol")
	}
}

func TestOptimalityOnSkewedInput(t *testing.T) {
	// A very frequent symbol must get a shorter code than a rare one.
	f := map[uint32]uint64{0: 1000, 1: 1, 2: 1, 3: 1}
	c := Build(f)
	if c.CodeLen(0) >= c.CodeLen(1) {
		t.Fatalf("frequent symbol len %d >= rare %d", c.CodeLen(0), c.CodeLen(1))
	}
}

func TestKraftInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := map[uint32]uint64{}
	for i := 0; i < 300; i++ {
		f[uint32(rng.Intn(1000))] = uint64(rng.Intn(10000) + 1)
	}
	c := Build(f)
	sum := 0.0
	for s := range f {
		l := c.CodeLen(s)
		if l == 0 || l > MaxCodeLen {
			t.Fatalf("bad length %d for %d", l, s)
		}
		sum += 1 / float64(uint64(1)<<l)
	}
	if sum > 1.0000001 {
		t.Fatalf("Kraft sum %.9f > 1: not prefix-free", sum)
	}
}

func TestLengthLimiting(t *testing.T) {
	// Fibonacci-like frequencies force deep trees; the limiter must cap them.
	f := map[uint32]uint64{}
	a, b := uint64(1), uint64(1)
	for i := uint32(0); i < 80; i++ {
		f[i] = a
		a, b = b, a+b
		if a > 1<<55 {
			break
		}
	}
	c := Build(f)
	for s := range f {
		if l := c.CodeLen(s); l > MaxCodeLen {
			t.Fatalf("code length %d exceeds limit", l)
		}
	}
	// Still decodable round-trip.
	syms := make([]uint32, 0, len(f))
	for s := range f {
		syms = append(syms, s)
	}
	w := bitio.NewWriter(64)
	if err := c.Encode(syms, w); err != nil {
		t.Fatal(err)
	}
	got, err := c.Decode(len(syms), bitio.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, syms) {
		t.Fatal("round trip failed after limiting")
	}
}

func TestTableSerializationRoundTrip(t *testing.T) {
	syms := []uint32{5, 5, 5, 100, 100, 70000, 70000, 70000, 70000, 9}
	c := Build(CountFreqs(syms))
	blob := c.SerializeTable(nil)
	c2, n, err := ParseTable(blob)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(blob) {
		t.Fatalf("consumed %d of %d", n, len(blob))
	}
	// Same code lengths → same canonical codes.
	for _, s := range []uint32{5, 100, 70000, 9} {
		if c.CodeLen(s) != c2.CodeLen(s) {
			t.Fatalf("sym %d: len %d vs %d", s, c.CodeLen(s), c2.CodeLen(s))
		}
	}
	// Cross decode: encode with c, decode with c2.
	w := bitio.NewWriter(8)
	if err := c.Encode(syms, w); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Decode(len(syms), bitio.NewReader(w.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, syms) {
		t.Fatal("cross decode failed")
	}
}

func TestParseTableCorrupt(t *testing.T) {
	for _, blob := range [][]byte{
		nil,
		{0xff},
		{2, 1, 0},   // zero length code
		{2, 1, 200}, // absurd length
		{5, 1, 3},   // count larger than data
	} {
		if _, _, err := ParseTable(blob); err == nil {
			t.Fatalf("ParseTable(%v) should fail", blob)
		}
	}
}

func TestEncodeDecodeBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	syms := make([]uint32, 5000)
	for i := range syms {
		// zipf-ish distribution around 32768 like quantization bins
		syms[i] = uint32(32768 + rng.NormFloat64()*3)
	}
	blob := EncodeBlock(syms)
	got, n, err := DecodeBlock(blob)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(blob) {
		t.Fatalf("consumed %d of %d", n, len(blob))
	}
	if !reflect.DeepEqual(got, syms) {
		t.Fatal("block round trip failed")
	}
	if len(blob) >= 2*len(syms) {
		t.Fatalf("no compression achieved: %d bytes for %d syms", len(blob), len(syms))
	}
}

func TestEncodeBlockEmpty(t *testing.T) {
	blob := EncodeBlock(nil)
	got, _, err := DecodeBlock(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestDecodeBlockCorrupt(t *testing.T) {
	blob := EncodeBlock([]uint32{1, 2, 3, 1, 2, 3})
	for cut := 1; cut < len(blob); cut += 3 {
		if _, _, err := DecodeBlock(blob[:cut]); err == nil {
			// Truncations that leave a valid prefix of fewer symbols are
			// impossible because the count is stored; all cuts must fail.
			t.Fatalf("truncated blob (cut %d) decoded without error", cut)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(2000) + 1
		alpha := rng.Intn(200) + 1
		syms := make([]uint32, n)
		for i := range syms {
			syms[i] = uint32(rng.Intn(alpha))
		}
		blob := EncodeBlock(syms)
		got, _, err := DecodeBlock(blob)
		return err == nil && reflect.DeepEqual(got, syms)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	syms := []uint32{1, 2, 2, 3, 3, 3, 4, 4, 4, 4}
	a := EncodeBlock(syms)
	b := EncodeBlock(syms)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestDeterminismAcrossMapOrders(t *testing.T) {
	// Many symbols with identical frequencies maximize heap ties — the
	// regression that once made SZ3 output flip between runs.
	syms := make([]uint32, 0, 4096)
	for s := uint32(0); s < 512; s++ {
		for k := 0; k < 3; k++ {
			syms = append(syms, s)
		}
	}
	want := EncodeBlock(syms)
	for i := 0; i < 10; i++ {
		got := EncodeBlock(syms)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d produced different bytes", i)
		}
	}
}
