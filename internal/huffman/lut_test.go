package huffman

import (
	"errors"
	"math/rand"
	"testing"

	"cliz/internal/bitio"
)

// decodeTree is the reference decoder: the canonical bit-by-bit walk with
// no LUT involvement. The LUT fast path must be observationally identical
// to this loop on every input.
func decodeTree(c *Codec, n int, r *bitio.Reader) ([]uint32, error) {
	out := make([]uint32, n)
	for i := range out {
		s, err := c.DecodeOne(r)
		if err != nil {
			return nil, err
		}
		out[i] = s
	}
	return out, nil
}

// randCodec builds a codec over `alphabet` symbols with frequencies skewed
// by `skew`: higher skew produces longer max code lengths, pushing symbols
// past the lutBits window so the fallback path is exercised too.
func randCodec(rng *rand.Rand, alphabet int, skew float64) (*Codec, []uint32) {
	freqs := make(map[uint32]uint64, alphabet)
	pool := make([]uint32, 0, 4*alphabet)
	for i := 0; i < alphabet; i++ {
		s := uint32(rng.Intn(1 << 20))
		f := uint64(1)
		for f < 1<<40 && rng.Float64() < skew {
			f *= 3
		}
		freqs[s] = f
		reps := 1
		if f > 1<<20 {
			reps = 4
		}
		for r := 0; r < reps; r++ {
			pool = append(pool, s)
		}
	}
	return Build(freqs), pool
}

func TestDecodeIntoMatchesTreeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for _, alphabet := range []int{1, 2, 3, 17, 300, 3000} {
		for _, skew := range []float64{0, 0.5, 0.9} {
			c, pool := randCodec(rng, alphabet, skew)
			for _, n := range []int{1, 7, 256, 5000} {
				syms := make([]uint32, n)
				for i := range syms {
					syms[i] = pool[rng.Intn(len(pool))]
				}
				w := bitio.NewWriter(0)
				if err := c.Encode(syms, w); err != nil {
					t.Fatal(err)
				}
				stream := w.Bytes()

				want, err := decodeTree(c, n, bitio.NewReader(stream))
				if err != nil {
					t.Fatalf("alphabet=%d skew=%v n=%d: tree decode: %v", alphabet, skew, n, err)
				}
				got := make([]uint32, n)
				if err := c.DecodeInto(got, bitio.NewReader(stream)); err != nil {
					t.Fatalf("alphabet=%d skew=%v n=%d: LUT decode: %v", alphabet, skew, n, err)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("alphabet=%d skew=%v n=%d: symbol %d: LUT=%d tree=%d",
							alphabet, skew, n, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestDecodeIntoMatchesTreeOnReserializedCodec runs the differential through
// a SerializeTable/ParseTable round trip, so the LUT is also validated on
// codecs reconstructed from the wire format (the decode-side reality).
func TestDecodeIntoMatchesTreeOnReserializedCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	c, pool := randCodec(rng, 500, 0.8)
	syms := make([]uint32, 4096)
	for i := range syms {
		syms[i] = pool[rng.Intn(len(pool))]
	}
	w := bitio.NewWriter(0)
	if err := c.Encode(syms, w); err != nil {
		t.Fatal(err)
	}
	stream := w.Bytes()
	parsed, _, err := ParseTable(c.SerializeTable(nil))
	if err != nil {
		t.Fatal(err)
	}
	want, err := decodeTree(parsed, len(syms), bitio.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]uint32, len(syms))
	if err := parsed.DecodeInto(got, bitio.NewReader(stream)); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("symbol %d: LUT=%d tree=%d", i, got[i], want[i])
		}
	}
}

// TestDecodeIntoLongCodesPastLUT forces a degenerate exponential-frequency
// alphabet whose longest codes exceed lutBits, pinning that the fallback
// path both triggers and agrees with the tree decoder.
func TestDecodeIntoLongCodesPastLUT(t *testing.T) {
	freqs := make(map[uint32]uint64)
	f := uint64(1)
	for i := uint32(0); i < 20; i++ {
		freqs[i] = f
		if f < 1<<50 {
			f *= 2
		}
	}
	c := Build(freqs)
	if c.maxLen <= lutBits {
		t.Fatalf("fixture too shallow: maxLen=%d, want > %d", c.maxLen, lutBits)
	}
	syms := make([]uint32, 0, 400)
	for i := uint32(0); i < 20; i++ {
		for r := uint32(0); r <= i; r++ {
			syms = append(syms, i)
		}
	}
	w := bitio.NewWriter(0)
	if err := c.Encode(syms, w); err != nil {
		t.Fatal(err)
	}
	stream := w.Bytes()
	want, err := decodeTree(c, len(syms), bitio.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]uint32, len(syms))
	if err := c.DecodeInto(got, bitio.NewReader(stream)); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("symbol %d: LUT=%d tree=%d", i, got[i], want[i])
		}
	}
}

// TestDecodeIntoCorruptDifferential checks that on truncated and bit-flipped
// streams the LUT path fails exactly when the tree path fails — same inputs,
// same classifiable error, no panic, no silent extra symbols.
func TestDecodeIntoCorruptDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c, pool := randCodec(rng, 200, 0.7)
	syms := make([]uint32, 2000)
	for i := range syms {
		syms[i] = pool[rng.Intn(len(pool))]
	}
	w := bitio.NewWriter(0)
	if err := c.Encode(syms, w); err != nil {
		t.Fatal(err)
	}
	stream := w.Bytes()
	mutants := [][]byte{stream[:0], stream[:1], stream[:len(stream)/2], stream[:len(stream)-1]}
	for trial := 0; trial < 100; trial++ {
		mut := append([]byte(nil), stream...)
		mut[rng.Intn(len(mut))] ^= 1 << uint(rng.Intn(8))
		mutants = append(mutants, mut)
	}
	for mi, mut := range mutants {
		want, werr := decodeTree(c, len(syms), bitio.NewReader(mut))
		got := make([]uint32, len(syms))
		gerr := c.DecodeInto(got, bitio.NewReader(mut))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("mutant %d: tree err=%v, LUT err=%v", mi, werr, gerr)
		}
		if werr != nil {
			if !errors.Is(gerr, ErrCorrupt) && !errors.Is(gerr, bitio.ErrOverrun) {
				t.Fatalf("mutant %d: unclassified LUT error %v", mi, gerr)
			}
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("mutant %d: symbol %d: LUT=%d tree=%d", mi, i, got[i], want[i])
			}
		}
	}
}

// TestDecodeBlockUsesLUTConsistently covers the self-contained block API:
// round-trip plus truncation must keep the classifiable-error contract now
// that DecodeBlockMax decodes through the LUT path.
func TestDecodeBlockUsesLUTConsistently(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	syms := make([]uint32, 3000)
	for i := range syms {
		syms[i] = uint32(rng.Intn(64))
	}
	blob := EncodeBlock(syms)
	got, n, err := DecodeBlock(blob)
	if err != nil || n != len(blob) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	for i := range syms {
		if got[i] != syms[i] {
			t.Fatalf("symbol %d: got %d want %d", i, got[i], syms[i])
		}
	}
	for cut := 1; cut < len(blob); cut += 97 {
		if _, _, err := DecodeBlock(blob[:cut]); err == nil {
			continue // a prefix can be self-consistent; only classify failures
		} else if !errors.Is(err, ErrCorrupt) && !errors.Is(err, bitio.ErrOverrun) {
			t.Fatalf("cut=%d: unclassified error %v", cut, err)
		}
	}
}

// benchStream models the production shape: a geometric-ish quantizer-bin
// distribution with the codec built from the stream itself, as the encoder
// does, so code lengths match the data.
func benchStream(b *testing.B) (*Codec, []uint32, []byte) {
	rng := rand.New(rand.NewSource(1))
	syms := make([]uint32, 1<<16)
	for i := range syms {
		v := uint32(0)
		for v < 255 && rng.Intn(3) > 0 {
			v++
		}
		syms[i] = v
	}
	c := Build(CountFreqs(syms))
	w := bitio.NewWriter(0)
	if err := c.Encode(syms, w); err != nil {
		b.Fatal(err)
	}
	return c, syms, w.Bytes()
}

func BenchmarkDecodeIntoLUT(b *testing.B) {
	c, syms, stream := benchStream(b)
	dst := make([]uint32, len(syms))
	b.SetBytes(int64(len(syms)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.DecodeInto(dst, bitio.NewReader(stream)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeTree(b *testing.B) {
	c, syms, stream := benchStream(b)
	b.SetBytes(int64(len(syms)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := bitio.NewReader(stream)
		for range syms {
			if _, err := c.DecodeOne(r); err != nil {
				b.Fatal(err)
			}
		}
	}
}
