package interp

import (
	"math"
	"testing"

	"cliz/internal/predict"
)

// TestTraversalCoversEveryPointOnce: compressing a constant field with a
// loose bound must assign a non-zero (predictable) bin to every point —
// proving the level/dimension traversal visits each grid point exactly once
// (a missed point would keep bin 0 and desynchronize the literal stream;
// a double visit would corrupt reconstruction).
func TestTraversalCoversEveryPointOnce(t *testing.T) {
	shapes := [][]int{
		{1}, {2}, {3}, {17}, {1, 1}, {1, 9}, {9, 1}, {5, 7},
		{2, 3, 4}, {7, 1, 5}, {16, 16, 16}, {3, 4, 5, 6},
	}
	for _, dims := range shapes {
		vol := 1
		for _, d := range dims {
			vol *= d
		}
		data := make([]float32, vol)
		for i := range data {
			data[i] = 5 // constant: every prediction is exact
		}
		for _, fit := range []predict.Fitting{predict.Linear, predict.Cubic} {
			res, err := Compress(data, dims, Config{EB: 1, Fitting: fit})
			if err != nil {
				t.Fatalf("%v: %v", dims, err)
			}
			zeros := 0
			for _, b := range res.Bins {
				if b == 0 {
					zeros++
				}
			}
			// The origin is predicted from 0 → bin radius+round(5/2) is
			// still predictable with eb=1 (5/2=2.5 < radius), so even it
			// must land in a non-zero bin.
			if zeros != 0 {
				t.Fatalf("%v fit=%v: %d points missed by the traversal", dims, fit, zeros)
			}
			if len(res.Literals) != 0 {
				t.Fatalf("%v: unexpected literals %d", dims, len(res.Literals))
			}
		}
	}
}

// TestConstantFieldReconstructsExactly: with every prediction landing on a
// quantized lattice point, the reconstruction should be bit-exact.
func TestConstantFieldReconstructsExactly(t *testing.T) {
	dims := []int{6, 10, 14}
	data := make([]float32, 6*10*14)
	for i := range data {
		data[i] = -3.25
	}
	cfg := Config{EB: 0.5, Fitting: predict.Cubic}
	res, err := Compress(data, dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(res.Bins, res.Literals, dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if math.Abs(float64(got[i])-float64(data[i])) > 0.5 {
			t.Fatalf("point %d: %g", i, got[i])
		}
	}
}

// TestLinearRampIsPerfectlyPredicted: linear fitting reproduces affine data
// exactly, so all bins must be exactly the centre after the first level.
func TestLinearRampIsPerfectlyPredicted(t *testing.T) {
	n := 257
	data := make([]float32, n)
	for i := range data {
		data[i] = float32(3*i + 7)
	}
	res, err := Compress(data, []int{n}, Config{EB: 0.01, Fitting: predict.Linear})
	if err != nil {
		t.Fatal(err)
	}
	centre := 0
	for _, b := range res.Bins {
		if b == 32768 {
			centre++
		}
	}
	// Everything except the coarse anchors (origin + a handful of boundary-
	// degraded points at the top levels) predicts exactly.
	if centre < n-20 {
		t.Fatalf("only %d/%d points predicted exactly on a ramp", centre, n)
	}
}
