// Package interp implements the multi-level dynamic spline interpolation
// engine of the SZ3 framework (paper §IV, §VI-B) that underlies the SZ3 and
// QoZ baselines and the CliZ compressor.
//
// Points are visited level by level: at level ℓ the stride is 2^(ℓ−1), and
// within a level each dimension is processed in sequence; along a dimension
// the points at odd multiples of the stride are predicted from the already
// reconstructed neighbours at ±s (linear fitting) or −3s, −s, +s, +3s (cubic
// fitting, Formula (1)). The compressor and the decompressor execute the
// identical traversal, so predictions are bit-identical on both sides.
//
// CliZ's extensions are threaded through the same engine:
//
//   - Mask awareness (§VI-B): a reference that is out of bounds *or* masked
//     is marked invalid, and the fitting coefficients degrade through the
//     closed form of Theorem 1 (package predict). Masked target points are
//     skipped entirely — they produce no quantization bin.
//   - Per-level error bounds (QoZ): Config.LevelEBFactor scales the error
//     bound per level; factors ≤ 1 keep the global bound intact.
package interp

import (
	"errors"
	"fmt"
	"math"

	"cliz/internal/grid"
	"cliz/internal/predict"
	"cliz/internal/quant"
)

// ErrCorrupt is returned by Decompress when the bin/literal streams are
// inconsistent with the grid.
var ErrCorrupt = errors.New("interp: corrupt compressed stream")

// Config parameterizes one engine run. The same Config must be used for
// Compress and Decompress.
type Config struct {
	// EB is the absolute error bound (> 0).
	EB float64
	// Radius is the quantizer radius; 0 selects quant.DefaultRadius.
	Radius int32
	// Fitting selects linear or cubic prediction.
	Fitting predict.Fitting
	// Valid marks usable points; nil means all points are valid. Length
	// must equal the grid volume. Masked points are neither predicted nor
	// used as references.
	Valid []bool
	// LevelEBFactor, if non-nil, scales the error bound at each level
	// (level 1 = finest). Factors must be in (0, 1] to preserve the bound.
	LevelEBFactor func(level int) float64
	// FillValue is written to masked positions on decompression.
	FillValue float32
}

// Result is the compressor-side output of one engine run.
type Result struct {
	// Bins holds one quantization bin per grid point in row-major grid
	// order. Masked positions hold 0 and must be skipped when serializing.
	Bins []int32
	// Literals holds the exact values of unpredictable points in traversal
	// order.
	Literals []float32
	// Recon is the reconstructed data (what the decompressor will produce),
	// useful for distortion metrics without a decode pass.
	Recon []float32
}

// Levels returns the number of interpolation levels for the given dims:
// ceil(log2(max extent)).
func Levels(dims []int) int {
	maxd := 0
	for _, d := range dims {
		if d > maxd {
			maxd = d
		}
	}
	l := 0
	for (1 << l) < maxd {
		l++
	}
	return l
}

type engine struct {
	dims    []int
	strides []int
	n       int
	vol     int
	cfg     Config
	work    []float32 // reconstructed values, evolves during the run

	decode bool
	bins   []int32
	lits   []float32
	litPos int
	err    error

	// verify mode: the decode traversal is replayed read-only over a
	// finished reconstruction, re-deriving every prediction from the final
	// values (valid because decode references are always finalized) and
	// checking each vEvery-th point regenerates exactly.
	verify   bool
	vEvery   int
	vSeen    int
	vChecked int

	q quant.Quantizer
}

func newEngine(dims []int, cfg Config) (*engine, error) {
	vol := grid.Volume(dims)
	if vol == 0 {
		return nil, fmt.Errorf("interp: empty grid %v: %w", dims, ErrCorrupt)
	}
	if cfg.EB <= 0 {
		return nil, fmt.Errorf("interp: error bound must be positive, got %g: %w", cfg.EB, ErrCorrupt)
	}
	if cfg.Valid != nil && len(cfg.Valid) != vol {
		return nil, fmt.Errorf("interp: mask length %d != volume %d: %w", len(cfg.Valid), vol, ErrCorrupt)
	}
	if cfg.Radius == 0 {
		cfg.Radius = quant.DefaultRadius
	}
	return &engine{
		dims:    dims,
		strides: grid.Strides(dims),
		n:       len(dims),
		vol:     vol,
		cfg:     cfg,
	}, nil
}

// Compress runs prediction + quantization over data.
func Compress(data []float32, dims []int, cfg Config) (Result, error) {
	vol := grid.Volume(dims)
	bins := make([]int32, vol)
	recon := make([]float32, vol)
	lits, err := CompressBuffers(data, dims, cfg, bins, recon)
	if err != nil {
		return Result{}, err
	}
	return Result{Bins: bins, Literals: lits, Recon: recon}, nil
}

// CompressBuffers is Compress writing bins and the reconstruction into
// caller-provided slices (each of length equal to the grid volume) and
// returning the literal stream. Sectioned parallel compression uses it to
// run independent engine instances over disjoint windows of one global
// bins/recon pair without per-section allocation.
func CompressBuffers(data []float32, dims []int, cfg Config, bins []int32, recon []float32) ([]float32, error) {
	e, err := newEngine(dims, cfg)
	if err != nil {
		return nil, err
	}
	if len(data) != e.vol {
		return nil, fmt.Errorf("interp: data length %d != volume %d", len(data), e.vol)
	}
	if len(bins) != e.vol || len(recon) != e.vol {
		return nil, fmt.Errorf("interp: buffer length %d/%d != volume %d", len(bins), len(recon), e.vol)
	}
	copy(recon, data)
	for i := range bins {
		bins[i] = 0
	}
	e.work = recon
	e.bins = bins
	e.run()
	if e.err != nil {
		return nil, e.err
	}
	if e.cfg.Valid != nil {
		for i, ok := range e.cfg.Valid {
			if !ok {
				e.work[i] = e.cfg.FillValue
			}
		}
	}
	return e.lits, nil
}

// Decompress reconstructs data from grid-ordered bins and traversal-ordered
// literals. bins must have one entry per grid point (entries at masked
// positions are ignored).
func Decompress(bins []int32, literals []float32, dims []int, cfg Config) ([]float32, error) {
	out := make([]float32, grid.Volume(dims))
	if err := DecompressBuffers(bins, literals, dims, cfg, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressBuffers is Decompress writing the reconstruction into a
// caller-provided slice of length equal to the grid volume. The literal
// slice may extend past this run's consumption (sections consume a prefix).
func DecompressBuffers(bins []int32, literals []float32, dims []int, cfg Config, out []float32) error {
	e, err := newEngine(dims, cfg)
	if err != nil {
		return err
	}
	if len(bins) != e.vol {
		return fmt.Errorf("interp: bins length %d != volume %d: %w", len(bins), e.vol, ErrCorrupt)
	}
	if len(out) != e.vol {
		return fmt.Errorf("interp: out length %d != volume %d: %w", len(out), e.vol, ErrCorrupt)
	}
	e.decode = true
	e.work = out
	e.bins = bins
	e.lits = literals
	e.run()
	if e.err != nil {
		return e.err
	}
	if e.cfg.Valid != nil {
		for i, ok := range e.cfg.Valid {
			if !ok {
				e.work[i] = e.cfg.FillValue
			}
		}
	}
	return nil
}

// VerifyBuffers replays the decode traversal read-only over a finished
// reconstruction, checking that every `every`-th handled point (1 = all) is
// exactly regenerated from its recorded bin — i.e. that recon is the value
// the bin stream commits to, which the encoder verified against the error
// bound. It returns the number of points checked. The replay is sound
// because decode predictions only ever reference finalized values.
func VerifyBuffers(bins []int32, literals []float32, dims []int, cfg Config, recon []float32, every int) (int, error) {
	e, err := newEngine(dims, cfg)
	if err != nil {
		return 0, err
	}
	if len(bins) != e.vol {
		return 0, fmt.Errorf("interp: bins length %d != volume %d: %w", len(bins), e.vol, ErrCorrupt)
	}
	if len(recon) != e.vol {
		return 0, fmt.Errorf("interp: recon length %d != volume %d: %w", len(recon), e.vol, ErrCorrupt)
	}
	if every < 1 {
		every = 1
	}
	e.decode = true
	e.verify = true
	e.vEvery = every
	e.work = recon
	e.bins = bins
	e.lits = literals
	e.run()
	return e.vChecked, e.err
}

// run executes the full traversal (both directions share it, guaranteeing
// symmetry).
func (e *engine) run() {
	levels := Levels(e.dims)
	// The origin is handled first, predicted as 0.
	e.q = e.quantizerFor(levels)
	if e.valid(0) {
		e.handle(0, 0)
	}
	for level := levels; level >= 1; level-- {
		if e.err != nil {
			return
		}
		e.q = e.quantizerFor(level)
		stride := 1 << (level - 1)
		for d := 0; d < e.n; d++ {
			e.passDim(d, stride)
		}
	}
}

func (e *engine) quantizerFor(level int) quant.Quantizer {
	eb := e.cfg.EB
	if e.cfg.LevelEBFactor != nil {
		f := e.cfg.LevelEBFactor(level)
		if f > 0 {
			eb *= f
		}
	}
	return quant.New(eb, e.cfg.Radius)
}

func (e *engine) valid(idx int) bool {
	return e.cfg.Valid == nil || e.cfg.Valid[idx]
}

// passDim predicts, along dimension d, every point whose d-coordinate is an
// odd multiple of stride, whose earlier coordinates are multiples of stride,
// and whose later coordinates are multiples of 2·stride.
func (e *engine) passDim(d, stride int) {
	dimD := e.dims[d]
	if stride >= dimD {
		return
	}
	stepD := e.strides[d] * stride

	// Odometer over the other dimensions.
	counts := make([]int, 0, e.n-1)
	steps := make([]int, 0, e.n-1)
	for k := 0; k < e.n; k++ {
		if k == d {
			continue
		}
		s := stride
		if k > d {
			s = 2 * stride
		}
		cnt := (e.dims[k] + s - 1) / s
		counts = append(counts, cnt)
		steps = append(steps, e.strides[k]*s)
	}
	nOther := len(counts)
	pos := make([]int, nOther)
	base := 0
	for {
		if e.err != nil {
			return
		}
		// Walk the target line along d: x = stride, 3·stride, ...
		lineLen := dimD
		idx := base + stepD // coordinate stride along d
		for x := stride; x < lineLen; x += 2 * stride {
			e.predictPoint(idx, x, dimD, stepD, stride)
			idx += 2 * stepD
		}
		// Odometer increment.
		carry := nOther - 1
		for ; carry >= 0; carry-- {
			pos[carry]++
			base += steps[carry]
			if pos[carry] < counts[carry] {
				break
			}
			pos[carry] = 0
			base -= steps[carry] * counts[carry]
		}
		if carry < 0 {
			return
		}
	}
}

// predictPoint predicts the point at flat index idx whose coordinate along
// the active dimension is x (0 ≤ x < dimD), with flat step stepD per stride.
// References sit at coordinates x ± stride and (for cubic) x ± 3·stride
// (paper Fig. 6); references that fall outside the grid or on masked points
// are flagged invalid and the fitting degrades via Formula (2).
func (e *engine) predictPoint(idx, x, dimD, stepD, stride int) {
	if !e.valid(idx) {
		return
	}
	var pred float64
	if e.cfg.Fitting == predict.Cubic {
		var d [4]float64
		vm := 0
		if x-3*stride >= 0 && e.valid(idx-3*stepD) {
			d[0] = float64(e.work[idx-3*stepD])
			vm |= 1 << 0
		}
		if x-stride >= 0 && e.valid(idx-stepD) {
			d[1] = float64(e.work[idx-stepD])
			vm |= 1 << 1
		}
		if x+stride < dimD && e.valid(idx+stepD) {
			d[2] = float64(e.work[idx+stepD])
			vm |= 1 << 2
		}
		if x+3*stride < dimD && e.valid(idx+3*stepD) {
			d[3] = float64(e.work[idx+3*stepD])
			vm |= 1 << 3
		}
		pred = predict.PredictCubic(d, vm)
	} else {
		var d1, d2 float64
		vm := 0
		if x-stride >= 0 && e.valid(idx-stepD) {
			d1 = float64(e.work[idx-stepD])
			vm |= 1
		}
		if x+stride < dimD && e.valid(idx+stepD) {
			d2 = float64(e.work[idx+stepD])
			vm |= 2
		}
		pred = predict.PredictLinear(d1, d2, vm)
	}
	e.handle(idx, pred)
}

// handle quantizes (compress) or recovers (decompress) the point at idx.
func (e *engine) handle(idx int, pred float64) {
	if e.decode {
		bin := e.bins[idx]
		var lit float64
		if bin == 0 {
			if e.litPos >= len(e.lits) {
				e.err = fmt.Errorf("interp: literal stream underrun at point %d: %w", idx, ErrCorrupt)
				return
			}
			lit = float64(e.lits[e.litPos])
			e.litPos++
		}
		if e.verify {
			e.checkPoint(idx, pred, bin, lit)
			return
		}
		e.work[idx] = float32(e.q.Recover(pred, bin, lit))
		return
	}
	orig := float64(e.work[idx])
	bin, recon, exact := e.q.Quantize(pred, orig)
	if exact {
		e.lits = append(e.lits, e.work[idx])
		// recon == orig; work[idx] already holds it.
		_ = recon
	} else {
		e.work[idx] = float32(recon)
	}
	e.bins[idx] = bin
}

// checkPoint compares the finished reconstruction at idx against the value
// its bin (or literal) regenerates, sampling every vEvery-th handled point.
func (e *engine) checkPoint(idx int, pred float64, bin int32, lit float64) {
	if bin < 0 || bin >= 2*e.q.Radius() {
		e.err = fmt.Errorf("interp: bin %d out of range at point %d: %w", bin, idx, ErrCorrupt)
		return
	}
	e.vSeen++
	if (e.vSeen-1)%e.vEvery != 0 {
		return
	}
	want := float32(e.q.Recover(pred, bin, lit))
	got := e.work[idx]
	//clizlint:ignore floateq bit-exact self-verification replay: the decoder recomputes the identical arithmetic, so any difference is corruption
	if want != got && !(math.IsNaN(float64(want)) && math.IsNaN(float64(got))) {
		e.err = fmt.Errorf("interp: self-verification mismatch at point %d: reconstruction %g, bins regenerate %g: %w",
			idx, got, want, ErrCorrupt)
		return
	}
	e.vChecked++
}
