// Package interp implements the multi-level dynamic spline interpolation
// engine of the SZ3 framework (paper §IV, §VI-B) that underlies the SZ3 and
// QoZ baselines and the CliZ compressor.
//
// Points are visited level by level: at level ℓ the stride is 2^(ℓ−1), and
// within a level each dimension is processed in sequence; along a dimension
// the points at odd multiples of the stride are predicted from the already
// reconstructed neighbours at ±s (linear fitting) or −3s, −s, +s, +3s (cubic
// fitting, Formula (1)). The compressor and the decompressor execute the
// identical traversal, so predictions are bit-identical on both sides.
//
// CliZ's extensions are threaded through the same engine:
//
//   - Mask awareness (§VI-B): a reference that is out of bounds *or* masked
//     is marked invalid, and the fitting coefficients degrade through the
//     closed form of Theorem 1 (package predict). Masked target points are
//     skipped entirely — they produce no quantization bin.
//   - Per-level error bounds (QoZ): Config.LevelEBFactor scales the error
//     bound per level; factors ≤ 1 keep the global bound intact.
//
// The engine traverses a *logical* grid while addressing values through a
// grid.Layout, so a dimension permutation can be fused into the index
// arithmetic instead of materializing a transposed copy. The logical
// traversal order — and with it the bin and literal streams — is identical
// either way.
package interp

import (
	"errors"
	"fmt"
	"math"

	"cliz/internal/grid"
	"cliz/internal/predict"
	"cliz/internal/quant"
)

// ErrCorrupt is returned by Decompress when the bin/literal streams are
// inconsistent with the grid.
var ErrCorrupt = errors.New("interp: corrupt compressed stream")

// Config parameterizes one engine run. The same Config must be used for
// Compress and Decompress.
type Config struct {
	// EB is the absolute error bound (> 0).
	EB float64
	// Radius is the quantizer radius; 0 selects quant.DefaultRadius.
	Radius int32
	// Fitting selects linear or cubic prediction.
	Fitting predict.Fitting
	// Valid marks usable points in logical (traversal) order; nil means all
	// points are valid. Length must equal the grid volume. Masked points are
	// neither predicted nor used as references.
	Valid []bool
	// LevelEBFactor, if non-nil, scales the error bound at each level
	// (level 1 = finest). Factors must be in (0, 1] to preserve the bound.
	LevelEBFactor func(level int) float64
	// FillValue is written to masked positions on decompression.
	FillValue float32
}

// Result is the compressor-side output of one engine run.
type Result struct {
	// Bins holds one quantization bin per grid point in row-major grid
	// order. Masked positions hold 0 and must be skipped when serializing.
	Bins []int32
	// Literals holds the exact values of unpredictable points in traversal
	// order.
	Literals []float32
	// Recon is the reconstructed data (what the decompressor will produce),
	// useful for distortion metrics without a decode pass.
	Recon []float32
}

// Levels returns the number of interpolation levels for the given dims:
// ceil(log2(max extent)).
func Levels(dims []int) int {
	maxd := 0
	for _, d := range dims {
		if d > maxd {
			maxd = d
		}
	}
	l := 0
	for (1 << l) < maxd {
		l++
	}
	return l
}

type engine struct {
	dims     []int
	strides  []int // logical row-major strides (bins, mask)
	pstrides []int // physical strides into work (layout)
	base     int   // physical index of the logical origin
	n        int
	vol      int
	cfg      Config
	work     []float32 // reconstructed values, evolves during the run

	decode bool
	bins   []int32
	lits   []float32
	litPos int
	err    error

	// verify mode: the decode traversal is replayed read-only over a
	// finished reconstruction, re-deriving every prediction from the final
	// values (valid because decode references are always finalized) and
	// checking each vEvery-th point regenerates exactly.
	verify   bool
	vEvery   int
	vSeen    int
	vChecked int

	q quant.Quantizer
}

func newEngine(lay grid.Layout, cfg Config) (*engine, error) {
	vol := grid.Volume(lay.Dims)
	if vol == 0 {
		return nil, fmt.Errorf("interp: empty grid %v: %w", lay.Dims, ErrCorrupt)
	}
	if !lay.Valid() {
		return nil, fmt.Errorf("interp: invalid layout %v/%v: %w", lay.Dims, lay.Strides, ErrCorrupt)
	}
	if cfg.EB <= 0 {
		return nil, fmt.Errorf("interp: error bound must be positive, got %g: %w", cfg.EB, ErrCorrupt)
	}
	if cfg.Valid != nil && len(cfg.Valid) != vol {
		return nil, fmt.Errorf("interp: mask length %d != volume %d: %w", len(cfg.Valid), vol, ErrCorrupt)
	}
	if cfg.Radius == 0 {
		cfg.Radius = quant.DefaultRadius
	}
	return &engine{
		dims:     lay.Dims,
		strides:  grid.Strides(lay.Dims),
		pstrides: lay.Strides,
		base:     lay.Base,
		n:        len(lay.Dims),
		vol:      vol,
		cfg:      cfg,
	}, nil
}

// checkWork validates that the physical buffer covers every index the
// layout can touch. The layout ultimately comes from a blob header on the
// decode side, so this is a hard bounds check, not an assertion.
func (e *engine) checkWork(buf []float32, what string) error {
	max := e.base
	for i, d := range e.dims {
		max += (d - 1) * e.pstrides[i]
	}
	if max >= len(buf) {
		return fmt.Errorf("interp: %s length %d does not cover layout (max index %d): %w",
			what, len(buf), max, ErrCorrupt)
	}
	return nil
}

// Compress runs prediction + quantization over data.
func Compress(data []float32, dims []int, cfg Config) (Result, error) {
	vol := grid.Volume(dims)
	bins := make([]int32, vol)
	recon := make([]float32, vol)
	lits, err := CompressBuffers(data, dims, cfg, bins, recon)
	if err != nil {
		return Result{}, err
	}
	return Result{Bins: bins, Literals: lits, Recon: recon}, nil
}

// CompressBuffers is Compress writing bins and the reconstruction into
// caller-provided slices (each of length equal to the grid volume) and
// returning the literal stream. Sectioned parallel compression uses it to
// run independent engine instances over disjoint windows of one global
// bins/recon pair without per-section allocation.
func CompressBuffers(data []float32, dims []int, cfg Config, bins []int32, recon []float32) ([]float32, error) {
	vol := grid.Volume(dims)
	if len(data) != vol {
		return nil, fmt.Errorf("interp: data length %d != volume %d", len(data), vol)
	}
	if len(bins) != vol || len(recon) != vol {
		return nil, fmt.Errorf("interp: buffer length %d/%d != volume %d", len(bins), len(recon), vol)
	}
	copy(recon, data)
	return CompressLayout(recon, grid.IdentityLayout(dims), cfg, bins)
}

// CompressLayout runs prediction + quantization in place: on entry work
// holds the original values at the layout's physical positions, on exit the
// reconstruction. bins (logical row-major order, one per point) is
// overwritten; the literal stream is returned. This is the fused-permutation
// entry point — the layout carries the permuted view so no transposed copy
// of the data is needed.
func CompressLayout(work []float32, lay grid.Layout, cfg Config, bins []int32) ([]float32, error) {
	e, err := newEngine(lay, cfg)
	if err != nil {
		return nil, err
	}
	if len(bins) != e.vol {
		return nil, fmt.Errorf("interp: bins length %d != volume %d", len(bins), e.vol)
	}
	if err := e.checkWork(work, "work"); err != nil {
		return nil, err
	}
	for i := range bins {
		bins[i] = 0
	}
	e.work = work
	e.bins = bins
	e.run()
	if e.err != nil {
		return nil, e.err
	}
	e.fillMasked()
	return e.lits, nil
}

// Decompress reconstructs data from grid-ordered bins and traversal-ordered
// literals. bins must have one entry per grid point (entries at masked
// positions are ignored).
func Decompress(bins []int32, literals []float32, dims []int, cfg Config) ([]float32, error) {
	out := make([]float32, grid.Volume(dims))
	if err := DecompressBuffers(bins, literals, dims, cfg, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressBuffers is Decompress writing the reconstruction into a
// caller-provided slice of length equal to the grid volume. The literal
// slice may extend past this run's consumption (sections consume a prefix).
func DecompressBuffers(bins []int32, literals []float32, dims []int, cfg Config, out []float32) error {
	vol := grid.Volume(dims)
	if len(out) != vol {
		return fmt.Errorf("interp: out length %d != volume %d: %w", len(out), vol, ErrCorrupt)
	}
	return DecompressLayout(bins, literals, grid.IdentityLayout(dims), cfg, out)
}

// DecompressLayout reconstructs through a layout: bins and literals are in
// logical order, the reconstruction lands at the layout's physical
// positions in out. The fused decode path writes straight into the
// original-layout output buffer, eliminating the unpermute pass.
func DecompressLayout(bins []int32, literals []float32, lay grid.Layout, cfg Config, out []float32) error {
	e, err := newEngine(lay, cfg)
	if err != nil {
		return err
	}
	if len(bins) != e.vol {
		return fmt.Errorf("interp: bins length %d != volume %d: %w", len(bins), e.vol, ErrCorrupt)
	}
	if err := e.checkWork(out, "out"); err != nil {
		return err
	}
	e.decode = true
	e.work = out
	e.bins = bins
	e.lits = literals
	e.run()
	if e.err != nil {
		return e.err
	}
	e.fillMasked()
	return nil
}

// VerifyBuffers replays the decode traversal read-only over a finished
// reconstruction, checking that every `every`-th handled point (1 = all) is
// exactly regenerated from its recorded bin — i.e. that recon is the value
// the bin stream commits to, which the encoder verified against the error
// bound. It returns the number of points checked. The replay is sound
// because decode predictions only ever reference finalized values.
func VerifyBuffers(bins []int32, literals []float32, dims []int, cfg Config, recon []float32, every int) (int, error) {
	vol := grid.Volume(dims)
	if len(recon) != vol {
		return 0, fmt.Errorf("interp: recon length %d != volume %d: %w", len(recon), vol, ErrCorrupt)
	}
	return VerifyLayout(bins, literals, grid.IdentityLayout(dims), cfg, recon, every)
}

// VerifyLayout is VerifyBuffers over a layout-addressed reconstruction.
func VerifyLayout(bins []int32, literals []float32, lay grid.Layout, cfg Config, recon []float32, every int) (int, error) {
	e, err := newEngine(lay, cfg)
	if err != nil {
		return 0, err
	}
	if len(bins) != e.vol {
		return 0, fmt.Errorf("interp: bins length %d != volume %d: %w", len(bins), e.vol, ErrCorrupt)
	}
	if err := e.checkWork(recon, "recon"); err != nil {
		return 0, err
	}
	if every < 1 {
		every = 1
	}
	e.decode = true
	e.verify = true
	e.vEvery = every
	e.work = recon
	e.bins = bins
	e.lits = literals
	e.run()
	return e.vChecked, e.err
}

// fillMasked writes the fill value to every masked position, addressing the
// physical buffer through the layout.
func (e *engine) fillMasked() {
	if e.cfg.Valid == nil {
		return
	}
	coord := make([]int, e.n)
	idxP := e.base
	for idx := 0; idx < e.vol; idx++ {
		if !e.cfg.Valid[idx] {
			e.work[idxP] = e.cfg.FillValue
		}
		for ax := e.n - 1; ax >= 0; ax-- {
			coord[ax]++
			idxP += e.pstrides[ax]
			if coord[ax] < e.dims[ax] {
				break
			}
			coord[ax] = 0
			idxP -= e.pstrides[ax] * e.dims[ax]
		}
	}
}

// run executes the full traversal (both directions share it, guaranteeing
// symmetry).
func (e *engine) run() {
	levels := Levels(e.dims)
	// The origin is handled first, predicted as 0.
	e.q = e.quantizerFor(levels)
	if e.valid(0) {
		e.handle(0, e.base, 0)
	}
	for level := levels; level >= 1; level-- {
		if e.err != nil {
			return
		}
		e.q = e.quantizerFor(level)
		stride := 1 << (level - 1)
		for d := 0; d < e.n; d++ {
			e.passDim(d, stride)
		}
	}
}

func (e *engine) quantizerFor(level int) quant.Quantizer {
	eb := e.cfg.EB
	if e.cfg.LevelEBFactor != nil {
		f := e.cfg.LevelEBFactor(level)
		if f > 0 {
			eb *= f
		}
	}
	return quant.New(eb, e.cfg.Radius)
}

func (e *engine) valid(idx int) bool {
	return e.cfg.Valid == nil || e.cfg.Valid[idx]
}

// passDim predicts, along dimension d, every point whose d-coordinate is an
// odd multiple of stride, whose earlier coordinates are multiples of stride,
// and whose later coordinates are multiples of 2·stride. The odometer
// carries the logical and physical line origins in lockstep.
func (e *engine) passDim(d, stride int) {
	dimD := e.dims[d]
	if stride >= dimD {
		return
	}
	stepD := e.strides[d] * stride
	pstepD := e.pstrides[d] * stride

	// Odometer over the other dimensions.
	counts := make([]int, 0, e.n-1)
	steps := make([]int, 0, e.n-1)
	psteps := make([]int, 0, e.n-1)
	for k := 0; k < e.n; k++ {
		if k == d {
			continue
		}
		s := stride
		if k > d {
			s = 2 * stride
		}
		cnt := (e.dims[k] + s - 1) / s
		counts = append(counts, cnt)
		steps = append(steps, e.strides[k]*s)
		psteps = append(psteps, e.pstrides[k]*s)
	}
	nOther := len(counts)
	pos := make([]int, nOther)
	base, pbase := 0, e.base
	for {
		if e.err != nil {
			return
		}
		e.line(base+stepD, pbase+pstepD, dimD, stepD, pstepD, stride)
		// Odometer increment.
		carry := nOther - 1
		for ; carry >= 0; carry-- {
			pos[carry]++
			base += steps[carry]
			pbase += psteps[carry]
			if pos[carry] < counts[carry] {
				break
			}
			pos[carry] = 0
			base -= steps[carry] * counts[carry]
			pbase -= psteps[carry] * counts[carry]
		}
		if carry < 0 {
			return
		}
	}
}

// line walks one target line along the active dimension: x = stride,
// 3·stride, ... idx/idxP start at the x = stride point. For unmasked grids
// the interior of the line — where every reference is in bounds — runs a
// specialized kernel with the full-validity coefficients hardwired,
// skipping the per-reference bounds and mask tests; the prologue and
// epilogue fall back to the general point predictor. The specialization
// preserves the traversal order exactly, so bins and literals are
// bit-identical to the general path.
func (e *engine) line(idx, idxP, dimD, stepD, pstepD, stride int) {
	x := stride
	if e.cfg.Valid == nil {
		if e.cfg.Fitting == predict.Cubic {
			// Prologue: points whose left references underrun the line.
			for ; x < dimD && x < 3*stride; x += 2 * stride {
				e.predictPoint(idx, idxP, x, dimD, stepD, pstepD, stride)
				idx += 2 * stepD
				idxP += 2 * pstepD
			}
			// Interior: x−3s ≥ 0 and x+3s < dimD, all four references valid.
			for ; x+3*stride < dimD; x += 2 * stride {
				var d [4]float64
				d[0] = float64(e.work[idxP-3*pstepD])
				d[1] = float64(e.work[idxP-pstepD])
				d[2] = float64(e.work[idxP+pstepD])
				d[3] = float64(e.work[idxP+3*pstepD])
				e.handle(idx, idxP, predict.PredictCubic(d, 15))
				idx += 2 * stepD
				idxP += 2 * pstepD
			}
		} else if e.cfg.Fitting == predict.Linear {
			// Interior: x−s ≥ 0 always holds (x starts at stride), so only
			// the right reference bound gates the fast kernel.
			for ; x+stride < dimD; x += 2 * stride {
				d1 := float64(e.work[idxP-pstepD])
				d2 := float64(e.work[idxP+pstepD])
				e.handle(idx, idxP, predict.PredictLinear(d1, d2, 3))
				idx += 2 * stepD
				idxP += 2 * pstepD
			}
		}
	}
	// Epilogue (and the whole line for masked grids): the general predictor.
	for ; x < dimD; x += 2 * stride {
		e.predictPoint(idx, idxP, x, dimD, stepD, pstepD, stride)
		idx += 2 * stepD
		idxP += 2 * pstepD
	}
}

// predictPoint predicts the point at logical index idx (physical idxP)
// whose coordinate along the active dimension is x (0 ≤ x < dimD), with
// logical step stepD and physical step pstepD per stride. References sit at
// coordinates x ± stride and (for cubic) x ± 3·stride (paper Fig. 6);
// references that fall outside the grid or on masked points are flagged
// invalid and the fitting degrades via Formula (2).
func (e *engine) predictPoint(idx, idxP, x, dimD, stepD, pstepD, stride int) {
	if !e.valid(idx) {
		return
	}
	var pred float64
	if e.cfg.Fitting == predict.Cubic {
		var d [4]float64
		vm := 0
		if x-3*stride >= 0 && e.valid(idx-3*stepD) {
			d[0] = float64(e.work[idxP-3*pstepD])
			vm |= 1 << 0
		}
		if x-stride >= 0 && e.valid(idx-stepD) {
			d[1] = float64(e.work[idxP-pstepD])
			vm |= 1 << 1
		}
		if x+stride < dimD && e.valid(idx+stepD) {
			d[2] = float64(e.work[idxP+pstepD])
			vm |= 1 << 2
		}
		if x+3*stride < dimD && e.valid(idx+3*stepD) {
			d[3] = float64(e.work[idxP+3*pstepD])
			vm |= 1 << 3
		}
		pred = predict.PredictCubic(d, vm)
	} else {
		var d1, d2 float64
		vm := 0
		if x-stride >= 0 && e.valid(idx-stepD) {
			d1 = float64(e.work[idxP-pstepD])
			vm |= 1
		}
		if x+stride < dimD && e.valid(idx+stepD) {
			d2 = float64(e.work[idxP+pstepD])
			vm |= 2
		}
		pred = predict.PredictLinear(d1, d2, vm)
	}
	e.handle(idx, idxP, pred)
}

// handle quantizes (compress) or recovers (decompress) the point at logical
// index idx, reading and writing the value at physical index idxP.
func (e *engine) handle(idx, idxP int, pred float64) {
	if e.decode {
		bin := e.bins[idx]
		var lit float64
		if bin == 0 {
			if e.litPos >= len(e.lits) {
				e.err = fmt.Errorf("interp: literal stream underrun at point %d: %w", idx, ErrCorrupt)
				return
			}
			lit = float64(e.lits[e.litPos])
			e.litPos++
		}
		if e.verify {
			e.checkPoint(idx, idxP, pred, bin, lit)
			return
		}
		e.work[idxP] = float32(e.q.Recover(pred, bin, lit))
		return
	}
	orig := float64(e.work[idxP])
	bin, recon, exact := e.q.Quantize(pred, orig)
	if exact {
		e.lits = append(e.lits, e.work[idxP])
		// recon == orig; work[idxP] already holds it.
		_ = recon
	} else {
		e.work[idxP] = float32(recon)
	}
	e.bins[idx] = bin
}

// checkPoint compares the finished reconstruction at idxP against the value
// its bin (or literal) regenerates, sampling every vEvery-th handled point.
func (e *engine) checkPoint(idx, idxP int, pred float64, bin int32, lit float64) {
	if bin < 0 || bin >= 2*e.q.Radius() {
		e.err = fmt.Errorf("interp: bin %d out of range at point %d: %w", bin, idx, ErrCorrupt)
		return
	}
	e.vSeen++
	if (e.vSeen-1)%e.vEvery != 0 {
		return
	}
	want := float32(e.q.Recover(pred, bin, lit))
	got := e.work[idxP]
	//clizlint:ignore floateq bit-exact self-verification replay: the decoder recomputes the identical arithmetic, so any difference is corruption
	if want != got && !(math.IsNaN(float64(want)) && math.IsNaN(float64(got))) {
		e.err = fmt.Errorf("interp: self-verification mismatch at point %d: reconstruction %g, bins regenerate %g: %w",
			idx, got, want, ErrCorrupt)
		return
	}
	e.vChecked++
}
