package interp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cliz/internal/predict"
)

// smoothField builds a deterministic smooth field over dims.
func smoothField(dims []int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	ph := make([]float64, len(dims))
	for i := range ph {
		ph[i] = rng.Float64() * 2 * math.Pi
	}
	vol := 1
	for _, d := range dims {
		vol *= d
	}
	out := make([]float32, vol)
	coord := make([]int, len(dims))
	for idx := 0; idx < vol; idx++ {
		v := 0.0
		for i, c := range coord {
			v += math.Sin(2*math.Pi*float64(c)/float64(dims[i])*3 + ph[i])
		}
		out[idx] = float32(v * 10)
		for ax := len(dims) - 1; ax >= 0; ax-- {
			coord[ax]++
			if coord[ax] < dims[ax] {
				break
			}
			coord[ax] = 0
		}
	}
	return out
}

func roundTrip(t *testing.T, data []float32, dims []int, cfg Config) []float32 {
	t.Helper()
	res, err := Compress(data, dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(res.Bins, res.Literals, dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func checkBound(t *testing.T, orig, recon []float32, valid []bool, eb float64) {
	t.Helper()
	for i := range orig {
		if valid != nil && !valid[i] {
			continue
		}
		d := math.Abs(float64(orig[i]) - float64(recon[i]))
		if d > eb*(1+1e-9) {
			t.Fatalf("error bound violated at %d: |%g - %g| = %g > %g",
				i, orig[i], recon[i], d, eb)
		}
	}
}

func TestRoundTripErrorBound3D(t *testing.T) {
	dims := []int{7, 20, 33}
	data := smoothField(dims, 1)
	for _, eb := range []float64{1, 0.1, 0.001} {
		for _, fit := range []predict.Fitting{predict.Linear, predict.Cubic} {
			cfg := Config{EB: eb, Fitting: fit}
			got := roundTrip(t, data, dims, cfg)
			checkBound(t, data, got, nil, eb)
		}
	}
}

func TestRoundTrip1D2D(t *testing.T) {
	for _, dims := range [][]int{{1000}, {37, 53}, {1, 64}, {64, 1}} {
		data := smoothField(dims, 2)
		cfg := Config{EB: 0.01, Fitting: predict.Cubic}
		got := roundTrip(t, data, dims, cfg)
		checkBound(t, data, got, nil, 0.01)
	}
}

func TestReconMatchesDecode(t *testing.T) {
	// Compressor-side Recon must equal what the decompressor produces.
	dims := []int{16, 24}
	data := smoothField(dims, 3)
	cfg := Config{EB: 0.05, Fitting: predict.Cubic}
	res, err := Compress(data, dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(res.Bins, res.Literals, dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != res.Recon[i] {
			t.Fatalf("asymmetry at %d: compress recon %g, decode %g",
				i, res.Recon[i], got[i])
		}
	}
}

func TestBinsCountEqualsVolume(t *testing.T) {
	dims := []int{5, 6, 7}
	data := smoothField(dims, 4)
	res, err := Compress(data, dims, Config{EB: 0.1, Fitting: predict.Linear})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bins) != 5*6*7 {
		t.Fatalf("bins %d != volume", len(res.Bins))
	}
}

func TestMaskedRoundTrip(t *testing.T) {
	dims := []int{6, 16, 20}
	data := smoothField(dims, 5)
	vol := len(data)
	valid := make([]bool, vol)
	rng := rand.New(rand.NewSource(6))
	for i := range valid {
		valid[i] = rng.Float64() > 0.3
	}
	// Put fill values at masked points — they must not hurt valid points.
	for i, ok := range valid {
		if !ok {
			data[i] = 1e35
		}
	}
	cfg := Config{EB: 0.01, Fitting: predict.Cubic, Valid: valid, FillValue: -1}
	res, err := Compress(data, dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(res.Bins, res.Literals, dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkBound(t, data, got, valid, 0.01)
	for i, ok := range valid {
		if !ok {
			if got[i] != -1 {
				t.Fatalf("masked point %d = %g want fill", i, got[i])
			}
			if res.Bins[i] != 0 {
				t.Fatalf("masked point %d produced bin %d", i, res.Bins[i])
			}
		}
	}
}

func TestMaskImprovesLiteralCount(t *testing.T) {
	// With fill values present, masking should dramatically reduce
	// unpredictable literals versus compressing the raw field.
	dims := []int{4, 32, 32}
	data := smoothField(dims, 7)
	valid := make([]bool, len(data))
	for i := range valid {
		valid[i] = (i/7)%3 != 0 // blocky invalid regions
		if !valid[i] {
			data[i] = 9.96921e36
		}
	}
	cfgMasked := Config{EB: 0.01, Fitting: predict.Cubic, Valid: valid}
	cfgRaw := Config{EB: 0.01, Fitting: predict.Cubic}
	rm, err := Compress(data, dims, cfgMasked)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := Compress(data, dims, cfgRaw)
	if err != nil {
		t.Fatal(err)
	}
	if len(rm.Literals) >= len(rr.Literals) {
		t.Fatalf("mask did not reduce literals: %d vs %d",
			len(rm.Literals), len(rr.Literals))
	}
}

func TestLevelEBFactor(t *testing.T) {
	dims := []int{32, 32}
	data := smoothField(dims, 8)
	eb := 0.1
	cfg := Config{
		EB:      eb,
		Fitting: predict.Cubic,
		LevelEBFactor: func(level int) float64 {
			return 1 / math.Min(math.Pow(1.5, float64(level-1)), 4)
		},
	}
	got := roundTrip(t, data, dims, cfg)
	checkBound(t, data, got, nil, eb) // tighter levels keep the global bound
}

func TestSmoothDataCompressesToNarrowBins(t *testing.T) {
	dims := []int{64, 64}
	data := smoothField(dims, 9)
	res, err := Compress(data, dims, Config{EB: 0.01, Fitting: predict.Cubic})
	if err != nil {
		t.Fatal(err)
	}
	// Most bins should be near the radius (small residuals).
	near := 0
	for _, b := range res.Bins {
		if b >= 32768-20 && b <= 32768+20 {
			near++
		}
	}
	if float64(near)/float64(len(res.Bins)) < 0.75 {
		t.Fatalf("only %d/%d bins near centre — prediction is weak", near, len(res.Bins))
	}
}

func TestErrors(t *testing.T) {
	if _, err := Compress(nil, []int{0}, Config{EB: 1}); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := Compress(make([]float32, 4), []int{2, 2}, Config{EB: 0}); err == nil {
		t.Fatal("zero EB accepted")
	}
	if _, err := Compress(make([]float32, 3), []int{2, 2}, Config{EB: 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Compress(make([]float32, 4), []int{2, 2}, Config{EB: 1, Valid: make([]bool, 3)}); err == nil {
		t.Fatal("mask mismatch accepted")
	}
	if _, err := Decompress(make([]int32, 3), nil, []int{2, 2}, Config{EB: 1}); err == nil {
		t.Fatal("bad bins length accepted")
	}
	// Literal underrun: all-zero bins claim every point is a literal.
	if _, err := Decompress(make([]int32, 4), nil, []int{2, 2}, Config{EB: 1}); err == nil {
		t.Fatal("literal underrun not detected")
	}
}

func TestLevels(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 1024: 10}
	for d, want := range cases {
		if got := Levels([]int{d}); got != want {
			t.Fatalf("Levels(%d) = %d want %d", d, got, want)
		}
	}
	if got := Levels([]int{3, 100, 7}); got != 7 {
		t.Fatalf("multi-dim Levels = %d", got)
	}
}

func TestQuickErrorBoundRandomShapes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3) + 1
		dims := make([]int, n)
		for i := range dims {
			dims[i] = rng.Intn(20) + 1
		}
		vol := 1
		for _, d := range dims {
			vol *= d
		}
		data := make([]float32, vol)
		for i := range data {
			data[i] = float32(rng.NormFloat64() * 100)
		}
		eb := math.Pow(10, -rng.Float64()*3)
		fit := predict.Linear
		if rng.Intn(2) == 0 {
			fit = predict.Cubic
		}
		var valid []bool
		if rng.Intn(2) == 0 {
			valid = make([]bool, vol)
			for i := range valid {
				valid[i] = rng.Float64() > 0.25
			}
		}
		cfg := Config{EB: eb, Fitting: fit, Valid: valid}
		res, err := Compress(data, dims, cfg)
		if err != nil {
			return false
		}
		got, err := Decompress(res.Bins, res.Literals, dims, cfg)
		if err != nil {
			return false
		}
		for i := range data {
			if valid != nil && !valid[i] {
				continue
			}
			if math.Abs(float64(data[i])-float64(got[i])) > eb*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
