package lorenzo

import (
	"errors"
	"testing"
)

// TestDecompressLiteralUnderrun drives the decoder with bins that all
// demand a literal (bin 0 is the literal escape) but an empty literal
// stream — the classic truncation attack. The decoder must return an
// error wrapping ErrCorrupt, not index past the slice.
func TestDecompressLiteralUnderrun(t *testing.T) {
	bins := []int32{0, 0, 0, 0}
	_, err := Decompress(bins, nil, []int{2, 2}, Config{EB: 0.01})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("literal underrun: want ErrCorrupt, got %v", err)
	}
}

// TestDecompressShapeMismatch covers the stream-geometry guards that
// previously returned unwrapped errors: bins/volume disagreement must
// classify as corrupt input.
func TestDecompressShapeMismatch(t *testing.T) {
	_, err := Decompress([]int32{1, 1, 1}, nil, []int{2, 2}, Config{EB: 0.01})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bins/volume mismatch: want ErrCorrupt, got %v", err)
	}
	if _, err := Decompress(nil, nil, nil, Config{EB: 0.01}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty grid: want ErrCorrupt, got %v", err)
	}
}

// TestVerifyBuffersBinRange feeds the verifying decoder a bin outside
// the quantizer range; it must classify as corrupt rather than panic or
// reconstruct garbage silently.
func TestVerifyBuffersBinRange(t *testing.T) {
	bins := []int32{1 << 30, 1, 1, 1}
	recon := make([]float32, 4)
	_, err := VerifyBuffers(bins, nil, []int{2, 2}, Config{EB: 0.01}, recon, 1)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("out-of-range bin: want ErrCorrupt, got %v", err)
	}
}
