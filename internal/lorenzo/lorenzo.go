// Package lorenzo implements the first-order Lorenzo predictor of the SZ
// family (Di & Cappello, IPDPS 2016; the non-interpolation arm of the SZ3
// framework). Each point is predicted from its already-reconstructed
// lower-corner neighbours by inclusion–exclusion:
//
//	1D: p = d(i−1)
//	2D: p = d(i−1,j) + d(i,j−1) − d(i−1,j−1)
//	nD: p = Σ (−1)^(|S|+1) d(x − S) over non-empty corner subsets S
//
// Out-of-bounds and masked neighbours contribute zero, exactly as classic SZ
// handles boundaries. The package shares the bin-grid/literal contract of
// the interpolation engine, so CliZ's masking and bin classification apply
// unchanged; the auto-tuner can enable it as an extra fitting arm.
package lorenzo

import (
	"errors"
	"fmt"
	"math"

	"cliz/internal/grid"
	"cliz/internal/quant"
)

// ErrCorrupt is the sentinel wrapped by every decode-path failure in this
// package: malformed stream geometry, literal underrun, out-of-range bins,
// and self-verification mismatches. Callers classify hostile input with
// errors.Is(err, ErrCorrupt).
var ErrCorrupt = errors.New("lorenzo: corrupt compressed stream")

// Config parameterizes a Lorenzo run (mirrors interp.Config).
type Config struct {
	// EB is the absolute error bound (> 0).
	EB float64
	// Radius is the quantizer radius; 0 selects quant.DefaultRadius.
	Radius int32
	// Valid marks usable points; nil = all valid.
	Valid []bool
	// FillValue is written to masked positions on decompression.
	FillValue float32
}

// Result mirrors interp.Result.
type Result struct {
	Bins     []int32
	Literals []float32
	Recon    []float32
}

type engine struct {
	dims    []int
	strides []int
	n       int
	vol     int
	cfg     Config
	work    []float32
	q       quant.Quantizer

	// corner offsets and signs for the inclusion-exclusion sum
	offs  []int
	signs []float64
	// per-corner coordinate deltas for bounds checking
	deltas [][]int

	decode bool
	bins   []int32
	lits   []float32
	litPos int
	err    error

	// verify mode (mirrors interp): replay the scan read-only over a
	// finished reconstruction and check sampled points regenerate exactly.
	verify   bool
	vEvery   int
	vSeen    int
	vChecked int
}

func newEngine(dims []int, cfg Config) (*engine, error) {
	vol := grid.Volume(dims)
	if vol == 0 {
		return nil, fmt.Errorf("lorenzo: empty grid %v: %w", dims, ErrCorrupt)
	}
	if cfg.EB <= 0 {
		return nil, fmt.Errorf("lorenzo: error bound must be positive, got %g: %w", cfg.EB, ErrCorrupt)
	}
	if cfg.Valid != nil && len(cfg.Valid) != vol {
		return nil, fmt.Errorf("lorenzo: mask length %d != volume %d: %w", len(cfg.Valid), vol, ErrCorrupt)
	}
	if cfg.Radius == 0 {
		cfg.Radius = quant.DefaultRadius
	}
	e := &engine{
		dims:    dims,
		strides: grid.Strides(dims),
		n:       len(dims),
		vol:     vol,
		cfg:     cfg,
		q:       quant.New(cfg.EB, cfg.Radius),
	}
	// Enumerate the 2^n − 1 non-empty corner subsets.
	for mask := 1; mask < 1<<e.n; mask++ {
		off := 0
		delta := make([]int, e.n)
		bits := 0
		for d := 0; d < e.n; d++ {
			if mask&(1<<d) != 0 {
				off += e.strides[d]
				delta[d] = 1
				bits++
			}
		}
		sign := 1.0
		if bits%2 == 0 {
			sign = -1
		}
		e.offs = append(e.offs, off)
		e.signs = append(e.signs, sign)
		e.deltas = append(e.deltas, delta)
	}
	return e, nil
}

// Compress runs Lorenzo prediction + quantization over data.
func Compress(data []float32, dims []int, cfg Config) (Result, error) {
	vol := grid.Volume(dims)
	bins := make([]int32, vol)
	recon := make([]float32, vol)
	lits, err := CompressBuffers(data, dims, cfg, bins, recon)
	if err != nil {
		return Result{}, err
	}
	return Result{Bins: bins, Literals: lits, Recon: recon}, nil
}

// CompressBuffers is Compress writing bins and the reconstruction into
// caller-provided slices (mirrors interp.CompressBuffers for the sectioned
// parallel path).
func CompressBuffers(data []float32, dims []int, cfg Config, bins []int32, recon []float32) ([]float32, error) {
	e, err := newEngine(dims, cfg)
	if err != nil {
		return nil, err
	}
	if len(data) != e.vol {
		return nil, fmt.Errorf("lorenzo: data length %d != volume %d", len(data), e.vol)
	}
	if len(bins) != e.vol || len(recon) != e.vol {
		return nil, fmt.Errorf("lorenzo: buffer length %d/%d != volume %d", len(bins), len(recon), e.vol)
	}
	copy(recon, data)
	for i := range bins {
		bins[i] = 0
	}
	e.work = recon
	e.bins = bins
	e.run()
	if e.err != nil {
		return nil, e.err
	}
	if e.cfg.Valid != nil {
		for i, ok := range e.cfg.Valid {
			if !ok {
				e.work[i] = e.cfg.FillValue
			}
		}
	}
	return e.lits, nil
}

// Decompress reconstructs data from bins (grid order) and literals
// (scan order).
func Decompress(bins []int32, literals []float32, dims []int, cfg Config) ([]float32, error) {
	out := make([]float32, grid.Volume(dims))
	if err := DecompressBuffers(bins, literals, dims, cfg, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressBuffers is Decompress writing into a caller-provided slice; the
// literal slice may extend past this run's consumption.
func DecompressBuffers(bins []int32, literals []float32, dims []int, cfg Config, out []float32) error {
	e, err := newEngine(dims, cfg)
	if err != nil {
		return err
	}
	if len(bins) != e.vol {
		return fmt.Errorf("lorenzo: bins length %d != volume %d: %w", len(bins), e.vol, ErrCorrupt)
	}
	if len(out) != e.vol {
		return fmt.Errorf("lorenzo: out length %d != volume %d: %w", len(out), e.vol, ErrCorrupt)
	}
	e.decode = true
	e.work = out
	e.bins = bins
	e.lits = literals
	e.run()
	if e.err != nil {
		return e.err
	}
	if e.cfg.Valid != nil {
		for i, ok := range e.cfg.Valid {
			if !ok {
				e.work[i] = e.cfg.FillValue
			}
		}
	}
	return nil
}

// VerifyBuffers replays the decode scan read-only over a finished
// reconstruction, checking that every `every`-th handled point (1 = all) is
// exactly regenerated from its recorded bin or literal. Sound because
// Lorenzo references are always lower-corner neighbours, finalized before
// the target point on both sides.
func VerifyBuffers(bins []int32, literals []float32, dims []int, cfg Config, recon []float32, every int) (int, error) {
	e, err := newEngine(dims, cfg)
	if err != nil {
		return 0, err
	}
	if len(bins) != e.vol {
		return 0, fmt.Errorf("lorenzo: bins length %d != volume %d: %w", len(bins), e.vol, ErrCorrupt)
	}
	if len(recon) != e.vol {
		return 0, fmt.Errorf("lorenzo: recon length %d != volume %d: %w", len(recon), e.vol, ErrCorrupt)
	}
	if every < 1 {
		every = 1
	}
	e.decode = true
	e.verify = true
	e.vEvery = every
	e.work = recon
	e.bins = bins
	e.lits = literals
	e.run()
	return e.vChecked, e.err
}

// run scans the grid in row-major order (identical on both sides).
func (e *engine) run() {
	coord := make([]int, e.n)
	for idx := 0; idx < e.vol; idx++ {
		if e.cfg.Valid == nil || e.cfg.Valid[idx] {
			e.handle(idx, e.predict(idx, coord))
			if e.err != nil {
				return
			}
		}
		for ax := e.n - 1; ax >= 0; ax-- {
			coord[ax]++
			if coord[ax] < e.dims[ax] {
				break
			}
			coord[ax] = 0
		}
	}
}

// predict evaluates the inclusion-exclusion sum; neighbours outside the grid
// or masked contribute 0.
func (e *engine) predict(idx int, coord []int) float64 {
	p := 0.0
	for c, off := range e.offs {
		in := true
		for d, dd := range e.deltas[c] {
			if coord[d] < dd {
				in = false
				break
			}
		}
		if !in {
			continue
		}
		nb := idx - off
		if e.cfg.Valid != nil && !e.cfg.Valid[nb] {
			continue
		}
		p += e.signs[c] * float64(e.work[nb])
	}
	return p
}

func (e *engine) handle(idx int, pred float64) {
	if e.decode {
		bin := e.bins[idx]
		var lit float64
		if bin == 0 {
			if e.litPos >= len(e.lits) {
				e.err = fmt.Errorf("lorenzo: literal stream underrun at point %d: %w", idx, ErrCorrupt)
				return
			}
			lit = float64(e.lits[e.litPos])
			e.litPos++
		}
		if e.verify {
			if bin < 0 || bin >= 2*e.q.Radius() {
				e.err = fmt.Errorf("lorenzo: bin %d out of range at point %d: %w", bin, idx, ErrCorrupt)
				return
			}
			e.vSeen++
			if (e.vSeen-1)%e.vEvery != 0 {
				return
			}
			want := float32(e.q.Recover(pred, bin, lit))
			got := e.work[idx]
			//clizlint:ignore floateq bit-exact self-verification replay: the decoder recomputes the identical arithmetic, so any difference is corruption
			if want != got && !(math.IsNaN(float64(want)) && math.IsNaN(float64(got))) {
				e.err = fmt.Errorf("lorenzo: self-verification mismatch at point %d: reconstruction %g, bins regenerate %g: %w",
					idx, got, want, ErrCorrupt)
				return
			}
			e.vChecked++
			return
		}
		e.work[idx] = float32(e.q.Recover(pred, bin, lit))
		return
	}
	orig := float64(e.work[idx])
	bin, recon, exact := e.q.Quantize(pred, orig)
	if exact {
		e.lits = append(e.lits, e.work[idx])
	} else {
		e.work[idx] = float32(recon)
	}
	e.bins[idx] = bin
}
