// Package lorenzo implements the first-order Lorenzo predictor of the SZ
// family (Di & Cappello, IPDPS 2016; the non-interpolation arm of the SZ3
// framework). Each point is predicted from its already-reconstructed
// lower-corner neighbours by inclusion–exclusion:
//
//	1D: p = d(i−1)
//	2D: p = d(i−1,j) + d(i,j−1) − d(i−1,j−1)
//	nD: p = Σ (−1)^(|S|+1) d(x − S) over non-empty corner subsets S
//
// Out-of-bounds and masked neighbours contribute zero, exactly as classic SZ
// handles boundaries. The package shares the bin-grid/literal contract of
// the interpolation engine, so CliZ's masking and bin classification apply
// unchanged; the auto-tuner can enable it as an extra fitting arm.
//
// Like the interpolation engine, the scan separates logical indices (the
// row-major traversal order that fixes bins and literals) from physical
// indices resolved through a grid.Layout, so a dimension permutation fuses
// into the corner offsets instead of requiring a transposed copy. Unmasked
// grids run a row kernel: the per-corner bounds tests are hoisted out of the
// innermost loop by filtering the corner set once per row, preserving the
// corner summation order so predictions stay bit-identical.
package lorenzo

import (
	"errors"
	"fmt"
	"math"

	"cliz/internal/grid"
	"cliz/internal/quant"
)

// ErrCorrupt is the sentinel wrapped by every decode-path failure in this
// package: malformed stream geometry, literal underrun, out-of-range bins,
// and self-verification mismatches. Callers classify hostile input with
// errors.Is(err, ErrCorrupt).
var ErrCorrupt = errors.New("lorenzo: corrupt compressed stream")

// Config parameterizes a Lorenzo run (mirrors interp.Config).
type Config struct {
	// EB is the absolute error bound (> 0).
	EB float64
	// Radius is the quantizer radius; 0 selects quant.DefaultRadius.
	Radius int32
	// Valid marks usable points in logical order; nil = all valid.
	Valid []bool
	// FillValue is written to masked positions on decompression.
	FillValue float32
}

// Result mirrors interp.Result.
type Result struct {
	Bins     []int32
	Literals []float32
	Recon    []float32
}

type engine struct {
	dims     []int
	strides  []int // logical row-major strides
	pstrides []int // physical strides (layout)
	base     int   // physical index of the logical origin
	n        int
	vol      int
	cfg      Config
	work     []float32
	q        quant.Quantizer

	// corner offsets and signs for the inclusion-exclusion sum, in
	// ascending corner-mask order (the order fixes the float summation)
	offs  []int // logical offsets (mask validity lookups)
	poffs []int // physical offsets (value reads)
	signs []float64
	// per-corner coordinate deltas for bounds checking
	deltas [][]int

	// row-kernel corner lists for unmasked grids: the full set (interior
	// columns, j ≥ 1) and the subset with zero inner delta (column j = 0),
	// both only valid for rows whose outer coordinates are all ≥ 1.
	// rowP/rowS and row0P/row0S are scratch for boundary rows.
	fullP, in0P []int
	fullS, in0S []float64
	rowP, row0P []int
	rowS, row0S []float64

	decode bool
	bins   []int32
	lits   []float32
	litPos int
	err    error

	// verify mode (mirrors interp): replay the scan read-only over a
	// finished reconstruction and check sampled points regenerate exactly.
	verify   bool
	vEvery   int
	vSeen    int
	vChecked int
}

func newEngine(lay grid.Layout, cfg Config) (*engine, error) {
	vol := grid.Volume(lay.Dims)
	if vol == 0 {
		return nil, fmt.Errorf("lorenzo: empty grid %v: %w", lay.Dims, ErrCorrupt)
	}
	if !lay.Valid() {
		return nil, fmt.Errorf("lorenzo: invalid layout %v/%v: %w", lay.Dims, lay.Strides, ErrCorrupt)
	}
	if cfg.EB <= 0 {
		return nil, fmt.Errorf("lorenzo: error bound must be positive, got %g: %w", cfg.EB, ErrCorrupt)
	}
	if cfg.Valid != nil && len(cfg.Valid) != vol {
		return nil, fmt.Errorf("lorenzo: mask length %d != volume %d: %w", len(cfg.Valid), vol, ErrCorrupt)
	}
	if cfg.Radius == 0 {
		cfg.Radius = quant.DefaultRadius
	}
	e := &engine{
		dims:     lay.Dims,
		strides:  grid.Strides(lay.Dims),
		pstrides: lay.Strides,
		base:     lay.Base,
		n:        len(lay.Dims),
		vol:      vol,
		cfg:      cfg,
		q:        quant.New(cfg.EB, cfg.Radius),
	}
	// Enumerate the 2^n − 1 non-empty corner subsets. Ascending mask order
	// is the summation order on both the slow and row-kernel paths.
	for mask := 1; mask < 1<<e.n; mask++ {
		off, poff := 0, 0
		delta := make([]int, e.n)
		bits := 0
		for d := 0; d < e.n; d++ {
			if mask&(1<<d) != 0 {
				off += e.strides[d]
				poff += e.pstrides[d]
				delta[d] = 1
				bits++
			}
		}
		sign := 1.0
		if bits%2 == 0 {
			sign = -1
		}
		e.offs = append(e.offs, off)
		e.poffs = append(e.poffs, poff)
		e.signs = append(e.signs, sign)
		e.deltas = append(e.deltas, delta)
	}
	if cfg.Valid == nil {
		// Interior-row corner lists: every corner is in bounds once all
		// outer coordinates are ≥ 1; at column j = 0 only the corners that
		// do not reach along the inner axis apply.
		for c, delta := range e.deltas {
			e.fullP = append(e.fullP, e.poffs[c])
			e.fullS = append(e.fullS, e.signs[c])
			if delta[e.n-1] == 0 {
				e.in0P = append(e.in0P, e.poffs[c])
				e.in0S = append(e.in0S, e.signs[c])
			}
		}
		e.rowP = make([]int, 0, len(e.fullP))
		e.rowS = make([]float64, 0, len(e.fullS))
		e.row0P = make([]int, 0, len(e.in0P))
		e.row0S = make([]float64, 0, len(e.in0S))
	}
	return e, nil
}

// checkWork validates that the physical buffer covers every index the
// layout can touch (the layout comes from a blob header on decode).
func (e *engine) checkWork(buf []float32, what string) error {
	max := e.base
	for i, d := range e.dims {
		max += (d - 1) * e.pstrides[i]
	}
	if max >= len(buf) {
		return fmt.Errorf("lorenzo: %s length %d does not cover layout (max index %d): %w",
			what, len(buf), max, ErrCorrupt)
	}
	return nil
}

// Compress runs Lorenzo prediction + quantization over data.
func Compress(data []float32, dims []int, cfg Config) (Result, error) {
	vol := grid.Volume(dims)
	bins := make([]int32, vol)
	recon := make([]float32, vol)
	lits, err := CompressBuffers(data, dims, cfg, bins, recon)
	if err != nil {
		return Result{}, err
	}
	return Result{Bins: bins, Literals: lits, Recon: recon}, nil
}

// CompressBuffers is Compress writing bins and the reconstruction into
// caller-provided slices (mirrors interp.CompressBuffers for the sectioned
// parallel path).
func CompressBuffers(data []float32, dims []int, cfg Config, bins []int32, recon []float32) ([]float32, error) {
	vol := grid.Volume(dims)
	if len(data) != vol {
		return nil, fmt.Errorf("lorenzo: data length %d != volume %d", len(data), vol)
	}
	if len(bins) != vol || len(recon) != vol {
		return nil, fmt.Errorf("lorenzo: buffer length %d/%d != volume %d", len(bins), len(recon), vol)
	}
	copy(recon, data)
	return CompressLayout(recon, grid.IdentityLayout(dims), cfg, bins)
}

// CompressLayout runs prediction + quantization in place through a layout:
// on entry work holds the original values at the layout's physical
// positions, on exit the reconstruction (mirrors interp.CompressLayout).
func CompressLayout(work []float32, lay grid.Layout, cfg Config, bins []int32) ([]float32, error) {
	e, err := newEngine(lay, cfg)
	if err != nil {
		return nil, err
	}
	if len(bins) != e.vol {
		return nil, fmt.Errorf("lorenzo: bins length %d != volume %d", len(bins), e.vol)
	}
	if err := e.checkWork(work, "work"); err != nil {
		return nil, err
	}
	for i := range bins {
		bins[i] = 0
	}
	e.work = work
	e.bins = bins
	e.run()
	if e.err != nil {
		return nil, e.err
	}
	e.fillMasked()
	return e.lits, nil
}

// Decompress reconstructs data from bins (grid order) and literals
// (scan order).
func Decompress(bins []int32, literals []float32, dims []int, cfg Config) ([]float32, error) {
	out := make([]float32, grid.Volume(dims))
	if err := DecompressBuffers(bins, literals, dims, cfg, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecompressBuffers is Decompress writing into a caller-provided slice; the
// literal slice may extend past this run's consumption.
func DecompressBuffers(bins []int32, literals []float32, dims []int, cfg Config, out []float32) error {
	vol := grid.Volume(dims)
	if len(out) != vol {
		return fmt.Errorf("lorenzo: out length %d != volume %d: %w", len(out), vol, ErrCorrupt)
	}
	return DecompressLayout(bins, literals, grid.IdentityLayout(dims), cfg, out)
}

// DecompressLayout reconstructs through a layout: bins and literals are in
// logical order, the reconstruction lands at the layout's physical
// positions in out (mirrors interp.DecompressLayout).
func DecompressLayout(bins []int32, literals []float32, lay grid.Layout, cfg Config, out []float32) error {
	e, err := newEngine(lay, cfg)
	if err != nil {
		return err
	}
	if len(bins) != e.vol {
		return fmt.Errorf("lorenzo: bins length %d != volume %d: %w", len(bins), e.vol, ErrCorrupt)
	}
	if err := e.checkWork(out, "out"); err != nil {
		return err
	}
	e.decode = true
	e.work = out
	e.bins = bins
	e.lits = literals
	e.run()
	if e.err != nil {
		return e.err
	}
	e.fillMasked()
	return nil
}

// VerifyBuffers replays the decode scan read-only over a finished
// reconstruction, checking that every `every`-th handled point (1 = all) is
// exactly regenerated from its recorded bin or literal. Sound because
// Lorenzo references are always lower-corner neighbours, finalized before
// the target point on both sides.
func VerifyBuffers(bins []int32, literals []float32, dims []int, cfg Config, recon []float32, every int) (int, error) {
	vol := grid.Volume(dims)
	if len(recon) != vol {
		return 0, fmt.Errorf("lorenzo: recon length %d != volume %d: %w", len(recon), vol, ErrCorrupt)
	}
	return VerifyLayout(bins, literals, grid.IdentityLayout(dims), cfg, recon, every)
}

// VerifyLayout is VerifyBuffers over a layout-addressed reconstruction.
func VerifyLayout(bins []int32, literals []float32, lay grid.Layout, cfg Config, recon []float32, every int) (int, error) {
	e, err := newEngine(lay, cfg)
	if err != nil {
		return 0, err
	}
	if len(bins) != e.vol {
		return 0, fmt.Errorf("lorenzo: bins length %d != volume %d: %w", len(bins), e.vol, ErrCorrupt)
	}
	if err := e.checkWork(recon, "recon"); err != nil {
		return 0, err
	}
	if every < 1 {
		every = 1
	}
	e.decode = true
	e.verify = true
	e.vEvery = every
	e.work = recon
	e.bins = bins
	e.lits = literals
	e.run()
	return e.vChecked, e.err
}

// fillMasked writes the fill value to every masked position through the
// layout.
func (e *engine) fillMasked() {
	if e.cfg.Valid == nil {
		return
	}
	coord := make([]int, e.n)
	idxP := e.base
	for idx := 0; idx < e.vol; idx++ {
		if !e.cfg.Valid[idx] {
			e.work[idxP] = e.cfg.FillValue
		}
		for ax := e.n - 1; ax >= 0; ax-- {
			coord[ax]++
			idxP += e.pstrides[ax]
			if coord[ax] < e.dims[ax] {
				break
			}
			coord[ax] = 0
			idxP -= e.pstrides[ax] * e.dims[ax]
		}
	}
}

// run scans the grid in row-major order (identical on both sides). Masked
// grids take the general per-point path; unmasked grids run the row kernel.
func (e *engine) run() {
	if e.cfg.Valid != nil {
		e.runMasked()
		return
	}
	nInner := e.dims[e.n-1]
	rows := e.vol / nInner
	outer := make([]int, e.n-1)
	idx, idxP := 0, e.base
	pInner := e.pstrides[e.n-1]
	for r := 0; r < rows; r++ {
		e.runRow(idx, idxP, outer, nInner, pInner)
		if e.err != nil {
			return
		}
		idx += nInner
		for ax := e.n - 2; ax >= 0; ax-- {
			outer[ax]++
			idxP += e.pstrides[ax]
			if outer[ax] < e.dims[ax] {
				break
			}
			outer[ax] = 0
			idxP -= e.pstrides[ax] * e.dims[ax]
		}
	}
}

// runRow handles one inner row. For rows whose outer coordinates are all
// ≥ 1 the precomputed interior corner lists apply directly; boundary rows
// filter the corner set once (in ascending corner order, preserving the
// summation order) instead of re-testing bounds at every point.
func (e *engine) runRow(idx, idxP int, outer []int, nInner, pInner int) {
	p0, s0 := e.in0P, e.in0S
	pF, sF := e.fullP, e.fullS
	interior := true
	for _, c := range outer {
		if c < 1 {
			interior = false
			break
		}
	}
	if !interior {
		e.rowP, e.rowS = e.rowP[:0], e.rowS[:0]
		e.row0P, e.row0S = e.row0P[:0], e.row0S[:0]
		for c, delta := range e.deltas {
			ok := true
			for d := 0; d < e.n-1; d++ {
				if outer[d] < delta[d] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			e.rowP = append(e.rowP, e.poffs[c])
			e.rowS = append(e.rowS, e.signs[c])
			if delta[e.n-1] == 0 {
				e.row0P = append(e.row0P, e.poffs[c])
				e.row0S = append(e.row0S, e.signs[c])
			}
		}
		p0, s0 = e.row0P, e.row0S
		pF, sF = e.rowP, e.rowS
	}
	// Column 0: corners must not reach along the inner axis.
	pred := 0.0
	for k, off := range p0 {
		pred += s0[k] * float64(e.work[idxP-off])
	}
	e.handle(idx, idxP, pred)
	if e.err != nil {
		return
	}
	// Columns 1..nInner-1: the full (filtered) corner set.
	for j := 1; j < nInner; j++ {
		idx++
		idxP += pInner
		pred = 0.0
		for k, off := range pF {
			pred += sF[k] * float64(e.work[idxP-off])
		}
		e.handle(idx, idxP, pred)
		if e.err != nil {
			return
		}
	}
}

// runMasked is the general per-point scan for masked grids.
func (e *engine) runMasked() {
	coord := make([]int, e.n)
	idxP := e.base
	for idx := 0; idx < e.vol; idx++ {
		if e.cfg.Valid[idx] {
			e.handle(idx, idxP, e.predict(idx, idxP, coord))
			if e.err != nil {
				return
			}
		}
		for ax := e.n - 1; ax >= 0; ax-- {
			coord[ax]++
			idxP += e.pstrides[ax]
			if coord[ax] < e.dims[ax] {
				break
			}
			coord[ax] = 0
			idxP -= e.pstrides[ax] * e.dims[ax]
		}
	}
}

// predict evaluates the inclusion-exclusion sum; neighbours outside the grid
// or masked contribute 0.
func (e *engine) predict(idx, idxP int, coord []int) float64 {
	p := 0.0
	for c, off := range e.offs {
		in := true
		for d, dd := range e.deltas[c] {
			if coord[d] < dd {
				in = false
				break
			}
		}
		if !in {
			continue
		}
		nb := idx - off
		if e.cfg.Valid != nil && !e.cfg.Valid[nb] {
			continue
		}
		p += e.signs[c] * float64(e.work[idxP-e.poffs[c]])
	}
	return p
}

func (e *engine) handle(idx, idxP int, pred float64) {
	if e.decode {
		bin := e.bins[idx]
		var lit float64
		if bin == 0 {
			if e.litPos >= len(e.lits) {
				e.err = fmt.Errorf("lorenzo: literal stream underrun at point %d: %w", idx, ErrCorrupt)
				return
			}
			lit = float64(e.lits[e.litPos])
			e.litPos++
		}
		if e.verify {
			if bin < 0 || bin >= 2*e.q.Radius() {
				e.err = fmt.Errorf("lorenzo: bin %d out of range at point %d: %w", bin, idx, ErrCorrupt)
				return
			}
			e.vSeen++
			if (e.vSeen-1)%e.vEvery != 0 {
				return
			}
			want := float32(e.q.Recover(pred, bin, lit))
			got := e.work[idxP]
			//clizlint:ignore floateq bit-exact self-verification replay: the decoder recomputes the identical arithmetic, so any difference is corruption
			if want != got && !(math.IsNaN(float64(want)) && math.IsNaN(float64(got))) {
				e.err = fmt.Errorf("lorenzo: self-verification mismatch at point %d: reconstruction %g, bins regenerate %g: %w",
					idx, got, want, ErrCorrupt)
				return
			}
			e.vChecked++
			return
		}
		e.work[idxP] = float32(e.q.Recover(pred, bin, lit))
		return
	}
	orig := float64(e.work[idxP])
	bin, recon, exact := e.q.Quantize(pred, orig)
	if exact {
		e.lits = append(e.lits, e.work[idxP])
	} else {
		e.work[idxP] = float32(recon)
	}
	e.bins[idx] = bin
}
