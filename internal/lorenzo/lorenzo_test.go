package lorenzo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smoothField(dims []int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	vol := 1
	for _, d := range dims {
		vol *= d
	}
	out := make([]float32, vol)
	coord := make([]int, len(dims))
	for i := 0; i < vol; i++ {
		v := 0.0
		for d, c := range coord {
			v += math.Sin(2 * math.Pi * float64(c) / float64(dims[d]) * 2)
		}
		out[i] = float32(v*10 + 0.01*rng.NormFloat64())
		for ax := len(dims) - 1; ax >= 0; ax-- {
			coord[ax]++
			if coord[ax] < dims[ax] {
				break
			}
			coord[ax] = 0
		}
	}
	return out
}

func TestRoundTripErrorBound(t *testing.T) {
	for _, dims := range [][]int{{200}, {31, 41}, {7, 19, 23}, {3, 4, 5, 6}} {
		data := smoothField(dims, 1)
		for _, eb := range []float64{0.5, 0.01} {
			cfg := Config{EB: eb}
			res, err := Compress(data, dims, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Decompress(res.Bins, res.Literals, dims, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range data {
				if d := math.Abs(float64(data[i]) - float64(got[i])); d > eb*(1+1e-9) {
					t.Fatalf("%v eb=%g: error %g at %d", dims, eb, d, i)
				}
			}
		}
	}
}

// TestExactOnAffineData: the first-order Lorenzo predictor reproduces
// multilinear data exactly in the interior; only the first row/column
// (where missing neighbours contribute 0, as in classic SZ) miss.
func TestExactOnAffineData(t *testing.T) {
	dims := []int{16, 24}
	data := make([]float32, 16*24)
	for i := 0; i < 16; i++ {
		for j := 0; j < 24; j++ {
			data[i*24+j] = float32(3*i + 5*j + 7)
		}
	}
	res, err := Compress(data, dims, Config{EB: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	boundaryMiss := 0
	for idx, b := range res.Bins {
		if b == 32768 {
			continue
		}
		i, j := idx/24, idx%24
		if i == 0 || j == 0 {
			boundaryMiss++
			continue
		}
		t.Fatalf("interior point (%d,%d) off-centre: bin %d", i, j, b)
	}
	if boundaryMiss > 16+24-1 {
		t.Fatalf("too many boundary misses: %d", boundaryMiss)
	}
}

func TestMaskedRoundTrip(t *testing.T) {
	dims := []int{12, 18}
	data := smoothField(dims, 2)
	valid := make([]bool, len(data))
	rng := rand.New(rand.NewSource(3))
	for i := range valid {
		valid[i] = rng.Float64() > 0.3
		if !valid[i] {
			data[i] = 1e35
		}
	}
	cfg := Config{EB: 0.05, Valid: valid, FillValue: -9}
	res, err := Compress(data, dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(res.Bins, res.Literals, dims, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !valid[i] {
			if got[i] != -9 {
				t.Fatalf("masked point %d = %g", i, got[i])
			}
			continue
		}
		if d := math.Abs(float64(data[i]) - float64(got[i])); d > 0.05*(1+1e-9) {
			t.Fatalf("error %g at %d", d, i)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := Compress(nil, []int{0}, Config{EB: 1}); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := Compress(make([]float32, 4), []int{2, 2}, Config{EB: 0}); err == nil {
		t.Fatal("zero eb accepted")
	}
	if _, err := Compress(make([]float32, 3), []int{2, 2}, Config{EB: 1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Decompress(make([]int32, 4), nil, []int{2, 2}, Config{EB: 1}); err == nil {
		t.Fatal("literal underrun accepted")
	}
}

func TestQuickErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(3) + 1
		dims := make([]int, n)
		for i := range dims {
			dims[i] = rng.Intn(15) + 1
		}
		vol := 1
		for _, d := range dims {
			vol *= d
		}
		data := make([]float32, vol)
		for i := range data {
			data[i] = float32(rng.NormFloat64() * 50)
		}
		eb := math.Pow(10, -rng.Float64()*3)
		cfg := Config{EB: eb}
		res, err := Compress(data, dims, cfg)
		if err != nil {
			return false
		}
		got, err := Decompress(res.Bins, res.Literals, dims, cfg)
		if err != nil {
			return false
		}
		for i := range data {
			if math.Abs(float64(data[i])-float64(got[i])) > eb*(1+1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
