package lossless

import "testing"

// FuzzDecode drives all lossless decoders with arbitrary streams.
func FuzzDecode(f *testing.F) {
	payload := []byte("the quick brown fox jumps over the lazy dog, twice over")
	for _, c := range []Codec{Raw{}, Flate{Level: 6}, LZSS{}} {
		f.Add(Encode(c, payload))
	}
	f.Add([]byte{IDLZSS, 0, 0, 0, 0, 0, 0, 0, 9})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, blob []byte) {
		_, _ = Decode(blob)
	})
}

// FuzzLZSSRoundTrip checks that anything compressible decompresses to
// itself — the stronger property, fuzzed on the encoder side.
func FuzzLZSSRoundTrip(f *testing.F) {
	f.Add([]byte("aaaaaaaaaaaaaaaaaaaabbbbcc"))
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})

	f.Fuzz(func(t *testing.T, src []byte) {
		blob := Encode(LZSS{}, src)
		got, err := Decode(blob)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if len(got) != len(src) {
			t.Fatalf("length %d != %d", len(got), len(src))
		}
		for i := range got {
			if got[i] != src[i] {
				t.Fatalf("byte %d differs", i)
			}
		}
	})
}
