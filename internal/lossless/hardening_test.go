package lossless

import (
	"errors"
	"testing"
)

// TestByIDUnknown pins the decode-path contract on backend dispatch: an
// unknown backend id in a blob is corrupt input and must classify via
// errors.Is, so core can fold it into its own ErrCorrupt chain.
func TestByIDUnknown(t *testing.T) {
	_, err := ByID(0xEE)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown backend id: want ErrCorrupt, got %v", err)
	}
}
