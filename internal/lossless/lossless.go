// Package lossless provides the final lossless stage of the compression
// pipelines. The paper's CliZ uses Huffman+Zstd; as a stdlib-only substitute
// this package offers a from-scratch LZSS coder and a DEFLATE backend
// (compress/flate), selectable per pipeline, plus a raw pass-through.
// Streams are self-describing: the first byte identifies the backend.
package lossless

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Backend identifiers (first byte of every stream).
const (
	IDRaw   byte = 0
	IDFlate byte = 1
	IDLZSS  byte = 2
)

// ErrCorrupt is returned for malformed streams.
var ErrCorrupt = errors.New("lossless: corrupt stream")

// Codec compresses and decompresses byte blobs.
type Codec interface {
	Name() string
	ID() byte
	Compress(src []byte) []byte
	Decompress(src []byte) ([]byte, error)
}

// ByID returns the codec for a backend identifier.
func ByID(id byte) (Codec, error) {
	switch id {
	case IDRaw:
		return Raw{}, nil
	case IDFlate:
		return Flate{Level: flate.DefaultCompression}, nil
	case IDLZSS:
		return LZSS{}, nil
	}
	return nil, fmt.Errorf("lossless: unknown backend id %d: %w", id, ErrCorrupt)
}

// Encode compresses src with c and prepends the backend id.
func Encode(c Codec, src []byte) []byte {
	body := c.Compress(src)
	out := make([]byte, 0, len(body)+1)
	out = append(out, c.ID())
	return append(out, body...)
}

// Decode inspects the id byte and decompresses accordingly.
func Decode(src []byte) ([]byte, error) {
	if len(src) == 0 {
		return nil, ErrCorrupt
	}
	c, err := ByID(src[0])
	if err != nil {
		return nil, err
	}
	return c.Decompress(src[1:])
}

// Raw is the identity backend.
type Raw struct{}

func (Raw) Name() string { return "raw" }
func (Raw) ID() byte     { return IDRaw }
func (Raw) Compress(src []byte) []byte {
	out := make([]byte, len(src))
	copy(out, src)
	return out
}
func (Raw) Decompress(src []byte) ([]byte, error) {
	out := make([]byte, len(src))
	copy(out, src)
	return out, nil
}

// Flate wraps compress/flate; it plays the role of the Zstd stage in the
// paper's pipeline.
type Flate struct {
	Level int
}

func (Flate) Name() string { return "flate" }
func (Flate) ID() byte     { return IDFlate }

func (f Flate) Compress(src []byte) []byte {
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(src)))
	buf.Write(hdr[:])
	lvl := f.Level
	if lvl == 0 {
		lvl = flate.DefaultCompression
	}
	w, err := flate.NewWriter(&buf, lvl)
	if err != nil {
		w, _ = flate.NewWriter(&buf, flate.DefaultCompression)
	}
	_, _ = w.Write(src)
	_ = w.Close()
	return buf.Bytes()
}

func (Flate) Decompress(src []byte) ([]byte, error) {
	if len(src) < 8 {
		return nil, ErrCorrupt
	}
	n := binary.LittleEndian.Uint64(src[:8])
	const maxSize = 1 << 34 // 16 GiB sanity cap
	if n > maxSize {
		return nil, ErrCorrupt
	}
	r := flate.NewReader(bytes.NewReader(src[8:]))
	defer r.Close()
	// Grow the output as data actually arrives instead of trusting the
	// declared size up front: a corrupt length prefix would otherwise zero
	// gigabytes before the stream errors out.
	cap0 := n
	if cap0 > 1<<20 {
		cap0 = 1 << 20
	}
	out := make([]byte, 0, cap0)
	var chunk [32 << 10]byte
	for uint64(len(out)) < n {
		want := n - uint64(len(out))
		if want > uint64(len(chunk)) {
			want = uint64(len(chunk))
		}
		m, err := r.Read(chunk[:want])
		out = append(out, chunk[:m]...)
		if uint64(len(out)) == n {
			break
		}
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, fmt.Errorf("lossless: flate: %w", err)
		}
	}
	return out, nil
}

// LZSS is a from-scratch greedy LZ77 coder with a hash-chain matcher.
// Token format: a flag byte describes the next 8 tokens (bit=1 means match),
// literals are single bytes, matches are 3 bytes:
// 16-bit little-endian distance (1..65535) and a length byte (len-minMatch,
// so lengths minMatch..minMatch+255).
type LZSS struct{}

const (
	lzMinMatch = 4
	lzMaxMatch = lzMinMatch + 255
	lzWindow   = 1 << 16
	lzHashBits = 15
	lzHashLen  = 4
	lzMaxChain = 32
)

func (LZSS) Name() string { return "lzss" }
func (LZSS) ID() byte     { return IDLZSS }

func lzHash(v uint32) uint32 {
	return (v * 2654435761) >> (32 - lzHashBits)
}

func load32(b []byte, i int) uint32 {
	return uint32(b[i]) | uint32(b[i+1])<<8 | uint32(b[i+2])<<16 | uint32(b[i+3])<<24
}

func (LZSS) Compress(src []byte) []byte {
	var out []byte
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(src)))
	out = append(out, hdr[:]...)
	n := len(src)
	if n == 0 {
		return out
	}
	head := make([]int32, 1<<lzHashBits)
	for i := range head {
		head[i] = -1
	}
	prev := make([]int32, n)
	var (
		flagPos = -1
		flagBit = 8
	)
	emitFlag := func(bit byte) {
		if flagBit == 8 {
			out = append(out, 0)
			flagPos = len(out) - 1
			flagBit = 0
		}
		out[flagPos] |= bit << flagBit
		flagBit++
	}
	insert := func(i int) {
		if i+lzHashLen > n {
			return
		}
		h := lzHash(load32(src, i))
		prev[i] = head[h]
		head[h] = int32(i)
	}
	i := 0
	for i < n {
		bestLen, bestDist := 0, 0
		if i+lzMinMatch <= n {
			h := lzHash(load32(src, i))
			cand := head[h]
			limit := i - lzWindow + 1
			maxL := n - i
			if maxL > lzMaxMatch {
				maxL = lzMaxMatch
			}
			for chain := 0; cand >= 0 && int(cand) >= limit && chain < lzMaxChain; chain++ {
				c := int(cand)
				if src[c+bestLen] == src[i+bestLen] || bestLen == 0 {
					l := 0
					for l < maxL && src[c+l] == src[i+l] {
						l++
					}
					if l > bestLen {
						bestLen, bestDist = l, i-c
						if l == maxL {
							break
						}
					}
				}
				cand = prev[c]
			}
		}
		if bestLen >= lzMinMatch {
			emitFlag(1)
			out = append(out, byte(bestDist), byte(bestDist>>8), byte(bestLen-lzMinMatch))
			end := i + bestLen
			for ; i < end; i++ {
				insert(i)
			}
		} else {
			emitFlag(0)
			out = append(out, src[i])
			insert(i)
			i++
		}
	}
	return out
}

func (LZSS) Decompress(src []byte) ([]byte, error) {
	if len(src) < 8 {
		return nil, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint64(src[:8]))
	const maxSize = 1 << 34
	if n < 0 || uint64(n) > maxSize {
		return nil, ErrCorrupt
	}
	out := make([]byte, 0, n)
	p := 8
	for len(out) < n {
		if p >= len(src) {
			return nil, ErrCorrupt
		}
		flags := src[p]
		p++
		for bit := 0; bit < 8 && len(out) < n; bit++ {
			if flags&(1<<bit) != 0 {
				if p+3 > len(src) {
					return nil, ErrCorrupt
				}
				dist := int(src[p]) | int(src[p+1])<<8
				l := int(src[p+2]) + lzMinMatch
				p += 3
				if dist == 0 || dist > len(out) {
					return nil, ErrCorrupt
				}
				for k := 0; k < l; k++ {
					out = append(out, out[len(out)-dist])
				}
			} else {
				if p >= len(src) {
					return nil, ErrCorrupt
				}
				out = append(out, src[p])
				p++
			}
		}
	}
	if len(out) != n {
		return nil, ErrCorrupt
	}
	return out, nil
}
