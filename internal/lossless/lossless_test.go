package lossless

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

var codecs = []Codec{Raw{}, Flate{Level: 6}, LZSS{}}

func TestRoundTripAllBackends(t *testing.T) {
	payloads := [][]byte{
		nil,
		{},
		{0},
		[]byte("hello world hello world hello world"),
		bytes.Repeat([]byte{0xab}, 10000),
		bytes.Repeat([]byte("abcdefgh"), 997),
	}
	rng := rand.New(rand.NewSource(1))
	random := make([]byte, 4096)
	rng.Read(random)
	payloads = append(payloads, random)

	for _, c := range codecs {
		for i, p := range payloads {
			blob := Encode(c, p)
			got, err := Decode(blob)
			if err != nil {
				t.Fatalf("%s payload %d: %v", c.Name(), i, err)
			}
			if !bytes.Equal(got, p) {
				t.Fatalf("%s payload %d: round trip mismatch (%d vs %d bytes)",
					c.Name(), i, len(got), len(p))
			}
		}
	}
}

func TestCompressionOnRepetitiveData(t *testing.T) {
	src := bytes.Repeat([]byte("climate data 123 "), 2000)
	for _, c := range []Codec{Flate{Level: 6}, LZSS{}} {
		blob := Encode(c, src)
		if len(blob) >= len(src)/4 {
			t.Fatalf("%s: weak compression: %d -> %d", c.Name(), len(src), len(blob))
		}
	}
}

func TestDecodeUnknownID(t *testing.T) {
	if _, err := Decode([]byte{99, 0, 0}); err == nil {
		t.Fatal("unknown backend id should fail")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("empty stream should fail")
	}
}

func TestDecodeCorrupt(t *testing.T) {
	src := bytes.Repeat([]byte("xyz"), 500)
	for _, c := range []Codec{Flate{Level: 6}, LZSS{}} {
		blob := Encode(c, src)
		for _, cut := range []int{1, 5, len(blob) / 2} {
			if cut >= len(blob) {
				continue
			}
			if got, err := Decode(blob[:cut]); err == nil && bytes.Equal(got, src) {
				t.Fatalf("%s: truncated stream decoded to full payload", c.Name())
			}
		}
	}
}

func TestLZSSMatchBoundaries(t *testing.T) {
	// Overlapping match (dist < len) — the classic LZ77 RLE trick.
	src := append([]byte{1, 2, 3, 4}, bytes.Repeat([]byte{5}, 300)...)
	blob := Encode(LZSS{}, src)
	got, err := Decode(blob)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("overlap decode failed: %v", err)
	}
}

func TestLZSSLongInput(t *testing.T) {
	// Exceed the 64 KiB window to exercise the window limit.
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 200000)
	for i := range src {
		src[i] = byte(rng.Intn(4)) // low entropy
	}
	blob := Encode(LZSS{}, src)
	got, err := Decode(blob)
	if err != nil || !bytes.Equal(got, src) {
		t.Fatal("long input round trip failed")
	}
	if len(blob) > len(src) {
		t.Fatalf("low-entropy input expanded: %d -> %d", len(src), len(blob))
	}
}

func TestByID(t *testing.T) {
	for _, c := range codecs {
		got, err := ByID(c.ID())
		if err != nil {
			t.Fatal(err)
		}
		if got.Name() != c.Name() {
			t.Fatalf("ByID(%d) = %s want %s", c.ID(), got.Name(), c.Name())
		}
	}
}

func TestQuickLZSS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(5000)
		src := make([]byte, n)
		// Mixture of runs and noise.
		for i := 0; i < n; {
			if rng.Intn(2) == 0 {
				run := rng.Intn(50) + 1
				b := byte(rng.Intn(256))
				for j := 0; j < run && i < n; j++ {
					src[i] = b
					i++
				}
			} else {
				src[i] = byte(rng.Intn(256))
				i++
			}
		}
		blob := Encode(LZSS{}, src)
		got, err := Decode(blob)
		return err == nil && bytes.Equal(got, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
