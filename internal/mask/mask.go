// Package mask models the mask-map of climate datasets (paper §V-A).
//
// CESM-style files mark missing/invalid grid points (e.g. land cells in an
// ocean field) with huge fill values, and ship an integer mask map over the
// horizontal (lat, lon) grid: 0 means invalid, positive integers label ocean
// basins, negative integers label inland water bodies. The mask applies to
// every level/timestep of a field, so it is stored once per horizontal grid
// and broadcast across the leading dimension.
package mask

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"cliz/internal/lossless"
)

// ErrCorrupt reports a malformed serialized mask.
var ErrCorrupt = errors.New("mask: corrupt serialized mask")

// ErrShape reports a broadcast target whose dims do not fit the mask grid.
var ErrShape = errors.New("mask: dims do not match mask shape")

// Map is a horizontal mask over an nLat×nLon grid.
type Map struct {
	NLat, NLon int
	// Regions holds the raw region labels (0 = invalid). Length NLat*NLon.
	Regions []int32
}

// New builds a Map from region labels.
func New(nLat, nLon int, regions []int32) *Map {
	return &Map{NLat: nLat, NLon: nLon, Regions: regions}
}

// Valid reports whether the horizontal cell (lat, lon) holds real data.
func (m *Map) Valid(lat, lon int) bool {
	return m.Regions[lat*m.NLon+lon] != 0
}

// ValidCount returns the number of valid horizontal cells.
func (m *Map) ValidCount() int {
	n := 0
	for _, r := range m.Regions {
		if r != 0 {
			n++
		}
	}
	return n
}

// Bools returns the validity bitmap as a []bool of length NLat*NLon.
func (m *Map) Bools() []bool {
	out := make([]bool, len(m.Regions))
	for i, r := range m.Regions {
		out[i] = r != 0
	}
	return out
}

// Broadcast expands the horizontal validity to a full grid of the given dims,
// whose trailing two dimensions must equal (NLat, NLon); every leading index
// shares the same horizontal mask. A 1-D grid broadcasts a 1×n mask. Dims
// that do not fit the mask grid return ErrShape instead of panicking.
func (m *Map) Broadcast(dims []int) ([]bool, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("mask: broadcast to empty dims: %w", ErrShape)
	}
	plane := m.NLat * m.NLon
	lead := 1
	if len(dims) == 1 {
		if m.NLat != 1 || m.NLon != dims[0] {
			return nil, fmt.Errorf("mask: %dx%d mask does not fit 1-D grid of %d: %w",
				m.NLat, m.NLon, dims[0], ErrShape)
		}
	} else {
		if dims[len(dims)-2] != m.NLat || dims[len(dims)-1] != m.NLon {
			return nil, fmt.Errorf("mask: %dx%d mask does not fit trailing dims of %v: %w",
				m.NLat, m.NLon, dims, ErrShape)
		}
		for _, d := range dims[:len(dims)-2] {
			lead *= d
		}
	}
	hm := m.Bools()
	out := make([]bool, lead*plane)
	for l := 0; l < lead; l++ {
		copy(out[l*plane:(l+1)*plane], hm)
	}
	return out, nil
}

// FromFillValue derives a mask by scanning one horizontal slice of data for
// the dataset's fill value (CESM writes values around 1e35–1e36 for missing
// points). Points whose magnitude reaches threshold are invalid.
func FromFillValue(slice []float32, nLat, nLon int, threshold float64) *Map {
	regions := make([]int32, nLat*nLon)
	for i, v := range slice {
		f := float64(v)
		if math.IsNaN(f) || math.Abs(f) >= threshold {
			regions[i] = 0
		} else {
			regions[i] = 1
		}
	}
	return &Map{NLat: nLat, NLon: nLon, Regions: regions}
}

// Serialize encodes the validity bitmap (1 bit per cell) and compresses it;
// region labels beyond valid/invalid are not needed for compression and are
// dropped, matching how CliZ consumes the mask.
func (m *Map) Serialize() []byte {
	nb := (len(m.Regions) + 7) / 8
	bits := make([]byte, nb)
	for i, r := range m.Regions {
		if r != 0 {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	payload := lossless.Encode(lossless.Flate{Level: 6}, bits)
	out := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:], uint32(m.NLat))
	binary.LittleEndian.PutUint32(out[4:], uint32(m.NLon))
	return append(out, payload...)
}

// Parse decodes a mask produced by Serialize.
func Parse(src []byte) (*Map, error) {
	if len(src) < 8 {
		return nil, ErrCorrupt
	}
	nLat := int(binary.LittleEndian.Uint32(src[0:]))
	nLon := int(binary.LittleEndian.Uint32(src[4:]))
	if nLat <= 0 || nLon <= 0 || nLat*nLon > 1<<31 {
		return nil, ErrCorrupt
	}
	bits, err := lossless.Decode(src[8:])
	if err != nil {
		return nil, err
	}
	n := nLat * nLon
	if len(bits) < (n+7)/8 {
		return nil, ErrCorrupt
	}
	regions := make([]int32, n)
	for i := 0; i < n; i++ {
		if bits[i/8]&(1<<(i%8)) != 0 {
			regions[i] = 1
		}
	}
	return &Map{NLat: nLat, NLon: nLon, Regions: regions}, nil
}
