package mask

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

func TestValidAndCount(t *testing.T) {
	m := New(2, 3, []int32{0, 1, -2, 0, 5, 0})
	if m.Valid(0, 0) || !m.Valid(0, 1) || !m.Valid(0, 2) {
		t.Fatal("validity wrong in row 0")
	}
	if m.Valid(1, 0) || !m.Valid(1, 1) || m.Valid(1, 2) {
		t.Fatal("validity wrong in row 1")
	}
	if m.ValidCount() != 3 {
		t.Fatalf("ValidCount = %d", m.ValidCount())
	}
}

func TestBools(t *testing.T) {
	m := New(1, 4, []int32{0, 2, -1, 0})
	want := []bool{false, true, true, false}
	if !reflect.DeepEqual(m.Bools(), want) {
		t.Fatalf("Bools = %v", m.Bools())
	}
}

func TestBroadcast(t *testing.T) {
	m := New(2, 2, []int32{1, 0, 0, 1})
	got, err := m.Broadcast([]int{3, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("len = %d", len(got))
	}
	for l := 0; l < 3; l++ {
		off := l * 4
		if !got[off] || got[off+1] || got[off+2] || !got[off+3] {
			t.Fatalf("layer %d wrong: %v", l, got[off:off+4])
		}
	}
}

func TestBroadcast2D(t *testing.T) {
	m := New(2, 2, []int32{1, 1, 0, 1})
	got, err := m.Broadcast([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, false, true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
}

func TestFromFillValue(t *testing.T) {
	slice := []float32{1.5, 9.97e36, -2.0, float32(1e35)}
	m := FromFillValue(slice, 2, 2, 1e30)
	want := []bool{true, false, true, false}
	if !reflect.DeepEqual(m.Bools(), want) {
		t.Fatalf("got %v", m.Bools())
	}
}

func TestSerializeParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nLat, nLon := 37, 53
	regions := make([]int32, nLat*nLon)
	for i := range regions {
		if rng.Float64() < 0.6 {
			regions[i] = int32(rng.Intn(5) + 1)
		}
	}
	m := New(nLat, nLon, regions)
	blob := m.Serialize()
	got, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.NLat != nLat || got.NLon != nLon {
		t.Fatalf("dims %dx%d", got.NLat, got.NLon)
	}
	if !reflect.DeepEqual(got.Bools(), m.Bools()) {
		t.Fatal("validity changed through serialization")
	}
}

func TestSerializeCompact(t *testing.T) {
	// A realistic coastline-ish mask should compress far below 1 bit/cell.
	nLat, nLon := 192, 160
	regions := make([]int32, nLat*nLon)
	for i := 0; i < nLat; i++ {
		for j := 0; j < nLon; j++ {
			if j > nLon/3 {
				regions[i*nLon+j] = 1
			}
		}
	}
	m := New(nLat, nLon, regions)
	blob := m.Serialize()
	if len(blob) > nLat*nLon/32 {
		t.Fatalf("mask blob too large: %d bytes for %d cells", len(blob), nLat*nLon)
	}
}

func TestParseCorrupt(t *testing.T) {
	truncated := New(2, 2, []int32{1, 1, 1, 1}).Serialize()[:9]
	for _, blob := range [][]byte{nil, {1, 2, 3}, make([]byte, 8), truncated} {
		if _, err := Parse(blob); err == nil {
			t.Fatalf("Parse(%v) should fail", blob)
		}
	}
}

// TestBroadcastRank1 pins the satellite bugfix: a rank-1 dims vector used to
// index dims[len-2] and panic. A 1×n mask broadcasts onto a 1-D grid; any
// other rank-1 shape is a shape error, not a panic.
func TestBroadcastRank1(t *testing.T) {
	m := New(1, 3, []int32{1, 0, 1})
	got, err := m.Broadcast([]int{3})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v", got)
	}
	if _, err := m.Broadcast([]int{4}); err == nil {
		t.Fatal("mismatched 1-D extent accepted")
	}
}

func TestBroadcastShapeMismatch(t *testing.T) {
	m := New(2, 3, []int32{1, 1, 1, 0, 0, 0})
	cases := [][]int{
		nil,          // empty dims
		{},           // empty dims
		{5, 3, 2},    // trailing dims swapped
		{4, 2, 2},    // wrong lon extent
		{10, 3, 3},   // wrong lat extent
		{2, 2, 3, 2}, // 4-D with trailing dims swapped
	}
	for _, dims := range cases {
		if _, err := m.Broadcast(dims); err == nil {
			t.Fatalf("dims %v accepted by a 2x3 mask", dims)
		} else if !errors.Is(err, ErrShape) {
			t.Fatalf("dims %v: error %v does not wrap ErrShape", dims, err)
		}
	}
	if _, err := m.Broadcast([]int{7, 2, 3}); err != nil {
		t.Fatalf("matching dims rejected: %v", err)
	}
}
