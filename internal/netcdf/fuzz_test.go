package netcdf

import "testing"

// FuzzParse drives the NetCDF header parser and data reader with arbitrary
// bytes; seeds include a fully valid file.
func FuzzParse(f *testing.F) {
	var w Writer
	d := w.AddDim("x", 4)
	_ = w.AddFloatVar("v", []int{d}, []Attr{{Name: "units", Value: "K"}}, []float32{1, 2, 3, 4})
	blob, err := w.Bytes()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte("CDF\x01"))
	f.Add([]byte("CDF\x02\x00\x00\x00\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, raw []byte) {
		file, err := Parse(raw)
		if err != nil {
			return
		}
		for _, name := range file.VarNames() {
			_, _, _ = file.ReadFloat32(name)
			if v, err := file.FindVar(name); err == nil {
				_, _ = v.FillValue()
			}
		}
	})
}
