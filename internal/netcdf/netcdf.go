// Package netcdf implements the NetCDF classic file format (CDF-1/CDF-2),
// enough to exchange climate fields with standard tools: reading and writing
// dimensions, attributes, and fixed-size variables of the numeric types.
//
// The paper lists NetCDF integration as CliZ's future work (§VIII); this
// package realizes it for the classic format so cmd/clizc can compress
// variables straight out of .nc files and cmd/datagen can emit them. The
// implementation follows the NetCDF classic format specification
// (magic "CDF\x01"/"CDF\x02", big-endian, 4-byte aligned headers).
package netcdf

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Type is a NetCDF external data type.
type Type int32

// NetCDF classic external types.
const (
	Byte   Type = 1
	Char   Type = 2
	Short  Type = 3
	Int    Type = 4
	Float  Type = 5
	Double Type = 6
)

func (t Type) size() int {
	switch t {
	case Byte, Char:
		return 1
	case Short:
		return 2
	case Int, Float:
		return 4
	case Double:
		return 8
	}
	return 0
}

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case Byte:
		return "byte"
	case Char:
		return "char"
	case Short:
		return "short"
	case Int:
		return "int"
	case Float:
		return "float"
	case Double:
		return "double"
	}
	return fmt.Sprintf("type(%d)", int32(t))
}

// header tags.
const (
	tagDimension = 0x0A
	tagVariable  = 0x0B
	tagAttribute = 0x0C
	tagAbsent    = 0x00
)

// ErrCorrupt reports a malformed NetCDF file.
var ErrCorrupt = errors.New("netcdf: corrupt file")

// Dim is a named dimension.
type Dim struct {
	Name string
	Len  int // 0 marks the record dimension (unsupported for data access)
}

// Attr is an attribute; Value holds string, []float64, []int32 or []byte
// depending on Type.
type Attr struct {
	Name  string
	Type  Type
	Value any
}

// Var is a variable.
type Var struct {
	Name   string
	Type   Type
	DimIDs []int
	Attrs  []Attr

	begin int64 // data offset
	vsize int64
}

// File is a parsed NetCDF classic file.
type File struct {
	Version byte // 1 or 2
	Dims    []Dim
	Attrs   []Attr
	Vars    []Var

	raw []byte
}

// Parse reads a classic NetCDF file from memory.
func Parse(raw []byte) (*File, error) {
	if len(raw) < 8 || string(raw[:3]) != "CDF" {
		return nil, fmt.Errorf("netcdf: bad magic: %w", ErrCorrupt)
	}
	version := raw[3]
	if version != 1 && version != 2 {
		return nil, fmt.Errorf("netcdf: unsupported version %d (classic CDF-1/2 only)", version)
	}
	f := &File{Version: version, raw: raw}
	p := &parser{raw: raw, pos: 4, offSize: 4}
	if version == 2 {
		p.offSize = 8
	}
	_ = p.u32() // numrecs (record variables unsupported for data access)
	var err error
	f.Dims, err = p.dimList()
	if err != nil {
		return nil, err
	}
	f.Attrs, err = p.attrList()
	if err != nil {
		return nil, err
	}
	f.Vars, err = p.varList(len(f.Dims))
	if err != nil {
		return nil, err
	}
	if p.err != nil {
		return nil, p.err
	}
	return f, nil
}

// VarNames lists variable names in file order.
func (f *File) VarNames() []string {
	out := make([]string, len(f.Vars))
	for i, v := range f.Vars {
		out[i] = v.Name
	}
	return out
}

// FindVar returns the named variable.
func (f *File) FindVar(name string) (*Var, error) {
	for i := range f.Vars {
		if f.Vars[i].Name == name {
			return &f.Vars[i], nil
		}
	}
	return nil, fmt.Errorf("netcdf: no variable %q (have %v)", name, f.VarNames())
}

// VarDims returns the extents of a variable's dimensions.
func (f *File) VarDims(v *Var) ([]int, error) {
	out := make([]int, len(v.DimIDs))
	for i, id := range v.DimIDs {
		if id < 0 || id >= len(f.Dims) {
			return nil, ErrCorrupt
		}
		if f.Dims[id].Len == 0 {
			return nil, fmt.Errorf("netcdf: record variable %q unsupported", v.Name)
		}
		out[i] = f.Dims[id].Len
	}
	return out, nil
}

// ReadFloat32 reads a numeric variable, converting to float32.
func (f *File) ReadFloat32(name string) ([]float32, []int, error) {
	v, err := f.FindVar(name)
	if err != nil {
		return nil, nil, err
	}
	dims, err := f.VarDims(v)
	if err != nil {
		return nil, nil, err
	}
	n := 1
	for _, d := range dims {
		n *= d
	}
	esz := v.Type.size()
	if esz == 0 {
		return nil, nil, fmt.Errorf("netcdf: variable %q has unreadable type %s", name, v.Type)
	}
	end := v.begin + int64(n)*int64(esz)
	if v.begin < 0 || end > int64(len(f.raw)) {
		return nil, nil, fmt.Errorf("netcdf: variable %q data out of range: %w", name, ErrCorrupt)
	}
	src := f.raw[v.begin:end]
	out := make([]float32, n)
	switch v.Type {
	case Float:
		for i := range out {
			out[i] = math.Float32frombits(binary.BigEndian.Uint32(src[4*i:]))
		}
	case Double:
		for i := range out {
			out[i] = float32(math.Float64frombits(binary.BigEndian.Uint64(src[8*i:])))
		}
	case Int:
		for i := range out {
			out[i] = float32(int32(binary.BigEndian.Uint32(src[4*i:])))
		}
	case Short:
		for i := range out {
			out[i] = float32(int16(binary.BigEndian.Uint16(src[2*i:])))
		}
	case Byte:
		for i := range out {
			out[i] = float32(int8(src[i]))
		}
	default:
		return nil, nil, fmt.Errorf("netcdf: cannot convert %s to float32", v.Type)
	}
	return out, dims, nil
}

// FillValue returns the variable's _FillValue attribute if present.
func (v *Var) FillValue() (float64, bool) {
	for _, a := range v.Attrs {
		if a.Name != "_FillValue" && a.Name != "missing_value" {
			continue
		}
		switch vv := a.Value.(type) {
		case []float64:
			if len(vv) > 0 {
				return vv[0], true
			}
		case []int32:
			if len(vv) > 0 {
				return float64(vv[0]), true
			}
		}
	}
	return 0, false
}

// --- parsing ---

type parser struct {
	raw     []byte
	pos     int
	offSize int
	err     error
}

func (p *parser) fail(msg string) {
	if p.err == nil {
		p.err = fmt.Errorf("netcdf: %s at offset %d: %w", msg, p.pos, ErrCorrupt)
	}
}

func (p *parser) u32() uint32 {
	if p.err != nil {
		return 0
	}
	if p.pos+4 > len(p.raw) {
		p.fail("truncated u32")
		return 0
	}
	v := binary.BigEndian.Uint32(p.raw[p.pos:])
	p.pos += 4
	return v
}

func (p *parser) offset() int64 {
	if p.offSize == 4 {
		return int64(p.u32())
	}
	if p.err != nil {
		return 0
	}
	if p.pos+8 > len(p.raw) {
		p.fail("truncated u64")
		return 0
	}
	v := binary.BigEndian.Uint64(p.raw[p.pos:])
	p.pos += 8
	return int64(v)
}

func (p *parser) name() string {
	n := int(p.u32())
	if p.err != nil {
		return ""
	}
	if n < 0 || p.pos+pad4(n) > len(p.raw) {
		p.fail("truncated name")
		return ""
	}
	s := string(p.raw[p.pos : p.pos+n])
	p.pos += pad4(n)
	return s
}

func pad4(n int) int { return (n + 3) &^ 3 }

func (p *parser) taggedCount(wantTag uint32) int {
	tag := p.u32()
	count := p.u32()
	if p.err != nil {
		return 0
	}
	if tag == tagAbsent && count == 0 {
		return 0
	}
	if tag != wantTag {
		p.fail(fmt.Sprintf("expected tag %#x, got %#x", wantTag, tag))
		return 0
	}
	if count > uint32(len(p.raw)) {
		p.fail("absurd element count")
		return 0
	}
	return int(count)
}

func (p *parser) dimList() ([]Dim, error) {
	n := p.taggedCount(tagDimension)
	dims := make([]Dim, 0, n)
	for i := 0; i < n && p.err == nil; i++ {
		name := p.name()
		l := p.u32()
		dims = append(dims, Dim{Name: name, Len: int(l)})
	}
	return dims, p.err
}

func (p *parser) attrList() ([]Attr, error) {
	n := p.taggedCount(tagAttribute)
	attrs := make([]Attr, 0, n)
	for i := 0; i < n && p.err == nil; i++ {
		a := Attr{Name: p.name(), Type: Type(p.u32())}
		ne := int(p.u32())
		esz := a.Type.size()
		if esz == 0 || ne < 0 || p.pos+pad4(ne*esz) > len(p.raw) {
			p.fail("bad attribute")
			break
		}
		body := p.raw[p.pos : p.pos+ne*esz]
		p.pos += pad4(ne * esz)
		switch a.Type {
		case Char:
			a.Value = string(body)
		case Byte:
			a.Value = append([]byte(nil), body...)
		case Short:
			vals := make([]int32, ne)
			for j := range vals {
				vals[j] = int32(int16(binary.BigEndian.Uint16(body[2*j:])))
			}
			a.Value = vals
		case Int:
			vals := make([]int32, ne)
			for j := range vals {
				vals[j] = int32(binary.BigEndian.Uint32(body[4*j:]))
			}
			a.Value = vals
		case Float:
			vals := make([]float64, ne)
			for j := range vals {
				vals[j] = float64(math.Float32frombits(binary.BigEndian.Uint32(body[4*j:])))
			}
			a.Value = vals
		case Double:
			vals := make([]float64, ne)
			for j := range vals {
				vals[j] = math.Float64frombits(binary.BigEndian.Uint64(body[8*j:]))
			}
			a.Value = vals
		}
		attrs = append(attrs, a)
	}
	return attrs, p.err
}

func (p *parser) varList(nDims int) ([]Var, error) {
	n := p.taggedCount(tagVariable)
	vars := make([]Var, 0, n)
	for i := 0; i < n && p.err == nil; i++ {
		v := Var{Name: p.name()}
		nd := int(p.u32())
		if nd < 0 || nd > 64 {
			p.fail("bad variable rank")
			break
		}
		v.DimIDs = make([]int, nd)
		for j := range v.DimIDs {
			id := int(p.u32())
			if id < 0 || id >= nDims {
				p.fail("bad dim id")
			}
			v.DimIDs[j] = id
		}
		var err error
		v.Attrs, err = p.attrList()
		if err != nil {
			return nil, err
		}
		v.Type = Type(p.u32())
		v.vsize = int64(p.u32())
		v.begin = p.offset()
		vars = append(vars, v)
	}
	return vars, p.err
}

// --- writing ---

// Writer builds a classic CDF-1 file with fixed-size variables.
type Writer struct {
	dims  []Dim
	gatts []Attr
	vars  []wvar
}

type wvar struct {
	name   string
	typ    Type
	dimIDs []int
	attrs  []Attr
	data   []byte // big-endian external representation
}

// AddDim registers a dimension and returns its id.
func (w *Writer) AddDim(name string, length int) int {
	w.dims = append(w.dims, Dim{Name: name, Len: length})
	return len(w.dims) - 1
}

// AddGlobalAttr adds a global attribute (Value: string, []float64 (with
// Float/Double type) or []int32).
func (w *Writer) AddGlobalAttr(a Attr) { w.gatts = append(w.gatts, a) }

// AddFloatVar adds a float32 variable over the given dimension ids.
func (w *Writer) AddFloatVar(name string, dimIDs []int, attrs []Attr, data []float32) error {
	n := 1
	for _, id := range dimIDs {
		if id < 0 || id >= len(w.dims) {
			return fmt.Errorf("netcdf: bad dim id %d", id)
		}
		n *= w.dims[id].Len
	}
	if n != len(data) {
		return fmt.Errorf("netcdf: variable %q: %d values for volume %d", name, len(data), n)
	}
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.BigEndian.PutUint32(raw[4*i:], math.Float32bits(v))
	}
	w.vars = append(w.vars, wvar{name: name, typ: Float, dimIDs: append([]int(nil), dimIDs...), attrs: attrs, data: raw})
	return nil
}

// AddIntVar adds an int32 variable (e.g. a mask map).
func (w *Writer) AddIntVar(name string, dimIDs []int, attrs []Attr, data []int32) error {
	n := 1
	for _, id := range dimIDs {
		if id < 0 || id >= len(w.dims) {
			return fmt.Errorf("netcdf: bad dim id %d", id)
		}
		n *= w.dims[id].Len
	}
	if n != len(data) {
		return fmt.Errorf("netcdf: variable %q: %d values for volume %d", name, len(data), n)
	}
	raw := make([]byte, 4*len(data))
	for i, v := range data {
		binary.BigEndian.PutUint32(raw[4*i:], uint32(v))
	}
	w.vars = append(w.vars, wvar{name: name, typ: Int, dimIDs: append([]int(nil), dimIDs...), attrs: attrs, data: raw})
	return nil
}

// Bytes serializes the file.
func (w *Writer) Bytes() ([]byte, error) {
	var hdr []byte
	hdr = append(hdr, 'C', 'D', 'F', 1)
	hdr = be32(hdr, 0) // numrecs
	// dim list
	if len(w.dims) == 0 {
		hdr = be32(hdr, tagAbsent)
		hdr = be32(hdr, 0)
	} else {
		hdr = be32(hdr, tagDimension)
		hdr = be32(hdr, uint32(len(w.dims)))
		for _, d := range w.dims {
			hdr = beName(hdr, d.Name)
			hdr = be32(hdr, uint32(d.Len))
		}
	}
	var err error
	hdr, err = appendAttrs(hdr, w.gatts)
	if err != nil {
		return nil, err
	}
	// Variable list: first with placeholder offsets to size the header.
	varsAt := len(hdr)
	build := func(begins []int64) ([]byte, error) {
		out := append([]byte(nil), hdr[:varsAt]...)
		if len(w.vars) == 0 {
			out = be32(out, tagAbsent)
			out = be32(out, 0)
			return out, nil
		}
		out = be32(out, tagVariable)
		out = be32(out, uint32(len(w.vars)))
		for i, v := range w.vars {
			out = beName(out, v.name)
			out = be32(out, uint32(len(v.dimIDs)))
			for _, id := range v.dimIDs {
				out = be32(out, uint32(id))
			}
			var err error
			out, err = appendAttrs(out, v.attrs)
			if err != nil {
				return nil, err
			}
			out = be32(out, uint32(v.typ))
			out = be32(out, uint32(pad4(len(v.data))))
			out = be32(out, uint32(begins[i]))
		}
		return out, nil
	}
	placeholder := make([]int64, len(w.vars))
	probe, err := build(placeholder)
	if err != nil {
		return nil, err
	}
	begins := make([]int64, len(w.vars))
	off := int64(len(probe))
	for i, v := range w.vars {
		begins[i] = off
		off += int64(pad4(len(v.data)))
		if off > math.MaxUint32 {
			return nil, fmt.Errorf("netcdf: CDF-1 file exceeds 4 GiB")
		}
	}
	out, err := build(begins)
	if err != nil {
		return nil, err
	}
	for _, v := range w.vars {
		out = append(out, v.data...)
		for len(out)%4 != 0 {
			out = append(out, 0)
		}
	}
	return out, nil
}

func be32(dst []byte, v uint32) []byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return append(dst, b[:]...)
}

func beName(dst []byte, s string) []byte {
	dst = be32(dst, uint32(len(s)))
	dst = append(dst, s...)
	for len(dst)%4 != 0 {
		dst = append(dst, 0)
	}
	return dst
}

func appendAttrs(dst []byte, attrs []Attr) ([]byte, error) {
	if len(attrs) == 0 {
		dst = be32(dst, tagAbsent)
		return be32(dst, 0), nil
	}
	dst = be32(dst, tagAttribute)
	dst = be32(dst, uint32(len(attrs)))
	for _, a := range attrs {
		dst = beName(dst, a.Name)
		switch v := a.Value.(type) {
		case string:
			dst = be32(dst, uint32(Char))
			dst = be32(dst, uint32(len(v)))
			dst = append(dst, v...)
			for len(dst)%4 != 0 {
				dst = append(dst, 0)
			}
		case []float64:
			t := a.Type
			if t != Float && t != Double {
				t = Double
			}
			dst = be32(dst, uint32(t))
			dst = be32(dst, uint32(len(v)))
			for _, x := range v {
				if t == Float {
					dst = be32(dst, math.Float32bits(float32(x)))
				} else {
					var b [8]byte
					binary.BigEndian.PutUint64(b[:], math.Float64bits(x))
					dst = append(dst, b[:]...)
				}
			}
		case []int32:
			dst = be32(dst, uint32(Int))
			dst = be32(dst, uint32(len(v)))
			for _, x := range v {
				dst = be32(dst, uint32(x))
			}
		default:
			return nil, fmt.Errorf("netcdf: unsupported attribute value %T for %q", a.Value, a.Name)
		}
	}
	return dst, nil
}

// SortedVarNames returns variable names sorted alphabetically (stable
// listing for CLIs).
func (f *File) SortedVarNames() []string {
	names := f.VarNames()
	sort.Strings(names)
	return names
}
