package netcdf

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func buildSample(t *testing.T) ([]byte, []float32, []int32) {
	t.Helper()
	var w Writer
	dT := w.AddDim("time", 4)
	dLat := w.AddDim("lat", 3)
	dLon := w.AddDim("lon", 5)
	w.AddGlobalAttr(Attr{Name: "title", Value: "cliz test file"})
	w.AddGlobalAttr(Attr{Name: "version", Value: []int32{3}})

	rng := rand.New(rand.NewSource(1))
	ssh := make([]float32, 4*3*5)
	for i := range ssh {
		ssh[i] = float32(rng.NormFloat64() * 10)
	}
	ssh[7] = 9.96921e36
	err := w.AddFloatVar("SSH", []int{dT, dLat, dLon}, []Attr{
		{Name: "units", Value: "cm"},
		{Name: "_FillValue", Type: Float, Value: []float64{9.96921e36}},
	}, ssh)
	if err != nil {
		t.Fatal(err)
	}
	regions := []int32{1, 1, 0, 1, 0, 1, 1, 1, 1, 0, 0, 1, 1, 1, 1}
	if err := w.AddIntVar("REGION_MASK", []int{dLat, dLon}, nil, regions); err != nil {
		t.Fatal(err)
	}
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	return blob, ssh, regions
}

func TestWriteParseRoundTrip(t *testing.T) {
	blob, ssh, regions := buildSample(t)
	f, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if f.Version != 1 {
		t.Fatalf("version %d", f.Version)
	}
	if len(f.Dims) != 3 || f.Dims[0].Name != "time" || f.Dims[2].Len != 5 {
		t.Fatalf("dims %+v", f.Dims)
	}
	if len(f.Attrs) != 2 || f.Attrs[0].Name != "title" {
		t.Fatalf("gatts %+v", f.Attrs)
	}
	if s, ok := f.Attrs[0].Value.(string); !ok || s != "cliz test file" {
		t.Fatalf("title attr %v", f.Attrs[0].Value)
	}

	got, dims, err := f.ReadFloat32("SSH")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dims, []int{4, 3, 5}) {
		t.Fatalf("dims %v", dims)
	}
	if !reflect.DeepEqual(got, ssh) {
		t.Fatal("float data mismatch")
	}

	gotMask, mdims, err := f.ReadFloat32("REGION_MASK")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mdims, []int{3, 5}) {
		t.Fatalf("mask dims %v", mdims)
	}
	for i, r := range regions {
		if gotMask[i] != float32(r) {
			t.Fatalf("mask[%d] = %g want %d", i, gotMask[i], r)
		}
	}
}

func TestFillValueAttr(t *testing.T) {
	blob, _, _ := buildSample(t)
	f, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.FindVar("SSH")
	if err != nil {
		t.Fatal(err)
	}
	fill, ok := v.FillValue()
	if !ok {
		t.Fatal("fill value not found")
	}
	if math.Abs(fill-9.96921e36)/9.96921e36 > 1e-6 {
		t.Fatalf("fill = %g", fill)
	}
	m, err := f.FindVar("REGION_MASK")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.FillValue(); ok {
		t.Fatal("mask has no fill value")
	}
}

func TestVarNamesAndMissing(t *testing.T) {
	blob, _, _ := buildSample(t)
	f, _ := Parse(blob)
	if !reflect.DeepEqual(f.SortedVarNames(), []string{"REGION_MASK", "SSH"}) {
		t.Fatalf("names %v", f.SortedVarNames())
	}
	if _, err := f.FindVar("NOPE"); err == nil {
		t.Fatal("missing variable accepted")
	}
	if _, _, err := f.ReadFloat32("NOPE"); err == nil {
		t.Fatal("missing variable read")
	}
}

func TestNamePadding(t *testing.T) {
	// Names of every length mod 4 must round-trip (padding handling).
	var w Writer
	d := w.AddDim("x", 2)
	for _, name := range []string{"a", "ab", "abc", "abcd", "abcde"} {
		if err := w.AddFloatVar(name, []int{d}, nil, []float32{1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "ab", "abc", "abcd", "abcde"} {
		got, _, err := f.ReadFloat32(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got[0] != 1 || got[1] != 2 {
			t.Fatalf("%s: %v", name, got)
		}
	}
}

func TestTypeConversions(t *testing.T) {
	// Build a file with double/int/short/byte variables by hand-encoding
	// through the writer's int path and a manual double patch is overkill;
	// instead verify the converter on a double variable written as raw.
	var w Writer
	d := w.AddDim("x", 3)
	if err := w.AddIntVar("iv", []int{d}, nil, []int32{-1, 0, 2147483647}); err != nil {
		t.Fatal(err)
	}
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := f.ReadFloat32("iv")
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != -1 || got[1] != 0 || got[2] != float32(2147483647) {
		t.Fatalf("int conversion: %v", got)
	}
}

func TestParseCorrupt(t *testing.T) {
	blob, _, _ := buildSample(t)
	cases := [][]byte{
		nil,
		[]byte("NOPE"),
		[]byte("CDF\x05garbagegarbage"),
		blob[:10],
		blob[:len(blob)/3],
	}
	for i, bad := range cases {
		if f, err := Parse(bad); err == nil {
			// Header may parse on some truncations; data reads must fail.
			if _, _, err2 := f.ReadFloat32("SSH"); err2 == nil {
				t.Fatalf("case %d: corrupt file fully readable", i)
			}
		}
	}
}

func TestEmptyFile(t *testing.T) {
	var w Writer
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Dims) != 0 || len(f.Vars) != 0 {
		t.Fatal("empty file should be empty")
	}
}

func TestDataAlignment(t *testing.T) {
	// A variable with a non-multiple-of-4 byte size would break alignment;
	// float data is always 4-aligned, but data sections must start 4-aligned
	// regardless.
	var w Writer
	d := w.AddDim("x", 1)
	_ = w.AddFloatVar("a", []int{d}, nil, []float32{3.5})
	_ = w.AddFloatVar("b", []int{d}, nil, []float32{-7.25})
	blob, err := w.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	f, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range f.Vars {
		if v.begin%4 != 0 {
			t.Fatalf("variable %s misaligned at %d", v.Name, v.begin)
		}
	}
	b, _, err := f.ReadFloat32("b")
	if err != nil || b[0] != -7.25 {
		t.Fatalf("b = %v (%v)", b, err)
	}
}
