// Package netsim models the compression-enabled Globus WAN transfer of the
// paper's scaled-performance experiment (§VII-C4, Fig. 13): N cores each
// compress one file in parallel, then the compressed files cross a shared
// wide-area bottleneck. The conclusion of Fig. 13 is arithmetic on
// compressed sizes (transfer ≈ bytes/bandwidth) driven by *measured*
// compression times and *actual* compressed sizes — only the link constants
// are synthetic, and they default to an ANL→Purdue-like 10 Gbit/s path.
//
// Every entry point validates its inputs strictly: a NaN or infinite link
// constant, a zero-core or zero-byte job, or a negative duration returns a
// clean error instead of silently propagating NaN/Inf arithmetic into a
// transfer plan — the /v1/plan service endpoint builds directly on these
// numbers and must never emit a garbage plan.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrBadInput is the sentinel wrapped by every validation failure, so
// callers (the /v1/plan handler above all) can classify a degenerate
// configuration with errors.Is instead of string matching.
var ErrBadInput = errors.New("netsim: invalid input")

// WAN describes the wide-area path between the two endpoints.
type WAN struct {
	// BandwidthBytesPerSec is the shared bottleneck capacity.
	BandwidthBytesPerSec float64
	// SetupSec is the per-session control overhead (Globus handshake,
	// checksums), paid once per transfer batch.
	SetupSec float64
	// PerFileSec is the per-file bookkeeping overhead, overlapped across
	// ParallelStreams concurrent streams.
	PerFileSec float64
	// ParallelStreams is the endpoint's concurrency (Globus default 4–8).
	ParallelStreams int
}

// DefaultWAN approximates the paper's ANL Bebop → Purdue Anvil path.
func DefaultWAN() WAN {
	return WAN{
		BandwidthBytesPerSec: 1.25e9, // 10 Gbit/s
		SetupSec:             2.0,
		PerFileSec:           0.05,
		ParallelStreams:      8,
	}
}

// Validate checks the configuration. Non-finite values are rejected
// explicitly: NaN fails every ordered comparison, so `<= 0` alone would
// wave a NaN bandwidth through and every downstream division would emit
// NaN results instead of an error.
func (w WAN) Validate() error {
	if math.IsNaN(w.BandwidthBytesPerSec) || math.IsInf(w.BandwidthBytesPerSec, 0) {
		return fmt.Errorf("netsim: non-finite bandwidth %g: %w", w.BandwidthBytesPerSec, ErrBadInput)
	}
	if w.BandwidthBytesPerSec <= 0 {
		return fmt.Errorf("netsim: bandwidth must be positive, got %g: %w", w.BandwidthBytesPerSec, ErrBadInput)
	}
	if w.ParallelStreams <= 0 {
		return fmt.Errorf("netsim: need at least one stream, got %d: %w", w.ParallelStreams, ErrBadInput)
	}
	if math.IsNaN(w.SetupSec) || math.IsInf(w.SetupSec, 0) {
		return fmt.Errorf("netsim: non-finite setup overhead %g: %w", w.SetupSec, ErrBadInput)
	}
	if math.IsNaN(w.PerFileSec) || math.IsInf(w.PerFileSec, 0) {
		return fmt.Errorf("netsim: non-finite per-file overhead %g: %w", w.PerFileSec, ErrBadInput)
	}
	if w.SetupSec < 0 || w.PerFileSec < 0 {
		return fmt.Errorf("netsim: negative overhead (setup %g, per-file %g): %w", w.SetupSec, w.PerFileSec, ErrBadInput)
	}
	return nil
}

// Job describes one codec's workload: every core compresses one file of
// FileBytes (compressed output) in CompressSec wall seconds.
type Job struct {
	Cores       int
	FileBytes   int
	CompressSec float64
}

// Validate checks the job: at least one core, a positive per-file size (a
// zero-byte job has nothing to transfer and always simulates to the setup
// constant — a degenerate "plan" the caller should never rank), and a
// finite non-negative compression time.
func (j Job) Validate() error {
	if j.Cores <= 0 {
		return fmt.Errorf("netsim: job needs at least one core, got %d: %w", j.Cores, ErrBadInput)
	}
	if j.FileBytes <= 0 {
		return fmt.Errorf("netsim: job needs a positive file size, got %d bytes: %w", j.FileBytes, ErrBadInput)
	}
	if math.IsNaN(j.CompressSec) || math.IsInf(j.CompressSec, 0) {
		return fmt.Errorf("netsim: non-finite compression time %g: %w", j.CompressSec, ErrBadInput)
	}
	if j.CompressSec < 0 {
		return fmt.Errorf("netsim: negative compression time %g: %w", j.CompressSec, ErrBadInput)
	}
	return nil
}

// Result reports the simulated end-to-end cost.
type Result struct {
	CompressTime time.Duration
	TransferTime time.Duration
	Total        time.Duration
	TotalBytes   int64
}

// Simulate runs one codec's batch: compression is perfectly parallel across
// cores (each core owns one file, per the paper's setup), then all files
// share the WAN bottleneck.
func Simulate(w WAN, j Job) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if err := j.Validate(); err != nil {
		return Result{}, err
	}
	totalBytes := int64(j.Cores) * int64(j.FileBytes)
	wire := float64(totalBytes) / w.BandwidthBytesPerSec
	overhead := w.SetupSec + float64(j.Cores)*w.PerFileSec/float64(w.ParallelStreams)
	xfer := wire + overhead
	return Result{
		CompressTime: durSec(j.CompressSec),
		TransferTime: durSec(xfer),
		Total:        durSec(j.CompressSec + xfer),
		TotalBytes:   totalBytes,
	}, nil
}

// Uncompressed models the baseline of shipping raw data (no compression).
func Uncompressed(w WAN, cores int, rawBytes int) (Result, error) {
	return Simulate(w, Job{Cores: cores, FileBytes: rawBytes})
}

// Candidate is one configuration a planner weighs: a label (e.g. the error
// bound it encodes under), the per-core compressed file size it would
// produce, and the per-core compression wall time.
type Candidate struct {
	Label       string
	FileBytes   int
	CompressSec float64
}

// Plan simulates every candidate on the WAN with the given core count and
// returns the index of the one minimizing end-to-end time (compression +
// transfer) plus each candidate's Result, index-aligned with cands. Ties
// break to the earlier candidate, so callers listing candidates from
// tightest to loosest bound deterministically keep the tightest plan that
// is not strictly beaten.
func Plan(w WAN, cores int, cands []Candidate) (int, []Result, error) {
	if err := w.Validate(); err != nil {
		return 0, nil, err
	}
	if len(cands) == 0 {
		return 0, nil, fmt.Errorf("netsim: no candidates to plan over: %w", ErrBadInput)
	}
	results := make([]Result, len(cands))
	best := -1
	for i, c := range cands {
		r, err := Simulate(w, Job{Cores: cores, FileBytes: c.FileBytes, CompressSec: c.CompressSec})
		if err != nil {
			return 0, nil, fmt.Errorf("netsim: candidate %d (%s): %w", i, c.Label, err)
		}
		results[i] = r
		if best < 0 || r.Total < results[best].Total {
			best = i
		}
	}
	return best, results, nil
}

func durSec(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
