// Package netsim models the compression-enabled Globus WAN transfer of the
// paper's scaled-performance experiment (§VII-C4, Fig. 13): N cores each
// compress one file in parallel, then the compressed files cross a shared
// wide-area bottleneck. The conclusion of Fig. 13 is arithmetic on
// compressed sizes (transfer ≈ bytes/bandwidth) driven by *measured*
// compression times and *actual* compressed sizes — only the link constants
// are synthetic, and they default to an ANL→Purdue-like 10 Gbit/s path.
package netsim

import (
	"fmt"
	"time"
)

// WAN describes the wide-area path between the two endpoints.
type WAN struct {
	// BandwidthBytesPerSec is the shared bottleneck capacity.
	BandwidthBytesPerSec float64
	// SetupSec is the per-session control overhead (Globus handshake,
	// checksums), paid once per transfer batch.
	SetupSec float64
	// PerFileSec is the per-file bookkeeping overhead, overlapped across
	// ParallelStreams concurrent streams.
	PerFileSec float64
	// ParallelStreams is the endpoint's concurrency (Globus default 4–8).
	ParallelStreams int
}

// DefaultWAN approximates the paper's ANL Bebop → Purdue Anvil path.
func DefaultWAN() WAN {
	return WAN{
		BandwidthBytesPerSec: 1.25e9, // 10 Gbit/s
		SetupSec:             2.0,
		PerFileSec:           0.05,
		ParallelStreams:      8,
	}
}

// Validate checks the configuration.
func (w WAN) Validate() error {
	if w.BandwidthBytesPerSec <= 0 {
		return fmt.Errorf("netsim: bandwidth must be positive")
	}
	if w.ParallelStreams <= 0 {
		return fmt.Errorf("netsim: need at least one stream")
	}
	if w.SetupSec < 0 || w.PerFileSec < 0 {
		return fmt.Errorf("netsim: negative overhead")
	}
	return nil
}

// Job describes one codec's workload: every core compresses one file of
// FileBytes (compressed output) in CompressSec wall seconds.
type Job struct {
	Cores       int
	FileBytes   int
	CompressSec float64
}

// Result reports the simulated end-to-end cost.
type Result struct {
	CompressTime time.Duration
	TransferTime time.Duration
	Total        time.Duration
	TotalBytes   int64
}

// Simulate runs one codec's batch: compression is perfectly parallel across
// cores (each core owns one file, per the paper's setup), then all files
// share the WAN bottleneck.
func Simulate(w WAN, j Job) (Result, error) {
	if err := w.Validate(); err != nil {
		return Result{}, err
	}
	if j.Cores <= 0 || j.FileBytes < 0 || j.CompressSec < 0 {
		return Result{}, fmt.Errorf("netsim: invalid job %+v", j)
	}
	totalBytes := int64(j.Cores) * int64(j.FileBytes)
	wire := float64(totalBytes) / w.BandwidthBytesPerSec
	overhead := w.SetupSec + float64(j.Cores)*w.PerFileSec/float64(w.ParallelStreams)
	xfer := wire + overhead
	return Result{
		CompressTime: durSec(j.CompressSec),
		TransferTime: durSec(xfer),
		Total:        durSec(j.CompressSec + xfer),
		TotalBytes:   totalBytes,
	}, nil
}

// Uncompressed models the baseline of shipping raw data (no compression).
func Uncompressed(w WAN, cores int, rawBytes int) (Result, error) {
	return Simulate(w, Job{Cores: cores, FileBytes: rawBytes})
}

func durSec(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}
