package netsim

import (
	"math"
	"testing"
	"time"
)

func TestSimulateBasicArithmetic(t *testing.T) {
	w := WAN{BandwidthBytesPerSec: 1e9, SetupSec: 1, PerFileSec: 0.1, ParallelStreams: 10}
	res, err := Simulate(w, Job{Cores: 100, FileBytes: 1e7, CompressSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	// wire = 1e9 bytes / 1e9 Bps = 1s; overhead = 1 + 100*0.1/10 = 2s.
	if got := res.TransferTime; got != 3*time.Second {
		t.Fatalf("transfer = %v want 3s", got)
	}
	if res.CompressTime != 5*time.Second || res.Total != 8*time.Second {
		t.Fatalf("compress %v total %v", res.CompressTime, res.Total)
	}
	if res.TotalBytes != 1e9 {
		t.Fatalf("bytes %d", res.TotalBytes)
	}
}

func TestSmallerFilesTransferFaster(t *testing.T) {
	w := DefaultWAN()
	big, _ := Simulate(w, Job{Cores: 512, FileBytes: 40 << 20, CompressSec: 7})
	small, _ := Simulate(w, Job{Cores: 512, FileBytes: 4 << 20, CompressSec: 7})
	if small.TransferTime >= big.TransferTime {
		t.Fatal("smaller files should transfer faster")
	}
	if small.Total >= big.Total {
		t.Fatal("total should shrink with compression ratio")
	}
}

func TestMoreCoresMoreData(t *testing.T) {
	w := DefaultWAN()
	a, _ := Simulate(w, Job{Cores: 256, FileBytes: 10 << 20, CompressSec: 7})
	b, _ := Simulate(w, Job{Cores: 1024, FileBytes: 10 << 20, CompressSec: 7})
	if b.TransferTime <= a.TransferTime {
		t.Fatal("4x the files must take longer on a shared link")
	}
	if b.TotalBytes != 4*a.TotalBytes {
		t.Fatal("bytes should scale with cores")
	}
}

func TestUncompressedBaseline(t *testing.T) {
	w := DefaultWAN()
	raw, err := Uncompressed(w, 256, 100<<20)
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := Simulate(w, Job{Cores: 256, FileBytes: 10 << 20, CompressSec: 5})
	if comp.Total >= raw.Total {
		t.Fatal("compression should pay for itself at 10x ratio")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Simulate(WAN{}, Job{Cores: 1}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	w := DefaultWAN()
	if _, err := Simulate(w, Job{Cores: 0}); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := Simulate(w, Job{Cores: 1, CompressSec: -1}); err == nil {
		t.Fatal("negative time accepted")
	}
	bad := w
	bad.ParallelStreams = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero streams accepted")
	}
}

// TestWANValidateFields covers every field of WAN.Validate with its full
// degenerate range: zero, negative, NaN and ±Inf. The NaN rows are the
// regression for the original bug — NaN fails every ordered comparison, so
// the old `<= 0` / `< 0` checks let non-finite constants through and
// Simulate returned NaN-valued Results instead of an error.
func TestWANValidateFields(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	mod := func(f func(*WAN)) WAN {
		w := DefaultWAN()
		f(&w)
		return w
	}
	cases := []struct {
		name string
		w    WAN
		ok   bool
	}{
		{"default", DefaultWAN(), true},
		{"bandwidth zero", mod(func(w *WAN) { w.BandwidthBytesPerSec = 0 }), false},
		{"bandwidth negative", mod(func(w *WAN) { w.BandwidthBytesPerSec = -1 }), false},
		{"bandwidth NaN", mod(func(w *WAN) { w.BandwidthBytesPerSec = nan }), false},
		{"bandwidth +Inf", mod(func(w *WAN) { w.BandwidthBytesPerSec = inf }), false},
		{"bandwidth -Inf", mod(func(w *WAN) { w.BandwidthBytesPerSec = -inf }), false},
		{"setup negative", mod(func(w *WAN) { w.SetupSec = -0.1 }), false},
		{"setup NaN", mod(func(w *WAN) { w.SetupSec = nan }), false},
		{"setup Inf", mod(func(w *WAN) { w.SetupSec = inf }), false},
		{"setup zero ok", mod(func(w *WAN) { w.SetupSec = 0 }), true},
		{"perfile negative", mod(func(w *WAN) { w.PerFileSec = -0.1 }), false},
		{"perfile NaN", mod(func(w *WAN) { w.PerFileSec = nan }), false},
		{"perfile Inf", mod(func(w *WAN) { w.PerFileSec = inf }), false},
		{"perfile zero ok", mod(func(w *WAN) { w.PerFileSec = 0 }), true},
		{"streams zero", mod(func(w *WAN) { w.ParallelStreams = 0 }), false},
		{"streams negative", mod(func(w *WAN) { w.ParallelStreams = -4 }), false},
	}
	for _, tc := range cases {
		err := tc.w.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: degenerate WAN accepted", tc.name)
		}
	}
}

func TestJobValidateDegenerate(t *testing.T) {
	w := DefaultWAN()
	cases := []struct {
		name string
		j    Job
	}{
		{"zero cores", Job{Cores: 0, FileBytes: 1 << 20, CompressSec: 1}},
		{"negative cores", Job{Cores: -2, FileBytes: 1 << 20, CompressSec: 1}},
		{"zero-byte job", Job{Cores: 4, FileBytes: 0, CompressSec: 1}},
		{"negative bytes", Job{Cores: 4, FileBytes: -1, CompressSec: 1}},
		{"negative time", Job{Cores: 4, FileBytes: 1 << 20, CompressSec: -1}},
		{"NaN time", Job{Cores: 4, FileBytes: 1 << 20, CompressSec: math.NaN()}},
		{"Inf time", Job{Cores: 4, FileBytes: 1 << 20, CompressSec: math.Inf(1)}},
	}
	for _, tc := range cases {
		if _, err := Simulate(w, tc.j); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := Uncompressed(w, 4, 0); err == nil {
		t.Error("zero-byte uncompressed baseline accepted")
	}
}

// TestSimulateResultsFinite is the end-to-end guard the plan endpoint needs:
// no accepted input may yield a non-finite or negative duration.
func TestSimulateResultsFinite(t *testing.T) {
	w := DefaultWAN()
	for _, j := range []Job{
		{Cores: 1, FileBytes: 1, CompressSec: 0},
		{Cores: 1024, FileBytes: 1 << 30, CompressSec: 3600},
	} {
		res, err := Simulate(w, j)
		if err != nil {
			t.Fatalf("%+v: %v", j, err)
		}
		for _, d := range []time.Duration{res.CompressTime, res.TransferTime, res.Total} {
			if d < 0 || d > 1e6*time.Hour {
				t.Fatalf("%+v: implausible duration %v", j, d)
			}
		}
	}
}

func TestPlanPicksMinTotal(t *testing.T) {
	w := DefaultWAN()
	cands := []Candidate{
		{Label: "rel=1e-4", FileBytes: 40 << 20, CompressSec: 7},
		{Label: "rel=1e-2", FileBytes: 4 << 20, CompressSec: 6},
		{Label: "rel=1e-1", FileBytes: 2 << 20, CompressSec: 50}, // fast transfer, slow codec
	}
	best, results, err := Plan(w, 512, cands)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cands) {
		t.Fatalf("results %d != candidates %d", len(results), len(cands))
	}
	if best != 1 {
		t.Fatalf("picked %d (%s), want 1", best, cands[best].Label)
	}
	for i, r := range results {
		if r.Total <= 0 {
			t.Fatalf("candidate %d: bad total %v", i, r.Total)
		}
	}
}

func TestPlanDegenerate(t *testing.T) {
	if _, _, err := Plan(DefaultWAN(), 4, nil); err == nil {
		t.Fatal("empty candidate list accepted")
	}
	if _, _, err := Plan(WAN{BandwidthBytesPerSec: math.NaN(), ParallelStreams: 4}, 4,
		[]Candidate{{FileBytes: 1, CompressSec: 1}}); err == nil {
		t.Fatal("NaN WAN accepted")
	}
	if _, _, err := Plan(DefaultWAN(), 4,
		[]Candidate{{Label: "zero", FileBytes: 0, CompressSec: 1}}); err == nil {
		t.Fatal("zero-byte candidate accepted")
	}
	// Tie-break: equal candidates resolve to the first.
	best, _, err := Plan(DefaultWAN(), 4, []Candidate{
		{Label: "a", FileBytes: 1 << 20, CompressSec: 1},
		{Label: "b", FileBytes: 1 << 20, CompressSec: 1},
	})
	if err != nil || best != 0 {
		t.Fatalf("tie-break: best=%d err=%v", best, err)
	}
}
