package netsim

import (
	"testing"
	"time"
)

func TestSimulateBasicArithmetic(t *testing.T) {
	w := WAN{BandwidthBytesPerSec: 1e9, SetupSec: 1, PerFileSec: 0.1, ParallelStreams: 10}
	res, err := Simulate(w, Job{Cores: 100, FileBytes: 1e7, CompressSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	// wire = 1e9 bytes / 1e9 Bps = 1s; overhead = 1 + 100*0.1/10 = 2s.
	if got := res.TransferTime; got != 3*time.Second {
		t.Fatalf("transfer = %v want 3s", got)
	}
	if res.CompressTime != 5*time.Second || res.Total != 8*time.Second {
		t.Fatalf("compress %v total %v", res.CompressTime, res.Total)
	}
	if res.TotalBytes != 1e9 {
		t.Fatalf("bytes %d", res.TotalBytes)
	}
}

func TestSmallerFilesTransferFaster(t *testing.T) {
	w := DefaultWAN()
	big, _ := Simulate(w, Job{Cores: 512, FileBytes: 40 << 20, CompressSec: 7})
	small, _ := Simulate(w, Job{Cores: 512, FileBytes: 4 << 20, CompressSec: 7})
	if small.TransferTime >= big.TransferTime {
		t.Fatal("smaller files should transfer faster")
	}
	if small.Total >= big.Total {
		t.Fatal("total should shrink with compression ratio")
	}
}

func TestMoreCoresMoreData(t *testing.T) {
	w := DefaultWAN()
	a, _ := Simulate(w, Job{Cores: 256, FileBytes: 10 << 20, CompressSec: 7})
	b, _ := Simulate(w, Job{Cores: 1024, FileBytes: 10 << 20, CompressSec: 7})
	if b.TransferTime <= a.TransferTime {
		t.Fatal("4x the files must take longer on a shared link")
	}
	if b.TotalBytes != 4*a.TotalBytes {
		t.Fatal("bytes should scale with cores")
	}
}

func TestUncompressedBaseline(t *testing.T) {
	w := DefaultWAN()
	raw, err := Uncompressed(w, 256, 100<<20)
	if err != nil {
		t.Fatal(err)
	}
	comp, _ := Simulate(w, Job{Cores: 256, FileBytes: 10 << 20, CompressSec: 5})
	if comp.Total >= raw.Total {
		t.Fatal("compression should pay for itself at 10x ratio")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Simulate(WAN{}, Job{Cores: 1}); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	w := DefaultWAN()
	if _, err := Simulate(w, Job{Cores: 0}); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := Simulate(w, Job{Cores: 1, CompressSec: -1}); err == nil {
		t.Fatal("negative time accepted")
	}
	bad := w
	bad.ParallelStreams = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero streams accepted")
	}
}
