// Package par provides the tiny bounded fan-out primitive shared by the
// intra-blob parallel paths (sectioned prediction, sharded entropy coding)
// and the chunked container. It deliberately has no dependencies so every
// layer of the pipeline can use it.
package par

import (
	"sync"
	"sync/atomic"
)

// Run executes fn(i) for every i in [0, n), using at most `workers`
// concurrent goroutines. workers <= 1 (or n <= 1) degrades to a plain serial
// loop on the calling goroutine, so the serial path pays nothing. Iteration
// order is unspecified when parallel; fn must be safe for concurrent calls
// on distinct i.
func Run(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
