package par

import (
	"sync/atomic"
	"testing"
)

func TestRunCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		for _, n := range []int{0, 1, 5, 97} {
			var hits atomic.Int64
			seen := make([]atomic.Bool, n)
			Run(workers, n, func(i int) {
				hits.Add(1)
				if seen[i].Swap(true) {
					t.Errorf("workers=%d n=%d: index %d ran twice", workers, n, i)
				}
			})
			if int(hits.Load()) != n {
				t.Fatalf("workers=%d n=%d: %d calls", workers, n, hits.Load())
			}
		}
	}
}

func TestRunSerialOrder(t *testing.T) {
	var got []int
	Run(1, 4, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial path out of order: %v", got)
		}
	}
}
