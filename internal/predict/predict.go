// Package predict implements the dynamic fitting predictors of the SZ3
// framework and CliZ's mask-aware generalization (paper §VI-B).
//
// A cubic prediction for a target point uses four referenced points at
// strides −3s, −s, +s, +3s (paper Fig. 6, Formula (1)):
//
//	p = −d0/16 + 9·d1/16 + 9·d2/16 − d3/16
//
// When referenced points are invalid — masked by the mask-map or out of
// bounds — CliZ degrades the fit through Theorem 1's closed form
// (Formula (2)): the coefficient of reference i is the product over j of
// (v_j·M[i][j] + (1−v_j)·B[i][j]). All 16 validity combinations are
// precomputed at init. The same treatment applies to linear fitting with a
// two-reference table. This package also verifies the paper's Tables I–II
// as golden tests.
package predict

// Fitting selects the base predictor family.
type Fitting int

const (
	// Linear fitting predicts from d1, d2 at ±s (p = d1/2 + d2/2).
	Linear Fitting = iota
	// Cubic fitting predicts from d0..d3 at −3s, −s, +s, +3s (Formula (1)).
	Cubic
	// Lorenzo selects the first-order Lorenzo predictor instead of the
	// interpolation traversal — the SZ family's classic scan predictor,
	// available as an extension arm of the tuner.
	Lorenzo
)

// String implements fmt.Stringer for experiment tables.
func (f Fitting) String() string {
	switch f {
	case Cubic:
		return "Cubic"
	case Lorenzo:
		return "Lorenzo"
	}
	return "Linear"
}

// cubicM and cubicB are the M and B matrices of Theorem 1 (Formula (2)).
var cubicM = [4][4]float64{
	{1, -0.5, 0.25, 0.5},
	{1.5, 1, 0.5, 0.75},
	{0.75, 0.5, 1, 1.5},
	{0.5, 0.25, -0.5, 1},
}

var cubicB = [4][4]float64{
	{0, 1, 1, 1},
	{1, 0, 1, 1},
	{1, 1, 0, 1},
	{1, 1, 1, 0},
}

// cubicCoeffs[mask] holds the coefficients for validity bitmask `mask`
// where bit i set means reference i is valid.
var cubicCoeffs [16][4]float64

// linearCoeffs[mask] similarly for the two linear references (d1 at −s,
// d2 at +s): both valid → (1/2, 1/2); one valid → constant fit; none → 0.
var linearCoeffs = [4][2]float64{
	{0, 0},     // none valid
	{1, 0},     // only d1
	{0, 1},     // only d2
	{0.5, 0.5}, // both
}

func init() {
	for mask := 0; mask < 16; mask++ {
		for i := 0; i < 4; i++ {
			p := 1.0
			for j := 0; j < 4; j++ {
				if mask&(1<<j) != 0 {
					p *= cubicM[i][j]
				} else {
					p *= cubicB[i][j]
				}
			}
			cubicCoeffs[mask][i] = p
		}
	}
}

// CubicCoeffs returns the four coefficients for the given validity bitmask
// (bit i set ⇔ reference i valid). Invalid references receive coefficient 0,
// so callers may pass arbitrary values for them.
func CubicCoeffs(validMask int) [4]float64 {
	return cubicCoeffs[validMask&15]
}

// LinearCoeffs returns the two coefficients for the linear fit validity
// bitmask (bit 0 ⇔ d1 valid, bit 1 ⇔ d2 valid).
func LinearCoeffs(validMask int) [2]float64 {
	return linearCoeffs[validMask&3]
}

// PredictCubic evaluates the mask-aware cubic fit. d holds the reference
// values (garbage allowed where invalid); validMask flags validity.
func PredictCubic(d [4]float64, validMask int) float64 {
	c := cubicCoeffs[validMask&15]
	return c[0]*d[0] + c[1]*d[1] + c[2]*d[2] + c[3]*d[3]
}

// PredictLinear evaluates the mask-aware linear fit over d1, d2.
func PredictLinear(d1, d2 float64, validMask int) float64 {
	c := linearCoeffs[validMask&3]
	return c[0]*d1 + c[1]*d2
}
